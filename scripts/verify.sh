#!/usr/bin/env bash
# Tier-1 verification: release build, tests, lints, formatting.
# Run from anywhere; operates on the repository this script lives in.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
cargo fmt --all -- --check

# Lock-free hot-path lint: the sharded mailbox, progress engine, buffer
# pool, and stats counters were moved off blocking mutexes — a parking_lot
# import reappearing in any of them is a regression, not a refactor.
for f in crates/madsim-net/src/mailbox.rs \
         crates/madeleine/src/progress.rs \
         crates/madeleine/src/pool.rs \
         crates/madeleine/src/stats.rs; do
    if grep -Eq 'use parking_lot|parking_lot::' "$f"; then
        echo "verify: FAIL — parking_lot reintroduced in $f (hot path must stay lock-free)" >&2
        exit 1
    fi
done

# Wire-codec lint: every header that crosses a wire is encoded by
# crates/madeleine/src/wire.rs — a raw `to_le_bytes(` creeping back into
# the header-emitting files means someone is hand-rolling a layout the
# codec (and its version negotiation) no longer controls.
for f in crates/madeleine/src/channel.rs \
         crates/madeleine/src/rail.rs \
         crates/madeleine/src/batch.rs \
         crates/mad-gateway/src/*.rs; do
    if grep -q 'to_le_bytes(' "$f"; then
        echo "verify: FAIL — raw to_le_bytes() header write in $f (use madeleine::wire)" >&2
        exit 1
    fi
done

# Chaos stage: the robustness layer under seeded fault injection, run
# explicitly so a regression here is named even when the suite is filtered.
cargo test -q -p mad-integration --test chaos

# Zero-fault regression guard: without a FaultPlan the recovery machinery
# must stay entirely out of the fast path — every fault counter reads zero.
cargo test -q -p mad-integration --test chaos -- --exact zero_fault_runs_count_nothing

# Multirail stage: sweep 1->4 rails; the binary itself asserts that
# single-rail channels never stripe and that two rails on the retimed bus
# reach >= 1.7x the single-rail 1 MB bandwidth.
cargo run --release -p bench --bin rails -- --out BENCH_rails.json
test -s BENCH_rails.json

# Overlap stage: the nonblocking op path must buy real compute/transfer
# overlap — the binary asserts >= 1.5x effective throughput for
# compute-overlapped 1 MB exchanges over single-rail BIP.
cargo run --release -p bench --bin overlap -- --out BENCH_overlap.json
test -s BENCH_overlap.json

# Batching stage: coalescing 64 B packets into multi-envelope frames over
# TCP must buy real throughput — the binary asserts >= 2x for the 64-packet
# ping-burst and that a batching-off run never touches the batch layer.
cargo run --release -p bench --bin batch -- --out BENCH_batch.json
test -s BENCH_batch.json

# Collectives stage: topology-aware hierarchical trees vs the flat
# baselines across a simulated gateway — the binary asserts >= 1.5x for
# hierarchical bcast and allreduce at 64 ranks and that the modeled
# 1k-rank point keeps hierarchical at or below flat.
cargo run --release -p bench --bin collectives -- --out BENCH_collectives.json
test -s BENCH_collectives.json

# Hot-path stage: the concurrency primitives themselves, in real time —
# the binary asserts the sharded mailbox moves the 4-peer small-message
# storm at >= 1.3x the ops/sec of the single-lock baseline.
cargo run --release -p bench --bin hotpath -- --out BENCH_hotpath.json
test -s BENCH_hotpath.json

echo "verify: all checks passed"
