#!/usr/bin/env bash
# Tier-1 verification: release build, tests, lints, formatting.
# Run from anywhere; operates on the repository this script lives in.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
cargo fmt --all -- --check

echo "verify: all checks passed"
