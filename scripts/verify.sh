#!/usr/bin/env bash
# Tier-1 verification: release build, tests, lints, formatting.
# Run from anywhere; operates on the repository this script lives in.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
cargo fmt --all -- --check

# Chaos stage: the robustness layer under seeded fault injection, run
# explicitly so a regression here is named even when the suite is filtered.
cargo test -q -p mad-integration --test chaos

# Zero-fault regression guard: without a FaultPlan the recovery machinery
# must stay entirely out of the fast path — every fault counter reads zero.
cargo test -q -p mad-integration --test chaos -- --exact zero_fault_runs_count_nothing

echo "verify: all checks passed"
