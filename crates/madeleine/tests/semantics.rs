//! Semantics of the mode flags, the Switch Module, and the API contracts
//! (paper §2.2, §4).

use madeleine::{Config, Madeleine, Protocol, RecvMode, SendMode};
use madsim_net::{NetKind, WorldBuilder};

fn sci_pair() -> (madsim_net::World, Config) {
    let mut b = WorldBuilder::new(2);
    b.network("sci0", NetKind::Sci, &[0, 1]);
    (b.build(), Config::one("ch", "sci0", Protocol::Sisci))
}

/// `pack_safer` captures at pack time: the caller may overwrite the buffer
/// immediately and the receiver still sees the packed value.
#[test]
fn safer_allows_immediate_reuse() {
    let (world, config) = sci_pair();
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let ch = mad.channel("ch");
        if env.id() == 0 {
            let mut scratch = vec![1u8; 4000];
            let mut msg = ch.begin_packing(1);
            msg.pack_safer(&scratch, RecvMode::Cheaper);
            // Reuse the buffer before the message is finalized.
            scratch.iter_mut().for_each(|b| *b = 2);
            msg.pack_safer(&scratch, RecvMode::Cheaper);
            scratch.iter_mut().for_each(|b| *b = 3);
            msg.end_packing();
        } else {
            let mut a = vec![0u8; 4000];
            let mut b2 = vec![0u8; 4000];
            let mut msg = ch.begin_unpacking();
            msg.unpack(&mut a, SendMode::Safer, RecvMode::Cheaper);
            msg.unpack(&mut b2, SendMode::Safer, RecvMode::Cheaper);
            msg.end_unpacking();
            assert!(a.iter().all(|&x| x == 1), "first SAFER block corrupted");
            assert!(b2.iter().all(|&x| x == 2), "second SAFER block corrupted");
        }
    });
}

/// `send_LATER` defers the transmission to `end_packing`: no buffer
/// reaches a TM at pack time.
#[test]
fn later_defers_transmission_to_commit() {
    let (world, config) = sci_pair();
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let ch = mad.channel("ch");
        if env.id() == 0 {
            let data = vec![5u8; 2000];
            let before = ch.stats().snapshot();
            let mut msg = ch.begin_packing(1);
            msg.pack(&data, SendMode::Later, RecvMode::Cheaper);
            // The internal header may have been flushed (TM switch), but
            // the LATER payload itself must not have been.
            let mid = ch.stats().snapshot().since(&before);
            assert!(
                mid.buffers_sent <= 1,
                "LATER data must not be transmitted before end_packing \
                 ({} buffers sent)",
                mid.buffers_sent
            );
            msg.end_packing();
            let after = ch.stats().snapshot().since(&before);
            assert!(
                after.buffers_sent > mid.buffers_sent,
                "commit must flush the LATER payload"
            );
        } else {
            let mut buf = vec![0u8; 2000];
            let mut msg = ch.begin_unpacking();
            msg.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper);
            msg.end_unpacking();
            assert!(buf.iter().all(|&x| x == 5));
        }
    });
}

/// An EXPRESS pack flushes eagerly so the peer can extract immediately.
#[test]
fn express_forces_early_flush() {
    let (world, config) = sci_pair();
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let ch = mad.channel("ch");
        if env.id() == 0 {
            let data = vec![9u8; 100];
            let before = ch.stats().snapshot();
            let mut msg = ch.begin_packing(1);
            msg.pack(&data, SendMode::Cheaper, RecvMode::Express);
            let mid = ch.stats().snapshot().since(&before);
            assert!(
                mid.buffers_sent >= 1,
                "EXPRESS block must be flushed at pack time"
            );
            // Peer reads the express block while our message is still open.
            env.barrier();
            msg.end_packing();
        } else {
            let mut buf = vec![0u8; 100];
            let mut msg = ch.begin_unpacking();
            msg.unpack_express(&mut buf, SendMode::Cheaper);
            assert!(buf.iter().all(|&x| x == 9));
            env.barrier();
            msg.end_unpacking();
        }
    });
}

/// CHEAPER extraction may be deferred, but `end_unpacking` guarantees it.
#[test]
fn cheaper_extraction_completes_at_end() {
    let (world, config) = sci_pair();
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let ch = mad.channel("ch");
        if env.id() == 0 {
            let a = vec![1u8; 700];
            let b2 = vec![2u8; 700];
            let mut msg = ch.begin_packing(1);
            msg.pack(&a, SendMode::Cheaper, RecvMode::Cheaper);
            msg.pack(&b2, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_packing();
        } else {
            let mut a = vec![0u8; 700];
            let mut b2 = vec![0u8; 700];
            let mut msg = ch.begin_unpacking();
            msg.unpack(&mut a, SendMode::Cheaper, RecvMode::Cheaper);
            msg.unpack(&mut b2, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_unpacking();
            assert!(a.iter().all(|&x| x == 1));
            assert!(b2.iter().all(|&x| x == 2));
        }
    });
}

#[test]
#[should_panic(expected = "cannot send to self")]
fn send_to_self_panics() {
    let (world, config) = sci_pair();
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        if env.id() == 0 {
            let _ = mad.channel("ch").begin_packing(0);
        }
    });
}

#[test]
#[should_panic(expected = "is not a member")]
fn send_to_non_member_panics() {
    let (world, config) = sci_pair();
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        if env.id() == 0 {
            let _ = mad.channel("ch").begin_packing(7);
        }
    });
}

#[test]
#[should_panic(expected = "never end_packing")]
fn abandoned_outgoing_message_is_detected() {
    let (world, config) = sci_pair();
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        if env.id() == 0 {
            let ch = mad.channel("ch");
            {
                let _abandoned = ch.begin_packing(1);
                // dropped without end_packing
            }
            let _second = ch.begin_packing(1);
        }
    });
}

/// Asymmetric pack/unpack corrupts the stream and is caught loudly at the
/// next message boundary (the header magic/sequence check).
#[test]
#[should_panic]
fn asymmetric_unpack_is_caught() {
    let (world, config) = sci_pair();
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let ch = mad.channel("ch");
        if env.id() == 0 {
            let data = vec![1u8; 300];
            for _ in 0..2 {
                let mut msg = ch.begin_packing(1);
                msg.pack(&data, SendMode::Cheaper, RecvMode::Cheaper);
                msg.end_packing();
            }
        } else {
            // Read only 100 of the 300 bytes — a violation of the
            // symmetry contract.
            let mut short = vec![0u8; 100];
            let mut msg = ch.begin_unpacking();
            msg.unpack(&mut short, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_unpacking();
            // The next message's header is now misaligned.
            let _ = ch.begin_unpacking();
        }
    });
}

/// TM selection boundaries of the drivers (the Switch step is a pure
/// function both sides must agree on).
#[test]
fn tm_selection_boundaries() {
    // BIP: < 1024 short, >= 1024 long.
    let mut b = WorldBuilder::new(2);
    b.network("myr0", NetKind::Myrinet, &[0, 1]);
    let world = b.build();
    let config = Config::one("ch", "myr0", Protocol::Bip);
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let pmm = std::sync::Arc::clone(mad.channel("ch").pmm());
        assert_eq!(pmm.select(1023, SendMode::Cheaper, RecvMode::Cheaper), 0);
        assert_eq!(pmm.select(1024, SendMode::Cheaper, RecvMode::Cheaper), 1);
        assert_eq!(pmm.tms()[0].name(), "bip/short");
        assert_eq!(pmm.tms()[1].name(), "bip/long");
    });

    // SISCI: <= 512 short, else regular; DMA only when enabled and > 8 kB.
    let (world, config) = sci_pair();
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let pmm = std::sync::Arc::clone(mad.channel("ch").pmm());
        assert_eq!(pmm.select(512, SendMode::Cheaper, RecvMode::Cheaper), 0);
        assert_eq!(pmm.select(513, SendMode::Cheaper, RecvMode::Cheaper), 1);
        assert_eq!(pmm.select(100_000, SendMode::Cheaper, RecvMode::Cheaper), 1);
    });
    let (world, config) = sci_pair();
    let config = config.with_sci_dma(true);
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let pmm = std::sync::Arc::clone(mad.channel("ch").pmm());
        assert_eq!(pmm.select(8192, SendMode::Cheaper, RecvMode::Cheaper), 1);
        assert_eq!(pmm.select(8193, SendMode::Cheaper, RecvMode::Cheaper), 2);
        assert_eq!(pmm.tms()[2].name(), "sisci/dma");
    });
}

/// Mode combinations do not change the wire contents, only the transfer
/// strategy: all four SAFER/LATER×EXPRESS/CHEAPER pairings of the same
/// payload produce identical bytes at the receiver.
#[test]
fn modes_are_transparent_to_content() {
    let (world, config) = sci_pair();
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let ch = mad.channel("ch");
        let payload: Vec<u8> = (0..5000).map(|i| (i % 241) as u8).collect();
        let combos = [
            (SendMode::Safer, RecvMode::Express),
            (SendMode::Safer, RecvMode::Cheaper),
            (SendMode::Cheaper, RecvMode::Express),
            (SendMode::Cheaper, RecvMode::Cheaper),
            (SendMode::Later, RecvMode::Cheaper),
        ];
        for &(sm, rm) in &combos {
            if env.id() == 0 {
                let mut msg = ch.begin_packing(1);
                msg.pack(&payload, sm, rm);
                msg.end_packing();
            } else {
                let mut got = vec![0u8; payload.len()];
                let mut msg = ch.begin_unpacking();
                msg.unpack(&mut got, sm, rm);
                msg.end_unpacking();
                assert_eq!(got, payload, "modes {sm}/{rm}");
            }
        }
    });
}

/// The Marcel-style network interaction policies (paper conclusion):
/// interrupt-driven reception pays a wakeup latency that pure polling does
/// not — measurable end-to-end through the stack.
#[test]
fn poll_policy_cost_is_visible_end_to_end() {
    use madeleine::PollPolicy;
    let oneway = |policy: PollPolicy| -> f64 {
        let mut b = WorldBuilder::new(2);
        b.network("sci0", NetKind::Sci, &[0, 1]);
        let world = b.build();
        let config = Config::one("ch", "sci0", Protocol::Sisci).with_poll_policy(policy);
        let out = world.run(move |env| {
            let mad = Madeleine::init(&env, &config);
            let ch = mad.channel("ch");
            if env.id() == 0 {
                // Let the receiver block first, so the wakeup path runs.
                std::thread::sleep(std::time::Duration::from_millis(40));
                let mut msg = ch.begin_packing(1);
                msg.pack(&[1u8; 64], SendMode::Cheaper, RecvMode::Cheaper);
                msg.end_packing();
                0.0
            } else {
                let mut buf = [0u8; 64];
                let mut msg = ch.begin_unpacking();
                msg.unpack(&mut buf, SendMode::Cheaper, RecvMode::Cheaper);
                msg.end_unpacking();
                madsim_net::time::now().as_micros_f64()
            }
        });
        out[1]
    };
    let spin = oneway(PollPolicy::Spin);
    let intr = oneway(PollPolicy::Interrupt { latency_us: 25.0 });
    let diff = intr - spin;
    // The full 25 us lands on the receiver, minus whatever post-arrival
    // work the wakeup window absorbs (the receiver's extraction overlaps
    // the interrupt delivery).
    assert!(
        diff > 18.0 && diff <= 25.5,
        "interrupt wakeup should cost ~25us more: spin={spin:.2} intr={intr:.2}"
    );
    // Adaptive with a long spin phase behaves like polling when the
    // message arrives while spinning... here the sender is slow, so the
    // interrupt path arms and the charge applies.
    let adaptive = oneway(PollPolicy::Adaptive {
        spin_rounds: 2,
        interrupt_latency_us: 25.0,
    });
    assert!(
        (adaptive - intr).abs() < 2.0,
        "slow sender forces the adaptive policy onto the interrupt path \
         (adaptive={adaptive:.2} intr={intr:.2})"
    );
}

/// The §4 ordering discipline observed directly through the tracer: a TM
/// switch commits the previous BMM on the send side and checkouts on the
/// receive side, in exactly the order the paper's Fig. 3 walk-through
/// describes.
#[test]
fn trace_shows_commit_on_tm_switch() {
    use madeleine::trace::TraceEvent;
    let (world, config) = sci_pair();
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let ch = mad.channel("ch");
        ch.enable_trace();
        let small = vec![1u8; 100]; // short TM (id 0)
        let big = vec![2u8; 20_000]; // regular TM (id 1)
        if env.id() == 0 {
            let mut msg = ch.begin_packing(1);
            msg.pack(&small, SendMode::Cheaper, RecvMode::Cheaper);
            msg.pack(&big, SendMode::Cheaper, RecvMode::Cheaper);
            msg.pack(&small, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_packing();
            let ev: Vec<_> = ch.tracer().events().into_iter().map(|t| t.event).collect();
            // begin, pack(small->0), commit 0->1, pack(big->1),
            // commit 1->0, pack(small->0), end.
            assert!(matches!(ev[0], TraceEvent::BeginPacking { dst: 1 }));
            assert!(
                matches!(
                    ev[1],
                    TraceEvent::Pack {
                        len: 100,
                        tm: 0,
                        ..
                    }
                ),
                "got {:?}",
                ev[1]
            );
            assert!(matches!(
                ev[2],
                TraceEvent::CommitOnSwitch { from: 0, to: 1 }
            ));
            assert!(matches!(
                ev[3],
                TraceEvent::Pack {
                    len: 20_000,
                    tm: 1,
                    ..
                }
            ));
            assert!(matches!(
                ev[4],
                TraceEvent::CommitOnSwitch { from: 1, to: 0 }
            ));
            assert!(matches!(
                ev[5],
                TraceEvent::Pack {
                    len: 100,
                    tm: 0,
                    ..
                }
            ));
            assert!(matches!(ev[6], TraceEvent::EndPacking));
            // Timestamps are monotone.
            let times: Vec<_> = ch.tracer().events().iter().map(|t| t.at).collect();
            assert!(times.windows(2).all(|w| w[0] <= w[1]));
        } else {
            let mut a = vec![0u8; 100];
            let mut b = vec![0u8; 20_000];
            let mut c = vec![0u8; 100];
            let mut msg = ch.begin_unpacking();
            msg.unpack(&mut a, SendMode::Cheaper, RecvMode::Cheaper);
            msg.unpack(&mut b, SendMode::Cheaper, RecvMode::Cheaper);
            msg.unpack(&mut c, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_unpacking();
            let ev: Vec<_> = ch.tracer().events().into_iter().map(|t| t.event).collect();
            assert!(matches!(ev[0], TraceEvent::BeginUnpacking { src: 0 }));
            assert!(ev
                .iter()
                .any(|e| matches!(e, TraceEvent::CheckoutOnSwitch { from: 0, to: 1 })));
            assert!(ev
                .iter()
                .any(|e| matches!(e, TraceEvent::CheckoutOnSwitch { from: 1, to: 0 })));
            assert!(matches!(
                ev.last().expect("non-empty"),
                TraceEvent::EndUnpacking
            ));
        }
    });
}

/// The Switch picks the same TM sequence on both sides (the symmetry the
/// paper mandates), verified through traces.
#[test]
fn trace_tm_sequences_are_symmetric() {
    use madeleine::trace::TraceEvent;
    let (world, config) = sci_pair();
    let seqs = world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let ch = mad.channel("ch");
        ch.enable_trace();
        let sizes = [30usize, 5000, 512, 513, 64];
        if env.id() == 0 {
            let blocks: Vec<Vec<u8>> = sizes.iter().map(|&n| vec![0u8; n]).collect();
            let mut msg = ch.begin_packing(1);
            for b in &blocks {
                msg.pack(b, SendMode::Cheaper, RecvMode::Cheaper);
            }
            msg.end_packing();
        } else {
            let mut bufs: Vec<Vec<u8>> = sizes.iter().map(|&n| vec![0u8; n]).collect();
            let mut msg = ch.begin_unpacking();
            for b in bufs.iter_mut() {
                msg.unpack(b, SendMode::Cheaper, RecvMode::Cheaper);
            }
            msg.end_unpacking();
        }
        ch.tracer()
            .events()
            .into_iter()
            .filter_map(|t| match t.event {
                TraceEvent::Pack { len, tm, .. } | TraceEvent::Unpack { len, tm, .. } => {
                    Some((len, tm))
                }
                _ => None,
            })
            .collect::<Vec<_>>()
    });
    assert_eq!(seqs[0], seqs[1], "send/recv TM sequences must agree");
}

/// The typed helpers round-trip and compose with raw packs.
#[test]
fn typed_helpers_roundtrip() {
    let (world, config) = sci_pair();
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let ch = mad.channel("ch");
        if env.id() == 0 {
            let body: Vec<u8> = (0..9000).map(|i| (i % 251) as u8).collect();
            let mut msg = ch.begin_packing(1);
            msg.pack_u32(0xDEAD_BEEF, RecvMode::Express);
            msg.pack_f64(1.5, RecvMode::Express);
            msg.pack_str("hello-madeleine");
            msg.pack_sized_bytes(&body);
            msg.end_packing();
        } else {
            let mut msg = ch.begin_unpacking();
            assert_eq!(msg.unpack_u32(), 0xDEAD_BEEF);
            assert_eq!(msg.unpack_f64(), 1.5);
            assert_eq!(msg.unpack_string(), "hello-madeleine");
            let body = msg.unpack_sized_bytes();
            msg.end_unpacking();
            assert_eq!(body.len(), 9000);
            assert!(body.iter().enumerate().all(|(i, &b)| b == (i % 251) as u8));
        }
    });
}

/// Typed helpers work over every protocol driver.
#[test]
fn typed_helpers_on_all_protocols() {
    for protocol in [
        Protocol::Sisci,
        Protocol::Bip,
        Protocol::Tcp,
        Protocol::Via,
        Protocol::Sbp,
    ] {
        let mut b = WorldBuilder::new(2);
        let (net, kind) = match protocol {
            Protocol::Tcp | Protocol::Sbp => ("eth0", NetKind::Ethernet),
            Protocol::Bip => ("myr0", NetKind::Myrinet),
            Protocol::Sisci => ("sci0", NetKind::Sci),
            Protocol::Via => ("san0", NetKind::ViaSan),
        };
        b.network(net, kind, &[0, 1]);
        let world = b.build();
        let config = Config::one("ch", net, protocol);
        world.run(move |env| {
            let mad = Madeleine::init(&env, &config);
            let ch = mad.channel("ch");
            if env.id() == 0 {
                let mut msg = ch.begin_packing(1);
                msg.pack_str("proto-check");
                msg.pack_u32(12345, RecvMode::Express);
                msg.end_packing();
            } else {
                let mut msg = ch.begin_unpacking();
                assert_eq!(msg.unpack_string(), "proto-check");
                assert_eq!(msg.unpack_u32(), 12345);
                msg.end_unpacking();
            }
        });
    }
}

/// `try_begin_unpacking` is a faithful non-blocking variant.
#[test]
fn try_begin_unpacking_does_not_block() {
    let (world, config) = sci_pair();
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let ch = mad.channel("ch");
        if env.id() == 0 {
            env.barrier(); // let the receiver observe emptiness first
            let mut msg = ch.begin_packing(1);
            msg.pack(b"now you see me", SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_packing();
        } else {
            assert!(!ch.has_incoming());
            assert!(ch.try_begin_unpacking().is_none());
            env.barrier();
            // Blocking wait still works afterwards.
            let mut buf = [0u8; 14];
            let mut msg = ch.begin_unpacking();
            msg.unpack(&mut buf, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_unpacking();
            assert_eq!(&buf, b"now you see me");
        }
    });
}

/// The same single-flow scenario produces identical virtual times across
/// runs — the deterministic core of the simulation (multi-flow gateway
/// scenarios may vary within tolerances; see DESIGN.md).
#[test]
fn single_flow_timing_is_deterministic() {
    let run_once = || -> Vec<u64> {
        let (world, config) = sci_pair();
        world.run(move |env| {
            let mad = Madeleine::init(&env, &config);
            let ch = mad.channel("ch");
            for n in [16usize, 4096, 40_000] {
                let data = vec![1u8; n];
                if env.id() == 0 {
                    let mut m = ch.begin_packing(1);
                    m.pack(&data, SendMode::Cheaper, RecvMode::Cheaper);
                    m.end_packing();
                } else {
                    let mut buf = vec![0u8; n];
                    let mut m = ch.begin_unpacking();
                    m.unpack(&mut buf, SendMode::Cheaper, RecvMode::Cheaper);
                    m.end_unpacking();
                }
            }
            madsim_net::time::now().as_nanos()
        })
    };
    let a = run_once();
    let b = run_once();
    let c = run_once();
    assert_eq!(a, b);
    assert_eq!(b, c);
}

/// The per-TM traffic breakdown shows the Switch's decisions: small blocks
/// go through the short TM, bulk through the regular TM, and the byte
/// totals account for every payload byte plus the internal header.
#[test]
fn per_tm_traffic_breakdown() {
    let (world, config) = sci_pair();
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let ch = mad.channel("ch");
        if env.id() == 0 {
            let small = vec![1u8; 100];
            let big = vec![2u8; 20_000];
            let mut msg = ch.begin_packing(1);
            msg.pack(&small, SendMode::Cheaper, RecvMode::Cheaper);
            msg.pack(&big, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_packing();
            let (short_bufs, short_bytes) = ch.stats().tm_traffic(0);
            let (bulk_bufs, bulk_bytes) = ch.stats().tm_traffic(1);
            // Short TM carried the channel header (its own eager flush)
            // plus the 100 B block (flushed at the TM switch). The header
            // is 16 B classic, 3 B compact (prologue + src + seq varints
            // for the first message of node 0).
            let hdr = match ch.wire() {
                madeleine::WireVersion::Classic => 16,
                madeleine::WireVersion::Compact => 3,
            };
            assert_eq!(short_bufs, 2);
            assert_eq!(short_bytes, 100 + hdr);
            assert_eq!(bulk_bufs, 1);
            assert_eq!(bulk_bytes, 20_000);
            assert_eq!(ch.stats().tm_traffic(2), (0, 0), "DMA TM is disabled");
        } else {
            let mut a = vec![0u8; 100];
            let mut b = vec![0u8; 20_000];
            let mut msg = ch.begin_unpacking();
            msg.unpack(&mut a, SendMode::Cheaper, RecvMode::Cheaper);
            msg.unpack(&mut b, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_unpacking();
        }
    });
}

/// Stack-timing overrides flow through the drivers: a slowed-down SISCI
/// profile visibly stretches the measured one-way time.
#[test]
fn stack_timing_overrides_apply() {
    use madsim_net::stacks::sisci::SisciTiming;
    let oneway = |timing: Option<SisciTiming>| -> f64 {
        let mut b = WorldBuilder::new(2);
        b.network("sci0", NetKind::Sci, &[0, 1]);
        let world = b.build();
        let mut config = Config::one("ch", "sci0", Protocol::Sisci);
        if let Some(t) = timing {
            config = config.with_sisci_timing(t);
        }
        let out = world.run(move |env| {
            let mad = Madeleine::init(&env, &config);
            let ch = mad.channel("ch");
            if env.id() == 0 {
                let mut m = ch.begin_packing(1);
                m.pack(&[1u8; 4096], SendMode::Cheaper, RecvMode::Cheaper);
                m.end_packing();
                0.0
            } else {
                let mut buf = [0u8; 4096];
                let mut m = ch.begin_unpacking();
                m.unpack(&mut buf, SendMode::Cheaper, RecvMode::Cheaper);
                m.end_unpacking();
                madsim_net::time::now().as_micros_f64()
            }
        });
        out[1]
    };
    let stock = oneway(None);
    let slow = oneway(Some(SisciTiming {
        pio_per_byte_us: 0.1, // ~10 MiB/s instead of ~82
        ..SisciTiming::default()
    }));
    assert!(
        slow > stock * 4.0,
        "override ignored: stock {stock:.1} us, slowed {slow:.1} us"
    );
}

/// try_begin_unpacking composes with the full unpack flow.
#[test]
fn try_begin_unpacking_consumes_correctly() {
    let (world, config) = sci_pair();
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let ch = mad.channel("ch");
        if env.id() == 0 {
            let mut m = ch.begin_packing(1);
            m.pack(b"polled!", SendMode::Cheaper, RecvMode::Cheaper);
            m.end_packing();
            env.barrier();
        } else {
            env.barrier(); // message certainly announced by now
            let mut buf = [0u8; 7];
            let mut m = ch
                .try_begin_unpacking()
                .expect("message was already announced");
            m.unpack(&mut buf, SendMode::Cheaper, RecvMode::Cheaper);
            m.end_unpacking();
            assert_eq!(&buf, b"polled!");
            // Channel drained: nothing further announced.
            assert!(ch.try_begin_unpacking().is_none());
        }
    });
}

/// `with_batching(1, ...)` *is* batching-off: the coalescing layer is
/// bypassed entirely, so a traced fault-free exchange over TCP produces
/// the identical event stream — timestamps included — and the identical
/// stats snapshot as the default spec. In the deterministic simulation
/// this is the observable equivalent of the wire-format byte-identity
/// guarantee for disabled batching.
#[test]
fn batch_size_one_is_identical_to_default() {
    use madeleine::ChannelSpec;

    let run = |batch_one: bool| {
        let mut b = WorldBuilder::new(2);
        b.network("eth0", NetKind::Ethernet, &[0, 1]);
        let world = b.build();
        let mut spec = ChannelSpec::new("ch", "eth0", Protocol::Tcp);
        if batch_one {
            spec = spec.with_batching(1, 4096, 20.0);
        }
        let config = Config::default().with_channel_spec(spec);
        world.run(move |env| {
            let mad = Madeleine::init(&env, &config);
            let ch = mad.channel("ch");
            ch.enable_trace();
            let sizes = [16usize, 200, 64, 1500];
            if env.id() == 0 {
                let payloads: Vec<Vec<u8>> = sizes.iter().map(|&n| vec![7u8; n]).collect();
                let mut msg = ch.begin_packing(1);
                for p in &payloads {
                    msg.pack(p, SendMode::Cheaper, RecvMode::Cheaper);
                }
                msg.end_packing();
                let mut ack = [0u8; 1];
                let mut msg = ch.begin_unpacking();
                msg.unpack_express(&mut ack, SendMode::Cheaper);
                msg.end_unpacking();
                assert_eq!(ack[0], 9);
            } else {
                let mut bufs: Vec<Vec<u8>> = sizes.iter().map(|&n| vec![0u8; n]).collect();
                let mut msg = ch.begin_unpacking();
                for buf in bufs.iter_mut() {
                    msg.unpack(buf, SendMode::Cheaper, RecvMode::Cheaper);
                }
                msg.end_unpacking();
                assert!(bufs.iter().flatten().all(|&x| x == 7));
                let mut msg = ch.begin_packing(0);
                msg.pack(&[9u8], SendMode::Cheaper, RecvMode::Express);
                msg.end_packing();
            }
            assert_eq!(ch.stats().batches(), 0, "batch layer must stay bypassed");
            (ch.tracer().events(), ch.stats().snapshot())
        })
    };
    assert_eq!(
        run(false),
        run(true),
        "batch_packets == 1 must be indistinguishable from the default spec"
    );
}
