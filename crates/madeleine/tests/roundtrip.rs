//! End-to-end pack/unpack round trips over every protocol driver.

use madeleine::{Config, Madeleine, Protocol, RecvMode, SendMode};
use madsim_net::{NetKind, WorldBuilder};

fn world_for(protocol: Protocol) -> (madsim_net::World, Config) {
    let mut b = WorldBuilder::new(2);
    let (net, kind) = match protocol {
        Protocol::Tcp | Protocol::Sbp => ("eth0", NetKind::Ethernet),
        Protocol::Bip => ("myr0", NetKind::Myrinet),
        Protocol::Sisci => ("sci0", NetKind::Sci),
        Protocol::Via => ("san0", NetKind::ViaSan),
    };
    b.network(net, kind, &[0, 1]);
    (b.build(), Config::one("ch", net, protocol))
}

fn patterned(n: usize, seed: u8) -> Vec<u8> {
    (0..n)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
        .collect()
}

/// Figure-1 style message: EXPRESS length header, CHEAPER payload.
fn roundtrip_sizes(protocol: Protocol, sizes: &[usize]) {
    let (world, config) = world_for(protocol);
    let sizes: Vec<usize> = sizes.to_vec();
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let ch = mad.channel("ch");
        for (k, &n) in sizes.iter().enumerate() {
            let data = patterned(n, k as u8);
            if env.id() == 0 {
                let len = (n as u32).to_le_bytes();
                let mut msg = ch.begin_packing(1);
                msg.pack(&len, SendMode::Cheaper, RecvMode::Express);
                msg.pack(&data, SendMode::Cheaper, RecvMode::Cheaper);
                msg.end_packing();
            } else {
                let mut msg = ch.begin_unpacking();
                assert_eq!(msg.src(), 0);
                let mut len = [0u8; 4];
                msg.unpack_express(&mut len, SendMode::Cheaper);
                assert_eq!(u32::from_le_bytes(len) as usize, n, "size {n}");
                let mut got = vec![0u8; n];
                msg.unpack(&mut got, SendMode::Cheaper, RecvMode::Cheaper);
                msg.end_unpacking();
                assert_eq!(got, data, "payload mismatch at size {n}");
            }
        }
    });
}

const SIZES: &[usize] = &[
    1, 4, 16, 100, 511, 512, 513, 1023, 1024, 4096, 8192, 8193, 20000, 65536, 300_000,
];

#[test]
fn roundtrip_sisci() {
    roundtrip_sizes(Protocol::Sisci, SIZES);
}

#[test]
fn roundtrip_bip() {
    roundtrip_sizes(Protocol::Bip, SIZES);
}

#[test]
fn roundtrip_tcp() {
    roundtrip_sizes(Protocol::Tcp, SIZES);
}

#[test]
fn roundtrip_via() {
    roundtrip_sizes(Protocol::Via, SIZES);
}

#[test]
fn roundtrip_sbp() {
    roundtrip_sizes(Protocol::Sbp, SIZES);
}

#[test]
fn roundtrip_sisci_dma_enabled() {
    let (world, config) = world_for(Protocol::Sisci);
    let config = config.with_sci_dma(true);
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let ch = mad.channel("ch");
        let data = patterned(100_000, 7);
        if env.id() == 0 {
            let mut msg = ch.begin_packing(1);
            msg.pack(&data, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_packing();
        } else {
            let mut got = vec![0u8; data.len()];
            let mut msg = ch.begin_unpacking();
            msg.unpack(&mut got, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_unpacking();
            assert_eq!(got, data);
        }
    });
}

/// All nine (send, recv) mode combinations round-trip.
#[test]
fn all_mode_combinations() {
    for protocol in [Protocol::Sisci, Protocol::Bip, Protocol::Tcp] {
        let (world, config) = world_for(protocol);
        world.run(move |env| {
            let mad = Madeleine::init(&env, &config);
            let ch = mad.channel("ch");
            let smodes = [SendMode::Safer, SendMode::Later, SendMode::Cheaper];
            let rmodes = [RecvMode::Express, RecvMode::Cheaper];
            for (i, &s) in smodes.iter().enumerate() {
                for (j, &r) in rmodes.iter().enumerate() {
                    let data = patterned(2000 + i * 100 + j, (i * 2 + j) as u8);
                    if env.id() == 0 {
                        let mut msg = ch.begin_packing(1);
                        msg.pack(&data, s, r);
                        msg.end_packing();
                    } else {
                        let mut got = vec![0u8; data.len()];
                        let mut msg = ch.begin_unpacking();
                        msg.unpack(&mut got, s, r);
                        msg.end_unpacking();
                        assert_eq!(got, data, "modes {s}/{r} on {protocol:?}");
                    }
                }
            }
        });
    }
}

/// Many blocks per message, mixed sizes and modes, forcing TM switches.
#[test]
fn multi_block_messages_with_tm_switches() {
    for protocol in [
        Protocol::Sisci,
        Protocol::Bip,
        Protocol::Tcp,
        Protocol::Via,
        Protocol::Sbp,
    ] {
        let (world, config) = world_for(protocol);
        world.run(move |env| {
            let mad = Madeleine::init(&env, &config);
            let ch = mad.channel("ch");
            // small, big, small, big, small: exercises commit-on-switch.
            let blocks: Vec<Vec<u8>> = [17usize, 9000, 33, 40000, 250]
                .iter()
                .enumerate()
                .map(|(i, &n)| patterned(n, i as u8))
                .collect();
            if env.id() == 0 {
                let mut msg = ch.begin_packing(1);
                for (i, b) in blocks.iter().enumerate() {
                    let r = if i % 2 == 0 {
                        RecvMode::Express
                    } else {
                        RecvMode::Cheaper
                    };
                    msg.pack(b, SendMode::Cheaper, r);
                }
                msg.end_packing();
            } else {
                let mut bufs: Vec<Vec<u8>> = blocks.iter().map(|b| vec![0u8; b.len()]).collect();
                let mut msg = ch.begin_unpacking();
                for (i, buf) in bufs.iter_mut().enumerate() {
                    let r = if i % 2 == 0 {
                        RecvMode::Express
                    } else {
                        RecvMode::Cheaper
                    };
                    msg.unpack(buf, SendMode::Cheaper, r);
                }
                msg.end_unpacking();
                for (got, want) in bufs.iter().zip(blocks.iter()) {
                    assert_eq!(got, want, "protocol {protocol:?}");
                }
            }
        });
    }
}

/// Several messages back-to-back keep connection state (sequence numbers,
/// ring positions, credits) consistent.
#[test]
fn message_stream_state_is_stable() {
    for protocol in [Protocol::Sisci, Protocol::Bip, Protocol::Via] {
        let (world, config) = world_for(protocol);
        world.run(move |env| {
            let mad = Madeleine::init(&env, &config);
            let ch = mad.channel("ch");
            for k in 0..50usize {
                let data = patterned(1 + (k * 97) % 5000, k as u8);
                if env.id() == 0 {
                    let mut msg = ch.begin_packing(1);
                    msg.pack(&data, SendMode::Cheaper, RecvMode::Cheaper);
                    msg.end_packing();
                } else {
                    let mut got = vec![0u8; data.len()];
                    let mut msg = ch.begin_unpacking();
                    msg.unpack(&mut got, SendMode::Cheaper, RecvMode::Cheaper);
                    msg.end_unpacking();
                    assert_eq!(got, data, "message {k} on {protocol:?}");
                }
            }
        });
    }
}

/// Bidirectional traffic on one channel.
#[test]
fn bidirectional_pingpong() {
    for protocol in [Protocol::Sisci, Protocol::Bip, Protocol::Tcp] {
        let (world, config) = world_for(protocol);
        world.run(move |env| {
            let mad = Madeleine::init(&env, &config);
            let ch = mad.channel("ch");
            let payload = patterned(3000, 5);
            for _ in 0..10 {
                if env.id() == 0 {
                    let mut msg = ch.begin_packing(1);
                    msg.pack(&payload, SendMode::Cheaper, RecvMode::Cheaper);
                    msg.end_packing();
                    let mut back = vec![0u8; payload.len()];
                    let mut msg = ch.begin_unpacking();
                    msg.unpack(&mut back, SendMode::Cheaper, RecvMode::Cheaper);
                    msg.end_unpacking();
                    assert_eq!(back, payload);
                } else {
                    let mut got = vec![0u8; payload.len()];
                    let mut msg = ch.begin_unpacking();
                    msg.unpack(&mut got, SendMode::Cheaper, RecvMode::Cheaper);
                    msg.end_unpacking();
                    let mut msg = ch.begin_packing(0);
                    msg.pack(&got, SendMode::Cheaper, RecvMode::Cheaper);
                    msg.end_packing();
                }
            }
        });
    }
}

/// Two channels over the same adapter do not interfere (paper §2.1).
#[test]
fn channels_are_independent() {
    let mut b = WorldBuilder::new(2);
    b.network("sci0", NetKind::Sci, &[0, 1]);
    let world = b.build();
    let config =
        Config::one("a", "sci0", Protocol::Sisci).with_channel("b", "sci0", Protocol::Sisci);
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let (ca, cb) = (mad.channel("a"), mad.channel("b"));
        let da = patterned(600, 1);
        let db = patterned(700, 2);
        if env.id() == 0 {
            // Send on b first, then a; receiver reads a first.
            let mut mb = cb.begin_packing(1);
            mb.pack(&db, SendMode::Cheaper, RecvMode::Cheaper);
            mb.end_packing();
            let mut ma = ca.begin_packing(1);
            ma.pack(&da, SendMode::Cheaper, RecvMode::Cheaper);
            ma.end_packing();
        } else {
            let mut ga = vec![0u8; da.len()];
            let mut ma = ca.begin_unpacking();
            ma.unpack(&mut ga, SendMode::Cheaper, RecvMode::Cheaper);
            ma.end_unpacking();
            assert_eq!(ga, da);
            let mut gb = vec![0u8; db.len()];
            let mut mb = cb.begin_unpacking();
            mb.unpack(&mut gb, SendMode::Cheaper, RecvMode::Cheaper);
            mb.end_unpacking();
            assert_eq!(gb, db);
        }
    });
}

/// Three-node traffic: two senders, one receiver, any-source reception.
#[test]
fn any_source_reception() {
    for protocol in [Protocol::Sisci, Protocol::Bip, Protocol::Tcp] {
        let mut b = WorldBuilder::new(3);
        let (net, kind) = match protocol {
            Protocol::Tcp => ("eth0", NetKind::Ethernet),
            Protocol::Bip => ("myr0", NetKind::Myrinet),
            _ => ("sci0", NetKind::Sci),
        };
        b.network(net, kind, &[0, 1, 2]);
        let world = b.build();
        let config = Config::one("ch", net, protocol);
        world.run(move |env| {
            let mad = Madeleine::init(&env, &config);
            let ch = mad.channel("ch");
            if env.id() < 2 {
                let data = patterned(900, env.id() as u8);
                let mut msg = ch.begin_packing(2);
                msg.pack(&data, SendMode::Cheaper, RecvMode::Cheaper);
                msg.end_packing();
            } else {
                let mut seen = Vec::new();
                for _ in 0..2 {
                    let mut got = vec![0u8; 900];
                    let mut msg = ch.begin_unpacking();
                    let src = msg.src();
                    msg.unpack(&mut got, SendMode::Cheaper, RecvMode::Cheaper);
                    msg.end_unpacking();
                    assert_eq!(got, patterned(900, src as u8));
                    seen.push(src);
                }
                seen.sort_unstable();
                assert_eq!(seen, vec![0, 1]);
            }
        });
    }
}
