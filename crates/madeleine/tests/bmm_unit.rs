//! Direct unit tests of the Buffer Management Modules against a recording
//! mock TM — the policies' contracts in isolation from any driver.

use bytes::Bytes;
use madeleine::bmm::{RecvBmm, SendBmm, SendPolicy};
use madeleine::config::HostModel;
use madeleine::stats::Stats;
use madeleine::tm::{StaticBuf, TmCaps, TransmissionModule};
use madeleine::MadResult;
use madsim_net::time::{self, ClockHandle};
use madsim_net::NodeId;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// What the mock TM saw, in order.
#[derive(Debug, PartialEq, Eq, Clone)]
enum Op {
    Send(Vec<u8>),
    SendGroup(Vec<Vec<u8>>),
    SendGather(Vec<Vec<u8>>),
    SendStatic(Vec<u8>),
    Obtain,
    Release,
}

struct MockTm {
    ops: Mutex<Vec<Op>>,
    /// Queue of buffers `receive_*` will produce.
    rx: Mutex<VecDeque<Vec<u8>>>,
    static_buffers: bool,
    cap: usize,
    gather: bool,
}

impl MockTm {
    fn new(static_buffers: bool, cap: usize) -> Arc<Self> {
        Self::with_gather(static_buffers, cap, true)
    }

    fn with_gather(static_buffers: bool, cap: usize, gather: bool) -> Arc<Self> {
        Arc::new(MockTm {
            ops: Mutex::new(Vec::new()),
            rx: Mutex::new(VecDeque::new()),
            static_buffers,
            cap,
            gather,
        })
    }

    fn ops(&self) -> Vec<Op> {
        self.ops.lock().clone()
    }

    fn queue_rx(&self, data: &[u8]) {
        self.rx.lock().push_back(data.to_vec());
    }
}

impl TransmissionModule for MockTm {
    fn name(&self) -> &'static str {
        "mock"
    }

    fn caps(&self) -> TmCaps {
        TmCaps {
            static_buffers: self.static_buffers,
            buffer_cap: self.cap,
            gather: self.gather,
        }
    }

    fn send_buffer(&self, _dst: NodeId, data: &[u8]) -> MadResult<()> {
        self.ops.lock().push(Op::Send(data.to_vec()));
        Ok(())
    }

    fn send_buffer_group(&self, _dst: NodeId, bufs: &[&[u8]]) -> MadResult<()> {
        self.ops
            .lock()
            .push(Op::SendGroup(bufs.iter().map(|b| b.to_vec()).collect()));
        Ok(())
    }

    fn send_gather(&self, dst: NodeId, bufs: &[&[u8]]) -> MadResult<()> {
        if self.gather {
            self.ops
                .lock()
                .push(Op::SendGather(bufs.iter().map(|b| b.to_vec()).collect()));
            Ok(())
        } else {
            // A TM without native gather relies on the trait default.
            self.send_buffer_group(dst, bufs)
        }
    }

    fn send_static_buffer(&self, _dst: NodeId, buf: StaticBuf) -> MadResult<()> {
        self.ops.lock().push(Op::SendStatic(buf.filled().to_vec()));
        Ok(())
    }

    fn receive_buffer(&self, _src: NodeId, dst: &mut [u8]) -> MadResult<()> {
        let mut rx = self.rx.lock();
        let mut filled = 0;
        while filled < dst.len() {
            let front = rx.front_mut().expect("mock rx underrun");
            let take = front.len().min(dst.len() - filled);
            dst[filled..filled + take].copy_from_slice(&front[..take]);
            front.drain(..take);
            if front.is_empty() {
                rx.pop_front();
            }
            filled += take;
        }
        Ok(())
    }

    fn receive_static_buffer(&self, _src: NodeId) -> MadResult<StaticBuf> {
        let data = self.rx.lock().pop_front().expect("mock rx underrun");
        Ok(StaticBuf::shared(Bytes::from(data), 0))
    }

    fn obtain_static_buffer(&self) -> StaticBuf {
        self.ops.lock().push(Op::Obtain);
        StaticBuf::owned(self.cap, 0)
    }

    fn release_static_buffer(&self, _buf: StaticBuf) {
        self.ops.lock().push(Op::Release);
    }
}

/// All BMM paths advance the clock; give the test thread one.
fn with_clock<T>(f: impl FnOnce() -> T) -> T {
    let prev = time::install_clock(ClockHandle::new());
    let out = f();
    time::restore_clock(prev);
    out
}

fn send_bmm(policy: SendPolicy, tm: &Arc<MockTm>) -> SendBmm<'static> {
    SendBmm::new(
        policy,
        Arc::clone(tm) as Arc<dyn TransmissionModule>,
        1,
        HostModel::default(),
        Stats::new(),
    )
}

fn recv_bmm(policy: SendPolicy, tm: &Arc<MockTm>) -> RecvBmm<'static> {
    RecvBmm::new(
        policy,
        Arc::clone(tm) as Arc<dyn TransmissionModule>,
        0,
        HostModel::default(),
        Stats::new(),
    )
}

// ---------------- Eager policy ----------------

#[test]
fn eager_sends_each_block_immediately() {
    with_clock(|| {
        let tm = MockTm::new(false, usize::MAX);
        let mut bmm = send_bmm(SendPolicy::Eager, &tm);
        bmm.pack(b"one", madeleine::SendMode::Cheaper).unwrap();
        assert_eq!(tm.ops(), vec![Op::Send(b"one".to_vec())]);
        bmm.pack(b"two", madeleine::SendMode::Cheaper).unwrap();
        bmm.flush().unwrap();
        assert_eq!(
            tm.ops(),
            vec![Op::Send(b"one".to_vec()), Op::Send(b"two".to_vec())]
        );
    });
}

#[test]
fn eager_defers_later_blocks_and_preserves_order() {
    with_clock(|| {
        let tm = MockTm::new(false, usize::MAX);
        let mut bmm = send_bmm(SendPolicy::Eager, &tm);
        bmm.pack(b"a", madeleine::SendMode::Cheaper).unwrap();
        bmm.pack(b"L", madeleine::SendMode::Later).unwrap();
        // A block behind a LATER block must not overtake it.
        bmm.pack(b"b", madeleine::SendMode::Cheaper).unwrap();
        assert_eq!(tm.ops(), vec![Op::Send(b"a".to_vec())]);
        bmm.flush().unwrap();
        assert_eq!(
            tm.ops(),
            vec![
                Op::Send(b"a".to_vec()),
                Op::Send(b"L".to_vec()),
                Op::Send(b"b".to_vec())
            ]
        );
    });
}

// ---------------- Aggregate policy ----------------

#[test]
fn aggregate_groups_blocks_into_one_flush() {
    with_clock(|| {
        let tm = MockTm::new(false, usize::MAX);
        let mut bmm = send_bmm(SendPolicy::Aggregate, &tm);
        bmm.pack(b"aa", madeleine::SendMode::Cheaper).unwrap();
        bmm.pack(b"bbb", madeleine::SendMode::Cheaper).unwrap();
        assert!(tm.ops().is_empty(), "nothing leaves before commit");
        bmm.flush().unwrap();
        assert_eq!(
            tm.ops(),
            vec![Op::SendGather(vec![b"aa".to_vec(), b"bbb".to_vec()])]
        );
    });
}

#[test]
fn aggregate_flush_counts_native_gathers_only() {
    with_clock(|| {
        // Gather-capable TM: the flush is one native scatter/gather.
        let tm = MockTm::new(false, usize::MAX);
        let stats = Stats::new();
        let mut bmm = SendBmm::new(
            SendPolicy::Aggregate,
            Arc::clone(&tm) as Arc<dyn TransmissionModule>,
            1,
            HostModel::default(),
            Arc::clone(&stats),
        );
        bmm.pack(b"one", madeleine::SendMode::Cheaper).unwrap();
        bmm.pack(b"two", madeleine::SendMode::Cheaper).unwrap();
        bmm.flush().unwrap();
        assert_eq!(stats.gathers(), 1);
        assert_eq!(stats.borrowed_bytes(), 6, "both blocks read in place");
        assert_eq!(stats.copied_bytes(), 0);

        // Same traffic on a TM without native gather: the default
        // entry point degrades to a buffer group and counts no gather.
        let tm = MockTm::with_gather(false, usize::MAX, false);
        let stats = Stats::new();
        let mut bmm = SendBmm::new(
            SendPolicy::Aggregate,
            Arc::clone(&tm) as Arc<dyn TransmissionModule>,
            1,
            HostModel::default(),
            Arc::clone(&stats),
        );
        bmm.pack(b"one", madeleine::SendMode::Cheaper).unwrap();
        bmm.pack(b"two", madeleine::SendMode::Cheaper).unwrap();
        bmm.flush().unwrap();
        assert_eq!(stats.gathers(), 0);
        assert_eq!(
            tm.ops(),
            vec![Op::SendGroup(vec![b"one".to_vec(), b"two".to_vec()])]
        );
    });
}

#[test]
fn aggregate_copies_safer_blocks() {
    with_clock(|| {
        let tm = MockTm::new(false, usize::MAX);
        let stats = Stats::new();
        let mut bmm = SendBmm::new(
            SendPolicy::Aggregate,
            Arc::clone(&tm) as Arc<dyn TransmissionModule>,
            1,
            HostModel::default(),
            Arc::clone(&stats),
        );
        bmm.pack(b"capture-me", madeleine::SendMode::Safer).unwrap();
        assert_eq!(stats.copies(), 1, "SAFER under aggregation must copy");
        assert_eq!(
            stats.pool_misses(),
            1,
            "the defensive copy is captured into pool memory"
        );
        bmm.flush().unwrap();
        assert_eq!(tm.ops(), vec![Op::SendGather(vec![b"capture-me".to_vec()])]);
    });
}

#[test]
fn aggregate_flush_on_empty_is_harmless() {
    with_clock(|| {
        let tm = MockTm::new(false, usize::MAX);
        let mut bmm = send_bmm(SendPolicy::Aggregate, &tm);
        bmm.flush().unwrap();
        bmm.flush().unwrap();
        assert!(tm.ops().is_empty());
    });
}

// ---------------- StaticCopy policy ----------------

#[test]
fn static_copy_fills_buffers_tightly() {
    with_clock(|| {
        let tm = MockTm::new(true, 8);
        let mut bmm = send_bmm(SendPolicy::StaticCopy, &tm);
        bmm.pack(b"abc", madeleine::SendMode::Cheaper).unwrap();
        bmm.pack(b"defgh", madeleine::SendMode::Cheaper).unwrap(); // exactly fills 8
                                                                   // A full buffer ships immediately.
        assert_eq!(
            tm.ops(),
            vec![Op::Obtain, Op::SendStatic(b"abcdefgh".to_vec())]
        );
        bmm.pack(b"xy", madeleine::SendMode::Cheaper).unwrap();
        bmm.flush().unwrap();
        assert_eq!(
            tm.ops(),
            vec![
                Op::Obtain,
                Op::SendStatic(b"abcdefgh".to_vec()),
                Op::Obtain,
                Op::SendStatic(b"xy".to_vec()),
            ]
        );
    });
}

#[test]
fn static_copy_splits_oversized_blocks() {
    with_clock(|| {
        let tm = MockTm::new(true, 4);
        let mut bmm = send_bmm(SendPolicy::StaticCopy, &tm);
        bmm.pack(b"0123456789", madeleine::SendMode::Cheaper)
            .unwrap();
        bmm.flush().unwrap();
        assert_eq!(
            tm.ops(),
            vec![
                Op::Obtain,
                Op::SendStatic(b"0123".to_vec()),
                Op::Obtain,
                Op::SendStatic(b"4567".to_vec()),
                Op::Obtain,
                Op::SendStatic(b"89".to_vec()),
            ]
        );
    });
}

#[test]
fn static_copy_charges_copies() {
    with_clock(|| {
        let tm = MockTm::new(true, 64);
        let stats = Stats::new();
        let mut bmm = SendBmm::new(
            SendPolicy::StaticCopy,
            Arc::clone(&tm) as Arc<dyn TransmissionModule>,
            1,
            HostModel::default(),
            Arc::clone(&stats),
        );
        bmm.pack(&[1u8; 40], madeleine::SendMode::Cheaper).unwrap();
        bmm.flush().unwrap();
        assert_eq!(stats.copied_bytes(), 40);
    });
}

#[test]
fn static_copy_exact_fill_leaves_no_residue() {
    with_clock(|| {
        let tm = MockTm::new(true, 8);
        let mut bmm = send_bmm(SendPolicy::StaticCopy, &tm);
        bmm.pack(b"12345678", madeleine::SendMode::Cheaper).unwrap();
        // The exactly-full buffer ships on the spot...
        assert_eq!(
            tm.ops(),
            vec![Op::Obtain, Op::SendStatic(b"12345678".to_vec())]
        );
        // ...and the flush must not obtain, send, or release anything:
        // no empty trailing buffer exists.
        bmm.flush().unwrap();
        assert_eq!(
            tm.ops(),
            vec![Op::Obtain, Op::SendStatic(b"12345678".to_vec())]
        );
    });
}

#[test]
fn static_copy_exact_multiple_spans_three_full_buffers() {
    with_clock(|| {
        let tm = MockTm::new(true, 4);
        let mut bmm = send_bmm(SendPolicy::StaticCopy, &tm);
        bmm.pack(b"0123456789ab", madeleine::SendMode::Cheaper)
            .unwrap();
        let full = vec![
            Op::Obtain,
            Op::SendStatic(b"0123".to_vec()),
            Op::Obtain,
            Op::SendStatic(b"4567".to_vec()),
            Op::Obtain,
            Op::SendStatic(b"89ab".to_vec()),
        ];
        assert_eq!(tm.ops(), full);
        bmm.flush().unwrap();
        assert_eq!(tm.ops(), full, "no fourth (empty) buffer after flush");
    });
}

#[test]
fn static_copy_later_block_packs_in_order_across_boundary() {
    with_clock(|| {
        let tm = MockTm::new(true, 4);
        let mut bmm = send_bmm(SendPolicy::StaticCopy, &tm);
        bmm.pack(b"ab", madeleine::SendMode::Cheaper).unwrap(); // staged: 2/4
        bmm.pack(b"LMN", madeleine::SendMode::Later).unwrap(); // deferred to flush
        bmm.pack(b"xy", madeleine::SendMode::Cheaper).unwrap(); // queued behind it
                                                                // Nothing shipped: the partial buffer waits for the LATER block.
        assert_eq!(tm.ops(), vec![Op::Obtain]);
        bmm.flush().unwrap();
        // Packing order a < L < b holds even though the LATER block
        // straddles the buffer boundary.
        assert_eq!(
            tm.ops(),
            vec![
                Op::Obtain,
                Op::SendStatic(b"abLM".to_vec()),
                Op::Obtain,
                Op::SendStatic(b"Nxy".to_vec()),
            ]
        );
    });
}

// ---------------- receive side ----------------

#[test]
fn recv_eager_defers_cheaper_until_checkout() {
    with_clock(|| {
        let tm = MockTm::new(false, usize::MAX);
        tm.queue_rx(b"hello");
        let mut buf = [0u8; 5];
        {
            let mut bmm = recv_bmm(SendPolicy::Eager, &tm);
            // Deferred: nothing pulled yet (rx still queued).
            bmm.unpack(&mut buf, madeleine::RecvMode::Cheaper).unwrap();
            assert_eq!(tm.rx.lock().len(), 1);
            bmm.checkout().unwrap();
        }
        assert_eq!(&buf, b"hello");
    });
}

#[test]
fn recv_express_drains_preceding_deferred_in_order() {
    with_clock(|| {
        let tm = MockTm::new(false, usize::MAX);
        tm.queue_rx(b"first");
        tm.queue_rx(b"second");
        let mut a = [0u8; 5];
        let mut b = [0u8; 6];
        {
            let mut bmm = recv_bmm(SendPolicy::Eager, &tm);
            bmm.unpack(&mut a, madeleine::RecvMode::Cheaper).unwrap();
            // EXPRESS on the second block must first satisfy the first.
            bmm.unpack_express_now(&mut b).unwrap();
        }
        assert_eq!(&a, b"first");
        assert_eq!(&b, b"second");
    });
}

#[test]
fn recv_static_extracts_across_buffer_boundaries() {
    with_clock(|| {
        let tm = MockTm::new(true, 4);
        tm.queue_rx(b"0123");
        tm.queue_rx(b"4567");
        tm.queue_rx(b"89");
        let mut buf = [0u8; 10];
        {
            let mut bmm = recv_bmm(SendPolicy::StaticCopy, &tm);
            bmm.unpack(&mut buf, madeleine::RecvMode::Cheaper).unwrap();
            bmm.checkout().unwrap();
        }
        assert_eq!(&buf, b"0123456789");
    });
}

#[test]
#[should_panic(expected = "not fully consumed")]
fn recv_static_detects_asymmetry_at_checkout() {
    with_clock(|| {
        let tm = MockTm::new(true, 8);
        tm.queue_rx(b"12345678");
        let mut bmm = recv_bmm(SendPolicy::StaticCopy, &tm);
        let mut buf = [0u8; 3];
        bmm.unpack(&mut buf, madeleine::RecvMode::Cheaper).unwrap();
        let _ = bmm.checkout(); // 5 bytes left unconsumed: contract violation
    });
}
