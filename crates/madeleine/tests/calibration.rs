//! Calibration of the virtual-time models against the paper's own numbers.
//!
//! These tests measure **one-way message time in virtual time** through the
//! full Madeleine II stack (fresh world per point, single message, receiver
//! clock at `end_unpacking`) and pin it to the anchors the paper reports:
//!
//! * Fig. 4 — SISCI/SCI: 3.9 µs minimal latency, 82 MB/s asymptotic
//!   bandwidth, dual-buffering kink above 8 kB;
//! * Fig. 5 — BIP/Myrinet: 7 µs minimal latency, 122 MB/s;
//! * §6.2.2 — at 8 kB: ≈58 MB/s (SISCI) and ≈47 MB/s (BIP); at 16 kB both
//!   ≈60 MB/s and ≈250 µs.
//!
//! (Paper "MB/s" is MiB/s; see `madsim_net::perf`.) Tolerances are
//! deliberately loose — the goal is the *shape*, not digit-for-digit
//! equality.

use madeleine::{Config, Madeleine, Protocol, RecvMode, SendMode};
use madsim_net::perf::mibps;
use madsim_net::time::{self, VDuration};
use madsim_net::{NetKind, WorldBuilder};

/// One-way virtual time (µs) for a single n-byte message, full stack.
fn oneway_us(protocol: Protocol, n: usize) -> f64 {
    let mut b = WorldBuilder::new(2);
    let (net, kind) = match protocol {
        Protocol::Tcp | Protocol::Sbp => ("eth0", NetKind::Ethernet),
        Protocol::Bip => ("myr0", NetKind::Myrinet),
        Protocol::Sisci => ("sci0", NetKind::Sci),
        Protocol::Via => ("san0", NetKind::ViaSan),
    };
    b.network(net, kind, &[0, 1]);
    let world = b.build();
    let config = Config::one("ch", net, protocol);
    let times = world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let ch = mad.channel("ch");
        let data = vec![0xA5u8; n];
        if env.id() == 0 {
            let mut msg = ch.begin_packing(1);
            msg.pack(&data, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_packing();
            0.0
        } else {
            let mut got = vec![0u8; n];
            let mut msg = ch.begin_unpacking();
            msg.unpack(&mut got, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_unpacking();
            time::now().as_micros_f64()
        }
    });
    times[1]
}

fn bw(protocol: Protocol, n: usize) -> f64 {
    mibps(n, VDuration::from_micros_f64(oneway_us(protocol, n)))
}

fn assert_close(what: &str, got: f64, want: f64, tol: f64) {
    assert!(
        (got - want).abs() <= tol,
        "{what}: got {got:.2}, want {want:.2} ± {tol:.2}"
    );
}

#[test]
fn sisci_min_latency_is_3_9us() {
    let t = oneway_us(Protocol::Sisci, 4);
    assert_close("SISCI 4 B latency (us)", t, 3.9, 0.8);
}

#[test]
fn sisci_8kb_bandwidth() {
    assert_close("SISCI 8 kB MiB/s", bw(Protocol::Sisci, 8192), 58.0, 5.0);
}

#[test]
fn sisci_16kb_point() {
    let t = oneway_us(Protocol::Sisci, 16384);
    let b = mibps(16384, VDuration::from_micros_f64(t));
    // Paper §6.2.1: "ca. 250 us, ca. 60 MB/s" — approximately.
    assert!(
        (220.0..290.0).contains(&t),
        "SISCI 16 kB one-way {t:.1} us outside 220–290"
    );
    assert!(
        (54.0..71.0).contains(&b),
        "SISCI 16 kB bandwidth {b:.1} MiB/s outside 54–71"
    );
}

#[test]
fn sisci_asymptotic_bandwidth_is_82() {
    assert_close("SISCI 1 MiB MiB/s", bw(Protocol::Sisci, 1 << 20), 82.0, 5.0);
}

#[test]
fn sisci_dual_buffering_kink_at_8kb() {
    // Incremental bandwidth jumps when dual-buffering engages: the cost of
    // 24 kB minus the cost of 16 kB (fully pipelined region) implies a
    // higher rate than the single-shot 8 kB transfer.
    let t8 = oneway_us(Protocol::Sisci, 8192);
    let t16 = oneway_us(Protocol::Sisci, 16384);
    let t24 = oneway_us(Protocol::Sisci, 24576);
    let single_rate = 8192.0 / t8;
    let pipelined_rate = 8192.0 / (t24 - t16);
    assert!(
        pipelined_rate > single_rate * 1.15,
        "no dual-buffering kink: single {single_rate:.1} B/us, pipelined {pipelined_rate:.1} B/us"
    );
}

#[test]
fn bip_min_latency_is_7us() {
    let t = oneway_us(Protocol::Bip, 4);
    assert_close("BIP 4 B latency (us)", t, 7.0, 1.0);
}

#[test]
fn bip_8kb_bandwidth() {
    assert_close("BIP 8 kB MiB/s", bw(Protocol::Bip, 8192), 47.0, 5.0);
}

#[test]
fn bip_16kb_point() {
    let b = bw(Protocol::Bip, 16384);
    assert!(
        (58.0..75.0).contains(&b),
        "BIP 16 kB bandwidth {b:.1} MiB/s outside 58–75"
    );
}

#[test]
fn bip_asymptotic_bandwidth_is_122() {
    assert_close("BIP 1 MiB MiB/s", bw(Protocol::Bip, 1 << 20), 122.0, 6.0);
}

#[test]
fn bip_beats_sisci_for_large_sisci_beats_bip_for_small() {
    // The crossover the gateway experiments rely on (§6.2.1).
    assert!(oneway_us(Protocol::Sisci, 64) < oneway_us(Protocol::Bip, 64));
    assert!(oneway_us(Protocol::Sisci, 4096) < oneway_us(Protocol::Bip, 4096));
    assert!(bw(Protocol::Bip, 1 << 18) > bw(Protocol::Sisci, 1 << 18));
}

#[test]
fn sci_dma_mode_is_much_slower_than_pio() {
    // §5.2.1: D310 DMA peaks around 35 MB/s vs 82 MB/s for PIO — the
    // reason the DMA TM ships disabled.
    let n = 1 << 18;
    let pio = bw(Protocol::Sisci, n);
    let mut b = WorldBuilder::new(2);
    b.network("sci0", NetKind::Sci, &[0, 1]);
    let world = b.build();
    let config = Config::one("ch", "sci0", Protocol::Sisci).with_sci_dma(true);
    let times = world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let ch = mad.channel("ch");
        let data = vec![1u8; n];
        if env.id() == 0 {
            let mut msg = ch.begin_packing(1);
            msg.pack(&data, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_packing();
            0.0
        } else {
            let mut got = vec![0u8; n];
            let mut msg = ch.begin_unpacking();
            msg.unpack(&mut got, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_unpacking();
            time::now().as_micros_f64()
        }
    });
    let dma = mibps(n, VDuration::from_micros_f64(times[1]));
    assert!(
        (28.0..40.0).contains(&dma),
        "SCI DMA bandwidth {dma:.1} MiB/s outside 28–40"
    );
    assert!(
        pio > dma * 1.8,
        "PIO ({pio:.1}) should dwarf DMA ({dma:.1})"
    );
}

#[test]
fn tcp_fast_ethernet_profile() {
    // ~60 us one-way latency (plus connection setup charged at init is not
    // included here: init happens before the clock measurement? it is —
    // connect() advances the node clock during init, so subtract it).
    let t4 = oneway_us(Protocol::Tcp, 4);
    // one connect latency (60) + oneway (60+) + header bytes
    assert!(
        (110.0..165.0).contains(&t4),
        "TCP 4 B one-way {t4:.1} us outside 110–165"
    );
    let b = bw(Protocol::Tcp, 1 << 20);
    assert!(
        (10.5..11.8).contains(&b),
        "TCP 1 MiB bandwidth {b:.1} MiB/s outside Fast-Ethernet range"
    );
}

/// Print the full sweep for eyeballing (runs with `--nocapture`).
#[test]
fn print_fig4_fig5_sweep() {
    println!(
        "{:>9} {:>14} {:>14} {:>14} {:>14}",
        "size", "SISCI us", "SISCI MiB/s", "BIP us", "BIP MiB/s"
    );
    for &n in &[
        4usize,
        64,
        256,
        1024,
        4096,
        8192,
        16384,
        65536,
        262144,
        1 << 20,
    ] {
        let ts = oneway_us(Protocol::Sisci, n);
        let tb = oneway_us(Protocol::Bip, n);
        println!(
            "{:>9} {:>14.1} {:>14.1} {:>14.1} {:>14.1}",
            n,
            ts,
            mibps(n, VDuration::from_micros_f64(ts)),
            tb,
            mibps(n, VDuration::from_micros_f64(tb)),
        );
    }
}
