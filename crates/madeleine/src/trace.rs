//! Message-path tracing.
//!
//! An optional per-channel event recorder: every Switch decision, commit,
//! and checkout is logged with its virtual timestamp. This is the
//! observability a library like Madeleine II needs in the field (which TM
//! carried my block? when did the commit flush?) and what several tests use
//! to assert the §4 ordering discipline *directly* instead of inferring it
//! from bytes.
//!
//! Tracing is off by default (zero overhead beyond one atomic load per
//! operation); enable it per channel with [`crate::channel::Channel::enable_trace`]
//! (`Channel` re-exports live in [`crate::channel`]).

use crate::batch::FlushReason;
use crate::flags::{RecvMode, SendMode};
use crate::tm::TmId;
use madsim_net::time::{self, VTime};
use madsim_net::NodeId;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};

/// One recorded event on a channel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// `begin_packing(dst)`.
    BeginPacking { dst: NodeId },
    /// `post_message(dst)` — a whole message posted as a nonblocking op
    /// (recorded on the new op path only, so blocking-path trace streams
    /// are unchanged).
    PostMessage { dst: NodeId },
    /// A `pack` routed to a TM by the Switch.
    Pack {
        len: usize,
        smode: SendMode,
        rmode: RecvMode,
        tm: TmId,
    },
    /// The Switch committed a BMM because the selected TM changed.
    CommitOnSwitch { from: TmId, to: TmId },
    /// `end_packing`'s terminal commit.
    EndPacking,
    /// `begin_unpacking` resolved an incoming message.
    BeginUnpacking { src: NodeId },
    /// An `unpack` routed to a TM.
    Unpack {
        len: usize,
        smode: SendMode,
        rmode: RecvMode,
        tm: TmId,
    },
    /// The receive-side mirror of `CommitOnSwitch`.
    CheckoutOnSwitch { from: TmId, to: TmId },
    /// `end_unpacking`'s terminal checkout.
    EndUnpacking,
    /// Copy-accounting summary of one completed outgoing message (recorded
    /// right after [`EndPacking`](Self::EndPacking)), summed over every TM
    /// the message touched — across all rails it was striped over, and
    /// including blocks that left inside batch frames: bytes the generic
    /// layer copied vs. handed down by reference, and how the shared
    /// buffer pool served the message's checkouts on every rail.
    MessageStats {
        copied_bytes: u64,
        borrowed_bytes: u64,
        pool_hits: u64,
        pool_misses: u64,
    },
    /// A fault-armed TM retransmitted frames to `peer` before its send was
    /// acknowledged.
    Retransmit { peer: NodeId, retries: u64 },
    /// A bounded wait on `peer` (credit return, rendezvous CTS, flag
    /// write, ack) expired.
    CreditTimeout { peer: NodeId },
    /// A virtual-channel route was marked down (index into the channel's
    /// route list).
    RouteDown { route: usize },
    /// A message to `dst` was rerouted onto alternate route `route` after
    /// its primary failed.
    Failover { dst: NodeId, route: usize },
    /// A partially reassembled fragment from `src` was discarded during
    /// recovery (the retransmitted message restarts from offset 0).
    FragmentDiscarded { src: NodeId },
    /// The RailScheduler chose `rail` as the home rail for a message to
    /// `dst` (recorded on multirail channels only, so single-rail trace
    /// streams are byte-identical to the pre-multirail library).
    RailSelect { dst: NodeId, rail: usize },
    /// A large CHEAPER block of `len` bytes was striped into `chunks`
    /// chunks over `rails` alive rails.
    Stripe {
        len: usize,
        chunks: usize,
        rails: usize,
    },
    /// A rail was quarantined after a link failure; its traffic fails
    /// over to the surviving rails.
    RailDown { rail: usize },
    /// A send batch to `dst` closed and its multi-envelope frame of
    /// `packets` packets (`bytes` payload bytes, envelopes excluded) hit
    /// the wire; `reason` is what closed it.
    BatchFlush {
        dst: NodeId,
        packets: usize,
        bytes: usize,
        reason: FlushReason,
    },
}

/// A timestamped event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Traced {
    pub at: VTime,
    pub event: TraceEvent,
}

/// Per-channel trace recorder.
#[derive(Default)]
pub struct Tracer {
    enabled: AtomicBool,
    events: Mutex<Vec<Traced>>,
}

impl Tracer {
    pub fn new() -> Self {
        Tracer::default()
    }

    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Release);
    }

    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Record `event` at the current virtual time (no-op when disabled).
    pub fn record(&self, event: TraceEvent) {
        if !self.is_enabled() {
            return;
        }
        self.events.lock().push(Traced {
            at: time::now(),
            event,
        });
    }

    /// Snapshot of all recorded events, in order.
    pub fn events(&self) -> Vec<Traced> {
        self.events.lock().clone()
    }

    /// Drop all recorded events.
    pub fn clear(&self) {
        self.events.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use madsim_net::time::{install_clock, restore_clock, ClockHandle};

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        let prev = install_clock(ClockHandle::new());
        t.record(TraceEvent::EndPacking);
        restore_clock(prev);
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_tracer_records_in_order_with_timestamps() {
        let t = Tracer::new();
        t.enable();
        let clock = ClockHandle::new();
        let prev = install_clock(clock.clone());
        t.record(TraceEvent::BeginPacking { dst: 3 });
        clock.advance(madsim_net::time::VDuration::from_micros(5));
        t.record(TraceEvent::EndPacking);
        restore_clock(prev);
        let ev = t.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].event, TraceEvent::BeginPacking { dst: 3 });
        assert_eq!(ev[1].at.as_nanos(), 5_000);
        t.clear();
        assert!(t.events().is_empty());
    }
}
