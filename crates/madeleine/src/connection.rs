//! The per-peer **connection** layer of the channel stack.
//!
//! Madeleine II guarantees in-order delivery *per connection* (paper §2.1),
//! so the natural home of ordering state is a per-peer object, not the
//! channel. Historically the channel kept two `Mutex<HashMap<NodeId, u32>>`
//! maps for send/recv sequence numbers; every sender — even ones talking to
//! *different* peers — serialized on those locks. [`Connection`] replaces
//! them with plain atomics pinned in an immutable per-channel table
//! ([`Connections`]), so two threads sending to distinct peers never touch
//! the same cache line, and the lookup is a wait-free read of a frozen map.
//!
//! The connection also carries the multirail stripe-block counters: both
//! endpoints count striped blocks per direction, which gives the stripe
//! engine a wire-free agreement on a per-block ack tag (see
//! [`crate::rail`]).

use crate::batch::{RecvBatch, SendBatch};
use crate::progress::{OpId, OpSlab};
use madsim_net::NodeId;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Ordering state for one peer of a channel.
pub struct Connection {
    peer: NodeId,
    /// Stable index of this connection in the channel's member list —
    /// identical on every node (members are listed in world-declaration
    /// order), so schedulers can derive the same home rail everywhere
    /// without negotiating.
    index: usize,
    /// Next message sequence number toward the peer.
    send_seq: AtomicU32,
    /// Expected next sequence number from the peer.
    recv_seq: AtomicU32,
    /// Striped blocks sent toward the peer (multirail only).
    tx_stripe_blocks: AtomicU64,
    /// Striped blocks received from the peer (multirail only).
    rx_stripe_blocks: AtomicU64,
    /// Nonblocking ops posted toward the peer, oldest first. The progress
    /// engine advances only the head, so the wire stream stays in posting
    /// order and at most one rendezvous per peer is outstanding (a CTS can
    /// never pair with the wrong long send). Empty in blocking-only
    /// programs — the fast path pays one uncontended lock per fence check.
    in_flight: Mutex<VecDeque<OpId>>,
    /// Op state for every nonblocking op addressed to this peer: a slab
    /// with generational indices (see [`crate::progress`]). Sharding the
    /// old global op table here means posters/waiters on distinct peers
    /// never touch the same lock.
    ops: Mutex<OpSlab>,
    /// Serializes progress ticks *on this connection only* — the
    /// replacement for the engine's old global tick lock. Ticks on other
    /// peers run concurrently.
    tick: Mutex<()>,
    /// Outgoing small packets coalescing toward the peer (batching
    /// enabled only; stays empty and lock-cheap otherwise).
    send_batch: Mutex<SendBatch>,
    /// Packets split out of arrived batch frames, awaiting their
    /// `unpack` calls.
    recv_batch: Mutex<RecvBatch>,
}

impl Connection {
    fn new(peer: NodeId, index: usize) -> Self {
        Connection {
            peer,
            index,
            send_seq: AtomicU32::new(0),
            recv_seq: AtomicU32::new(0),
            tx_stripe_blocks: AtomicU64::new(0),
            rx_stripe_blocks: AtomicU64::new(0),
            in_flight: Mutex::new(VecDeque::new()),
            ops: Mutex::new(OpSlab::new()),
            tick: Mutex::new(()),
            send_batch: Mutex::new(SendBatch::new()),
            recv_batch: Mutex::new(RecvBatch::new()),
        }
    }

    /// The connection's outgoing batch (see [`crate::batch`]).
    pub(crate) fn send_batch(&self) -> &Mutex<SendBatch> {
        &self.send_batch
    }

    /// The connection's incoming split-frame queue.
    pub(crate) fn recv_batch(&self) -> &Mutex<RecvBatch> {
        &self.recv_batch
    }

    /// The peer this connection points at.
    pub fn peer(&self) -> NodeId {
        self.peer
    }

    /// Position of the peer in the channel's member list (same on every
    /// node).
    pub fn index(&self) -> usize {
        self.index
    }

    /// Claim the next outgoing message sequence number (wait-free).
    pub fn next_send_seq(&self) -> u32 {
        self.send_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Validate and consume an incoming sequence number: `true` iff `seq`
    /// is exactly the expected next one. Callers are serialized by the
    /// channel's single-open-incoming-message guard, so a load/store pair
    /// suffices — no CAS loop on the hot path.
    pub fn accept_recv_seq(&self, seq: u32) -> bool {
        let expect = self.recv_seq.load(Ordering::Acquire);
        if seq != expect {
            return false;
        }
        self.recv_seq
            .store(expect.wrapping_add(1), Ordering::Release);
        true
    }

    /// Peek the next expected incoming sequence number without consuming
    /// it. Compact-wire receivers use this to *predict* the exact header
    /// bytes the peer must have sent (variable-length headers cannot be
    /// length-prefixed on exact-read transmission modules); the number is
    /// only consumed via [`accept_recv_seq`](Self::accept_recv_seq) once
    /// the bytes match.
    pub(crate) fn expected_recv_seq(&self) -> u32 {
        self.recv_seq.load(Ordering::Acquire)
    }

    /// Claim the send-side id of the next striped block toward the peer.
    pub(crate) fn next_tx_stripe_block(&self) -> u64 {
        self.tx_stripe_blocks.fetch_add(1, Ordering::Relaxed)
    }

    /// Claim the receive-side id of the next striped block from the peer.
    pub(crate) fn next_rx_stripe_block(&self) -> u64 {
        self.rx_stripe_blocks.fetch_add(1, Ordering::Relaxed)
    }

    /// Append an op to the tail of the in-flight list.
    pub(crate) fn push_in_flight(&self, id: OpId) {
        self.in_flight.lock().push_back(id);
    }

    /// The op at position `pos` of the in-flight list (0 = FIFO head).
    /// The progress engine walks past head ops parked in
    /// [`OpState::Batched`](crate::progress::OpState::Batched), so it
    /// addresses ops by position, not just the front.
    pub(crate) fn in_flight_at(&self, pos: usize) -> Option<OpId> {
        self.in_flight.lock().get(pos).copied()
    }

    /// Remove a retired or cancelled op wherever it sits in the list.
    pub(crate) fn remove_in_flight(&self, id: OpId) {
        self.in_flight.lock().retain(|&x| x != id);
    }

    /// Whether no nonblocking op is outstanding toward the peer.
    pub(crate) fn in_flight_is_empty(&self) -> bool {
        self.in_flight.lock().is_empty()
    }

    /// This connection's op slab (state of every nonblocking op toward
    /// the peer).
    pub(crate) fn ops(&self) -> &Mutex<OpSlab> {
        &self.ops
    }

    /// This connection's tick lock (per-peer progress serialization).
    pub(crate) fn tick(&self) -> &Mutex<()> {
        &self.tick
    }
}

/// The frozen connection table of one channel: one [`Connection`] per
/// remote member, built once at channel construction. Lookups after that
/// are read-only — no lock anywhere on the sequence-number path.
pub struct Connections {
    map: HashMap<NodeId, Connection>,
}

impl Connections {
    /// Build the table for a channel whose member list is `peers` (in
    /// world-declaration order, including `me`, which gets no entry).
    pub fn new(me: NodeId, peers: &[NodeId]) -> Self {
        let map = peers
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p != me)
            .map(|(i, &p)| (p, Connection::new(p, i)))
            .collect();
        Connections { map }
    }

    /// The connection toward `peer`, if it is a member.
    pub fn get(&self, peer: NodeId) -> Option<&Connection> {
        self.map.get(&peer)
    }

    /// Number of remote members.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate over every peer's connection (order unspecified).
    pub fn iter(&self) -> impl Iterator<Item = &Connection> {
        self.map.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexes_follow_member_order_and_skip_self() {
        let conns = Connections::new(2, &[0, 1, 2, 3]);
        assert_eq!(conns.len(), 3);
        assert!(conns.get(2).is_none());
        assert_eq!(conns.get(0).unwrap().index(), 0);
        assert_eq!(conns.get(1).unwrap().index(), 1);
        assert_eq!(conns.get(3).unwrap().index(), 3);
    }

    #[test]
    fn send_seq_increments_per_peer_independently() {
        let conns = Connections::new(0, &[0, 1, 2]);
        let a = conns.get(1).unwrap();
        let b = conns.get(2).unwrap();
        assert_eq!(a.next_send_seq(), 0);
        assert_eq!(a.next_send_seq(), 1);
        assert_eq!(b.next_send_seq(), 0);
    }

    #[test]
    fn recv_seq_rejects_gaps_and_replays() {
        let conns = Connections::new(0, &[0, 1]);
        let c = conns.get(1).unwrap();
        assert!(c.accept_recv_seq(0));
        assert!(!c.accept_recv_seq(0), "replay must be rejected");
        assert!(!c.accept_recv_seq(2), "gap must be rejected");
        assert!(c.accept_recv_seq(1));
    }

    #[test]
    fn stripe_block_counters_are_per_direction() {
        let conns = Connections::new(0, &[0, 1]);
        let c = conns.get(1).unwrap();
        assert_eq!(c.next_tx_stripe_block(), 0);
        assert_eq!(c.next_tx_stripe_block(), 1);
        assert_eq!(c.next_rx_stripe_block(), 0);
    }
}
