//! The VIA protocol module.
//!
//! One transmission module over per-peer Virtual Interfaces. VIA imposes
//! two disciplines that shape the TM:
//!
//! * data travels in **registered buffers**, so the TM runs the StaticCopy
//!   policy over a pool of descriptor-sized buffers;
//! * receive descriptors must be **preposted**: each VI keeps a window of
//!   posted descriptors, reposting as messages are consumed, and senders
//!   respect the window with batched credit returns on a control VI — a
//!   late descriptor would mean a dropped packet (the simulated stack
//!   panics, so getting this wrong is loud).

use crate::bmm::SendPolicy;
use crate::error::{MadError, MadResult};
use crate::flags::{RecvMode, SendMode};
use crate::pmm::Pmm;
use crate::polling::PollPolicy;
use crate::pool::BufPool;
use crate::stats::Stats;
use crate::tm::{StaticBuf, TmCaps, TmId, TransmissionModule};
use crate::trace::{TraceEvent, Tracer};
use madsim_net::stacks::via::{Vi, Via};
use madsim_net::world::Adapter;
use madsim_net::{LinkError, NodeId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Registered buffer (descriptor) size.
pub const VIA_BUF: usize = 8192;
/// Receive descriptors preposted per data VI. Sized generously: a sender
/// whose window closes blocks for a credit return, and credits only flow
/// when the *peer's application* consumes — under full-duplex bursts
/// (both sides fire many sends before receiving) a tight window deadlocks
/// both ends in the credit wait. Descriptors are cheap in the simulation,
/// so buy headroom instead.
const WINDOW: usize = 64;
/// Return credits every this many consumed buffers.
const CREDIT_BATCH: usize = 8;
/// Descriptors preposted on the credit VI.
const CREDIT_WINDOW: usize = 8;

const SUB_DATA: u64 = 0;
const SUB_CREDIT: u64 = 1;

/// Bounded wait (real time) for credit returns and data arrivals on a
/// fault-armed fabric. VIA has no retransmission, so an expired wait
/// reports the channel down rather than retrying.
const FAULT_WAIT: Duration = Duration::from_millis(2_000);

/// Decode a credit-return packet (8-byte LE count).
fn credit_value(pkt: &[u8]) -> MadResult<usize> {
    let bytes: [u8; 8] = pkt
        .get(..8)
        .and_then(|s| s.try_into().ok())
        .ok_or_else(|| MadError::corrupt("VIA credit packet shorter than 8 bytes"))?;
    Ok(u64::from_le_bytes(bytes) as usize)
}

fn tag(channel_id: u32, sub: u64) -> u64 {
    ((channel_id as u64) << 8) | sub
}

struct PeerVis {
    data: Vi,
    credit: Vi,
    /// Sends in flight against the peer's posted window.
    outstanding: usize,
    /// Messages consumed since the last credit return.
    consumed: usize,
}

/// Build the VIA PMM for one channel (collective: every member preposts).
pub fn build(
    adapter: &Adapter,
    channel_id: u32,
    poll: PollPolicy,
    timing: Option<madsim_net::stacks::via::ViaTiming>,
    pool: BufPool,
    stats: Arc<Stats>,
    tracer: Arc<Tracer>,
) -> Arc<dyn Pmm> {
    let via = match timing {
        Some(t) => Via::with_timing(adapter, t),
        None => Via::new(adapter),
    };
    let me = via.node();
    let mut vis = HashMap::new();
    for &peer in adapter.peers() {
        if peer == me {
            continue;
        }
        let mut data = via.open_vi(peer, tag(channel_id, SUB_DATA));
        let mut credit = via.open_vi(peer, tag(channel_id, SUB_CREDIT));
        for _ in 0..WINDOW {
            data.post_recv(VIA_BUF);
        }
        for _ in 0..CREDIT_WINDOW {
            credit.post_recv(8);
        }
        vis.insert(
            peer,
            Mutex::new(PeerVis {
                data,
                credit,
                outstanding: 0,
                consumed: 0,
            }),
        );
    }
    let vis = Arc::new(vis);
    let tm: Arc<dyn TransmissionModule> = Arc::new(ViaTm {
        vis: Arc::clone(&vis),
        pool,
        stats,
        tracer,
    });
    Arc::new(ViaPmm {
        vis,
        tms: [tm],
        poll,
    })
}

struct ViaPmm {
    vis: Arc<HashMap<NodeId, Mutex<PeerVis>>>,
    tms: [Arc<dyn TransmissionModule>; 1],
    poll: PollPolicy,
}

impl Pmm for ViaPmm {
    fn name(&self) -> &'static str {
        "via"
    }

    fn tms(&self) -> &[Arc<dyn TransmissionModule>] {
        &self.tms
    }

    fn select(&self, _len: usize, _s: SendMode, _r: RecvMode) -> TmId {
        0
    }

    fn policy(&self, _id: TmId) -> SendPolicy {
        SendPolicy::StaticCopy
    }

    fn wait_incoming(&self) -> NodeId {
        self.poll.wait(|| self.poll_incoming())
    }

    fn poll_incoming(&self) -> Option<NodeId> {
        self.vis
            .iter()
            .find(|(_, vi)| vi.lock().data.has_pending())
            .map(|(&peer, _)| peer)
    }

    fn supports_batching(&self) -> bool {
        // A batch frame is one descriptor's payload; the frame-size cap
        // (buffer_cap minus envelope overhead) keeps it within VIA_BUF.
        true
    }
}

struct ViaTm {
    vis: Arc<HashMap<NodeId, Mutex<PeerVis>>>,
    pool: BufPool,
    stats: Arc<Stats>,
    tracer: Arc<Tracer>,
}

impl ViaTm {
    fn with_peer<T>(&self, peer: NodeId, f: impl FnOnce(&mut PeerVis) -> T) -> T {
        let vi = self
            .vis
            .get(&peer)
            .unwrap_or_else(|| panic!("no VIA VI to node {peer}"));
        f(&mut vi.lock())
    }

    /// Lift an expired bounded wait into the taxonomy: VIA has no
    /// retransmission, so a silent peer means the channel is down.
    fn wait_err(&self, e: LinkError, peer: NodeId) -> MadError {
        match e {
            LinkError::PeerDead => MadError::PeerUnreachable { peer },
            LinkError::Timeout => {
                self.stats.record_link_timeout();
                self.tracer.record(TraceEvent::CreditTimeout { peer });
                MadError::ChannelDown
            }
        }
    }
}

impl TransmissionModule for ViaTm {
    fn name(&self) -> &'static str {
        "via/registered"
    }

    fn caps(&self) -> TmCaps {
        TmCaps {
            static_buffers: true,
            buffer_cap: VIA_BUF,
            gather: false,
        }
    }

    fn send_buffer(&self, dst: NodeId, data: &[u8]) -> MadResult<()> {
        assert!(data.len() <= VIA_BUF, "VIA dynamic send exceeds buffer");
        let mut buf = self.obtain_static_buffer();
        buf.spare_mut()[..data.len()].copy_from_slice(data);
        buf.advance(data.len());
        self.send_static_buffer(dst, buf)
    }

    fn send_static_buffer(&self, dst: NodeId, buf: StaticBuf) -> MadResult<()> {
        self.with_peer(dst, |p| {
            // Refresh the window view from any queued credit returns.
            while let Some(pkt) = p.credit.try_recv() {
                let n = credit_value(&pkt)?;
                p.outstanding = p.outstanding.saturating_sub(n);
                p.credit.post_recv(8);
            }
            while p.outstanding >= WINDOW {
                // Window closed: block for a credit return. On a fault-armed
                // fabric the wait is bounded — a vanished receiver marks the
                // channel down instead of hanging forever.
                let pkt = if p.credit.faulty() {
                    p.credit
                        .recv_timeout(FAULT_WAIT)
                        .map_err(|e| self.wait_err(e, dst))?
                } else {
                    p.credit.recv()
                };
                let n = credit_value(&pkt)?;
                p.outstanding = p.outstanding.saturating_sub(n);
                p.credit.post_recv(8);
            }
            p.outstanding += 1;
            p.data.send(buf.filled());
            Ok(())
        })
    }

    fn receive_buffer(&self, src: NodeId, dst: &mut [u8]) -> MadResult<()> {
        let buf = self.receive_static_buffer(src)?;
        assert_eq!(buf.len(), dst.len(), "VIA dynamic receive length mismatch");
        dst.copy_from_slice(buf.filled());
        Ok(())
    }

    fn receive_static_buffer(&self, src: NodeId) -> MadResult<StaticBuf> {
        self.with_peer(src, |p| {
            // The announcing header already arrived on this VI, so the data
            // wait is bounded on a fault-armed fabric too.
            let data = if p.data.faulty() {
                p.data
                    .recv_timeout(FAULT_WAIT)
                    .map_err(|e| self.wait_err(e, src))?
            } else {
                p.data.recv()
            };
            p.data.post_recv(VIA_BUF);
            p.consumed += 1;
            if p.consumed >= CREDIT_BATCH {
                let n = p.consumed as u64;
                p.consumed = 0;
                p.credit.send(&n.to_le_bytes());
            }
            Ok(StaticBuf::shared(data, 0))
        })
    }

    fn obtain_static_buffer(&self) -> StaticBuf {
        // Pool-backed registered buffer: VIA registration is expensive on
        // real hardware, which is exactly why reuse matters.
        StaticBuf::pooled(self.pool.checkout(VIA_BUF), 0)
    }
}
