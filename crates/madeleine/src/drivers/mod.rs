//! Protocol drivers: one [`crate::pmm::Pmm`] implementation per
//! supported network interface (paper §5: BIP, SISCI, TCP, VIA — plus SBP
//! for the §6 static-buffer analysis).

pub mod bip;
pub mod sbp;
pub mod sisci;
pub mod tcp;
pub mod via;

use crate::config::{Config, HostModel, Protocol};
use crate::pmm::Pmm;
use crate::pool::BufPool;
use crate::stats::Stats;
use crate::trace::Tracer;
use madsim_net::world::{Adapter, NetKind};
use std::sync::Arc;

/// Instantiate the PMM for one channel. Collective: every member of the
/// channel's network must call this concurrently (drivers exchange
/// segments / connections / preposted descriptors during construction).
///
/// `pool` is the channel's buffer pool: static-buffer protocols (BIP
/// short, VIA, SBP) draw their send-side buffers from it so obtain/release
/// cycles recycle warm slabs instead of allocating.
///
/// `tracer` is the channel's event tracer: on a fault-armed fabric the
/// drivers record recovery events (retransmissions, credit timeouts)
/// into it alongside the channel's own pack/unpack stream.
#[allow(clippy::too_many_arguments)]
pub fn build_pmm(
    protocol: Protocol,
    adapter: &Adapter,
    channel_id: u32,
    cfg: &Config,
    host: HostModel,
    stats: Arc<Stats>,
    pool: BufPool,
    tracer: Arc<Tracer>,
) -> Arc<dyn Pmm> {
    let poll = cfg.poll.0;
    match protocol {
        Protocol::Tcp => {
            assert_eq!(adapter.kind(), NetKind::Ethernet, "TCP needs Ethernet");
            tcp::build(
                adapter,
                channel_id,
                host,
                stats,
                poll,
                cfg.timings.tcp,
                tracer,
            )
        }
        Protocol::Bip => {
            assert_eq!(adapter.kind(), NetKind::Myrinet, "BIP needs Myrinet");
            bip::build(
                adapter,
                channel_id,
                host,
                stats,
                poll,
                cfg.timings.bip,
                pool,
                tracer,
            )
        }
        Protocol::Sisci => {
            assert_eq!(adapter.kind(), NetKind::Sci, "SISCI needs SCI");
            sisci::build(
                adapter,
                channel_id,
                cfg.enable_sci_dma,
                poll,
                cfg.timings.sisci,
                stats,
                tracer,
            )
        }
        Protocol::Via => {
            assert_eq!(adapter.kind(), NetKind::ViaSan, "VIA needs a SAN");
            via::build(
                adapter,
                channel_id,
                poll,
                cfg.timings.via,
                pool,
                stats,
                tracer,
            )
        }
        Protocol::Sbp => {
            assert_eq!(adapter.kind(), NetKind::Ethernet, "SBP needs Ethernet");
            sbp::build(
                adapter,
                channel_id,
                poll,
                cfg.timings.sbp,
                pool,
                stats,
                tracer,
            )
        }
    }
}
