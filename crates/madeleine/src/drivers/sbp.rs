//! The SBP protocol module.
//!
//! SBP requires every transmitted byte to pass through kernel-provided
//! static buffers on **both** sides (paper §6, citing Russell & Hatcher).
//! A single StaticCopy TM over the stack's bounded buffer pools: `obtain`
//! blocks when the pool is exhausted, which is the natural flow control.
//! This is the protocol that makes the gateway's static/static worst case
//! reachable in tests.

use crate::bmm::SendPolicy;
use crate::error::{MadError, MadResult};
use crate::flags::{RecvMode, SendMode};
use crate::pmm::Pmm;
use crate::polling::PollPolicy;
use crate::pool::BufPool;
use crate::stats::Stats;
use crate::tm::{StaticBuf, TmCaps, TmId, TransmissionModule};
use crate::trace::{TraceEvent, Tracer};
use madsim_net::stacks::sbp::{Sbp, SBP_BUFFER_SIZE};
use madsim_net::world::Adapter;
use madsim_net::{LinkError, NodeId};
use std::sync::Arc;

fn tag(channel_id: u32) -> u64 {
    ((channel_id as u64) << 8) | 0x53 // 'S'
}

/// Build the SBP PMM for one channel.
pub fn build(
    adapter: &Adapter,
    channel_id: u32,
    poll: PollPolicy,
    timing: Option<madsim_net::stacks::sbp::SbpTiming>,
    pool: BufPool,
    stats: Arc<Stats>,
    tracer: Arc<Tracer>,
) -> Arc<dyn Pmm> {
    let sbp = match timing {
        Some(t) => Sbp::with_timing(adapter, t),
        None => Sbp::new(adapter),
    };
    let tm: Arc<dyn TransmissionModule> = Arc::new(SbpTm {
        sbp: sbp.clone(),
        tag: tag(channel_id),
        pool,
        stats,
        tracer,
    });
    Arc::new(SbpPmm {
        sbp,
        tag: tag(channel_id),
        tms: [tm],
        poll,
    })
}

struct SbpPmm {
    sbp: Sbp,
    tag: u64,
    tms: [Arc<dyn TransmissionModule>; 1],
    poll: PollPolicy,
}

impl Pmm for SbpPmm {
    fn name(&self) -> &'static str {
        "sbp"
    }

    fn tms(&self) -> &[Arc<dyn TransmissionModule>] {
        &self.tms
    }

    fn select(&self, _len: usize, _s: SendMode, _r: RecvMode) -> TmId {
        0
    }

    fn policy(&self, _id: TmId) -> SendPolicy {
        SendPolicy::StaticCopy
    }

    fn wait_incoming(&self) -> NodeId {
        self.poll.wait(|| self.poll_incoming())
    }

    fn poll_incoming(&self) -> Option<NodeId> {
        self.sbp.peek_pending_src(self.tag)
    }

    fn supports_batching(&self) -> bool {
        // A batch frame occupies one kernel buffer on each side.
        true
    }
}

struct SbpTm {
    sbp: Sbp,
    tag: u64,
    pool: BufPool,
    stats: Arc<Stats>,
    tracer: Arc<Tracer>,
}

impl SbpTm {
    /// Lift a fabric link error into the taxonomy, counting timeouts.
    fn link_err(&self, e: LinkError, peer: NodeId) -> MadError {
        if e == LinkError::Timeout {
            self.stats.record_link_timeout();
            self.tracer.record(TraceEvent::CreditTimeout { peer });
        }
        MadError::from_link(e, peer)
    }
}

impl TransmissionModule for SbpTm {
    fn name(&self) -> &'static str {
        "sbp/static"
    }

    fn caps(&self) -> TmCaps {
        TmCaps {
            static_buffers: true,
            buffer_cap: SBP_BUFFER_SIZE,
            gather: false,
        }
    }

    fn send_buffer(&self, dst: NodeId, data: &[u8]) -> MadResult<()> {
        assert!(data.len() <= SBP_BUFFER_SIZE, "SBP dynamic send too large");
        let mut buf = self.obtain_static_buffer();
        buf.spare_mut()[..data.len()].copy_from_slice(data);
        buf.advance(data.len());
        self.send_static_buffer(dst, buf)
    }

    fn send_static_buffer(&self, dst: NodeId, buf: StaticBuf) -> MadResult<()> {
        // The StaticBuf *is* the kernel buffer: obtain_static_buffer below
        // reserved the pool slot, so the hand-off here is free.
        let mut tx = self.sbp.obtain_tx_reserved();
        tx.fill(buf.filled());
        let n = self
            .sbp
            .try_send(dst, self.tag, tx)
            .map_err(|e| self.link_err(e, dst))?;
        if n > 0 {
            self.stats.record_retransmits(n);
            self.tracer.record(TraceEvent::Retransmit {
                peer: dst,
                retries: n,
            });
        }
        Ok(())
    }

    fn receive_buffer(&self, src: NodeId, dst: &mut [u8]) -> MadResult<()> {
        let buf = self.receive_static_buffer(src)?;
        assert_eq!(buf.len(), dst.len(), "SBP dynamic receive length mismatch");
        dst.copy_from_slice(buf.filled());
        Ok(())
    }

    fn receive_static_buffer(&self, src: NodeId) -> MadResult<StaticBuf> {
        let rx = self
            .sbp
            .try_recv_from(src, self.tag)
            .map_err(|e| self.link_err(e, src))?;
        Ok(StaticBuf::shared(rx, 0))
    }

    fn obtain_static_buffer(&self) -> StaticBuf {
        // Reserve a kernel pool slot now (may block on exhaustion); the
        // pooled memory stands in for the kernel buffer itself.
        self.sbp.reserve_tx_slot();
        StaticBuf::pooled(self.pool.checkout(SBP_BUFFER_SIZE), 0)
    }

    fn release_static_buffer(&self, buf: StaticBuf) {
        // Only send-side (owned) buffers hold a pool slot; received buffers
        // wrap the arrival bytes and freed their slot inside the stack.
        if buf.is_owned() {
            self.sbp.unreserve_tx_slot();
        }
    }
}
