//! The BIP protocol module (paper §5.2.2).
//!
//! Two transmission modules, exactly as the paper describes:
//!
//! * **short TM** (blocks < 1 kB): data is copied into preallocated BIP
//!   buffers and shipped without receiver participation. Because BIP's
//!   receive rings are finite and unguarded, the TM layers a **credit-based
//!   flow-control** scheme on top: senders start with one credit per ring
//!   slot and block when they run out; receivers return batched credits on
//!   a dedicated control tag.
//! * **long TM** (≥ 1 kB): the receiver-acknowledgment **rendezvous**
//!   scheme — data is delivered directly to its final location, zero-copy.

use crate::bmm::SendPolicy;
use crate::config::HostModel;
use crate::error::{MadError, MadResult};
use crate::flags::{RecvMode, SendMode};
use crate::pmm::Pmm;
use crate::polling::PollPolicy;
use crate::pool::BufPool;
use crate::stats::Stats;
use crate::tm::{
    PendingKind, StaticBuf, TmCaps, TmId, TmPending, TmSend, TmStep, TransmissionModule,
};
use crate::trace::{TraceEvent, Tracer};
use bytes::Bytes;
use madsim_net::stacks::bip::{Bip, BIP_SHORT_MAX, BIP_SHORT_RING};
use madsim_net::time::{VDuration, VTime};
use madsim_net::world::Adapter;
use madsim_net::NodeId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Blocks shorter than this ride the short TM (BIP's own boundary).
pub const SHORT_LIMIT: usize = BIP_SHORT_MAX;
/// Return credits every this many consumed buffers.
const CREDIT_BATCH: u64 = 4;
/// Bounded wait for credit returns / rendezvous handshakes on a
/// fault-armed fabric. BIP has no retransmission: when this expires the
/// channel is reported down rather than silently hanging.
const FAULT_WAIT: Duration = Duration::from_millis(2_000);

const SUB_DATA: u64 = 0;
const SUB_CREDIT: u64 = 1;
const SUB_LONG: u64 = 2;

fn tag(channel_id: u32, sub: u64) -> u64 {
    ((channel_id as u64) << 8) | sub
}

/// Build the BIP PMM for one channel.
#[allow(clippy::too_many_arguments)]
pub fn build(
    adapter: &Adapter,
    channel_id: u32,
    host: HostModel,
    stats: Arc<Stats>,
    poll: PollPolicy,
    timing: Option<madsim_net::stacks::bip::BipTiming>,
    pool: BufPool,
    tracer: Arc<Tracer>,
) -> Arc<dyn Pmm> {
    let bip = match timing {
        Some(t) => Bip::with_timing(adapter, t),
        None => Bip::new(adapter),
    };
    let short: Arc<dyn TransmissionModule> = Arc::new(BipShortTm {
        bip: bip.clone(),
        data_tag: tag(channel_id, SUB_DATA),
        credit_tag: tag(channel_id, SUB_CREDIT),
        flow: Arc::new(Mutex::new(HashMap::new())),
        host,
        stats: Arc::clone(&stats),
        pool,
        tracer: Arc::clone(&tracer),
    });
    let long: Arc<dyn TransmissionModule> = Arc::new(BipLongTm {
        bip: bip.clone(),
        long_tag: tag(channel_id, SUB_LONG),
        cts_ahead: Mutex::new(HashMap::new()),
        stats,
        tracer,
    });
    Arc::new(BipPmm {
        bip,
        data_tag: tag(channel_id, SUB_DATA),
        tms: [short, long],
        poll,
    })
}

struct BipPmm {
    bip: Bip,
    data_tag: u64,
    tms: [Arc<dyn TransmissionModule>; 2],
    poll: PollPolicy,
}

impl Pmm for BipPmm {
    fn name(&self) -> &'static str {
        "bip"
    }

    fn tms(&self) -> &[Arc<dyn TransmissionModule>] {
        &self.tms
    }

    fn select(&self, len: usize, _s: SendMode, _r: RecvMode) -> TmId {
        if len < SHORT_LIMIT {
            0
        } else {
            1
        }
    }

    fn policy(&self, id: TmId) -> SendPolicy {
        match id {
            0 => SendPolicy::StaticCopy,
            _ => SendPolicy::Eager,
        }
    }

    fn wait_incoming(&self) -> NodeId {
        // Every message opens with its header block, which is < 1 kB and
        // therefore always travels as a short DATA packet.
        self.poll.wait(|| self.poll_incoming())
    }

    fn poll_incoming(&self) -> Option<NodeId> {
        self.bip.peek_short_src(self.data_tag)
    }
}

/// Per-peer flow-control state of the short TM.
struct FlowState {
    /// Send credits remaining (receive-ring slots we may still fill).
    credits: usize,
    /// Buffers received from this peer since the last credit return.
    consumed_since_credit: u64,
}

impl Default for FlowState {
    fn default() -> Self {
        FlowState {
            credits: BIP_SHORT_RING,
            consumed_since_credit: 0,
        }
    }
}

/// Parse a credit-return packet, surfacing truncation as stream damage
/// instead of panicking.
fn credit_value(pkt: &[u8]) -> MadResult<usize> {
    let bytes: [u8; 4] = pkt
        .get(..4)
        .and_then(|s| s.try_into().ok())
        .ok_or_else(|| MadError::corrupt("BIP credit packet shorter than 4 bytes"))?;
    Ok(u32::from_le_bytes(bytes) as usize)
}

/// Decrement a credit for `peer` if one is available (nonblocking half of
/// [`BipShortTm::take_credit`], shared with the credit-wait continuation).
fn try_take_credit(flow: &Mutex<HashMap<NodeId, FlowState>>, peer: NodeId) -> bool {
    let mut flow = flow.lock();
    let st = flow.entry(peer).or_default();
    if st.credits > 0 {
        st.credits -= 1;
        true
    } else {
        false
    }
}

struct BipShortTm {
    bip: Bip,
    data_tag: u64,
    credit_tag: u64,
    flow: Arc<Mutex<HashMap<NodeId, FlowState>>>,
    host: HostModel,
    stats: Arc<Stats>,
    pool: BufPool,
    tracer: Arc<Tracer>,
}

impl BipShortTm {
    /// Absorb any credit-return packets already queued from `peer`.
    fn drain_credits(&self, peer: NodeId) -> MadResult<()> {
        while let Some(pkt) = self.bip.try_recv_short_from(peer, self.credit_tag) {
            let n = credit_value(&pkt)?;
            self.flow.lock().entry(peer).or_default().credits += n;
        }
        Ok(())
    }

    /// Report an expired bounded wait on `peer`: count it, trace it, and
    /// name the condition (dead peer vs. merely down channel).
    fn wait_expired(&self, peer: NodeId) -> MadError {
        self.stats.record_link_timeout();
        self.tracer.record(TraceEvent::CreditTimeout { peer });
        if !self.bip.adapter().reachable_to(peer) {
            MadError::PeerUnreachable { peer }
        } else {
            MadError::ChannelDown
        }
    }

    fn take_credit(&self, peer: NodeId) -> MadResult<()> {
        loop {
            self.drain_credits(peer)?;
            if try_take_credit(&self.flow, peer) {
                return Ok(());
            }
            // Out of credits: block until the receiver returns some. On a
            // fault-armed fabric the wait is bounded — a vanished credit
            // source marks the channel down instead of hanging forever.
            let pkt = if self.bip.adapter().faulty() {
                self.bip
                    .recv_short_from_timeout(peer, self.credit_tag, FAULT_WAIT)
                    .ok_or_else(|| self.wait_expired(peer))?
            } else {
                self.bip.recv_short_from(peer, self.credit_tag)
            };
            let n = credit_value(&pkt)?;
            self.flow.lock().entry(peer).or_default().credits += n;
        }
    }

    /// Account one consumed receive buffer; return batched credits.
    fn account_consumed(&self, peer: NodeId) {
        let send_back = {
            let mut flow = self.flow.lock();
            let st = flow.entry(peer).or_default();
            st.consumed_since_credit += 1;
            if st.consumed_since_credit >= CREDIT_BATCH {
                st.consumed_since_credit = 0;
                true
            } else {
                false
            }
        };
        if send_back {
            self.bip
                .send_short(peer, self.credit_tag, &(CREDIT_BATCH as u32).to_le_bytes());
        }
    }
}

impl TransmissionModule for BipShortTm {
    fn name(&self) -> &'static str {
        "bip/short"
    }

    fn caps(&self) -> TmCaps {
        TmCaps {
            static_buffers: true,
            buffer_cap: BIP_SHORT_MAX,
            gather: false,
        }
    }

    fn send_buffer(&self, dst: NodeId, data: &[u8]) -> MadResult<()> {
        // Dynamic entry point: copy through a static buffer (kept for
        // completeness; the StaticCopy BMM normally uses the static path).
        let mut buf = self.obtain_static_buffer();
        let n = data.len().min(buf.spare());
        assert_eq!(n, data.len(), "short TM buffer overflow");
        buf.spare_mut()[..n].copy_from_slice(data);
        buf.advance(n);
        madsim_net::time::advance(self.host.memcpy(n));
        self.stats.record_tm_copy(n);
        self.send_static_buffer(dst, buf)
    }

    fn send_static_buffer(&self, dst: NodeId, buf: StaticBuf) -> MadResult<()> {
        self.take_credit(dst)?;
        self.bip.send_short(dst, self.data_tag, buf.filled());
        Ok(())
    }

    fn receive_buffer(&self, src: NodeId, dst: &mut [u8]) -> MadResult<()> {
        let buf = self.receive_static_buffer(src)?;
        assert_eq!(
            buf.len(),
            dst.len(),
            "short TM dynamic receive length mismatch"
        );
        dst.copy_from_slice(buf.filled());
        madsim_net::time::advance(self.host.memcpy(dst.len()));
        self.stats.record_tm_copy(dst.len());
        Ok(())
    }

    fn receive_static_buffer(&self, src: NodeId) -> MadResult<StaticBuf> {
        // The announcing header already arrived on this tag, so the data
        // wait is bounded on a fault-armed fabric too.
        let data = if self.bip.adapter().faulty() {
            self.bip
                .recv_short_from_timeout(src, self.data_tag, FAULT_WAIT)
                .ok_or_else(|| self.wait_expired(src))?
        } else {
            self.bip.recv_short_from(src, self.data_tag)
        };
        self.account_consumed(src);
        Ok(StaticBuf::shared(data, 0))
    }

    fn obtain_static_buffer(&self) -> StaticBuf {
        // Pool-backed: obtain/release cycles recycle warm slabs.
        StaticBuf::pooled(self.pool.checkout(BIP_SHORT_MAX), 0)
    }

    fn post_send(&self, dst: NodeId, data: Bytes) -> MadResult<TmSend> {
        // Stage exactly like the blocking dynamic entry point…
        let mut buf = self.obtain_static_buffer();
        assert!(data.len() <= buf.spare(), "short TM buffer overflow");
        buf.spare_mut()[..data.len()].copy_from_slice(&data);
        buf.advance(data.len());
        madsim_net::time::advance(self.host.memcpy(data.len()));
        self.stats.record_tm_copy(data.len());
        // …but take the credit nonblockingly: out of credits becomes a
        // CreditWait continuation instead of a spin.
        self.drain_credits(dst)?;
        if try_take_credit(&self.flow, dst) {
            self.bip.send_short(dst, self.data_tag, buf.filled());
            return Ok(TmSend::Done(madsim_net::time::now()));
        }
        Ok(TmSend::Pending(Box::new(CreditWaitSend {
            bip: self.bip.clone(),
            flow: Arc::clone(&self.flow),
            data_tag: self.data_tag,
            credit_tag: self.credit_tag,
            dst,
            buf: Some(buf),
            deadline: None,
            stats: Arc::clone(&self.stats),
            tracer: Arc::clone(&self.tracer),
        })))
    }
}

/// A short block staged in a static buffer, waiting for a flow-control
/// credit. Each poll absorbs queued credit returns and ships the block as
/// soon as one is available; on a fault-armed fabric the wait is bounded
/// by the same [`FAULT_WAIT`] the blocking path uses.
struct CreditWaitSend {
    bip: Bip,
    flow: Arc<Mutex<HashMap<NodeId, FlowState>>>,
    data_tag: u64,
    credit_tag: u64,
    dst: NodeId,
    buf: Option<StaticBuf>,
    deadline: Option<Instant>,
    stats: Arc<Stats>,
    tracer: Arc<Tracer>,
}

impl TmPending for CreditWaitSend {
    fn kind(&self) -> PendingKind {
        PendingKind::Credit
    }

    fn try_advance(&mut self) -> MadResult<TmStep> {
        while let Some(pkt) = self.bip.try_recv_short_from(self.dst, self.credit_tag) {
            let n = credit_value(&pkt)?;
            self.flow.lock().entry(self.dst).or_default().credits += n;
        }
        if try_take_credit(&self.flow, self.dst) {
            let buf = self.buf.take().expect("credit-wait block already shipped");
            self.bip.send_short(self.dst, self.data_tag, buf.filled());
            return Ok(TmStep::Done(madsim_net::time::now()));
        }
        if self.bip.adapter().faulty() {
            if !self.bip.adapter().reachable_to(self.dst) {
                return Err(MadError::PeerUnreachable { peer: self.dst });
            }
            let deadline = *self
                .deadline
                .get_or_insert_with(|| Instant::now() + FAULT_WAIT);
            if Instant::now() >= deadline {
                self.stats.record_link_timeout();
                self.tracer
                    .record(TraceEvent::CreditTimeout { peer: self.dst });
                return Err(MadError::ChannelDown);
            }
        }
        Ok(TmStep::Pending)
    }

    fn cancel(&mut self) {
        // Nothing reached the wire; the staged buffer drops back to the
        // pool.
        self.buf = None;
    }
}

struct BipLongTm {
    bip: Bip,
    long_tag: u64,
    /// CTSs posted ahead of their receive_buffer, per peer.
    cts_ahead: Mutex<HashMap<NodeId, usize>>,
    stats: Arc<Stats>,
    tracer: Arc<Tracer>,
}

impl BipLongTm {
    /// Lift a rendezvous failure into the taxonomy: an expired handshake
    /// wait means the channel is down (BIP has no retransmission).
    fn rendezvous_err(&self, e: madsim_net::LinkError, peer: NodeId) -> MadError {
        match e {
            madsim_net::LinkError::PeerDead => MadError::PeerUnreachable { peer },
            madsim_net::LinkError::Timeout => {
                self.stats.record_link_timeout();
                self.tracer.record(TraceEvent::CreditTimeout { peer });
                MadError::ChannelDown
            }
        }
    }
}

impl TransmissionModule for BipLongTm {
    fn name(&self) -> &'static str {
        "bip/long"
    }

    fn caps(&self) -> TmCaps {
        TmCaps {
            static_buffers: false,
            buffer_cap: usize::MAX,
            gather: false,
        }
    }

    fn send_buffer(&self, dst: NodeId, data: &[u8]) -> MadResult<()> {
        // Rendezvous: blocks until the receiver posts; zero software copies
        // (the `copy_from_slice` below stages the simulated wire transfer —
        // real BIP DMAs straight from this user memory).
        let payload = bytes::Bytes::copy_from_slice(data);
        if self.bip.adapter().faulty() {
            self.bip
                .try_send_long(dst, self.long_tag, payload, FAULT_WAIT)
                .map_err(|e| self.rendezvous_err(e, dst))
        } else {
            self.bip.send_long(dst, self.long_tag, payload);
            Ok(())
        }
    }

    fn receive_buffer(&self, src: NodeId, dst: &mut [u8]) -> MadResult<()> {
        let posted = {
            let mut m = self.cts_ahead.lock();
            match m.get_mut(&src) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    true
                }
                _ => false,
            }
        };
        let n = if self.bip.adapter().faulty() {
            if !posted {
                self.bip.post_cts(src, self.long_tag);
            }
            self.bip
                .recv_long_posted_timeout(src, self.long_tag, dst, FAULT_WAIT)
                .map_err(|e| self.rendezvous_err(e, src))?
        } else if posted {
            self.bip.recv_long_posted(src, self.long_tag, dst)
        } else {
            self.bip.recv_long(src, self.long_tag, dst)
        };
        assert_eq!(n, dst.len(), "long TM receive length mismatch");
        Ok(())
    }

    fn prefetch(&self, src: NodeId) {
        self.bip.post_cts(src, self.long_tag);
        *self.cts_ahead.lock().entry(src).or_insert(0) += 1;
    }

    fn post_send(&self, dst: NodeId, data: Bytes) -> MadResult<TmSend> {
        if let Some(cts) = self.bip.try_take_cts(dst, self.long_tag) {
            let start = madsim_net::time::now().max(cts);
            let local_done = self.bip.send_long_from(dst, self.long_tag, data, start);
            let host_post = VDuration::from_micros_f64(self.bip.timing().host_post_us);
            return Ok(TmSend::Done(local_done + host_post));
        }
        if self.bip.adapter().faulty() && !self.bip.adapter().reachable_to(dst) {
            return Err(MadError::PeerUnreachable { peer: dst });
        }
        Ok(TmSend::Pending(Box::new(RendezvousSend {
            bip: self.bip.clone(),
            long_tag: self.long_tag,
            dst,
            data: Some(data),
            posted_at: madsim_net::time::now(),
            deadline: None,
            stats: Arc::clone(&self.stats),
            tracer: Arc::clone(&self.tracer),
        })))
    }
}

/// A long block waiting for the receiver's clear-to-send. When the CTS
/// shows up, the transfer is anchored at `max(posted_at, cts_arrival)`:
/// the LANai DMA ran while the host computed, so a poller that notices the
/// CTS late still gets the overlapped timeline — this is the whole point
/// of the nonblocking path.
struct RendezvousSend {
    bip: Bip,
    long_tag: u64,
    dst: NodeId,
    data: Option<Bytes>,
    posted_at: VTime,
    deadline: Option<Instant>,
    stats: Arc<Stats>,
    tracer: Arc<Tracer>,
}

impl TmPending for RendezvousSend {
    fn kind(&self) -> PendingKind {
        PendingKind::Rendezvous
    }

    fn try_advance(&mut self) -> MadResult<TmStep> {
        if let Some(cts) = self.bip.try_take_cts(self.dst, self.long_tag) {
            let data = self.data.take().expect("rendezvous block already shipped");
            let start = self.posted_at.max(cts);
            let local_done = self
                .bip
                .send_long_from(self.dst, self.long_tag, data, start);
            let host_post = VDuration::from_micros_f64(self.bip.timing().host_post_us);
            return Ok(TmStep::Done(local_done + host_post));
        }
        if self.bip.adapter().faulty() {
            if !self.bip.adapter().reachable_to(self.dst) {
                return Err(MadError::PeerUnreachable { peer: self.dst });
            }
            let deadline = *self
                .deadline
                .get_or_insert_with(|| Instant::now() + FAULT_WAIT);
            if Instant::now() >= deadline {
                // Same taxonomy as the blocking rendezvous: an expired
                // handshake marks the channel down (BIP cannot retransmit).
                self.stats.record_link_timeout();
                self.tracer
                    .record(TraceEvent::CreditTimeout { peer: self.dst });
                return Err(MadError::ChannelDown);
            }
        }
        Ok(TmStep::Pending)
    }

    fn cancel(&mut self) {
        self.data = None;
    }
}
