//! The TCP protocol module.
//!
//! One transmission module: the kernel byte stream. Dynamic buffers with
//! aggregation — grouped blocks leave in a single `writev`, so a message of
//! many small blocks costs one kernel traversal instead of one per block.
//! Receiving always copies once (socket buffer → user memory), charged as a
//! host memcpy.

use crate::bmm::SendPolicy;
use crate::config::HostModel;
use crate::error::{MadError, MadResult};
use crate::flags::{RecvMode, SendMode};
use crate::pmm::Pmm;
use crate::polling::PollPolicy;
use crate::stats::Stats;
use crate::tm::{TmCaps, TmId, TransmissionModule};
use crate::trace::{TraceEvent, Tracer};
use madsim_net::stacks::tcp::{TcpConn, TcpStack};
use madsim_net::time;
use madsim_net::world::Adapter;
use madsim_net::{LinkError, NodeId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Build the TCP PMM for one channel. Establishes a connection to every
/// peer eagerly (all session members call this during init).
pub fn build(
    adapter: &Adapter,
    channel_id: u32,
    host: HostModel,
    stats: Arc<Stats>,
    poll: PollPolicy,
    timing: Option<madsim_net::stacks::tcp::TcpTiming>,
    tracer: Arc<Tracer>,
) -> Arc<dyn Pmm> {
    let stack = match timing {
        Some(t) => TcpStack::with_timing(adapter, t),
        None => TcpStack::new(adapter),
    };
    let me = stack.node();
    let mut conns = HashMap::new();
    for &peer in adapter.peers() {
        if peer != me {
            conns.insert(peer, stack.connect(peer, channel_id));
        }
    }
    let tm: Arc<dyn TransmissionModule> = Arc::new(TcpTm {
        conns: Mutex::new(conns),
        host,
        stats,
        tracer,
    });
    Arc::new(TcpPmm {
        stack,
        port: channel_id,
        tms: [tm],
        poll,
    })
}

struct TcpPmm {
    stack: TcpStack,
    port: u32,
    tms: [Arc<dyn TransmissionModule>; 1],
    poll: PollPolicy,
}

impl Pmm for TcpPmm {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn tms(&self) -> &[Arc<dyn TransmissionModule>] {
        &self.tms
    }

    fn select(&self, _len: usize, _s: SendMode, _r: RecvMode) -> TmId {
        0
    }

    fn policy(&self, _id: TmId) -> SendPolicy {
        SendPolicy::Aggregate
    }

    fn wait_incoming(&self) -> NodeId {
        self.poll.wait(|| self.poll_incoming())
    }

    fn poll_incoming(&self) -> Option<NodeId> {
        self.stack.peek_pending_src(self.port)
    }

    fn supports_batching(&self) -> bool {
        // The byte stream carries any frame length; batch frames ride the
        // same ARQ segments as ordinary sends.
        true
    }
}

struct TcpTm {
    conns: Mutex<HashMap<NodeId, TcpConn>>,
    host: HostModel,
    stats: Arc<Stats>,
    tracer: Arc<Tracer>,
}

impl TcpTm {
    fn with_conn<T>(&self, peer: NodeId, f: impl FnOnce(&mut TcpConn) -> T) -> T {
        let mut conns = self.conns.lock();
        let conn = conns
            .get_mut(&peer)
            .unwrap_or_else(|| panic!("no TCP connection to node {peer}"));
        f(conn)
    }

    /// Account a completed reliable send: `n` retransmissions happened
    /// before the ack arrived (0 on the fault-free fast path).
    fn note_retransmits(&self, peer: NodeId, n: u64) {
        if n > 0 {
            self.stats.record_retransmits(n);
            self.tracer
                .record(TraceEvent::Retransmit { peer, retries: n });
        }
    }

    /// Lift a fabric link error into the taxonomy, counting timeouts.
    fn link_err(&self, e: LinkError, peer: NodeId) -> MadError {
        if e == LinkError::Timeout {
            self.stats.record_link_timeout();
            self.tracer.record(TraceEvent::CreditTimeout { peer });
        }
        MadError::from_link(e, peer)
    }
}

impl TransmissionModule for TcpTm {
    fn name(&self) -> &'static str {
        "tcp/stream"
    }

    fn caps(&self) -> TmCaps {
        TmCaps {
            static_buffers: false,
            buffer_cap: usize::MAX,
            gather: true,
        }
    }

    fn send_buffer(&self, dst: NodeId, data: &[u8]) -> MadResult<()> {
        let n = self
            .with_conn(dst, |c| c.try_send(data))
            .map_err(|e| self.link_err(e, dst))?;
        self.note_retransmits(dst, n);
        Ok(())
    }

    fn send_buffer_group(&self, dst: NodeId, bufs: &[&[u8]]) -> MadResult<()> {
        if bufs.is_empty() {
            return Ok(());
        }
        let n = self
            .with_conn(dst, |c| c.try_send_vectored(bufs))
            .map_err(|e| self.link_err(e, dst))?;
        self.note_retransmits(dst, n);
        Ok(())
    }

    fn send_gather(&self, dst: NodeId, bufs: &[&[u8]]) -> MadResult<()> {
        // Native gather: the blocks go to the kernel in one writev-style
        // call, straight from where they lie — no coalescing staging copy.
        self.send_buffer_group(dst, bufs)
    }

    fn receive_buffer(&self, src: NodeId, dst: &mut [u8]) -> MadResult<()> {
        self.with_conn(src, |c| c.try_recv_exact(dst))
            .map_err(|e| self.link_err(e, src))?;
        // Socket buffer → user memory copy: a cost of the protocol itself,
        // not of the generic layer (no emission flag could avoid it).
        time::advance(self.host.memcpy(dst.len()));
        self.stats.record_tm_copy(dst.len());
        Ok(())
    }

    fn receive_sub_buffer_group(&self, src: NodeId, dsts: &mut [&mut [u8]]) -> MadResult<()> {
        let mut total = 0;
        self.with_conn(src, |c| -> Result<(), LinkError> {
            for d in dsts.iter_mut() {
                c.try_recv_exact(d)?;
                total += d.len();
            }
            Ok(())
        })
        .map_err(|e| self.link_err(e, src))?;
        if total > 0 {
            time::advance(self.host.memcpy(total));
            self.stats.record_tm_copy(total);
        }
        Ok(())
    }
}
