//! The SISCI protocol module (paper §5.2.1).
//!
//! Three transmission modules over Dolphin SCI's remote-mapped segments:
//!
//! * **short TM** (blocks ≤ 512 B) — a small low-latency PIO ring; this is
//!   where the paper's 3.9 µs minimal latency comes from;
//! * **regular PIO TM** — bulk PIO writes with the **adaptive
//!   dual-buffering** algorithm: transfers up to 8 kB go out in a single
//!   shot, larger ones are pipelined in 8 kB chunks through a two-chunk
//!   ring so the sender's PIO overlaps the receiver's copy-out (the
//!   visible kink of Fig. 4);
//! * **DMA TM** — implemented but **disabled by default**, exactly as in
//!   the paper ("we have not been able to get more than 35 MB/s with
//!   Dolphin SCI D310 NICs"); enable it with `Config::with_sci_dma` for
//!   the ablation benchmark.
//!
//! ### Wire discipline
//!
//! Each TM drives a **byte-stream ring** per direction: the sender PIOs
//! chunks into ring positions `stream_pos % ring` and publishes a flag
//! carrying the total bytes written; the receiver copies out at its own
//! position and publishes consumed-byte acks. Framing is entirely
//! positional — Madeleine messages are not self-described, and the stream
//! never needs padding or alignment between commits, so small blocks from
//! consecutive packs (including the internal message header) coalesce into
//! a single PIO write.
//!
//! For each ordered pair X→Y there is one segment owned (and polled) by Y
//! and mapped (and written) by X. It carries X's rings for X→Y *plus* X's
//! ack flags for the reverse direction Y→X (acks must live in a segment
//! their reader polls locally — remote SCI reads are prohibitively slow).

use crate::bmm::SendPolicy;
use crate::error::{MadError, MadResult};
use crate::flags::{RecvMode, SendMode};
use crate::pmm::Pmm;
use crate::polling::PollPolicy;
use crate::stats::Stats;
use crate::tm::{TmCaps, TmId, TransmissionModule};
use crate::trace::{TraceEvent, Tracer};
use madsim_net::stacks::sisci::{LocalSegment, RemoteSegment, Sisci};
use madsim_net::time::{self, VDuration, VTime};
use madsim_net::world::Adapter;
use madsim_net::{FaultState, LinkError, NodeId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Largest block carried by the short TM.
pub const SHORT_LIMIT: usize = 512;
/// Short ring: 8 × 512 B.
const SHORT_RING: usize = 4096;
const SHORT_CHUNK: usize = 512;
/// Bulk ring: 4 × 8 kB (two dual-buffer pairs: one being written, one
/// being drained, with slack so ring acks do not resonate with consumers
/// that batch reads, e.g. a forwarding gateway).
pub const CHUNK_SIZE: usize = 8192;
const DATA_RING: usize = 4 * CHUNK_SIZE;
/// DMA ring: one 16 kB chunk, stop-and-wait (the engine is slow anyway).
const DMA_CHUNK: usize = 16384;
const DMA_RING: usize = DMA_CHUNK;

/// Fixed cost of arming the dual-buffering pipeline for a bulk transfer.
const DUALBUF_SETUP_US: f64 = 20.0;

/// Bounded wait (real time) for flag/ack publication on a fault-armed
/// fabric. SCI has no retransmission, so an expired wait reports the
/// channel down rather than retrying.
const FAULT_WAIT: Duration = Duration::from_millis(2_000);

// Segment layout offsets.
const OFF_SHORT: usize = 0;
const OFF_SHORT_FLAG: usize = OFF_SHORT + SHORT_RING; // 4096
const OFF_SHORT_ACK: usize = OFF_SHORT_FLAG + 4;
const OFF_DATA_FLAG: usize = OFF_SHORT_ACK + 4;
const OFF_DATA_ACK: usize = OFF_DATA_FLAG + 4;
const OFF_DMA_FLAG: usize = OFF_DATA_ACK + 4;
const OFF_DMA_ACK: usize = OFF_DMA_FLAG + 4;
const OFF_DATA: usize = 4128;
const OFF_DMA: usize = OFF_DATA + DATA_RING;
const SEG_SIZE: usize = OFF_DMA + DMA_RING;

fn seg_id(channel_id: u32, from: NodeId) -> u32 {
    assert!(from < 256, "SISCI driver assumes node ids < 256");
    (channel_id << 8) | from as u32
}

/// Sender-side position of one stream.
struct SendStream {
    /// Total bytes written to the stream since session start.
    pos: u32,
    /// Highest consumed-bytes ack observed.
    acked: u32,
}

/// Receiver-side position of one stream.
struct RecvStream {
    /// Total bytes consumed.
    pos: u32,
    /// Highest written-bytes flag observed.
    known: u32,
    /// Last consumed position acknowledged to the sender.
    acked: u32,
}

/// Everything one node holds about one peer on one SISCI channel.
struct PeerLink {
    /// Owned by us; the peer writes its data (peer→me) and its acks here.
    local: LocalSegment,
    /// Owned by the peer; we write our data (me→peer) and our acks here.
    remote: RemoteSegment,
    streams: [StreamPair; 3],
    /// Fault state of the fabric, if armed (`None` on a clean world).
    faults: Option<Arc<FaultState>>,
    me: NodeId,
    peer: NodeId,
}

struct StreamPair {
    send: Mutex<SendStream>,
    recv: Mutex<RecvStream>,
}

impl StreamPair {
    fn new() -> Self {
        StreamPair {
            send: Mutex::new(SendStream { pos: 0, acked: 0 }),
            recv: Mutex::new(RecvStream {
                pos: 0,
                known: 0,
                acked: 0,
            }),
        }
    }
}

/// Geometry of one stream within the segment.
#[derive(Clone, Copy)]
struct StreamGeom {
    index: usize,
    data_off: usize,
    ring: usize,
    /// Largest single PIO/DMA write; bounds the pipelining granularity.
    chunk: usize,
    flag_off: usize,
    ack_off: usize,
    /// True for the DMA engine, false for PIO.
    dma: bool,
}

const SHORT_GEOM: StreamGeom = StreamGeom {
    index: 0,
    data_off: OFF_SHORT,
    ring: SHORT_RING,
    chunk: SHORT_CHUNK,
    flag_off: OFF_SHORT_FLAG,
    ack_off: OFF_SHORT_ACK,
    dma: false,
};

const DATA_GEOM: StreamGeom = StreamGeom {
    index: 1,
    data_off: OFF_DATA,
    ring: DATA_RING,
    chunk: CHUNK_SIZE,
    flag_off: OFF_DATA_FLAG,
    ack_off: OFF_DATA_ACK,
    dma: false,
};

const DMA_GEOM: StreamGeom = StreamGeom {
    index: 2,
    data_off: OFF_DMA,
    ring: DMA_RING,
    chunk: DMA_CHUNK,
    flag_off: OFF_DMA_FLAG,
    ack_off: OFF_DMA_ACK,
    dma: true,
};

/// Largest ack the receiver may withhold without ever starving a sender
/// that needs room for one full chunk: `batch <= ring - chunk + 1`.
fn ack_batch(geom: StreamGeom) -> u32 {
    ((geom.ring - geom.chunk + 1).min(geom.ring / 4).max(1)) as u32
}

fn checked_add(pos: u32, n: usize, what: &str) -> u32 {
    pos.checked_add(n as u32)
        .unwrap_or_else(|| panic!("SISCI {what} stream exceeded 4 GiB (u32 flag wrap)"))
}

impl PeerLink {
    /// Wait until the local flag at `off` reaches `val`. Unbounded on a
    /// clean world; bounded by [`FAULT_WAIT`] when faults are armed, with
    /// expiry distinguishing a dead peer from a merely silent one.
    fn wait_flag(&self, off: usize, val: u32) -> Result<u32, LinkError> {
        let Some(faults) = &self.faults else {
            return Ok(self.local.wait_flag_ge_val(off, val).0);
        };
        if !faults.reachable(self.me, self.peer) {
            return Err(LinkError::PeerDead);
        }
        match self.local.wait_flag_ge_val_timeout(off, val, FAULT_WAIT) {
            Some((v, _)) => Ok(v),
            None if !faults.reachable(self.me, self.peer) => Err(LinkError::PeerDead),
            None => Err(LinkError::Timeout),
        }
    }

    /// Stream a commit-group of blocks to the peer through `geom`.
    fn send_group(&self, geom: StreamGeom, bufs: &[&[u8]]) -> Result<(), LinkError> {
        let total: usize = bufs.iter().map(|b| b.len()).sum();
        if total == 0 {
            return Ok(());
        }
        let mut st = self.streams[geom.index].send.lock();
        // Gather into chunk-sized PIO/DMA writes; the staging buffer models
        // the CPU's write-combining gather, not a user-visible copy.
        let mut stage = vec![0u8; geom.chunk];
        let mut stage_fill = 0usize;
        let flush_chunk = |st: &mut SendStream, stage: &[u8]| -> Result<(), LinkError> {
            let end = checked_add(st.pos, stage.len(), "send");
            // Flow control: the chunk's last byte must fit in the ring
            // window beyond the receiver's consumed position.
            if end > st.acked.saturating_add(geom.ring as u32) {
                let need = end - geom.ring as u32;
                st.acked = self.wait_flag(geom.ack_off, need)?;
            }
            // Streams are byte-granular, so a chunk may straddle the ring
            // wrap: split it into at most two writes.
            let mut written = 0usize;
            let mut vis = VTime::ZERO;
            while written < stage.len() {
                let ring_off = (st.pos as usize + written) % geom.ring;
                let span = (geom.ring - ring_off).min(stage.len() - written);
                let off = geom.data_off + ring_off;
                let part = &stage[written..written + span];
                let w = if geom.dma {
                    let done = self.remote.dma_write(off, part);
                    time::advance_to(done);
                    done
                } else {
                    self.remote.write(off, part)
                };
                vis = vis.max(w);
                written += span;
            }
            st.pos = end;
            self.remote.write_flag(geom.flag_off, st.pos, vis);
            Ok(())
        };
        for b in bufs {
            let mut rest: &[u8] = b;
            while !rest.is_empty() {
                let take = rest.len().min(geom.chunk - stage_fill);
                stage[stage_fill..stage_fill + take].copy_from_slice(&rest[..take]);
                stage_fill += take;
                rest = &rest[take..];
                if stage_fill == geom.chunk {
                    flush_chunk(&mut st, &stage)?;
                    stage_fill = 0;
                }
            }
        }
        if stage_fill > 0 {
            flush_chunk(&mut st, &stage[..stage_fill])?;
        }
        Ok(())
    }

    /// Read `dst.len()` bytes of the peer's stream through `geom`.
    fn read_stream(&self, geom: StreamGeom, dst: &mut [u8]) -> Result<(), LinkError> {
        if dst.is_empty() {
            return Ok(());
        }
        let mut st = self.streams[geom.index].recv.lock();
        let mut filled = 0usize;
        while filled < dst.len() {
            if st.known == st.pos {
                st.known = self.wait_flag(geom.flag_off, st.pos + 1)?;
            }
            let avail = (st.known - st.pos) as usize;
            let ring_left = geom.ring - (st.pos as usize % geom.ring);
            let take = avail.min(ring_left).min(dst.len() - filled);
            let off = geom.data_off + (st.pos as usize % geom.ring);
            self.local.read(off, &mut dst[filled..filled + take]);
            st.pos = checked_add(st.pos, take, "recv");
            filled += take;
            // Acknowledge consumption so the sender's ring frees up.
            // Acks are batched (each is a remote PIO write): the batch is
            // sized so a sender needing `chunk` bytes of ring space can
            // never be starved by a withheld ack.
            let batch = ack_batch(geom);
            if st.pos - st.acked >= batch {
                st.acked = st.pos;
                self.remote.write_flag(geom.ack_off, st.pos, VTime::ZERO);
            }
        }
        Ok(())
    }

    /// Is unconsumed data pending on this stream? (No clock effects.)
    fn probe(&self, geom: StreamGeom) -> bool {
        let st = self.streams[geom.index].recv.lock();
        self.local.probe_flag_ge(geom.flag_off, st.pos + 1)
    }
}

/// Build the SISCI PMM for one channel. Collective across the channel's
/// members: creates all local segments, then connects to every peer's.
pub fn build(
    adapter: &Adapter,
    channel_id: u32,
    enable_dma: bool,
    poll: PollPolicy,
    timing: Option<madsim_net::stacks::sisci::SisciTiming>,
    stats: Arc<Stats>,
    tracer: Arc<Tracer>,
) -> Arc<dyn Pmm> {
    let sisci = match timing {
        Some(t) => Sisci::with_timing(adapter, t),
        None => Sisci::new(adapter),
    };
    let me = sisci.node();
    let peers: Vec<NodeId> = adapter
        .peers()
        .iter()
        .copied()
        .filter(|&p| p != me)
        .collect();
    // Create every local segment before connecting anywhere, so concurrent
    // initialization across nodes cannot deadlock.
    let mut locals: HashMap<NodeId, LocalSegment> = peers
        .iter()
        .map(|&p| (p, sisci.create_segment(seg_id(channel_id, p), SEG_SIZE)))
        .collect();
    let links: HashMap<NodeId, Arc<PeerLink>> = peers
        .iter()
        .map(|&p| {
            let remote = sisci.connect(p, seg_id(channel_id, me));
            let local = locals.remove(&p).expect("created above");
            (
                p,
                Arc::new(PeerLink {
                    local,
                    remote,
                    streams: [StreamPair::new(), StreamPair::new(), StreamPair::new()],
                    faults: adapter.faults().cloned(),
                    me,
                    peer: p,
                }),
            )
        })
        .collect();
    let links = Arc::new(links);

    let short: Arc<dyn TransmissionModule> = Arc::new(SisciStreamTm {
        name: "sisci/short-pio",
        geom: SHORT_GEOM,
        links: Arc::clone(&links),
        setup_above: None,
        stats: Arc::clone(&stats),
        tracer: Arc::clone(&tracer),
    });
    let regular: Arc<dyn TransmissionModule> = Arc::new(SisciStreamTm {
        name: "sisci/regular-pio",
        geom: DATA_GEOM,
        links: Arc::clone(&links),
        setup_above: Some((CHUNK_SIZE, VDuration::from_micros_f64(DUALBUF_SETUP_US))),
        stats: Arc::clone(&stats),
        tracer: Arc::clone(&tracer),
    });
    let dma: Arc<dyn TransmissionModule> = Arc::new(SisciStreamTm {
        name: "sisci/dma",
        geom: DMA_GEOM,
        links: Arc::clone(&links),
        setup_above: None,
        stats,
        tracer,
    });
    Arc::new(SisciPmm {
        links,
        tms: [short, regular, dma],
        enable_dma,
        poll,
    })
}

struct SisciPmm {
    links: Arc<HashMap<NodeId, Arc<PeerLink>>>,
    tms: [Arc<dyn TransmissionModule>; 3],
    enable_dma: bool,
    poll: PollPolicy,
}

impl Pmm for SisciPmm {
    fn name(&self) -> &'static str {
        "sisci"
    }

    fn tms(&self) -> &[Arc<dyn TransmissionModule>] {
        &self.tms
    }

    fn select(&self, len: usize, _s: SendMode, _r: RecvMode) -> TmId {
        if len <= SHORT_LIMIT {
            0
        } else if self.enable_dma && len > CHUNK_SIZE {
            2
        } else {
            1
        }
    }

    fn policy(&self, _id: TmId) -> SendPolicy {
        SendPolicy::Aggregate
    }

    fn wait_incoming(&self) -> NodeId {
        // Every message opens with its ≤512 B header, so the short stream
        // of the sender's link always announces it.
        self.poll.wait(|| self.poll_incoming())
    }

    fn poll_incoming(&self) -> Option<NodeId> {
        self.links
            .iter()
            .find(|(_, link)| link.probe(SHORT_GEOM))
            .map(|(&peer, _)| peer)
    }
}

/// One SISCI stream TM (all three transfer methods share the discipline;
/// geometry and engine differ).
struct SisciStreamTm {
    name: &'static str,
    geom: StreamGeom,
    links: Arc<HashMap<NodeId, Arc<PeerLink>>>,
    /// `(threshold, cost)`: charge `cost` when a group exceeds `threshold`
    /// (the dual-buffering pipeline arm cost of the regular TM).
    setup_above: Option<(usize, VDuration)>,
    stats: Arc<Stats>,
    tracer: Arc<Tracer>,
}

impl SisciStreamTm {
    fn link(&self, peer: NodeId) -> &Arc<PeerLink> {
        self.links
            .get(&peer)
            .unwrap_or_else(|| panic!("no SISCI link to node {peer}"))
    }

    /// Lift an expired flag wait into the taxonomy: SCI has no
    /// retransmission, so a silent peer means the channel is down.
    fn wait_err(&self, e: LinkError, peer: NodeId) -> MadError {
        match e {
            LinkError::PeerDead => MadError::PeerUnreachable { peer },
            LinkError::Timeout => {
                self.stats.record_link_timeout();
                self.tracer.record(TraceEvent::CreditTimeout { peer });
                MadError::ChannelDown
            }
        }
    }
}

impl TransmissionModule for SisciStreamTm {
    fn name(&self) -> &'static str {
        self.name
    }

    fn caps(&self) -> TmCaps {
        TmCaps {
            static_buffers: false,
            buffer_cap: usize::MAX,
            gather: true,
        }
    }

    fn send_buffer(&self, dst: NodeId, data: &[u8]) -> MadResult<()> {
        self.send_buffer_group(dst, &[data])
    }

    fn send_buffer_group(&self, dst: NodeId, bufs: &[&[u8]]) -> MadResult<()> {
        let total: usize = bufs.iter().map(|b| b.len()).sum();
        if total == 0 {
            return Ok(());
        }
        if let Some((threshold, cost)) = self.setup_above {
            if total > threshold {
                time::advance(cost);
            }
        }
        self.link(dst)
            .send_group(self.geom, bufs)
            .map_err(|e| self.wait_err(e, dst))
    }

    fn send_gather(&self, dst: NodeId, bufs: &[&[u8]]) -> MadResult<()> {
        // Native gather: blocks stream back-to-back into the PIO ring.
        // `send_group`'s chunk staging models the CPU's write-combining
        // buffer, not a generic-layer copy.
        self.send_buffer_group(dst, bufs)
    }

    fn receive_buffer(&self, src: NodeId, dst: &mut [u8]) -> MadResult<()> {
        self.link(src)
            .read_stream(self.geom, dst)
            .map_err(|e| self.wait_err(e, src))
    }

    fn receive_sub_buffer_group(&self, src: NodeId, dsts: &mut [&mut [u8]]) -> MadResult<()> {
        let link = self.link(src);
        for d in dsts.iter_mut() {
            link.read_stream(self.geom, d)
                .map_err(|e| self.wait_err(e, src))?;
        }
        Ok(())
    }
}
