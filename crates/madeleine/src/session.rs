//! Session management: `Madeleine::init`.

use crate::channel::Channel;
use crate::config::Config;
use crate::drivers;
use crate::pool::BufPool;
use crate::stats::Stats;
use crate::trace::Tracer;
use madsim_net::world::NodeEnv;
use madsim_net::NodeId;
use std::collections::HashMap;
use std::sync::Arc;

/// A node's Madeleine II session: the set of configured channels.
///
/// Initialization is **collective**: every node of the world calls
/// [`Madeleine::init`] with the same configuration; channel drivers
/// exchange their segments/connections/descriptors during construction.
/// A node that is not a member of a channel's network simply does not get
/// that channel.
pub struct Madeleine {
    me: NodeId,
    channels: HashMap<String, Arc<Channel>>,
}

impl Madeleine {
    /// Bring up the session on this node.
    ///
    /// # Panics
    /// Panics if a channel references an unknown network, duplicates a
    /// name, or its protocol does not match the network's fabric.
    pub fn init(env: &NodeEnv, config: &Config) -> Self {
        let me = env.id();
        let mut channels = HashMap::new();
        for (idx, spec) in config.channels.iter().enumerate() {
            assert!(
                !channels.contains_key(&spec.name),
                "duplicate channel name {:?}",
                spec.name
            );
            let Some(adapter) = env.adapter_named(&spec.network) else {
                // Not a member of this network: skip the channel. (If the
                // network does not exist anywhere the user gets an empty
                // session, which the channel() accessor reports clearly.)
                continue;
            };
            let stats = Stats::new();
            // One pool per channel, shared between the generic layer
            // (headers, SAFER captures) and the protocol driver (static
            // buffers), so all of the channel's traffic recycles one set
            // of warm slabs.
            let pool = BufPool::new(Arc::clone(&stats));
            // The tracer is shared between the channel and its driver so
            // fault-recovery events (retransmissions, credit timeouts)
            // land in the same stream as the pack/unpack events.
            let tracer = Arc::new(Tracer::new());
            let pmm = drivers::build_pmm(
                spec.protocol,
                adapter,
                idx as u32,
                config,
                config.host.0,
                Arc::clone(&stats),
                pool.clone(),
                Arc::clone(&tracer),
            );
            let channel = Channel::with_shared_pool(
                spec.name.clone(),
                pmm,
                me,
                adapter.peers().to_vec(),
                config.host.0,
                stats,
                pool,
                tracer,
            );
            channels.insert(spec.name.clone(), channel);
        }
        // Initialization is collective: nobody may proceed (or tear its
        // session down) before every node has finished connecting, else a
        // fast node could unregister its segments/descriptors while a slow
        // peer is still dialing them.
        env.barrier();
        Madeleine { me, channels }
    }

    /// This node's id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Look up a channel by name.
    ///
    /// # Panics
    /// Panics with a listing of available channels if absent (typically:
    /// this node is not on the channel's network).
    pub fn channel(&self, name: &str) -> &Arc<Channel> {
        self.channels.get(name).unwrap_or_else(|| {
            panic!(
                "no channel {name:?} on node {} (available: {:?})",
                self.me,
                self.channels.keys().collect::<Vec<_>>()
            )
        })
    }

    /// Channel lookup that admits absence (for nodes outside the network).
    pub fn try_channel(&self, name: &str) -> Option<&Arc<Channel>> {
        self.channels.get(name)
    }

    /// Names of the channels this node participates in.
    pub fn channel_names(&self) -> Vec<&str> {
        self.channels.keys().map(|s| s.as_str()).collect()
    }
}
