//! Session management: `Madeleine::init`.

use crate::batch::BatchPolicy;
use crate::channel::Channel;
use crate::config::Config;
use crate::drivers;
use crate::pool::BufPool;
use crate::rail::{Rail, RailScheduler};
use crate::stats::Stats;
use crate::trace::Tracer;
use madsim_net::world::NodeEnv;
use madsim_net::NodeId;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A node's Madeleine II session: the set of configured channels.
///
/// Initialization is **collective**: every node of the world calls
/// [`Madeleine::init`] with the same configuration; channel drivers
/// exchange their segments/connections/descriptors during construction.
/// A node that is not a member of a channel's network simply does not get
/// that channel.
pub struct Madeleine {
    me: NodeId,
    channels: HashMap<String, Arc<Channel>>,
}

impl Madeleine {
    /// Bring up the session on this node.
    ///
    /// # Panics
    /// Panics if a channel references an unknown network, duplicates a
    /// name, or its protocol does not match the network's fabric.
    pub fn init(env: &NodeEnv, config: &Config) -> Self {
        let me = env.id();
        // Validate the configuration before any membership filtering: a
        // duplicate name is a config bug and must fail on *every* node,
        // including nodes outside the offending channels' networks (the
        // old in-loop check silently missed those).
        let mut names = HashSet::new();
        for spec in &config.channels {
            assert!(
                names.insert(spec.name.as_str()),
                "duplicate channel name {:?}",
                spec.name
            );
        }
        let mut channels = HashMap::new();
        for (idx, spec) in config.channels.iter().enumerate() {
            let adapters = env.adapters_named(&spec.network);
            if adapters.is_empty() {
                // Not a member of this network: skip the channel. (If the
                // network does not exist anywhere the user gets an empty
                // session, which the channel() accessor reports clearly.)
                continue;
            }
            assert!(
                adapters.len() >= spec.rails,
                "channel {:?} spans {} rails but node {me} owns only {} \
                 adapter(s) on network {:?}",
                spec.name,
                spec.rails,
                adapters.len(),
                spec.network
            );
            let stats = Stats::new();
            // The tracer is shared between the channel and its drivers so
            // fault-recovery events (retransmissions, credit timeouts)
            // land in the same stream as the pack/unpack events.
            let tracer = Arc::new(Tracer::new());
            // One driver stack per rail, each with its own buffer pool —
            // shared between that rail's generic-layer traffic and its
            // protocol driver (static buffers), so a rail's traffic
            // recycles one set of warm slabs. Per-rail channel ids keep
            // every rail's wire tags disjoint; rail 0's id equals the
            // single-rail id, so classic channels are bit-identical.
            let rails: Vec<Rail> = adapters[..spec.rails]
                .iter()
                .enumerate()
                .map(|(r, adapter)| {
                    let pool = BufPool::new(Arc::clone(&stats));
                    let pmm = drivers::build_pmm(
                        spec.protocol,
                        adapter,
                        (idx as u32) | ((r as u32) << 16),
                        config,
                        config.host.0,
                        Arc::clone(&stats),
                        pool.clone(),
                        Arc::clone(&tracer),
                    );
                    Rail::new(r, pmm, pool, Some((*adapter).clone()))
                })
                .collect();
            let peers = adapters[0].peers().to_vec();
            let pool = rails[0].pool().clone();
            // Wire-level batching is opt-in per spec, and only on stacks
            // whose drivers speak the multi-envelope frame format.
            assert!(
                spec.batch_packets <= 1 || rails[0].pmm().supports_batching(),
                "channel {:?} requests batching but protocol {:?} does not \
                 support multi-envelope frames",
                spec.name,
                spec.protocol
            );
            let sched = RailScheduler::new(spec.stripe_threshold, spec.stripe_chunk).with_batching(
                BatchPolicy {
                    max_packets: spec.batch_packets,
                    max_bytes: spec.batch_bytes,
                    flush_us: spec.batch_flush_us,
                },
            );
            let channel = Channel::multirail(
                spec.name.clone(),
                rails,
                sched,
                me,
                peers,
                config.host.0,
                stats,
                pool,
                tracer,
                idx as u64,
                config.poll.0,
                spec.wire,
            );
            channels.insert(spec.name.clone(), channel);
        }
        // Initialization is collective: nobody may proceed (or tear its
        // session down) before every node has finished connecting, else a
        // fast node could unregister its segments/descriptors while a slow
        // peer is still dialing them.
        env.barrier();
        Madeleine { me, channels }
    }

    /// This node's id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Look up a channel by name.
    ///
    /// # Panics
    /// Panics with a listing of available channels if absent (typically:
    /// this node is not on the channel's network).
    pub fn channel(&self, name: &str) -> &Arc<Channel> {
        self.channels.get(name).unwrap_or_else(|| {
            panic!(
                "no channel {name:?} on node {} (available: {:?})",
                self.me,
                self.channels.keys().collect::<Vec<_>>()
            )
        })
    }

    /// Channel lookup that admits absence (for nodes outside the network).
    pub fn try_channel(&self, name: &str) -> Option<&Arc<Channel>> {
        self.channels.get(name)
    }

    /// Names of the channels this node participates in.
    pub fn channel_names(&self) -> Vec<&str> {
        self.channels.keys().map(|s| s.as_str()).collect()
    }
}
