//! # Madeleine II — a portable, efficient multi-protocol communication
//! library (Rust reproduction)
//!
//! This crate reproduces the system of *"Madeleine II: a Portable and
//! Efficient Communication Library for High-Performance Cluster Computing"*
//! (Aumage et al., IEEE Cluster 2000) on top of the [`madsim_net`] simulated
//! cluster fabric (see that crate and `DESIGN.md` for the hardware
//! substitutions).
//!
//! ## The interface (paper §2, Table 1)
//!
//! Messages are built incrementally from blocks, each carrying a pair of
//! semantics flags that let the library pick the optimal transfer method:
//!
//! ```no_run
//! use madeleine::{Config, Madeleine, Protocol, RecvMode, SendMode};
//! use madsim_net::{NetKind, WorldBuilder};
//!
//! let mut b = WorldBuilder::new(2);
//! b.network("sci0", NetKind::Sci, &[0, 1]);
//! let world = b.build();
//! world.run(|env| {
//!     let mad = Madeleine::init(&env, &Config::one("sci", "sci0", Protocol::Sisci));
//!     let ch = mad.channel("sci");
//!     if env.id() == 0 {
//!         let data = vec![7u8; 4096];
//!         let len = (data.len() as u32).to_le_bytes();
//!         let mut msg = ch.begin_packing(1);
//!         msg.pack(&len, SendMode::Cheaper, RecvMode::Express);
//!         msg.pack(&data, SendMode::Cheaper, RecvMode::Cheaper);
//!         msg.end_packing();
//!     } else {
//!         let mut msg = ch.begin_unpacking();
//!         let mut len = [0u8; 4];
//!         // EXPRESS: available immediately, steers the next unpack.
//!         msg.unpack_express(&mut len, SendMode::Cheaper);
//!         let n = u32::from_le_bytes(len) as usize;
//!         let mut data = vec![0u8; n];
//!         msg.unpack(&mut data, SendMode::Cheaper, RecvMode::Cheaper);
//!         msg.end_unpacking();
//!         assert!(data.iter().all(|&b| b == 7));
//!     }
//! });
//! ```
//!
//! ## Architecture (paper §3, Fig. 2/3)
//!
//! * [`channel`] — channels, the pack/unpack interface, and the Switch
//!   Module with its commit/checkout ordering discipline;
//! * [`connection`] — per-peer ordering state (lock-free sequence
//!   numbers, stripe-block counters);
//! * [`rail`] — one adapter's worth of channel machinery, the rail
//!   scheduler, and the multirail stripe engine;
//! * [`batch`] — the adaptive wire-level batching layer: consecutive
//!   small packets to one peer coalesce into multi-envelope frames;
//! * [`bmm`] — the generic Buffer Management Layer (eager, aggregating,
//!   and static-copy policies);
//! * [`tm`] — the Transmission Module interface (Table 2);
//! * [`pmm`] — the protocol-module interface (driver virtualization);
//! * [`drivers`] — BIP, SISCI, TCP, VIA, and SBP protocol modules;
//! * [`pool`] — reusable pooled buffer segments backing the zero-copy
//!   send path (headers, SAFER copies, static-buffer packing);
//! * [`progress`] — the event-driven progress engine: posted messages as
//!   resumable state machines, advanced by ticks, retiring onto
//!   completion queues;
//! * [`stats`] — copy accounting backing the zero-copy claims;
//! * [`config`], [`session`] — session setup.

pub mod batch;
pub mod bmm;
pub mod channel;
pub mod config;
pub mod connection;
pub mod drivers;
pub mod error;
pub mod flags;
pub mod pmm;
pub mod polling;
pub mod pool;
pub mod progress;
pub mod rail;
pub mod session;
pub mod stats;
pub mod tm;
pub mod trace;
pub mod typed;
pub mod wire;

pub use batch::{BatchPolicy, FlushReason};
pub use channel::{Channel, IncomingMessage, OutgoingMessage, HEADER_LEN};
pub use config::{ChannelSpec, Config, HostModel, Protocol};
pub use connection::{Connection, Connections};
pub use error::{MadError, MadResult};
pub use flags::{RecvMode, SendMode};
pub use polling::PollPolicy;
pub use pool::{BufPool, PooledBuf};
pub use progress::{Completion, CompletionQueue, Completions, OpId, OpState, ProgressEngine};
pub use rail::Rail;
pub use session::Madeleine;
pub use stats::{Stats, StatsSnapshot};
pub use wire::{WireMode, WireVersion};
