//! The event-driven progress engine: nonblocking message state machines.
//!
//! Madeleine II's pack/unpack interface is synchronous: `end_packing`
//! returns when the message is on the wire (or handed to the NIC). That is
//! the right primitive for the paper's RPC-style upper layers, but it
//! forfeits compute/communication overlap — an `isend` built on it must
//! either copy or block through the rendezvous. This module inverts the
//! control flow: a posted message becomes an **op** — a small state
//! machine — parked in a per-connection table, and a `progress()` tick
//! advances every op that can move. Finished ops land on a
//! [`CompletionQueue`] the caller drains.
//!
//! ## Op lifecycle
//!
//! ```text
//! Posted ──▶ (frames ship one by one) ──▶ Complete
//!    │             │
//!    │             ├─ short TM out of credits ──▶ CreditWait ──┐
//!    │             ├─ long TM, no CTS yet ──▶ RendezvousWait ──┤
//!    │             ├─ striped block pending ──▶ StripePartial ─┤
//!    │             └─ packets coalescing, frame not
//!    │                flushed yet ──▶ Batched ─────────────────┤
//!    │                                                         │
//!    └──────────────── rail dies / wait expires ──▶ Failed ◀───┘
//! ```
//!
//! * **Posted** — accepted, nothing irrevocable has happened yet; the op
//!   can still be cancelled.
//! * **CreditWait** — a short-TM frame is staged in a static buffer but
//!   the peer's receive ring is full; waiting for a credit return.
//! * **RendezvousWait** — a long-TM frame is waiting for the receiver's
//!   CTS. When the CTS arrives, the transfer is anchored at
//!   `max(posted_at, cts_arrival)` — in virtual time the NIC DMA'd the
//!   payload *while the host computed*, which is exactly the overlap a
//!   real progress thread buys.
//! * **StripePartial** — a multirail striped block is in flight.
//! * **Batched** — every packet of the op entered the connection's send
//!   batch, but the closing multi-envelope frame has not flushed yet; the
//!   op retires when a flush covers its last packet. Until the first
//!   flush nothing has reached the wire, so the op is still cancellable.
//! * **Complete / Failed** — terminal; the op's slot holds its result
//!   until consumed, and a [`Completion`] is queued.
//!
//! ## Sharded op state
//!
//! The engine used to keep two global `HashMap`s (`ops`, `results`) and a
//! global tick lock: every poster, every ticker, every waiter — even ones
//! driving *different* peers — serialized on them. Op state now lives in a
//! per-[`Connection`] **slab** ([`OpSlab`]) addressed by generational
//! indices: an [`OpId`] packs `(peer, slot, generation)` into its 64 bits,
//! so `state`/`take_result`/`cancel` go straight to the owning
//! connection's slab with no global map, and a recycled slot can never be
//! confused with a stale handle (the generation bumps on every free).
//! The tick lock is per connection too ([`Connection::tick`]): ticks on
//! independent peers never contend.
//!
//! ## Tick semantics
//!
//! One [`ProgressEngine::progress`] call makes a bounded pass: for every
//! peer connection it advances the **head** op of that peer's in-flight
//! list as far as it can go (per-peer FIFO keeps the wire stream in
//! `begin_packing` order and guarantees at most one outstanding rendezvous
//! per peer, so CTS frames can never pair with the wrong long send).
//! Ticks never block: an op that cannot move is left in its wait state.
//!
//! ## Completion-queue ordering
//!
//! Completions are queued in the order ops *complete*, not the order they
//! were posted: a short message to peer B overtakes an earlier rendezvous
//! to peer A that is still waiting for its CTS. Within one peer, order is
//! FIFO. [`ProgressEngine::take_result`] consumes a result by handle and
//! voids the matching queue entry (the entry's generation no longer
//! matches a live retired slot), so drainers of the [`Completions`] view
//! and callers of `take_result` never see the same op twice.
//!
//! This module is one of the lock-free hot-path modules linted by
//! `scripts/verify.sh`: no `parking_lot` locks may appear here — producers
//! push completions onto a lock-free ring, and the only mutexes are
//! `std::sync` consumer-side staging and sleep locks.

use crate::connection::{Connection, Connections};
use crate::error::{MadError, MadResult};
use crossbeam::queue::ArrayQueue;
use madsim_net::time::VTime;
use madsim_net::NodeId;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Handle of a posted nonblocking operation. Bit-packed as
/// `peer(16) | slot(16) | generation(32)`: the peer routes straight to the
/// owning connection's slab, the slot indexes into it, and the generation
/// detects stale handles after the slot is recycled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub u64);

impl OpId {
    pub(crate) fn encode(peer: NodeId, slot: u16, generation: u32) -> OpId {
        debug_assert!(peer <= u16::MAX as usize);
        OpId(((peer as u64) << 48) | ((slot as u64) << 32) | generation as u64)
    }

    pub(crate) fn peer(self) -> NodeId {
        (self.0 >> 48) as NodeId
    }

    pub(crate) fn slot(self) -> u16 {
        (self.0 >> 32) as u16
    }

    pub(crate) fn generation(self) -> u32 {
        self.0 as u32
    }
}

/// Where an in-flight op currently stands (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpState {
    /// Accepted; no frame has shipped yet.
    Posted,
    /// A short-TM frame is staged, waiting for a flow-control credit.
    CreditWait,
    /// A long-TM frame is waiting for the receiver's CTS.
    RendezvousWait,
    /// A multirail striped block is partially transferred.
    StripePartial,
    /// The op's packets sit in the connection's send batch, waiting for
    /// the batch to flush (threshold, deadline, or explicit `flush()`).
    Batched,
    /// Terminal: the op finished; its result is `Ok`.
    Complete,
    /// Terminal: the op finished; its result is `Err`.
    Failed,
}

/// What one `try_advance` call achieved.
pub enum StepOutcome {
    /// The op cannot finish yet; it is parked in the given state.
    Pending(OpState),
    /// The op finished; local work completes at the given virtual instant.
    Done(VTime),
    /// The op failed terminally.
    Failed(MadError),
}

/// A resumable message state machine. Implementations must never block on
/// peer events inside `try_advance` — that is the entire point.
pub(crate) trait OpStep: Send {
    /// Push the op as far as it can go without waiting on the peer.
    fn try_advance(&mut self) -> StepOutcome;
    /// Whether anything irrevocable (a frame on the wire) happened yet.
    fn started(&self) -> bool;
    /// Release resources of a never-started op.
    fn on_cancel(&mut self);
}

/// A finished op, as seen by drainers of the completion queue.
#[derive(Clone, Debug)]
pub struct Completion {
    pub id: OpId,
    /// The peer the op addressed.
    pub peer: NodeId,
    /// `Ok(t)`: local send-side work completed at virtual instant `t`.
    pub result: MadResult<VTime>,
}

/// One entry of a connection's op slab.
enum OpEntry {
    /// Free slot (on the slab's free list).
    Vacant,
    /// A live op parked between ticks.
    Active {
        state: OpState,
        step: Box<dyn OpStep>,
    },
    /// The (tick-serialized) advancer took the step out to run it without
    /// holding the slab lock; observers still see the parked state.
    Stepping { state: OpState },
    /// Terminal: the result waits here until `take_result` consumes it.
    Retired { result: MadResult<VTime> },
}

struct OpSlot {
    generation: u32,
    entry: OpEntry,
}

/// A connection's op table: a slab with generational indices (slotmap
/// style). Slots are recycled through a free list; every free bumps the
/// slot's generation so stale [`OpId`]s can never alias a new op.
pub(crate) struct OpSlab {
    slots: Vec<OpSlot>,
    free: Vec<u16>,
    /// Ops in Active or Stepping (i.e. not yet terminal).
    live: usize,
}

impl OpSlab {
    pub(crate) fn new() -> Self {
        OpSlab {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    fn insert(&mut self, step: Box<dyn OpStep>) -> (u16, u32) {
        self.live += 1;
        let entry = OpEntry::Active {
            state: OpState::Posted,
            step,
        };
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            debug_assert!(matches!(s.entry, OpEntry::Vacant));
            s.entry = entry;
            (slot, s.generation)
        } else {
            let slot = u16::try_from(self.slots.len()).expect("more than 65535 live ops per peer");
            self.slots.push(OpSlot {
                generation: 1,
                entry,
            });
            (slot, 1)
        }
    }

    fn slot_mut(&mut self, slot: u16, generation: u32) -> Option<&mut OpSlot> {
        let s = self.slots.get_mut(slot as usize)?;
        (s.generation == generation).then_some(s)
    }

    fn state_of(&self, slot: u16, generation: u32) -> Option<OpState> {
        let s = self.slots.get(slot as usize)?;
        if s.generation != generation {
            return None;
        }
        match &s.entry {
            OpEntry::Vacant => None,
            OpEntry::Active { state, .. } | OpEntry::Stepping { state } => Some(*state),
            OpEntry::Retired { result } => Some(match result {
                Ok(_) => OpState::Complete,
                Err(_) => OpState::Failed,
            }),
        }
    }

    /// Take the step of an Active op out for advancing, leaving a
    /// `Stepping` marker so concurrent observers still see its state.
    fn begin_step(&mut self, slot: u16, generation: u32) -> Option<Box<dyn OpStep>> {
        let s = self.slot_mut(slot, generation)?;
        let state = match &s.entry {
            OpEntry::Active { state, .. } => *state,
            _ => return None,
        };
        match std::mem::replace(&mut s.entry, OpEntry::Stepping { state }) {
            OpEntry::Active { step, .. } => Some(step),
            _ => unreachable!("matched Active above"),
        }
    }

    /// Park a stepped op back in the slab with its new wait state.
    fn park(&mut self, slot: u16, generation: u32, state: OpState, step: Box<dyn OpStep>) {
        let s = self
            .slot_mut(slot, generation)
            .expect("parked op vanished mid-step");
        debug_assert!(matches!(s.entry, OpEntry::Stepping { .. }));
        s.entry = OpEntry::Active { state, step };
    }

    /// Transition a stepped op to terminal; the result waits in the slot.
    fn retire(&mut self, slot: u16, generation: u32, result: MadResult<VTime>) {
        let s = self
            .slot_mut(slot, generation)
            .expect("retired op vanished mid-step");
        debug_assert!(matches!(s.entry, OpEntry::Stepping { .. }));
        s.entry = OpEntry::Retired { result };
        self.live -= 1;
    }

    /// Consume a terminal op's result, freeing its slot. The generation
    /// bumps here, which also voids the op's completion-queue entry.
    fn take_retired(&mut self, slot: u16, generation: u32) -> Option<MadResult<VTime>> {
        let s = self.slot_mut(slot, generation)?;
        if !matches!(s.entry, OpEntry::Retired { .. }) {
            return None;
        }
        let OpEntry::Retired { result } = std::mem::replace(&mut s.entry, OpEntry::Vacant) else {
            unreachable!("matched Retired above");
        };
        s.generation = s.generation.wrapping_add(1);
        self.free.push(slot);
        Some(result)
    }

    /// Whether the op's completion-queue entry is still live: the slot
    /// must hold an unconsumed terminal result under the same generation.
    fn is_retired_live(&self, slot: u16, generation: u32) -> bool {
        self.slots.get(slot as usize).is_some_and(|s| {
            s.generation == generation && matches!(s.entry, OpEntry::Retired { .. })
        })
    }

    /// Remove a never-started Active op, freeing its slot with a
    /// generation bump (no dangling slot, no reusable handle). Returns the
    /// step for the caller to run `on_cancel` outside the slab lock.
    fn cancel(&mut self, slot: u16, generation: u32) -> Option<Box<dyn OpStep>> {
        let s = self.slot_mut(slot, generation)?;
        match &s.entry {
            OpEntry::Active { step, .. } if !step.started() => {}
            _ => return None,
        }
        let OpEntry::Active { step, .. } = std::mem::replace(&mut s.entry, OpEntry::Vacant) else {
            unreachable!("matched Active above");
        };
        s.generation = s.generation.wrapping_add(1);
        self.free.push(slot);
        self.live -= 1;
        Some(step)
    }

    /// Ops not yet terminal.
    fn live(&self) -> usize {
        self.live
    }

    /// Slots on the free list (diagnostics for the slot-recycling tests).
    #[cfg(test)]
    fn free_len(&self) -> usize {
        self.free.len()
    }
}

impl Default for OpSlab {
    fn default() -> Self {
        Self::new()
    }
}

/// Ring capacity of a [`CompletionQueue`]; overflow spills to the
/// consumer-side staging deque, so this bounds the lock-free fast path,
/// not the queue.
const CQ_RING_CAP: usize = 256;
/// Spin iterations a blocked popper burns before sleeping on the condvar.
const CQ_SPIN_LIMIT: u32 = 32;

/// An unbounded queue with close semantics — the terminal stage of the
/// progress engine, and a reusable primitive for any pipeline that hands
/// finished work between threads (the gateway forwarder uses one per
/// direction). Producers push onto a lock-free MPMC ring (spilling to a
/// staging deque only when it fills); consumers serialize on the small
/// staging lock and block only when the queue is truly empty, after a
/// bounded spin (`spins` counts the burned iterations — the `cq_spins`
/// observability counter).
pub struct CompletionQueue<T> {
    ring: ArrayQueue<T>,
    staged: Mutex<VecDeque<T>>,
    closed: AtomicBool,
    version: AtomicU64,
    waiters: AtomicUsize,
    sleep: Mutex<()>,
    cond: Condvar,
    spins: AtomicU64,
}

impl<T> Default for CompletionQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl<T> CompletionQueue<T> {
    pub fn new() -> Self {
        CompletionQueue {
            ring: ArrayQueue::new(CQ_RING_CAP),
            staged: Mutex::new(VecDeque::new()),
            closed: AtomicBool::new(false),
            version: AtomicU64::new(0),
            waiters: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            cond: Condvar::new(),
            spins: AtomicU64::new(0),
        }
    }

    /// Enqueue an item. Returns `false` (dropping the item) if the queue
    /// has been closed. Lock-free unless the ring is full or a popper is
    /// asleep.
    pub fn push(&self, item: T) -> bool {
        if self.closed.load(Ordering::Acquire) {
            return false;
        }
        if let Err(item) = self.ring.push(item) {
            let mut staged = lock_unpoisoned(&self.staged);
            while let Some(x) = self.ring.pop() {
                staged.push_back(x);
            }
            staged.push_back(item);
        }
        self.version.fetch_add(1, Ordering::SeqCst);
        if self.waiters.load(Ordering::SeqCst) > 0 {
            let _g = lock_unpoisoned(&self.sleep);
            self.cond.notify_all();
        }
        true
    }

    /// Lock the staging deque with the ring folded into it (every queued
    /// item visible in FIFO order).
    fn open(&self) -> MutexGuard<'_, VecDeque<T>> {
        let mut staged = lock_unpoisoned(&self.staged);
        while let Some(x) = self.ring.pop() {
            staged.push_back(x);
        }
        staged
    }

    /// Dequeue without blocking.
    pub fn try_pop(&self) -> Option<T> {
        self.open().pop_front()
    }

    /// Dequeue, blocking until an item arrives. Returns `None` only once
    /// the queue is closed **and** drained. Spins briefly before parking —
    /// completions arrive in bursts from the progress tick.
    pub fn pop_wait(&self) -> Option<T> {
        loop {
            let v = self.version.load(Ordering::SeqCst);
            if let Some(item) = self.try_pop() {
                return Some(item);
            }
            if self.closed.load(Ordering::SeqCst) {
                return None;
            }
            let mut spun = 0u32;
            while spun < CQ_SPIN_LIMIT && self.version.load(Ordering::SeqCst) == v {
                std::hint::spin_loop();
                spun += 1;
            }
            self.spins.fetch_add(u64::from(spun), Ordering::Relaxed);
            if spun < CQ_SPIN_LIMIT {
                continue; // something arrived (or the queue closed) mid-spin
            }
            self.waiters.fetch_add(1, Ordering::SeqCst);
            let mut g = lock_unpoisoned(&self.sleep);
            while self.version.load(Ordering::SeqCst) == v && !self.closed.load(Ordering::SeqCst) {
                g = self.cond.wait(g).unwrap_or_else(|e| e.into_inner());
            }
            drop(g);
            self.waiters.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Close the queue: further pushes are rejected, blocked poppers wake,
    /// already-queued items remain poppable.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.version.fetch_add(1, Ordering::SeqCst);
        let _g = lock_unpoisoned(&self.sleep);
        self.cond.notify_all();
    }

    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.staged).len() + self.ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Take everything currently queued.
    pub fn drain(&self) -> Vec<T> {
        self.open().drain(..).collect()
    }

    /// Keep only items matching the predicate (consumer-side; the ring is
    /// folded into staging first so every queued item is considered).
    fn retain(&self, mut pred: impl FnMut(&T) -> bool) {
        self.open().retain(|it| pred(it));
    }

    /// Spin iterations poppers burned before blocking (the `cq_spins`
    /// observability counter).
    pub fn spins(&self) -> u64 {
        self.spins.load(Ordering::Relaxed)
    }
}

/// The engine's view of its completion queue: a [`CompletionQueue`] of
/// [`Completion`]s that filters out entries whose result was already
/// consumed by [`ProgressEngine::take_result`] (their generation no longer
/// matches a live retired slot), preserving the never-see-an-op-twice
/// contract without a delete-from-the-middle queue operation.
pub struct Completions {
    q: CompletionQueue<Completion>,
    conns: Arc<Connections>,
}

impl Completions {
    fn new(conns: Arc<Connections>) -> Self {
        Completions {
            q: CompletionQueue::new(),
            conns,
        }
    }

    fn is_void(&self, c: &Completion) -> bool {
        match self.conns.get(c.peer) {
            Some(conn) => !conn
                .ops()
                .lock()
                .is_retired_live(c.id.slot(), c.id.generation()),
            None => true,
        }
    }

    /// Drop queued entries whose op result was already consumed.
    fn purge(&self) {
        self.q.retain(|c| !self.is_void(c));
    }

    /// Dequeue without blocking, skipping consumed entries.
    pub fn try_pop(&self) -> Option<Completion> {
        loop {
            let c = self.q.try_pop()?;
            if !self.is_void(&c) {
                return Some(c);
            }
        }
    }

    /// Dequeue, blocking until a live entry arrives. `None` only once the
    /// queue is closed and drained.
    pub fn pop_wait(&self) -> Option<Completion> {
        loop {
            let c = self.q.pop_wait()?;
            if !self.is_void(&c) {
                return Some(c);
            }
        }
    }

    pub fn close(&self) {
        self.q.close();
    }

    pub fn len(&self) -> usize {
        self.purge();
        self.q.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Take every live queued completion.
    pub fn drain(&self) -> Vec<Completion> {
        self.purge();
        self.q.drain()
    }

    /// Spin iterations drainers burned before blocking (`cq_spins`).
    pub fn spins(&self) -> u64 {
        self.q.spins()
    }
}

/// The per-session progress engine: per-connection op slabs plus the
/// machinery that drives them (see module docs for tick and ordering
/// semantics).
pub struct ProgressEngine {
    conns: Arc<Connections>,
    completions: Completions,
}

impl ProgressEngine {
    pub(crate) fn new(conns: Arc<Connections>) -> Self {
        ProgressEngine {
            completions: Completions::new(Arc::clone(&conns)),
            conns,
        }
    }

    /// Register a new op at the tail of `conn`'s in-flight list.
    pub(crate) fn post(&self, conn: &Connection, step: Box<dyn OpStep>) -> OpId {
        let peer = conn.peer();
        assert!(
            peer <= u16::MAX as usize,
            "OpId packs the peer id into 16 bits"
        );
        let (slot, generation) = conn.ops().lock().insert(step);
        let id = OpId::encode(peer, slot, generation);
        conn.push_in_flight(id);
        id
    }

    /// Advance one peer's in-flight list as far as it can go, retiring
    /// every op that completes. Returns how many retired.
    ///
    /// The walk normally stops at the first op that parks in a wait state
    /// (per-peer FIFO: a frame of op *k+1* must not ship before op *k* is
    /// done emitting). A [`Batched`](OpState::Batched) park is the one
    /// exception: such an op has *fully* staged its packets in the
    /// connection's send batch and only awaits the closing flush, so later
    /// ops may safely append behind it — that is what makes cross-message
    /// coalescing work at all.
    pub(crate) fn advance_conn(&self, conn: &Connection) -> usize {
        // Per-connection serialization: concurrent callers (an app thread
        // inside `wait` and another inside `post`) never advance the same
        // op twice, while ticks on *other* peers proceed untouched.
        let _serial = conn.tick().lock();
        let mut retired = 0;
        let mut pos = 0;
        while let Some(id) = conn.in_flight_at(pos) {
            let Some(mut step) = conn.ops().lock().begin_step(id.slot(), id.generation()) else {
                // Cancelled between the list peek and here.
                break;
            };
            // The step runs without the slab lock held: TM pendings may
            // advance the virtual clock and touch driver state.
            match step.try_advance() {
                StepOutcome::Pending(state) => {
                    conn.ops()
                        .lock()
                        .park(id.slot(), id.generation(), state, step);
                    if state == OpState::Batched {
                        pos += 1;
                        continue;
                    }
                    break;
                }
                StepOutcome::Done(at) => {
                    conn.remove_in_flight(id);
                    self.retire(conn, id, Ok(at));
                    retired += 1;
                }
                StepOutcome::Failed(e) => {
                    conn.remove_in_flight(id);
                    self.retire(conn, id, Err(e));
                    retired += 1;
                }
            }
        }
        retired
    }

    fn retire(&self, conn: &Connection, id: OpId, result: MadResult<VTime>) {
        conn.ops()
            .lock()
            .retire(id.slot(), id.generation(), result.clone());
        self.completions.q.push(Completion {
            id,
            peer: conn.peer(),
            result,
        });
    }

    /// One engine tick: advance every peer's head op (see module docs).
    /// Returns how many ops retired during the tick.
    pub fn progress(&self) -> usize {
        self.conns.iter().map(|c| self.advance_conn(c)).sum()
    }

    /// Drive one peer's in-flight list to empty. Blocks (spinning through
    /// ticks) until every op addressed to `conn`'s peer has retired —
    /// the ordering fence `begin_packing` uses so a blocking send never
    /// overtakes posted ops to the same peer. On a fault-armed fabric the
    /// ops' own bounded waits guarantee termination. `kick` runs between
    /// ticks while ops remain: the channel uses it to flush the
    /// connection's send batch, without which ops parked in
    /// [`Batched`](OpState::Batched) would never retire.
    pub(crate) fn drain_conn(&self, conn: &Connection, mut kick: impl FnMut()) {
        loop {
            self.advance_conn(conn);
            if conn.in_flight_is_empty() {
                return;
            }
            kick();
            std::thread::yield_now();
        }
    }

    /// Current state of an op, if the engine still knows it. Terminal
    /// states are reported until the result is consumed.
    pub fn state(&self, id: OpId) -> Option<OpState> {
        let conn = self.conns.get(id.peer())?;
        conn.ops().lock().state_of(id.slot(), id.generation())
    }

    /// Consume the result of a retired op. The op's completion-queue entry
    /// is voided too (its generation stops matching), so queue drainers
    /// never see it again. `None` while the op is still in flight (or
    /// after it was cancelled).
    pub fn take_result(&self, id: OpId) -> Option<MadResult<VTime>> {
        let conn = self.conns.get(id.peer())?;
        conn.ops().lock().take_retired(id.slot(), id.generation())
    }

    /// Cancel a posted op that has not shipped anything yet. Returns
    /// `true` if the op was removed; `false` if it already started (or
    /// already retired), in which case it must be driven to completion.
    pub fn cancel(&self, id: OpId) -> bool {
        let Some(conn) = self.conns.get(id.peer()) else {
            return false;
        };
        let _serial = conn.tick().lock();
        let Some(mut step) = conn.ops().lock().cancel(id.slot(), id.generation()) else {
            return false;
        };
        step.on_cancel();
        conn.remove_in_flight(id);
        true
    }

    /// Number of ops currently in flight.
    pub fn in_flight(&self) -> usize {
        self.conns.iter().map(|c| c.ops().lock().live()).sum()
    }

    /// The queue finished ops land on.
    pub fn completions(&self) -> &Completions {
        &self.completions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_queue_fifo_and_close() {
        let q: CompletionQueue<u32> = CompletionQueue::new();
        assert!(q.is_empty());
        assert!(q.push(1));
        assert!(q.push(2));
        assert_eq!(q.len(), 2);
        assert_eq!(q.try_pop(), Some(1));
        q.close();
        assert!(!q.push(3), "push after close must be rejected");
        assert_eq!(q.pop_wait(), Some(2), "queued items survive close");
        assert_eq!(q.pop_wait(), None, "closed and drained");
    }

    #[test]
    fn completion_queue_pop_wait_wakes_on_push() {
        let q = Arc::new(CompletionQueue::<u32>::new());
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop_wait());
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(q.push(7));
        assert_eq!(t.join().unwrap(), Some(7));
    }

    #[test]
    fn completion_queue_overflows_ring_without_loss() {
        let q: CompletionQueue<usize> = CompletionQueue::new();
        let n = CQ_RING_CAP * 2 + 3;
        for i in 0..n {
            assert!(q.push(i));
        }
        assert_eq!(q.len(), n);
        for i in 0..n {
            assert_eq!(q.try_pop(), Some(i), "FIFO across the ring/staging spill");
        }
        assert!(q.is_empty());
    }

    #[test]
    fn completion_queue_mpsc_interleaving_seeded() {
        // Seeded-thread interleaving: P producers push disjoint ranges
        // with seed-dependent pacing, one consumer drains with pop_wait.
        // Per-producer FIFO must hold; nothing may be lost or duplicated.
        for seed in [3u64, 17, 4242] {
            let q = Arc::new(CompletionQueue::<u64>::new());
            let producers = 4u64;
            let per = 2000u64;
            let mut handles = Vec::new();
            for p in 0..producers {
                let q = Arc::clone(&q);
                handles.push(std::thread::spawn(move || {
                    let mut rng = seed.wrapping_mul(p + 1).wrapping_add(0x9E3779B9);
                    for i in 0..per {
                        assert!(q.push(p * per + i));
                        // xorshift-paced yields vary the interleaving per seed
                        rng ^= rng << 13;
                        rng ^= rng >> 7;
                        rng ^= rng << 17;
                        if rng % 7 == 0 {
                            std::thread::yield_now();
                        }
                    }
                }));
            }
            let consumer = {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut last_per_producer = vec![None::<u64>; producers as usize];
                    let mut got = 0u64;
                    while got < producers * per {
                        let v = q.pop_wait().expect("queue not closed");
                        let (p, i) = ((v / per) as usize, v % per);
                        if let Some(prev) = last_per_producer[p] {
                            assert!(i > prev, "per-producer FIFO violated: {i} after {prev}");
                        }
                        last_per_producer[p] = Some(i);
                        got += 1;
                    }
                    got
                })
            };
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(consumer.join().unwrap(), producers * per);
            assert!(q.is_empty());
        }
    }

    /// An op that never makes progress and never starts: cancellable.
    struct NeverStep;
    impl OpStep for NeverStep {
        fn try_advance(&mut self) -> StepOutcome {
            StepOutcome::Pending(OpState::Posted)
        }
        fn started(&self) -> bool {
            false
        }
        fn on_cancel(&mut self) {}
    }

    /// An op that completes on its first tick.
    struct DoneStep;
    impl OpStep for DoneStep {
        fn try_advance(&mut self) -> StepOutcome {
            StepOutcome::Done(VTime::from_nanos(7))
        }
        fn started(&self) -> bool {
            true
        }
        fn on_cancel(&mut self) {
            unreachable!("started ops are never cancelled")
        }
    }

    fn engine_with_peer() -> (Arc<Connections>, ProgressEngine) {
        let conns = Arc::new(Connections::new(0, &[0, 1]));
        let eng = ProgressEngine::new(Arc::clone(&conns));
        (conns, eng)
    }

    #[test]
    fn cancel_on_sharded_slab_leaves_no_dangling_slot() {
        let (conns, eng) = engine_with_peer();
        let conn = conns.get(1).unwrap();
        let a = eng.post(conn, Box::new(NeverStep));
        assert_eq!(eng.in_flight(), 1);
        assert!(eng.cancel(a));
        // The slab slot is freed and recycled, not dangling: the stale
        // handle answers nothing, and the next post reuses the slot under
        // a fresh generation.
        assert_eq!(eng.in_flight(), 0);
        assert!(conn.in_flight_is_empty());
        assert_eq!(eng.state(a), None);
        assert!(eng.take_result(a).is_none());
        assert!(!eng.cancel(a), "double cancel must be a no-op");
        assert_eq!(conn.ops().lock().free_len(), 1);
        let b = eng.post(conn, Box::new(NeverStep));
        assert_eq!(conn.ops().lock().free_len(), 0, "slot was recycled");
        assert_ne!(a, b, "recycled slot must carry a new generation");
        assert_eq!(b.slot(), a.slot());
        assert_eq!(eng.state(a), None, "stale handle must not alias the new op");
        assert!(eng.cancel(b));
    }

    #[test]
    fn take_result_voids_completion_entry() {
        let (conns, eng) = engine_with_peer();
        let conn = conns.get(1).unwrap();
        let id = eng.post(conn, Box::new(DoneStep));
        assert_eq!(eng.advance_conn(conn), 1);
        assert_eq!(eng.state(id), Some(OpState::Complete));
        assert!(eng.take_result(id).unwrap().is_ok());
        assert!(
            eng.completions().try_pop().is_none(),
            "consumed op must vanish from the queue"
        );
        assert!(eng.completions().is_empty());
        assert_eq!(eng.state(id), None, "result consumed");
        assert!(eng.take_result(id).is_none(), "result consumed only once");
    }

    #[test]
    fn drained_completion_still_allows_take_result() {
        let (conns, eng) = engine_with_peer();
        let conn = conns.get(1).unwrap();
        let id = eng.post(conn, Box::new(DoneStep));
        eng.advance_conn(conn);
        let c = eng.completions().try_pop().expect("completion queued");
        assert_eq!(c.id, id);
        assert_eq!(c.peer, 1);
        assert!(eng.take_result(id).unwrap().is_ok());
    }

    #[test]
    fn op_ids_route_by_peer_slot_generation() {
        let id = OpId::encode(3, 5, 9);
        assert_eq!(id.peer(), 3);
        assert_eq!(id.slot(), 5);
        assert_eq!(id.generation(), 9);
    }
}
