//! The event-driven progress engine: nonblocking message state machines.
//!
//! Madeleine II's pack/unpack interface is synchronous: `end_packing`
//! returns when the message is on the wire (or handed to the NIC). That is
//! the right primitive for the paper's RPC-style upper layers, but it
//! forfeits compute/communication overlap — an `isend` built on it must
//! either copy or block through the rendezvous. This module inverts the
//! control flow: a posted message becomes an **op** — a small state
//! machine — parked in a per-session table, and a `progress()` tick
//! advances every op that can move. Finished ops land on a
//! [`CompletionQueue`] the caller drains.
//!
//! ## Op lifecycle
//!
//! ```text
//! Posted ──▶ (frames ship one by one) ──▶ Complete
//!    │             │
//!    │             ├─ short TM out of credits ──▶ CreditWait ──┐
//!    │             ├─ long TM, no CTS yet ──▶ RendezvousWait ──┤
//!    │             ├─ striped block pending ──▶ StripePartial ─┤
//!    │             └─ packets coalescing, frame not
//!    │                flushed yet ──▶ Batched ─────────────────┤
//!    │                                                         │
//!    └──────────────── rail dies / wait expires ──▶ Failed ◀───┘
//! ```
//!
//! * **Posted** — accepted, nothing irrevocable has happened yet; the op
//!   can still be cancelled.
//! * **CreditWait** — a short-TM frame is staged in a static buffer but
//!   the peer's receive ring is full; waiting for a credit return.
//! * **RendezvousWait** — a long-TM frame is waiting for the receiver's
//!   CTS. When the CTS arrives, the transfer is anchored at
//!   `max(posted_at, cts_arrival)` — in virtual time the NIC DMA'd the
//!   payload *while the host computed*, which is exactly the overlap a
//!   real progress thread buys.
//! * **StripePartial** — a multirail striped block is in flight.
//! * **Batched** — every packet of the op entered the connection's send
//!   batch, but the closing multi-envelope frame has not flushed yet; the
//!   op retires when a flush covers its last packet. Until the first
//!   flush nothing has reached the wire, so the op is still cancellable.
//! * **Complete / Failed** — terminal; the op is removed from the table,
//!   its result is recorded, and a [`Completion`] is queued.
//!
//! ## Tick semantics
//!
//! One [`ProgressEngine::progress`] call makes a bounded pass: for every
//! peer connection it advances the **head** op of that peer's in-flight
//! list as far as it can go (per-peer FIFO keeps the wire stream in
//! `begin_packing` order and guarantees at most one outstanding rendezvous
//! per peer, so CTS frames can never pair with the wrong long send).
//! Ticks never block: an op that cannot move is left in its wait state.
//!
//! ## Completion-queue ordering
//!
//! Completions are queued in the order ops *complete*, not the order they
//! were posted: a short message to peer B overtakes an earlier rendezvous
//! to peer A that is still waiting for its CTS. Within one peer, order is
//! FIFO. [`ProgressEngine::take_result`] consumes a result by handle and
//! removes the matching queue entry, so drainers of the queue and callers
//! of `take_result` never see the same op twice.

use crate::connection::{Connection, Connections};
use crate::error::{MadError, MadResult};
use madsim_net::time::VTime;
use madsim_net::NodeId;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

/// Handle of a posted nonblocking operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub u64);

/// Where an in-flight op currently stands (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpState {
    /// Accepted; no frame has shipped yet.
    Posted,
    /// A short-TM frame is staged, waiting for a flow-control credit.
    CreditWait,
    /// A long-TM frame is waiting for the receiver's CTS.
    RendezvousWait,
    /// A multirail striped block is partially transferred.
    StripePartial,
    /// The op's packets sit in the connection's send batch, waiting for
    /// the batch to flush (threshold, deadline, or explicit `flush()`).
    Batched,
    /// Terminal: the op finished; its result is `Ok`.
    Complete,
    /// Terminal: the op finished; its result is `Err`.
    Failed,
}

/// What one `try_advance` call achieved.
pub enum StepOutcome {
    /// The op cannot finish yet; it is parked in the given state.
    Pending(OpState),
    /// The op finished; local work completes at the given virtual instant.
    Done(VTime),
    /// The op failed terminally.
    Failed(MadError),
}

/// A resumable message state machine. Implementations must never block on
/// peer events inside `try_advance` — that is the entire point.
pub(crate) trait OpStep: Send {
    /// Push the op as far as it can go without waiting on the peer.
    fn try_advance(&mut self) -> StepOutcome;
    /// Whether anything irrevocable (a frame on the wire) happened yet.
    fn started(&self) -> bool;
    /// Release resources of a never-started op.
    fn on_cancel(&mut self);
}

/// A finished op, as seen by drainers of the completion queue.
#[derive(Clone, Debug)]
pub struct Completion {
    pub id: OpId,
    /// The peer the op addressed.
    pub peer: NodeId,
    /// `Ok(t)`: local send-side work completed at virtual instant `t`.
    pub result: MadResult<VTime>,
}

struct CqInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// An unbounded multi-producer multi-consumer queue with close semantics —
/// the terminal stage of the progress engine, and a reusable primitive for
/// any pipeline that hands finished work between threads (the gateway
/// forwarder uses one per direction).
pub struct CompletionQueue<T> {
    inner: Mutex<CqInner<T>>,
    cond: Condvar,
}

impl<T> Default for CompletionQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CompletionQueue<T> {
    pub fn new() -> Self {
        CompletionQueue {
            inner: Mutex::new(CqInner {
                items: VecDeque::new(),
                closed: false,
            }),
            cond: Condvar::new(),
        }
    }

    /// Enqueue an item. Returns `false` (dropping the item) if the queue
    /// has been closed.
    pub fn push(&self, item: T) -> bool {
        let mut g = self.inner.lock();
        if g.closed {
            return false;
        }
        g.items.push_back(item);
        drop(g);
        self.cond.notify_one();
        true
    }

    /// Dequeue without blocking.
    pub fn try_pop(&self) -> Option<T> {
        self.inner.lock().items.pop_front()
    }

    /// Dequeue, blocking until an item arrives. Returns `None` only once
    /// the queue is closed **and** drained.
    pub fn pop_wait(&self) -> Option<T> {
        let mut g = self.inner.lock();
        loop {
            if let Some(item) = g.items.pop_front() {
                return Some(item);
            }
            if g.closed {
                return None;
            }
            self.cond.wait(&mut g);
        }
    }

    /// Close the queue: further pushes are rejected, blocked poppers wake,
    /// already-queued items remain poppable.
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.cond.notify_all();
    }

    pub fn len(&self) -> usize {
        self.inner.lock().items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().items.is_empty()
    }

    /// Take everything currently queued.
    pub fn drain(&self) -> Vec<T> {
        self.inner.lock().items.drain(..).collect()
    }

    /// Drop every queued item matching the predicate.
    fn remove_where(&self, mut pred: impl FnMut(&T) -> bool) {
        self.inner.lock().items.retain(|it| !pred(it));
    }
}

struct OpSlot {
    peer: NodeId,
    state: OpState,
    step: Box<dyn OpStep>,
}

/// The per-session progress engine: an op table plus the machinery that
/// drives it (see module docs for tick and ordering semantics).
pub struct ProgressEngine {
    next_id: AtomicU64,
    ops: Mutex<HashMap<u64, OpSlot>>,
    results: Mutex<HashMap<u64, MadResult<VTime>>>,
    completions: CompletionQueue<Completion>,
    /// Serializes ticks so concurrent callers (an app thread inside
    /// `wait` and another inside `post`) never advance the same op twice.
    tick: Mutex<()>,
}

impl Default for ProgressEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgressEngine {
    pub fn new() -> Self {
        ProgressEngine {
            next_id: AtomicU64::new(1),
            ops: Mutex::new(HashMap::new()),
            results: Mutex::new(HashMap::new()),
            completions: CompletionQueue::new(),
            tick: Mutex::new(()),
        }
    }

    /// Register a new op at the tail of `conn`'s in-flight list.
    pub(crate) fn post(&self, conn: &Connection, step: Box<dyn OpStep>) -> OpId {
        let id = OpId(self.next_id.fetch_add(1, Ordering::Relaxed));
        self.ops.lock().insert(
            id.0,
            OpSlot {
                peer: conn.peer(),
                state: OpState::Posted,
                step,
            },
        );
        conn.push_in_flight(id);
        id
    }

    /// Advance one peer's in-flight list as far as it can go, retiring
    /// every op that completes. Returns how many retired.
    ///
    /// The walk normally stops at the first op that parks in a wait state
    /// (per-peer FIFO: a frame of op *k+1* must not ship before op *k* is
    /// done emitting). A [`Batched`](OpState::Batched) park is the one
    /// exception: such an op has *fully* staged its packets in the
    /// connection's send batch and only awaits the closing flush, so later
    /// ops may safely append behind it — that is what makes cross-message
    /// coalescing work at all.
    pub(crate) fn advance_conn(&self, conn: &Connection) -> usize {
        let _serial = self.tick.lock();
        let mut retired = 0;
        let mut pos = 0;
        loop {
            let Some(id) = conn.in_flight_at(pos) else {
                break;
            };
            let Some(mut slot) = self.ops.lock().remove(&id.0) else {
                // Cancelled between the list peek and here.
                break;
            };
            // The step runs without the table lock held: TM pendings may
            // advance the virtual clock and touch driver state.
            match slot.step.try_advance() {
                StepOutcome::Pending(state) => {
                    slot.state = state;
                    self.ops.lock().insert(id.0, slot);
                    if state == OpState::Batched {
                        pos += 1;
                        continue;
                    }
                    break;
                }
                StepOutcome::Done(at) => {
                    conn.remove_in_flight(id);
                    self.retire(id, slot.peer, Ok(at));
                    retired += 1;
                }
                StepOutcome::Failed(e) => {
                    conn.remove_in_flight(id);
                    self.retire(id, slot.peer, Err(e));
                    retired += 1;
                }
            }
        }
        retired
    }

    fn retire(&self, id: OpId, peer: NodeId, result: MadResult<VTime>) {
        self.results.lock().insert(id.0, result.clone());
        self.completions.push(Completion { id, peer, result });
    }

    /// One engine tick: advance every peer's head op (see module docs).
    /// Returns how many ops retired during the tick.
    pub fn progress(&self, conns: &Connections) -> usize {
        conns.iter().map(|c| self.advance_conn(c)).sum()
    }

    /// Drive one peer's in-flight list to empty. Blocks (spinning through
    /// ticks) until every op addressed to `conn`'s peer has retired —
    /// the ordering fence `begin_packing` uses so a blocking send never
    /// overtakes posted ops to the same peer. On a fault-armed fabric the
    /// ops' own bounded waits guarantee termination. `kick` runs between
    /// ticks while ops remain: the channel uses it to flush the
    /// connection's send batch, without which ops parked in
    /// [`Batched`](OpState::Batched) would never retire.
    pub(crate) fn drain_conn(&self, conn: &Connection, mut kick: impl FnMut()) {
        loop {
            self.advance_conn(conn);
            if conn.in_flight_is_empty() {
                return;
            }
            kick();
            std::thread::yield_now();
        }
    }

    /// Current state of an op, if the engine still knows it. Terminal
    /// states are reported until the result is consumed.
    pub fn state(&self, id: OpId) -> Option<OpState> {
        if let Some(slot) = self.ops.lock().get(&id.0) {
            return Some(slot.state);
        }
        self.results.lock().get(&id.0).map(|r| match r {
            Ok(_) => OpState::Complete,
            Err(_) => OpState::Failed,
        })
    }

    /// Consume the result of a retired op. Removes the op's entry from the
    /// completion queue too, so queue drainers never see it again.
    /// `None` while the op is still in flight (or after it was cancelled).
    pub fn take_result(&self, id: OpId) -> Option<MadResult<VTime>> {
        let r = self.results.lock().remove(&id.0)?;
        self.completions.remove_where(|c| c.id == id);
        Some(r)
    }

    /// Cancel a posted op that has not shipped anything yet. Returns
    /// `true` if the op was removed; `false` if it already started (or
    /// already retired), in which case it must be driven to completion.
    pub fn cancel(&self, conns: &Connections, id: OpId) -> bool {
        let _serial = self.tick.lock();
        let mut ops = self.ops.lock();
        let Some(slot) = ops.get(&id.0) else {
            return false;
        };
        if slot.step.started() {
            return false;
        }
        let mut slot = ops.remove(&id.0).expect("checked above");
        drop(ops);
        slot.step.on_cancel();
        if let Some(conn) = conns.get(slot.peer) {
            conn.remove_in_flight(id);
        }
        true
    }

    /// Number of ops currently in flight.
    pub fn in_flight(&self) -> usize {
        self.ops.lock().len()
    }

    /// The queue finished ops land on.
    pub fn completions(&self) -> &CompletionQueue<Completion> {
        &self.completions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_queue_fifo_and_close() {
        let q: CompletionQueue<u32> = CompletionQueue::new();
        assert!(q.is_empty());
        assert!(q.push(1));
        assert!(q.push(2));
        assert_eq!(q.len(), 2);
        assert_eq!(q.try_pop(), Some(1));
        q.close();
        assert!(!q.push(3), "push after close must be rejected");
        assert_eq!(q.pop_wait(), Some(2), "queued items survive close");
        assert_eq!(q.pop_wait(), None, "closed and drained");
    }

    #[test]
    fn completion_queue_pop_wait_wakes_on_push() {
        let q = std::sync::Arc::new(CompletionQueue::<u32>::new());
        let q2 = std::sync::Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop_wait());
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(q.push(7));
        assert_eq!(t.join().unwrap(), Some(7));
    }

    #[test]
    fn completion_queue_remove_where() {
        let q: CompletionQueue<u32> = CompletionQueue::new();
        q.push(1);
        q.push(2);
        q.push(3);
        q.remove_where(|&v| v == 2);
        assert_eq!(q.drain(), vec![1, 3]);
    }
}
