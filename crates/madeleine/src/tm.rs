//! Transmission Modules (paper §3.2, Table 2).
//!
//! A TM encapsulates **one transfer method of one protocol**: BIP's short
//! and long paths are two TMs; SISCI's short-PIO, regular-PIO, and DMA modes
//! are three. The common interface is Table 2 of the paper:
//!
//! | paper | here |
//! |---|---|
//! | `send_buffer` | [`TransmissionModule::send_buffer`] / [`send_static_buffer`](TransmissionModule::send_static_buffer) |
//! | `send_buffer_group` | [`TransmissionModule::send_buffer_group`] |
//! | `receive_buffer` | [`TransmissionModule::receive_buffer`] / [`receive_static_buffer`](TransmissionModule::receive_static_buffer) |
//! | `receive_sub_buffer_group` | [`TransmissionModule::receive_sub_buffer_group`] |
//! | `obtain_static_buffer` | [`TransmissionModule::obtain_static_buffer`] |
//! | `release_static_buffer` | [`TransmissionModule::release_static_buffer`] |
//!
//! (The static-buffer send/receive entry points are split from the dynamic
//! ones because Rust's ownership makes the hand-off explicit; the paper's C
//! interface passes the same pointer either way.) As the paper notes, "some
//! functions may not be relevant for a specific TM and will not be
//! implemented in such case": the defaults here panic with a diagnostic,
//! and the [`TmCaps`] advertisement tells the generic layer which paths are
//! usable.

use crate::error::MadResult;
use crate::pool::PooledBuf;
use bytes::Bytes;
use madsim_net::time::{self, VTime};
use madsim_net::NodeId;

/// Index of a TM within its protocol module.
pub type TmId = u8;

/// Why a posted block cannot ship yet (mirrors the op states of
/// [`crate::progress`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PendingKind {
    /// Waiting for a flow-control credit from the receiver.
    Credit,
    /// Waiting for the receiver's rendezvous clear-to-send.
    Rendezvous,
}

/// One poll of a pending TM send.
pub enum TmStep {
    /// The peer event has not arrived yet.
    Pending,
    /// The block shipped; local send-side work completes at this instant.
    Done(VTime),
}

/// The resumable continuation of a [`TransmissionModule::post_send`] that
/// could not complete inside the call. The progress engine polls it; it
/// must never block.
pub trait TmPending: Send {
    fn kind(&self) -> PendingKind;

    /// Check for the peer event and, if it arrived, ship the block. Errors
    /// are terminal (dead peer, expired bounded wait on a faulty fabric).
    fn try_advance(&mut self) -> MadResult<TmStep>;

    /// Release resources without shipping (the op was cancelled before
    /// anything reached the wire).
    fn cancel(&mut self) {}
}

/// Outcome of [`TransmissionModule::post_send`].
pub enum TmSend {
    /// The block hit the (simulated) wire inside the call; local send-side
    /// work completes at this instant.
    Done(VTime),
    /// The TM needs a peer event first; poll the continuation.
    Pending(Box<dyn TmPending>),
}

/// Capabilities a TM advertises to the buffer-management layer.
#[derive(Clone, Copy, Debug)]
pub struct TmCaps {
    /// Uses protocol-provided static buffers (data must be copied in/out).
    pub static_buffers: bool,
    /// Largest single buffer this TM can carry (static buffer capacity, or
    /// a protocol limit such as BIP's 1 kB short bound).
    pub buffer_cap: usize,
    /// Native scatter/gather: a buffer group costs about one transfer.
    pub gather: bool,
}

/// A protocol-level buffer (paper: "protocols which provide their own set
/// of preallocated buffers").
///
/// On the send side it is owned writable memory obtained from the TM; on
/// the receive side it wraps the protocol's arrival buffer zero-copy.
pub struct StaticBuf {
    mem: BufMem,
    len: usize,
    origin: TmId,
}

enum BufMem {
    Owned(Box<[u8]>),
    Shared(Bytes),
    Pooled(PooledBuf),
}

impl StaticBuf {
    /// A writable send-side buffer of `cap` bytes.
    pub fn owned(cap: usize, origin: TmId) -> Self {
        StaticBuf {
            mem: BufMem::Owned(vec![0u8; cap].into_boxed_slice()),
            len: 0,
            origin,
        }
    }

    /// A writable send-side buffer backed by a pooled segment: on drop the
    /// memory returns to its [`crate::pool::BufPool`] instead of the
    /// allocator, so steady-state static-buffer traffic reuses warm slabs.
    pub fn pooled(buf: PooledBuf, origin: TmId) -> Self {
        StaticBuf {
            mem: BufMem::Pooled(buf),
            len: 0,
            origin,
        }
    }

    /// Wrap an arrived protocol buffer (receive side), zero-copy.
    pub fn shared(data: Bytes, origin: TmId) -> Self {
        StaticBuf {
            len: data.len(),
            mem: BufMem::Shared(data),
            origin,
        }
    }

    pub fn origin(&self) -> TmId {
        self.origin
    }

    /// True for send-side (writable, pool-backed) buffers, false for
    /// receive-side wrappers around arrival bytes.
    pub fn is_owned(&self) -> bool {
        matches!(self.mem, BufMem::Owned(_) | BufMem::Pooled(_))
    }

    /// Filled length.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        match &self.mem {
            BufMem::Owned(b) => b.len(),
            BufMem::Shared(b) => b.len(),
            BufMem::Pooled(b) => b.capacity(),
        }
    }

    /// The arrival bytes of a receive-side wrapper, as a refcounted handle
    /// that outlives this buffer — `None` for send-side (owned) buffers.
    /// Lets a consumer that slices one arrival into many deliveries (the
    /// batch layer splitting a multi-envelope frame) keep the payloads
    /// zero-copy after the buffer is released back to its TM.
    pub fn shared_bytes(&self) -> Option<Bytes> {
        match &self.mem {
            BufMem::Shared(b) => Some(b.clone()),
            BufMem::Owned(_) | BufMem::Pooled(_) => None,
        }
    }

    /// Filled contents.
    pub fn filled(&self) -> &[u8] {
        match &self.mem {
            BufMem::Owned(b) => &b[..self.len],
            BufMem::Shared(b) => &b[..self.len],
            BufMem::Pooled(b) => &b.raw()[..self.len],
        }
    }

    /// Writable tail (send-side buffers only).
    ///
    /// # Panics
    /// Panics on a receive-side (shared) buffer.
    pub fn spare_mut(&mut self) -> &mut [u8] {
        match &mut self.mem {
            BufMem::Owned(b) => &mut b[self.len..],
            BufMem::Shared(_) => panic!("cannot write into a received static buffer"),
            BufMem::Pooled(b) => {
                let len = self.len;
                &mut b.raw_mut()[len..]
            }
        }
    }

    /// Mark `n` more bytes as filled.
    pub fn advance(&mut self, n: usize) {
        assert!(self.len + n <= self.capacity(), "static buffer overflow");
        self.len += n;
    }

    /// Remaining writable capacity.
    pub fn spare(&self) -> usize {
        self.capacity() - self.len
    }

    /// Reset to empty for reuse.
    pub fn clear(&mut self) {
        self.len = 0;
    }
}

/// One transfer method of one protocol. See module docs.
pub trait TransmissionModule: Send + Sync {
    /// Short diagnostic name, e.g. `"bip/short"`.
    fn name(&self) -> &'static str;

    fn caps(&self) -> TmCaps;

    /// Transmit one dynamic (user-memory) buffer to `dst`.
    ///
    /// On a fault-free fabric this never fails; on a fault-armed one it
    /// surfaces retransmission exhaustion, credit timeouts, and dead peers
    /// as [`crate::error::MadError`]s instead of hanging or panicking.
    fn send_buffer(&self, dst: NodeId, data: &[u8]) -> MadResult<()>;

    /// Transmit a group of dynamic buffers as one logical unit. TMs with
    /// native gather override this; the default is sequential sends.
    fn send_buffer_group(&self, dst: NodeId, bufs: &[&[u8]]) -> MadResult<()> {
        for b in bufs {
            self.send_buffer(dst, b)?;
        }
        Ok(())
    }

    /// Scatter/gather flush: transmit a buffer group straight from the
    /// caller's blocks, with no coalescing memcpy on the generic layer.
    /// The Aggregate BMM flushes through this entry point. TMs with native
    /// vectored transmission (TCP writev, SISCI back-to-back PIO) override
    /// it; the default forwards to [`send_buffer_group`](Self::send_buffer_group),
    /// which is itself copy-free (sequential per-block sends) unless a TM
    /// overrides *that* with something that stages.
    fn send_gather(&self, dst: NodeId, bufs: &[&[u8]]) -> MadResult<()> {
        self.send_buffer_group(dst, bufs)
    }

    /// Transmit a filled static buffer previously obtained from this TM.
    /// The buffer returns to the TM's pool.
    fn send_static_buffer(&self, _dst: NodeId, _buf: StaticBuf) -> MadResult<()> {
        panic!("{}: static buffers not supported", self.name());
    }

    /// Receive the next buffer from `src` directly into `dst` (which must
    /// be exactly the transmitted length — Madeleine messages are not
    /// self-described).
    fn receive_buffer(&self, src: NodeId, dst: &mut [u8]) -> MadResult<()>;

    /// Receive a group of buffers transmitted by
    /// [`send_buffer_group`](Self::send_buffer_group), scattered into
    /// `dsts`. Default: sequential receives.
    fn receive_sub_buffer_group(&self, src: NodeId, dsts: &mut [&mut [u8]]) -> MadResult<()> {
        for d in dsts.iter_mut() {
            self.receive_buffer(src, d)?;
        }
        Ok(())
    }

    /// Receive the next static buffer from `src` (static-buffer TMs only).
    fn receive_static_buffer(&self, _src: NodeId) -> MadResult<StaticBuf> {
        panic!("{}: static buffers not supported", self.name());
    }

    /// Obtain an empty protocol buffer (static-buffer TMs only). May block
    /// until the pool has a free buffer.
    fn obtain_static_buffer(&self) -> StaticBuf {
        panic!("{}: static buffers not supported", self.name());
    }

    /// Return an unused (or fully consumed received) buffer to the pool.
    fn release_static_buffer(&self, _buf: StaticBuf) {}

    /// Hint that a receive from `src` is imminent: TMs whose protocol has a
    /// receiver-initiated handshake (BIP's long-message rendezvous) fire it
    /// now so the transfer overlaps the caller's other work. The matching
    /// [`receive_buffer`](Self::receive_buffer) must follow eventually.
    fn prefetch(&self, _src: NodeId) {}

    /// Nonblocking transmit of one owned block: either the block ships
    /// inside the call, or the TM hands back a resumable continuation for
    /// the progress engine to poll ([`TmSend::Pending`]).
    ///
    /// Default: delegate to the blocking [`send_buffer`](Self::send_buffer)
    /// — correct for every TM whose send path completes locally without
    /// waiting on a peer event (PIO stores, stream writes, preposted
    /// descriptors). TMs with a genuine peer dependency (BIP's credit
    /// scheme and long-message rendezvous) override it.
    fn post_send(&self, dst: NodeId, data: Bytes) -> MadResult<TmSend> {
        self.send_buffer(dst, &data)?;
        Ok(TmSend::Done(time::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_buffer_fill_cycle() {
        let mut b = StaticBuf::owned(16, 2);
        assert_eq!(b.origin(), 2);
        assert_eq!(b.capacity(), 16);
        assert_eq!(b.spare(), 16);
        b.spare_mut()[..4].copy_from_slice(b"abcd");
        b.advance(4);
        assert_eq!(b.filled(), b"abcd");
        assert_eq!(b.spare(), 12);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.spare(), 16);
    }

    #[test]
    fn shared_buffer_wraps_zero_copy() {
        let data = Bytes::from_static(b"arrived");
        let b = StaticBuf::shared(data.clone(), 0);
        assert_eq!(b.filled(), b"arrived");
        assert_eq!(b.len(), 7);
        assert_eq!(b.filled().as_ptr(), data.as_ptr());
        let handle = b.shared_bytes().expect("receive-side wrapper");
        assert_eq!(handle.as_ptr(), data.as_ptr(), "handle is zero-copy");
        assert!(StaticBuf::owned(4, 0).shared_bytes().is_none());
    }

    #[test]
    #[should_panic(expected = "cannot write into a received")]
    fn shared_buffer_rejects_writes() {
        let mut b = StaticBuf::shared(Bytes::from_static(b"x"), 0);
        let _ = b.spare_mut();
    }

    #[test]
    #[should_panic(expected = "static buffer overflow")]
    fn advance_past_capacity_panics() {
        let mut b = StaticBuf::owned(4, 0);
        b.advance(5);
    }

    #[test]
    fn pooled_buffer_behaves_like_owned() {
        let pool = crate::pool::BufPool::new(crate::stats::Stats::new());
        let mut b = StaticBuf::pooled(pool.checkout(16), 3);
        assert!(b.is_owned());
        assert_eq!(b.origin(), 3);
        assert_eq!(b.capacity(), 16);
        b.spare_mut()[..4].copy_from_slice(b"abcd");
        b.advance(4);
        assert_eq!(b.filled(), b"abcd");
        assert_eq!(b.spare(), 12);
        b.clear();
        assert!(b.is_empty());
        drop(b);
        // The slab went back to the pool.
        assert_eq!(pool.free_count(), 1);
    }
}
