//! The **rail** layer of the channel stack, and the stripe engine.
//!
//! Madeleine II is "multi-protocol, *multi-adapter*" (paper §1, Fig. 2):
//! a node may own several NICs on one fabric. A [`Rail`] is one such
//! adapter's worth of channel machinery — a protocol module (PMM) with
//! its transmission modules, plus the buffer pool its BMMs and static
//! buffers draw from. A channel owns `1..N` rails and a
//! [`RailScheduler`] that decides which rail carries what:
//!
//! * **Small / EXPRESS packets** stay on the connection's *home rail*
//!   (`connection index mod n_rails`, skipping quarantined rails), so
//!   per-connection ordering is trivially preserved and distinct
//!   connections spread round-robin over the rails.
//! * **Large CHEAPER blocks** (`send_CHEAPER`, `receive_CHEAPER`, length
//!   ≥ the stripe threshold) are **striped**: split into MTU-ish chunks
//!   that round-robin over every alive rail, each chunk preceded by a
//!   16-byte stripe header (magic, rail id, chunk offset, chunk length)
//!   so reassembly is positional — no inter-rail ordering is needed, and
//!   per-connection order is preserved because the whole striped block
//!   is committed before pack/unpack continues.
//!
//! Each rail's chunks are sent by a dedicated thread with its own
//! virtual clock (the same trick the world uses for node threads), so
//! the rails' synchronous long-message protocols overlap in virtual
//! time; the caller's clock is advanced to the latest rail's finish.
//!
//! ### Failover
//!
//! On a fault-armed fabric the receiver acknowledges every chunk with a
//! raw control frame (the stripe layer's own kind, distinct from every
//! stack's), routed over its lowest alive rail — all rails of a network
//! share the node's inbound mailbox, so the sender collects acks from
//! any rail. A chunk whose ack does not arrive within the bounded wait
//! gets its rail **quarantined** ([`TraceEvent::RailDown`]) and is
//! re-striped over the survivors; when no rail survives the send fails
//! with [`MadError::ChannelDown`]. On a fault-free fabric none of this
//! machinery arms: no acks, no timeouts, zero extra frames.

use crate::batch::BatchPolicy;
use crate::error::{MadError, MadResult};
use crate::flags::{RecvMode, SendMode};
use crate::pmm::Pmm;
use crate::pool::BufPool;
use crate::stats::Stats;
use crate::trace::{TraceEvent, Tracer};
use crate::wire::{self, WireVersion};
use madsim_net::time::{self, ClockHandle, VDuration, VTime};
use madsim_net::{Adapter, Frame, NodeId};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Size of the *classic* per-chunk stripe header — and the canonical
/// length both ends feed the symmetric TM selection for stripe headers of
/// either wire version (the compact encoding is shorter and varies with
/// the chunk's offset). The layout itself lives in [`crate::wire`].
pub use crate::wire::STRIPE_HDR_LEN;

/// Frame kind of stripe-layer chunk acknowledgments. Stacks use small
/// kind values; this lives far above them so the shared mailbox never
/// confuses an ack with protocol traffic.
const KIND_STRIPE_ACK: u16 = 0xE1;
/// Virtual latency charged to a stripe ack control frame.
const ACK_LAT_US: f64 = 1.0;
/// Real-time bound on the sender's per-round ack wait (mirrors the
/// drivers' fault-armed waits).
const ACK_WAIT: Duration = Duration::from_millis(2_000);
/// Real-time bound on the receive side of a striped block making no
/// progress at all (several chunk-level waits may each consume their own
/// bounded wait before this trips).
const RECV_STALL: Duration = Duration::from_millis(8_000);

/// One adapter's worth of channel machinery: a protocol module and the
/// buffer pool its transmission modules draw from.
pub struct Rail {
    id: usize,
    pmm: Arc<dyn Pmm>,
    pool: BufPool,
    /// The adapter underneath, when the rail was built by a session over
    /// a simulated fabric. Extension channels (e.g. the gateway's
    /// virtual channels) have none — they are single-rail by contract.
    adapter: Option<Adapter>,
    /// Cleared when the rail is quarantined after a link failure.
    alive: AtomicBool,
    /// The owning channel's cached live-rail bitmask (bit `id`), cleared
    /// together with `alive` so hot wait paths can test one word instead
    /// of re-walking every rail.
    live_mask: OnceLock<Arc<AtomicU64>>,
}

impl Rail {
    pub(crate) fn new(
        id: usize,
        pmm: Arc<dyn Pmm>,
        pool: BufPool,
        adapter: Option<Adapter>,
    ) -> Self {
        Rail {
            id,
            pmm,
            pool,
            adapter,
            alive: AtomicBool::new(true),
            live_mask: OnceLock::new(),
        }
    }

    /// Hook the rail up to its channel's live-rail mask (set once at
    /// channel construction).
    pub(crate) fn attach_live_mask(&self, mask: Arc<AtomicU64>) {
        let _ = self.live_mask.set(mask);
    }

    /// Rail index within its channel (0-based, dense).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The protocol module driving this rail.
    pub fn pmm(&self) -> &Arc<dyn Pmm> {
        &self.pmm
    }

    /// The rail's buffer pool.
    pub fn pool(&self) -> &BufPool {
        &self.pool
    }

    /// Is this rail still in service? Always `true` on a fault-free
    /// fabric — quarantine happens only on observed link failures.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Mark the rail out of service. Returns `true` iff this call made
    /// the transition (so the caller records the trace event once).
    fn mark_down(&self) -> bool {
        let was_alive = self.alive.swap(false, Ordering::AcqRel);
        if let Some(mask) = self.live_mask.get() {
            mask.fetch_and(!(1u64 << self.id), Ordering::AcqRel);
        }
        was_alive
    }

    /// Quarantine the rail after a link failure, recording the event
    /// exactly once.
    pub(crate) fn quarantine(&self, stats: &Stats, tracer: &Tracer) {
        if self.mark_down() {
            stats.record_failover();
            tracer.record(TraceEvent::RailDown { rail: self.id });
        }
    }

    /// Is the rail's world fault-armed? World-global (a `FaultPlan`
    /// covers every adapter identically), so any rail answers for the
    /// whole channel — the wire-version negotiation relies on that.
    pub(crate) fn faulty(&self) -> bool {
        self.adapter.as_ref().is_some_and(|a| a.faulty())
    }

    fn reachable_to(&self, peer: NodeId) -> bool {
        self.adapter.as_ref().is_none_or(|a| a.reachable_to(peer))
    }
}

/// The channel's rail-selection policy (see module docs).
pub struct RailScheduler {
    /// Large CHEAPER blocks at least this long are striped.
    pub(crate) stripe_threshold: usize,
    /// Stripe chunk size.
    pub(crate) stripe_chunk: usize,
    /// Small-packet coalescing policy (see [`crate::batch`]); off unless
    /// the channel spec asked for batching.
    pub(crate) batch: BatchPolicy,
}

impl RailScheduler {
    pub(crate) fn new(stripe_threshold: usize, stripe_chunk: usize) -> Self {
        assert!(stripe_chunk > 0, "stripe chunk must be positive");
        assert!(stripe_threshold > 0, "stripe threshold must be positive");
        RailScheduler {
            stripe_threshold,
            stripe_chunk,
            batch: BatchPolicy::off(),
        }
    }

    /// Enable small-packet batching with the given policy.
    pub(crate) fn with_batching(mut self, batch: BatchPolicy) -> Self {
        assert!(
            batch.max_packets >= 1,
            "batch packet count must be positive"
        );
        assert!(batch.max_bytes > 0, "batch byte threshold must be positive");
        assert!(
            batch.flush_us > 0.0,
            "batch flush deadline must be positive"
        );
        self.batch = batch;
        self
    }

    /// Should a block with these emission flags be striped? Must be a
    /// pure, symmetric function of its arguments (like `Pmm::select`):
    /// both endpoints evaluate it independently. `n_rails` is the
    /// *configured* rail count, identical on every member.
    pub(crate) fn should_stripe(
        &self,
        len: usize,
        smode: SendMode,
        rmode: RecvMode,
        n_rails: usize,
    ) -> bool {
        n_rails > 1
            && smode == SendMode::Cheaper
            && rmode == RecvMode::Cheaper
            && len >= self.stripe_threshold
    }

    /// Home rail of the connection with member index `conn_index`:
    /// `conn_index mod n`, advanced past quarantined rails.
    pub(crate) fn home_rail(&self, conn_index: usize, rails: &[Rail]) -> usize {
        let n = rails.len();
        let start = conn_index % n;
        for k in 0..n {
            let r = (start + k) % n;
            if rails[r].is_alive() {
                return r;
            }
        }
        // Every rail is down; let the send path surface the error.
        start
    }

    /// Split `0..len` into stripe chunks: `(offset, length)` pairs in
    /// offset order.
    fn chunks(&self, len: usize) -> Vec<(usize, usize)> {
        let mut v = Vec::with_capacity(len.div_ceil(self.stripe_chunk));
        let mut off = 0;
        while off < len {
            let l = self.stripe_chunk.min(len - off);
            v.push((off, l));
            off += l;
        }
        v
    }
}

/// Everything the stripe engine needs from the channel, borrowed for one
/// striped block.
pub(crate) struct StripeCtx<'c> {
    pub rails: &'c [Rail],
    pub sched: &'c RailScheduler,
    pub me: NodeId,
    pub stats: &'c Arc<Stats>,
    pub tracer: &'c Arc<Tracer>,
    /// Demultiplexing tag of this block's ack frames: unique per
    /// (channel, connection direction, block) — both endpoints derive it
    /// from their per-connection stripe-block counters, so no extra wire
    /// traffic is needed to agree on it.
    pub ack_tag: u64,
    /// The owning channel's negotiated wire format. Compact implies a
    /// fault-free world, i.e. the mirror (deterministic-layout) receive
    /// path — the dynamic path needs the self-described classic header.
    pub wire: WireVersion,
}

/// One stripe chunk as an `(offset, len)` span of the source block.
type ChunkSpan = (usize, usize);
/// One rail sender thread's outcome: rail id, final virtual clock,
/// chunks that made it, chunks abandoned after a transport error.
type RailOutcome = (usize, VTime, Vec<ChunkSpan>, Vec<ChunkSpan>);

/// Stripe `data` to `dst` across the context's alive rails.
pub(crate) fn stripe_send(ctx: &StripeCtx<'_>, dst: NodeId, data: &[u8]) -> MadResult<()> {
    assert!(
        data.len() <= u32::MAX as usize,
        "striped blocks are limited to 4 GiB"
    );
    let faulty = ctx.rails.iter().any(Rail::faulty);
    let mut todo = ctx.sched.chunks(data.len());
    ctx.stats.record_stripe();
    ctx.tracer.record(TraceEvent::Stripe {
        len: data.len(),
        chunks: todo.len(),
        rails: ctx.rails.iter().filter(|r| r.is_alive()).count(),
    });
    let mut round = 0;
    while !todo.is_empty() {
        round += 1;
        if round > ctx.rails.len() + 1 {
            return Err(MadError::ChannelDown);
        }
        let alive: Vec<&Rail> = ctx.rails.iter().filter(|r| r.is_alive()).collect();
        if alive.is_empty() {
            return Err(MadError::ChannelDown);
        }
        // Round-robin the remaining chunks over the alive rails.
        let mut spans: Vec<Vec<(usize, usize)>> = vec![Vec::new(); alive.len()];
        for (i, c) in todo.iter().enumerate() {
            spans[i % alive.len()].push(*c);
        }
        let start = time::now();
        // One sender thread per rail, each with its own virtual clock
        // seeded at `start`, so the rails' synchronous long-message
        // protocols overlap in virtual time. Contention for the shared
        // host PCI bus is modeled by the bus's reservation timeline.
        let outcomes: Vec<RailOutcome> = std::thread::scope(|s| {
            let mut handles = Vec::new();
            for (rail, span) in alive.iter().zip(&spans) {
                if span.is_empty() {
                    continue;
                }
                let rail: &Rail = rail;
                handles.push(s.spawn(move || {
                    let clock = ClockHandle::new();
                    clock.advance_to(start);
                    let prev = time::install_clock(clock.clone());
                    let (sent, failed) = send_span(ctx, rail, dst, span, data);
                    time::restore_clock(prev);
                    (rail.id(), clock.now(), sent, failed)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("rail sender thread panicked"))
                .collect()
        });
        let mut failed_chunks = Vec::new();
        let mut sent_chunks: Vec<(usize, (usize, usize))> = Vec::new();
        let mut makespan = start;
        for (rail_id, end, sent, failed) in outcomes {
            makespan = makespan.max(end);
            sent_chunks.extend(sent.into_iter().map(|c| (rail_id, c)));
            if !failed.is_empty() {
                ctx.rails[rail_id].quarantine(ctx.stats, ctx.tracer);
                failed_chunks.extend(failed);
            }
        }
        time::advance_to(makespan);
        todo = failed_chunks;
        if faulty && !sent_chunks.is_empty() {
            for (rail_id, chunk) in wait_acks(ctx, dst, &sent_chunks) {
                ctx.rails[rail_id].quarantine(ctx.stats, ctx.tracer);
                todo.push(chunk);
            }
        }
    }
    Ok(())
}

/// Send one rail's span of chunks, in order. Returns the chunks that
/// made it and the ones abandoned after the first transport error.
fn send_span(
    ctx: &StripeCtx<'_>,
    rail: &Rail,
    dst: NodeId,
    span: &[ChunkSpan],
    data: &[u8],
) -> (Vec<ChunkSpan>, Vec<ChunkSpan>) {
    let mut sent = Vec::with_capacity(span.len());
    for (i, &(off, len)) in span.iter().enumerate() {
        let Ok(hdr_len) = send_chunk(ctx, rail, dst, off, len, data) else {
            return (sent, span[i..].to_vec());
        };
        ctx.stats.record_borrowed(len);
        ctx.stats.record_rail_traffic(rail.id(), hdr_len + len);
        sent.push((off, len));
    }
    (sent, Vec::new())
}

/// Send one chunk: stripe header on the protocol's small path, then the
/// payload by reference through the TM the Switch picks for its size.
/// Returns the header's wire length (it varies on the compact wire). The
/// header's TM is selected on the canonical [`STRIPE_HDR_LEN`] for both
/// versions — the receiver classifies before knowing the chunk span.
fn send_chunk(
    ctx: &StripeCtx<'_>,
    rail: &Rail,
    dst: NodeId,
    off: usize,
    len: usize,
    data: &[u8],
) -> MadResult<usize> {
    let hdr = wire::encode_stripe_header(ctx.wire, rail.id(), off, len);
    let hdr_tm = rail
        .pmm
        .select(STRIPE_HDR_LEN, SendMode::Cheaper, RecvMode::Express);
    rail.pmm.tm(hdr_tm).send_buffer(dst, &hdr)?;
    let tm = rail.pmm.select(len, SendMode::Cheaper, RecvMode::Cheaper);
    rail.pmm.tm(tm).send_buffer(dst, &data[off..off + len])?;
    ctx.stats.record_buffer_sent();
    ctx.stats.record_tm_traffic(tm, len);
    Ok(hdr.len())
}

/// Collect this round's chunk acks (fault-armed fabrics only). Returns
/// the chunks whose ack never came, with the rail that carried them.
fn wait_acks(
    ctx: &StripeCtx<'_>,
    dst: NodeId,
    sent: &[(usize, (usize, usize))],
) -> Vec<(usize, (usize, usize))> {
    // All rails of a network share the node's inbound mailbox, so any
    // adapter sees acks regardless of which rail carried them.
    let Some(adapter) = ctx.rails.iter().find_map(|r| r.adapter.as_ref()) else {
        return Vec::new();
    };
    let mut pending: std::collections::HashMap<u64, (usize, (usize, usize))> = sent
        .iter()
        .map(|&(rail_id, c)| (c.0 as u64, (rail_id, c)))
        .collect();
    let deadline = Instant::now() + ACK_WAIT;
    while !pending.is_empty() {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            break;
        }
        let Some(frame) =
            adapter
                .inbox()
                .recv_from_timeout(dst, KIND_STRIPE_ACK, |f| f.tag == ctx.ack_tag, left)
        else {
            break;
        };
        time::advance_to(frame.arrival);
        if let Some(off) = wire::decode_stripe_ack(&frame.payload) {
            pending.remove(&off);
        }
    }
    pending.into_values().collect()
}

/// Reassemble a striped block from `src` into `dst`, mirroring
/// [`stripe_send`].
pub(crate) fn stripe_recv(ctx: &StripeCtx<'_>, src: NodeId, dst: &mut [u8]) -> MadResult<()> {
    if ctx.rails.iter().any(Rail::faulty) {
        stripe_recv_dynamic(ctx, src, dst)
    } else {
        stripe_recv_mirror(ctx, src, dst)
    }
}

/// Fault-free reassembly: the sender's chunk layout is a pure function
/// of the block length and the rail count (all rails alive, round-robin
/// by chunk index), so the receiver mirrors it deterministically —
/// harvesting every rail's next stripe header (and posting the bulk
/// TM's prefetch, so rendezvous protocols overlap across rails) before
/// blocking on payloads in chunk order.
fn stripe_recv_mirror(ctx: &StripeCtx<'_>, src: NodeId, dst: &mut [u8]) -> MadResult<()> {
    let total = dst.len();
    let chunks = ctx.sched.chunks(total);
    let n = ctx.rails.len();
    let mut queues: Vec<std::collections::VecDeque<(usize, usize)>> =
        vec![std::collections::VecDeque::new(); n];
    for (i, c) in chunks.iter().enumerate() {
        queues[i % n].push_back(*c);
    }
    let mut awaiting: Vec<Option<(usize, usize)>> = vec![None; n];
    for c in 0..chunks.len() {
        // Keep one header harvested (and one prefetch posted) per rail.
        for r in 0..n {
            if awaiting[r].is_some() {
                continue;
            }
            let Some(&(exp_off, exp_len)) = queues[r].front() else {
                continue;
            };
            recv_stripe_header_expected(ctx, &ctx.rails[r], src, exp_off, exp_len)?;
            let rail = &ctx.rails[r];
            let tm = rail
                .pmm
                .select(exp_len, SendMode::Cheaper, RecvMode::Cheaper);
            rail.pmm.tm(tm).prefetch(src);
            queues[r].pop_front();
            awaiting[r] = Some((exp_off, exp_len));
        }
        let r = c % n;
        let (off, len) = awaiting[r].take().expect("harvested just above");
        let rail = &ctx.rails[r];
        let tm = rail.pmm.select(len, SendMode::Cheaper, RecvMode::Cheaper);
        rail.pmm
            .tm(tm)
            .receive_buffer(src, &mut dst[off..off + len])?;
        let hdr_len = wire::encode_stripe_header(ctx.wire, r, off, len).len();
        ctx.stats.record_rail_traffic(r, hdr_len + len);
    }
    Ok(())
}

/// Receive one stripe header whose fields the mirror layout fully
/// predicts. The receiver encodes the expected header, reads exactly that
/// many bytes, and compares — which is what makes the variable-length
/// compact header receivable at all over exact-read transmission modules
/// (and on the classic wire is equivalent to the field checks).
fn recv_stripe_header_expected(
    ctx: &StripeCtx<'_>,
    rail: &Rail,
    src: NodeId,
    exp_off: usize,
    exp_len: usize,
) -> MadResult<()> {
    match ctx.wire {
        WireVersion::Classic => {
            let (off, len) = recv_stripe_header_classic(rail, src)?;
            if (off, len) != (exp_off, exp_len) {
                return Err(MadError::corrupt(format!(
                    "stripe chunk ({off}, {len}) from node {src} does not match \
                     the deterministic layout (expected ({exp_off}, {exp_len}))"
                )));
            }
        }
        WireVersion::Compact => {
            let expect = wire::encode_stripe_header(ctx.wire, rail.id(), exp_off, exp_len);
            let tm = rail
                .pmm
                .select(STRIPE_HDR_LEN, SendMode::Cheaper, RecvMode::Express);
            let mut hdr = [0u8; STRIPE_HDR_LEN];
            let got = &mut hdr[..expect.len()];
            rail.pmm.tm(tm).receive_buffer(src, got)?;
            if *got != *expect {
                return Err(MadError::corrupt(format!(
                    "stripe chunk from node {src} does not match the deterministic \
                     layout (expected ({exp_off}, {exp_len}) on rail {})",
                    rail.id()
                )));
            }
        }
    }
    Ok(())
}

/// Fault-armed reassembly: the sender's layout is unknowable (rails
/// quarantine and chunks re-stripe mid-block), so chunks are accepted in
/// whatever order the rails deliver them, keyed by the stripe header's
/// offset, and every received chunk is acknowledged so the sender can
/// tell loss from latency.
fn stripe_recv_dynamic(ctx: &StripeCtx<'_>, src: NodeId, dst: &mut [u8]) -> MadResult<()> {
    let total = dst.len();
    let n = ctx.rails.len();
    let mut got = std::collections::HashSet::new();
    let mut received = 0usize;
    let mut awaiting: Vec<Option<(usize, usize)>> = vec![None; n];
    let mut stall_since = Instant::now();
    while received < total {
        let mut progressed = false;
        // Phase A: harvest announced stripe headers (at most one
        // outstanding per rail, so stream protocols stay parseable) and
        // post the bulk TM's prefetch immediately.
        for rail in ctx.rails {
            let r = rail.id();
            if !rail.is_alive() || awaiting[r].is_some() {
                continue;
            }
            if !rail.reachable_to(src) {
                rail.quarantine(ctx.stats, ctx.tracer);
                continue;
            }
            if rail.pmm.poll_incoming() != Some(src) {
                continue;
            }
            match recv_stripe_header_classic(rail, src) {
                Ok((off, len)) => {
                    if off + len > total {
                        return Err(MadError::corrupt(format!(
                            "stripe chunk ({off}, {len}) from node {src} overflows \
                             a {total}-byte block"
                        )));
                    }
                    let tm = rail.pmm.select(len, SendMode::Cheaper, RecvMode::Cheaper);
                    rail.pmm.tm(tm).prefetch(src);
                    awaiting[r] = Some((off, len));
                    progressed = true;
                }
                Err(MadError::CorruptStream(what)) => {
                    return Err(MadError::CorruptStream(what));
                }
                Err(_) => rail.quarantine(ctx.stats, ctx.tracer),
            }
        }
        // Phase B: pull one outstanding payload (lowest rail first).
        if let Some(r) = (0..n).find(|&r| awaiting[r].is_some()) {
            let (off, len) = awaiting[r].take().expect("just found");
            let rail = &ctx.rails[r];
            let tm = rail.pmm.select(len, SendMode::Cheaper, RecvMode::Cheaper);
            match rail
                .pmm
                .tm(tm)
                .receive_buffer(src, &mut dst[off..off + len])
            {
                Ok(()) => {
                    // Duplicates happen when a chunk's ack was lost and
                    // the sender re-striped it; the payload bytes are
                    // identical, only the accounting dedups.
                    if got.insert(off) {
                        received += len;
                    }
                    // Dynamic reassembly runs only on fault-armed (hence
                    // classic-wire) channels: fixed header length.
                    ctx.stats.record_rail_traffic(r, STRIPE_HDR_LEN + len);
                    send_ack(ctx, src, off);
                    progressed = true;
                }
                Err(_) => rail.quarantine(ctx.stats, ctx.tracer),
            }
        }
        if progressed {
            stall_since = Instant::now();
        } else {
            if ctx.rails.iter().all(|r| !r.is_alive()) || stall_since.elapsed() >= RECV_STALL {
                return Err(MadError::ChannelDown);
            }
            std::thread::yield_now();
        }
    }
    Ok(())
}

/// Receive and validate one *classic* (self-described) stripe header on
/// `rail` — the dynamic reassembly path, which cannot predict the span.
fn recv_stripe_header_classic(rail: &Rail, src: NodeId) -> MadResult<(usize, usize)> {
    let tm = rail
        .pmm
        .select(STRIPE_HDR_LEN, SendMode::Cheaper, RecvMode::Express);
    let mut hdr = [0u8; STRIPE_HDR_LEN];
    rail.pmm.tm(tm).receive_buffer(src, &mut hdr)?;
    let (hdr_rail, off, len) = wire::decode_stripe_header_classic(&hdr, src)?;
    if hdr_rail != rail.id() {
        return Err(MadError::corrupt(format!(
            "stripe header for rail {hdr_rail} arrived on rail {}",
            rail.id()
        )));
    }
    Ok((off, len))
}

/// Acknowledge the chunk at `off` toward `dst`, routed over the lowest
/// alive-and-reachable rail (fault-armed receivers only).
fn send_ack(ctx: &StripeCtx<'_>, dst: NodeId, off: usize) {
    let adapter = ctx
        .rails
        .iter()
        .find(|r| r.is_alive() && r.reachable_to(dst))
        .and_then(|r| r.adapter.as_ref())
        .or_else(|| ctx.rails.iter().find_map(|r| r.adapter.as_ref()));
    let Some(adapter) = adapter else { return };
    let frame = Frame {
        src: ctx.me,
        kind: KIND_STRIPE_ACK,
        tag: ctx.ack_tag,
        arrival: time::now() + VDuration::from_micros_f64(ACK_LAT_US),
        payload: bytes::Bytes::copy_from_slice(&wire::encode_stripe_ack(off)),
    };
    adapter.send_raw_control(dst, frame);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bmm::SendPolicy;
    use crate::tm::{TmId, TransmissionModule};

    /// A PMM with no transfer methods: enough to exercise the scheduler's
    /// pure logic without a fabric underneath.
    struct NullPmm;

    impl Pmm for NullPmm {
        fn name(&self) -> &'static str {
            "null"
        }
        fn tms(&self) -> &[Arc<dyn TransmissionModule>] {
            &[]
        }
        fn select(&self, _len: usize, _smode: SendMode, _rmode: RecvMode) -> TmId {
            0
        }
        fn policy(&self, _id: TmId) -> SendPolicy {
            SendPolicy::Eager
        }
        fn wait_incoming(&self) -> NodeId {
            unreachable!("null PMM carries no traffic")
        }
        fn poll_incoming(&self) -> Option<NodeId> {
            None
        }
    }

    fn test_rails(n: usize) -> Vec<Rail> {
        (0..n)
            .map(|i| Rail::new(i, Arc::new(NullPmm), BufPool::new(Stats::new()), None))
            .collect()
    }

    #[test]
    fn chunking_covers_the_block_exactly() {
        let sched = RailScheduler::new(256, 100);
        let chunks = sched.chunks(250);
        assert_eq!(chunks, vec![(0, 100), (100, 100), (200, 50)]);
        assert_eq!(sched.chunks(100), vec![(0, 100)]);
        assert!(sched.chunks(0).is_empty());
    }

    #[test]
    fn striping_needs_cheaper_both_ways_and_rails() {
        let sched = RailScheduler::new(1000, 500);
        use RecvMode as R;
        use SendMode as S;
        assert!(sched.should_stripe(1000, S::Cheaper, R::Cheaper, 2));
        assert!(
            !sched.should_stripe(999, S::Cheaper, R::Cheaper, 2),
            "below threshold"
        );
        assert!(
            !sched.should_stripe(1000, S::Cheaper, R::Cheaper, 1),
            "single rail"
        );
        assert!(!sched.should_stripe(1000, S::Safer, R::Cheaper, 2));
        assert!(!sched.should_stripe(1000, S::Later, R::Cheaper, 2));
        assert!(!sched.should_stripe(1000, S::Cheaper, R::Express, 2));
    }

    #[test]
    fn home_rail_round_robins_and_skips_dead() {
        let sched = RailScheduler::new(1000, 500);
        let rails = test_rails(3);
        assert_eq!(sched.home_rail(0, &rails), 0);
        assert_eq!(sched.home_rail(1, &rails), 1);
        assert_eq!(sched.home_rail(5, &rails), 2);
        let stats = Stats::new();
        let tracer = Tracer::new();
        rails[1].quarantine(&stats, &tracer);
        assert!(!rails[1].is_alive());
        assert_eq!(sched.home_rail(1, &rails), 2, "skips the dead rail");
        assert_eq!(sched.home_rail(4, &rails), 2);
        assert_eq!(stats.failovers(), 1);
        // A second quarantine of the same rail records nothing new.
        rails[1].quarantine(&stats, &tracer);
        assert_eq!(stats.failovers(), 1);
    }
}
