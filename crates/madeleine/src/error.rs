//! The Madeleine II error taxonomy.
//!
//! The original library (like the paper's hardware) assumes perfectly
//! reliable interconnects, so every unexpected condition was a `panic!`.
//! On a fault-armed fabric (see `madsim_net::FaultPlan`) links really do
//! drop frames, peers really do crash, and those conditions must surface
//! to the caller as values. [`MadError`] is that surface: the `try_`
//! variants of the channel/TM API return [`MadResult`], and the original
//! panicking entry points remain as thin shims over them — so the
//! zero-fault fast path pays nothing for the machinery.

use madsim_net::{LinkError, NodeId};

/// Everything that can go wrong on a Madeleine data path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MadError {
    /// A bounded wait (ack, credit, rendezvous, flag) expired. The peer
    /// may still be alive; retrying at a higher level may succeed.
    Timeout,
    /// The peer is known dead: crashed or partitioned away.
    PeerUnreachable {
        /// The unreachable node.
        peer: NodeId,
    },
    /// The channel (or virtual-channel route) can no longer deliver —
    /// retransmission was exhausted, a credit source vanished, or every
    /// route of a virtual channel is down.
    ChannelDown,
    /// Incoming bytes violate a wire protocol (bad magic, corrupt
    /// envelope, malformed header). The stream cannot be resynchronized.
    CorruptStream(String),
    /// A virtual channel has no route configured that could reach the
    /// destination.
    NoRoute,
}

/// Result alias used by all fallible Madeleine APIs.
pub type MadResult<T> = Result<T, MadError>;

impl MadError {
    /// Lift a fabric-level link error into the taxonomy, naming the peer
    /// the link pointed at.
    pub fn from_link(e: LinkError, peer: NodeId) -> Self {
        match e {
            LinkError::Timeout => MadError::Timeout,
            LinkError::PeerDead => MadError::PeerUnreachable { peer },
        }
    }

    /// Convenience constructor for [`MadError::CorruptStream`].
    pub fn corrupt(what: impl Into<String>) -> Self {
        MadError::CorruptStream(what.into())
    }
}

impl std::fmt::Display for MadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MadError::Timeout => write!(f, "operation timed out"),
            MadError::PeerUnreachable { peer } => write!(f, "peer node {peer} is unreachable"),
            MadError::ChannelDown => write!(f, "channel is down"),
            MadError::CorruptStream(what) => write!(f, "corrupt stream: {what}"),
            MadError::NoRoute => write!(f, "no route to destination"),
        }
    }
}

impl std::error::Error for MadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_link_maps_both_variants() {
        assert_eq!(
            MadError::from_link(LinkError::Timeout, 3),
            MadError::Timeout
        );
        assert_eq!(
            MadError::from_link(LinkError::PeerDead, 3),
            MadError::PeerUnreachable { peer: 3 }
        );
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(
            MadError::corrupt("bad magic 0xdead").to_string(),
            "corrupt stream: bad magic 0xdead"
        );
        assert_eq!(
            MadError::PeerUnreachable { peer: 7 }.to_string(),
            "peer node 7 is unreachable"
        );
    }
}
