//! Pack/unpack semantics flags (paper §2.2).
//!
//! The pair of flags attached to every packed block is *the* original
//! contribution of the Madeleine interface: the application states the
//! weakest constraint it needs, and the library picks the cheapest transfer
//! method satisfying it on the current network.

use std::fmt;

/// Emission flags: how the library may access the packed data.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum SendMode {
    /// `send_SAFER`: the library must capture the data at pack time, so the
    /// caller may reuse the memory immediately (it is copied).
    Safer,
    /// `send_LATER`: the library must NOT read the data until
    /// `end_packing`; the wire sees the value at flush time.
    ///
    /// Note on the Rust port: a packed block is held by shared borrow, so
    /// the caller cannot mutate it between `pack` and `end_packing` anyway;
    /// `Later` keeps the *mechanism* (the read is deferred to the final
    /// commit) which is observable in transfer timing and aggregation.
    Later,
    /// `send_CHEAPER` (default): the library does whatever is fastest; the
    /// data must stay untouched until the send completes.
    #[default]
    Cheaper,
}

/// Reception flags: when the unpacked data must be available.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum RecvMode {
    /// `receive_EXPRESS`: the data is guaranteed available as soon as the
    /// `unpack` call returns — mandatory when the value steers the
    /// following unpack calls (e.g. a length header).
    Express,
    /// `receive_CHEAPER` (default): extraction may be deferred up to
    /// `end_unpacking`; combined with `send_CHEAPER` this is the fastest
    /// path the network offers.
    #[default]
    Cheaper,
}

impl fmt::Display for SendMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SendMode::Safer => "send_SAFER",
            SendMode::Later => "send_LATER",
            SendMode::Cheaper => "send_CHEAPER",
        };
        f.write_str(s)
    }
}

impl fmt::Display for RecvMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RecvMode::Express => "receive_EXPRESS",
            RecvMode::Cheaper => "receive_CHEAPER",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_cheaper() {
        assert_eq!(SendMode::default(), SendMode::Cheaper);
        assert_eq!(RecvMode::default(), RecvMode::Cheaper);
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(SendMode::Safer.to_string(), "send_SAFER");
        assert_eq!(SendMode::Later.to_string(), "send_LATER");
        assert_eq!(SendMode::Cheaper.to_string(), "send_CHEAPER");
        assert_eq!(RecvMode::Express.to_string(), "receive_EXPRESS");
        assert_eq!(RecvMode::Cheaper.to_string(), "receive_CHEAPER");
    }
}
