//! The **wire codec**: one module defines every on-wire header layout.
//!
//! Madeleine II's headers grew up in three places — the channel's internal
//! message header, the stripe engine's per-chunk header, the batch layer's
//! multi-envelope frame — plus the gateway's fragment header one crate
//! over, each hand-writing `to_le_bytes` fields. This module consolidates
//! all of them behind a versioned [`WireVersion`] codec, and adds a
//! **compact** encoding built on LEB128-style varints (7 value bits per
//! byte, high bit = continuation) for the fault-free fast path, where
//! fixed 16-byte headers were the dominant per-message cost at small
//! sizes.
//!
//! ## Version negotiation
//!
//! The version is a **pure, symmetric function** evaluated independently
//! at both ends — exactly like `Pmm::select` and the stripe/batch
//! eligibility tests, because Madeleine messages are not self-described:
//!
//! * a channel built over a **fault-armed** world (a `FaultPlan` is
//!   installed — a world-global fact every adapter reports identically)
//!   speaks **Classic**, keeping the ARQ/failover/re-striping machinery on
//!   the byte-exact format it was proven on (and per-seed wire streams
//!   byte-identical);
//! * a channel whose spec forces [`WireMode::Classic`] speaks Classic;
//! * everything else speaks **Compact**.
//!
//! Mixed encodings can therefore never meet on one wire by accident; if a
//! misconfiguration ever produced one anyway, the compact prologue byte
//! (`0xC1`/`0xC5`/`0xC9`/`0xCD`) is disjoint from every classic first
//! byte (`0x32` "MAD2", `0x53` "SLRM", `0x4D` "MADB", `0x47` "MG" — all
//! little-endian), so the stream fails loudly as a corrupt header, not as
//! silent misparsing.
//!
//! ## Variable length vs. one-send-one-receive
//!
//! The TM contract is one receive per send with the **exact length** on
//! static-buffer stacks, so a receiver cannot "read a varint" off the
//! fabric. Compact headers instead rely on **receiver prediction**: the
//! receiver already knows every header field (the source from the
//! announcement, the sequence number from its connection counter, the
//! stripe span from the deterministic mirror layout), so it encodes the
//! header it *expects*, receives exactly that many bytes, and compares.
//! A mismatch is the same loud `CorruptStream` a bad magic or a sequence
//! gap produces today. Batch frames, whose content the receiver cannot
//! predict, carry an explicit body length right after the prologue;
//! gateway fragment headers, which stateless gateways cannot predict
//! either, use a shorter *fixed* compact layout instead of varints.
//!
//! ## Wire layouts
//!
//! ```text
//! message header      Classic (16 B):
//!   [magic  u32 = "MAD2"][src u32][seq u32][reserved u32 = 0]
//!                       Compact (3..11 B):
//!   [0xC1][src varint][seq varint]
//!
//! stripe chunk header Classic (16 B):
//!   [magic  u32 = "SLRM"][rail u32][off u32][len u32]
//!                       Compact (4..16 B):
//!   [0xC5][rail varint][off varint][len varint]
//!
//! batch frame         Classic:
//!   [magic  u32 = "MADB"][count u32]
//!   [{seq u32, len u32, flags u32}] x count     // envelope table
//!   [payloads, concatenated]
//!                       Compact:
//!   [0xC9][body_len varint]                     // body = everything after
//!   [first_seq varint][count varint]
//!   [(len << 2 | flags) varint] x count         // flags fit 2 bits
//!   [payloads, concatenated]
//!
//! fragment header     Classic (16 B):
//!   [magic u16 = "MG"][src u8][dst u8][len u32][offset u32][pad u32]
//!                       Compact (10 B, fixed):
//!   [0xCD][src u8][dst u8][len u24][offset u32]
//! ```

use crate::error::{MadError, MadResult};
use madsim_net::NodeId;

// ---------------------------------------------------------------------
// Classic constants (the pre-codec layouts, byte-identical).
// ---------------------------------------------------------------------

/// Classic message-header magic ("MAD2" on the LE wire).
pub(crate) const MSG_MAGIC: u32 = 0x4D41_4432;
/// Classic message-header length; also the canonical length used in the
/// *symmetric* TM-selection and batch-eligibility tests for headers of
/// either version (the actual compact bytes are shorter, but both ends
/// must classify the header block identically before knowing the seq).
pub const MSG_HEADER_LEN: usize = 16;

/// Classic stripe-header magic ("SLRM"; "MRLS" on the LE wire).
pub(crate) const STRIPE_MAGIC: u32 = 0x4D52_4C53;
/// Classic stripe-header length.
pub const STRIPE_HDR_LEN: usize = 16;

/// Batch-frame magic ("MADB" on the LE wire).
pub(crate) const BATCH_MAGIC: u32 = 0x4244_414D;
/// Classic batch frame header: magic + packet count.
pub(crate) const BATCH_HDR_LEN: usize = 8;
/// Classic envelope-table entry: `{seq u32, len u32, flags u32}`.
pub(crate) const BATCH_ENV_LEN: usize = 12;
/// Upper bound a receiver accepts for the packet count of one frame —
/// far above any configurable threshold, so a corrupt count field fails
/// loudly instead of provoking a huge allocation.
pub(crate) const MAX_FRAME_PACKETS: usize = 65_536;

/// Fragment-header magic ("MG" on the LE wire).
pub(crate) const FRAG_MAGIC: u16 = 0x4D47;
/// Classic fragment-header length.
pub const FRAG_HEADER_LEN: usize = 16;
/// Compact fragment-header length (fixed: gateways are stateless and
/// cannot predict, so the compact win here is a tighter fixed layout).
pub const FRAG_HEADER_LEN_COMPACT: usize = 10;

// ---------------------------------------------------------------------
// Versioning.
// ---------------------------------------------------------------------

/// Per-channel wire-format policy (the spec-level knob).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WireMode {
    /// Negotiate: Compact on a fault-free world, Classic otherwise.
    #[default]
    Auto,
    /// Always the classic fixed-field layouts (A/B baselines, paranoia).
    Classic,
}

/// The negotiated wire format of one channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireVersion {
    /// Fixed-field layouts, byte-identical to the pre-codec library.
    Classic,
    /// Varint/compact layouts (fault-free fabrics only).
    Compact,
}

impl WireVersion {
    /// Resolve the spec's mode against the world's (global, symmetric)
    /// fault-armed flag. There is deliberately no way to force Compact
    /// onto a fault-armed world: dynamic re-striping needs the
    /// self-described classic stripe header.
    pub fn resolve(mode: WireMode, fault_armed: bool) -> WireVersion {
        if fault_armed || mode == WireMode::Classic {
            WireVersion::Classic
        } else {
            WireVersion::Compact
        }
    }
}

/// Compact-prologue kinds, `0xC0 | (kind << 2) | 1`.
#[derive(Clone, Copy)]
enum Kind {
    Msg = 0,
    Stripe = 1,
    Batch = 2,
    Frag = 3,
}

const fn prologue(kind: Kind) -> u8 {
    0xC0 | ((kind as u8) << 2) | 1
}

/// Compact message-header prologue byte.
pub(crate) const PROLOGUE_MSG: u8 = prologue(Kind::Msg); // 0xC1
/// Compact stripe-header prologue byte.
pub(crate) const PROLOGUE_STRIPE: u8 = prologue(Kind::Stripe); // 0xC5
/// Compact batch-frame prologue byte.
pub(crate) const PROLOGUE_BATCH: u8 = prologue(Kind::Batch); // 0xC9
/// Compact fragment-header prologue byte.
pub(crate) const PROLOGUE_FRAG: u8 = prologue(Kind::Frag); // 0xCD

// ---------------------------------------------------------------------
// Varints (LEB128-style: 7 value bits per byte, high bit = continuation).
// ---------------------------------------------------------------------

/// Longest varint encoding of a `u64`.
pub const MAX_VARINT: usize = 10;
/// Continuation bit of a varint byte.
pub(crate) const VARINT_CONT: u8 = 0x80;

/// Encoded length of `v` as a varint.
pub fn varint_len(v: u64) -> usize {
    // 1 byte per started 7-bit group; zero still takes one byte.
    (64 - v.leading_zeros() as usize).div_ceil(7).max(1)
}

/// Append the varint encoding of `v` to `out`.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | VARINT_CONT);
    }
}

/// Decode one varint at `*pos`, advancing the cursor. Overlong or
/// truncated encodings are [`MadError::CorruptStream`].
pub fn read_varint(buf: &[u8], pos: &mut usize) -> MadResult<u64> {
    let mut v: u64 = 0;
    for i in 0..MAX_VARINT {
        let Some(&byte) = buf.get(*pos + i) else {
            return Err(MadError::corrupt("truncated varint".to_string()));
        };
        let group = (byte & 0x7F) as u64;
        // The 10th byte may only carry the single top bit of a u64.
        if i == MAX_VARINT - 1 && group > 1 {
            return Err(MadError::corrupt("varint overflows u64".to_string()));
        }
        v |= group << (7 * i);
        if byte & VARINT_CONT == 0 {
            *pos += i + 1;
            return Ok(v);
        }
    }
    Err(MadError::corrupt("varint longer than 10 bytes".to_string()))
}

// ---------------------------------------------------------------------
// Fixed-width primitives: the one place classic fields are laid down.
// ---------------------------------------------------------------------

pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn get_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_le_bytes(buf[off..off + 2].try_into().expect("2 bytes"))
}

pub(crate) fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().expect("4 bytes"))
}

/// A header encoded on the stack: every wire header fits 24 bytes.
#[derive(Clone, Copy)]
pub struct HeaderBytes {
    buf: [u8; 24],
    len: usize,
}

impl HeaderBytes {
    fn from_vec(v: &[u8]) -> Self {
        let mut buf = [0u8; 24];
        buf[..v.len()].copy_from_slice(v);
        HeaderBytes { buf, len: v.len() }
    }
}

impl std::ops::Deref for HeaderBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf[..self.len]
    }
}

// ---------------------------------------------------------------------
// Message header.
// ---------------------------------------------------------------------

/// Encode the internal message header announcing `(src, seq)`. Shared by
/// the blocking path, the posted-op path, the batch layer's deferred
/// headers — and by every *receiver*, which encodes the header it expects
/// and compares (see the module docs on prediction).
pub(crate) fn encode_msg_header(v: WireVersion, src: NodeId, seq: u32) -> HeaderBytes {
    let mut out = Vec::with_capacity(MSG_HEADER_LEN);
    match v {
        WireVersion::Classic => {
            put_u32(&mut out, MSG_MAGIC);
            put_u32(&mut out, src as u32);
            put_u32(&mut out, seq);
            put_u32(&mut out, 0);
        }
        WireVersion::Compact => {
            out.push(PROLOGUE_MSG);
            put_varint(&mut out, src as u64);
            put_varint(&mut out, seq as u64);
        }
    }
    HeaderBytes::from_vec(&out)
}

/// A decoded message header.
pub(crate) struct MsgHeader {
    pub src: NodeId,
    pub seq: u32,
}

/// Decode a message header (diagnostics on the prediction-mismatch path,
/// and the classic receive path).
pub(crate) fn decode_msg_header(v: WireVersion, bytes: &[u8]) -> MadResult<MsgHeader> {
    match v {
        WireVersion::Classic => {
            if bytes.len() < MSG_HEADER_LEN || get_u32(bytes, 0) != MSG_MAGIC {
                return Err(MadError::corrupt("corrupt message header".to_string()));
            }
            Ok(MsgHeader {
                src: get_u32(bytes, 4) as NodeId,
                seq: get_u32(bytes, 8),
            })
        }
        WireVersion::Compact => {
            if bytes.first() != Some(&PROLOGUE_MSG) {
                return Err(MadError::corrupt("corrupt message header".to_string()));
            }
            let mut pos = 1;
            let src = read_varint(bytes, &mut pos)? as NodeId;
            let seq = read_varint(bytes, &mut pos)?;
            let seq = u32::try_from(seq)
                .map_err(|_| MadError::corrupt("message seq overflows u32".to_string()))?;
            Ok(MsgHeader { src, seq })
        }
    }
}

// ---------------------------------------------------------------------
// Stripe chunk header.
// ---------------------------------------------------------------------

/// Encode the per-chunk stripe header. The compact form is emitted only
/// on fault-free channels, whose receivers mirror the deterministic chunk
/// layout and predict every field.
pub(crate) fn encode_stripe_header(
    v: WireVersion,
    rail: usize,
    off: usize,
    len: usize,
) -> HeaderBytes {
    let mut out = Vec::with_capacity(STRIPE_HDR_LEN);
    match v {
        WireVersion::Classic => {
            put_u32(&mut out, STRIPE_MAGIC);
            put_u32(&mut out, rail as u32);
            put_u32(&mut out, off as u32);
            put_u32(&mut out, len as u32);
        }
        WireVersion::Compact => {
            out.push(PROLOGUE_STRIPE);
            put_varint(&mut out, rail as u64);
            put_varint(&mut out, off as u64);
            put_varint(&mut out, len as u64);
        }
    }
    HeaderBytes::from_vec(&out)
}

/// Decode a classic stripe header into `(rail, off, len)`. Only the
/// classic form is ever decoded field-by-field: the dynamic (fault-armed)
/// reassembly path needs self-description, and fault-armed channels speak
/// Classic by construction.
pub(crate) fn decode_stripe_header_classic(
    bytes: &[u8; STRIPE_HDR_LEN],
    src: NodeId,
) -> MadResult<(usize, usize, usize)> {
    if get_u32(bytes, 0) != STRIPE_MAGIC {
        return Err(MadError::corrupt(format!(
            "bad stripe header magic from node {src} (asymmetric pack/unpack?)"
        )));
    }
    Ok((
        get_u32(bytes, 4) as usize,
        get_u32(bytes, 8) as usize,
        get_u32(bytes, 12) as usize,
    ))
}

/// Encode a stripe-ack control payload (the acknowledged chunk offset).
pub(crate) fn encode_stripe_ack(off: usize) -> [u8; 8] {
    (off as u64).to_le_bytes()
}

/// Decode a stripe-ack control payload.
pub(crate) fn decode_stripe_ack(payload: &[u8]) -> Option<u64> {
    Some(u64::from_le_bytes(payload.get(..8)?.try_into().ok()?))
}

// ---------------------------------------------------------------------
// Batch frames.
// ---------------------------------------------------------------------

/// One decoded envelope-table entry.
pub(crate) struct BatchEnvelope {
    pub seq: u32,
    pub len: usize,
    pub flags: u32,
}

/// Build a batch frame's header + envelope table for `packets` (one
/// `(len, flags)` pair per packet, envelope seqs `first_seq..`), with
/// capacity reserved for the payload bytes the caller appends after.
/// Compact flags must fit the 2 bits below the length.
pub(crate) fn encode_batch_frame(
    v: WireVersion,
    first_seq: u32,
    packets: &[(usize, u32)],
) -> Vec<u8> {
    let payload: usize = packets.iter().map(|&(len, _)| len).sum();
    match v {
        WireVersion::Classic => {
            let mut out =
                Vec::with_capacity(BATCH_HDR_LEN + packets.len() * BATCH_ENV_LEN + payload);
            put_u32(&mut out, BATCH_MAGIC);
            put_u32(&mut out, packets.len() as u32);
            for (i, &(len, flags)) in packets.iter().enumerate() {
                put_u32(&mut out, first_seq.wrapping_add(i as u32));
                put_u32(&mut out, len as u32);
                put_u32(&mut out, flags);
            }
            out
        }
        WireVersion::Compact => {
            let mut envs = Vec::with_capacity(packets.len() * 2);
            for &(len, flags) in packets {
                debug_assert!(flags < 4, "compact envelope flags fit 2 bits");
                put_varint(&mut envs, ((len as u64) << 2) | flags as u64);
            }
            let body = varint_len(first_seq as u64)
                + varint_len(packets.len() as u64)
                + envs.len()
                + payload;
            let mut out = Vec::with_capacity(1 + varint_len(body as u64) + body);
            out.push(PROLOGUE_BATCH);
            put_varint(&mut out, body as u64);
            put_varint(&mut out, first_seq as u64);
            put_varint(&mut out, packets.len() as u64);
            out.extend_from_slice(&envs);
            out
        }
    }
}

/// Parse a whole batch frame's header + envelope table; returns the
/// envelopes and the offset where the concatenated payloads begin.
/// Payload-slicing and envelope-seq continuity stay with the caller.
pub(crate) fn parse_batch_frame(
    v: WireVersion,
    frame: &[u8],
    src: NodeId,
) -> MadResult<(Vec<BatchEnvelope>, usize)> {
    match v {
        WireVersion::Classic => {
            if frame.len() < BATCH_HDR_LEN {
                return Err(MadError::corrupt(format!(
                    "truncated batch frame ({} bytes) from node {src}",
                    frame.len()
                )));
            }
            let count = parse_batch_count_classic(&frame[..BATCH_HDR_LEN], src)?;
            let table_end = BATCH_HDR_LEN + count * BATCH_ENV_LEN;
            if frame.len() < table_end {
                return Err(MadError::corrupt(format!(
                    "batch frame from node {src} too short for its {count}-entry \
                     envelope table"
                )));
            }
            let envs = (0..count)
                .map(|i| {
                    let at = BATCH_HDR_LEN + i * BATCH_ENV_LEN;
                    BatchEnvelope {
                        seq: get_u32(frame, at),
                        len: get_u32(frame, at + 4) as usize,
                        flags: get_u32(frame, at + 8),
                    }
                })
                .collect();
            Ok((envs, table_end))
        }
        WireVersion::Compact => {
            if frame.first() != Some(&PROLOGUE_BATCH) {
                return Err(MadError::corrupt(format!(
                    "bad batch frame prologue from node {src} \
                     (batching enabled on one end only?)"
                )));
            }
            let mut pos = 1;
            let body = read_varint(frame, &mut pos)? as usize;
            if frame.len() != pos + body {
                return Err(MadError::corrupt(format!(
                    "batch frame from node {src} is {} bytes where its body \
                     length says {}",
                    frame.len(),
                    pos + body
                )));
            }
            let first_seq = read_varint(frame, &mut pos)?;
            let first_seq = u32::try_from(first_seq)
                .map_err(|_| MadError::corrupt("batch envelope seq overflows u32".to_string()))?;
            let count = read_varint(frame, &mut pos)? as usize;
            if count == 0 || count > MAX_FRAME_PACKETS {
                return Err(MadError::corrupt(format!(
                    "batch frame from node {src} claims {count} packets"
                )));
            }
            let mut envs = Vec::with_capacity(count);
            for i in 0..count {
                let packed = read_varint(frame, &mut pos)?;
                envs.push(BatchEnvelope {
                    seq: first_seq.wrapping_add(i as u32),
                    len: (packed >> 2) as usize,
                    flags: (packed & 0b11) as u32,
                });
            }
            Ok((envs, pos))
        }
    }
}

/// Validate a classic batch frame's fixed header and return its packet
/// count (the stream receive path reads the header alone first).
pub(crate) fn parse_batch_count_classic(hdr: &[u8], src: NodeId) -> MadResult<usize> {
    if get_u32(hdr, 0) != BATCH_MAGIC {
        return Err(MadError::corrupt(format!(
            "bad batch frame magic {:#010x} from node {src} \
             (batching enabled on one end only?)",
            get_u32(hdr, 0)
        )));
    }
    let count = get_u32(hdr, 4) as usize;
    if count == 0 || count > MAX_FRAME_PACKETS {
        return Err(MadError::corrupt(format!(
            "batch frame from node {src} claims {count} packets"
        )));
    }
    Ok(count)
}

// ---------------------------------------------------------------------
// Gateway fragment header.
// ---------------------------------------------------------------------

/// Per-fragment self-description (paper §6.1): what a stateless gateway
/// needs to forward — where the fragment is going, where it came from,
/// how long it is, and its byte offset within its block (the offset is
/// what lets a receiver tell a restarted block from the stale tail of an
/// aborted failover attempt).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FragHeader {
    /// Originating end node.
    pub src: NodeId,
    /// Final destination end node.
    pub dst: NodeId,
    /// Payload bytes following this header.
    pub len: usize,
    /// Byte offset of this fragment within its block.
    pub offset: usize,
}

impl FragHeader {
    /// On-wire length of a fragment header under `v`. Fixed per version:
    /// gateways cannot predict, so the compact form shrinks the fixed
    /// fields (u24 length, no magic word, no pad) rather than varinting.
    pub fn wire_len(v: WireVersion) -> usize {
        match v {
            WireVersion::Classic => FRAG_HEADER_LEN,
            WireVersion::Compact => FRAG_HEADER_LEN_COMPACT,
        }
    }

    /// Encode under `v`.
    ///
    /// # Panics
    /// Panics if a node id exceeds a byte, the length exceeds 24 bits
    /// (fragments are MTU-bounded), or the offset exceeds 32 bits.
    pub fn encode(&self, v: WireVersion) -> HeaderBytes {
        let src = u8::try_from(self.src).expect("node ids < 256");
        let dst = u8::try_from(self.dst).expect("node ids < 256");
        let offset = u32::try_from(self.offset).expect("block offsets < 4 GiB");
        let mut out = Vec::with_capacity(FRAG_HEADER_LEN);
        match v {
            WireVersion::Classic => {
                put_u16(&mut out, FRAG_MAGIC);
                out.push(src);
                out.push(dst);
                put_u32(&mut out, self.len as u32);
                put_u32(&mut out, offset);
                put_u32(&mut out, 0);
            }
            WireVersion::Compact => {
                assert!(self.len < 1 << 24, "fragments are MTU-bounded");
                out.push(PROLOGUE_FRAG);
                out.push(src);
                out.push(dst);
                out.extend_from_slice(&(self.len as u32).to_le_bytes()[..3]);
                put_u32(&mut out, offset);
            }
        }
        HeaderBytes::from_vec(&out)
    }

    /// Decode `wire_len(v)` bytes, reporting a corrupt magic/prologue as
    /// [`MadError::CorruptStream`] — a gateway fed non-fragment traffic
    /// (e.g. a hop channel also used directly by the application), or a
    /// version mismatch between the hop's endpoints.
    pub fn try_decode(v: WireVersion, b: &[u8]) -> MadResult<Self> {
        match v {
            WireVersion::Classic => {
                let magic = get_u16(b, 0);
                if magic != FRAG_MAGIC {
                    return Err(MadError::corrupt(format!(
                        "corrupt fragment header (magic {magic:#06x}): hop channel \
                         carrying non-virtual-channel traffic?"
                    )));
                }
                Ok(FragHeader {
                    src: b[2] as NodeId,
                    dst: b[3] as NodeId,
                    len: get_u32(b, 4) as usize,
                    offset: get_u32(b, 8) as usize,
                })
            }
            WireVersion::Compact => {
                if b.first() != Some(&PROLOGUE_FRAG) {
                    return Err(MadError::corrupt(format!(
                        "corrupt fragment header (prologue {:#04x}): hop channel \
                         carrying non-virtual-channel traffic?",
                        b.first().copied().unwrap_or(0)
                    )));
                }
                let mut len4 = [0u8; 4];
                len4[..3].copy_from_slice(&b[3..6]);
                Ok(FragHeader {
                    src: b[1] as NodeId,
                    dst: b[2] as NodeId,
                    len: u32::from_le_bytes(len4) as usize,
                    offset: get_u32(b, 6) as usize,
                })
            }
        }
    }

    /// [`try_decode`](Self::try_decode) for contexts that cannot recover.
    ///
    /// # Panics
    /// Panics on a corrupt magic/prologue.
    pub fn decode(v: WireVersion, b: &[u8]) -> Self {
        match Self::try_decode(v, b) {
            Ok(h) => h,
            Err(e) => panic!("{e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(v: u64) {
        let mut buf = Vec::new();
        put_varint(&mut buf, v);
        assert_eq!(buf.len(), varint_len(v), "length formula for {v}");
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
        assert_eq!(pos, buf.len(), "cursor consumed exactly the varint");
    }

    #[test]
    fn varint_boundaries_roundtrip() {
        // Every 7-bit group boundary: 0, 2^7 +- 1, 2^14 +- 1, ... u64::MAX.
        let mut cases = vec![0u64, u64::MAX];
        for shift in (7..64).step_by(7) {
            let b = 1u64 << shift;
            cases.extend([b - 1, b, b + 1]);
        }
        for v in cases {
            roundtrip(v);
        }
        assert_eq!(varint_len(0), 1);
        assert_eq!(varint_len(127), 1);
        assert_eq!(varint_len(128), 2);
        assert_eq!(varint_len(u64::MAX), MAX_VARINT);
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        let mut pos = 0;
        assert!(read_varint(&buf[..buf.len() - 1], &mut pos).is_err());
        // 10 continuation bytes followed by anything: longer than a u64.
        let long = [VARINT_CONT | 1; 11];
        let mut pos = 0;
        assert!(read_varint(&long, &mut pos).is_err());
        // A 10th byte carrying more than the top bit of a u64.
        let mut over = [VARINT_CONT | 0x7F; 9].to_vec();
        over.push(0x02);
        let mut pos = 0;
        assert!(read_varint(&over, &mut pos).is_err());
    }

    #[test]
    fn prologues_disjoint_from_classic_first_bytes() {
        let classic_first = [
            MSG_MAGIC.to_le_bytes()[0],
            STRIPE_MAGIC.to_le_bytes()[0],
            BATCH_MAGIC.to_le_bytes()[0],
            FRAG_MAGIC.to_le_bytes()[0],
        ];
        for p in [PROLOGUE_MSG, PROLOGUE_STRIPE, PROLOGUE_BATCH, PROLOGUE_FRAG] {
            assert!(!classic_first.contains(&p), "{p:#04x} collides");
        }
        let all = [PROLOGUE_MSG, PROLOGUE_STRIPE, PROLOGUE_BATCH, PROLOGUE_FRAG];
        for (i, a) in all.iter().enumerate() {
            assert!(!all[i + 1..].contains(a), "duplicate prologue {a:#04x}");
        }
    }

    #[test]
    fn msg_header_roundtrips_and_cross_version_fails() {
        for v in [WireVersion::Classic, WireVersion::Compact] {
            let h = encode_msg_header(v, 7, 12345);
            let d = decode_msg_header(v, &h).unwrap();
            assert_eq!((d.src, d.seq), (7, 12345));
        }
        let compact = encode_msg_header(WireVersion::Compact, 7, 12345);
        assert!(decode_msg_header(WireVersion::Classic, &compact).is_err());
        let classic = encode_msg_header(WireVersion::Classic, 7, 12345);
        assert!(decode_msg_header(WireVersion::Compact, &classic).is_err());
    }

    #[test]
    fn stripe_header_classic_matches_legacy_layout() {
        let h = encode_stripe_header(WireVersion::Classic, 2, 4096, 1024);
        assert_eq!(h.len(), STRIPE_HDR_LEN);
        let arr: [u8; STRIPE_HDR_LEN] = h[..].try_into().unwrap();
        assert_eq!(
            decode_stripe_header_classic(&arr, 0).unwrap(),
            (2, 4096, 1024)
        );
    }

    #[test]
    fn batch_frame_roundtrips_both_versions() {
        let packets = [(64usize, 0u32), (16, 1), (0, 2), (300, 3)];
        for v in [WireVersion::Classic, WireVersion::Compact] {
            let mut frame = encode_batch_frame(v, 41, &packets);
            for &(len, _) in &packets {
                frame.extend(std::iter::repeat_n(0xAB, len));
            }
            let (envs, payload_at) = parse_batch_frame(v, &frame, 0).unwrap();
            assert_eq!(envs.len(), packets.len());
            for (i, (env, &(len, flags))) in envs.iter().zip(&packets).enumerate() {
                assert_eq!(env.seq, 41 + i as u32);
                assert_eq!(env.len, len);
                assert_eq!(env.flags, flags);
            }
            let total: usize = packets.iter().map(|p| p.0).sum();
            assert_eq!(frame.len() - payload_at, total);
        }
    }

    #[test]
    fn compact_batch_frame_is_smaller() {
        let packets: Vec<(usize, u32)> = (0..16).map(|_| (64usize, 0u32)).collect();
        let classic = encode_batch_frame(WireVersion::Classic, 0, &packets);
        let compact = encode_batch_frame(WireVersion::Compact, 0, &packets);
        assert!(
            compact.len() * 4 <= classic.len(),
            "compact batch overhead {} vs classic {}",
            compact.len(),
            classic.len()
        );
    }

    #[test]
    fn frag_header_roundtrips_both_versions() {
        let h = FragHeader {
            src: 3,
            dst: 9,
            len: 131072,
            offset: 8192,
        };
        for v in [WireVersion::Classic, WireVersion::Compact] {
            let e = h.encode(v);
            assert_eq!(e.len(), FragHeader::wire_len(v));
            assert_eq!(FragHeader::decode(v, &e), h);
        }
        let zero = FragHeader {
            src: 0,
            dst: 1,
            len: 0,
            offset: 0,
        };
        for v in [WireVersion::Classic, WireVersion::Compact] {
            assert_eq!(FragHeader::decode(v, &zero.encode(v)), zero);
        }
    }

    #[test]
    fn frag_bad_magic_is_a_corrupt_stream_error() {
        let b = [0u8; FRAG_HEADER_LEN];
        for v in [WireVersion::Classic, WireVersion::Compact] {
            match FragHeader::try_decode(v, &b) {
                Err(MadError::CorruptStream(what)) => {
                    assert!(what.contains("corrupt fragment header"), "got {what:?}")
                }
                other => panic!("expected CorruptStream, got {other:?}"),
            }
        }
    }

    #[test]
    fn version_resolution_is_classic_under_faults() {
        use WireMode as M;
        use WireVersion as V;
        assert_eq!(V::resolve(M::Auto, false), V::Compact);
        assert_eq!(V::resolve(M::Auto, true), V::Classic);
        assert_eq!(V::resolve(M::Classic, false), V::Classic);
        assert_eq!(V::resolve(M::Classic, true), V::Classic);
    }

    proptest! {
        #[test]
        fn varint_roundtrips_any_u64(v in any::<u64>()) {
            roundtrip(v);
        }

        #[test]
        fn varint_concatenation_parses_in_order(a in any::<u64>(), b in any::<u64>()) {
            let mut buf = Vec::new();
            put_varint(&mut buf, a);
            put_varint(&mut buf, b);
            let mut pos = 0;
            prop_assert_eq!(read_varint(&buf, &mut pos).unwrap(), a);
            prop_assert_eq!(read_varint(&buf, &mut pos).unwrap(), b);
            prop_assert_eq!(pos, buf.len());
        }

        #[test]
        fn msg_header_roundtrips_any(src in 0usize..4096, seq in any::<u32>()) {
            for v in [WireVersion::Classic, WireVersion::Compact] {
                let h = encode_msg_header(v, src, seq);
                let d = decode_msg_header(v, &h).unwrap();
                prop_assert_eq!((d.src, d.seq), (src, seq));
            }
        }

        #[test]
        fn stripe_header_compact_roundtrips(
            rail in 0usize..64,
            off in 0usize..(u32::MAX as usize),
            len in 0usize..(u32::MAX as usize),
        ) {
            // The compact stripe header is validated by byte-compare on the
            // receive side; here we pin that equal fields give equal bytes
            // and different fields give different bytes.
            let a = encode_stripe_header(WireVersion::Compact, rail, off, len);
            let b = encode_stripe_header(WireVersion::Compact, rail, off, len);
            prop_assert_eq!(&a[..], &b[..]);
            if off != len {
                let c = encode_stripe_header(WireVersion::Compact, rail, len, off);
                prop_assert!(a[..] != c[..], "swapped fields must encode differently");
            }
        }
    }
}
