//! Pooled buffer slabs for the zero-copy send path.
//!
//! Every place the generic layer used to allocate a fresh buffer — per-message
//! headers, SAFER defensive copies, StaticCopy protocol buffers, gateway
//! fragment staging — now checks a segment out of a [`BufPool`] and returns it
//! on drop. On a steady-state workload (ping-pong, RPC storm) every message
//! after the first few reuses warm memory: no allocator traffic, no page
//! faults, and the pool hit-rate is an observable number ([`Stats::pool_hits`]
//! / [`Stats::pool_misses`]) rather than a hope.
//!
//! The design is deliberately simple — a handful of power-of-two-ish size
//! classes, each a **lock-free** free list of `Box<[u8]>` slabs (a bounded
//! MPMC array queue) — because the pool sits on the send hot path: checkout
//! and checkin are one atomic `pop`/`push` each, O(1) with no search and no
//! lock to convoy on when several connections churn buffers at once. A
//! `push` against a full queue simply drops the slab, which doubles as the
//! retention bound. (This file is lint-guarded by `scripts/verify.sh`: no
//! `parking_lot` locks may reappear here.) Classes
//! are sized to the buffers the drivers actually request (16-byte headers,
//! BIP's 1 kB short buffers, VIA's 8 kB, SBP's 32 kB, and megabyte-class
//! bodies for SAFER bulk).

use crate::stats::Stats;
use crossbeam::queue::ArrayQueue;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Size classes, smallest to largest. A request is served from the smallest
/// class that fits; larger requests fall back to an exact one-shot allocation
/// that is never recycled (and counts as a pool miss).
const CLASS_SIZES: &[usize] = &[64, 1024, 8 * 1024, 32 * 1024, 256 * 1024, 1024 * 1024];

/// Per-class cap on retained free slabs (the free-queue capacity; must be
/// a power of two). A checkin that finds the queue full frees the memory
/// instead of growing the pool without bound.
const MAX_FREE_PER_CLASS: usize = 32;

struct PoolShared {
    classes: Vec<ArrayQueue<Box<[u8]>>>,
    stats: Arc<Stats>,
}

/// A per-channel pool of reusable buffer segments.
///
/// Cloning is cheap (an `Arc` bump); all clones share the same free lists and
/// the same [`Stats`] hit/miss counters.
#[derive(Clone)]
pub struct BufPool {
    shared: Arc<PoolShared>,
}

impl fmt::Debug for BufPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let free: Vec<usize> = self.shared.classes.iter().map(|c| c.len()).collect();
        f.debug_struct("BufPool").field("free", &free).finish()
    }
}

impl BufPool {
    /// A fresh, empty pool whose hit/miss counters land on `stats`.
    pub fn new(stats: Arc<Stats>) -> Self {
        BufPool {
            shared: Arc::new(PoolShared {
                classes: CLASS_SIZES
                    .iter()
                    .map(|_| ArrayQueue::new(MAX_FREE_PER_CLASS))
                    .collect(),
                stats,
            }),
        }
    }

    /// Check out a buffer with at least `size` bytes of capacity.
    ///
    /// The returned handle exposes exactly `size` bytes of capacity (the
    /// backing slab may be larger) and starts empty (`len() == 0`). Dropping
    /// it returns the slab to the pool.
    pub fn checkout(&self, size: usize) -> PooledBuf {
        let class = CLASS_SIZES.iter().position(|&c| c >= size);
        let mem = match class {
            Some(idx) => {
                let recycled = self.shared.classes[idx].pop();
                match recycled {
                    Some(m) => {
                        self.shared.stats.record_pool_hit();
                        m
                    }
                    None => {
                        self.shared.stats.record_pool_miss();
                        vec![0u8; CLASS_SIZES[idx]].into_boxed_slice()
                    }
                }
            }
            None => {
                // Oversized: exact allocation, never recycled.
                self.shared.stats.record_pool_miss();
                vec![0u8; size].into_boxed_slice()
            }
        };
        PooledBuf {
            mem: Some(mem),
            cap: size,
            len: 0,
            class,
            shared: Arc::clone(&self.shared),
        }
    }

    /// Check out a buffer and fill it with a copy of `data`.
    ///
    /// This is the SAFER path: the copy is deliberate and the caller accounts
    /// for it; the pool only saves the allocation.
    pub fn checkout_from(&self, data: &[u8]) -> PooledBuf {
        let mut b = self.checkout(data.len());
        b.extend_from_slice(data);
        b
    }

    /// Free slabs currently retained, summed over all classes (for tests and
    /// debug output).
    pub fn free_count(&self) -> usize {
        self.shared.classes.iter().map(|c| c.len()).sum()
    }

    /// The stats sink shared by this pool.
    pub fn stats(&self) -> &Arc<Stats> {
        &self.shared.stats
    }
}

/// An owned, reusable buffer segment checked out of a [`BufPool`].
///
/// Acts like a fixed-capacity `Vec<u8>`: `len()` bytes are filled, the rest
/// is spare. `Deref`s to the filled prefix. On drop the backing slab goes
/// back to its pool's free list (oversized one-shots are simply freed).
pub struct PooledBuf {
    mem: Option<Box<[u8]>>,
    /// Requested capacity — what the caller is allowed to see, which may be
    /// less than the backing slab's class size.
    cap: usize,
    len: usize,
    class: Option<usize>,
    shared: Arc<PoolShared>,
}

impl PooledBuf {
    pub fn capacity(&self) -> usize {
        self.cap
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn remaining(&self) -> usize {
        self.cap - self.len
    }

    /// The filled prefix.
    pub fn filled(&self) -> &[u8] {
        &self.mem.as_ref().expect("pooled buffer present")[..self.len]
    }

    /// The unfilled tail, up to the requested capacity.
    pub fn spare_mut(&mut self) -> &mut [u8] {
        let len = self.len;
        let cap = self.cap;
        &mut self.mem.as_mut().expect("pooled buffer present")[len..cap]
    }

    /// Mutable view of the filled prefix.
    pub fn filled_mut(&mut self) -> &mut [u8] {
        let len = self.len;
        &mut self.mem.as_mut().expect("pooled buffer present")[..len]
    }

    /// Declare `n` more bytes filled (after writing them via `spare_mut`).
    pub fn advance(&mut self, n: usize) {
        assert!(self.len + n <= self.cap, "PooledBuf::advance past capacity");
        self.len += n;
    }

    /// Append a copy of `data`. The caller is responsible for charging the
    /// copy to its accounting (the pool does not guess intent).
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        assert!(
            self.len + data.len() <= self.cap,
            "PooledBuf::extend_from_slice past capacity ({} + {} > {})",
            self.len,
            data.len(),
            self.cap
        );
        let len = self.len;
        self.mem.as_mut().expect("pooled buffer present")[len..len + data.len()]
            .copy_from_slice(data);
        self.len += data.len();
    }

    /// Reset to empty without returning the slab.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// The whole requested capacity, ignoring the fill level. For wrappers
    /// (e.g. `StaticBuf`) that track their own fill length.
    pub fn raw(&self) -> &[u8] {
        &self.mem.as_ref().expect("pooled buffer present")[..self.cap]
    }

    /// Mutable view of the whole requested capacity.
    pub fn raw_mut(&mut self) -> &mut [u8] {
        let cap = self.cap;
        &mut self.mem.as_mut().expect("pooled buffer present")[..cap]
    }
}

impl Deref for PooledBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.filled()
    }
}

impl AsRef<[u8]> for PooledBuf {
    fn as_ref(&self) -> &[u8] {
        self.filled()
    }
}

impl fmt::Debug for PooledBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PooledBuf")
            .field("len", &self.len)
            .field("cap", &self.cap)
            .field("class", &self.class)
            .finish()
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let (Some(mem), Some(idx)) = (self.mem.take(), self.class) {
            // Full queue → Err(mem) → the slab drops; the pool is full
            // enough. The queue's bounded capacity IS the retention cap.
            let _ = self.shared.classes[idx].push(mem);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> BufPool {
        BufPool::new(Stats::new())
    }

    #[test]
    fn checkout_checkin_reuses_slab() {
        let p = pool();
        let first = p.checkout(100);
        let ptr = first.mem.as_ref().unwrap().as_ptr();
        drop(first);
        assert_eq!(p.free_count(), 1);
        let second = p.checkout(200); // same 1 kB class
        assert_eq!(ptr, second.mem.as_ref().unwrap().as_ptr(), "slab reused");
        assert_eq!(p.stats().pool_hits(), 1);
        assert_eq!(p.stats().pool_misses(), 1);
    }

    #[test]
    fn capacity_is_the_requested_size() {
        let p = pool();
        let b = p.checkout(100);
        assert_eq!(b.capacity(), 100);
        assert_eq!(b.len(), 0);
        assert_eq!(b.remaining(), 100);
    }

    #[test]
    fn classes_do_not_mix() {
        let p = pool();
        drop(p.checkout(16)); // 64 B class
        let b = p.checkout(4096); // 8 kB class: must miss, not reuse the 64 B slab
        assert!(b.mem.as_ref().unwrap().len() >= 4096);
        assert_eq!(p.stats().pool_hits(), 0);
        assert_eq!(p.stats().pool_misses(), 2);
    }

    #[test]
    fn oversized_requests_fall_back_to_exact_alloc() {
        let p = pool();
        let big = p.checkout(3 * 1024 * 1024);
        assert_eq!(big.capacity(), 3 * 1024 * 1024);
        assert_eq!(big.mem.as_ref().unwrap().len(), 3 * 1024 * 1024);
        drop(big);
        assert_eq!(p.free_count(), 0, "oversized slabs are not retained");
        assert_eq!(p.stats().pool_misses(), 1);
    }

    #[test]
    fn fill_and_read_back() {
        let p = pool();
        let mut b = p.checkout(10);
        b.extend_from_slice(b"hello");
        b.spare_mut()[..2].copy_from_slice(b", ");
        b.advance(2);
        assert_eq!(&b[..], b"hello, ");
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "past capacity")]
    fn overfill_panics() {
        let p = pool();
        let mut b = p.checkout(4);
        b.extend_from_slice(b"12345");
    }

    #[test]
    fn retention_is_bounded() {
        let p = pool();
        let many: Vec<PooledBuf> = (0..MAX_FREE_PER_CLASS + 8)
            .map(|_| p.checkout(32))
            .collect();
        drop(many);
        assert_eq!(p.free_count(), MAX_FREE_PER_CLASS);
    }

    #[test]
    fn steady_state_hit_rate_is_total() {
        let p = pool();
        // Warm-up: one miss.
        drop(p.checkout(1024));
        for _ in 0..100 {
            drop(p.checkout(1024));
        }
        assert_eq!(p.stats().pool_hits(), 100);
        assert_eq!(p.stats().pool_misses(), 1);
    }

    #[test]
    fn concurrent_checkout_from_two_threads() {
        let p = pool();
        let p2 = p.clone();
        let t = std::thread::spawn(move || {
            for i in 0..500 {
                let mut b = p2.checkout(512);
                b.extend_from_slice(&[i as u8; 64]);
                assert_eq!(b.len(), 64);
            }
        });
        for i in 0..500 {
            let mut b = p.checkout(512);
            b.extend_from_slice(&[i as u8; 32]);
            assert_eq!(b.len(), 32);
        }
        t.join().unwrap();
        assert_eq!(p.stats().pool_hits() + p.stats().pool_misses(), 1000);
        assert!(p.free_count() <= MAX_FREE_PER_CLASS);
    }
}
