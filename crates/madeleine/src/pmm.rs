//! Protocol Management Modules (paper §3.3).
//!
//! One PMM per supported network interface. A PMM owns the TMs of its
//! protocol, decides — identically on the sending and the receiving side —
//! which TM carries a packet of a given length and mode combination (the
//! paper's "most-efficient transfer-method selection"), names the buffer
//! policy that feeds each TM, and announces incoming messages.

use crate::bmm::SendPolicy;
use crate::flags::{RecvMode, SendMode};
use crate::tm::{TmId, TransmissionModule};
use madsim_net::NodeId;
use std::sync::Arc;

/// A protocol driving module. See module docs.
pub trait Pmm: Send + Sync {
    /// Protocol name, e.g. `"bip"`.
    fn name(&self) -> &'static str;

    /// The TMs of this protocol, indexed by [`TmId`].
    fn tms(&self) -> &[Arc<dyn TransmissionModule>];

    /// The Switch step (paper §4.1): pick the best TM for a packet. Must be
    /// a pure function of its arguments — both ends evaluate it
    /// independently and must agree (messages are not self-described).
    fn select(&self, len: usize, smode: SendMode, rmode: RecvMode) -> TmId;

    /// The buffer policy feeding TM `id`.
    fn policy(&self, id: TmId) -> SendPolicy;

    /// Block until some node has started sending a message on this channel
    /// and return its id. Consumes nothing: the message body (starting with
    /// the internal header) is still fully receivable afterwards.
    fn wait_incoming(&self) -> NodeId;

    /// Non-blocking variant of [`wait_incoming`](Self::wait_incoming):
    /// the source of pending traffic, if any, consuming nothing. Lets a
    /// poller (e.g. a gateway forwarder) remain interruptible.
    fn poll_incoming(&self) -> Option<NodeId>;

    /// Fetch a TM handle.
    fn tm(&self, id: TmId) -> Arc<dyn TransmissionModule> {
        Arc::clone(&self.tms()[id as usize])
    }

    /// Can this protocol carry multi-envelope batch frames (see
    /// [`crate::batch`])? Requires the small-packet TM to move opaque
    /// frames of any mix of lengths — true for the stream and
    /// static-buffer stacks, false by default so protocols with
    /// length-coupled handshakes (BIP's short/long split, SISCI's mapped
    /// segments) and extension channels never see a batch frame.
    fn supports_batching(&self) -> bool {
        false
    }
}
