//! Channels, connections, and the message construction interface
//! (paper §2, Table 1; Switch Module of §4).
//!
//! | paper | here |
//! |---|---|
//! | `mad_begin_packing` | [`Channel::begin_packing`] |
//! | `mad_pack` | [`OutgoingMessage::pack`] |
//! | `mad_end_packing` | [`OutgoingMessage::end_packing`] |
//! | `mad_begin_unpacking` | [`Channel::begin_unpacking`] |
//! | `mad_unpack` | [`IncomingMessage::unpack`] |
//! | `mad_end_unpacking` | [`IncomingMessage::end_unpacking`] |
//!
//! The Switch Module logic lives in `pack`/`unpack`: each packet is routed
//! to the TM chosen by the PMM; when the chosen TM differs from the previous
//! packet's, the previous TM's BMM is flushed (*commit*) before the new one
//! takes over, so delivery order is preserved across transfer methods; the
//! final `end_packing` performs the terminal commit (mirrored by *checkout*
//! on the receive side).
//!
//! ### The internal message header
//!
//! Every message opens with a 16-byte library header (magic, source node,
//! per-connection sequence number) packed through the ordinary machinery
//! with `(send_CHEAPER, receive_EXPRESS)` and flushed eagerly, so it always
//! rides the protocol's small-message path and announces the message to the
//! peer immediately. The header is how `begin_unpacking` learns the sender
//! of the next incoming message — and doubles as a wire-level integrity
//! check (sequence gaps and interleaving corruption panic loudly).

use crate::bmm::{RecvBmm, SendBmm};
use crate::config::HostModel;
use crate::error::{MadError, MadResult};
use crate::flags::{RecvMode, SendMode};
use crate::pmm::Pmm;
use crate::pool::{BufPool, PooledBuf};
use crate::stats::{Stats, StatsSnapshot};
use crate::tm::TmId;
use crate::trace::{TraceEvent, Tracer};
use madsim_net::time::{self, VDuration};
use madsim_net::NodeId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const HEADER_MAGIC: u32 = 0x4D41_4432; // "MAD2"
/// Size of the internal message header.
pub const HEADER_LEN: usize = 16;

/// A closed world for communication (paper §2.1): a set of point-to-point
/// connections over one network interface and adapter. In-order delivery is
/// guaranteed per connection within a channel.
pub struct Channel {
    name: String,
    pmm: Arc<dyn Pmm>,
    me: NodeId,
    peers: Vec<NodeId>,
    stats: Arc<Stats>,
    host: HostModel,
    /// Channel-lifetime buffer pool: headers, SAFER captures, and (via the
    /// session's driver wiring) protocol static buffers all draw from here,
    /// so steady-state traffic reuses warm slabs across messages.
    pool: BufPool,
    /// Next message sequence number per destination.
    send_seq: Mutex<HashMap<NodeId, u32>>,
    /// Expected next sequence number per source.
    recv_seq: Mutex<HashMap<NodeId, u32>>,
    /// Outgoing messages begun but not yet finalized (must stay ≤ 1:
    /// forgetting `end_packing` would silently lose queued blocks).
    open_tx: AtomicUsize,
    /// Incoming messages begun but not yet finalized.
    open_rx: AtomicUsize,
    /// Optional message-path tracer (see [`crate::trace`]), shared with
    /// the protocol drivers so TMs can record fault-recovery events
    /// (retransmissions, credit timeouts) into the channel's stream.
    tracer: Arc<Tracer>,
}

impl Channel {
    pub(crate) fn new(
        name: String,
        pmm: Arc<dyn Pmm>,
        me: NodeId,
        peers: Vec<NodeId>,
        host: HostModel,
        stats: Arc<Stats>,
    ) -> Arc<Self> {
        Self::with_pmm(name, pmm, me, peers, host, stats)
    }

    /// [`new`](Self::new) sharing an existing buffer pool (the session
    /// creates one pool per channel and wires the same pool into the
    /// protocol drivers, so static-buffer traffic and generic-layer
    /// captures recycle the same slabs).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn with_shared_pool(
        name: String,
        pmm: Arc<dyn Pmm>,
        me: NodeId,
        peers: Vec<NodeId>,
        host: HostModel,
        stats: Arc<Stats>,
        pool: BufPool,
        tracer: Arc<Tracer>,
    ) -> Arc<Self> {
        Arc::new(Channel {
            name,
            pmm,
            me,
            peers,
            stats,
            host,
            pool,
            send_seq: Mutex::new(HashMap::new()),
            recv_seq: Mutex::new(HashMap::new()),
            open_tx: AtomicUsize::new(0),
            open_rx: AtomicUsize::new(0),
            tracer,
        })
    }

    /// Extension constructor: build a channel over a custom protocol
    /// module. This is how the inter-cluster extension (`mad-gateway`)
    /// plugs its Generic Transmission Module under the unchanged generic
    /// layer (paper §6.1: the forwarding mechanism is inserted *between*
    /// BMMs and TMs).
    pub fn with_pmm(
        name: String,
        pmm: Arc<dyn Pmm>,
        me: NodeId,
        peers: Vec<NodeId>,
        host: HostModel,
        stats: Arc<Stats>,
    ) -> Arc<Self> {
        Self::with_pmm_traced(name, pmm, me, peers, host, stats, Arc::new(Tracer::new()))
    }

    /// [`with_pmm`](Self::with_pmm) sharing an externally created tracer,
    /// so the protocol module underneath (e.g. the gateway's Generic TM)
    /// can record failover events into the same stream the channel's
    /// pack/unpack events land in.
    pub fn with_pmm_traced(
        name: String,
        pmm: Arc<dyn Pmm>,
        me: NodeId,
        peers: Vec<NodeId>,
        host: HostModel,
        stats: Arc<Stats>,
        tracer: Arc<Tracer>,
    ) -> Arc<Self> {
        let pool = BufPool::new(Arc::clone(&stats));
        Self::with_shared_pool(name, pmm, me, peers, host, stats, pool, tracer)
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// This node's id in the session.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// All members of the channel (including this node).
    pub fn peers(&self) -> &[NodeId] {
        &self.peers
    }

    /// Copy/traffic counters of this channel.
    pub fn stats(&self) -> &Arc<Stats> {
        &self.stats
    }

    /// The channel-lifetime buffer pool.
    pub fn pool(&self) -> &BufPool {
        &self.pool
    }

    /// The protocol module driving this channel (exposed for extensions
    /// such as the inter-cluster gateway).
    pub fn pmm(&self) -> &Arc<dyn Pmm> {
        &self.pmm
    }

    /// The host-side cost model of this channel's session.
    pub fn host(&self) -> HostModel {
        self.host
    }

    /// Start recording Switch/commit/checkout events on this channel.
    pub fn enable_trace(&self) {
        self.tracer.enable();
    }

    /// The channel's tracer (query recorded events, clear, disable).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Initiate a new outgoing message to `dst` (paper: `mad_begin_packing`).
    ///
    /// # Panics
    /// Panics if `dst` is not a member of this channel or is this node —
    /// and on transport failure while sending the message header; use
    /// [`begin_packing_checked`](Self::begin_packing_checked) to receive
    /// that failure as a value instead.
    pub fn begin_packing<'a>(&self, dst: NodeId) -> OutgoingMessage<'_, 'a> {
        match self.begin_packing_checked(dst) {
            Ok(msg) => msg,
            Err(e) => panic!("begin_packing on channel {:?} failed: {e}", self.name),
        }
    }

    /// [`begin_packing`](Self::begin_packing) that surfaces transport
    /// failures (the internal header is transmitted eagerly, so a dead
    /// peer is detected here). Membership violations still panic: they
    /// are API misuse, not fabric faults.
    pub fn begin_packing_checked<'a>(&self, dst: NodeId) -> MadResult<OutgoingMessage<'_, 'a>> {
        assert!(
            self.peers.contains(&dst),
            "node {dst} is not a member of channel {:?}",
            self.name
        );
        assert_ne!(
            dst, self.me,
            "cannot send to self on channel {:?}",
            self.name
        );
        assert_eq!(
            self.open_tx.fetch_add(1, Ordering::AcqRel),
            0,
            "begin_packing on channel {:?} while a previous outgoing message \
             was never end_packing'ed (its queued blocks are lost)",
            self.name
        );
        time::advance(VDuration::from_micros_f64(self.host.begin_op_us));
        let seq = {
            let mut m = self.send_seq.lock();
            let s = m.entry(dst).or_insert(0);
            let cur = *s;
            *s += 1;
            cur
        };
        self.tracer.record(TraceEvent::BeginPacking { dst });
        let stats_at_begin = if self.tracer.is_enabled() {
            Some(self.stats.snapshot())
        } else {
            None
        };
        let mut msg = OutgoingMessage {
            chan: self,
            dst,
            cur_tm: None,
            bmm: None,
            done: false,
            stats_at_begin,
        };
        // The header is built directly in pooled memory: no stack staging
        // array, no per-message allocation — a warm 64-byte slab per send.
        let mut header = self.pool.checkout(HEADER_LEN);
        {
            let h = header.spare_mut();
            h[0..4].copy_from_slice(&HEADER_MAGIC.to_le_bytes());
            h[4..8].copy_from_slice(&(self.me as u32).to_le_bytes());
            h[8..12].copy_from_slice(&seq.to_le_bytes());
            // Reserved tail: recycled slabs carry stale bytes, and the
            // whole header goes on the wire.
            h[12..HEADER_LEN].fill(0);
        }
        header.advance(HEADER_LEN);
        if let Err(e) = msg.pack_internal(header) {
            msg.abort();
            return Err(e);
        }
        Ok(msg)
    }

    /// Has some peer started sending a message on this channel? (A `true`
    /// guarantees the next [`begin_unpacking`](Self::begin_unpacking) will
    /// not block waiting for an announcement.)
    pub fn has_incoming(&self) -> bool {
        self.pmm.poll_incoming().is_some()
    }

    /// Non-blocking [`begin_unpacking`](Self::begin_unpacking): `None`
    /// when no message has been announced yet.
    pub fn try_begin_unpacking<'a>(&self) -> Option<IncomingMessage<'_, 'a>> {
        if self.pmm.poll_incoming().is_some() {
            Some(self.begin_unpacking())
        } else {
            None
        }
    }

    /// Initiate reception of the next incoming message on this channel
    /// (paper: `mad_begin_unpacking`). Blocks until a message arrives;
    /// the returned connection identifies the sender.
    ///
    /// # Panics
    /// Panics on a corrupt or out-of-sequence header; use
    /// [`begin_unpacking_checked`](Self::begin_unpacking_checked) to
    /// receive those conditions as [`MadError`] values instead.
    pub fn begin_unpacking<'a>(&self) -> IncomingMessage<'_, 'a> {
        match self.begin_unpacking_checked() {
            Ok(msg) => msg,
            Err(e) => panic!("begin_unpacking on channel {:?} failed: {e}", self.name),
        }
    }

    /// [`begin_unpacking`](Self::begin_unpacking) that surfaces wire-level
    /// damage — bad header magic, a source mismatch, or a sequence gap —
    /// as [`MadError::CorruptStream`] (and transport failures as their
    /// respective errors) instead of panicking. On error the incoming
    /// message is abandoned and the channel returns to the idle receive
    /// state.
    pub fn begin_unpacking_checked<'a>(&self) -> MadResult<IncomingMessage<'_, 'a>> {
        assert_eq!(
            self.open_rx.fetch_add(1, Ordering::AcqRel),
            0,
            "begin_unpacking on channel {:?} while a previous incoming message \
             was never end_unpacking'ed (its deferred blocks were never filled)",
            self.name
        );
        time::advance(VDuration::from_micros_f64(self.host.begin_op_us));
        let src = self.pmm.wait_incoming();
        self.tracer.record(TraceEvent::BeginUnpacking { src });
        let mut msg = IncomingMessage {
            chan: self,
            src,
            cur_tm: None,
            bmm: None,
            done: false,
        };
        match self.check_header(&mut msg) {
            Ok(()) => Ok(msg),
            Err(e) => {
                msg.abort();
                Err(e)
            }
        }
    }

    /// Read and validate the internal message header of `msg`.
    fn check_header(&self, msg: &mut IncomingMessage<'_, '_>) -> MadResult<()> {
        let src = msg.src;
        let mut header = [0u8; HEADER_LEN];
        msg.unpack_internal(&mut header)?;
        // If the wait went through an interrupt path, the wakeup latency
        // counts from the arrival we just synchronized with.
        time::advance(crate::polling::take_pending_wakeup_charge());
        let magic = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        if magic != HEADER_MAGIC {
            return Err(MadError::corrupt(format!(
                "corrupt message header on channel {:?} (asymmetric pack/unpack?)",
                self.name
            )));
        }
        let hdr_src = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes")) as usize;
        if hdr_src != src {
            return Err(MadError::corrupt(format!(
                "header source does not match announcing connection on {:?}",
                self.name
            )));
        }
        let seq = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        {
            let mut m = self.recv_seq.lock();
            let expect = m.entry(src).or_insert(0);
            if seq != *expect {
                return Err(MadError::corrupt(format!(
                    "message sequence gap from node {src} on channel {:?}",
                    self.name
                )));
            }
            *expect += 1;
        }
        Ok(())
    }
}

/// An outgoing message under construction — the paper's send-side
/// *connection* object returned by `mad_begin_packing`.
///
/// Lifetime `'a` covers all packed user blocks: `send_LATER` and
/// `send_CHEAPER` blocks are read as late as `end_packing`, so they must
/// outlive the message.
pub struct OutgoingMessage<'c, 'a> {
    chan: &'c Channel,
    dst: NodeId,
    cur_tm: Option<TmId>,
    bmm: Option<SendBmm<'a>>,
    done: bool,
    /// Counter snapshot at `begin_packing` when tracing is enabled, so
    /// `end_packing` can record this message's copy-accounting delta.
    stats_at_begin: Option<StatsSnapshot>,
}

impl<'c, 'a> OutgoingMessage<'c, 'a> {
    /// Destination node of this message.
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// Append one block to the message (paper: `mad_pack`).
    ///
    /// # Panics
    /// Panics on transport failure (see [`try_pack`](Self::try_pack)).
    pub fn pack(&mut self, data: &'a [u8], smode: SendMode, rmode: RecvMode) {
        if let Err(e) = self.try_pack(data, smode, rmode) {
            panic!("pack on channel {:?} failed: {e}", self.chan.name);
        }
    }

    /// [`pack`](Self::pack) that surfaces transport failure as a value.
    /// On error the message is abandoned (the channel returns to the
    /// no-open-message state); further operations on it panic.
    pub fn try_pack(&mut self, data: &'a [u8], smode: SendMode, rmode: RecvMode) -> MadResult<()> {
        let r = self.pack_inner(data, smode, rmode);
        if r.is_err() {
            self.abort();
        }
        r
    }

    fn pack_inner(&mut self, data: &'a [u8], smode: SendMode, rmode: RecvMode) -> MadResult<()> {
        assert!(!self.done, "pack after end_packing (or after a failed pack)");
        time::advance(VDuration::from_micros_f64(self.chan.host.pack_op_us));
        let tm = self.chan.pmm.select(data.len(), smode, rmode);
        self.switch_to(tm)?;
        self.chan.tracer.record(TraceEvent::Pack {
            len: data.len(),
            smode,
            rmode,
            tm,
        });
        let bmm = self.bmm.as_mut().expect("switched");
        bmm.pack(data, smode)?;
        // An EXPRESS block must be extractable as soon as the peer unpacks
        // it, so it cannot linger in the aggregation queue — unless the
        // caller forbade reading it before commit (LATER).
        if rmode == RecvMode::Express && smode != SendMode::Later {
            bmm.flush()?;
        }
        Ok(())
    }

    /// Pack a block with `send_SAFER` semantics through a short-lived
    /// borrow: the data is captured during the call (by copy or by
    /// synchronous transmission), so the caller may modify or free it as
    /// soon as this returns — the ergonomic point of `send_SAFER`.
    pub fn pack_safer(&mut self, data: &[u8], rmode: RecvMode) {
        if let Err(e) = self.try_pack_safer(data, rmode) {
            panic!("pack_safer on channel {:?} failed: {e}", self.chan.name);
        }
    }

    /// [`pack_safer`](Self::pack_safer) that surfaces transport failure
    /// as a value (same abandonment semantics as [`try_pack`](Self::try_pack)).
    pub fn try_pack_safer(&mut self, data: &[u8], rmode: RecvMode) -> MadResult<()> {
        let r = self.pack_safer_inner(data, rmode);
        if r.is_err() {
            self.abort();
        }
        r
    }

    fn pack_safer_inner(&mut self, data: &[u8], rmode: RecvMode) -> MadResult<()> {
        assert!(!self.done, "pack after end_packing (or after a failed pack)");
        time::advance(VDuration::from_micros_f64(self.chan.host.pack_op_us));
        self.switch_to(self.chan.pmm.select(data.len(), SendMode::Safer, rmode))?;
        let bmm = self.bmm.as_mut().expect("switched");
        bmm.pack_safer_now(data)?;
        if rmode == RecvMode::Express {
            bmm.flush()?;
        }
        Ok(())
    }

    /// Pack a library-internal block (always `(CHEAPER, EXPRESS)`).
    fn pack_internal(&mut self, data: PooledBuf) -> MadResult<()> {
        self.switch_to(
            self.chan
                .pmm
                .select(data.len(), SendMode::Cheaper, RecvMode::Express),
        )?;
        let bmm = self.bmm.as_mut().expect("switched");
        bmm.pack_pooled(data)?;
        bmm.flush()
    }

    fn switch_to(&mut self, tm: TmId) -> MadResult<()> {
        if self.cur_tm == Some(tm) {
            return Ok(());
        }
        // Commit the previous BMM so delivery order is preserved across
        // transfer methods (paper §4.1).
        if let Some(mut old) = self.bmm.take() {
            old.flush()?;
            self.chan.tracer.record(TraceEvent::CommitOnSwitch {
                from: self.cur_tm.expect("old BMM implies a current TM"),
                to: tm,
            });
        }
        self.cur_tm = Some(tm);
        self.bmm = Some(SendBmm::with_pool(
            self.chan.pmm.policy(tm),
            self.chan.pmm.tm(tm),
            tm,
            self.dst,
            self.chan.host,
            Arc::clone(&self.chan.stats),
            self.chan.pool.clone(),
        ));
        Ok(())
    }

    /// Abandon the message after a transport error: drop queued blocks
    /// and return the channel to the no-open-message state so the caller
    /// can keep using it (e.g. toward a different peer).
    fn abort(&mut self) {
        if !self.done {
            self.done = true;
            self.bmm = None;
            self.cur_tm = None;
            self.chan.open_tx.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Finalize the message (paper: `mad_end_packing`): every packed block
    /// is guaranteed flushed to the network when this returns.
    ///
    /// # Panics
    /// Panics on transport failure (see
    /// [`try_end_packing`](Self::try_end_packing)).
    pub fn end_packing(self) {
        let name = self.chan.name.clone();
        if let Err(e) = self.try_end_packing() {
            panic!("end_packing on channel {name:?} failed: {e}");
        }
    }

    /// [`end_packing`](Self::end_packing) that surfaces transport failure
    /// as a value. Win or lose, the message is finalized: the channel
    /// accepts a new `begin_packing` afterwards.
    pub fn try_end_packing(mut self) -> MadResult<()> {
        let mut result = Ok(());
        if let Some(mut bmm) = self.bmm.take() {
            result = bmm.flush();
        }
        time::advance(VDuration::from_micros_f64(self.chan.host.end_op_us));
        self.chan.tracer.record(TraceEvent::EndPacking);
        if result.is_ok() {
            if let Some(at_begin) = self.stats_at_begin.take() {
                let d = self.chan.stats.snapshot().since(&at_begin);
                self.chan.tracer.record(TraceEvent::MessageStats {
                    copied_bytes: d.copied_bytes,
                    borrowed_bytes: d.borrowed_bytes,
                    pool_hits: d.pool_hits,
                    pool_misses: d.pool_misses,
                });
            }
            self.chan.stats.record_message();
        }
        self.chan.open_tx.fetch_sub(1, Ordering::AcqRel);
        self.done = true;
        result
    }
}

/// An incoming message being consumed — the paper's receive-side
/// *connection* object returned by `mad_begin_unpacking`.
pub struct IncomingMessage<'c, 'a> {
    chan: &'c Channel,
    src: NodeId,
    cur_tm: Option<TmId>,
    bmm: Option<RecvBmm<'a>>,
    done: bool,
}

impl<'c, 'a> IncomingMessage<'c, 'a> {
    /// The sending node.
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// Extract one block (paper: `mad_unpack`). The `(smode, rmode)` pair
    /// and `dst.len()` must mirror the sender's `pack` exactly.
    ///
    /// With `receive_EXPRESS` the data is in `dst` when this returns; with
    /// `receive_CHEAPER` extraction may be deferred until a later express
    /// block, a TM switch, or `end_unpacking`.
    /// # Panics
    /// Panics on transport failure (see [`try_unpack`](Self::try_unpack)).
    pub fn unpack(&mut self, dst: &'a mut [u8], smode: SendMode, rmode: RecvMode) {
        if let Err(e) = self.try_unpack(dst, smode, rmode) {
            panic!("unpack on channel {:?} failed: {e}", self.chan.name);
        }
    }

    /// [`unpack`](Self::unpack) that surfaces transport failure as a
    /// value. On error the message is abandoned (deferred destinations
    /// are dropped unfilled) and the channel returns to the idle receive
    /// state; further operations on the message panic.
    pub fn try_unpack(
        &mut self,
        dst: &'a mut [u8],
        smode: SendMode,
        rmode: RecvMode,
    ) -> MadResult<()> {
        let r = self.unpack_inner(dst, smode, rmode);
        if r.is_err() {
            self.abort();
        }
        r
    }

    fn unpack_inner(
        &mut self,
        dst: &'a mut [u8],
        smode: SendMode,
        rmode: RecvMode,
    ) -> MadResult<()> {
        assert!(
            !self.done,
            "unpack after end_unpacking (or after a failed unpack)"
        );
        time::advance(VDuration::from_micros_f64(self.chan.host.pack_op_us));
        let tm = self.chan.pmm.select(dst.len(), smode, rmode);
        self.switch_to(tm)?;
        self.chan.tracer.record(TraceEvent::Unpack {
            len: dst.len(),
            smode,
            rmode,
            tm,
        });
        self.bmm.as_mut().expect("switched").unpack(dst, rmode)
    }

    /// Extract one `receive_EXPRESS` block through a short-lived borrow:
    /// the data is in `dst` when this returns and the borrow ends with the
    /// call, so the value can steer the following unpacks (the paper's
    /// Fig. 1 pattern: read a length header, allocate, unpack the array).
    pub fn unpack_express(&mut self, dst: &mut [u8], smode: SendMode) {
        if let Err(e) = self.try_unpack_express(dst, smode) {
            panic!("unpack_express on channel {:?} failed: {e}", self.chan.name);
        }
    }

    /// [`unpack_express`](Self::unpack_express) that surfaces transport
    /// failure as a value (same abandonment semantics as
    /// [`try_unpack`](Self::try_unpack)).
    pub fn try_unpack_express(&mut self, dst: &mut [u8], smode: SendMode) -> MadResult<()> {
        let r = self.unpack_express_inner(dst, smode);
        if r.is_err() {
            self.abort();
        }
        r
    }

    fn unpack_express_inner(&mut self, dst: &mut [u8], smode: SendMode) -> MadResult<()> {
        assert!(
            !self.done,
            "unpack after end_unpacking (or after a failed unpack)"
        );
        time::advance(VDuration::from_micros_f64(self.chan.host.pack_op_us));
        let tm = self.chan.pmm.select(dst.len(), smode, RecvMode::Express);
        self.switch_to(tm)?;
        self.chan.tracer.record(TraceEvent::Unpack {
            len: dst.len(),
            smode,
            rmode: RecvMode::Express,
            tm,
        });
        self.bmm.as_mut().expect("switched").unpack_express_now(dst)
    }

    /// Unpack a library-internal block (mirror of `pack_internal`).
    fn unpack_internal(&mut self, dst: &mut [u8]) -> MadResult<()> {
        self.switch_to(
            self.chan
                .pmm
                .select(dst.len(), SendMode::Cheaper, RecvMode::Express),
        )?;
        self.bmm.as_mut().expect("switched").unpack_express_now(dst)
    }

    fn switch_to(&mut self, tm: TmId) -> MadResult<()> {
        if self.cur_tm == Some(tm) {
            return Ok(());
        }
        // Checkout the previous BMM (mirror of the sender's commit).
        if let Some(mut old) = self.bmm.take() {
            old.checkout()?;
            self.chan.tracer.record(TraceEvent::CheckoutOnSwitch {
                from: self.cur_tm.expect("old BMM implies a current TM"),
                to: tm,
            });
        }
        self.cur_tm = Some(tm);
        self.bmm = Some(RecvBmm::new(
            self.chan.pmm.policy(tm),
            self.chan.pmm.tm(tm),
            self.src,
            self.chan.host,
            Arc::clone(&self.chan.stats),
        ));
        Ok(())
    }

    /// Abandon the message after a transport error: return the channel to
    /// the idle receive state so the caller can keep using it.
    fn abort(&mut self) {
        if !self.done {
            self.done = true;
            self.bmm = None;
            self.cur_tm = None;
            self.chan.open_rx.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Finalize reception (paper: `mad_end_unpacking`): all blocks —
    /// including deferred `receive_CHEAPER` ones — are available when this
    /// returns.
    ///
    /// # Panics
    /// Panics on transport failure (see
    /// [`try_end_unpacking`](Self::try_end_unpacking)).
    pub fn end_unpacking(self) {
        let name = self.chan.name.clone();
        if let Err(e) = self.try_end_unpacking() {
            panic!("end_unpacking on channel {name:?} failed: {e}");
        }
    }

    /// [`end_unpacking`](Self::end_unpacking) that surfaces transport
    /// failure as a value. Win or lose, reception is finalized: the
    /// channel accepts a new `begin_unpacking` afterwards.
    pub fn try_end_unpacking(mut self) -> MadResult<()> {
        let mut result = Ok(());
        if let Some(mut bmm) = self.bmm.take() {
            result = bmm.checkout();
        }
        time::advance(VDuration::from_micros_f64(self.chan.host.end_op_us));
        self.chan.tracer.record(TraceEvent::EndUnpacking);
        self.chan.open_rx.fetch_sub(1, Ordering::AcqRel);
        self.done = true;
        result
    }
}
