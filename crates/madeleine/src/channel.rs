//! Channels, connections, and the message construction interface
//! (paper §2, Table 1; Switch Module of §4).
//!
//! | paper | here |
//! |---|---|
//! | `mad_begin_packing` | [`Channel::begin_packing`] |
//! | `mad_pack` | [`OutgoingMessage::pack`] |
//! | `mad_end_packing` | [`OutgoingMessage::end_packing`] |
//! | `mad_begin_unpacking` | [`Channel::begin_unpacking`] |
//! | `mad_unpack` | [`IncomingMessage::unpack`] |
//! | `mad_end_unpacking` | [`IncomingMessage::end_unpacking`] |
//!
//! The channel stack has three layers:
//!
//! * [`crate::connection`] — per-peer ordering state (sequence numbers,
//!   stripe-block counters) in lock-free atomics;
//! * [`crate::rail`] — one adapter's worth of machinery (PMM + TMs +
//!   buffer pool) and the stripe engine;
//! * [`Channel`] (this module) — the pack/unpack API, owning `1..N`
//!   rails and the `RailScheduler` that routes traffic across them.
//!
//! The Switch Module logic lives in `pack`/`unpack`: each packet is routed
//! to the TM chosen by the PMM; when the chosen TM differs from the previous
//! packet's, the previous TM's BMM is flushed (*commit*) before the new one
//! takes over, so delivery order is preserved across transfer methods; the
//! final `end_packing` performs the terminal commit (mirrored by *checkout*
//! on the receive side). On a multirail channel a message's ordinary blocks
//! ride its connection's *home rail*; large CHEAPER blocks are striped
//! across every alive rail (see [`crate::rail`]) after the home rail's BMM
//! is committed, so per-connection order still holds. A single-rail channel
//! takes exactly the pre-multirail code paths: same locks, same copies,
//! same trace stream.
//!
//! ### The internal message header
//!
//! Every message opens with a 16-byte library header (magic, source node,
//! per-connection sequence number) packed through the ordinary machinery
//! with `(send_CHEAPER, receive_EXPRESS)` and flushed eagerly, so it always
//! rides the protocol's small-message path and announces the message to the
//! peer immediately. The header is how `begin_unpacking` learns the sender
//! of the next incoming message — and doubles as a wire-level integrity
//! check (sequence gaps and interleaving corruption panic loudly). It
//! travels on the home rail, which is how the receiver learns which rail
//! carries the rest of the message's un-striped blocks.

use crate::batch::{self, BatchCtx, BatchItem, FlushReason};
use crate::bmm::{RecvBmm, SendBmm};
use crate::config::HostModel;
use crate::connection::Connections;
use crate::error::{MadError, MadResult};
use crate::flags::{RecvMode, SendMode};
use crate::pmm::Pmm;
use crate::polling::PollPolicy;
use crate::pool::{BufPool, PooledBuf};
use crate::progress::{Completions, OpId, OpState, OpStep, ProgressEngine, StepOutcome};
use crate::rail::{self, Rail, RailScheduler, StripeCtx};
use crate::stats::{Stats, StatsSnapshot};
use crate::tm::{PendingKind, TmId, TmPending, TmSend, TmStep};
use crate::trace::{TraceEvent, Tracer};
use crate::wire::{self, WireMode, WireVersion};
use bytes::Bytes;
use madsim_net::time::{self, VDuration, VTime};
use madsim_net::NodeId;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Size of the *classic* internal message header — and, on any wire
/// version, the canonical length both ends feed the symmetric TM-selection
/// and batch-eligibility tests for a header block (the actual compact
/// encoding is shorter, but its length depends on the sequence number,
/// which the classification must not).
pub use crate::wire::MSG_HEADER_LEN as HEADER_LEN;

/// A closed world for communication (paper §2.1): a set of point-to-point
/// connections over one network interface and `1..N` adapters (rails).
/// In-order delivery is guaranteed per connection within a channel.
pub struct Channel {
    name: String,
    /// The rails, indexed by rail id. Single-rail channels behave exactly
    /// like the pre-multirail library. Shared (`Arc`) with in-flight
    /// nonblocking ops, which outlive any one call frame.
    rails: Arc<Vec<Rail>>,
    sched: Arc<RailScheduler>,
    /// Per-peer ordering state (frozen table, atomics inside).
    conns: Arc<Connections>,
    me: NodeId,
    peers: Vec<NodeId>,
    stats: Arc<Stats>,
    host: HostModel,
    /// Channel-lifetime buffer pool: headers, SAFER captures, and (via the
    /// session's driver wiring) protocol static buffers all draw from here,
    /// so steady-state traffic reuses warm slabs across messages. On a
    /// multirail channel this is rail 0's pool; each further rail has its
    /// own (see [`Rail::pool`]).
    pool: BufPool,
    /// Outgoing messages begun but not yet finalized (must stay ≤ 1:
    /// forgetting `end_packing` would silently lose queued blocks).
    open_tx: AtomicUsize,
    /// Incoming messages begun but not yet finalized.
    open_rx: AtomicUsize,
    /// Optional message-path tracer (see [`crate::trace`]), shared with
    /// the protocol drivers so TMs can record fault-recovery events
    /// (retransmissions, credit timeouts) into the channel's stream.
    tracer: Arc<Tracer>,
    /// Base of this channel's stripe-ack demultiplexing tags (the channel
    /// index within the session config; see [`crate::rail`]).
    ack_base: u64,
    /// Cached liveness of the rails, bit `i` set while rail `i` is in
    /// service. Maintained by [`Rail::quarantine`]; the hot wait paths
    /// test one word per scan instead of re-walking every rail's flag.
    live_mask: Arc<AtomicU64>,
    /// How engine-driving waits behave when no op can move (see
    /// [`crate::polling`]).
    poll: PollPolicy,
    /// The negotiated wire format of every header this channel emits or
    /// expects (see [`crate::wire`]): resolved once at construction from
    /// the spec's [`WireMode`] and the world's fault-armed flag — a pure,
    /// symmetric decision every member reaches identically.
    wire: WireVersion,
    /// The nonblocking-op state machines of this channel (see
    /// [`crate::progress`]).
    engine: ProgressEngine,
}

/// Ack-demultiplexing tag of one striped block: unique per (channel,
/// connection direction, block); both endpoints derive it from their
/// per-connection stripe-block counters (see [`crate::rail`]).
fn stripe_ack_tag(ack_base: u64, sender: NodeId, block: u64) -> u64 {
    (ack_base << 40) | ((sender as u64 & 0xFFF) << 28) | (block & 0x0FFF_FFFF)
}

impl Channel {
    /// [`with_pmm`](Self::with_pmm) sharing an existing buffer pool (the session
    /// creates one pool per channel and wires the same pool into the
    /// protocol drivers, so static-buffer traffic and generic-layer
    /// captures recycle the same slabs).
    #[allow(clippy::too_many_arguments)]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn with_shared_pool(
        name: String,
        pmm: Arc<dyn Pmm>,
        me: NodeId,
        peers: Vec<NodeId>,
        host: HostModel,
        stats: Arc<Stats>,
        pool: BufPool,
        tracer: Arc<Tracer>,
        wire_mode: WireMode,
    ) -> Arc<Self> {
        let rails = vec![Rail::new(0, pmm, pool.clone(), None)];
        let sched = RailScheduler::new(
            crate::config::DEFAULT_STRIPE_THRESHOLD,
            crate::config::DEFAULT_STRIPE_CHUNK,
        );
        Self::multirail(
            name,
            rails,
            sched,
            me,
            peers,
            host,
            stats,
            pool,
            tracer,
            0,
            PollPolicy::default(),
            wire_mode,
        )
    }

    /// The general constructor: a channel over `rails.len()` rails. The
    /// session builds one driver stack per adapter and passes them here;
    /// every other constructor is the single-rail special case.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn multirail(
        name: String,
        rails: Vec<Rail>,
        sched: RailScheduler,
        me: NodeId,
        peers: Vec<NodeId>,
        host: HostModel,
        stats: Arc<Stats>,
        pool: BufPool,
        tracer: Arc<Tracer>,
        ack_base: u64,
        poll: PollPolicy,
        wire_mode: WireMode,
    ) -> Arc<Self> {
        assert!(!rails.is_empty(), "a channel needs at least one rail");
        assert!(rails.len() <= 64, "the live-rail mask is one u64");
        let conns = Arc::new(Connections::new(me, &peers));
        let engine = ProgressEngine::new(Arc::clone(&conns));
        let live_mask = Arc::new(AtomicU64::new(u64::MAX >> (64 - rails.len())));
        for r in &rails {
            r.attach_live_mask(Arc::clone(&live_mask));
        }
        // The fault-armed flag is world-global (a FaultPlan covers the
        // whole world), so every member resolves the same version without
        // any wire negotiation.
        let wire = WireVersion::resolve(wire_mode, rails.iter().any(Rail::faulty));
        Arc::new(Channel {
            name,
            rails: Arc::new(rails),
            sched: Arc::new(sched),
            conns,
            me,
            peers,
            stats,
            host,
            pool,
            open_tx: AtomicUsize::new(0),
            open_rx: AtomicUsize::new(0),
            tracer,
            ack_base,
            live_mask,
            poll,
            wire,
            engine,
        })
    }

    /// Extension constructor: build a channel over a custom protocol
    /// module. This is how the inter-cluster extension (`mad-gateway`)
    /// plugs its Generic Transmission Module under the unchanged generic
    /// layer (paper §6.1: the forwarding mechanism is inserted *between*
    /// BMMs and TMs).
    pub fn with_pmm(
        name: String,
        pmm: Arc<dyn Pmm>,
        me: NodeId,
        peers: Vec<NodeId>,
        host: HostModel,
        stats: Arc<Stats>,
    ) -> Arc<Self> {
        Self::with_pmm_traced(name, pmm, me, peers, host, stats, Arc::new(Tracer::new()))
    }

    /// [`with_pmm_traced`](Self::with_pmm_traced) with an explicit wire
    /// policy. A custom-PMM channel has no adapter of its own to read the
    /// fault-armed flag from, so the *caller* (who does know its world —
    /// e.g. the virtual-channel layer) passes the policy: `Classic` on
    /// fault-armed worlds, `Auto` otherwise.
    #[allow(clippy::too_many_arguments)]
    pub fn with_pmm_wired(
        name: String,
        pmm: Arc<dyn Pmm>,
        me: NodeId,
        peers: Vec<NodeId>,
        host: HostModel,
        stats: Arc<Stats>,
        tracer: Arc<Tracer>,
        wire_mode: WireMode,
    ) -> Arc<Self> {
        let pool = BufPool::new(Arc::clone(&stats));
        Self::with_shared_pool(name, pmm, me, peers, host, stats, pool, tracer, wire_mode)
    }

    /// [`with_pmm`](Self::with_pmm) sharing an externally created tracer,
    /// so the protocol module underneath (e.g. the gateway's Generic TM)
    /// can record failover events into the same stream the channel's
    /// pack/unpack events land in.
    pub fn with_pmm_traced(
        name: String,
        pmm: Arc<dyn Pmm>,
        me: NodeId,
        peers: Vec<NodeId>,
        host: HostModel,
        stats: Arc<Stats>,
        tracer: Arc<Tracer>,
    ) -> Arc<Self> {
        // No adapter to interrogate: stay on the classic layouts unless
        // the caller opts in through `with_pmm_wired`.
        Self::with_pmm_wired(name, pmm, me, peers, host, stats, tracer, WireMode::Classic)
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// This node's id in the session.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// All members of the channel (including this node).
    pub fn peers(&self) -> &[NodeId] {
        &self.peers
    }

    /// Copy/traffic counters of this channel.
    pub fn stats(&self) -> &Arc<Stats> {
        &self.stats
    }

    /// The channel-lifetime buffer pool (rail 0's on multirail channels).
    pub fn pool(&self) -> &BufPool {
        &self.pool
    }

    /// The protocol module driving this channel — rail 0's on a multirail
    /// channel (exposed for extensions such as the inter-cluster gateway,
    /// which are single-rail by contract).
    pub fn pmm(&self) -> &Arc<dyn Pmm> {
        self.rails[0].pmm()
    }

    /// The channel's rails, indexed by rail id.
    pub fn rails(&self) -> &[Rail] {
        &self.rails
    }

    /// The per-peer connection table.
    pub fn connections(&self) -> &Connections {
        &self.conns
    }

    /// The host-side cost model of this channel's session.
    pub fn host(&self) -> HostModel {
        self.host
    }

    /// The wire format this channel negotiated (identical on every
    /// member; see [`crate::wire`]).
    pub fn wire(&self) -> WireVersion {
        self.wire
    }

    /// Start recording Switch/commit/checkout events on this channel.
    pub fn enable_trace(&self) {
        self.tracer.enable();
    }

    /// The channel's tracer (query recorded events, clear, disable).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The stripe engine's borrowed view of this channel for one striped
    /// block from `sender` (see [`crate::rail`] for the ack-tag scheme).
    fn stripe_ctx(&self, sender: NodeId, block: u64) -> StripeCtx<'_> {
        StripeCtx {
            rails: &self.rails,
            sched: &self.sched,
            me: self.me,
            stats: &self.stats,
            tracer: &self.tracer,
            ack_tag: stripe_ack_tag(self.ack_base, sender, block),
            wire: self.wire,
        }
    }

    /// The batch layer's borrowed view of this channel for one
    /// append/flush/receive on the connection toward/from `peer`.
    fn batch_ctx(&self, peer: NodeId, rail: usize) -> BatchCtx<'_> {
        BatchCtx {
            conn: self.conns.get(peer).expect("membership checked"),
            rail: &self.rails[rail],
            stats: &self.stats,
            tracer: &self.tracer,
            host: &self.host,
            me: self.me,
            policy: &self.sched.batch,
            wire: self.wire,
        }
    }

    /// Does a block of `len`/`smode` ride inside a batch frame on `rail`?
    /// Pure and symmetric — the receiver evaluates it with the mirrored
    /// arguments and must agree (the stripe check runs before this one on
    /// both sides).
    fn batchable(&self, len: usize, smode: SendMode, rail: usize) -> bool {
        self.sched.batch.enabled()
            && batch::batchable(&self.sched.batch, len, smode, self.batch_ctx_cap(rail))
    }

    /// The batch TM's frame budget on `rail`.
    fn batch_ctx_cap(&self, rail: usize) -> usize {
        let pmm = self.rails[rail].pmm();
        let tm = pmm.select(HEADER_LEN, SendMode::Cheaper, RecvMode::Express);
        pmm.tm(tm).caps().buffer_cap
    }

    /// Home rail of the connection toward `peer` (0 on single-rail
    /// channels).
    fn home_rail_of(&self, conn_index: usize) -> usize {
        if self.rails.len() > 1 {
            self.sched.home_rail(conn_index, &self.rails)
        } else {
            0
        }
    }

    /// Flush the open send batch toward `peer`, if any (no-op with
    /// batching disabled).
    fn flush_conn_batch(&self, peer: NodeId, rail: usize, reason: FlushReason) -> MadResult<()> {
        if !self.sched.batch.enabled() {
            return Ok(());
        }
        batch::flush(&self.batch_ctx(peer, rail), reason)
    }

    /// Close every connection's open send batch and put its frame on the
    /// wire (an Explicit flush; see [`crate::batch`]). Small packets and
    /// whole posted messages can otherwise linger until a size threshold
    /// or a progress-tick deadline ships them — call this at the end of a
    /// burst when the peer needs the data *now*. A no-op (and always `Ok`)
    /// when batching is disabled.
    pub fn flush(&self) -> MadResult<()> {
        if !self.sched.batch.enabled() {
            return Ok(());
        }
        let mut result = Ok(());
        for &p in &self.peers {
            if p == self.me {
                continue;
            }
            let conn = self.conns.get(p).expect("member list");
            let rail = self.home_rail_of(conn.index());
            // Flush every peer even if one fails: its error is recorded
            // (first failure wins) and its batch is poisoned.
            let r = batch::flush(&self.batch_ctx(p, rail), FlushReason::Explicit);
            if result.is_ok() {
                result = r;
            }
        }
        result
    }

    /// Flush every send batch that a progress tick finds past its
    /// deadline. Flush errors poison the affected batch, which the parked
    /// ops surface when they next advance.
    fn flush_due_batches(&self) {
        if !self.sched.batch.enabled() {
            return;
        }
        let now = time::now();
        for &p in &self.peers {
            if p == self.me {
                continue;
            }
            let conn = self.conns.get(p).expect("member list");
            if !conn.send_batch().lock().deadline_due(now) {
                continue;
            }
            let rail = self.home_rail_of(conn.index());
            let _ = batch::flush(&self.batch_ctx(p, rail), FlushReason::Deadline);
        }
    }

    /// The peer (and arrival rail) of already split-out batched packets
    /// awaiting delivery, if any — checked before blocking on the wire:
    /// one arrived frame can span several messages, so the next message
    /// may be entirely in memory with nothing left on the fabric. Peers
    /// are scanned in member order for determinism.
    fn queued_batch_source(&self) -> Option<(NodeId, usize)> {
        if !self.sched.batch.enabled() {
            return None;
        }
        for &p in &self.peers {
            if p == self.me {
                continue;
            }
            let rb = self.conns.get(p).expect("member list").recv_batch().lock();
            if rb.has_queued() {
                return Some((p, rb.rail()));
            }
        }
        None
    }

    /// Initiate a new outgoing message to `dst` (paper: `mad_begin_packing`).
    ///
    /// # Panics
    /// Panics if `dst` is not a member of this channel or is this node —
    /// and on transport failure while sending the message header; use
    /// [`begin_packing_checked`](Self::begin_packing_checked) to receive
    /// that failure as a value instead.
    pub fn begin_packing<'a>(&self, dst: NodeId) -> OutgoingMessage<'_, 'a> {
        match self.begin_packing_checked(dst) {
            Ok(msg) => msg,
            Err(e) => panic!("begin_packing on channel {:?} failed: {e}", self.name),
        }
    }

    /// [`begin_packing`](Self::begin_packing) that surfaces transport
    /// failures (the internal header is transmitted eagerly, so a dead
    /// peer is detected here). Membership violations still panic: they
    /// are API misuse, not fabric faults. On a multirail channel a header
    /// that fails to send quarantines its rail and retries on the
    /// survivors before giving up.
    pub fn begin_packing_checked<'a>(&self, dst: NodeId) -> MadResult<OutgoingMessage<'_, 'a>> {
        assert!(
            self.peers.contains(&dst),
            "node {dst} is not a member of channel {:?}",
            self.name
        );
        assert_ne!(
            dst, self.me,
            "cannot send to self on channel {:?}",
            self.name
        );
        assert_eq!(
            self.open_tx.fetch_add(1, Ordering::AcqRel),
            0,
            "begin_packing on channel {:?} while a previous outgoing message \
             was never end_packing'ed (its queued blocks are lost)",
            self.name
        );
        time::advance(VDuration::from_micros_f64(self.host.begin_op_us));
        let conn = self.conns.get(dst).expect("membership asserted above");
        let multirail = self.rails.len() > 1;
        let rail = self.home_rail_of(conn.index());
        // Ordering fence: nonblocking ops already posted toward this peer
        // must hit the wire before a blocking message claims the next
        // sequence number, or the peer would see the stream out of order.
        // Ops parked in `Batched` retire only when their frame ships, so
        // the fence flushes the connection's open batch up front and
        // between ticks (a flush error poisons the batch and fails the
        // parked ops, which terminates the drain).
        if let Err(e) = self.flush_conn_batch(dst, rail, FlushReason::Explicit) {
            self.open_tx.fetch_sub(1, Ordering::AcqRel);
            return Err(e);
        }
        self.engine.drain_conn(conn, || {
            let _ = self.flush_conn_batch(dst, rail, FlushReason::Explicit);
        });
        let seq = conn.next_send_seq();
        self.tracer.record(TraceEvent::BeginPacking { dst });
        if multirail {
            self.tracer.record(TraceEvent::RailSelect { dst, rail });
        }
        let stats_at_begin = if self.tracer.is_enabled() {
            Some(self.stats.snapshot())
        } else {
            None
        };
        let mut msg = OutgoingMessage {
            chan: self,
            dst,
            rail,
            cur_tm: None,
            bmm: None,
            done: false,
            stats_at_begin,
        };
        let mut attempts = 0;
        loop {
            // The header is built directly in pooled memory: no stack
            // staging array, no per-message allocation — a warm 64-byte
            // slab per send.
            let hdr = wire::encode_msg_header(self.wire, self.me, seq);
            let mut header = self.pool.checkout(hdr.len());
            {
                // Every encoded byte goes on the wire and recycled slabs
                // carry stale bytes, so the full span is written.
                let h = header.spare_mut();
                h[..hdr.len()].copy_from_slice(&hdr);
            }
            header.advance(hdr.len());
            let e = match msg.pack_internal(header) {
                Ok(()) => return Ok(msg),
                Err(e) => e,
            };
            attempts += 1;
            // Multirail failover: a header that could not be sent marks
            // its rail down; the message restarts on the survivors. Wire
            // corruption is not a rail failure, so it is not retried.
            if multirail && !matches!(e, MadError::CorruptStream(_)) && attempts < self.rails.len()
            {
                self.rails[msg.rail].quarantine(&self.stats, &self.tracer);
                msg.cur_tm = None;
                msg.bmm = None;
                let next = self.sched.home_rail(conn.index(), &self.rails);
                if self.rails[next].is_alive() {
                    msg.rail = next;
                    self.tracer
                        .record(TraceEvent::RailSelect { dst, rail: next });
                    continue;
                }
            }
            msg.abort();
            return Err(e);
        }
    }

    /// Has some peer started sending a message on this channel? (A `true`
    /// guarantees the next [`begin_unpacking`](Self::begin_unpacking) will
    /// not block waiting for an announcement.)
    pub fn has_incoming(&self) -> bool {
        // Split-out batched packets count: one arrived frame can span
        // several messages, so the next message may already be in memory.
        if self.queued_batch_source().is_some() {
            return true;
        }
        let live = self.live_mask.load(Ordering::Acquire);
        self.rails
            .iter()
            .any(|r| live & (1 << r.id()) != 0 && r.pmm().poll_incoming().is_some())
    }

    /// Non-blocking [`begin_unpacking`](Self::begin_unpacking): `None`
    /// when no message has been announced yet.
    pub fn try_begin_unpacking<'a>(&self) -> Option<IncomingMessage<'_, 'a>> {
        if self.has_incoming() {
            Some(self.begin_unpacking())
        } else {
            None
        }
    }

    /// Initiate reception of the next incoming message on this channel
    /// (paper: `mad_begin_unpacking`). Blocks until a message arrives;
    /// the returned connection identifies the sender.
    ///
    /// # Panics
    /// Panics on a corrupt or out-of-sequence header; use
    /// [`begin_unpacking_checked`](Self::begin_unpacking_checked) to
    /// receive those conditions as [`MadError`] values instead.
    pub fn begin_unpacking<'a>(&self) -> IncomingMessage<'_, 'a> {
        match self.begin_unpacking_checked() {
            Ok(msg) => msg,
            Err(e) => panic!("begin_unpacking on channel {:?} failed: {e}", self.name),
        }
    }

    /// [`begin_unpacking`](Self::begin_unpacking) that surfaces wire-level
    /// damage — bad header magic, a source mismatch, or a sequence gap —
    /// as [`MadError::CorruptStream`] (and transport failures as their
    /// respective errors) instead of panicking. On error the incoming
    /// message is abandoned and the channel returns to the idle receive
    /// state.
    pub fn begin_unpacking_checked<'a>(&self) -> MadResult<IncomingMessage<'_, 'a>> {
        assert_eq!(
            self.open_rx.fetch_add(1, Ordering::AcqRel),
            0,
            "begin_unpacking on channel {:?} while a previous incoming message \
             was never end_unpacking'ed (its deferred blocks were never filled)",
            self.name
        );
        time::advance(VDuration::from_micros_f64(self.host.begin_op_us));
        // Our own open send batches flush before we block on the fabric:
        // a batched request still sitting in its batch while we wait for
        // the response is a self-inflicted deadlock. Errors poison the
        // affected batch and surface on the send side.
        if self.sched.batch.enabled() {
            let _ = self.flush();
        }
        // The announcing header rides the sender's home rail, which makes
        // the rail that announced the message the rail that carries its
        // un-striped blocks — no negotiation needed. Already split-out
        // batched packets win over the fabric: a frame that spanned
        // several messages announced them all at once.
        let (src, rail) = if let Some(queued) = self.queued_batch_source() {
            queued
        } else if self.rails.len() == 1 {
            (self.rails[0].pmm().wait_incoming(), 0)
        } else {
            self.wait_incoming_multirail()
        };
        self.tracer.record(TraceEvent::BeginUnpacking { src });
        let mut msg = IncomingMessage {
            chan: self,
            src,
            rail,
            cur_tm: None,
            bmm: None,
            done: false,
        };
        match self.check_header(&mut msg) {
            Ok(()) => Ok(msg),
            Err(e) => {
                msg.abort();
                Err(e)
            }
        }
    }

    /// The rail every sender announces to *this node* on: member lists are
    /// identical everywhere, so a peer's connection index for us equals our
    /// own member-list position, and its scheduler pins our announcements
    /// to `home_rail` of that index (advanced past quarantined rails).
    fn my_announce_rail(&self) -> usize {
        let my_index = self
            .peers
            .iter()
            .position(|&p| p == self.me)
            .expect("channel member list includes self");
        self.sched.home_rail(my_index, &self.rails)
    }

    /// Wait for an announced message (multirail only — a single rail uses
    /// its PMM's blocking wait directly). Liveness is read once per scan
    /// from the channel's cached mask — one atomic word instead of a
    /// per-rail flag walk on this hot loop.
    ///
    /// Rails are scanned in wrap order starting from [`my_announce_rail`]
    /// (Self::my_announce_rail), because stripe chunks ride the same
    /// per-rail streams as announcements: a chunk that lands on a
    /// non-announce rail before we notice the header must not be
    /// mistaken for one. When the first pending rail found is *not* the
    /// announce rail, the frame is either a failover announcement (the
    /// sender quarantined our announce rail) or such a racing chunk —
    /// and since a chunk's header is sent strictly before the chunk
    /// (the chunk-sender threads are spawned after it), observing the
    /// chunk guarantees the header is visible by now. One rescan from
    /// the announce rail therefore settles it: the first hit in wrap
    /// order is a genuine announcement.
    fn wait_incoming_multirail(&self) -> (NodeId, usize) {
        loop {
            let start = self.my_announce_rail();
            let n = self.rails.len();
            let live = self.live_mask.load(Ordering::Acquire);
            let scan = || {
                (0..n).map(|k| (start + k) % n).find_map(|r| {
                    if live & (1 << r) == 0 {
                        return None;
                    }
                    self.rails[r].pmm().poll_incoming().map(|src| (src, r))
                })
            };
            match scan() {
                Some(hit) if hit.1 == start => return hit,
                Some(_) => {
                    if let Some(hit) = scan() {
                        return hit;
                    }
                }
                None => {}
            }
            std::thread::yield_now();
        }
    }

    /// Read and validate the internal message header of `msg`.
    ///
    /// On the compact wire the header is variable-length and the TMs
    /// deliver exact-length reads, so the receiver *predicts*: it encodes
    /// the header the sender must have produced (same source — the
    /// announcing connection; same sequence number — the connection's
    /// expected counter) and receives exactly those bytes. Matching bytes
    /// prove source and sequence in one comparison; a mismatch is decoded
    /// field-by-field for a precise diagnostic.
    fn check_header(&self, msg: &mut IncomingMessage<'_, '_>) -> MadResult<()> {
        let src = msg.src;
        let Some(conn) = self.conns.get(src) else {
            return Err(MadError::corrupt(format!(
                "message from node {src}, which is not a member of channel {:?}",
                self.name
            )));
        };
        let expect = wire::encode_msg_header(self.wire, src, conn.expected_recv_seq());
        let mut header = [0u8; HEADER_LEN];
        let got = &mut header[..expect.len()];
        msg.unpack_internal(got)?;
        // If the wait went through an interrupt path, the wakeup latency
        // counts from the arrival we just synchronized with.
        time::advance(crate::polling::take_pending_wakeup_charge());
        if *got != *expect {
            return Err(self.diagnose_header(src, got));
        }
        let accepted = conn.accept_recv_seq(conn.expected_recv_seq());
        debug_assert!(accepted, "single-open-incoming guard held");
        Ok(())
    }

    /// Name the field a mismatched header differs in, mirroring the
    /// classic per-field validation.
    fn diagnose_header(&self, src: NodeId, got: &[u8]) -> MadError {
        let Ok(h) = wire::decode_msg_header(self.wire, got) else {
            return MadError::corrupt(format!(
                "corrupt message header on channel {:?} (asymmetric pack/unpack?)",
                self.name
            ));
        };
        if h.src != src {
            return MadError::corrupt(format!(
                "header source does not match announcing connection on {:?}",
                self.name
            ));
        }
        MadError::corrupt(format!(
            "message sequence gap from node {src} on channel {:?} (got seq {})",
            self.name, h.seq
        ))
    }

    // ------------------------------------------------------------------
    // Nonblocking ops (see `crate::progress` for the state machine).
    // ------------------------------------------------------------------

    /// Post a whole message to `dst` as a **nonblocking op**: the call
    /// returns an [`OpId`] immediately; the message's frames ship as the
    /// progress engine ticks (every frame that *can* go — short frames
    /// with credits available — goes inside this call). The wire bytes are
    /// identical to a `begin_packing`/`pack`/`end_packing` sequence over
    /// the same blocks, so the peer receives it with the ordinary blocking
    /// unpack API.
    ///
    /// Each block is `(data, smode, rmode)`; the op owns its bytes, so the
    /// caller's buffers are free the moment this returns (`send_SAFER`
    /// semantics — the price of not blocking until `send_CHEAPER`'s
    /// late-read window closes).
    ///
    /// Per-peer FIFO holds: ops to one peer ship in posting order, and a
    /// later [`begin_packing`](Self::begin_packing) to the same peer
    /// fences behind them. Completion is observed through
    /// [`test_op`](Self::test_op) / [`wait_op`](Self::wait_op) or by
    /// draining [`completions`](Self::completions).
    ///
    /// # Panics
    /// Panics if `dst` is not a member, is this node, or a blocking
    /// outgoing message is currently open on the channel.
    pub fn post_message(&self, dst: NodeId, blocks: Vec<(Bytes, SendMode, RecvMode)>) -> OpId {
        assert!(
            self.peers.contains(&dst),
            "node {dst} is not a member of channel {:?}",
            self.name
        );
        assert_ne!(
            dst, self.me,
            "cannot send to self on channel {:?}",
            self.name
        );
        assert_eq!(
            self.open_tx.load(Ordering::Acquire),
            0,
            "post_message on channel {:?} while a blocking outgoing message \
             is open (finish end_packing first)",
            self.name
        );
        time::advance(VDuration::from_micros_f64(self.host.begin_op_us));
        let conn = self.conns.get(dst).expect("membership asserted above");
        let multirail = self.rails.len() > 1;
        let rail = if multirail {
            self.sched.home_rail(conn.index(), &self.rails)
        } else {
            0
        };
        self.tracer.record(TraceEvent::PostMessage { dst });
        if multirail {
            self.tracer.record(TraceEvent::RailSelect { dst, rail });
        }
        // The header frame claims its sequence number when it *ships*
        // (first op step), not here — cancelling a never-started op must
        // not leave a gap in the connection's sequence space.
        let mut frames = VecDeque::with_capacity(blocks.len() + 1);
        if self.batchable(HEADER_LEN, SendMode::Cheaper, rail) {
            frames.push_back(FrameStep::BatchHeader);
        } else {
            frames.push_back(FrameStep::Header);
        }
        for (data, smode, rmode) in blocks {
            // Host-side descriptor cost, charged at posting like the
            // blocking path charges per pack.
            time::advance(VDuration::from_micros_f64(self.host.pack_op_us));
            if self
                .sched
                .should_stripe(data.len(), smode, rmode, self.rails.len())
            {
                frames.push_back(FrameStep::Stripe { data });
            } else if self.batchable(data.len(), smode, rail) {
                frames.push_back(FrameStep::Batch {
                    data,
                    express: rmode == RecvMode::Express,
                });
            } else {
                frames.push_back(FrameStep::Tm { data, smode, rmode });
            }
        }
        time::advance(VDuration::from_micros_f64(self.host.end_op_us));
        let op = MessageSendOp {
            dst,
            rail,
            rails: Arc::clone(&self.rails),
            sched: Arc::clone(&self.sched),
            conns: Arc::clone(&self.conns),
            stats: Arc::clone(&self.stats),
            tracer: Arc::clone(&self.tracer),
            me: self.me,
            host: self.host,
            ack_base: self.ack_base,
            wire: self.wire,
            frames,
            pending: None,
            started: false,
            done_at: VTime::ZERO,
            stripe_announced: false,
            first_ticket: None,
            last_ticket: None,
        };
        let id = self.engine.post(conn, Box::new(op));
        // Opportunistic first tick: a message whose frames need no peer
        // event is fully on the wire when post_message returns.
        self.engine.advance_conn(conn);
        id
    }

    /// One progress-engine tick: advance the head op of every peer's
    /// in-flight list as far as it can go, after flushing any send batch
    /// that sat open past its deadline. Returns how many ops retired.
    pub fn progress(&self) -> usize {
        self.flush_due_batches();
        self.engine.progress()
    }

    /// Nonblocking completion test: ticks the engine once and consumes the
    /// op's result if it retired. On success the caller's clock is
    /// synchronized with the op's local completion instant.
    pub fn test_op(&self, id: OpId) -> Option<MadResult<VTime>> {
        self.progress();
        let r = self.engine.take_result(id)?;
        if let Ok(at) = r {
            time::advance_to(at);
        }
        Some(r)
    }

    /// Block until op `id` retires, driving the engine through the
    /// channel's [`PollPolicy`] (an interrupt-path wait charges its wakeup
    /// latency here, after synchronizing with the completion instant).
    ///
    /// A blocking wait is an explicit "I need it done": every open send
    /// batch is force-flushed while driving, so an op parked in
    /// [`OpState::Batched`] cannot stall the wait on a deadline that
    /// virtual time may never reach (flush errors surface through the
    /// failed op itself).
    pub fn wait_op(&self, id: OpId) -> MadResult<VTime> {
        let r = self.poll.drive(|| {
            if self.sched.batch.enabled() {
                let _ = self.flush();
            }
            self.engine.progress();
            self.engine.take_result(id)
        });
        if let Ok(at) = r {
            time::advance_to(at);
        }
        time::advance(crate::polling::take_pending_wakeup_charge());
        r
    }

    /// Cancel a posted op that has not shipped anything yet (see
    /// [`ProgressEngine::cancel`]).
    pub fn cancel_op(&self, id: OpId) -> bool {
        self.engine.cancel(id)
    }

    /// The channel's progress engine (op states, in-flight count).
    pub fn engine(&self) -> &ProgressEngine {
        &self.engine
    }

    /// The queue finished nonblocking ops land on.
    pub fn completions(&self) -> &Completions {
        self.engine.completions()
    }

    /// The engine-driving wait policy of this channel.
    pub fn poll_policy(&self) -> PollPolicy {
        self.poll
    }

    /// Force-quarantine rail `idx`, as a link failure would (fault
    /// injection hook for tests).
    #[doc(hidden)]
    pub fn quarantine_rail(&self, idx: usize) {
        self.rails[idx].quarantine(&self.stats, &self.tracer);
    }
}

/// One shippable unit of a posted message.
enum FrameStep {
    /// The 16-byte library header; claims the connection's next sequence
    /// number at ship time.
    Header,
    /// The library header riding inside a batch frame; its sequence
    /// number is claimed only when the batch flushes, so a cancelled op
    /// leaves no gap in the connection's sequence space.
    BatchHeader,
    /// A block routed through the home rail's PMM-selected TM.
    Tm {
        data: Bytes,
        smode: SendMode,
        rmode: RecvMode,
    },
    /// A small block riding inside a batch frame (zero-copy until the
    /// frame is assembled).
    Batch { data: Bytes, express: bool },
    /// A multirail striped bulk block.
    Stripe { data: Bytes },
}

/// A TM continuation parked between ticks, with the accounting recorded
/// once the frame actually ships.
struct PendingFrame {
    kind: PendingKind,
    cont: Box<dyn TmPending>,
    tm: TmId,
    len: usize,
}

/// The send-side message state machine behind [`Channel::post_message`]:
/// ships the header and every block frame in order, parking in
/// `CreditWait` / `RendezvousWait` / `StripePartial` whenever a frame
/// needs a peer event, and failing fast (`ChannelDown`) when its rails
/// die under it.
struct MessageSendOp {
    dst: NodeId,
    /// Home rail; fixed once the header frame ships (the receiver pins
    /// the message's un-striped blocks to the announcing rail).
    rail: usize,
    rails: Arc<Vec<Rail>>,
    sched: Arc<RailScheduler>,
    conns: Arc<Connections>,
    stats: Arc<Stats>,
    tracer: Arc<Tracer>,
    me: NodeId,
    host: HostModel,
    ack_base: u64,
    wire: WireVersion,
    frames: VecDeque<FrameStep>,
    pending: Option<PendingFrame>,
    started: bool,
    done_at: VTime,
    /// A striped frame spends one tick announced as `StripePartial`
    /// before the (virtual-time-atomic) stripe executes, so observers see
    /// the state.
    stripe_announced: bool,
    /// Batch tickets of this op's first and last batched packets: the op
    /// parks in [`OpState::Batched`] until a flush covers the last one,
    /// counts as started once a flush covers the first, and cancels by
    /// removing the whole range from the pending batch.
    first_ticket: Option<u64>,
    last_ticket: Option<u64>,
}

impl MessageSendOp {
    fn park_state(kind: PendingKind) -> OpState {
        match kind {
            PendingKind::Credit => OpState::CreditWait,
            PendingKind::Rendezvous => OpState::RendezvousWait,
        }
    }

    fn batch_ctx(&self) -> BatchCtx<'_> {
        BatchCtx {
            conn: self.conns.get(self.dst).expect("membership checked"),
            rail: &self.rails[self.rail],
            stats: &self.stats,
            tracer: &self.tracer,
            host: &self.host,
            me: self.me,
            policy: &self.sched.batch,
            wire: self.wire,
        }
    }

    fn note_ticket(&mut self, t: u64) {
        if self.first_ticket.is_none() {
            self.first_ticket = Some(t);
        }
        self.last_ticket = Some(t);
    }

    /// Flush the connection's batch before a frame that must not overtake
    /// the batched packets already staged (a no-op when batching is off
    /// or nothing is pending).
    fn flush_batch_barrier(&self) -> MadResult<()> {
        if !self.sched.batch.enabled() {
            return Ok(());
        }
        batch::flush(&self.batch_ctx(), FlushReason::Explicit)
    }
}

impl OpStep for MessageSendOp {
    fn try_advance(&mut self) -> StepOutcome {
        // A dead home rail fails the op: before anything shipped we could
        // re-home, but after the header is out the receiver expects the
        // rest of the message on the announcing rail. Re-home only in the
        // nothing-shipped case; otherwise surface the fault.
        if !self.rails[self.rail].is_alive() {
            if self.started {
                if let Some(mut p) = self.pending.take() {
                    p.cont.cancel();
                }
                return StepOutcome::Failed(MadError::ChannelDown);
            }
            let conn = self.conns.get(self.dst).expect("membership checked");
            let next = self.sched.home_rail(conn.index(), &self.rails);
            if !self.rails[next].is_alive() {
                return StepOutcome::Failed(MadError::ChannelDown);
            }
            self.rail = next;
            self.tracer.record(TraceEvent::RailSelect {
                dst: self.dst,
                rail: next,
            });
        }
        // The parked continuation goes first: frames ship strictly in
        // order.
        if let Some(mut p) = self.pending.take() {
            match p.cont.try_advance() {
                Ok(TmStep::Pending) => {
                    let state = Self::park_state(p.kind);
                    self.pending = Some(p);
                    return StepOutcome::Pending(state);
                }
                Ok(TmStep::Done(at)) => {
                    self.stats.record_tm_traffic(p.tm, p.len);
                    self.stats.record_buffer_sent();
                    self.done_at = self.done_at.max(at);
                }
                Err(e) => return StepOutcome::Failed(e),
            }
        }
        while let Some(frame) = self.frames.pop_front() {
            // Frames that bypass the batch layer (big blocks, striped
            // blocks, a non-batchable header) must not overtake packets
            // already staged in the connection's batch: close its frame
            // first.
            if !matches!(frame, FrameStep::BatchHeader | FrameStep::Batch { .. }) {
                if let Err(e) = self.flush_batch_barrier() {
                    return StepOutcome::Failed(e);
                }
            }
            let (data, smode, rmode) = match frame {
                FrameStep::Header => {
                    // The point of no return: the sequence number is
                    // claimed, so from here the op must run to a terminal
                    // state (cancel is refused once `started`).
                    let conn = self.conns.get(self.dst).expect("membership checked");
                    let seq = conn.next_send_seq();
                    (
                        Bytes::copy_from_slice(&wire::encode_msg_header(self.wire, self.me, seq)),
                        SendMode::Cheaper,
                        RecvMode::Express,
                    )
                }
                FrameStep::BatchHeader => {
                    let r =
                        batch::append(&self.batch_ctx(), BatchItem::DeferredHeader, false, true);
                    match r {
                        Ok(t) => self.note_ticket(t),
                        Err(e) => return StepOutcome::Failed(e),
                    }
                    continue;
                }
                FrameStep::Batch { data, express } => {
                    let r =
                        batch::append(&self.batch_ctx(), BatchItem::Owned(data), express, false);
                    match r {
                        Ok(t) => self.note_ticket(t),
                        Err(e) => return StepOutcome::Failed(e),
                    }
                    continue;
                }
                FrameStep::Tm { data, smode, rmode } => (data, smode, rmode),
                FrameStep::Stripe { data } => {
                    if !self.stripe_announced {
                        self.stripe_announced = true;
                        self.frames.push_front(FrameStep::Stripe { data });
                        return StepOutcome::Pending(OpState::StripePartial);
                    }
                    self.stripe_announced = false;
                    self.started = true;
                    let conn = self.conns.get(self.dst).expect("membership checked");
                    let ctx = StripeCtx {
                        rails: &self.rails,
                        sched: &self.sched,
                        me: self.me,
                        stats: &self.stats,
                        tracer: &self.tracer,
                        ack_tag: stripe_ack_tag(
                            self.ack_base,
                            self.me,
                            conn.next_tx_stripe_block(),
                        ),
                        wire: self.wire,
                    };
                    if let Err(e) = rail::stripe_send(&ctx, self.dst, &data) {
                        return StepOutcome::Failed(e);
                    }
                    self.done_at = self.done_at.max(time::now());
                    continue;
                }
            };
            let pmm = self.rails[self.rail].pmm();
            let tm = pmm.select(data.len(), smode, rmode);
            let len = data.len();
            self.started = true;
            match pmm.tm(tm).post_send(self.dst, data) {
                Ok(TmSend::Done(at)) => {
                    self.stats.record_tm_traffic(tm, len);
                    self.stats.record_buffer_sent();
                    self.done_at = self.done_at.max(at);
                }
                Ok(TmSend::Pending(cont)) => {
                    let kind = cont.kind();
                    self.pending = Some(PendingFrame {
                        kind,
                        cont,
                        tm,
                        len,
                    });
                    return StepOutcome::Pending(Self::park_state(kind));
                }
                Err(e) => return StepOutcome::Failed(e),
            }
        }
        // Every frame is emitted, but batched packets only count as sent
        // once a flush covers them; until then the op parks in `Batched`
        // (and a later op may append behind it — see the progress
        // engine's walk rule).
        if let Some(last) = self.last_ticket {
            let conn = self.conns.get(self.dst).expect("membership checked");
            let b = conn.send_batch().lock();
            if !b.ticket_flushed(last) {
                if let Some(e) = b.poison() {
                    return StepOutcome::Failed(e);
                }
                return StepOutcome::Pending(OpState::Batched);
            }
            self.done_at = self.done_at.max(b.last_flush_at());
        }
        self.stats.record_message();
        StepOutcome::Done(self.done_at.max(time::now()))
    }

    fn started(&self) -> bool {
        // A batched op has irrevocably reached the wire once any flush
        // covered its first packet.
        self.started
            || self.first_ticket.is_some_and(|t| {
                self.conns
                    .get(self.dst)
                    .expect("membership checked")
                    .send_batch()
                    .lock()
                    .ticket_flushed(t)
            })
    }

    fn on_cancel(&mut self) {
        debug_assert!(!self.started, "cancel of a started op");
        if let Some(mut p) = self.pending.take() {
            p.cont.cancel();
        }
        self.frames.clear();
        // Pull the op's never-flushed packets back out of the batch; the
        // deferred header claimed no sequence number yet, so the peer
        // sees no gap.
        if let (Some(first), Some(last)) = (self.first_ticket, self.last_ticket) {
            self.conns
                .get(self.dst)
                .expect("membership checked")
                .send_batch()
                .lock()
                .cancel_tickets(first, last);
        }
    }
}

/// An outgoing message under construction — the paper's send-side
/// *connection* object returned by `mad_begin_packing`.
///
/// Lifetime `'a` covers all packed user blocks: `send_LATER` and
/// `send_CHEAPER` blocks are read as late as `end_packing`, so they must
/// outlive the message.
pub struct OutgoingMessage<'c, 'a> {
    chan: &'c Channel,
    dst: NodeId,
    /// Home rail of this message (0 on single-rail channels).
    rail: usize,
    cur_tm: Option<TmId>,
    bmm: Option<SendBmm<'a>>,
    done: bool,
    /// Counter snapshot at `begin_packing` when tracing is enabled, so
    /// `end_packing` can record this message's copy-accounting delta.
    stats_at_begin: Option<StatsSnapshot>,
}

impl<'c, 'a> OutgoingMessage<'c, 'a> {
    /// Destination node of this message.
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// The rail carrying this message's un-striped blocks.
    pub fn rail(&self) -> usize {
        self.rail
    }

    /// Append one block to the message (paper: `mad_pack`).
    ///
    /// # Panics
    /// Panics on transport failure (see [`try_pack`](Self::try_pack)).
    pub fn pack(&mut self, data: &'a [u8], smode: SendMode, rmode: RecvMode) {
        if let Err(e) = self.try_pack(data, smode, rmode) {
            panic!("pack on channel {:?} failed: {e}", self.chan.name);
        }
    }

    /// [`pack`](Self::pack) that surfaces transport failure as a value.
    /// On error the message is abandoned (the channel returns to the
    /// no-open-message state); further operations on it panic.
    pub fn try_pack(&mut self, data: &'a [u8], smode: SendMode, rmode: RecvMode) -> MadResult<()> {
        let r = self.pack_inner(data, smode, rmode);
        if r.is_err() {
            self.abort();
        }
        r
    }

    fn pack_inner(&mut self, data: &'a [u8], smode: SendMode, rmode: RecvMode) -> MadResult<()> {
        assert!(
            !self.done,
            "pack after end_packing (or after a failed pack)"
        );
        time::advance(VDuration::from_micros_f64(self.chan.host.pack_op_us));
        let chan = self.chan;
        if chan
            .sched
            .should_stripe(data.len(), smode, rmode, chan.rails.len())
        {
            // Commit the home rail's BMM first so the striped block takes
            // its place in the per-connection order (the receiver mirrors
            // this with a checkout before reassembly).
            if let Some(mut old) = self.bmm.take() {
                old.flush()?;
            }
            self.cur_tm = None;
            let conn = chan
                .conns
                .get(self.dst)
                .expect("membership checked at begin");
            // The striped block must not overtake small packets staged in
            // the connection's batch either.
            chan.flush_conn_batch(self.dst, self.rail, FlushReason::Explicit)?;
            let ctx = chan.stripe_ctx(chan.me, conn.next_tx_stripe_block());
            return rail::stripe_send(&ctx, self.dst, data);
        }
        if chan.batchable(data.len(), smode, self.rail) {
            return self.pack_batched(data, smode, rmode == RecvMode::Express);
        }
        // A non-batchable block is an ordering barrier for the batch, the
        // same way a TM switch is for the open BMM.
        chan.flush_conn_batch(self.dst, self.rail, FlushReason::Explicit)?;
        let pmm = chan.rails[self.rail].pmm();
        let tm = pmm.select(data.len(), smode, rmode);
        self.switch_to(tm)?;
        chan.tracer.record(TraceEvent::Pack {
            len: data.len(),
            smode,
            rmode,
            tm,
        });
        let bmm = self.bmm.as_mut().expect("switched");
        bmm.pack(data, smode)?;
        // An EXPRESS block must be extractable as soon as the peer unpacks
        // it, so it cannot linger in the aggregation queue — unless the
        // caller forbade reading it before commit (LATER).
        if rmode == RecvMode::Express && smode != SendMode::Later {
            bmm.flush()?;
        }
        Ok(())
    }

    /// Stage one small block in the connection's send batch (blocking
    /// path). The caller's borrow ends with this call, so the bytes are
    /// captured into pooled memory now — `send_LATER` blocks therefore
    /// never come here ([`batchable`](Channel::batchable) excludes them).
    fn pack_batched(&mut self, data: &[u8], smode: SendMode, express: bool) -> MadResult<()> {
        let chan = self.chan;
        // Commit the open BMM first so the batched packet takes its place
        // in the per-connection order (the receiver mirrors this with a
        // checkout before reading from its split-frame queue).
        if let Some(mut old) = self.bmm.take() {
            old.flush()?;
        }
        self.cur_tm = None;
        debug_assert!(smode != SendMode::Later, "LATER blocks never batch");
        let buf = chan.rails[self.rail].pool().checkout_from(data);
        time::advance(chan.host.memcpy(data.len()));
        chan.stats.record_copy(data.len());
        let ctx = chan.batch_ctx(self.dst, self.rail);
        batch::append(&ctx, BatchItem::Pooled(buf, data.len()), express, false)?;
        Ok(())
    }

    /// Pack a block with `send_SAFER` semantics through a short-lived
    /// borrow: the data is captured during the call (by copy or by
    /// synchronous transmission), so the caller may modify or free it as
    /// soon as this returns — the ergonomic point of `send_SAFER`.
    pub fn pack_safer(&mut self, data: &[u8], rmode: RecvMode) {
        if let Err(e) = self.try_pack_safer(data, rmode) {
            panic!("pack_safer on channel {:?} failed: {e}", self.chan.name);
        }
    }

    /// [`pack_safer`](Self::pack_safer) that surfaces transport failure
    /// as a value (same abandonment semantics as [`try_pack`](Self::try_pack)).
    pub fn try_pack_safer(&mut self, data: &[u8], rmode: RecvMode) -> MadResult<()> {
        let r = self.pack_safer_inner(data, rmode);
        if r.is_err() {
            self.abort();
        }
        r
    }

    fn pack_safer_inner(&mut self, data: &[u8], rmode: RecvMode) -> MadResult<()> {
        assert!(
            !self.done,
            "pack after end_packing (or after a failed pack)"
        );
        time::advance(VDuration::from_micros_f64(self.chan.host.pack_op_us));
        if self.chan.batchable(data.len(), SendMode::Safer, self.rail) {
            // SAFER wants the data captured during the call — exactly what
            // the batch append does.
            return self.pack_batched(data, SendMode::Safer, rmode == RecvMode::Express);
        }
        self.chan
            .flush_conn_batch(self.dst, self.rail, FlushReason::Explicit)?;
        let pmm = self.chan.rails[self.rail].pmm();
        self.switch_to(pmm.select(data.len(), SendMode::Safer, rmode))?;
        let bmm = self.bmm.as_mut().expect("switched");
        bmm.pack_safer_now(data)?;
        if rmode == RecvMode::Express {
            bmm.flush()?;
        }
        Ok(())
    }

    /// Pack a library-internal block (always `(CHEAPER, EXPRESS)`).
    ///
    /// Classification (batch eligibility, TM selection) runs on the
    /// canonical `HEADER_LEN`, not the encoded length: the compact
    /// header's length depends on the sequence number, which the
    /// receiver's mirrored classification cannot know yet.
    fn pack_internal(&mut self, data: PooledBuf) -> MadResult<()> {
        let chan = self.chan;
        if chan.batchable(HEADER_LEN, SendMode::Cheaper, self.rail) {
            // The message header opens the message, so no BMM can be open
            // yet; it joins the batch *without* an express flush — the
            // header alone announces nothing the peer can act on, and
            // holding it is what lets whole small messages coalesce.
            debug_assert!(self.bmm.is_none(), "header packed mid-message");
            let len = data.len();
            let ctx = chan.batch_ctx(self.dst, self.rail);
            batch::append(&ctx, BatchItem::Pooled(data, len), false, true)?;
            return Ok(());
        }
        let pmm = chan.rails[self.rail].pmm();
        self.switch_to(pmm.select(HEADER_LEN, SendMode::Cheaper, RecvMode::Express))?;
        let bmm = self.bmm.as_mut().expect("switched");
        bmm.pack_pooled(data)?;
        bmm.flush()
    }

    fn switch_to(&mut self, tm: TmId) -> MadResult<()> {
        if self.cur_tm == Some(tm) {
            return Ok(());
        }
        // Commit the previous BMM so delivery order is preserved across
        // transfer methods (paper §4.1).
        if let Some(mut old) = self.bmm.take() {
            old.flush()?;
            self.chan.tracer.record(TraceEvent::CommitOnSwitch {
                from: self.cur_tm.expect("old BMM implies a current TM"),
                to: tm,
            });
        }
        let rail = &self.chan.rails[self.rail];
        self.cur_tm = Some(tm);
        self.bmm = Some(SendBmm::with_pool(
            rail.pmm().policy(tm),
            rail.pmm().tm(tm),
            tm,
            self.dst,
            self.chan.host,
            Arc::clone(&self.chan.stats),
            rail.pool().clone(),
        ));
        Ok(())
    }

    /// Abandon the message after a transport error: drop queued blocks
    /// and return the channel to the no-open-message state so the caller
    /// can keep using it (e.g. toward a different peer).
    fn abort(&mut self) {
        if !self.done {
            self.done = true;
            self.bmm = None;
            self.cur_tm = None;
            // Drop this message's never-flushed batched packets too: no
            // envelope sequence number was assigned yet, so the peer's
            // continuity check is unaffected. (Posted ops cannot have
            // packets pending here — `begin_packing` drained them.)
            if self.chan.sched.batch.enabled() {
                if let Some(conn) = self.chan.conns.get(self.dst) {
                    conn.send_batch().lock().cancel_tickets(0, u64::MAX);
                }
            }
            self.chan.open_tx.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Finalize the message (paper: `mad_end_packing`): every packed block
    /// is guaranteed flushed to the network when this returns. A striped
    /// block was already committed on every rail it touched when `pack`
    /// returned, so the terminal commit here only covers the home rail.
    ///
    /// # Panics
    /// Panics on transport failure (see
    /// [`try_end_packing`](Self::try_end_packing)).
    pub fn end_packing(self) {
        let name = self.chan.name.clone();
        if let Err(e) = self.try_end_packing() {
            panic!("end_packing on channel {name:?} failed: {e}");
        }
    }

    /// [`end_packing`](Self::end_packing) that surfaces transport failure
    /// as a value. Win or lose, the message is finalized: the channel
    /// accepts a new `begin_packing` afterwards.
    pub fn try_end_packing(mut self) -> MadResult<()> {
        let mut result = Ok(());
        if let Some(mut bmm) = self.bmm.take() {
            result = bmm.flush();
        }
        // Terminal batch flush: `end_packing` promises the message is on
        // the wire when it returns (only posted ops coalesce *across*
        // messages).
        if result.is_ok() {
            result = self
                .chan
                .flush_conn_batch(self.dst, self.rail, FlushReason::Explicit);
        }
        time::advance(VDuration::from_micros_f64(self.chan.host.end_op_us));
        self.chan.tracer.record(TraceEvent::EndPacking);
        if result.is_ok() {
            if let Some(at_begin) = self.stats_at_begin.take() {
                let d = self.chan.stats.snapshot().since(&at_begin);
                self.chan.tracer.record(TraceEvent::MessageStats {
                    copied_bytes: d.copied_bytes,
                    borrowed_bytes: d.borrowed_bytes,
                    pool_hits: d.pool_hits,
                    pool_misses: d.pool_misses,
                });
            }
            self.chan.stats.record_message();
        }
        self.chan.open_tx.fetch_sub(1, Ordering::AcqRel);
        self.done = true;
        result
    }
}

/// An incoming message being consumed — the paper's receive-side
/// *connection* object returned by `mad_begin_unpacking`.
pub struct IncomingMessage<'c, 'a> {
    chan: &'c Channel,
    src: NodeId,
    /// The rail the message was announced on (the sender's home rail).
    rail: usize,
    cur_tm: Option<TmId>,
    bmm: Option<RecvBmm<'a>>,
    done: bool,
}

impl<'c, 'a> IncomingMessage<'c, 'a> {
    /// The sending node.
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// The rail carrying this message's un-striped blocks.
    pub fn rail(&self) -> usize {
        self.rail
    }

    /// Extract one block (paper: `mad_unpack`). The `(smode, rmode)` pair
    /// and `dst.len()` must mirror the sender's `pack` exactly.
    ///
    /// With `receive_EXPRESS` the data is in `dst` when this returns; with
    /// `receive_CHEAPER` extraction may be deferred until a later express
    /// block, a TM switch, or `end_unpacking`.
    /// # Panics
    /// Panics on transport failure (see [`try_unpack`](Self::try_unpack)).
    pub fn unpack(&mut self, dst: &'a mut [u8], smode: SendMode, rmode: RecvMode) {
        if let Err(e) = self.try_unpack(dst, smode, rmode) {
            panic!("unpack on channel {:?} failed: {e}", self.chan.name);
        }
    }

    /// [`unpack`](Self::unpack) that surfaces transport failure as a
    /// value. On error the message is abandoned (deferred destinations
    /// are dropped unfilled) and the channel returns to the idle receive
    /// state; further operations on the message panic.
    pub fn try_unpack(
        &mut self,
        dst: &'a mut [u8],
        smode: SendMode,
        rmode: RecvMode,
    ) -> MadResult<()> {
        let r = self.unpack_inner(dst, smode, rmode);
        if r.is_err() {
            self.abort();
        }
        r
    }

    fn unpack_inner(
        &mut self,
        dst: &'a mut [u8],
        smode: SendMode,
        rmode: RecvMode,
    ) -> MadResult<()> {
        assert!(
            !self.done,
            "unpack after end_unpacking (or after a failed unpack)"
        );
        time::advance(VDuration::from_micros_f64(self.chan.host.pack_op_us));
        let chan = self.chan;
        if chan
            .sched
            .should_stripe(dst.len(), smode, rmode, chan.rails.len())
        {
            // Mirror of the sender's pre-stripe commit: check out the
            // home rail's BMM, then reassemble the striped block.
            if let Some(mut old) = self.bmm.take() {
                old.checkout()?;
            }
            self.cur_tm = None;
            let conn = chan
                .conns
                .get(self.src)
                .expect("membership checked at begin");
            let ctx = chan.stripe_ctx(self.src, conn.next_rx_stripe_block());
            return rail::stripe_recv(&ctx, self.src, dst);
        }
        if chan.batchable(dst.len(), smode, self.rail) {
            return self.unpack_batched(dst);
        }
        // Mirror of the sender's pre-barrier flush: by the time a
        // non-batchable block is unpacked, every batched packet before it
        // was already popped by the mirrored unpacks.
        debug_assert!(
            !chan.sched.batch.enabled()
                || !chan
                    .conns
                    .get(self.src)
                    .expect("membership checked at begin")
                    .recv_batch()
                    .lock()
                    .has_queued(),
            "batched packets left queued at a non-batchable unpack \
             (asymmetric pack/unpack?)"
        );
        let pmm = chan.rails[self.rail].pmm();
        let tm = pmm.select(dst.len(), smode, rmode);
        self.switch_to(tm)?;
        chan.tracer.record(TraceEvent::Unpack {
            len: dst.len(),
            smode,
            rmode,
            tm,
        });
        self.bmm.as_mut().expect("switched").unpack(dst, rmode)
    }

    /// Deliver one batched packet (mirror of the sender's batch append):
    /// check out the open BMM first — the commit/checkout discipline
    /// spans the batch layer too — then pop the packet from the
    /// connection's split-frame queue, pulling the next frame off the
    /// wire if the queue is empty.
    fn unpack_batched(&mut self, dst: &mut [u8]) -> MadResult<()> {
        if let Some(mut old) = self.bmm.take() {
            old.checkout()?;
        }
        self.cur_tm = None;
        let ctx = self.chan.batch_ctx(self.src, self.rail);
        batch::recv_into(&ctx, self.src, dst)
    }

    /// Extract one `receive_EXPRESS` block through a short-lived borrow:
    /// the data is in `dst` when this returns and the borrow ends with the
    /// call, so the value can steer the following unpacks (the paper's
    /// Fig. 1 pattern: read a length header, allocate, unpack the array).
    pub fn unpack_express(&mut self, dst: &mut [u8], smode: SendMode) {
        if let Err(e) = self.try_unpack_express(dst, smode) {
            panic!("unpack_express on channel {:?} failed: {e}", self.chan.name);
        }
    }

    /// [`unpack_express`](Self::unpack_express) that surfaces transport
    /// failure as a value (same abandonment semantics as
    /// [`try_unpack`](Self::try_unpack)).
    pub fn try_unpack_express(&mut self, dst: &mut [u8], smode: SendMode) -> MadResult<()> {
        let r = self.unpack_express_inner(dst, smode);
        if r.is_err() {
            self.abort();
        }
        r
    }

    fn unpack_express_inner(&mut self, dst: &mut [u8], smode: SendMode) -> MadResult<()> {
        assert!(
            !self.done,
            "unpack after end_unpacking (or after a failed unpack)"
        );
        time::advance(VDuration::from_micros_f64(self.chan.host.pack_op_us));
        if self.chan.batchable(dst.len(), smode, self.rail) {
            return self.unpack_batched(dst);
        }
        let pmm = self.chan.rails[self.rail].pmm();
        let tm = pmm.select(dst.len(), smode, RecvMode::Express);
        self.switch_to(tm)?;
        self.chan.tracer.record(TraceEvent::Unpack {
            len: dst.len(),
            smode,
            rmode: RecvMode::Express,
            tm,
        });
        self.bmm.as_mut().expect("switched").unpack_express_now(dst)
    }

    /// Unpack a library-internal block (mirror of `pack_internal`,
    /// including its canonical-`HEADER_LEN` classification; `dst` is the
    /// predicted encoded length, which may be shorter).
    fn unpack_internal(&mut self, dst: &mut [u8]) -> MadResult<()> {
        let chan = self.chan;
        if chan.batchable(HEADER_LEN, SendMode::Cheaper, self.rail) {
            debug_assert!(self.bmm.is_none(), "header unpacked mid-message");
            let ctx = chan.batch_ctx(self.src, self.rail);
            return batch::recv_into(&ctx, self.src, dst);
        }
        let pmm = chan.rails[self.rail].pmm();
        self.switch_to(pmm.select(HEADER_LEN, SendMode::Cheaper, RecvMode::Express))?;
        self.bmm.as_mut().expect("switched").unpack_express_now(dst)
    }

    fn switch_to(&mut self, tm: TmId) -> MadResult<()> {
        if self.cur_tm == Some(tm) {
            return Ok(());
        }
        // Checkout the previous BMM (mirror of the sender's commit).
        if let Some(mut old) = self.bmm.take() {
            old.checkout()?;
            self.chan.tracer.record(TraceEvent::CheckoutOnSwitch {
                from: self.cur_tm.expect("old BMM implies a current TM"),
                to: tm,
            });
        }
        let rail = &self.chan.rails[self.rail];
        self.cur_tm = Some(tm);
        self.bmm = Some(RecvBmm::new(
            rail.pmm().policy(tm),
            rail.pmm().tm(tm),
            self.src,
            self.chan.host,
            Arc::clone(&self.chan.stats),
        ));
        Ok(())
    }

    /// Abandon the message after a transport error: return the channel to
    /// the idle receive state so the caller can keep using it.
    fn abort(&mut self) {
        if !self.done {
            self.done = true;
            self.bmm = None;
            self.cur_tm = None;
            self.chan.open_rx.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Finalize reception (paper: `mad_end_unpacking`): all blocks —
    /// including deferred `receive_CHEAPER` ones — are available when this
    /// returns.
    ///
    /// # Panics
    /// Panics on transport failure (see
    /// [`try_end_unpacking`](Self::try_end_unpacking)).
    pub fn end_unpacking(self) {
        let name = self.chan.name.clone();
        if let Err(e) = self.try_end_unpacking() {
            panic!("end_unpacking on channel {name:?} failed: {e}");
        }
    }

    /// [`end_unpacking`](Self::end_unpacking) that surfaces transport
    /// failure as a value. Win or lose, reception is finalized: the
    /// channel accepts a new `begin_unpacking` afterwards.
    pub fn try_end_unpacking(mut self) -> MadResult<()> {
        let mut result = Ok(());
        if let Some(mut bmm) = self.bmm.take() {
            result = bmm.checkout();
        }
        time::advance(VDuration::from_micros_f64(self.chan.host.end_op_us));
        self.chan.tracer.record(TraceEvent::EndUnpacking);
        self.chan.open_rx.fetch_sub(1, Ordering::AcqRel);
        self.done = true;
        result
    }
}
