//! Session configuration.

use crate::polling::PollPolicy;
use crate::wire::WireMode;
use madsim_net::stacks::bip::BipTiming;
use madsim_net::stacks::sbp::SbpTiming;
use madsim_net::stacks::sisci::SisciTiming;
use madsim_net::stacks::tcp::TcpTiming;
use madsim_net::stacks::via::ViaTiming;
use madsim_net::time::VDuration;

/// Which protocol stack drives a channel. A network fabric may admit more
/// than one protocol (Ethernet carries both TCP and SBP), so the choice is
/// explicit, mirroring Madeleine II's per-channel driver selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// TCP over Ethernet.
    Tcp,
    /// BIP over Myrinet.
    Bip,
    /// SISCI over SCI.
    Sisci,
    /// VIA over a SAN.
    Via,
    /// SBP (static buffers) over Ethernet.
    Sbp,
}

/// Default length above which a large CHEAPER block is striped across a
/// multirail channel's rails.
pub const DEFAULT_STRIPE_THRESHOLD: usize = 256 * 1024;
/// Default stripe chunk size (MTU-ish for the simulated gigabit-class
/// fabrics: big enough to amortize the per-chunk header and rendezvous,
/// small enough that 1 MB blocks spread over four rails).
pub const DEFAULT_STRIPE_CHUNK: usize = 128 * 1024;

/// Default packet-count cap of a send batch once batching is turned on via
/// [`ChannelSpec::with_batching`]. The default *spec* ships with
/// `batch_packets == 1`, i.e. batching off and the classic one-frame-per-
/// packet wire format.
pub const DEFAULT_BATCH_PACKETS: usize = 16;
/// Default payload-byte cap of a send batch.
pub const DEFAULT_BATCH_BYTES: usize = 4096;
/// Default flush deadline (virtual µs) after the first packet enters an
/// open batch; a progress tick past the deadline closes it.
pub const DEFAULT_BATCH_FLUSH_US: f64 = 20.0;

/// Declaration of one communication channel (paper §2.1): a closed world of
/// point-to-point connections bound to one network interface and `rails`
/// adapters of that network.
#[derive(Clone, Debug)]
pub struct ChannelSpec {
    /// Channel name, unique within a session.
    pub name: String,
    /// Name of the network (as declared to the `WorldBuilder`) whose
    /// adapters carry this channel.
    pub network: String,
    /// Protocol stack to drive.
    pub protocol: Protocol,
    /// Number of rails (adapters) the channel spans. Every member node
    /// must own at least this many adapters on the network. `1` (the
    /// default) is the classic single-adapter channel.
    pub rails: usize,
    /// Large CHEAPER blocks at least this long are striped across the
    /// rails (ignored when `rails == 1`).
    pub stripe_threshold: usize,
    /// Chunk size of the stripe engine.
    pub stripe_chunk: usize,
    /// Maximum packets coalesced into one wire frame. `1` (the default)
    /// disables batching entirely: every packet ships as its own frame,
    /// byte-identical to the pre-batching wire format.
    pub batch_packets: usize,
    /// Maximum payload bytes held in an open batch before it flushes.
    pub batch_bytes: usize,
    /// Flush deadline in virtual µs: a progress tick this long after the
    /// first packet entered the batch closes it even if under-full.
    pub batch_flush_us: f64,
    /// Wire-format policy (see [`crate::wire`]): `Auto` (the default)
    /// negotiates the compact varint encodings on fault-free worlds and
    /// falls back to the classic fixed-field layouts whenever a fault plan
    /// is armed; `Classic` forces the classic layouts unconditionally.
    pub wire: WireMode,
}

impl ChannelSpec {
    pub fn new(name: &str, network: &str, protocol: Protocol) -> Self {
        ChannelSpec {
            name: name.to_string(),
            network: network.to_string(),
            protocol,
            rails: 1,
            stripe_threshold: DEFAULT_STRIPE_THRESHOLD,
            stripe_chunk: DEFAULT_STRIPE_CHUNK,
            batch_packets: 1,
            batch_bytes: DEFAULT_BATCH_BYTES,
            batch_flush_us: DEFAULT_BATCH_FLUSH_US,
            wire: WireMode::Auto,
        }
    }

    /// Force the classic fixed-field wire layouts even on fault-free
    /// worlds (A/B baselines against the compact codec, byte-compatible
    /// interop with pre-codec captures).
    pub fn with_classic_wire(mut self) -> Self {
        self.wire = WireMode::Classic;
        self
    }

    /// Span the channel over `rails` adapters of its network.
    pub fn with_rails(mut self, rails: usize) -> Self {
        assert!(rails >= 1, "a channel needs at least one rail");
        self.rails = rails;
        self
    }

    /// Override the stripe engine's threshold and chunk size.
    pub fn with_striping(mut self, threshold: usize, chunk: usize) -> Self {
        assert!(threshold > 0 && chunk > 0, "stripe sizes must be positive");
        self.stripe_threshold = threshold;
        self.stripe_chunk = chunk;
        self
    }

    /// Turn on adaptive wire-level batching: up to `packets` consecutive
    /// small packets to the same peer (at most `bytes` payload bytes total)
    /// coalesce into one multi-envelope wire frame, and a progress tick
    /// `flush_us` virtual µs after the first packet entered the batch
    /// closes it regardless. `packets == 1` keeps batching off.
    pub fn with_batching(mut self, packets: usize, bytes: usize, flush_us: f64) -> Self {
        assert!(packets >= 1, "a batch holds at least one packet");
        assert!(bytes > 0, "batch byte cap must be positive");
        assert!(flush_us > 0.0, "batch flush deadline must be positive");
        self.batch_packets = packets;
        self.batch_bytes = bytes;
        self.batch_flush_us = flush_us;
        self
    }
}

/// Host-side cost model for the generic (protocol-independent) layer.
#[derive(Clone, Copy, Debug)]
pub struct HostModel {
    /// Fixed cost of a memory-to-memory copy.
    pub memcpy_setup_us: f64,
    /// Per-byte cost of a memory-to-memory copy (≈230 MiB/s on the paper's
    /// Pentium II 450 nodes).
    pub memcpy_per_byte_us: f64,
    /// Software cost of one `pack`/`unpack` call (switch step).
    pub pack_op_us: f64,
    /// Software cost of `begin_packing`/`begin_unpacking`.
    pub begin_op_us: f64,
    /// Software cost of `end_packing`/`end_unpacking` (final commit).
    pub end_op_us: f64,
}

impl Default for HostModel {
    fn default() -> Self {
        HostModel {
            memcpy_setup_us: 0.2,
            memcpy_per_byte_us: 0.0042,
            pack_op_us: 0.15,
            begin_op_us: 0.3,
            end_op_us: 0.3,
        }
    }
}

impl HostModel {
    /// Virtual cost of copying `len` bytes in host memory.
    pub fn memcpy(&self, len: usize) -> VDuration {
        VDuration::from_micros_f64(self.memcpy_setup_us + len as f64 * self.memcpy_per_byte_us)
    }
}

/// Full session configuration.
#[derive(Clone, Debug, Default)]
pub struct Config {
    pub channels: Vec<ChannelSpec>,
    /// Enable the SISCI DMA transmission module. The paper ships it
    /// disabled: D310 DMA measured at ≤35 MB/s versus 82 MB/s for PIO
    /// (§5.2.1). Kept as a switch for the ablation benchmark.
    pub enable_sci_dma: bool,
    pub host: HostModelOpt,
    /// How receivers wait for incoming traffic (see
    /// [`crate::polling`]). Default: pure polling, the paper-era
    /// behaviour.
    pub poll: PollPolicyOpt,
    /// Per-stack timing overrides (`None` = the paper-calibrated
    /// defaults). Lets experiments retime the fabric — e.g. a
    /// modern-interconnect what-if — without touching the drivers.
    pub timings: StackTimings,
}

/// Optional overrides of the simulated stacks' calibrated constants.
#[derive(Clone, Copy, Debug, Default)]
pub struct StackTimings {
    pub bip: Option<BipTiming>,
    pub sisci: Option<SisciTiming>,
    pub tcp: Option<TcpTiming>,
    pub via: Option<ViaTiming>,
    pub sbp: Option<SbpTiming>,
}

/// Wrapper so `Config::default()` works without spelling out the model.
#[derive(Clone, Copy, Debug, Default)]
pub struct HostModelOpt(pub HostModel);

/// Wrapper so `Config::default()` works without spelling out the policy.
#[derive(Clone, Copy, Debug, Default)]
pub struct PollPolicyOpt(pub PollPolicy);

impl Config {
    /// Convenience: a single-channel configuration.
    pub fn one(name: &str, network: &str, protocol: Protocol) -> Self {
        Config {
            channels: vec![ChannelSpec::new(name, network, protocol)],
            ..Config::default()
        }
    }

    pub fn with_channel(mut self, name: &str, network: &str, protocol: Protocol) -> Self {
        self.channels
            .push(ChannelSpec::new(name, network, protocol));
        self
    }

    /// Add a fully spelled-out channel declaration (multirail channels,
    /// custom stripe sizes).
    pub fn with_channel_spec(mut self, spec: ChannelSpec) -> Self {
        self.channels.push(spec);
        self
    }

    pub fn with_sci_dma(mut self, on: bool) -> Self {
        self.enable_sci_dma = on;
        self
    }

    pub fn with_poll_policy(mut self, policy: PollPolicy) -> Self {
        self.poll = PollPolicyOpt(policy);
        self
    }

    pub fn with_bip_timing(mut self, t: BipTiming) -> Self {
        self.timings.bip = Some(t);
        self
    }

    pub fn with_sisci_timing(mut self, t: SisciTiming) -> Self {
        self.timings.sisci = Some(t);
        self
    }

    pub fn with_tcp_timing(mut self, t: TcpTiming) -> Self {
        self.timings.tcp = Some(t);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_channels() {
        let c =
            Config::one("sci", "sci0", Protocol::Sisci).with_channel("myr", "myr0", Protocol::Bip);
        assert_eq!(c.channels.len(), 2);
        assert_eq!(c.channels[0].protocol, Protocol::Sisci);
        assert_eq!(c.channels[1].network, "myr0");
        assert!(!c.enable_sci_dma);
    }

    #[test]
    fn rail_spec_defaults_and_builders() {
        let spec = ChannelSpec::new("ch", "myr0", Protocol::Bip);
        assert_eq!(spec.rails, 1);
        assert_eq!(spec.stripe_threshold, DEFAULT_STRIPE_THRESHOLD);
        assert_eq!(spec.stripe_chunk, DEFAULT_STRIPE_CHUNK);

        let spec = spec.with_rails(3).with_striping(4096, 1024);
        assert_eq!(spec.rails, 3);
        assert_eq!(spec.stripe_threshold, 4096);
        assert_eq!(spec.stripe_chunk, 1024);
        assert_eq!(spec.batch_packets, 1, "batching defaults to off");

        let spec = spec.clone().with_batching(8, 2048, 10.0);
        assert_eq!(spec.batch_packets, 8);
        assert_eq!(spec.batch_bytes, 2048);
        assert!((spec.batch_flush_us - 10.0).abs() < 1e-9);

        let c = Config::default().with_channel_spec(spec);
        assert_eq!(c.channels.len(), 1);
        assert_eq!(c.channels[0].rails, 3);
    }

    #[test]
    fn memcpy_model_scales() {
        let h = HostModel::default();
        let small = h.memcpy(0).as_micros_f64();
        let big = h.memcpy(1000).as_micros_f64();
        assert!((small - 0.2).abs() < 1e-9);
        assert!((big - 4.4).abs() < 1e-9);
    }
}
