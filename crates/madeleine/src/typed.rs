//! Typed packing helpers.
//!
//! The raw interface moves byte slices (as the paper's C interface does);
//! these extension methods add the little-endian scalar and length-prefixed
//! conveniences every application ends up writing — including the Fig. 1
//! pattern (`pack_sized_bytes` / `unpack_sized_bytes`) as a one-liner.

use crate::channel::{IncomingMessage, OutgoingMessage};
use crate::flags::{RecvMode, SendMode};

impl<'c, 'a> OutgoingMessage<'c, 'a> {
    /// Pack a `u32` (express by default on the receive side is the
    /// caller's choice — scalars are usually headers).
    pub fn pack_u32(&mut self, v: u32, rmode: RecvMode) {
        self.pack_safer(&v.to_le_bytes(), rmode);
    }

    /// Pack an `f64`.
    pub fn pack_f64(&mut self, v: f64, rmode: RecvMode) {
        self.pack_safer(&v.to_le_bytes(), rmode);
    }

    /// Pack a length header followed by the bytes — the paper's Fig. 1
    /// idiom for dynamically-sized data. Both blocks travel EXPRESS so the
    /// typed receive helpers (which return owned values) can extract them
    /// immediately; use the raw `pack`/`unpack` pair when CHEAPER deferred
    /// extraction matters.
    pub fn pack_sized_bytes(&mut self, data: &'a [u8]) {
        self.pack_u32(data.len() as u32, RecvMode::Express);
        if !data.is_empty() {
            self.pack(data, SendMode::Cheaper, RecvMode::Express);
        }
    }

    /// Pack a UTF-8 string with its length header.
    pub fn pack_str(&mut self, s: &'a str) {
        self.pack_sized_bytes(s.as_bytes());
    }
}

impl IncomingMessage<'_, '_> {
    /// Unpack a `u32` immediately (EXPRESS semantics regardless of how the
    /// value will steer later unpacks).
    pub fn unpack_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.unpack_express(&mut b, SendMode::Safer);
        u32::from_le_bytes(b)
    }

    /// Unpack an `f64` immediately.
    pub fn unpack_f64(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.unpack_express(&mut b, SendMode::Safer);
        f64::from_le_bytes(b)
    }

    /// Mirror of [`OutgoingMessage::pack_sized_bytes`]: read the length
    /// header, allocate, extract.
    pub fn unpack_sized_bytes(&mut self) -> Vec<u8> {
        let n = self.unpack_u32() as usize;
        let mut data = vec![0u8; n];
        if n > 0 {
            self.unpack_express(&mut data, SendMode::Cheaper);
        }
        data
    }

    /// Mirror of [`OutgoingMessage::pack_str`].
    ///
    /// # Panics
    /// Panics if the bytes are not valid UTF-8.
    pub fn unpack_string(&mut self) -> String {
        String::from_utf8(self.unpack_sized_bytes()).expect("valid UTF-8 string")
    }
}
