//! Network interaction policies: polling vs. interrupts.
//!
//! The paper's conclusion announces "the design and development of
//! advanced **adaptive polling/interruption network interaction
//! mechanisms**" for the integration with the Marcel thread library. This
//! module implements that future-work item: every channel waits for
//! incoming traffic through a configurable [`PollPolicy`], and the cost
//! model reflects the real trade-off —
//!
//! * **polling** (spinning on the NIC's status words) detects arrival with
//!   no extra latency but monopolizes a CPU;
//! * **interrupts** free the CPU but add a wakeup cost (interrupt +
//!   scheduler) to every message that arrives while the receiver sleeps —
//!   order 10 µs on the paper's hardware, several times the SCI network
//!   latency itself;
//! * **adaptive** (Marcel-style) spins briefly — long enough to catch the
//!   common fast reply — then arms the interrupt path.
//!
//! The virtual-time model: an interrupt wakeup charges its latency to the
//! receiver's clock if (and only if) the receiver had to block; a spin
//! catch is free. The interrupt fires *at message arrival*, so the charge
//! is recorded as **pending** and applied by the caller right after it has
//! synchronized with the arrival instant (see
//! [`take_pending_wakeup_charge`]). Tests can therefore assert the latency
//! difference exactly.

use madsim_net::time::VDuration;
use std::cell::Cell;
use std::time::Duration;

/// How a channel waits for incoming traffic.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum PollPolicy {
    /// Busy-poll until traffic shows up. Lowest latency, one CPU burned.
    #[default]
    Spin,
    /// Sleep-and-recheck; every arrival that finds the receiver parked
    /// pays the interrupt/wakeup latency.
    Interrupt {
        /// Wakeup cost charged to the receiver (µs).
        latency_us: f64,
    },
    /// Spin for a bounded number of rounds, then fall back to the
    /// interrupt path (the Marcel adaptive scheme).
    Adaptive {
        /// Spin rounds before arming the interrupt path.
        spin_rounds: u32,
        /// Wakeup cost once parked (µs).
        interrupt_latency_us: f64,
    },
}

impl PollPolicy {
    /// A typical interrupt-driven configuration (10 µs wakeup).
    pub fn interrupt() -> Self {
        PollPolicy::Interrupt { latency_us: 10.0 }
    }

    /// A typical adaptive configuration.
    pub fn adaptive() -> Self {
        PollPolicy::Adaptive {
            spin_rounds: 64,
            interrupt_latency_us: 10.0,
        }
    }

    /// Wait until `probe` yields a value, honouring the policy's cost
    /// model. `probe` must be cheap and side-effect-free on failure.
    pub fn wait<T>(&self, mut probe: impl FnMut() -> Option<T>) -> T {
        // Arrival before we ever wait is free under every policy.
        if let Some(v) = probe() {
            return v;
        }
        match *self {
            PollPolicy::Spin => loop {
                if let Some(v) = probe() {
                    return v;
                }
                std::thread::yield_now();
            },
            PollPolicy::Interrupt { latency_us } => {
                let v = park_until(&mut probe);
                add_pending_wakeup(latency_us);
                v
            }
            PollPolicy::Adaptive {
                spin_rounds,
                interrupt_latency_us,
            } => {
                for _ in 0..spin_rounds {
                    if let Some(v) = probe() {
                        return v; // caught while spinning: free
                    }
                    std::thread::yield_now();
                }
                let v = park_until(&mut probe);
                add_pending_wakeup(interrupt_latency_us);
                v
            }
        }
    }

    /// [`wait`](Self::wait) for probes with *idempotent side effects* —
    /// specifically a progress-engine tick, which may ship frames and
    /// retire ops on each call. The cost model is identical (a hit on the
    /// first probe is free; a parked wakeup charges the interrupt
    /// latency); the separate entry point exists because `wait` documents
    /// its probe as side-effect-free and the engine's is deliberately not.
    pub fn drive<T>(&self, probe: impl FnMut() -> Option<T>) -> T {
        self.wait(probe)
    }
}

thread_local! {
    static PENDING_WAKEUP_NS: Cell<u64> = const { Cell::new(0) };
}

fn add_pending_wakeup(latency_us: f64) {
    PENDING_WAKEUP_NS.with(|c| c.set(c.get() + (latency_us * 1_000.0).round() as u64));
}

/// Drain the wakeup latency accrued by interrupt-path waits on this
/// thread. Callers apply it with `time::advance` **after** synchronizing
/// with the message's arrival (the interrupt fires at arrival; the
/// receiver resumes one wakeup later).
pub fn take_pending_wakeup_charge() -> VDuration {
    VDuration::from_nanos(PENDING_WAKEUP_NS.with(|c| c.replace(0)))
}

/// Sleep-and-recheck loop (the "parked waiting for an interrupt" state).
fn park_until<T>(probe: &mut impl FnMut() -> Option<T>) -> T {
    let mut backoff_us = 20u64;
    loop {
        if let Some(v) = probe() {
            return v;
        }
        std::thread::sleep(Duration::from_micros(backoff_us));
        backoff_us = (backoff_us * 2).min(500);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use madsim_net::time::{self, ClockHandle};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    fn with_clock<T>(f: impl FnOnce() -> T) -> (T, f64) {
        let clock = ClockHandle::new();
        let prev = time::install_clock(clock.clone());
        let out = f();
        // Apply any pending wakeup as a caller would.
        time::advance(take_pending_wakeup_charge());
        let t = clock.now().as_micros_f64();
        time::restore_clock(prev);
        (out, t)
    }

    #[test]
    fn immediate_data_is_free_under_every_policy() {
        for policy in [
            PollPolicy::Spin,
            PollPolicy::interrupt(),
            PollPolicy::adaptive(),
        ] {
            let ((), t) = with_clock(|| {
                policy.wait(|| Some(()));
            });
            assert_eq!(t, 0.0, "{policy:?} charged {t} us for present data");
        }
    }

    #[test]
    fn interrupt_charges_wakeup_latency_when_blocked() {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let setter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            f2.store(true, Ordering::Release);
        });
        let ((), t) = with_clock(|| {
            PollPolicy::Interrupt { latency_us: 12.5 }
                .wait(|| flag.load(Ordering::Acquire).then_some(()));
        });
        setter.join().unwrap();
        assert_eq!(t, 12.5);
    }

    #[test]
    fn spin_never_charges() {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let setter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            f2.store(true, Ordering::Release);
        });
        let ((), t) = with_clock(|| {
            PollPolicy::Spin.wait(|| flag.load(Ordering::Acquire).then_some(()));
        });
        setter.join().unwrap();
        assert_eq!(t, 0.0);
    }

    #[test]
    fn adaptive_charges_only_past_the_spin_phase() {
        // Data that shows up within the spin rounds is free.
        let mut calls = 0;
        let ((), t) = with_clock(|| {
            PollPolicy::Adaptive {
                spin_rounds: 64,
                interrupt_latency_us: 10.0,
            }
            .wait(|| {
                calls += 1;
                (calls > 5).then_some(())
            });
        });
        assert_eq!(t, 0.0);

        // Data that arrives long after the spin phase pays the wakeup.
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let setter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            f2.store(true, Ordering::Release);
        });
        let ((), t) = with_clock(|| {
            PollPolicy::Adaptive {
                spin_rounds: 4,
                interrupt_latency_us: 10.0,
            }
            .wait(|| flag.load(Ordering::Acquire).then_some(()));
        });
        setter.join().unwrap();
        assert_eq!(t, 10.0);
    }
}
