//! Adaptive wire-level batching: the per-connection **SendBatch** layer.
//!
//! The paper's emission flags already license the library to *delay* a
//! block and pick the cheapest transfer moment (`send_LATER`,
//! `send_CHEAPER`, Table 1). This module exercises that license at the
//! wire level: consecutive small packets bound for the same peer and rail
//! coalesce into one **multi-envelope frame** — a compact header (magic +
//! packet count) followed by a per-packet `{seq, len, flags}` envelope
//! table and the concatenated payloads — so a burst of tiny messages pays
//! the per-frame fixed cost (kernel traversal, descriptor post, ARQ ack
//! round) once instead of per packet. The receive side splits the frame
//! back into individual deliveries with unchanged per-packet semantics,
//! ordering, and sequence numbers.
//!
//! ## Wire format
//!
//! The frame layouts live in [`crate::wire`] (the one module that defines
//! every on-wire byte): a classic fixed-field format — magic + count, a
//! `{seq u32, len u32, flags u32}` envelope table, then the concatenated
//! payloads — and a compact varint format selected on fault-free channels,
//! where a prologue byte and an explicit body length replace the fixed
//! header and the envelope table packs `(len << 2 | flags)` varints.
//!
//! Envelope `seq` is a per-connection *batch packet* counter assigned at
//! flush time; the receiver demands exact continuity, which turns any
//! lost, duplicated, or reordered batch frame that slips past the
//! transport into a loud [`MadError::CorruptStream`] instead of silent
//! misdelivery. `flags` bit 0 marks a user-EXPRESS packet, bit 1 the
//! channel's internal message header (both diagnostic: routing is fully
//! determined by the symmetric pack/unpack mirror).
//!
//! ## Flush policy
//!
//! An open batch closes — and its frame ships — on the first of:
//!
//! * **Express**: a user-EXPRESS packet is appended (it rides *inside*
//!   the closing frame, so latency-sensitive traffic is never held);
//! * **Full**: the packet-count or payload-byte threshold from
//!   [`ChannelSpec::with_batching`](crate::config::ChannelSpec::with_batching)
//!   is reached, or the next packet would overflow the TM's frame budget;
//! * **Explicit**: `end_packing`, [`Channel::flush`](crate::channel::Channel::flush),
//!   or an ordering barrier (a non-batchable block, a striped block, a
//!   blocking send entering the connection) closes it;
//! * **Deadline**: a progress-engine tick observes the batch has been
//!   open longer than the configured flush deadline.
//!
//! ## What batches
//!
//! The eligibility test ([`batchable`]) is a pure, symmetric function of
//! the packet length and send mode — both endpoints evaluate it
//! independently, like `Pmm::select` (messages are not self-described).
//! `send_LATER` blocks never batch (appending copies immediately, which
//! would break LATER's deferred-read contract); blocks at or above the
//! stripe threshold never reach the batch layer (the stripe check runs
//! first); and rendezvous-class long messages exceed the frame budget, so
//! they keep their dedicated wire exchange. With batching disabled (the
//! default, `batch_packets == 1`) this module is bypassed entirely and
//! the wire byte stream is identical to the pre-batching library.
//!
//! A dropped or corrupted batch frame is retransmitted *as a unit* by the
//! transport's existing ARQ — the frame is one `send_buffer` call, well
//! under the ARQ segment size.

use crate::connection::Connection;
use crate::error::{MadError, MadResult};
use crate::flags::SendMode;
use crate::pool::PooledBuf;
use crate::rail::Rail;
use crate::stats::Stats;
use crate::trace::{TraceEvent, Tracer};
use crate::wire::{self, WireVersion, BATCH_ENV_LEN, BATCH_HDR_LEN};
use bytes::Bytes;
use madsim_net::time::{self, VDuration, VTime};
use madsim_net::NodeId;
use std::collections::VecDeque;

/// Envelope flag: the packet was packed `receive_EXPRESS` by the user.
const FLAG_EXPRESS: u32 = 1 << 0;
/// Envelope flag: the packet is the channel's internal message header.
const FLAG_INTERNAL: u32 = 1 << 1;

/// What closed a batch (the `batch_flush_reason` breakdown in
/// [`Stats`] and the [`TraceEvent::BatchFlush`] payload).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushReason {
    /// A user-EXPRESS packet entered the batch.
    Express,
    /// A size/count threshold (or the TM frame budget) was hit.
    Full,
    /// An explicit flush or ordering barrier.
    Explicit,
    /// A progress tick found the batch past its flush deadline.
    Deadline,
}

/// The per-channel batching knobs, owned by the
/// [`RailScheduler`](crate::rail::RailScheduler).
#[derive(Clone, Copy, Debug)]
pub struct BatchPolicy {
    /// Packets per frame before a Full flush. `1` = batching off.
    pub max_packets: usize,
    /// Payload bytes per frame before a Full flush.
    pub max_bytes: usize,
    /// Virtual-µs deadline after the first append before a progress tick
    /// flushes the batch.
    pub flush_us: f64,
}

impl BatchPolicy {
    /// The disabled policy (classic one-frame-per-packet wire format).
    pub(crate) fn off() -> Self {
        BatchPolicy {
            max_packets: 1,
            max_bytes: crate::config::DEFAULT_BATCH_BYTES,
            flush_us: crate::config::DEFAULT_BATCH_FLUSH_US,
        }
    }

    /// Is the batch layer in play at all?
    pub fn enabled(&self) -> bool {
        self.max_packets > 1
    }
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy::off()
    }
}

/// Is a packet of `len` bytes sent with `smode` carried inside a batch
/// frame? Pure and symmetric: the receiver evaluates it with the
/// destination length and the mirrored send mode and must reach the same
/// answer. `frame_cap` is the batch TM's `buffer_cap` (identical on both
/// ends of a protocol). The budget check uses the *classic* header and
/// envelope sizes on both wire versions — they bound the compact ones,
/// and the test must not depend on varint widths only the sender knows.
pub(crate) fn batchable(
    policy: &BatchPolicy,
    len: usize,
    smode: SendMode,
    frame_cap: usize,
) -> bool {
    policy.enabled()
        && smode != SendMode::Later
        && len <= policy.max_bytes
        && BATCH_HDR_LEN + BATCH_ENV_LEN + len <= frame_cap
}

/// A packet staged in a send batch.
enum PendingData {
    /// A blocking-path packet, copied into pooled memory at append time.
    Pooled(PooledBuf, usize),
    /// A posted-op block, held zero-copy until the frame is assembled.
    Owned(Bytes),
    /// A posted-op internal header whose sequence number is claimed only
    /// at flush time — cancelling the op before any flush leaves no gap
    /// in the peer's sequence space.
    DeferredHeader,
}

impl PendingData {
    fn len(&self) -> usize {
        match self {
            PendingData::Pooled(_, len) => *len,
            PendingData::Owned(b) => b.len(),
            PendingData::DeferredHeader => crate::channel::HEADER_LEN,
        }
    }
}

struct PendingPacket {
    ticket: u64,
    data: PendingData,
    flags: u32,
}

/// The send side of one connection's batch layer.
pub(crate) struct SendBatch {
    pending: VecDeque<PendingPacket>,
    /// Payload bytes currently staged (envelopes excluded).
    bytes: usize,
    /// Deadline armed by the first append of an open batch.
    deadline: Option<VTime>,
    /// Next append ticket (tickets are per-connection, strictly
    /// increasing; posted ops retire when a flush covers their last one).
    next_ticket: u64,
    /// Every ticket at or below this has left on the wire (or was
    /// cancelled before a flush covered it).
    flushed_through: u64,
    /// Virtual instant of the most recent flush.
    last_flush_at: VTime,
    /// Next envelope sequence number to assign at flush.
    env_seq: u32,
    /// A failed flush poisons the batch: the staged packets are gone, so
    /// every later append/flush (and every op parked on a covered
    /// ticket) reports this error instead of silently re-ordering.
    err: Option<MadError>,
}

impl SendBatch {
    pub(crate) fn new() -> Self {
        SendBatch {
            pending: VecDeque::new(),
            bytes: 0,
            deadline: None,
            next_ticket: 1,
            flushed_through: 0,
            last_flush_at: VTime::ZERO,
            env_seq: 0,
            err: None,
        }
    }

    /// Has `ticket` been covered by a flush?
    pub(crate) fn ticket_flushed(&self, ticket: u64) -> bool {
        self.flushed_through >= ticket
    }

    /// Virtual instant of the most recent flush.
    pub(crate) fn last_flush_at(&self) -> VTime {
        self.last_flush_at
    }

    /// The poison, if a flush has failed.
    pub(crate) fn poison(&self) -> Option<MadError> {
        self.err.clone()
    }

    /// Is the batch open (packets staged, frame not shipped)?
    #[cfg(test)]
    pub(crate) fn is_open(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Is the batch open and past its flush deadline at `now`?
    pub(crate) fn deadline_due(&self, now: VTime) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }

    /// Remove the never-flushed packets of a cancelled op (tickets in
    /// `first..=last`). The caller guarantees no flush covered them.
    pub(crate) fn cancel_tickets(&mut self, first: u64, last: u64) {
        self.pending.retain(|p| {
            let cancelled = p.ticket >= first && p.ticket <= last;
            if cancelled {
                self.bytes -= p.data.len();
            }
            !cancelled
        });
        if self.pending.is_empty() {
            self.deadline = None;
        }
    }
}

/// The receive side: packets split out of arrived batch frames, awaiting
/// their `unpack` calls.
pub(crate) struct RecvBatch {
    queue: VecDeque<(Bytes, u32)>,
    /// Next expected envelope sequence number.
    env_seq: u32,
    /// Rail the queued packets arrived on (valid while non-empty).
    rail: usize,
}

impl RecvBatch {
    pub(crate) fn new() -> Self {
        RecvBatch {
            queue: VecDeque::new(),
            env_seq: 0,
            rail: 0,
        }
    }

    /// Are split-out packets awaiting delivery?
    pub(crate) fn has_queued(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Rail the queued packets arrived on.
    pub(crate) fn rail(&self) -> usize {
        self.rail
    }
}

/// Everything the batch layer needs from the channel, borrowed for one
/// append/flush/receive.
pub(crate) struct BatchCtx<'a> {
    pub conn: &'a Connection,
    pub rail: &'a Rail,
    pub stats: &'a Stats,
    pub tracer: &'a Tracer,
    pub host: &'a crate::config::HostModel,
    pub me: NodeId,
    pub policy: &'a BatchPolicy,
    /// The channel's negotiated wire format (see [`crate::wire`]).
    pub wire: WireVersion,
}

impl BatchCtx<'_> {
    /// The TM that carries this connection's batch frames — the small
    /// EXPRESS path, selected symmetrically on both ends.
    fn frame_tm(&self) -> crate::tm::TmId {
        self.rail.pmm().select(
            crate::channel::HEADER_LEN,
            SendMode::Cheaper,
            crate::flags::RecvMode::Express,
        )
    }

    /// The largest frame the batch TM can carry.
    pub(crate) fn frame_cap(&self) -> usize {
        self.rail.pmm().tm(self.frame_tm()).caps().buffer_cap
    }
}

/// A packet handed to [`append`].
pub(crate) enum BatchItem {
    /// Blocking-path bytes, already staged in pooled memory (`len` filled).
    Pooled(PooledBuf, usize),
    /// A posted-op block, zero-copy.
    Owned(Bytes),
    /// A posted-op internal header (sequence number claimed at flush).
    DeferredHeader,
}

/// Append one packet to the connection's send batch, flushing first if it
/// would not fit and afterwards if a threshold tripped or the packet is
/// user-EXPRESS. Returns the packet's ticket (posted ops park on it).
pub(crate) fn append(
    ctx: &BatchCtx<'_>,
    item: BatchItem,
    express: bool,
    internal: bool,
) -> MadResult<u64> {
    let (data, flags) = match item {
        BatchItem::Pooled(buf, len) => (PendingData::Pooled(buf, len), 0),
        BatchItem::Owned(b) => (PendingData::Owned(b), 0),
        BatchItem::DeferredHeader => (PendingData::DeferredHeader, 0),
    };
    let flags =
        flags | if express { FLAG_EXPRESS } else { 0 } | if internal { FLAG_INTERNAL } else { 0 };
    let len = data.len();
    let mut b = ctx.conn.send_batch().lock();
    if let Some(e) = b.poison() {
        return Err(e);
    }
    // Would this packet overflow the TM's frame budget? Close the open
    // frame first (a Full flush: the frame is as full as it can get).
    let projected = BATCH_HDR_LEN + (b.pending.len() + 1) * BATCH_ENV_LEN + b.bytes + len;
    if !b.pending.is_empty() && projected > ctx.frame_cap() {
        flush_locked(ctx, &mut b, FlushReason::Full)?;
    }
    if b.pending.is_empty() {
        b.deadline = Some(time::now() + VDuration::from_micros_f64(ctx.policy.flush_us));
    }
    let ticket = b.next_ticket;
    b.next_ticket += 1;
    b.bytes += len;
    b.pending.push_back(PendingPacket {
        ticket,
        data,
        flags,
    });
    if express {
        flush_locked(ctx, &mut b, FlushReason::Express)?;
    } else if b.pending.len() >= ctx.policy.max_packets || b.bytes >= ctx.policy.max_bytes {
        flush_locked(ctx, &mut b, FlushReason::Full)?;
    }
    Ok(ticket)
}

/// Close the connection's open batch (if any) and ship its frame.
pub(crate) fn flush(ctx: &BatchCtx<'_>, reason: FlushReason) -> MadResult<()> {
    let mut b = ctx.conn.send_batch().lock();
    flush_locked(ctx, &mut b, reason)
}

fn flush_locked(ctx: &BatchCtx<'_>, b: &mut SendBatch, reason: FlushReason) -> MadResult<()> {
    if let Some(e) = b.poison() {
        return Err(e);
    }
    if b.pending.is_empty() {
        return Ok(());
    }
    let count = b.pending.len();
    // Deferred headers claim their message sequence numbers *first*, in
    // batch order — so cancelled ops left no gap and flushed ops get
    // exactly the stream position their frame occupies. On the compact
    // wire the encoded header length depends on that sequence number, so
    // the claims must precede the envelope table.
    let headers: Vec<Option<wire::HeaderBytes>> = b
        .pending
        .iter()
        .map(|p| match &p.data {
            PendingData::DeferredHeader => Some(wire::encode_msg_header(
                ctx.wire,
                ctx.me,
                ctx.conn.next_send_seq(),
            )),
            _ => None,
        })
        .collect();
    let packets: Vec<(usize, u32)> = b
        .pending
        .iter()
        .zip(&headers)
        .map(|(p, hdr)| {
            let len = hdr.as_ref().map_or_else(|| p.data.len(), |h| h.len());
            (len, p.flags)
        })
        .collect();
    let payload_bytes: usize = packets.iter().map(|&(len, _)| len).sum();
    // Envelope table first (lengths are known up front), payloads after.
    let mut frame = wire::encode_batch_frame(ctx.wire, b.env_seq, &packets);
    b.env_seq = b.env_seq.wrapping_add(count as u32);
    for (p, hdr) in b.pending.iter().zip(&headers) {
        match &p.data {
            PendingData::Pooled(buf, len) => frame.extend_from_slice(&buf.raw()[..*len]),
            PendingData::Owned(bytes) => frame.extend_from_slice(bytes),
            PendingData::DeferredHeader => {
                frame.extend_from_slice(hdr.as_ref().expect("built above"));
            }
        }
    }
    // The staging gather is a real generic-layer copy; charge it.
    time::advance(ctx.host.memcpy(frame.len()));
    ctx.stats.record_copy(payload_bytes);
    let dst = ctx.conn.peer();
    let tm = ctx.frame_tm();
    let sent = ctx.rail.pmm().tm(tm).send_buffer(dst, &frame);
    // Win or lose, the staged packets are consumed — but the flushed
    // watermark advances only on success, so an op parked on a ticket
    // whose bytes died observes the poison, not a completion.
    b.pending.clear();
    b.bytes = 0;
    b.deadline = None;
    if let Err(e) = sent {
        b.err = Some(e.clone());
        return Err(e);
    }
    b.flushed_through = b.next_ticket - 1;
    b.last_flush_at = time::now();
    ctx.stats.record_batch(reason, count);
    ctx.stats.record_buffer_sent();
    ctx.stats.record_tm_traffic(tm, frame.len());
    ctx.stats.record_rail_traffic(ctx.rail.id(), frame.len());
    ctx.stats.record_batch_bytes(frame.len(), payload_bytes);
    ctx.tracer.record(TraceEvent::BatchFlush {
        dst,
        packets: count,
        bytes: payload_bytes,
        reason,
    });
    Ok(())
}

/// Deliver the next batched packet from `src` into `dst`: split a new
/// frame off the wire if the queue is empty, then pop the head packet
/// (whose length must equal `dst.len()` — the pack/unpack mirror
/// guarantees it on a correct program).
pub(crate) fn recv_into(ctx: &BatchCtx<'_>, src: NodeId, dst: &mut [u8]) -> MadResult<()> {
    let mut rb = ctx.conn.recv_batch().lock();
    if rb.queue.is_empty() {
        receive_frame(ctx, src, &mut rb)?;
    }
    let (payload, _flags) = rb.queue.pop_front().expect("frame split just above");
    if payload.len() != dst.len() {
        return Err(MadError::corrupt(format!(
            "batched packet from node {src} is {} bytes where the unpack \
             expects {} (asymmetric pack/unpack?)",
            payload.len(),
            dst.len()
        )));
    }
    dst.copy_from_slice(&payload);
    time::advance(ctx.host.memcpy(dst.len()));
    ctx.stats.record_copy(dst.len());
    Ok(())
}

/// Receive one batch frame from `src` and split it into the queue.
fn receive_frame(ctx: &BatchCtx<'_>, src: NodeId, rb: &mut RecvBatch) -> MadResult<()> {
    let tm_id = ctx.frame_tm();
    let tm = ctx.rail.pmm().tm(tm_id);
    let frame: Bytes = if tm.caps().static_buffers {
        // Static-buffer stacks deliver the frame whole; keep the arrival
        // bytes alive past the buffer release so the per-packet payloads
        // stay zero-copy.
        let buf = tm.receive_static_buffer(src)?;
        let bytes = buf
            .shared_bytes()
            .expect("receive_static_buffer wraps arrival bytes");
        tm.release_static_buffer(buf);
        bytes
    } else if ctx.wire == WireVersion::Compact {
        // Stream stacks, compact frame: the prologue byte, then the body
        // length one varint byte at a time (its width is unknown until a
        // byte clears the continuation bit), then the whole body in one
        // exact read.
        let mut pro = [0u8; 1];
        tm.receive_buffer(src, &mut pro)?;
        let mut varint = Vec::with_capacity(wire::MAX_VARINT);
        loop {
            let mut byte = [0u8; 1];
            tm.receive_buffer(src, &mut byte)?;
            varint.push(byte[0]);
            if byte[0] & wire::VARINT_CONT == 0 || varint.len() == wire::MAX_VARINT {
                break;
            }
        }
        let mut pos = 0;
        let body = wire::read_varint(&varint, &mut pos)? as usize;
        let mut whole = Vec::with_capacity(1 + varint.len() + body);
        whole.push(pro[0]);
        whole.extend_from_slice(&varint);
        let at = whole.len();
        whole.resize(at + body, 0);
        tm.receive_buffer(src, &mut whole[at..])?;
        Bytes::from(whole)
    } else {
        // Stream stacks, classic frame: header, envelope table, then all
        // payloads in three exact reads.
        let mut hdr = [0u8; BATCH_HDR_LEN];
        tm.receive_buffer(src, &mut hdr)?;
        let count = wire::parse_batch_count_classic(&hdr, src)?;
        let mut rest = vec![0u8; count * BATCH_ENV_LEN];
        tm.receive_buffer(src, &mut rest)?;
        let payload_total: usize = rest
            .chunks_exact(BATCH_ENV_LEN)
            .map(|env| u32::from_le_bytes(env[4..8].try_into().expect("4 bytes")) as usize)
            .sum();
        let mut whole = Vec::with_capacity(BATCH_HDR_LEN + rest.len() + payload_total);
        whole.extend_from_slice(&hdr);
        whole.append(&mut rest);
        let at = whole.len();
        whole.resize(at + payload_total, 0);
        tm.receive_buffer(src, &mut whole[at..])?;
        Bytes::from(whole)
    };
    split_frame(ctx, src, rb, frame)
}

/// Split a whole batch frame into per-packet queue entries, validating
/// the envelope sequence continuity.
fn split_frame(ctx: &BatchCtx<'_>, src: NodeId, rb: &mut RecvBatch, frame: Bytes) -> MadResult<()> {
    let (envelopes, payload_at) = wire::parse_batch_frame(ctx.wire, &frame, src)?;
    let mut off = payload_at;
    for (i, env) in envelopes.iter().enumerate() {
        if env.seq != rb.env_seq {
            return Err(MadError::corrupt(format!(
                "batch envelope seq {} from node {src} where {} was \
                 expected (lost or replayed batch frame)",
                env.seq, rb.env_seq
            )));
        }
        rb.env_seq = rb.env_seq.wrapping_add(1);
        if off + env.len > frame.len() {
            return Err(MadError::corrupt(format!(
                "batch envelope {i} from node {src} overruns its frame"
            )));
        }
        rb.queue
            .push_back((frame.slice(off..off + env.len), env.flags));
        off += env.len;
    }
    if off != frame.len() {
        return Err(MadError::corrupt(format!(
            "batch frame from node {src} carries {} trailing bytes",
            frame.len() - off
        )));
    }
    rb.rail = ctx.rail.id();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_off_by_default_and_enabled_above_one() {
        assert!(!BatchPolicy::default().enabled());
        let on = BatchPolicy {
            max_packets: 2,
            max_bytes: 1024,
            flush_us: 5.0,
        };
        assert!(on.enabled());
    }

    #[test]
    fn batchable_mirrors_len_mode_and_budget() {
        let p = BatchPolicy {
            max_packets: 16,
            max_bytes: 4096,
            flush_us: 20.0,
        };
        assert!(batchable(&p, 64, SendMode::Cheaper, usize::MAX));
        assert!(batchable(&p, 64, SendMode::Safer, usize::MAX));
        assert!(
            !batchable(&p, 64, SendMode::Later, usize::MAX),
            "LATER defers the read; batching copies now"
        );
        assert!(!batchable(&p, 4097, SendMode::Cheaper, usize::MAX));
        // A packet must fit an empty frame of the TM's budget.
        let tight = BATCH_HDR_LEN + BATCH_ENV_LEN + 64;
        assert!(batchable(&p, 64, SendMode::Cheaper, tight));
        assert!(!batchable(&p, 65, SendMode::Cheaper, tight));
        assert!(
            !batchable(&BatchPolicy::off(), 64, SendMode::Cheaper, usize::MAX),
            "disabled policy batches nothing"
        );
    }

    #[test]
    fn cancel_tickets_removes_pending_and_disarms_deadline() {
        let mut b = SendBatch::new();
        b.pending.push_back(PendingPacket {
            ticket: 1,
            data: PendingData::Owned(Bytes::from_static(b"abcd")),
            flags: 0,
        });
        b.pending.push_back(PendingPacket {
            ticket: 2,
            data: PendingData::DeferredHeader,
            flags: FLAG_INTERNAL,
        });
        b.bytes = 4 + crate::channel::HEADER_LEN;
        b.deadline = Some(VTime::from_nanos(1));
        b.cancel_tickets(1, 2);
        assert!(!b.is_open());
        assert_eq!(b.bytes, 0);
        assert!(!b.deadline_due(VTime::from_nanos(100)), "deadline disarmed");
    }
}
