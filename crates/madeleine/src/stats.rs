//! Copy and traffic accounting.
//!
//! The paper's performance argument is largely about *copies avoided*
//! (dynamic buffers, zero-copy rendezvous, static-buffer borrowing on
//! gateways). Every memory-to-memory copy the library performs on behalf of
//! the user is counted here, so tests can assert the zero-copy claims
//! exactly rather than inferring them from timing.

use crate::tm::TmId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared counters for one channel (or one gateway pipeline).
#[derive(Debug, Default)]
pub struct Stats {
    /// Software copies performed by the generic layer (BMM copies into or
    /// out of static buffers, kernel-style copies in the TCP TM). Wire
    /// transfers and NIC DMA are *not* copies.
    copies: AtomicU64,
    /// Total bytes moved by those copies.
    copied_bytes: AtomicU64,
    /// Buffers handed to transmission modules.
    buffers_sent: AtomicU64,
    /// BMM flushes (commit operations).
    commits: AtomicU64,
    /// Messages completed (end_packing calls).
    messages: AtomicU64,
    /// Per-TM traffic: (buffers, bytes) sent through each transmission
    /// module — the observable outcome of the Switch's selection.
    per_tm: Mutex<HashMap<TmId, (u64, u64)>>,
}

impl Stats {
    pub fn new() -> Arc<Self> {
        Arc::new(Stats::default())
    }

    pub fn record_copy(&self, bytes: usize) {
        self.copies.fetch_add(1, Ordering::Relaxed);
        self.copied_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub fn record_buffer_sent(&self) {
        self.buffers_sent.fetch_add(1, Ordering::Relaxed);
    }

    /// Account `bytes` of payload handed to TM `tm`.
    pub fn record_tm_traffic(&self, tm: TmId, bytes: usize) {
        let mut m = self.per_tm.lock();
        let e = m.entry(tm).or_insert((0, 0));
        e.0 += 1;
        e.1 += bytes as u64;
    }

    /// (buffers, bytes) sent through TM `tm` so far.
    pub fn tm_traffic(&self, tm: TmId) -> (u64, u64) {
        self.per_tm.lock().get(&tm).copied().unwrap_or((0, 0))
    }

    /// Every TM with traffic, sorted by id.
    pub fn tm_breakdown(&self) -> Vec<(TmId, u64, u64)> {
        let mut v: Vec<(TmId, u64, u64)> = self
            .per_tm
            .lock()
            .iter()
            .map(|(&tm, &(n, b))| (tm, n, b))
            .collect();
        v.sort_unstable();
        v
    }

    pub fn record_commit(&self) {
        self.commits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_message(&self) {
        self.messages.fetch_add(1, Ordering::Relaxed);
    }

    pub fn copies(&self) -> u64 {
        self.copies.load(Ordering::Relaxed)
    }

    pub fn copied_bytes(&self) -> u64 {
        self.copied_bytes.load(Ordering::Relaxed)
    }

    pub fn buffers_sent(&self) -> u64 {
        self.buffers_sent.load(Ordering::Relaxed)
    }

    pub fn commits(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Snapshot for before/after deltas in tests.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            copies: self.copies(),
            copied_bytes: self.copied_bytes(),
            buffers_sent: self.buffers_sent(),
            commits: self.commits(),
            messages: self.messages(),
        }
    }
}

/// A point-in-time copy of [`Stats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub copies: u64,
    pub copied_bytes: u64,
    pub buffers_sent: u64,
    pub commits: u64,
    pub messages: u64,
}

impl StatsSnapshot {
    /// Counter increments since `earlier`.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            copies: self.copies - earlier.copies,
            copied_bytes: self.copied_bytes - earlier.copied_bytes,
            buffers_sent: self.buffers_sent - earlier.buffers_sent,
            commits: self.commits - earlier.commits,
            messages: self.messages - earlier.messages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = Stats::new();
        s.record_copy(100);
        s.record_copy(28);
        s.record_buffer_sent();
        s.record_commit();
        s.record_message();
        assert_eq!(s.copies(), 2);
        assert_eq!(s.copied_bytes(), 128);
        assert_eq!(s.buffers_sent(), 1);
        assert_eq!(s.commits(), 1);
        assert_eq!(s.messages(), 1);
    }

    #[test]
    fn snapshot_delta() {
        let s = Stats::new();
        s.record_copy(10);
        let a = s.snapshot();
        s.record_copy(5);
        s.record_buffer_sent();
        let d = s.snapshot().since(&a);
        assert_eq!(d.copies, 1);
        assert_eq!(d.copied_bytes, 5);
        assert_eq!(d.buffers_sent, 1);
    }
}
