//! Copy and traffic accounting.
//!
//! The paper's performance argument is largely about *copies avoided*
//! (dynamic buffers, zero-copy rendezvous, static-buffer borrowing on
//! gateways). Every memory-to-memory copy the library performs on behalf of
//! the user is counted here, so tests can assert the zero-copy claims
//! exactly rather than inferring them from timing.

use crate::tm::TmId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One `(count, bytes)` cell of a [`TrafficTable`].
#[derive(Debug, Default)]
struct TrafficCell {
    n: AtomicU64,
    bytes: AtomicU64,
}

/// Fixed table of traffic cells indexed by TM or rail id. Replaces the
/// old `Mutex<HashMap<..>>` breakdowns: recording is two relaxed
/// `fetch_add`s on the hot send path — no lock, no allocation, no
/// contention between rails. Reads are monotonic but a `(count, bytes)`
/// pair is not a consistent snapshot while writers are live; that is
/// fine for observability counters, which tests read quiesced.
#[derive(Debug)]
struct TrafficTable<const N: usize>([TrafficCell; N]);

impl<const N: usize> Default for TrafficTable<N> {
    fn default() -> Self {
        TrafficTable(std::array::from_fn(|_| TrafficCell::default()))
    }
}

impl<const N: usize> TrafficTable<N> {
    fn record(&self, idx: usize, bytes: usize) {
        let cell = &self.0[idx];
        cell.n.fetch_add(1, Ordering::Relaxed);
        cell.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// `(count, bytes)` recorded under `idx`; `(0, 0)` for ids out of
    /// range (a rail id beyond the mask-imposed cap never records).
    fn get(&self, idx: usize) -> (u64, u64) {
        match self.0.get(idx) {
            Some(c) => (c.n.load(Ordering::Relaxed), c.bytes.load(Ordering::Relaxed)),
            None => (0, 0),
        }
    }

    /// Every id with traffic, in id order (the array is the sort).
    fn breakdown(&self) -> Vec<(usize, u64, u64)> {
        self.0
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.n.load(Ordering::Relaxed);
                (n > 0).then(|| (i, n, c.bytes.load(Ordering::Relaxed)))
            })
            .collect()
    }
}

/// Shared counters for one channel (or one gateway pipeline).
#[derive(Debug, Default)]
pub struct Stats {
    /// Software copies performed by the *generic layer* (BMM copies into or
    /// out of static buffers, SAFER defensive copies). Wire transfers and
    /// NIC DMA are *not* copies, and neither are copies a protocol's own
    /// machinery performs below the TM interface — those land in
    /// `tm_copies`/`tm_copied_bytes`.
    copies: AtomicU64,
    /// Total bytes moved by those copies.
    copied_bytes: AtomicU64,
    /// Copies performed *inside* transmission modules by protocol machinery
    /// the generic layer cannot avoid (TCP's kernel-style socket copies, a
    /// static-buffer protocol unpacking an arriving frame). Kept separate so
    /// "CHEAPER ⇒ zero generic-layer copies" is assertable exactly.
    tm_copies: AtomicU64,
    tm_copied_bytes: AtomicU64,
    /// Bytes handed to TMs *by reference* (CHEAPER/LATER blocks that
    /// traveled without a generic-layer copy). `borrowed_bytes /
    /// (borrowed_bytes + copied_bytes)` is the copy-avoidance ratio.
    borrowed_bytes: AtomicU64,
    /// Buffer-pool checkouts served from a free list (warm slab reused).
    pool_hits: AtomicU64,
    /// Buffer-pool checkouts that had to allocate.
    pool_misses: AtomicU64,
    /// Scatter/gather flushes: buffer groups handed to a TM in one
    /// `send_gather` call instead of being coalesced with a memcpy.
    gathers: AtomicU64,
    /// Buffers handed to transmission modules.
    buffers_sent: AtomicU64,
    /// BMM flushes (commit operations).
    commits: AtomicU64,
    /// Messages completed (end_packing calls).
    messages: AtomicU64,
    /// Frames retransmitted by a fault-armed TM (TCP/SBP ARQ). Exactly
    /// zero when no `FaultPlan` is installed — the recovery machinery
    /// never arms on a reliable fabric.
    retransmits: AtomicU64,
    /// Bounded waits (credit, rendezvous, flag, ack) that expired.
    link_timeouts: AtomicU64,
    /// Virtual-channel reroutes onto an alternate route after a hop died.
    failovers: AtomicU64,
    /// Partially reassembled fragments discarded on a failover.
    frags_discarded: AtomicU64,
    /// Per-TM traffic: (buffers, bytes) sent through each transmission
    /// module — the observable outcome of the Switch's selection. One
    /// cell per possible [`TmId`] (a `u8`), updated lock-free.
    per_tm: TrafficTable<256>,
    /// Large CHEAPER blocks striped across rails (multirail channels
    /// only; exactly zero on single-rail channels).
    stripes: AtomicU64,
    /// Per-rail traffic: (chunks, bytes) carried by each rail of a
    /// multirail channel — the observable outcome of the RailScheduler.
    /// One cell per rail id (the live-rail mask caps rails at 64),
    /// updated lock-free.
    per_rail: TrafficTable<64>,
    /// Multi-envelope batch frames flushed to the wire (exactly zero when
    /// batching is off — the layer is bypassed entirely).
    batches: AtomicU64,
    /// Packets that traveled inside those batch frames.
    batched_packets: AtomicU64,
    /// Batch flushes broken down by what closed the batch.
    batch_flush_express: AtomicU64,
    batch_flush_full: AtomicU64,
    batch_flush_explicit: AtomicU64,
    batch_flush_deadline: AtomicU64,
    /// Total on-wire bytes of flushed batch frames (headers + envelope
    /// tables + payloads). With `batch_payload_bytes` this exposes the
    /// framing overhead per wire version, the quantity the compact codec
    /// exists to shrink.
    batch_frame_bytes: AtomicU64,
    /// Payload bytes carried inside those frames.
    batch_payload_bytes: AtomicU64,
}

impl Stats {
    pub fn new() -> Arc<Self> {
        Arc::new(Stats::default())
    }

    pub fn record_copy(&self, bytes: usize) {
        self.copies.fetch_add(1, Ordering::Relaxed);
        self.copied_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Account a copy performed below the TM interface by protocol
    /// machinery (socket copy, static-frame unpack). Not a generic-layer
    /// copy: the emission flags could not have avoided it.
    pub fn record_tm_copy(&self, bytes: usize) {
        self.tm_copies.fetch_add(1, Ordering::Relaxed);
        self.tm_copied_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Account `bytes` handed to a TM by reference (no generic-layer copy).
    pub fn record_borrowed(&self, bytes: usize) {
        self.borrowed_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub fn record_pool_hit(&self) {
        self.pool_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_pool_miss(&self) {
        self.pool_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Account one scatter/gather flush (a buffer group sent without a
    /// coalescing memcpy).
    pub fn record_gather(&self) {
        self.gathers.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_buffer_sent(&self) {
        self.buffers_sent.fetch_add(1, Ordering::Relaxed);
    }

    /// Account `bytes` of payload handed to TM `tm` (lock-free).
    pub fn record_tm_traffic(&self, tm: TmId, bytes: usize) {
        self.per_tm.record(tm as usize, bytes);
    }

    /// (buffers, bytes) sent through TM `tm` so far.
    pub fn tm_traffic(&self, tm: TmId) -> (u64, u64) {
        self.per_tm.get(tm as usize)
    }

    /// Every TM with traffic, sorted by id.
    pub fn tm_breakdown(&self) -> Vec<(TmId, u64, u64)> {
        self.per_tm
            .breakdown()
            .into_iter()
            .map(|(i, n, b)| (i as TmId, n, b))
            .collect()
    }

    /// Account one striped block (a large CHEAPER block split across
    /// rails by the RailScheduler).
    pub fn record_stripe(&self) {
        self.stripes.fetch_add(1, Ordering::Relaxed);
    }

    /// Account `bytes` (headers + payload) carried by rail `rail`
    /// (lock-free — concurrent rail sender threads never serialize here).
    pub fn record_rail_traffic(&self, rail: usize, bytes: usize) {
        self.per_rail.record(rail, bytes);
    }

    /// (chunks, bytes) carried by rail `rail` so far.
    pub fn rail_traffic(&self, rail: usize) -> (u64, u64) {
        self.per_rail.get(rail)
    }

    /// Every rail with traffic, sorted by rail id.
    pub fn rail_breakdown(&self) -> Vec<(usize, u64, u64)> {
        self.per_rail.breakdown()
    }

    /// Relative spread of per-rail byte counts: `(max − min) / max` over
    /// the rails that carried traffic. 0.0 for a perfectly balanced
    /// schedule — and when fewer than two rails carried anything.
    pub fn rail_imbalance(&self) -> f64 {
        let touched = self.per_rail.breakdown();
        if touched.len() < 2 {
            return 0.0;
        }
        let max = touched.iter().map(|&(_, _, b)| b).max().unwrap_or(0);
        let min = touched.iter().map(|&(_, _, b)| b).min().unwrap_or(0);
        if max == 0 {
            0.0
        } else {
            (max - min) as f64 / max as f64
        }
    }

    pub fn stripes(&self) -> u64 {
        self.stripes.load(Ordering::Relaxed)
    }

    /// Account one flushed batch frame of `packets` packets, closed for
    /// `reason`.
    pub fn record_batch(&self, reason: crate::batch::FlushReason, packets: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_packets
            .fetch_add(packets as u64, Ordering::Relaxed);
        let ctr = match reason {
            crate::batch::FlushReason::Express => &self.batch_flush_express,
            crate::batch::FlushReason::Full => &self.batch_flush_full,
            crate::batch::FlushReason::Explicit => &self.batch_flush_explicit,
            crate::batch::FlushReason::Deadline => &self.batch_flush_deadline,
        };
        ctr.fetch_add(1, Ordering::Relaxed);
    }

    /// Account one flushed batch frame's on-wire size: `frame` total
    /// bytes, of which `payload` were packet payloads (the rest is
    /// framing — header plus envelope table).
    pub fn record_batch_bytes(&self, frame: usize, payload: usize) {
        self.batch_frame_bytes
            .fetch_add(frame as u64, Ordering::Relaxed);
        self.batch_payload_bytes
            .fetch_add(payload as u64, Ordering::Relaxed);
    }

    pub fn batch_frame_bytes(&self) -> u64 {
        self.batch_frame_bytes.load(Ordering::Relaxed)
    }

    pub fn batch_payload_bytes(&self) -> u64 {
        self.batch_payload_bytes.load(Ordering::Relaxed)
    }

    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    pub fn batched_packets(&self) -> u64 {
        self.batched_packets.load(Ordering::Relaxed)
    }

    /// Flush counts by reason: `(express, full, explicit, deadline)`.
    pub fn batch_flush_reasons(&self) -> (u64, u64, u64, u64) {
        (
            self.batch_flush_express.load(Ordering::Relaxed),
            self.batch_flush_full.load(Ordering::Relaxed),
            self.batch_flush_explicit.load(Ordering::Relaxed),
            self.batch_flush_deadline.load(Ordering::Relaxed),
        )
    }

    pub fn record_commit(&self) {
        self.commits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_message(&self) {
        self.messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Account `n` retransmitted frames (fault-armed ARQ only).
    pub fn record_retransmits(&self, n: u64) {
        if n > 0 {
            self.retransmits.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Account one expired bounded wait (credit/rendezvous/ack timeout).
    pub fn record_link_timeout(&self) {
        self.link_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Account one virtual-channel failover onto an alternate route.
    pub fn record_failover(&self) {
        self.failovers.fetch_add(1, Ordering::Relaxed);
    }

    /// Account one partial fragment discarded during recovery.
    pub fn record_frag_discarded(&self) {
        self.frags_discarded.fetch_add(1, Ordering::Relaxed);
    }

    pub fn copies(&self) -> u64 {
        self.copies.load(Ordering::Relaxed)
    }

    pub fn copied_bytes(&self) -> u64 {
        self.copied_bytes.load(Ordering::Relaxed)
    }

    pub fn tm_copies(&self) -> u64 {
        self.tm_copies.load(Ordering::Relaxed)
    }

    pub fn tm_copied_bytes(&self) -> u64 {
        self.tm_copied_bytes.load(Ordering::Relaxed)
    }

    pub fn borrowed_bytes(&self) -> u64 {
        self.borrowed_bytes.load(Ordering::Relaxed)
    }

    pub fn pool_hits(&self) -> u64 {
        self.pool_hits.load(Ordering::Relaxed)
    }

    pub fn pool_misses(&self) -> u64 {
        self.pool_misses.load(Ordering::Relaxed)
    }

    pub fn gathers(&self) -> u64 {
        self.gathers.load(Ordering::Relaxed)
    }

    /// Fraction of pool checkouts served from a warm slab, in [0, 1].
    /// 1.0 when the pool was never used (nothing was missed).
    pub fn pool_hit_rate(&self) -> f64 {
        let h = self.pool_hits();
        let m = self.pool_misses();
        if h + m == 0 {
            1.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    pub fn buffers_sent(&self) -> u64 {
        self.buffers_sent.load(Ordering::Relaxed)
    }

    pub fn commits(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    pub fn retransmits(&self) -> u64 {
        self.retransmits.load(Ordering::Relaxed)
    }

    pub fn link_timeouts(&self) -> u64 {
        self.link_timeouts.load(Ordering::Relaxed)
    }

    pub fn failovers(&self) -> u64 {
        self.failovers.load(Ordering::Relaxed)
    }

    pub fn frags_discarded(&self) -> u64 {
        self.frags_discarded.load(Ordering::Relaxed)
    }

    /// Snapshot for before/after deltas in tests.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            copies: self.copies(),
            copied_bytes: self.copied_bytes(),
            tm_copies: self.tm_copies(),
            tm_copied_bytes: self.tm_copied_bytes(),
            borrowed_bytes: self.borrowed_bytes(),
            pool_hits: self.pool_hits(),
            pool_misses: self.pool_misses(),
            gathers: self.gathers(),
            buffers_sent: self.buffers_sent(),
            commits: self.commits(),
            messages: self.messages(),
            retransmits: self.retransmits(),
            link_timeouts: self.link_timeouts(),
            failovers: self.failovers(),
            frags_discarded: self.frags_discarded(),
            stripes: self.stripes(),
            batches: self.batches(),
            batched_packets: self.batched_packets(),
            batch_flush_express: self.batch_flush_express.load(Ordering::Relaxed),
            batch_flush_full: self.batch_flush_full.load(Ordering::Relaxed),
            batch_flush_explicit: self.batch_flush_explicit.load(Ordering::Relaxed),
            batch_flush_deadline: self.batch_flush_deadline.load(Ordering::Relaxed),
            batch_frame_bytes: self.batch_frame_bytes(),
            batch_payload_bytes: self.batch_payload_bytes(),
        }
    }
}

/// A point-in-time copy of [`Stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub copies: u64,
    pub copied_bytes: u64,
    pub tm_copies: u64,
    pub tm_copied_bytes: u64,
    pub borrowed_bytes: u64,
    pub pool_hits: u64,
    pub pool_misses: u64,
    pub gathers: u64,
    pub buffers_sent: u64,
    pub commits: u64,
    pub messages: u64,
    pub retransmits: u64,
    pub link_timeouts: u64,
    pub failovers: u64,
    pub frags_discarded: u64,
    pub stripes: u64,
    pub batches: u64,
    pub batched_packets: u64,
    pub batch_flush_express: u64,
    pub batch_flush_full: u64,
    pub batch_flush_explicit: u64,
    pub batch_flush_deadline: u64,
    pub batch_frame_bytes: u64,
    pub batch_payload_bytes: u64,
}

impl StatsSnapshot {
    /// Counter increments since `earlier`.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            copies: self.copies - earlier.copies,
            copied_bytes: self.copied_bytes - earlier.copied_bytes,
            tm_copies: self.tm_copies - earlier.tm_copies,
            tm_copied_bytes: self.tm_copied_bytes - earlier.tm_copied_bytes,
            borrowed_bytes: self.borrowed_bytes - earlier.borrowed_bytes,
            pool_hits: self.pool_hits - earlier.pool_hits,
            pool_misses: self.pool_misses - earlier.pool_misses,
            gathers: self.gathers - earlier.gathers,
            buffers_sent: self.buffers_sent - earlier.buffers_sent,
            commits: self.commits - earlier.commits,
            messages: self.messages - earlier.messages,
            retransmits: self.retransmits - earlier.retransmits,
            link_timeouts: self.link_timeouts - earlier.link_timeouts,
            failovers: self.failovers - earlier.failovers,
            frags_discarded: self.frags_discarded - earlier.frags_discarded,
            stripes: self.stripes - earlier.stripes,
            batches: self.batches - earlier.batches,
            batched_packets: self.batched_packets - earlier.batched_packets,
            batch_flush_express: self.batch_flush_express - earlier.batch_flush_express,
            batch_flush_full: self.batch_flush_full - earlier.batch_flush_full,
            batch_flush_explicit: self.batch_flush_explicit - earlier.batch_flush_explicit,
            batch_flush_deadline: self.batch_flush_deadline - earlier.batch_flush_deadline,
            batch_frame_bytes: self.batch_frame_bytes - earlier.batch_frame_bytes,
            batch_payload_bytes: self.batch_payload_bytes - earlier.batch_payload_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = Stats::new();
        s.record_copy(100);
        s.record_copy(28);
        s.record_buffer_sent();
        s.record_commit();
        s.record_message();
        assert_eq!(s.copies(), 2);
        assert_eq!(s.copied_bytes(), 128);
        assert_eq!(s.buffers_sent(), 1);
        assert_eq!(s.commits(), 1);
        assert_eq!(s.messages(), 1);
    }

    #[test]
    fn snapshot_delta() {
        let s = Stats::new();
        s.record_copy(10);
        let a = s.snapshot();
        s.record_copy(5);
        s.record_buffer_sent();
        let d = s.snapshot().since(&a);
        assert_eq!(d.copies, 1);
        assert_eq!(d.copied_bytes, 5);
        assert_eq!(d.buffers_sent, 1);
    }

    #[test]
    fn tm_copies_are_separate_from_generic_copies() {
        let s = Stats::new();
        s.record_copy(100);
        s.record_tm_copy(7);
        s.record_tm_copy(9);
        assert_eq!(s.copies(), 1);
        assert_eq!(s.copied_bytes(), 100);
        assert_eq!(s.tm_copies(), 2);
        assert_eq!(s.tm_copied_bytes(), 16);
    }

    #[test]
    fn borrow_pool_and_gather_counters() {
        let s = Stats::new();
        s.record_borrowed(1 << 20);
        s.record_pool_hit();
        s.record_pool_hit();
        s.record_pool_hit();
        s.record_pool_miss();
        s.record_gather();
        assert_eq!(s.borrowed_bytes(), 1 << 20);
        assert_eq!(s.pool_hits(), 3);
        assert_eq!(s.pool_misses(), 1);
        assert_eq!(s.gathers(), 1);
        assert!((s.pool_hit_rate() - 0.75).abs() < 1e-9);
        let d = s.snapshot().since(&StatsSnapshot::default());
        assert_eq!(d.pool_hits, 3);
        assert_eq!(d.gathers, 1);
        assert_eq!(d.borrowed_bytes, 1 << 20);
    }

    #[test]
    fn rail_counters_and_imbalance() {
        let s = Stats::new();
        assert_eq!(s.rail_imbalance(), 0.0, "no rails yet");
        s.record_rail_traffic(0, 1000);
        assert_eq!(s.rail_imbalance(), 0.0, "one rail is never imbalanced");
        s.record_rail_traffic(1, 500);
        s.record_rail_traffic(0, 1000);
        s.record_stripe();
        assert_eq!(s.stripes(), 1);
        assert_eq!(s.rail_traffic(0), (2, 2000));
        assert_eq!(s.rail_traffic(1), (1, 500));
        assert_eq!(s.rail_traffic(7), (0, 0));
        assert_eq!(s.rail_breakdown(), vec![(0, 2, 2000), (1, 1, 500)]);
        assert!((s.rail_imbalance() - 0.75).abs() < 1e-9);
        let d = s.snapshot().since(&StatsSnapshot::default());
        assert_eq!(d.stripes, 1);
    }

    #[test]
    fn batch_counters_accumulate_by_reason() {
        use crate::batch::FlushReason;
        let s = Stats::new();
        s.record_batch(FlushReason::Full, 16);
        s.record_batch(FlushReason::Express, 2);
        s.record_batch(FlushReason::Deadline, 3);
        s.record_batch(FlushReason::Explicit, 1);
        s.record_batch_bytes(200, 176);
        s.record_batch_bytes(100, 90);
        assert_eq!(s.batches(), 4);
        assert_eq!(s.batched_packets(), 22);
        assert_eq!(s.batch_flush_reasons(), (1, 1, 1, 1));
        assert_eq!(s.batch_frame_bytes(), 300);
        assert_eq!(s.batch_payload_bytes(), 266);
        let d = s.snapshot().since(&StatsSnapshot::default());
        assert_eq!(d.batches, 4);
        assert_eq!(d.batched_packets, 22);
        assert_eq!(d.batch_flush_full, 1);
        assert_eq!(d.batch_flush_deadline, 1);
        assert_eq!(d.batch_frame_bytes, 300);
        assert_eq!(d.batch_payload_bytes, 266);
    }

    #[test]
    fn hit_rate_with_no_traffic_is_one() {
        let s = Stats::new();
        assert_eq!(s.pool_hit_rate(), 1.0);
    }

    #[test]
    fn robustness_counters_accumulate() {
        let s = Stats::new();
        s.record_retransmits(0); // no-op
        s.record_retransmits(3);
        s.record_link_timeout();
        s.record_failover();
        s.record_frag_discarded();
        s.record_frag_discarded();
        assert_eq!(s.retransmits(), 3);
        assert_eq!(s.link_timeouts(), 1);
        assert_eq!(s.failovers(), 1);
        assert_eq!(s.frags_discarded(), 2);
        let d = s.snapshot().since(&StatsSnapshot::default());
        assert_eq!(d.retransmits, 3);
        assert_eq!(d.frags_discarded, 2);
    }
}
