//! Buffer Management Modules (paper §3.4).
//!
//! A BMM implements one generic, protocol-independent buffer policy. Each
//! TM names the policy that feeds it best (`SendPolicy`), and the generic
//! layer instantiates a BMM of that shape per in-flight message:
//!
//! * **Eager** — every packed block is handed to the TM as its own dynamic
//!   buffer immediately (right for BIP's long path, where per-transfer
//!   rendezvous cost dwarfs any grouping gain);
//! * **Aggregate** — blocks are collected and flushed as one buffer group,
//!   exploiting the TM's native scatter/gather (SISCI's back-to-back PIO
//!   stream, TCP's writev);
//! * **StaticCopy** — blocks are copied into protocol-provided static
//!   buffers obtained from the TM, packed tightly, and shipped when a
//!   buffer fills or the message commits (BIP short, VIA, SBP).
//!
//! `send_LATER` blocks are never read before the flush: once a LATER block
//! is queued, all later blocks queue behind it so commit-time draining
//! preserves packing order.

use crate::config::HostModel;
use crate::error::MadResult;
use crate::flags::{RecvMode, SendMode};
use crate::pool::{BufPool, PooledBuf};
use crate::stats::Stats;
use crate::tm::{StaticBuf, TmId, TransmissionModule};
use bytes::Bytes;
use madsim_net::time;
use madsim_net::NodeId;
use std::sync::Arc;

/// The buffer-management policy a TM requests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendPolicy {
    Eager,
    Aggregate,
    StaticCopy,
}

enum Block<'a> {
    Borrowed(&'a [u8]),
    Owned(Bytes),
    Pooled(PooledBuf),
}

impl Block<'_> {
    fn as_slice(&self) -> &[u8] {
        match self {
            Block::Borrowed(b) => b,
            Block::Owned(b) => b,
            Block::Pooled(b) => b.filled(),
        }
    }

    /// True when the TM will read straight from user memory (no
    /// generic-layer copy happened to capture this block).
    fn is_borrowed(&self) -> bool {
        matches!(self, Block::Borrowed(_))
    }
}

/// Send-side BMM instance for one in-flight message on one TM.
pub struct SendBmm<'a> {
    policy: SendPolicy,
    tm: Arc<dyn TransmissionModule>,
    tm_id: TmId,
    dst: NodeId,
    host: HostModel,
    stats: Arc<Stats>,
    /// Pool serving SAFER defensive copies (and any other buffer the BMM
    /// must own), so steady-state capture reuses warm slabs.
    pool: BufPool,
    /// Blocks not yet handed to the TM (aggregation queue, or blocks stuck
    /// behind a `send_LATER` block).
    pending: Vec<Block<'a>>,
    /// Whether `pending` currently contains a LATER block (forces FIFO
    /// queueing of everything behind it).
    pending_has_later: bool,
    /// Current partially-filled static buffer (StaticCopy only).
    staged: Option<StaticBuf>,
}

impl<'a> SendBmm<'a> {
    pub fn new(
        policy: SendPolicy,
        tm: Arc<dyn TransmissionModule>,
        dst: NodeId,
        host: HostModel,
        stats: Arc<Stats>,
    ) -> Self {
        Self::with_tm_id(policy, tm, 0, dst, host, stats)
    }

    /// [`new`](Self::new) with the TM's id for per-TM traffic accounting.
    pub fn with_tm_id(
        policy: SendPolicy,
        tm: Arc<dyn TransmissionModule>,
        tm_id: TmId,
        dst: NodeId,
        host: HostModel,
        stats: Arc<Stats>,
    ) -> Self {
        let pool = BufPool::new(Arc::clone(&stats));
        Self::with_pool(policy, tm, tm_id, dst, host, stats, pool)
    }

    /// [`with_tm_id`](Self::with_tm_id) sharing an existing buffer pool —
    /// the channel-lifetime pool, so consecutive messages reuse slabs.
    pub fn with_pool(
        policy: SendPolicy,
        tm: Arc<dyn TransmissionModule>,
        tm_id: TmId,
        dst: NodeId,
        host: HostModel,
        stats: Arc<Stats>,
        pool: BufPool,
    ) -> Self {
        SendBmm {
            policy,
            tm,
            tm_id,
            dst,
            host,
            stats,
            pool,
            pending: Vec::new(),
            pending_has_later: false,
            staged: None,
        }
    }

    /// Queue or transmit one user block according to the policy and the
    /// block's emission mode.
    pub fn pack(&mut self, data: &'a [u8], mode: SendMode) -> MadResult<()> {
        match mode {
            SendMode::Later => {
                // Defer the read to flush time, and everything after it.
                self.pending.push(Block::Borrowed(data));
                self.pending_has_later = true;
                Ok(())
            }
            SendMode::Safer => {
                let capture_by_processing = match self.policy {
                    // The static copy *is* the capture; eager transmission
                    // captures synchronously — but only if nothing is
                    // queued behind a LATER block.
                    SendPolicy::StaticCopy | SendPolicy::Eager => !self.pending_has_later,
                    SendPolicy::Aggregate => false,
                };
                if capture_by_processing {
                    self.pack_now(Block::Borrowed(data))
                } else {
                    let owned = self.pool.checkout_from(data);
                    self.charge_copy(data.len());
                    self.pack_now(Block::Pooled(owned))
                }
            }
            SendMode::Cheaper => self.pack_now(Block::Borrowed(data)),
        }
    }

    /// Queue a block the library already owns: posted nonblocking ops
    /// capture their payloads as `Bytes` at post time and replay them
    /// through here when the progress engine drives the op's frames on
    /// its rail's TM stack.
    pub fn pack_owned(&mut self, data: Bytes) -> MadResult<()> {
        self.pack_now(Block::Owned(data))
    }

    /// Queue a library-owned pooled block (e.g. the internal message
    /// header, built directly in pool memory — no intermediate allocation).
    pub fn pack_pooled(&mut self, data: PooledBuf) -> MadResult<()> {
        self.pack_now(Block::Pooled(data))
    }

    /// The pool this BMM captures into.
    pub fn pool(&self) -> &BufPool {
        &self.pool
    }

    /// `send_SAFER` capture through a short-lived borrow: the data never
    /// outlives this call. Depending on the policy it is copied into pool
    /// memory, staged into this rail's static buffers, or transmitted
    /// immediately on this BMM's TM. Blocks eligible for wire-level
    /// coalescing are diverted to the batch layer before a BMM ever sees
    /// them, so a SAFER block arriving here always travels as its own
    /// frame on its own rail.
    pub fn pack_safer_now(&mut self, data: &[u8]) -> MadResult<()> {
        let capture_by_processing = match self.policy {
            SendPolicy::StaticCopy | SendPolicy::Eager => !self.pending_has_later,
            SendPolicy::Aggregate => false,
        };
        if capture_by_processing {
            match self.policy {
                SendPolicy::Eager => {
                    self.stats.record_borrowed(data.len());
                    self.tm.send_buffer(self.dst, data)?;
                    self.stats.record_buffer_sent();
                    self.stats.record_tm_traffic(self.tm_id, data.len());
                    Ok(())
                }
                SendPolicy::StaticCopy => self.stage(data),
                SendPolicy::Aggregate => unreachable!(),
            }
        } else {
            let owned = self.pool.checkout_from(data);
            self.charge_copy(data.len());
            self.pack_now(Block::Pooled(owned))
        }
    }

    fn pack_now(&mut self, block: Block<'a>) -> MadResult<()> {
        if self.pending_has_later {
            // Preserve order behind the deferred LATER block.
            self.pending.push(block);
            return Ok(());
        }
        match self.policy {
            SendPolicy::Eager => {
                if block.is_borrowed() {
                    self.stats.record_borrowed(block.as_slice().len());
                }
                self.tm.send_buffer(self.dst, block.as_slice())?;
                self.stats.record_buffer_sent();
                self.stats
                    .record_tm_traffic(self.tm_id, block.as_slice().len());
                Ok(())
            }
            SendPolicy::Aggregate => {
                self.pending.push(block);
                Ok(())
            }
            SendPolicy::StaticCopy => self.stage(block.as_slice()),
        }
    }

    /// Copy a block into static buffers, shipping each buffer as it fills.
    fn stage(&mut self, mut data: &[u8]) -> MadResult<()> {
        while !data.is_empty() {
            if self.staged.is_none() {
                self.staged = Some(self.tm.obtain_static_buffer());
            }
            let buf = self.staged.as_mut().expect("just obtained");
            let take = data.len().min(buf.spare());
            buf.spare_mut()[..take].copy_from_slice(&data[..take]);
            buf.advance(take);
            let full = buf.spare() == 0;
            self.charge_copy(take);
            data = &data[take..];
            if full {
                let full = self.staged.take().expect("present");
                self.stats.record_tm_traffic(self.tm_id, full.len());
                self.tm.send_static_buffer(self.dst, full)?;
                self.stats.record_buffer_sent();
            }
        }
        Ok(())
    }

    /// Commit: drain every queued block and partial buffer to the TM.
    pub fn flush(&mut self) -> MadResult<()> {
        if self.pending_has_later || !self.pending.is_empty() {
            let pending = std::mem::take(&mut self.pending);
            self.pending_has_later = false;
            match self.policy {
                SendPolicy::Eager => {
                    for b in &pending {
                        if b.is_borrowed() {
                            self.stats.record_borrowed(b.as_slice().len());
                        }
                        self.tm.send_buffer(self.dst, b.as_slice())?;
                        self.stats.record_buffer_sent();
                        self.stats.record_tm_traffic(self.tm_id, b.as_slice().len());
                    }
                }
                SendPolicy::Aggregate => {
                    // Scatter/gather flush: the TM reads each block from
                    // where it lies — no coalescing memcpy on this layer.
                    let slices: Vec<&[u8]> = pending.iter().map(|b| b.as_slice()).collect();
                    let total: usize = slices.iter().map(|s| s.len()).sum();
                    for b in &pending {
                        if b.is_borrowed() {
                            self.stats.record_borrowed(b.as_slice().len());
                        }
                    }
                    self.tm.send_gather(self.dst, &slices)?;
                    if self.tm.caps().gather {
                        self.stats.record_gather();
                    }
                    self.stats.record_buffer_sent();
                    self.stats.record_tm_traffic(self.tm_id, total);
                }
                SendPolicy::StaticCopy => {
                    for b in &pending {
                        self.stage(b.as_slice())?;
                    }
                }
            }
        }
        if let Some(buf) = self.staged.take() {
            if buf.is_empty() {
                self.tm.release_static_buffer(buf);
            } else {
                self.stats.record_tm_traffic(self.tm_id, buf.len());
                self.tm.send_static_buffer(self.dst, buf)?;
                self.stats.record_buffer_sent();
            }
        }
        self.stats.record_commit();
        Ok(())
    }

    fn charge_copy(&self, len: usize) {
        time::advance(self.host.memcpy(len));
        self.stats.record_copy(len);
    }
}

/// Receive-side BMM instance for one in-flight message on one TM.
pub struct RecvBmm<'a> {
    policy: SendPolicy,
    tm: Arc<dyn TransmissionModule>,
    src: NodeId,
    host: HostModel,
    stats: Arc<Stats>,
    /// `receive_CHEAPER` destinations whose extraction is deferred.
    deferred: Vec<&'a mut [u8]>,
    /// Current partially-consumed received static buffer and read offset.
    rx: Option<(StaticBuf, usize)>,
}

impl<'a> RecvBmm<'a> {
    pub fn new(
        policy: SendPolicy,
        tm: Arc<dyn TransmissionModule>,
        src: NodeId,
        host: HostModel,
        stats: Arc<Stats>,
    ) -> Self {
        RecvBmm {
            policy,
            tm,
            src,
            host,
            stats,
            deferred: Vec::new(),
            rx: None,
        }
    }

    /// Register or satisfy one unpack destination.
    pub fn unpack(&mut self, dst: &'a mut [u8], mode: RecvMode) -> MadResult<()> {
        match self.policy {
            SendPolicy::StaticCopy => {
                // Extraction from an arrived protocol buffer is a local
                // copy; both modes extract on the spot.
                self.extract(dst)
            }
            SendPolicy::Eager | SendPolicy::Aggregate => match mode {
                RecvMode::Express => {
                    self.deferred.push(dst);
                    self.checkout()
                }
                RecvMode::Cheaper => {
                    self.deferred.push(dst);
                    Ok(())
                }
            },
        }
    }

    /// Immediately fill a destination without retaining the borrow —
    /// the `receive_EXPRESS` path usable before the message ends (length
    /// headers, the internal message header). Equivalent to a checkout with
    /// `dst` appended to the deferred list.
    pub fn unpack_express_now(&mut self, dst: &mut [u8]) -> MadResult<()> {
        match self.policy {
            SendPolicy::StaticCopy => self.extract(dst),
            SendPolicy::Eager => {
                for d in self.deferred.drain(..) {
                    self.stats.record_borrowed(d.len());
                    self.tm.receive_buffer(self.src, d)?;
                }
                self.stats.record_borrowed(dst.len());
                self.tm.receive_buffer(self.src, dst)
            }
            SendPolicy::Aggregate => {
                let mut group: Vec<&mut [u8]> = self.deferred.drain(..).collect();
                group.push(dst);
                for d in &group {
                    self.stats.record_borrowed(d.len());
                }
                self.tm.receive_sub_buffer_group(self.src, &mut group)
            }
        }
    }

    /// Fill `dst` from received static buffers, fetching as needed.
    fn extract(&mut self, dst: &mut [u8]) -> MadResult<()> {
        let mut filled = 0;
        while filled < dst.len() {
            if self.rx.as_ref().is_none_or(|(b, off)| *off >= b.len()) {
                if let Some((old, _)) = self.rx.take() {
                    self.tm.release_static_buffer(old);
                }
                let fresh = self.tm.receive_static_buffer(self.src)?;
                self.rx = Some((fresh, 0));
            }
            let (buf, off) = self.rx.as_mut().expect("just fetched");
            let avail = buf.len() - *off;
            let take = avail.min(dst.len() - filled);
            dst[filled..filled + take].copy_from_slice(&buf.filled()[*off..*off + take]);
            *off += take;
            filled += take;
        }
        if filled > 0 {
            self.charge_copy(filled);
        }
        Ok(())
    }

    /// Checkout: extract every deferred destination, in order.
    pub fn checkout(&mut self) -> MadResult<()> {
        match self.policy {
            SendPolicy::Eager => {
                for d in self.deferred.drain(..) {
                    self.stats.record_borrowed(d.len());
                    self.tm.receive_buffer(self.src, d)?;
                }
            }
            SendPolicy::Aggregate => {
                if !self.deferred.is_empty() {
                    let mut group: Vec<&mut [u8]> = self.deferred.drain(..).collect();
                    for d in &group {
                        self.stats.record_borrowed(d.len());
                    }
                    self.tm.receive_sub_buffer_group(self.src, &mut group)?;
                }
            }
            SendPolicy::StaticCopy => {
                // Extraction was immediate; verify the pack/unpack symmetry
                // contract: a flushed buffer must be fully consumed.
                if let Some((buf, off)) = self.rx.take() {
                    assert_eq!(
                        off,
                        buf.len(),
                        "static buffer not fully consumed at checkout: \
                         asymmetric pack/unpack sequences?"
                    );
                    self.tm.release_static_buffer(buf);
                }
            }
        }
        Ok(())
    }

    fn charge_copy(&self, len: usize) {
        time::advance(self.host.memcpy(len));
        self.stats.record_copy(len);
    }
}
