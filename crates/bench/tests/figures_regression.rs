//! The paper's headline claims as regression tests: if a change to the
//! simulator or the library breaks a *shape* the paper reports, these fail.
//! (Absolute tolerances are generous; shapes are exact.)

use bench::experiments::{self, ForwardDir};
use madeleine::Protocol;
use madsim_net::perf::mibps;
use madsim_net::time::VDuration;

fn bw_of(t_us: f64, n: usize) -> f64 {
    mibps(n, VDuration::from_micros_f64(t_us))
}

/// Fig. 10: forwarding bandwidth grows with packet size; the 128 kB
/// asymptote lands near the paper's 49.5 MB/s.
#[test]
fn fig10_shape() {
    let msg = 1 << 20;
    let mut prev = 0.0;
    for packet in [8192usize, 32768, 131072] {
        let t = experiments::forwarding_oneway_us(ForwardDir::SciToMyrinet, packet, msg);
        let bw = bw_of(t, msg);
        assert!(
            bw > prev * 0.97,
            "fig10 must not decrease with packet size: {bw:.1} after {prev:.1}"
        );
        prev = bw;
    }
    assert!(
        (43.0..54.0).contains(&prev),
        "fig10 128 kB asymptote {prev:.1} MiB/s outside 43–54 (paper: 49.5)"
    );
}

/// Fig. 11: the Myrinet→SCI direction is distinctly slower than SCI→
/// Myrinet (the DMA-priority asymmetry), and the 8 kB point is near the
/// paper's 29 MB/s.
#[test]
fn fig11_asymmetry() {
    let msg = 1 << 20;
    let fwd = bw_of(
        experiments::forwarding_oneway_us(ForwardDir::SciToMyrinet, 131072, msg),
        msg,
    );
    let rev = bw_of(
        experiments::forwarding_oneway_us(ForwardDir::MyrinetToSci, 131072, msg),
        msg,
    );
    assert!(
        rev < fwd * 0.9,
        "Myrinet->SCI ({rev:.1}) must be clearly slower than SCI->Myrinet ({fwd:.1})"
    );
    let small = bw_of(
        experiments::forwarding_oneway_us(ForwardDir::MyrinetToSci, 8192, 262144),
        262144,
    );
    assert!(
        (24.0..34.0).contains(&small),
        "fig11 8 kB point {small:.1} MiB/s outside 24–34 (paper: 29)"
    );
}

/// §6.2.1: Madeleine/SCI and Madeleine/Myrinet are comparable at 16 kB,
/// with SCI winning below and Myrinet above.
#[test]
fn network_crossover_near_16kb() {
    let sci_8k = experiments::madeleine_oneway_us(Protocol::Sisci, 8192, false);
    let myr_8k = experiments::madeleine_oneway_us(Protocol::Bip, 8192, false);
    assert!(sci_8k < myr_8k, "SCI must win at 8 kB");
    let sci_16k = experiments::madeleine_oneway_us(Protocol::Sisci, 16384, false);
    let myr_16k = experiments::madeleine_oneway_us(Protocol::Bip, 16384, false);
    let ratio = sci_16k / myr_16k;
    assert!(
        (0.8..1.4).contains(&ratio),
        "16 kB should be comparable (ratio {ratio:.2})"
    );
    let sci_64k = experiments::madeleine_oneway_us(Protocol::Sisci, 65536, false);
    let myr_64k = experiments::madeleine_oneway_us(Protocol::Bip, 65536, false);
    assert!(myr_64k < sci_64k, "Myrinet must win at 64 kB");
}

/// Fig. 6: MPICH/Madeleine loses on latency but provides the best
/// bandwidth from 32 kB up.
#[test]
fn fig6_crossover_at_32kb() {
    let sci_mpich = mad_mpi::baselines::sci_mpich_curve();
    let scampi = mad_mpi::baselines::scampi_curve();
    // Latency: baselines faster at 4 B.
    let chmad_4 = experiments::mpi_oneway_us(Protocol::Sisci, 4);
    assert!(sci_mpich.time_for(4).as_micros_f64() < chmad_4);
    assert!(scampi.time_for(4).as_micros_f64() < chmad_4);
    // At 16 kB the baselines still lead.
    let chmad_16k = bw_of(experiments::mpi_oneway_us(Protocol::Sisci, 16384), 16384);
    assert!(sci_mpich.bandwidth_at(16384) > chmad_16k);
    assert!(scampi.bandwidth_at(16384) > chmad_16k);
    // From 32 kB, ch_mad is best (the paper's headline).
    for n in [32768usize, 131072, 1 << 20] {
        let chmad = bw_of(experiments::mpi_oneway_us(Protocol::Sisci, n), n);
        assert!(
            chmad > sci_mpich.bandwidth_at(n) && chmad > scampi.bandwidth_at(n),
            "ch_mad must lead at {n}: {chmad:.1} vs {:.1}/{:.1}",
            sci_mpich.bandwidth_at(n),
            scampi.bandwidth_at(n)
        );
    }
}

/// Fig. 7: Nexus/Mad/SISCI minimal latency below 25 µs; the TCP variant an
/// order of magnitude slower; bulk bandwidth close to raw Madeleine.
#[test]
fn fig7_claims() {
    let sci = experiments::nexus_oneway_us(Protocol::Sisci, 4);
    assert!(sci < 25.0, "Nexus/Mad/SISCI latency {sci:.1} >= 25 us");
    let tcp = experiments::nexus_oneway_us(Protocol::Tcp, 4);
    assert!(tcp > sci * 4.0);
    let bulk = bw_of(
        experiments::nexus_oneway_us(Protocol::Sisci, 1 << 20),
        1 << 20,
    );
    assert!(bulk > 75.0, "Nexus bulk bandwidth {bulk:.1} too low");
}

/// §5.2.1: the SCI DMA mode stays in the paper's measured band and loses
/// to PIO — the reason the TM ships disabled.
#[test]
fn sci_dma_band() {
    let n = 1 << 18;
    let dma = bw_of(
        experiments::madeleine_oneway_us(Protocol::Sisci, n, true),
        n,
    );
    let pio = bw_of(
        experiments::madeleine_oneway_us(Protocol::Sisci, n, false),
        n,
    );
    assert!((26.0..36.0).contains(&dma), "DMA {dma:.1} outside 26–36");
    assert!(pio > dma * 2.0);
}

/// Gateway bandwidth control: a binding admission limit caps throughput at
/// (about) the limit — the regulation mechanism works even though, in this
/// bus model, regulation alone does not recover Fig. 11's lost bandwidth.
#[test]
fn bandwidth_control_regulates() {
    use mad_gateway::GatewayConfig;
    let msg = 262144;
    let t = experiments::forwarding_oneway_us_with(
        ForwardDir::MyrinetToSci,
        16384,
        msg,
        GatewayConfig {
            inbound_limit_mibps: Some(8.0),
            depth: 2,
        },
    );
    let bw = bw_of(t, msg);
    assert!(
        (6.0..9.5).contains(&bw),
        "8 MiB/s admission limit produced {bw:.1} MiB/s"
    );
}
