//! # bench — the experiment harness regenerating every table and figure of
//! the Madeleine II paper
//!
//! Each harness in [`experiments`] measures, in virtual time through the
//! full simulated stack, the series the corresponding figure plots, and
//! returns structured [`Series`] data. The `figures` binary prints them as
//! tables; `EXPERIMENTS.md` records paper-vs-measured values. Criterion
//! benches under `benches/` wrap the same harnesses.

pub mod experiments;
pub mod table;
pub mod workloads;

pub use experiments::*;
pub use table::{print_table, Point, Series};
