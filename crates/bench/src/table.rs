//! Structured experiment output: series of (x, y) points with labels,
//! printable as aligned tables and serializable for EXPERIMENTS.md.

use serde::Serialize;

/// One measured point.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Point {
    /// Message or packet size in bytes.
    pub x: usize,
    /// Measured value (µs or MiB/s depending on the series).
    pub y: f64,
}

/// One plotted curve of a figure.
#[derive(Clone, Debug, Serialize)]
pub struct Series {
    pub name: String,
    /// Unit of `y`: `"us"` or `"MiB/s"`.
    pub unit: &'static str,
    pub points: Vec<Point>,
}

impl Series {
    pub fn new(name: impl Into<String>, unit: &'static str) -> Self {
        Series {
            name: name.into(),
            unit,
            points: Vec::new(),
        }
    }

    pub fn push(&mut self, x: usize, y: f64) {
        self.points.push(Point { x, y });
    }

    /// y at the given x (exact match), if measured.
    pub fn at(&self, x: usize) -> Option<f64> {
        self.points.iter().find(|p| p.x == x).map(|p| p.y)
    }

    /// y of the largest measured x (the asymptote proxy).
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|p| p.y)
    }
}

/// Print aligned columns: one x column, one column per series.
pub fn print_table(title: &str, series: &[Series]) {
    println!("\n== {title} ==");
    print!("{:>10}", "size");
    for s in series {
        print!(" {:>22}", format!("{} ({})", s.name, s.unit));
    }
    println!();
    let xs: Vec<usize> = series
        .first()
        .map(|s| s.points.iter().map(|p| p.x).collect())
        .unwrap_or_default();
    for x in xs {
        print!("{x:>10}");
        for s in series {
            match s.at(x) {
                Some(y) => print!(" {y:>22.2}"),
                None => print!(" {:>22}", "-"),
            }
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_accessors() {
        let mut s = Series::new("test", "us");
        s.push(4, 1.5);
        s.push(8, 2.5);
        assert_eq!(s.at(4), Some(1.5));
        assert_eq!(s.at(5), None);
        assert_eq!(s.last(), Some(2.5));
    }

    #[test]
    fn print_does_not_panic() {
        let mut s = Series::new("a", "MiB/s");
        s.push(1024, 42.0);
        print_table("smoke", &[s]);
    }
}
