//! Synthetic application workloads over the full stack — evaluation beyond
//! the paper's microbenchmarks: what the motivating applications (RPC-based
//! multithreaded runtimes, §1) actually see.

use crate::table::Series;
use mad_mpi::{Mpi, ReduceOp};
use mad_nexus::Nexus;
use madeleine::{Config, Madeleine, Protocol};
use madsim_net::time;
use madsim_net::{NetKind, WorldBuilder};
use std::sync::Arc;

/// 1-D halo exchange: virtual time per step (µs) as the rank count grows,
/// for a fixed per-rank block, over SISCI and BIP.
pub fn halo_exchange_scaling() -> Vec<Series> {
    let mut out = Vec::new();
    for protocol in [Protocol::Sisci, Protocol::Bip] {
        let mut s = Series::new(format!("{protocol:?} halo, 8 kB faces"), "us/step");
        for ranks in [2usize, 4, 8] {
            s.push(ranks, halo_step_us(protocol, ranks, 8192));
        }
        out.push(s);
    }
    out
}

fn halo_step_us(protocol: Protocol, ranks: usize, face: usize) -> f64 {
    let (net, kind) = match protocol {
        Protocol::Bip => ("myr0", NetKind::Myrinet),
        _ => ("sci0", NetKind::Sci),
    };
    let mut b = WorldBuilder::new(ranks);
    b.network(net, kind, &(0..ranks).collect::<Vec<_>>());
    let world = b.build();
    let config = Config::one("mpi", net, protocol);
    const STEPS: usize = 10;
    let times = world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let mpi = Mpi::init(&mad, "mpi");
        let me = mpi.rank();
        let size = mpi.size();
        let data = vec![me as u8; face];
        let mut buf = vec![0u8; face];
        mpi.barrier();
        let t0 = time::now();
        for _ in 0..STEPS {
            // Even/odd ordered neighbour exchange on a ring.
            let right = (me + 1) % size;
            let left = (me + size - 1) % size;
            if me % 2 == 0 {
                mpi.send(right, 1, &data);
                mpi.recv(Some(left), Some(1), &mut buf);
                mpi.recv(Some(right), Some(2), &mut buf);
                mpi.send(left, 2, &data);
            } else {
                mpi.recv(Some(left), Some(1), &mut buf);
                mpi.send(right, 1, &data);
                mpi.send(left, 2, &data);
                mpi.recv(Some(right), Some(2), &mut buf);
            }
        }
        let dt = time::now().saturating_since(t0).as_micros_f64();
        mpi.barrier();
        dt / STEPS as f64
    });
    times.iter().cloned().fold(0.0f64, f64::max)
}

/// RPC storm: n-1 clients fire requests at one server; served requests per
/// virtual millisecond, by cluster size.
pub fn rpc_storm() -> Vec<Series> {
    let mut s = Series::new("Nexus RPC storm over SISCI", "req/virt-ms");
    for nodes in [2usize, 3, 5] {
        s.push(nodes, rpc_storm_rate(nodes, 64, 40));
    }
    vec![s]
}

fn rpc_storm_rate(nodes: usize, req_size: usize, per_client: usize) -> f64 {
    let mut b = WorldBuilder::new(nodes);
    b.network("sci0", NetKind::Sci, &(0..nodes).collect::<Vec<_>>());
    let world = b.build();
    let config = Config::one("nx", "sci0", Protocol::Sisci);
    let total = (nodes - 1) * per_client;
    let times = world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let nx = Nexus::new(Arc::clone(mad.channel("nx")));
        if env.id() == 0 {
            nx.register(1, |_, _| {});
            let t0 = time::now();
            nx.serve(total);
            time::now().saturating_since(t0).as_micros_f64()
        } else {
            let payload = vec![1u8; req_size];
            for _ in 0..per_client {
                nx.send_rsr(0, 1, &payload);
            }
            0.0
        }
    });
    total as f64 / (times[0] / 1000.0)
}

/// Matrix transpose (all-to-all) over SISCI: virtual time by matrix size.
pub fn transpose_workload() -> Vec<Series> {
    let ranks = 4usize;
    let mut s = Series::new(format!("{ranks}-rank all-to-all transpose"), "us");
    for n in [64usize, 256, 512] {
        // n x n f64 matrix split in row blocks; each rank sends n/ranks x
        // n/ranks tiles to every peer.
        let tile_bytes = (n / ranks) * (n / ranks) * 8;
        s.push(n, transpose_us(ranks, tile_bytes));
    }
    vec![s]
}

fn transpose_us(ranks: usize, tile_bytes: usize) -> f64 {
    let mut b = WorldBuilder::new(ranks);
    b.network("sci0", NetKind::Sci, &(0..ranks).collect::<Vec<_>>());
    let world = b.build();
    let config = Config::one("mpi", "sci0", Protocol::Sisci);
    let times = world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let mpi = Mpi::init(&mad, "mpi");
        // Tile destined for rank r carries the sender's rank, so the
        // receiver can verify provenance.
        let blocks: Vec<Vec<u8>> = (0..mpi.size())
            .map(|_| vec![mpi.rank() as u8; tile_bytes])
            .collect();
        mpi.barrier();
        let t0 = time::now();
        let got = mpi.alltoall(&blocks);
        let dt = time::now().saturating_since(t0).as_micros_f64();
        for (r, b) in got.iter().enumerate() {
            assert!(b.iter().all(|&x| x == r as u8));
        }
        mpi.barrier();
        dt
    });
    times.iter().cloned().fold(0.0f64, f64::max)
}

/// Monte-Carlo pi with periodic allreduce — compute/communicate mix.
pub fn monte_carlo_pi(ranks: usize, samples_per_rank: usize) -> (f64, f64) {
    let mut b = WorldBuilder::new(ranks);
    b.network("myr0", NetKind::Myrinet, &(0..ranks).collect::<Vec<_>>());
    let world = b.build();
    let config = Config::one("mpi", "myr0", Protocol::Bip);
    let out = world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let mpi = Mpi::init(&mad, "mpi");
        // Deterministic per-rank LCG "random" points.
        let mut state = 0x9E37_79B9u64.wrapping_mul(mpi.rank() as u64 + 1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut hits = 0usize;
        for _ in 0..samples_per_rank {
            let (x, y) = (next(), next());
            if x * x + y * y <= 1.0 {
                hits += 1;
            }
        }
        let total = mpi.allreduce(ReduceOp::Sum, &[hits as f64])[0];
        let pi = 4.0 * total / (samples_per_rank * mpi.size()) as f64;
        (pi, time::now().as_micros_f64())
    });
    let pi = out[0].0;
    let t = out.iter().map(|&(_, t)| t).fold(0.0f64, f64::max);
    (pi, t)
}
