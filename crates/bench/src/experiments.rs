//! Measurement harnesses, one per figure of the paper.
//!
//! All measurements are **virtual time** through the full simulated stack:
//! a fresh world per point, a single one-way transfer, the receiver's clock
//! at `end_unpacking` as the transfer time (exactly how the paper defines
//! its one-way latency measurements, §5.1).

use crate::table::Series;
use mad_gateway::{Gateway, GatewayConfig, VirtualChannel, VirtualChannelSpec};
use mad_mpi::Mpi;
use mad_nexus::Nexus;
use madeleine::{ChannelSpec, Config, Madeleine, Protocol, RecvMode, SendMode};
use madsim_net::perf::mibps;
use madsim_net::stacks::bip::Bip;
use madsim_net::time::{self, VDuration};
use madsim_net::{FaultPlan, NetKind, WorldBuilder};

/// Message sizes swept by the latency/bandwidth figures.
pub fn sweep_sizes() -> Vec<usize> {
    vec![
        4,
        16,
        64,
        256,
        1024,
        4096,
        8192,
        16384,
        32768,
        65536,
        131072,
        262144,
        524288,
        1 << 20,
    ]
}

fn net_for(protocol: Protocol) -> (&'static str, NetKind) {
    match protocol {
        Protocol::Tcp | Protocol::Sbp => ("eth0", NetKind::Ethernet),
        Protocol::Bip => ("myr0", NetKind::Myrinet),
        Protocol::Sisci => ("sci0", NetKind::Sci),
        Protocol::Via => ("san0", NetKind::ViaSan),
    }
}

/// One-way time (µs) of a single n-byte Madeleine message.
pub fn madeleine_oneway_us(protocol: Protocol, n: usize, sci_dma: bool) -> f64 {
    let (net, kind) = net_for(protocol);
    let mut b = WorldBuilder::new(2);
    b.network(net, kind, &[0, 1]);
    let world = b.build();
    let config = Config::one("ch", net, protocol).with_sci_dma(sci_dma);
    let times = world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let ch = mad.channel("ch");
        let data = vec![0x5Au8; n];
        if env.id() == 0 {
            let mut msg = ch.begin_packing(1);
            msg.pack(&data, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_packing();
            0.0
        } else {
            let mut got = vec![0u8; n];
            let mut msg = ch.begin_unpacking();
            msg.unpack(&mut got, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_unpacking();
            time::now().as_micros_f64()
        }
    });
    times[1]
}

/// One-way time (µs) of a raw BIP transfer — the baseline curve of Fig. 5
/// ("very close to the raw BIP results: 5 µs / 126 MB/s").
pub fn raw_bip_oneway_us(n: usize) -> f64 {
    let mut b = WorldBuilder::new(2);
    let net = b.network("myr0", NetKind::Myrinet, &[0, 1]);
    let world = b.build();
    let times = world.run(move |env| {
        let bip = Bip::new(env.adapter_on(net).unwrap());
        if env.id() == 0 {
            if n <= madsim_net::stacks::bip::BIP_SHORT_MAX {
                bip.send_short(1, 1, &vec![0u8; n]);
            } else {
                bip.send_long(1, 1, bytes::Bytes::from(vec![0u8; n]));
            }
            0.0
        } else {
            let mut buf = vec![0u8; n];
            if n <= madsim_net::stacks::bip::BIP_SHORT_MAX {
                let (_, data) = bip.recv_short(1);
                buf[..data.len()].copy_from_slice(&data);
            } else {
                bip.recv_long(0, 1, &mut buf);
            }
            time::now().as_micros_f64()
        }
    });
    times[1]
}

/// Fig. 4: Madeleine II over SISCI/SCI — latency and bandwidth curves.
pub fn fig4() -> Vec<Series> {
    let mut lat = Series::new("Madeleine/SISCI latency", "us");
    let mut bw = Series::new("Madeleine/SISCI bandwidth", "MiB/s");
    for n in sweep_sizes() {
        let t = madeleine_oneway_us(Protocol::Sisci, n, false);
        lat.push(n, t);
        bw.push(n, mibps(n, VDuration::from_micros_f64(t)));
    }
    vec![lat, bw]
}

/// Fig. 5: Madeleine II over BIP/Myrinet, with the raw-BIP baseline.
pub fn fig5() -> Vec<Series> {
    let mut lat = Series::new("Madeleine/BIP latency", "us");
    let mut bw = Series::new("Madeleine/BIP bandwidth", "MiB/s");
    let mut raw_lat = Series::new("raw BIP latency", "us");
    let mut raw_bw = Series::new("raw BIP bandwidth", "MiB/s");
    for n in sweep_sizes() {
        let t = madeleine_oneway_us(Protocol::Bip, n, false);
        lat.push(n, t);
        bw.push(n, mibps(n, VDuration::from_micros_f64(t)));
        let r = raw_bip_oneway_us(n);
        raw_lat.push(n, r);
        raw_bw.push(n, mibps(n, VDuration::from_micros_f64(r)));
    }
    vec![lat, bw, raw_lat, raw_bw]
}

/// Ablation (paper §5.2.1 text): the SCI DMA TM the paper ships disabled.
pub fn sci_dma_ablation() -> Vec<Series> {
    let mut pio = Series::new("SISCI PIO (default)", "MiB/s");
    let mut dma = Series::new("SISCI DMA (enabled)", "MiB/s");
    for n in [16384usize, 65536, 262144, 1 << 20] {
        let tp = madeleine_oneway_us(Protocol::Sisci, n, false);
        pio.push(n, mibps(n, VDuration::from_micros_f64(tp)));
        let td = madeleine_oneway_us(Protocol::Sisci, n, true);
        dma.push(n, mibps(n, VDuration::from_micros_f64(td)));
    }
    vec![pio, dma]
}

/// One-way time (µs) of a single n-byte MPI message over the `ch_mad`
/// device (Fig. 6's measured curve).
pub fn mpi_oneway_us(protocol: Protocol, n: usize) -> f64 {
    let (net, kind) = net_for(protocol);
    let mut b = WorldBuilder::new(2);
    b.network(net, kind, &[0, 1]);
    let world = b.build();
    let config = Config::one("mpi", net, protocol);
    let times = world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let mpi = Mpi::init(&mad, "mpi");
        if mpi.rank() == 0 {
            mpi.send(1, 1, &vec![0x11u8; n]);
            0.0
        } else {
            let mut buf = vec![0u8; n];
            mpi.recv(Some(0), Some(1), &mut buf);
            time::now().as_micros_f64()
        }
    });
    times[1]
}

/// Fig. 6: MPI implementations over SCI — MPICH/Madeleine II (measured)
/// against the SCI-MPICH and ScaMPI models, with raw Madeleine/SISCI as
/// the reference ceiling. Bandwidth series.
pub fn fig6() -> Vec<Series> {
    let sci_mpich = mad_mpi::baselines::sci_mpich_curve();
    let scampi = mad_mpi::baselines::scampi_curve();
    let mut chmad = Series::new("MPICH/Mad/SISCI", "MiB/s");
    let mut sm = Series::new("SCI-MPICH (model)", "MiB/s");
    let mut sc = Series::new("ScaMPI (model)", "MiB/s");
    let mut raw = Series::new("Madeleine/SISCI", "MiB/s");
    for n in sweep_sizes() {
        let t = mpi_oneway_us(Protocol::Sisci, n);
        chmad.push(n, mibps(n, VDuration::from_micros_f64(t)));
        sm.push(n, sci_mpich.bandwidth_at(n));
        sc.push(n, scampi.bandwidth_at(n));
        let r = madeleine_oneway_us(Protocol::Sisci, n, false);
        raw.push(n, mibps(n, VDuration::from_micros_f64(r)));
    }
    vec![chmad, sm, sc, raw]
}

/// Fig. 6 latency companion (small messages).
pub fn fig6_latency() -> Vec<Series> {
    let sci_mpich = mad_mpi::baselines::sci_mpich_curve();
    let scampi = mad_mpi::baselines::scampi_curve();
    let mut chmad = Series::new("MPICH/Mad/SISCI", "us");
    let mut sm = Series::new("SCI-MPICH (model)", "us");
    let mut sc = Series::new("ScaMPI (model)", "us");
    for n in [4usize, 16, 64, 256, 1024, 4096] {
        chmad.push(n, mpi_oneway_us(Protocol::Sisci, n));
        sm.push(n, sci_mpich.time_for(n).as_micros_f64());
        sc.push(n, scampi.time_for(n).as_micros_f64());
    }
    vec![chmad, sm, sc]
}

/// One-way time (µs) of a single n-byte Nexus RSR over Madeleine.
pub fn nexus_oneway_us(protocol: Protocol, n: usize) -> f64 {
    let (net, kind) = net_for(protocol);
    let mut b = WorldBuilder::new(2);
    b.network(net, kind, &[0, 1]);
    let world = b.build();
    let config = Config::one("nx", net, protocol);
    let times = world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let nx = Nexus::new(std::sync::Arc::clone(mad.channel("nx")));
        if env.id() == 0 {
            nx.send_rsr(1, 1, &vec![0x22u8; n]);
            0.0
        } else {
            nx.register(1, |_, _| {});
            nx.handle_one();
            time::now().as_micros_f64()
        }
    });
    times[1]
}

/// Fig. 7: Nexus/Madeleine II over TCP and over SISCI — latency and
/// bandwidth curves.
pub fn fig7() -> Vec<Series> {
    let mut sci_lat = Series::new("Nexus/Mad/SISCI latency", "us");
    let mut sci_bw = Series::new("Nexus/Mad/SISCI bandwidth", "MiB/s");
    let mut tcp_lat = Series::new("Nexus/Mad/TCP latency", "us");
    let mut tcp_bw = Series::new("Nexus/Mad/TCP bandwidth", "MiB/s");
    for n in sweep_sizes() {
        let ts = nexus_oneway_us(Protocol::Sisci, n);
        sci_lat.push(n, ts);
        sci_bw.push(n, mibps(n, VDuration::from_micros_f64(ts)));
        let tt = nexus_oneway_us(Protocol::Tcp, n);
        tcp_lat.push(n, tt);
        tcp_bw.push(n, mibps(n, VDuration::from_micros_f64(tt)));
    }
    vec![sci_lat, sci_bw, tcp_lat, tcp_bw]
}

/// Direction of the inter-cluster forwarding experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ForwardDir {
    /// Fig. 10: SCI cluster → gateway → Myrinet cluster.
    SciToMyrinet,
    /// Fig. 11: Myrinet cluster → gateway → SCI cluster.
    MyrinetToSci,
}

/// One-way time (µs) of a single inter-cluster message of `msg` bytes with
/// route MTU `packet` (the paper's §6.2 ping, measured at the receiver).
pub fn forwarding_oneway_us(dir: ForwardDir, packet: usize, msg: usize) -> f64 {
    forwarding_oneway_us_with(dir, packet, msg, GatewayConfig::default())
}

/// [`forwarding_oneway_us`] with explicit gateway tunables (used by the
/// bandwidth-control ablation).
pub fn forwarding_oneway_us_with(
    dir: ForwardDir,
    packet: usize,
    msg: usize,
    gwcfg: GatewayConfig,
) -> f64 {
    let mut b = WorldBuilder::new(3);
    b.network("sci0", NetKind::Sci, &[0, 1]);
    b.network("myr0", NetKind::Myrinet, &[1, 2]);
    let world = b.build();
    let config =
        Config::one("sci", "sci0", Protocol::Sisci).with_channel("myr", "myr0", Protocol::Bip);
    let (from, to) = match dir {
        ForwardDir::SciToMyrinet => (0usize, 2usize),
        ForwardDir::MyrinetToSci => (2, 0),
    };
    let times = world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let spec = VirtualChannelSpec::new("vc", &["sci", "myr"], packet);
        let gw = Gateway::spawn_with(&env, &mad, &config, &spec, gwcfg);
        let vc = VirtualChannel::open(&env, &mad, &config, &spec);
        let mut out = 0.0;
        if env.id() == from {
            let vc = vc.expect("endpoint");
            let data = vec![0x3Cu8; msg];
            let mut m = vc.begin_packing(to);
            m.pack(&data, SendMode::Cheaper, RecvMode::Cheaper);
            m.end_packing();
        } else if env.id() == to {
            let vc = vc.expect("endpoint");
            let mut got = vec![0u8; msg];
            let mut m = vc.begin_unpacking();
            m.unpack(&mut got, SendMode::Cheaper, RecvMode::Cheaper);
            m.end_unpacking();
            out = time::now().as_micros_f64();
        }
        env.barrier();
        if let Some(gw) = gw {
            gw.stop();
        }
        out
    });
    times[to]
}

/// Packet sizes the paper sweeps in Figs. 10 and 11.
pub fn forwarding_packet_sizes() -> Vec<usize> {
    vec![8192, 16384, 32768, 65536, 131072]
}

/// Message sizes plotted on the x axis of Figs. 10 and 11.
pub fn forwarding_msg_sizes() -> Vec<usize> {
    vec![16384, 65536, 262144, 1 << 20, 2 << 20]
}

/// Fig. 10 / Fig. 11: forwarding bandwidth, one series per packet size.
pub fn forwarding_figure(dir: ForwardDir) -> Vec<Series> {
    forwarding_packet_sizes()
        .into_iter()
        .map(|p| {
            let mut s = Series::new(format!("{} kB packets", p / 1024), "MiB/s");
            for m in forwarding_msg_sizes() {
                if m < p {
                    continue;
                }
                let t = forwarding_oneway_us(dir, p, m);
                s.push(m, mibps(m, VDuration::from_micros_f64(t)));
            }
            s
        })
        .collect()
}

/// Ablation of the paper's proposed **gateway bandwidth control** (its
/// conclusion's future-work item): achieved Myrinet→SCI forwarding
/// bandwidth as the inbound admission rate is varied. x = inbound limit
/// in MiB/s (0 = unregulated).
pub fn bandwidth_control_ablation() -> Vec<Series> {
    let packet = 131072;
    let msg = 1 << 20;
    let mut s = Series::new("Myrinet->SCI, 128 kB packets", "MiB/s");
    for limit in [0usize, 30, 40, 50, 60, 80, 100] {
        let gwcfg = GatewayConfig {
            inbound_limit_mibps: (limit > 0).then_some(limit as f64),
            depth: 2,
        };
        let t = forwarding_oneway_us_with(ForwardDir::MyrinetToSci, packet, msg, gwcfg);
        s.push(limit, mibps(msg, VDuration::from_micros_f64(t)));
    }
    vec![s]
}

/// Ablation of buffer aggregation (BMM design choice, paper §3.4): one
/// message of k blocks versus k single-block messages, over TCP (where a
/// grouped flush is one `writev`) and SISCI (one PIO stream). x = block
/// count, y = total transfer time in µs.
pub fn aggregation_ablation() -> Vec<Series> {
    let block = 64usize;
    let mut out = Vec::new();
    for protocol in [Protocol::Tcp, Protocol::Sisci] {
        let mut agg = Series::new(format!("{protocol:?}: 1 message, k blocks"), "us");
        let mut sep = Series::new(format!("{protocol:?}: k messages"), "us");
        for k in [4usize, 16, 64] {
            agg.push(k, multi_block_oneway_us(protocol, k, block, true));
            sep.push(k, multi_block_oneway_us(protocol, k, block, false));
        }
        out.push(agg);
        out.push(sep);
    }
    out
}

fn multi_block_oneway_us(protocol: Protocol, k: usize, block: usize, aggregate: bool) -> f64 {
    let (net, kind) = net_for(protocol);
    let mut b = WorldBuilder::new(2);
    b.network(net, kind, &[0, 1]);
    let world = b.build();
    let config = Config::one("ch", net, protocol);
    let times = world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let ch = mad.channel("ch");
        let data = vec![0x7Eu8; block];
        if env.id() == 0 {
            if aggregate {
                let mut msg = ch.begin_packing(1);
                for _ in 0..k {
                    msg.pack(&data, SendMode::Cheaper, RecvMode::Cheaper);
                }
                msg.end_packing();
            } else {
                for _ in 0..k {
                    let mut msg = ch.begin_packing(1);
                    msg.pack(&data, SendMode::Cheaper, RecvMode::Cheaper);
                    msg.end_packing();
                }
            }
            0.0
        } else {
            let mut bufs = vec![vec![0u8; block]; k];
            if aggregate {
                let mut msg = ch.begin_unpacking();
                for buf in bufs.iter_mut() {
                    msg.unpack(buf, SendMode::Cheaper, RecvMode::Cheaper);
                }
                msg.end_unpacking();
            } else {
                for buf in bufs.iter_mut() {
                    let mut msg = ch.begin_unpacking();
                    msg.unpack(buf, SendMode::Cheaper, RecvMode::Cheaper);
                    msg.end_unpacking();
                }
            }
            time::now().as_micros_f64()
        }
    });
    times[1]
}

/// One row of the copy-accounting matrix (`copies` bench binary): sender
/// and receiver counter deltas for a single message under one
/// emission/reception flag combination.
#[derive(Clone, Debug, serde::Serialize)]
pub struct CopyCell {
    pub protocol: String,
    pub send_mode: &'static str,
    pub recv_mode: &'static str,
    pub body: usize,
    /// Generic-layer copies on the sender (what emission flags control).
    pub send_copied_bytes: u64,
    /// Protocol-internal copies on the sender (no flag can remove these).
    pub send_tm_copied_bytes: u64,
    /// Bytes the sender's TMs read straight from user memory.
    pub send_borrowed_bytes: u64,
    /// Native scatter/gather flushes on the sender.
    pub send_gathers: u64,
    pub recv_copied_bytes: u64,
    pub recv_tm_copied_bytes: u64,
    pub recv_borrowed_bytes: u64,
    /// Pool checkouts served from a recycled slab (both ends).
    pub pool_hits: u64,
    pub pool_misses: u64,
}

/// Measure the copy-accounting matrix of one protocol: every send flag ×
/// receive flag combination for one `n`-byte body, a fresh world per cell.
pub fn copy_matrix(protocol: Protocol, n: usize) -> Vec<CopyCell> {
    let mut out = Vec::new();
    for (smode, sname) in [
        (SendMode::Cheaper, "CHEAPER"),
        (SendMode::Safer, "SAFER"),
        (SendMode::Later, "LATER"),
    ] {
        for (rmode, rname) in [
            (RecvMode::Cheaper, "CHEAPER"),
            (RecvMode::Express, "EXPRESS"),
        ] {
            let (net, kind) = net_for(protocol);
            let mut b = WorldBuilder::new(2);
            b.network(net, kind, &[0, 1]);
            let world = b.build();
            let config = Config::one("ch", net, protocol);
            let deltas = world.run(move |env| {
                let mad = Madeleine::init(&env, &config);
                let ch = mad.channel("ch");
                let before = ch.stats().snapshot();
                if env.id() == 0 {
                    let data = vec![0x5Au8; n];
                    let mut m = ch.begin_packing(1);
                    m.pack(&data, smode, rmode);
                    m.end_packing();
                } else {
                    let mut buf = vec![0u8; n];
                    let mut m = ch.begin_unpacking();
                    m.unpack(&mut buf, smode, rmode);
                    m.end_unpacking();
                }
                ch.stats().snapshot().since(&before)
            });
            let (s, r) = (deltas[0], deltas[1]);
            out.push(CopyCell {
                protocol: format!("{protocol:?}"),
                send_mode: sname,
                recv_mode: rname,
                body: n,
                send_copied_bytes: s.copied_bytes,
                send_tm_copied_bytes: s.tm_copied_bytes,
                send_borrowed_bytes: s.borrowed_bytes,
                send_gathers: s.gathers,
                recv_copied_bytes: r.copied_bytes,
                recv_tm_copied_bytes: r.tm_copied_bytes,
                recv_borrowed_bytes: r.borrowed_bytes,
                pool_hits: s.pool_hits + r.pool_hits,
                pool_misses: s.pool_misses + r.pool_misses,
            });
        }
    }
    out
}

/// Steady-state pool behaviour over `rounds` of an n-byte ping-pong:
/// returns `(hit_rate, hits, misses)` summed over both nodes.
pub fn pool_steady_state(protocol: Protocol, rounds: usize, n: usize) -> (f64, u64, u64) {
    let (net, kind) = net_for(protocol);
    let mut b = WorldBuilder::new(2);
    b.network(net, kind, &[0, 1]);
    let world = b.build();
    let config = Config::one("ch", net, protocol);
    let counters = world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let ch = mad.channel("ch");
        let payload = vec![0xA5u8; n];
        for _ in 0..rounds {
            if env.id() == 0 {
                let mut m = ch.begin_packing(1);
                m.pack(&payload, SendMode::Cheaper, RecvMode::Cheaper);
                m.end_packing();
                let mut echo = vec![0u8; n];
                let mut m = ch.begin_unpacking();
                m.unpack(&mut echo, SendMode::Cheaper, RecvMode::Cheaper);
                m.end_unpacking();
            } else {
                let mut echo = vec![0u8; n];
                let mut m = ch.begin_unpacking();
                m.unpack(&mut echo, SendMode::Cheaper, RecvMode::Cheaper);
                m.end_unpacking();
                let mut m = ch.begin_packing(0);
                m.pack(&echo, SendMode::Cheaper, RecvMode::Cheaper);
                m.end_packing();
            }
        }
        (ch.stats().pool_hits(), ch.stats().pool_misses())
    });
    let hits: u64 = counters.iter().map(|c| c.0).sum();
    let misses: u64 = counters.iter().map(|c| c.1).sum();
    let total = hits + misses;
    let rate = if total == 0 {
        1.0
    } else {
        hits as f64 / total as f64
    };
    (rate, hits, misses)
}

/// §6.2.1's crossover check: Madeleine over SCI and Myrinet deliver
/// "approximately the same performance for messages of size 16 kB".
pub fn crossover_check() -> Vec<Series> {
    let mut sci = Series::new("Madeleine/SISCI", "us");
    let mut myr = Series::new("Madeleine/BIP", "us");
    for n in [8192usize, 16384, 32768] {
        sci.push(n, madeleine_oneway_us(Protocol::Sisci, n, false));
        myr.push(n, madeleine_oneway_us(Protocol::Bip, n, false));
    }
    vec![sci, myr]
}

/// What-if: Madeleine II's software architecture on a modern fabric.
/// Retimes the BIP-like stack to 200 Gb/s-class numbers (1 µs latency,
/// ~23 GiB/s) and measures where the 2000-era software overheads would
/// put the achievable curve — the forward-looking question behind
/// today's UCX/libfabric designs.
pub fn modern_fabric_whatif() -> Vec<Series> {
    use madsim_net::stacks::bip::BipTiming;
    let modern = BipTiming {
        short_lat_us: 0.9,
        short_per_byte_us: 0.00004,
        ctrl_lat_us: 0.9,
        long_lat_us: 2.0,
        long_per_byte_us: 0.00004, // ~23.8 GiB/s
        host_post_us: 0.2,
        bus_per_byte_us: 0.00004,
    };
    let mut paper = Series::new("paper-era Myrinet", "MiB/s");
    let mut fast = Series::new("modern fabric (what-if)", "MiB/s");
    for n in [4096usize, 65536, 1 << 20] {
        let t = madeleine_oneway_us(Protocol::Bip, n, false);
        paper.push(n, mibps(n, VDuration::from_micros_f64(t)));
        let tf = modern_oneway_us(modern, n);
        fast.push(n, mibps(n, VDuration::from_micros_f64(tf)));
    }
    vec![paper, fast]
}

/// One point of the fault-injection sweep: a TCP bulk stream of
/// `transfers x n` bytes under seeded frame loss.
#[derive(Clone, Debug, serde::Serialize)]
pub struct LossPoint {
    /// Loss probability per data frame; `None` = no fault plan installed
    /// (the unarmed fast path, with no sequence numbers or acks at all).
    pub loss: Option<f64>,
    /// Total payload bytes moved.
    pub bytes: usize,
    /// Receiver's virtual clock when the last byte landed, µs.
    pub virtual_us: f64,
    pub goodput_mibps: f64,
    /// Retransmissions the ARQ performed (Stats counter, both nodes).
    pub retransmits: u64,
    /// Frames the fault layer discarded.
    pub drops: u64,
}

/// Measure one [`LossPoint`]: `transfers` one-way CHEAPER messages of `n`
/// bytes over TCP, with the fabric dropping each data frame with
/// probability `loss` (`None` leaves the fault layer out entirely).
pub fn lossy_goodput(seed: u64, loss: Option<f64>, transfers: usize, n: usize) -> LossPoint {
    let mut b = WorldBuilder::new(2);
    if let Some(rate) = loss {
        b = b.fault_plan(FaultPlan::new(seed).drop_rate(rate));
    }
    b.network("eth0", NetKind::Ethernet, &[0, 1]);
    let world = b.build();
    let config = Config::one("ch", "eth0", Protocol::Tcp);
    let out = world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let ch = mad.channel("ch");
        if env.id() == 0 {
            let data = vec![0x6Bu8; n];
            for _ in 0..transfers {
                let mut m = ch.begin_packing(1);
                m.pack(&data, SendMode::Cheaper, RecvMode::Cheaper);
                m.end_packing();
            }
            (ch.stats().retransmits(), 0.0)
        } else {
            let mut got = vec![0u8; n];
            for _ in 0..transfers {
                let mut m = ch.begin_unpacking();
                m.unpack(&mut got, SendMode::Cheaper, RecvMode::Cheaper);
                m.end_unpacking();
            }
            (ch.stats().retransmits(), time::now().as_micros_f64())
        }
    });
    let bytes = transfers * n;
    let virtual_us = out[1].1;
    LossPoint {
        loss,
        bytes,
        virtual_us,
        goodput_mibps: mibps(bytes, VDuration::from_micros_f64(virtual_us)),
        retransmits: out[0].0 + out[1].0,
        drops: world.faults().map_or(0, |f| f.drops()),
    }
}

/// The `faults` bench sweep: goodput vs loss rate. The `None` row is the
/// unarmed fast-path baseline; the `0%` row prices the armed ARQ (sequence
/// numbers + stop-and-wait acks) with nothing actually lost.
pub fn loss_sweep(seed: u64, transfers: usize, n: usize) -> Vec<LossPoint> {
    let rates = [
        None,
        Some(0.0),
        Some(0.005),
        Some(0.01),
        Some(0.02),
        Some(0.05),
    ];
    rates
        .iter()
        .map(|&loss| lossy_goodput(seed, loss, transfers, n))
        .collect()
}

/// One point of the multirail bandwidth sweep: one n-byte CHEAPER/CHEAPER
/// message over a BIP channel spanning `rails` Myrinet adapters.
#[derive(Clone, Debug, serde::Serialize)]
pub struct RailPoint {
    pub rails: usize,
    pub bytes: usize,
    /// Receiver's virtual clock when the block landed, µs.
    pub virtual_us: f64,
    pub bandwidth_mibps: f64,
    /// Striped blocks (0 on single-rail channels: the stripe engine must
    /// stay entirely off the classic path).
    pub stripes: u64,
    /// Receiver-side payload bytes per rail, indexed by rail id.
    pub rail_bytes: Vec<u64>,
    /// `(max - min) / max` of the per-rail byte counts.
    pub rail_imbalance: f64,
    /// Virtual nanoseconds per operation (one message per point).
    pub ns_per_op: f64,
}

/// Measure one [`RailPoint`]. `timing` retimes the BIP stack (`None` =
/// the paper-calibrated constants); the stripe chunk is fixed at 128 KiB
/// so the sweep varies exactly one thing — the rail count.
pub fn multirail_oneway(
    timing: Option<madsim_net::stacks::bip::BipTiming>,
    rails: usize,
    n: usize,
) -> RailPoint {
    let mut b = WorldBuilder::new(2);
    b.network_with_rails("myr0", NetKind::Myrinet, &[0, 1], rails);
    let world = b.build();
    let mut config = Config::default().with_channel_spec(
        ChannelSpec::new("ch", "myr0", Protocol::Bip)
            .with_rails(rails)
            .with_striping(128 * 1024, 128 * 1024),
    );
    if let Some(t) = timing {
        config = config.with_bip_timing(t);
    }
    let out = world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let ch = mad.channel("ch");
        if env.id() == 0 {
            let data = vec![0x3Cu8; n];
            let mut msg = ch.begin_packing(1);
            msg.pack(&data, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_packing();
            (0.0, 0, Vec::new())
        } else {
            let mut got = vec![0u8; n];
            let mut msg = ch.begin_unpacking();
            msg.unpack(&mut got, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_unpacking();
            assert!(got.iter().all(|&x| x == 0x3C), "striped block corrupted");
            let s = ch.stats();
            let per_rail: Vec<u64> = (0..rails).map(|r| s.rail_traffic(r).1).collect();
            (time::now().as_micros_f64(), s.stripes(), per_rail)
        }
    });
    let (virtual_us, stripes, rail_bytes) = out[1].clone();
    let (max, min) = rail_bytes
        .iter()
        .fold((0u64, u64::MAX), |(mx, mn), &v| (mx.max(v), mn.min(v)));
    let rail_imbalance = if rails > 1 && max > 0 {
        (max - min) as f64 / max as f64
    } else {
        0.0
    };
    RailPoint {
        rails,
        bytes: n,
        virtual_us,
        bandwidth_mibps: mibps(n, VDuration::from_micros_f64(virtual_us)),
        stripes,
        rail_bytes,
        rail_imbalance,
        ns_per_op: virtual_us * 1e3,
    }
}

/// The Myrinet-class retimed stack of the `rails` bench: the paper's wire
/// constants with a 64-bit/66 MHz-class host bus (a quarter of the
/// calibrated per-byte bus occupancy), so the shared PCI bus can feed
/// about four rails before it saturates. With the paper's original bus a
/// second rail is pointless — the 1999 32-bit/33 MHz PCI *was* the
/// bottleneck, which is exactly what the sweep's default-timing series
/// shows.
pub fn myrinet_class_timing() -> madsim_net::stacks::bip::BipTiming {
    madsim_net::stacks::bip::BipTiming {
        bus_per_byte_us: 0.0019,
        ..Default::default()
    }
}

fn modern_oneway_us(timing: madsim_net::stacks::bip::BipTiming, n: usize) -> f64 {
    let mut b = WorldBuilder::new(2);
    b.network("myr0", NetKind::Myrinet, &[0, 1]);
    let world = b.build();
    let config = Config::one("ch", "myr0", Protocol::Bip).with_bip_timing(timing);
    let times = world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let ch = mad.channel("ch");
        let data = vec![0x66u8; n];
        if env.id() == 0 {
            let mut msg = ch.begin_packing(1);
            msg.pack(&data, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_packing();
            0.0
        } else {
            let mut got = vec![0u8; n];
            let mut msg = ch.begin_unpacking();
            msg.unpack(&mut got, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_unpacking();
            time::now().as_micros_f64()
        }
    });
    times[1]
}
