//! Compute/communication overlap: the nonblocking op path against the
//! blocking send path, with a calibrated compute phase equal to the pure
//! transfer time (the balanced case, where perfect overlap halves the
//! elapsed time).
//!
//! Sweeps 4 kB -> 1 MB over BIP (Myrinet) and TCP (Ethernet), on 1 and 2
//! rails, and writes `BENCH_overlap.json`. The headline claim asserted
//! below: for 1 MB exchanges over single-rail BIP, posting the send and
//! computing through the rendezvous delivers at least 1.5x the effective
//! throughput of send-then-compute — the progress engine anchors the
//! transfer at posting time, so the simulated NIC moves the bytes while
//! the host computes.
//!
//! Expected shape of the other rows: TCP's eager path and the striped
//! 2-rail bulk path execute their wire time inside the tick that ships
//! them (no peer event to park on), so their speedup sits near 1.0x —
//! overlap is a property of the rendezvous, which is the paper's point
//! about receiver-driven long transfers.
//!
//! Usage: `overlap [--out PATH]`

use bytes::Bytes;
use madeleine::{ChannelSpec, Config, Madeleine, Protocol, RecvMode, SendMode};
use madsim_net::time::{self, VDuration};
use madsim_net::{NetKind, WorldBuilder};

#[derive(Clone, Copy)]
enum Mode {
    /// Blocking send, then `compute_us` of local work.
    Blocking { compute_us: f64 },
    /// Posted send, `compute_us` of local work, then `wait_op`.
    Overlap { compute_us: f64 },
}

#[derive(serde::Serialize)]
struct OverlapPoint {
    protocol: &'static str,
    rails: usize,
    bytes: usize,
    /// Pure blocking transfer time (also the calibrated compute phase).
    transfer_us: f64,
    blocking_us: f64,
    overlapped_us: f64,
    blocking_mibps: f64,
    overlapped_mibps: f64,
    /// `blocking_us / overlapped_us`.
    speedup: f64,
    /// Nanoseconds per operation (one overlapped exchange per point).
    ns_per_op: f64,
}

#[derive(serde::Serialize)]
struct Output {
    points: Vec<OverlapPoint>,
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Sender's elapsed virtual µs for one exchange of `n` bytes.
fn exchange_us(protocol: Protocol, rails: usize, n: usize, mode: Mode) -> f64 {
    let kind = match protocol {
        Protocol::Bip => NetKind::Myrinet,
        Protocol::Tcp => NetKind::Ethernet,
        other => panic!("overlap bench does not cover {other:?}"),
    };
    let mut b = WorldBuilder::new(2);
    b.network_with_rails("net0", kind, &[0, 1], rails);
    let world = b.build();
    let config = Config::default().with_channel_spec(
        ChannelSpec::new("ch", "net0", protocol)
            .with_rails(rails)
            .with_striping(128 * 1024, 128 * 1024),
    );
    let elapsed = world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let ch = mad.channel("ch");
        if env.id() == 0 {
            let data = vec![0x5Au8; n];
            let t0 = time::now().as_micros_f64();
            match mode {
                Mode::Blocking { compute_us } => {
                    let mut msg = ch.begin_packing(1);
                    msg.pack(&data, SendMode::Cheaper, RecvMode::Cheaper);
                    msg.end_packing();
                    time::advance(VDuration::from_micros_f64(compute_us));
                }
                Mode::Overlap { compute_us } => {
                    let id = ch.post_message(
                        1,
                        vec![(
                            Bytes::copy_from_slice(&data),
                            SendMode::Cheaper,
                            RecvMode::Cheaper,
                        )],
                    );
                    time::advance(VDuration::from_micros_f64(compute_us));
                    ch.wait_op(id).expect("posted send completes");
                }
            }
            time::now().as_micros_f64() - t0
        } else {
            let mut got = vec![0u8; n];
            let mut msg = ch.begin_unpacking();
            msg.unpack(&mut got, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_unpacking();
            assert!(got.iter().all(|&x| x == 0x5A), "payload corrupted");
            0.0
        }
    });
    elapsed[0]
}

fn mibps(bytes: usize, us: f64) -> f64 {
    (bytes as f64 / (1 << 20) as f64) / (us / 1e6)
}

fn measure(protocol: Protocol, name: &'static str, rails: usize, n: usize) -> OverlapPoint {
    // Calibrate the compute phase to the pure transfer time: the balanced
    // workload where overlap has the most to win (2x at the limit).
    let transfer_us = exchange_us(protocol, rails, n, Mode::Blocking { compute_us: 0.0 });
    let blocking_us = exchange_us(
        protocol,
        rails,
        n,
        Mode::Blocking {
            compute_us: transfer_us,
        },
    );
    let overlapped_us = exchange_us(
        protocol,
        rails,
        n,
        Mode::Overlap {
            compute_us: transfer_us,
        },
    );
    OverlapPoint {
        protocol: name,
        rails,
        bytes: n,
        transfer_us,
        blocking_us,
        overlapped_us,
        blocking_mibps: mibps(n, blocking_us),
        overlapped_mibps: mibps(n, overlapped_us),
        speedup: blocking_us / overlapped_us,
        ns_per_op: overlapped_us * 1e3,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_overlap.json".into());

    let sizes = [4 * 1024, 64 * 1024, 1 << 20];
    let mut points = Vec::new();
    println!(
        "{:>5} {:>6} {:>9} {:>12} {:>12} {:>12} {:>8}",
        "proto", "rails", "bytes", "transfer us", "blocking us", "overlap us", "speedup"
    );
    for (protocol, name) in [(Protocol::Bip, "bip"), (Protocol::Tcp, "tcp")] {
        for rails in [1usize, 2] {
            for n in sizes {
                let p = measure(protocol, name, rails, n);
                println!(
                    "{:>5} {:>6} {:>9} {:>12.1} {:>12.1} {:>12.1} {:>7.2}x",
                    p.protocol,
                    p.rails,
                    p.bytes,
                    p.transfer_us,
                    p.blocking_us,
                    p.overlapped_us,
                    p.speedup
                );
                points.push(p);
            }
        }
    }

    // The acceptance claim: 1 MB compute-overlapped exchanges over
    // single-rail BIP reach >= 1.5x the blocking effective throughput.
    let headline = points
        .iter()
        .find(|p| p.protocol == "bip" && p.rails == 1 && p.bytes == 1 << 20)
        .expect("headline point measured");
    assert!(
        headline.overlapped_mibps >= 1.5 * headline.blocking_mibps,
        "overlap speedup {:.2}x below 1.5x ({:.1} -> {:.1} MiB/s effective)",
        headline.speedup,
        headline.blocking_mibps,
        headline.overlapped_mibps
    );
    println!(
        "1 MB single-rail BIP overlap speedup: {:.2}x",
        headline.speedup
    );

    let json = serde_json::to_string_pretty(&Output { points }).expect("serialize results");
    std::fs::write(&out_path, json).expect("write results");
    eprintln!("wrote {out_path}");
}
