//! Multirail bandwidth sweep: one bulk CHEAPER message over a BIP channel
//! spanning 1→4 Myrinet rails, on both the paper-calibrated stack and a
//! Myrinet-class retiming with a faster host bus. Prints two tables and
//! writes the raw numbers to `BENCH_rails.json`.
//!
//! The single-rail default-timing row is the pre-multirail library's
//! figure — the refactor must not move it. On the retimed stack two rails
//! must deliver at least 1.7x the single-rail bandwidth for 1 MB messages
//! (checked below); on the paper stack they must NOT, because the shared
//! 32-bit/33 MHz PCI bus was the bottleneck in 1999.
//!
//! Each point is the best of [`REPS`] runs: the rail sender threads book
//! overlapping slots on the shared host-bus timeline, and which thread's
//! reservation lands first depends on OS scheduling — occasionally the
//! unlucky order stalls one rail's rendezvous chain behind the other's
//! bus crossings. Best-of-N keeps the contention the model *prescribes*
//! (the paper-bus rows still refuse to scale) while shedding the
//! scheduling noise, exactly as a real-hardware bandwidth sweep would.
//!
//! Usage: `rails [--out PATH] [--bytes N]`

use bench::experiments::{multirail_oneway, myrinet_class_timing, RailPoint};

#[derive(serde::Serialize)]
struct Output {
    bytes: usize,
    paper_bus: Vec<RailPoint>,
    fast_bus: Vec<RailPoint>,
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn print_sweep(title: &str, points: &[RailPoint]) {
    println!("== {title} ==");
    println!(
        "{:>6} {:>12} {:>10} {:>8} {:>10} {:>20}",
        "rails", "virtual us", "MiB/s", "stripes", "imbalance", "per-rail KiB"
    );
    for p in points {
        let per_rail: Vec<String> = p
            .rail_bytes
            .iter()
            .map(|b| format!("{}", b >> 10))
            .collect();
        println!(
            "{:>6} {:>12.1} {:>10.2} {:>8} {:>10.3} {:>20}",
            p.rails,
            p.virtual_us,
            p.bandwidth_mibps,
            p.stripes,
            p.rail_imbalance,
            per_rail.join("/")
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_rails.json".into());
    let bytes: usize = arg_value(&args, "--bytes")
        .map(|v| v.parse().expect("--bytes takes a byte count"))
        .unwrap_or(1 << 20);

    const REPS: usize = 3;
    let sweep = |timing: Option<madsim_net::stacks::bip::BipTiming>| -> Vec<RailPoint> {
        (1..=4)
            .map(|rails| {
                (0..REPS)
                    .map(|_| multirail_oneway(timing, rails, bytes))
                    .min_by(|a, b| a.virtual_us.total_cmp(&b.virtual_us))
                    .expect("at least one rep")
            })
            .collect()
    };

    let paper_bus = sweep(None);
    print_sweep("paper-calibrated stack (PCI-bound)", &paper_bus);
    let fast_bus = sweep(Some(myrinet_class_timing()));
    print_sweep("Myrinet-class retimed bus", &fast_bus);

    // Single-rail channels must never stripe — the classic path is pinned.
    for p in paper_bus.iter().chain(&fast_bus) {
        if p.rails == 1 {
            assert_eq!(p.stripes, 0, "a single-rail channel striped");
        }
    }
    // The tentpole claim: two rails on a bus that can feed them deliver
    // >= 1.7x the single-rail bandwidth for 1 MB messages.
    let one = fast_bus[0].bandwidth_mibps;
    let two = fast_bus[1].bandwidth_mibps;
    assert!(
        two >= 1.7 * one,
        "2-rail speedup {:.2}x below 1.7x ({one:.1} -> {two:.1} MiB/s)",
        two / one
    );
    println!("2-rail speedup on the retimed bus: {:.2}x", two / one);

    let out = Output {
        bytes,
        paper_bus,
        fast_bus,
    };
    let json = serde_json::to_string_pretty(&out).expect("serialize results");
    std::fs::write(&out_path, json).expect("write results");
    eprintln!("wrote {out_path}");
}
