//! Print the measured series for every figure of the paper.
//!
//! Usage: `figures [fig4|fig5|fig10|fig11|dma|all]`

use bench::experiments::{self, ForwardDir};
use bench::table::{print_table, Series};

/// Print as a table and, when `--json <dir>` is given, also write the raw
/// series as JSON for downstream tooling / EXPERIMENTS.md regeneration.
fn emit(json_dir: &Option<String>, slug: &str, title: &str, series: &[Series]) {
    print_table(title, series);
    if let Some(dir) = json_dir {
        std::fs::create_dir_all(dir).expect("create json dir");
        let path = format!("{dir}/{slug}.json");
        let body = serde_json::to_string_pretty(series).expect("serialize series");
        std::fs::write(&path, body).expect("write json");
        eprintln!("wrote {path}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_dir = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned());
    let what = args.first().map(|s| s.as_str()).unwrap_or("all");
    if matches!(what, "fig4" | "all") {
        emit(
            &json_dir,
            "fig4",
            "Fig. 4 — Madeleine II over SISCI/SCI",
            &experiments::fig4(),
        );
    }
    if matches!(what, "fig5" | "all") {
        emit(
            &json_dir,
            "fig5",
            "Fig. 5 — Madeleine II over BIP/Myrinet",
            &experiments::fig5(),
        );
    }
    if matches!(what, "fig6" | "all") {
        emit(
            &json_dir,
            "fig6_bw",
            "Fig. 6 — MPI implementations over SCI (bandwidth)",
            &experiments::fig6(),
        );
        emit(
            &json_dir,
            "fig6_lat",
            "Fig. 6 — MPI implementations over SCI (latency)",
            &experiments::fig6_latency(),
        );
    }
    if matches!(what, "fig7" | "all") {
        emit(
            &json_dir,
            "fig7",
            "Fig. 7 — Nexus/Madeleine II performance",
            &experiments::fig7(),
        );
    }
    if matches!(what, "dma" | "all") {
        emit(
            &json_dir,
            "dma",
            "SCI DMA ablation (§5.2.1)",
            &experiments::sci_dma_ablation(),
        );
    }
    if matches!(what, "crossover" | "all") {
        emit(
            &json_dir,
            "crossover",
            "§6.2.1 crossover — Madeleine one-way at 8/16/32 kB",
            &experiments::crossover_check(),
        );
    }
    if matches!(what, "fig10" | "all") {
        emit(
            &json_dir,
            "fig10",
            "Fig. 10 — forwarding bandwidth SISCI/SCI -> BIP/Myrinet",
            &experiments::forwarding_figure(ForwardDir::SciToMyrinet),
        );
    }
    if matches!(what, "fig11" | "all") {
        emit(
            &json_dir,
            "fig11",
            "Fig. 11 — forwarding bandwidth BIP/Myrinet -> SISCI/SCI",
            &experiments::forwarding_figure(ForwardDir::MyrinetToSci),
        );
    }
}
