//! Synthetic application workloads over the full stack.
//!
//! Usage: `cargo run -p bench --bin workloads [halo|rpc|transpose|pi|all]`

use bench::table::print_table;
use bench::workloads;

fn main() {
    let what = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    if matches!(what.as_str(), "halo" | "all") {
        print_table(
            "1-D halo exchange (ring, even/odd ordered)",
            &workloads::halo_exchange_scaling(),
        );
    }
    if matches!(what.as_str(), "rpc" | "all") {
        print_table(
            "Nexus RPC storm (clients -> one server)",
            &workloads::rpc_storm(),
        );
    }
    if matches!(what.as_str(), "transpose" | "all") {
        print_table(
            "MPI all-to-all matrix transpose",
            &workloads::transpose_workload(),
        );
    }
    if matches!(what.as_str(), "pi" | "all") {
        let (pi, t) = workloads::monte_carlo_pi(4, 100_000);
        println!("\n== Monte-Carlo pi, 4 ranks x 100k samples over BIP ==");
        println!("pi = {pi:.4}   completion (virtual) = {t:.1} us");
    }
}
