//! Copy-accounting bench: who copies what, per emission-flag combination,
//! plus the buffer pool's steady-state behaviour. Prints aligned tables
//! and writes the raw numbers to `BENCH_copies.json`.
//!
//! Usage: `copies [--out PATH] [--body BYTES] [--rounds N]`

use bench::experiments::{copy_matrix, pool_steady_state, CopyCell};
use madeleine::Protocol;

#[derive(serde::Serialize)]
struct PoolRow {
    protocol: String,
    rounds: usize,
    body: usize,
    hits: u64,
    misses: u64,
    hit_rate: f64,
}

#[derive(serde::Serialize)]
struct Output {
    body: usize,
    matrix: Vec<CopyCell>,
    pool: Vec<PoolRow>,
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_copies.json".into());
    let body: usize = arg_value(&args, "--body")
        .map(|v| v.parse().expect("--body takes a byte count"))
        .unwrap_or(1 << 20);
    let rounds: usize = arg_value(&args, "--rounds")
        .map(|v| v.parse().expect("--rounds takes a count"))
        .unwrap_or(50);
    let protocols = [
        Protocol::Tcp,
        Protocol::Sisci,
        Protocol::Bip,
        Protocol::Via,
        Protocol::Sbp,
    ];

    println!("== copy matrix — {body} B body, per-node counter deltas ==");
    println!(
        "{:>6} {:>8} {:>8} {:>12} {:>12} {:>12} {:>8} {:>12} {:>12} {:>6} {:>6}",
        "proto",
        "send",
        "recv",
        "s.copied",
        "s.tm_copied",
        "s.borrowed",
        "s.gath",
        "r.copied",
        "r.tm_copied",
        "hits",
        "miss"
    );
    let mut matrix = Vec::new();
    for p in protocols {
        for c in copy_matrix(p, body) {
            println!(
                "{:>6} {:>8} {:>8} {:>12} {:>12} {:>12} {:>8} {:>12} {:>12} {:>6} {:>6}",
                c.protocol,
                c.send_mode,
                c.recv_mode,
                c.send_copied_bytes,
                c.send_tm_copied_bytes,
                c.send_borrowed_bytes,
                c.send_gathers,
                c.recv_copied_bytes,
                c.recv_tm_copied_bytes,
                c.pool_hits,
                c.pool_misses
            );
            matrix.push(c);
        }
    }

    println!("\n== buffer pool — steady-state ping-pong, {rounds} rounds x 256 B ==");
    println!(
        "{:>6} {:>8} {:>8} {:>10}",
        "proto", "hits", "misses", "hit rate"
    );
    let mut pool = Vec::new();
    for p in protocols {
        let (rate, hits, misses) = pool_steady_state(p, rounds, 256);
        println!(
            "{:>6} {:>8} {:>8} {:>9.1}%",
            format!("{p:?}"),
            hits,
            misses,
            rate * 100.0
        );
        pool.push(PoolRow {
            protocol: format!("{p:?}"),
            rounds,
            body: 256,
            hits,
            misses,
            hit_rate: rate,
        });
    }

    let out = Output { body, matrix, pool };
    let json = serde_json::to_string_pretty(&out).expect("serialize results");
    std::fs::write(&out_path, json).expect("write results");
    eprintln!("wrote {out_path}");
}
