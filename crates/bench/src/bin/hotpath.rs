//! Lock-free hot path: the sharded mailbox, the MPSC completion queue,
//! and the lock-free buffer pool against their single-lock baselines.
//!
//! Unlike the other bench bins, this one measures the *concurrency
//! primitives themselves* in real time — no simulated fabric, no virtual
//! clock. The workload is the 4-peer small-message storm the sharding
//! work targets: four producers (one per peer) firing small items at
//! four keyed consumers, every item demultiplexed by its peer key. The
//! baseline is the pre-refactor design, reconstructed inline: one
//! mutex-guarded deque with a condvar, every push and every keyed scan
//! serializing on the same lock.
//!
//! Headline claim asserted below: the sharded mailbox moves the storm
//! at 1.3x or more of the single-lock baseline's ops/second. The completion
//! queue and buffer pool rounds are reported (ns/op) but not gated —
//! they are single-consumer shapes whose win shows mostly under
//! contention the storm already demonstrates.
//!
//! Writes `BENCH_hotpath.json`. Usage: `hotpath [--out PATH]`

use madeleine::pool::BufPool;
use madeleine::stats::Stats;
use madeleine::CompletionQueue;
use madsim_net::{Mailbox, Shardable};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Peers in the storm (producer/consumer pairs).
const PEERS: u64 = 4;
/// Items each producer fires per round.
const PER_PEER: u64 = 30_000;
/// Measured rounds (the slowest round is discarded as warmup noise).
const ROUNDS: usize = 3;

/// A small message of the storm: a peer key plus a payload word standing
/// in for the frame the real mailbox carries.
struct Item {
    key: u64,
    #[allow(dead_code)]
    payload: u64,
}

impl Shardable for Item {
    fn shard_key(&self) -> u64 {
        self.key
    }
}

/// The pre-refactor mailbox, reconstructed as a baseline: one deque, one
/// lock, one condvar. Keyed receives scan past other peers' items while
/// holding the lock — exactly what the shard demux was built to end.
struct LockedMailbox {
    q: Mutex<VecDeque<Item>>,
    cond: Condvar,
}

impl LockedMailbox {
    fn new() -> Self {
        LockedMailbox {
            q: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
        }
    }

    fn push(&self, item: Item) {
        self.q.lock().expect("baseline lock").push_back(item);
        self.cond.notify_all();
    }

    fn recv_keyed(&self, key: u64) -> Item {
        let mut q = self.q.lock().expect("baseline lock");
        loop {
            if let Some(i) = q.iter().position(|it| it.key == key) {
                return q.remove(i).expect("position just found");
            }
            q = self.cond.wait(q).expect("baseline wait");
        }
    }
}

#[derive(serde::Serialize)]
struct Round {
    name: &'static str,
    ops: u64,
    elapsed_ns: u64,
    ns_per_op: f64,
    ops_per_sec: f64,
}

fn round(name: &'static str, ops: u64, elapsed_ns: u64) -> Round {
    Round {
        name,
        ops,
        elapsed_ns,
        ns_per_op: elapsed_ns as f64 / ops as f64,
        ops_per_sec: ops as f64 / (elapsed_ns as f64 / 1e9),
    }
}

/// Best-of-N wall-clock for one storm body: returns elapsed ns.
fn best_of<F: FnMut() -> u64>(mut body: F) -> u64 {
    (0..ROUNDS).map(|_| body()).min().expect("rounds > 0")
}

/// The 4-peer storm over the sharded mailbox.
fn storm_sharded() -> u64 {
    best_of(|| {
        let m: Mailbox<Item> = Mailbox::new();
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for key in 0..PEERS {
                let mp = m.clone();
                s.spawn(move || {
                    for payload in 0..PER_PEER {
                        mp.push(Item { key, payload });
                    }
                });
                let mc = m.clone();
                s.spawn(move || {
                    for _ in 0..PER_PEER {
                        let it = mc.recv_keyed(key, |_| true);
                        assert_eq!(it.key, key);
                    }
                });
            }
        });
        t0.elapsed().as_nanos() as u64
    })
}

/// The same storm over the single-lock baseline.
fn storm_locked() -> u64 {
    best_of(|| {
        let m = LockedMailbox::new();
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for key in 0..PEERS {
                let mp = &m;
                s.spawn(move || {
                    for payload in 0..PER_PEER {
                        mp.push(Item { key, payload });
                    }
                });
                let mc = &m;
                s.spawn(move || {
                    for _ in 0..PER_PEER {
                        let it = mc.recv_keyed(key);
                        assert_eq!(it.key, key);
                    }
                });
            }
        });
        t0.elapsed().as_nanos() as u64
    })
}

/// Completion-queue round: PEERS producers, one drainer (the MPSC shape
/// of the progress engine's completion path).
fn cq_storm() -> u64 {
    best_of(|| {
        let q: CompletionQueue<u64> = CompletionQueue::new();
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for p in 0..PEERS {
                let q = &q;
                s.spawn(move || {
                    for i in 0..PER_PEER {
                        q.push(p << 32 | i);
                    }
                });
            }
            let q = &q;
            s.spawn(move || {
                for _ in 0..PEERS * PER_PEER {
                    q.pop_wait().expect("queue not closed");
                }
            });
        });
        t0.elapsed().as_nanos() as u64
    })
}

/// Buffer-pool round: PEERS threads checking out and returning small
/// buffers (the per-frame allocation path of every driver).
fn pool_storm() -> u64 {
    best_of(|| {
        let pool = BufPool::new(Stats::new());
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..PEERS {
                let pool = pool.clone();
                s.spawn(move || {
                    for _ in 0..PER_PEER {
                        let mut b = pool.checkout(256);
                        b.extend_from_slice(&[0u8; 16]);
                        drop(b);
                    }
                });
            }
        });
        t0.elapsed().as_nanos() as u64
    })
}

#[derive(serde::Serialize)]
struct Output {
    rounds: Vec<Round>,
    /// Sharded-mailbox ops/second over the single-lock baseline.
    mailbox_speedup: f64,
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_hotpath.json".into());

    let storm_ops = PEERS * PER_PEER;
    let rounds = vec![
        round("mailbox_locked_baseline", storm_ops, storm_locked()),
        round("mailbox_sharded", storm_ops, storm_sharded()),
        round("completion_queue_mpsc", storm_ops, cq_storm()),
        round("bufpool_lockfree", storm_ops, pool_storm()),
    ];
    println!(
        "{:>26} {:>12} {:>10} {:>14}",
        "round", "ops", "ns/op", "ops/sec"
    );
    for r in &rounds {
        println!(
            "{:>26} {:>12} {:>10.1} {:>14.0}",
            r.name, r.ops, r.ns_per_op, r.ops_per_sec
        );
    }

    let mailbox_speedup = rounds[1].ops_per_sec / rounds[0].ops_per_sec;
    println!("4-peer storm mailbox speedup: {mailbox_speedup:.2}x");
    assert!(
        mailbox_speedup >= 1.3,
        "sharded mailbox speedup {mailbox_speedup:.2}x below 1.3x \
         ({:.0} -> {:.0} ops/sec)",
        rounds[0].ops_per_sec,
        rounds[1].ops_per_sec,
    );

    let json = serde_json::to_string_pretty(&Output {
        rounds,
        mailbox_speedup,
    })
    .expect("serialize results");
    std::fs::write(&out_path, json).expect("write results");
    eprintln!("wrote {out_path}");
}
