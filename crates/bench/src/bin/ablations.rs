//! Ablation studies of design choices the paper calls out.
//!
//! * `dma`        — the SISCI DMA TM the paper ships disabled (§5.2.1);
//! * `bandwidth` — the gateway inbound bandwidth control the paper's
//!   conclusion proposes as future work;
//! * `aggregation` — the BMM aggregation policies (§3.4).
//!
//! Usage: `cargo run -p bench --bin ablations [dma|bandwidth|aggregation|modern|all]`

use bench::experiments;
use bench::table::print_table;

fn main() {
    let what = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    if matches!(what.as_str(), "dma" | "all") {
        print_table(
            "SCI DMA vs PIO (why the DMA TM ships disabled)",
            &experiments::sci_dma_ablation(),
        );
    }
    if matches!(what.as_str(), "bandwidth" | "all") {
        print_table(
            "Gateway inbound bandwidth control (x = admission limit MiB/s, 0 = off)",
            &experiments::bandwidth_control_ablation(),
        );
    }
    if matches!(what.as_str(), "modern" | "all") {
        print_table(
            "Modern-fabric what-if: Madeleine's software on a 200 Gb/s-class NIC",
            &experiments::modern_fabric_whatif(),
        );
    }
    if matches!(what.as_str(), "aggregation" | "all") {
        print_table(
            "BMM aggregation: one k-block message vs k messages (64 B blocks)",
            &experiments::aggregation_ablation(),
        );
    }
}
