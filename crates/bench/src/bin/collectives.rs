//! Topology-aware hierarchical collectives vs the flat binomial baselines.
//!
//! Two clusters (SCI and Myrinet) joined by one gateway, with MPI rank
//! placement **interleaved** across the clusters — the realistic case
//! where the application's rank order does not follow network locality.
//! The flat binomial `bcast` then routes roughly half its tree edges
//! through the gateway, and the flat linear-fan-in `allreduce` crosses it
//! once per remote rank; the hierarchical schedules cross exactly once
//! per remote cluster and keep every other edge inside a leaf network.
//!
//! Sweeps world sizes and payload sizes, measures both algorithms on the
//! same virtual fabric, and closes with an analytic (labelled *modeled*)
//! 1024-rank point: both schedules evaluated as discrete-event trees over
//! the same per-edge cost pair, far beyond what the simulator can host.
//!
//! Headline claims asserted here: hierarchical bcast and allreduce
//! reach 1.5x or better over their flat counterparts at 64 ranks across
//! a gateway, and the modeled 1k-rank point keeps hierarchical at or
//! below flat.
//!
//! Writes `BENCH_collectives.json`.
//!
//! Usage: `collectives [--out PATH]`

use mad_gateway::{Gateway, VirtualChannel, VirtualChannelSpec};
use mad_mpi::{Mpi, ReduceOp, Topology};
use madeleine::{Config, Madeleine, Protocol};
use madsim_net::time;
use madsim_net::{NetKind, WorldBuilder};
use std::sync::Arc;

const ITERS: usize = 3;
const SIZES: &[usize] = &[1 << 10, 64 << 10];
const RANK_SWEEP: &[usize] = &[8, 16, 32, 64];

#[derive(serde::Serialize)]
struct Point {
    collective: &'static str,
    ranks: usize,
    bytes: usize,
    flat_us: f64,
    hier_us: f64,
    speedup: f64,
}

#[derive(serde::Serialize)]
struct ModeledPoint {
    collective: &'static str,
    ranks: usize,
    clusters: usize,
    note: &'static str,
    flat_us: f64,
    hier_us: f64,
    speedup: f64,
}

#[derive(serde::Serialize)]
struct Output {
    measured: Vec<Point>,
    modeled: Vec<ModeledPoint>,
    speedup_bcast_64: f64,
    speedup_allreduce_64: f64,
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Build the two-cluster world for `n` end ranks: end nodes `0..n` plus
/// gateway node `n`; even end nodes sit on the SCI segment, odd ones on
/// Myrinet, so MPI rank order (sorted node ids) interleaves the clusters.
fn bridged_world(n: usize) -> (madsim_net::World, Config, VirtualChannelSpec, Topology) {
    let gw = n;
    let mut sci: Vec<usize> = (0..n).step_by(2).collect();
    let mut myr: Vec<usize> = (1..n).step_by(2).collect();
    sci.push(gw);
    myr.push(gw);
    let mut b = WorldBuilder::new(n + 1);
    b.network("sci0", NetKind::Sci, &sci);
    b.network("myr0", NetKind::Myrinet, &myr);
    let world = b.build();
    let config =
        Config::one("sci", "sci0", Protocol::Sisci).with_channel("myr", "myr0", Protocol::Bip);
    let spec = VirtualChannelSpec::new("vc", &["sci", "myr"], 8192);
    // Rank r is node r (ranks are sorted node ids and the gateway is not
    // a member), so the cluster map interleaves: even -> 0, odd -> 1.
    let topo = Topology::new((0..n).map(|r| r % 2).collect());
    (world, config, spec, topo)
}

/// One timed section: barrier in, `ITERS` runs of `body`, barrier out.
/// Returns this rank's elapsed virtual microseconds.
fn timed(mpi: &Mpi, mut body: impl FnMut()) -> f64 {
    mpi.barrier();
    let t0 = time::now().as_micros_f64();
    for _ in 0..ITERS {
        body();
    }
    mpi.barrier();
    (time::now().as_micros_f64() - t0) / ITERS as f64
}

/// Run every (collective, size, algorithm) section in one world; returns
/// per-section elapsed times, max over ranks (section order: for each
/// size: bcast flat, bcast hier, allreduce flat, allreduce hier, gather
/// flat, gather hier).
fn measure_world(n: usize) -> Vec<f64> {
    let (world, config, spec, topo) = bridged_world(n);
    let per_node = world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let gw = Gateway::spawn(&env, &mad, &config, &spec);
        let vc = VirtualChannel::open(&env, &mad, &config, &spec);
        let mut out = Vec::new();
        if let Some(vc) = vc {
            let ranks: Vec<usize> = (0..n).collect();
            let nodes: Vec<madsim_net::NodeId> = ranks.clone();
            let mpi = Mpi::init_over(Arc::clone(vc.channel()), Some(&nodes));
            let me = mpi.rank();
            for &size in SIZES {
                let pattern: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
                let mut buf = vec![0u8; size];
                out.push(timed(&mpi, || {
                    if me == 0 {
                        buf.copy_from_slice(&pattern);
                    }
                    mpi.bcast(0, &mut buf);
                    assert_eq!(buf, pattern, "flat bcast corrupted");
                }));
                out.push(timed(&mpi, || {
                    buf.fill(0);
                    if me == 0 {
                        buf.copy_from_slice(&pattern);
                    }
                    mpi.bcast_hier(&topo, 0, &mut buf);
                    assert_eq!(buf, pattern, "hierarchical bcast corrupted");
                }));
                // Integer-valued contributions: both reduction orders are
                // exact, so the results must agree bit for bit.
                let vals: Vec<f64> = (0..size / 8).map(|i| ((me + i) % 1000) as f64).collect();
                let mut flat_sum = Vec::new();
                out.push(timed(&mpi, || {
                    flat_sum = mpi.allreduce(ReduceOp::Sum, &vals);
                }));
                out.push(timed(&mpi, || {
                    let hier = mpi.allreduce_hier(&topo, ReduceOp::Sum, &vals);
                    assert_eq!(hier, flat_sum, "hierarchical allreduce diverged");
                }));
                let block: Vec<u8> = pattern[..size / n.max(1)].to_vec();
                out.push(timed(&mpi, || {
                    let g = mpi.gather(0, &block);
                    if me == 0 {
                        assert_eq!(g.expect("root").len(), n);
                    }
                }));
                out.push(timed(&mpi, || {
                    let g = mpi.gather_hier(&topo, 0, &block);
                    if me == 0 {
                        let g = g.expect("root");
                        assert!(g.iter().all(|b| b == &block), "hier gather corrupted");
                    }
                }));
            }
        }
        env.barrier();
        if let Some(gw) = gw {
            gw.stop();
        }
        out
    });
    let sections = per_node.iter().map(|v| v.len()).max().unwrap_or(0);
    (0..sections)
        .map(|s| {
            per_node
                .iter()
                .filter_map(|v| v.get(s).copied())
                .fold(0.0f64, f64::max)
        })
        .collect()
}

// ---------------------------------------------------------------------
// Modeled 1k-rank point: both schedules evaluated as discrete-event
// trees over one per-edge cost pair. Costs are round numbers in the
// shape of the simulated fabric (one SCI/Myrinet hop vs store-and-
// forward through the gateway); the point is the *schedule* comparison,
// not the absolute numbers — hence "modeled" in the output.
// ---------------------------------------------------------------------

const MODEL_LOCAL_US: f64 = 8.0;
const MODEL_CROSS_US: f64 = 60.0;
const MODEL_SEND_GAP_US: f64 = 2.0;
/// Store-and-forward occupancy of the single gateway per cross-cluster
/// message — the shared resource every cross edge queues on.
const MODEL_GW_US: f64 = 20.0;

fn model_cluster(rank: usize) -> usize {
    rank % 2
}

/// Completion time of a binomial bcast over `ranks` rooted at position 0,
/// given per-edge latency `cost(parent, child)`; senders serialize their
/// child sends `MODEL_SEND_GAP_US` apart, and cross-cluster edges queue
/// on the shared gateway (`gw_free` carries its availability across the
/// trees of one schedule). Tree indices are settled in increasing order,
/// which tracks chronological order closely enough for a labelled model.
fn model_tree_bcast(ranks: &[usize], gw_free: &mut f64, cost: impl Fn(usize, usize) -> f64) -> f64 {
    let n = ranks.len();
    let mut ready = vec![0.0f64; n];
    // Virtual ranks become ready in increasing numeric order (the parent
    // of v clears v's lowest set bit), so one forward pass settles all.
    for v in 1..n {
        let m = v & v.wrapping_neg(); // the edge bit: v's lowest set bit
        let parent = v ^ m;
        // The parent sends to its children highest-bit-first; siblings
        // dispatched before this one add a serialization gap each.
        let limit = if parent == 0 {
            n.next_power_of_two()
        } else {
            parent & parent.wrapping_neg()
        };
        let mut slot = 0usize;
        let mut bit = m << 1;
        while bit < limit {
            if parent | bit < n {
                slot += 1;
            }
            bit <<= 1;
        }
        let sent = ready[parent] + slot as f64 * MODEL_SEND_GAP_US;
        let edge = cost(ranks[parent], ranks[v]);
        ready[v] = if edge >= MODEL_CROSS_US {
            let start = sent.max(*gw_free);
            *gw_free = start + MODEL_GW_US;
            start + edge
        } else {
            sent + edge
        };
    }
    ready.into_iter().fold(0.0, f64::max)
}

fn edge_cost(a: usize, b: usize) -> f64 {
    if model_cluster(a) == model_cluster(b) {
        MODEL_LOCAL_US
    } else {
        MODEL_CROSS_US
    }
}

fn model_bcast(n: usize) -> (f64, f64) {
    let all: Vec<usize> = (0..n).collect();
    let flat = model_tree_bcast(&all, &mut 0.0, edge_cost);
    // Hierarchical: leader tree (always cross edges), then the two
    // intra-cluster trees run concurrently — completion is the max.
    let mut gw = 0.0;
    let leaders = [0usize, 1usize];
    let inter = model_tree_bcast(&leaders, &mut gw, edge_cost);
    let c0: Vec<usize> = (0..n).filter(|r| model_cluster(*r) == 0).collect();
    let c1: Vec<usize> = (0..n).filter(|r| model_cluster(*r) == 1).collect();
    let intra =
        model_tree_bcast(&c0, &mut gw, edge_cost).max(model_tree_bcast(&c1, &mut gw, edge_cost));
    (flat, inter + intra)
}

fn model_allreduce(n: usize) -> (f64, f64) {
    // Flat allreduce is a linear fan-in to rank 0 plus a binomial bcast.
    // Model the fan-in generously for flat: all n-1 messages in flight at
    // once, the root draining one per send gap, the n/2 cross-cluster
    // ones also queueing on the gateway, plus one trailing latency.
    let all: Vec<usize> = (0..n).collect();
    let fan_in =
        ((n - 1) as f64 * MODEL_SEND_GAP_US).max(n as f64 / 2.0 * MODEL_GW_US) + MODEL_CROSS_US;
    let flat = fan_in + model_tree_bcast(&all, &mut 0.0, edge_cost);
    // Hierarchical: binomial fan-in mirrors the bcast tree cost, leaders
    // exchange once each way, binomial bcast back down.
    let (_, hier_bcast) = model_bcast(n);
    let hier = hier_bcast + hier_bcast; // reduce mirror + bcast
    (flat, hier)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_collectives.json".into());

    let mut measured = Vec::new();
    println!(
        "{:>10} {:>6} {:>8} {:>10} {:>10} {:>8}",
        "collective", "ranks", "bytes", "flat us", "hier us", "speedup"
    );
    let mut speedup_bcast_64 = 0.0;
    let mut speedup_allreduce_64 = 0.0;
    for &n in RANK_SWEEP {
        let sections = measure_world(n);
        for (si, &size) in SIZES.iter().enumerate() {
            let base = si * 6;
            for (ci, name) in ["bcast", "allreduce", "gather"].iter().enumerate() {
                let flat_us = sections[base + ci * 2];
                let hier_us = sections[base + ci * 2 + 1];
                let speedup = flat_us / hier_us;
                println!(
                    "{name:>10} {n:>6} {size:>8} {flat_us:>10.1} {hier_us:>10.1} {speedup:>7.2}x"
                );
                if n == 64 && si == 0 {
                    match ci {
                        0 => speedup_bcast_64 = speedup,
                        1 => speedup_allreduce_64 = speedup,
                        _ => {}
                    }
                }
                measured.push(Point {
                    collective: ["bcast", "allreduce", "gather"][ci],
                    ranks: n,
                    bytes: size,
                    flat_us,
                    hier_us,
                    speedup,
                });
            }
        }
    }

    // The acceptance claims: >= 1.5x at 64 ranks across the gateway.
    assert!(
        speedup_bcast_64 >= 1.5,
        "hierarchical bcast speedup {speedup_bcast_64:.2}x below 1.5x at 64 ranks"
    );
    assert!(
        speedup_allreduce_64 >= 1.5,
        "hierarchical allreduce speedup {speedup_allreduce_64:.2}x below 1.5x at 64 ranks"
    );

    // Modeled 1k-rank point (the simulator cannot host 1024 live nodes).
    let mut modeled = Vec::new();
    for (name, (flat_us, hier_us)) in [
        ("bcast", model_bcast(1024)),
        ("allreduce", model_allreduce(1024)),
    ] {
        let speedup = flat_us / hier_us;
        println!(
            "{name:>10} {:>6} {:>8} {flat_us:>10.1} {hier_us:>10.1} {speedup:>7.2}x  (modeled)",
            1024, "-"
        );
        assert!(
            hier_us <= flat_us,
            "modeled 1k-rank {name}: hierarchical {hier_us:.1}us above flat {flat_us:.1}us"
        );
        modeled.push(ModeledPoint {
            collective: name,
            ranks: 1024,
            clusters: 2,
            note: "modeled",
            flat_us,
            hier_us,
            speedup,
        });
    }

    println!(
        "64-rank speedups: bcast {speedup_bcast_64:.2}x, allreduce {speedup_allreduce_64:.2}x"
    );
    let json = serde_json::to_string_pretty(&Output {
        measured,
        modeled,
        speedup_bcast_64,
        speedup_allreduce_64,
    })
    .expect("serialize results");
    std::fs::write(&out_path, json).expect("write results");
    eprintln!("wrote {out_path}");
}
