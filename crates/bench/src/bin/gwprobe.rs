fn main() {
    let dir = match std::env::args().nth(1).as_deref() {
        Some("m2s") => bench::experiments::ForwardDir::MyrinetToSci,
        _ => bench::experiments::ForwardDir::SciToMyrinet,
    };
    let p: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8192);
    let m: usize = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(262144);
    let t = bench::experiments::forwarding_oneway_us(dir, p, m);
    eprintln!(
        "one-way us: {t:.1}  bw: {:.2} MiB/s",
        m as f64 / t / 1.048576
    );
}
