//! Fault-injection bench: TCP bulk goodput under seeded frame loss — the
//! price of the ARQ robustness layer, from the unarmed fast path through
//! 5% loss. Prints a table and writes the raw numbers to
//! `BENCH_faults.json`.
//!
//! Usage: `faults [--out PATH] [--seed N] [--transfers N] [--bytes N]`

use bench::experiments::{loss_sweep, LossPoint};

#[derive(serde::Serialize)]
struct Output {
    seed: u64,
    transfers: usize,
    bytes_per_transfer: usize,
    points: Vec<LossPoint>,
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_faults.json".into());
    let seed: u64 = arg_value(&args, "--seed")
        .map(|v| v.parse().expect("--seed takes an integer"))
        .unwrap_or(42);
    let transfers: usize = arg_value(&args, "--transfers")
        .map(|v| v.parse().expect("--transfers takes a count"))
        .unwrap_or(8);
    let bytes: usize = arg_value(&args, "--bytes")
        .map(|v| v.parse().expect("--bytes takes a byte count"))
        .unwrap_or(1 << 20);

    println!("== TCP bulk goodput vs seeded frame loss — {transfers} x {bytes} B, seed {seed} ==");
    println!(
        "{:>8} {:>12} {:>10} {:>12} {:>8}",
        "loss", "virtual ms", "MiB/s", "retransmits", "drops"
    );
    let points = loss_sweep(seed, transfers, bytes);
    for p in &points {
        let loss = match p.loss {
            Some(r) => format!("{:.1}%", r * 100.0),
            None => "unarmed".into(),
        };
        println!(
            "{:>8} {:>12.1} {:>10.2} {:>12} {:>8}",
            loss,
            p.virtual_us / 1000.0,
            p.goodput_mibps,
            p.retransmits,
            p.drops
        );
    }

    let out = Output {
        seed,
        transfers,
        bytes_per_transfer: bytes,
        points,
    };
    let json = serde_json::to_string_pretty(&out).expect("serialize results");
    std::fs::write(&out_path, json).expect("write results");
    eprintln!("wrote {out_path}");
}
