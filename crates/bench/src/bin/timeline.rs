//! Virtual-time timeline of a message's trip through the stack.
//!
//! Runs a two-node scenario with tracing enabled and prints each node's
//! Switch/commit/checkout events with virtual timestamps — the paper's
//! Fig. 3 walk-through ("A Message Transmission Step-by-Step"), observed
//! live.
//!
//! Usage: `cargo run -p bench --bin timeline [-- <protocol>]`
//! where `<protocol>` is one of sisci|bip|tcp|via|sbp (default sisci).

use madeleine::trace::TraceEvent;
use madeleine::{Config, Madeleine, Protocol, RecvMode, SendMode};
use madsim_net::{NetKind, WorldBuilder};

fn main() {
    let proto = std::env::args().nth(1).unwrap_or_else(|| "sisci".into());
    let (protocol, net, kind) = match proto.as_str() {
        "bip" => (Protocol::Bip, "myr0", NetKind::Myrinet),
        "tcp" => (Protocol::Tcp, "eth0", NetKind::Ethernet),
        "via" => (Protocol::Via, "san0", NetKind::ViaSan),
        "sbp" => (Protocol::Sbp, "eth0", NetKind::Ethernet),
        _ => (Protocol::Sisci, "sci0", NetKind::Sci),
    };
    let mut b = WorldBuilder::new(2);
    b.network(net, kind, &[0, 1]);
    let world = b.build();
    let config = Config::one("ch", net, protocol);

    let timelines = world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let ch = mad.channel("ch");
        ch.enable_trace();
        // The paper's RPC shape: name (express) + small arg (express) +
        // bulk array (cheaper).
        let name = b"remote_sort";
        let arg = 42u32.to_le_bytes();
        let bulk = vec![7u8; 50_000];
        if env.id() == 0 {
            let mut m = ch.begin_packing(1);
            m.pack(name, SendMode::Cheaper, RecvMode::Express);
            m.pack(&arg, SendMode::Cheaper, RecvMode::Express);
            m.pack(&bulk, SendMode::Cheaper, RecvMode::Cheaper);
            m.end_packing();
        } else {
            let mut nm = [0u8; 11];
            let mut ar = [0u8; 4];
            let mut bk = vec![0u8; 50_000];
            let mut m = ch.begin_unpacking();
            m.unpack_express(&mut nm, SendMode::Cheaper);
            m.unpack_express(&mut ar, SendMode::Cheaper);
            m.unpack(&mut bk, SendMode::Cheaper, RecvMode::Cheaper);
            m.end_unpacking();
        }
        ch.tracer().events()
    });

    for (node, events) in timelines.iter().enumerate() {
        println!("\n== node {node} ==");
        println!("{:>12}  event", "virtual time");
        for t in events {
            let desc = match &t.event {
                TraceEvent::BeginPacking { dst } => format!("begin_packing -> node {dst}"),
                TraceEvent::Pack {
                    len,
                    smode,
                    rmode,
                    tm,
                } => format!("pack {len} B  ({smode}, {rmode})  -> TM {tm}"),
                TraceEvent::CommitOnSwitch { from, to } => {
                    format!("COMMIT (TM switch {from} -> {to})")
                }
                TraceEvent::EndPacking => "end_packing (final commit)".into(),
                TraceEvent::BeginUnpacking { src } => {
                    format!("begin_unpacking <- node {src}")
                }
                TraceEvent::Unpack {
                    len,
                    smode,
                    rmode,
                    tm,
                } => format!("unpack {len} B  ({smode}, {rmode})  <- TM {tm}"),
                TraceEvent::CheckoutOnSwitch { from, to } => {
                    format!("CHECKOUT (TM switch {from} -> {to})")
                }
                TraceEvent::EndUnpacking => "end_unpacking (final checkout)".into(),
                TraceEvent::MessageStats {
                    copied_bytes,
                    borrowed_bytes,
                    pool_hits,
                    pool_misses,
                } => format!(
                    "message stats: {copied_bytes} B copied, {borrowed_bytes} B \
                     by reference, pool {pool_hits} hits / {pool_misses} misses"
                ),
                // Multirail, fault, nonblocking, and batching events are
                // not part of the Fig. 3 two-node walk-through.
                other => format!("{other:?}"),
            };
            println!("{:>10.2}us  {desc}", t.at.as_micros_f64());
        }
    }
}
