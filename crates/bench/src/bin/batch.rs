//! Adaptive wire-level batching: burst of small posted messages with and
//! without multi-envelope coalescing, under both wire codecs.
//!
//! Each round, node 0 posts 64 messages of 64 B toward node 1 over TCP
//! (Fast Ethernet — the stack with the steepest fixed per-frame cost),
//! flushes, waits the ops out, and then blocks on a 1-byte ack. Without
//! batching every message costs two wire frames (internal header + data);
//! with `with_batching(16, 4096, 20.0)` sixteen consecutive packets ride
//! one frame, so the fixed per-frame cost (`TCP_FRAME_COST`) is paid an
//! eighth as often. The headline claim asserted below: the batched burst
//! moves >= 2x the payload throughput of the unbatched one.
//!
//! The batched run is measured twice: once forced to the classic
//! fixed-width codec (`with_classic_wire`) and once auto-negotiated to
//! the compact varint codec. Identical application traffic, so the whole
//! difference in frame bytes is header overhead — asserted to shrink by
//! >= 25% under the compact codec for the 64x64 B burst.
//!
//! Writes `BENCH_batch.json`, including the frames saved per the shared
//! cost table in `madsim_net::stacks` — the same constants the TCP stack
//! charges, so the "saved" column and the measured speedup must agree in
//! shape.
//!
//! Usage: `batch [--out PATH]`

use bytes::Bytes;
use madeleine::{ChannelSpec, Config, Madeleine, Protocol, RecvMode, SendMode};
use madsim_net::stacks::TCP_FRAME_COST;
use madsim_net::time;
use madsim_net::{NetKind, WorldBuilder};

const ROUNDS: usize = 8;
const PACKETS: usize = 64;
const PACKET_LEN: usize = 64;

#[derive(serde::Serialize)]
struct BatchRun {
    batching: bool,
    /// Wire codec of the run: "classic" (forced) or "compact" (auto).
    wire: &'static str,
    rounds: usize,
    packets_per_round: usize,
    packet_bytes: usize,
    elapsed_us: f64,
    mibps: f64,
    /// Batch frames flushed (both nodes; 0 when batching is off).
    batches: u64,
    /// Packets that traveled inside those frames.
    batched_packets: u64,
    /// Wire frames the coalescing avoided: every batch of `n` packets
    /// replaces `n` single-packet frames with one.
    frames_saved: u64,
    /// Fixed frame cost avoided, per the shared stack cost table.
    saved_frame_cost_us: f64,
    /// Total bytes of node 0's flushed batch frames.
    frame_bytes: u64,
    /// Application payload bytes of the burst (64 B packets only).
    app_payload_bytes: u64,
    /// Everything that is not application payload: the frame header, the
    /// per-packet envelopes, and the encoded per-message channel headers.
    header_bytes: u64,
    /// Nanoseconds per packet across the whole burst.
    ns_per_op: f64,
}

#[derive(serde::Serialize)]
struct Output {
    runs: Vec<BatchRun>,
    speedup: f64,
    /// Fractional reduction in header bytes, classic -> compact.
    header_reduction: f64,
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Run the burst workload; per node:
/// `[elapsed_us, batches, batched_packets, frame_bytes, payload_bytes]`.
fn burst(batching: bool, classic: bool) -> Vec<[f64; 5]> {
    let mut b = WorldBuilder::new(2);
    b.network("net0", NetKind::Ethernet, &[0, 1]);
    let world = b.build();
    let mut spec = ChannelSpec::new("ch", "net0", Protocol::Tcp);
    if batching {
        spec = spec.with_batching(16, 4096, 20.0);
    }
    if classic {
        spec = spec.with_classic_wire();
    }
    let config = Config::default().with_channel_spec(spec);
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let ch = mad.channel("ch");
        let elapsed = if env.id() == 0 {
            let payload = Bytes::from(vec![0xA5u8; PACKET_LEN]);
            let t0 = time::now().as_micros_f64();
            for _ in 0..ROUNDS {
                let ids: Vec<_> = (0..PACKETS)
                    .map(|_| {
                        ch.post_message(
                            1,
                            vec![(payload.clone(), SendMode::Cheaper, RecvMode::Cheaper)],
                        )
                    })
                    .collect();
                ch.flush().expect("batch flush");
                for id in ids {
                    ch.wait_op(id).expect("posted packet completes");
                }
                let mut ack = [0u8; 1];
                let mut msg = ch.begin_unpacking();
                msg.unpack_express(&mut ack, SendMode::Cheaper);
                msg.end_unpacking();
                assert_eq!(ack[0], 1, "ack corrupted");
            }
            time::now().as_micros_f64() - t0
        } else {
            for _ in 0..ROUNDS {
                for _ in 0..PACKETS {
                    let mut got = vec![0u8; PACKET_LEN];
                    let mut msg = ch.begin_unpacking();
                    msg.unpack(&mut got, SendMode::Cheaper, RecvMode::Cheaper);
                    msg.end_unpacking();
                    assert!(got.iter().all(|&x| x == 0xA5), "payload corrupted");
                }
                let mut msg = ch.begin_packing(0);
                msg.pack(&[1u8], SendMode::Cheaper, RecvMode::Express);
                msg.end_packing();
            }
            0.0
        };
        let stats = ch.stats();
        [
            elapsed,
            stats.batches() as f64,
            stats.batched_packets() as f64,
            stats.batch_frame_bytes() as f64,
            stats.batch_payload_bytes() as f64,
        ]
    })
}

fn mibps(bytes: usize, us: f64) -> f64 {
    (bytes as f64 / (1 << 20) as f64) / (us / 1e6)
}

fn measure(batching: bool, classic: bool) -> BatchRun {
    let per_node = burst(batching, classic);
    let elapsed_us = per_node[0][0];
    let batches = per_node.iter().map(|n| n[1] as u64).sum::<u64>();
    let batched_packets = per_node.iter().map(|n| n[2] as u64).sum::<u64>();
    let frames_saved = batched_packets - batches;
    if !batching {
        assert_eq!(
            batches, 0,
            "batching disabled must bypass the batch layer entirely"
        );
    }
    let payload = ROUNDS * PACKETS * PACKET_LEN;
    // Header accounting on node 0's frames: every byte beyond the 64 B
    // application payloads is framing — batch header, envelopes, and the
    // encoded per-message channel headers riding as deferred packets.
    let frame_bytes = per_node[0][3] as u64;
    let app_payload_bytes = if batching { payload as u64 } else { 0 };
    BatchRun {
        batching,
        wire: if classic { "classic" } else { "compact" },
        rounds: ROUNDS,
        packets_per_round: PACKETS,
        packet_bytes: PACKET_LEN,
        elapsed_us,
        mibps: mibps(payload, elapsed_us),
        batches,
        batched_packets,
        frames_saved,
        saved_frame_cost_us: frames_saved as f64 * TCP_FRAME_COST.per_frame_us(),
        frame_bytes,
        app_payload_bytes,
        header_bytes: frame_bytes.saturating_sub(app_payload_bytes),
        ns_per_op: elapsed_us * 1e3 / (ROUNDS * PACKETS) as f64,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_batch.json".into());

    println!(
        "{:>8} {:>8} {:>12} {:>10} {:>8} {:>12} {:>12}",
        "batching", "wire", "elapsed us", "MiB/s", "batches", "frames saved", "header bytes"
    );
    let off = measure(false, false);
    let on_classic = measure(true, true);
    let on = measure(true, false);
    for r in [&off, &on_classic, &on] {
        println!(
            "{:>8} {:>8} {:>12.1} {:>10.3} {:>8} {:>12} {:>12}",
            r.batching, r.wire, r.elapsed_us, r.mibps, r.batches, r.frames_saved, r.header_bytes
        );
    }

    // The acceptance claim: coalescing 64 B packets over TCP buys >= 2x
    // payload throughput on the ping-burst.
    let speedup = on.mibps / off.mibps;
    assert!(
        speedup >= 2.0,
        "batching speedup {speedup:.2}x below 2x ({:.3} -> {:.3} MiB/s)",
        off.mibps,
        on.mibps
    );
    println!("64x64B TCP burst batching speedup: {speedup:.2}x");

    // The codec claim: identical burst, identical frames — the compact
    // varint codec must strip >= 25% of the header bytes.
    assert_eq!(
        on.batched_packets, on_classic.batched_packets,
        "codec must not change what gets batched"
    );
    let header_reduction = 1.0 - on.header_bytes as f64 / on_classic.header_bytes.max(1) as f64;
    assert!(
        header_reduction >= 0.25,
        "compact codec header reduction {:.1}% below 25% ({} -> {} bytes)",
        header_reduction * 100.0,
        on_classic.header_bytes,
        on.header_bytes
    );
    println!(
        "64x64B burst header bytes: {} classic -> {} compact ({:.1}% saved)",
        on_classic.header_bytes,
        on.header_bytes,
        header_reduction * 100.0
    );

    let json = serde_json::to_string_pretty(&Output {
        runs: vec![off, on_classic, on],
        speedup,
        header_reduction,
    })
    .expect("serialize results");
    std::fs::write(&out_path, json).expect("write results");
    eprintln!("wrote {out_path}");
}
