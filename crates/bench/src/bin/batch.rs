//! Adaptive wire-level batching: burst of small posted messages with and
//! without multi-envelope coalescing.
//!
//! Each round, node 0 posts 64 messages of 64 B toward node 1 over TCP
//! (Fast Ethernet — the stack with the steepest fixed per-frame cost),
//! flushes, waits the ops out, and then blocks on a 1-byte ack. Without
//! batching every message costs two wire frames (internal header + data);
//! with `with_batching(16, 4096, 20.0)` sixteen consecutive packets ride
//! one frame, so the fixed per-frame cost (`TCP_FRAME_COST`) is paid an
//! eighth as often. The headline claim asserted below: the batched burst
//! moves >= 2x the payload throughput of the unbatched one.
//!
//! Writes `BENCH_batch.json`, including the frames saved per the shared
//! cost table in `madsim_net::stacks` — the same constants the TCP stack
//! charges, so the "saved" column and the measured speedup must agree in
//! shape.
//!
//! Usage: `batch [--out PATH]`

use bytes::Bytes;
use madeleine::{ChannelSpec, Config, Madeleine, Protocol, RecvMode, SendMode};
use madsim_net::stacks::TCP_FRAME_COST;
use madsim_net::time;
use madsim_net::{NetKind, WorldBuilder};

const ROUNDS: usize = 8;
const PACKETS: usize = 64;
const PACKET_LEN: usize = 64;

#[derive(serde::Serialize)]
struct BatchRun {
    batching: bool,
    rounds: usize,
    packets_per_round: usize,
    packet_bytes: usize,
    elapsed_us: f64,
    mibps: f64,
    /// Batch frames flushed (both nodes; 0 when batching is off).
    batches: u64,
    /// Packets that traveled inside those frames.
    batched_packets: u64,
    /// Wire frames the coalescing avoided: every batch of `n` packets
    /// replaces `n` single-packet frames with one.
    frames_saved: u64,
    /// Fixed frame cost avoided, per the shared stack cost table.
    saved_frame_cost_us: f64,
    /// Nanoseconds per packet across the whole burst.
    ns_per_op: f64,
}

#[derive(serde::Serialize)]
struct Output {
    runs: Vec<BatchRun>,
    speedup: f64,
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Run the burst workload; per node: `[elapsed_us, batches, batched_packets]`.
fn burst(batching: bool) -> Vec<[f64; 3]> {
    let mut b = WorldBuilder::new(2);
    b.network("net0", NetKind::Ethernet, &[0, 1]);
    let world = b.build();
    let mut spec = ChannelSpec::new("ch", "net0", Protocol::Tcp);
    if batching {
        spec = spec.with_batching(16, 4096, 20.0);
    }
    let config = Config::default().with_channel_spec(spec);
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let ch = mad.channel("ch");
        let elapsed = if env.id() == 0 {
            let payload = Bytes::from(vec![0xA5u8; PACKET_LEN]);
            let t0 = time::now().as_micros_f64();
            for _ in 0..ROUNDS {
                let ids: Vec<_> = (0..PACKETS)
                    .map(|_| {
                        ch.post_message(
                            1,
                            vec![(payload.clone(), SendMode::Cheaper, RecvMode::Cheaper)],
                        )
                    })
                    .collect();
                ch.flush().expect("batch flush");
                for id in ids {
                    ch.wait_op(id).expect("posted packet completes");
                }
                let mut ack = [0u8; 1];
                let mut msg = ch.begin_unpacking();
                msg.unpack_express(&mut ack, SendMode::Cheaper);
                msg.end_unpacking();
                assert_eq!(ack[0], 1, "ack corrupted");
            }
            time::now().as_micros_f64() - t0
        } else {
            for _ in 0..ROUNDS {
                for _ in 0..PACKETS {
                    let mut got = vec![0u8; PACKET_LEN];
                    let mut msg = ch.begin_unpacking();
                    msg.unpack(&mut got, SendMode::Cheaper, RecvMode::Cheaper);
                    msg.end_unpacking();
                    assert!(got.iter().all(|&x| x == 0xA5), "payload corrupted");
                }
                let mut msg = ch.begin_packing(0);
                msg.pack(&[1u8], SendMode::Cheaper, RecvMode::Express);
                msg.end_packing();
            }
            0.0
        };
        let stats = ch.stats();
        [
            elapsed,
            stats.batches() as f64,
            stats.batched_packets() as f64,
        ]
    })
}

fn mibps(bytes: usize, us: f64) -> f64 {
    (bytes as f64 / (1 << 20) as f64) / (us / 1e6)
}

fn measure(batching: bool) -> BatchRun {
    let per_node = burst(batching);
    let elapsed_us = per_node[0][0];
    let batches = per_node.iter().map(|n| n[1] as u64).sum::<u64>();
    let batched_packets = per_node.iter().map(|n| n[2] as u64).sum::<u64>();
    let frames_saved = batched_packets - batches;
    if !batching {
        assert_eq!(
            batches, 0,
            "batching disabled must bypass the batch layer entirely"
        );
    }
    let payload = ROUNDS * PACKETS * PACKET_LEN;
    BatchRun {
        batching,
        rounds: ROUNDS,
        packets_per_round: PACKETS,
        packet_bytes: PACKET_LEN,
        elapsed_us,
        mibps: mibps(payload, elapsed_us),
        batches,
        batched_packets,
        frames_saved,
        saved_frame_cost_us: frames_saved as f64 * TCP_FRAME_COST.per_frame_us(),
        ns_per_op: elapsed_us * 1e3 / (ROUNDS * PACKETS) as f64,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_batch.json".into());

    println!(
        "{:>8} {:>12} {:>10} {:>8} {:>12} {:>14}",
        "batching", "elapsed us", "MiB/s", "batches", "frames saved", "saved cost us"
    );
    let off = measure(false);
    let on = measure(true);
    for r in [&off, &on] {
        println!(
            "{:>8} {:>12.1} {:>10.3} {:>8} {:>12} {:>14.1}",
            r.batching, r.elapsed_us, r.mibps, r.batches, r.frames_saved, r.saved_frame_cost_us
        );
    }

    // The acceptance claim: coalescing 64 B packets over TCP buys >= 2x
    // payload throughput on the ping-burst.
    let speedup = on.mibps / off.mibps;
    assert!(
        speedup >= 2.0,
        "batching speedup {speedup:.2}x below 2x ({:.3} -> {:.3} MiB/s)",
        off.mibps,
        on.mibps
    );
    println!("64x64B TCP burst batching speedup: {speedup:.2}x");

    let json = serde_json::to_string_pretty(&Output {
        runs: vec![off, on],
        speedup,
    })
    .expect("serialize results");
    std::fs::write(&out_path, json).expect("write results");
    eprintln!("wrote {out_path}");
}
