//! Criterion benches wrapping the per-figure harnesses.
//!
//! Criterion measures the *wall time of the simulation*; the scientific
//! result — the virtual-time latency/bandwidth series — is printed once per
//! group so `cargo bench` regenerates the paper's numbers alongside the
//! harness timings. Use `cargo run -p bench --bin figures` for the full
//! sweeps.

use bench::experiments::{self, ForwardDir};
use bench::table::print_table;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig4(c: &mut Criterion) {
    // Print the full series once.
    print_table("Fig. 4 — Madeleine II over SISCI/SCI", &experiments::fig4());
    let mut g = c.benchmark_group("fig4_sisci");
    g.sample_size(10);
    g.bench_function("oneway_8k", |b| {
        b.iter(|| experiments::madeleine_oneway_us(madeleine::Protocol::Sisci, 8192, false))
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    print_table(
        "Fig. 5 — Madeleine II over BIP/Myrinet",
        &experiments::fig5(),
    );
    let mut g = c.benchmark_group("fig5_bip");
    g.sample_size(10);
    g.bench_function("oneway_8k", |b| {
        b.iter(|| experiments::madeleine_oneway_us(madeleine::Protocol::Bip, 8192, false))
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    print_table(
        "Fig. 6 — MPI implementations over SCI (bandwidth)",
        &experiments::fig6(),
    );
    print_table(
        "Fig. 6 — MPI implementations over SCI (latency)",
        &experiments::fig6_latency(),
    );
    let mut g = c.benchmark_group("fig6_mpi");
    g.sample_size(10);
    g.bench_function("mpi_oneway_32k", |b| {
        b.iter(|| experiments::mpi_oneway_us(madeleine::Protocol::Sisci, 32768))
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    print_table(
        "Fig. 7 — Nexus/Madeleine II performance",
        &experiments::fig7(),
    );
    let mut g = c.benchmark_group("fig7_nexus");
    g.sample_size(10);
    g.bench_function("rsr_oneway_4b", |b| {
        b.iter(|| experiments::nexus_oneway_us(madeleine::Protocol::Sisci, 4))
    });
    g.finish();
}

fn bench_fig10(c: &mut Criterion) {
    print_table(
        "Fig. 10 — forwarding bandwidth SISCI/SCI -> BIP/Myrinet",
        &experiments::forwarding_figure(ForwardDir::SciToMyrinet),
    );
    let mut g = c.benchmark_group("fig10_forwarding");
    g.sample_size(10);
    g.bench_function("sci_to_myr_8k_pkt", |b| {
        b.iter(|| experiments::forwarding_oneway_us(ForwardDir::SciToMyrinet, 8192, 65536))
    });
    g.finish();
}

fn bench_fig11(c: &mut Criterion) {
    print_table(
        "Fig. 11 — forwarding bandwidth BIP/Myrinet -> SISCI/SCI",
        &experiments::forwarding_figure(ForwardDir::MyrinetToSci),
    );
    let mut g = c.benchmark_group("fig11_forwarding");
    g.sample_size(10);
    g.bench_function("myr_to_sci_8k_pkt", |b| {
        b.iter(|| experiments::forwarding_oneway_us(ForwardDir::MyrinetToSci, 8192, 65536))
    });
    g.finish();
}

fn bench_dma_ablation(c: &mut Criterion) {
    print_table(
        "SCI DMA ablation (§5.2.1)",
        &experiments::sci_dma_ablation(),
    );
    let mut g = c.benchmark_group("sci_dma_ablation");
    g.sample_size(10);
    g.bench_function("dma_oneway_256k", |b| {
        b.iter(|| experiments::madeleine_oneway_us(madeleine::Protocol::Sisci, 1 << 18, true))
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig10,
    bench_fig11,
    bench_dma_ablation
);
criterion_main!(figures);
