//! Micro-benchmarks of the library internals (wall time): these measure
//! the *simulator's* software cost — how fast the reproduction itself
//! runs — not the modeled network time.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use madeleine::{Config, Connections, Madeleine, Protocol, RecvMode, SendMode};
use madsim_net::{NetKind, WorldBuilder};

/// A whole two-node SISCI session bootstrap.
fn bench_session_init(c: &mut Criterion) {
    let mut g = c.benchmark_group("session");
    g.sample_size(20);
    g.bench_function("init_sisci_pair", |b| {
        b.iter(|| {
            let mut wb = WorldBuilder::new(2);
            wb.network("sci0", NetKind::Sci, &[0, 1]);
            let world = wb.build();
            let config = Config::one("ch", "sci0", Protocol::Sisci);
            world.run(|env| {
                let _mad = Madeleine::init(&env, &config);
            });
        })
    });
    g.finish();
}

/// Messages per wall-second through the full stack.
fn bench_message_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("throughput");
    g.sample_size(10);
    for (name, n) in [("small_64b", 64usize), ("bulk_64k", 65536)] {
        g.throughput(Throughput::Bytes(n as u64 * 100));
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut wb = WorldBuilder::new(2);
                wb.network("sci0", NetKind::Sci, &[0, 1]);
                let world = wb.build();
                let config = Config::one("ch", "sci0", Protocol::Sisci);
                world.run(|env| {
                    let mad = Madeleine::init(&env, &config);
                    let ch = mad.channel("ch");
                    let data = vec![3u8; n];
                    for _ in 0..100 {
                        if env.id() == 0 {
                            let mut m = ch.begin_packing(1);
                            m.pack(&data, SendMode::Cheaper, RecvMode::Cheaper);
                            m.end_packing();
                        } else {
                            let mut buf = vec![0u8; n];
                            let mut m = ch.begin_unpacking();
                            m.unpack(&mut buf, SendMode::Cheaper, RecvMode::Cheaper);
                            m.end_unpacking();
                        }
                    }
                });
            })
        });
    }
    g.finish();
}

/// The connection layer's sequence-number claim under two-thread
/// contention, each thread hammering a *different* peer — the case the
/// old channel-global `Mutex<HashMap>` serialized and the per-connection
/// atomics do not. The mutexed variant reproduced here is the pre-refactor
/// data structure, kept as the baseline.
fn bench_seq_contention(c: &mut Criterion) {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    const CLAIMS: usize = 100_000;
    let mut g = c.benchmark_group("seq_claim_2threads_distinct_peers");
    g.throughput(Throughput::Elements(2 * CLAIMS as u64));

    // Two threads claim CLAIMS sequence numbers each, toward peers 1 and
    // 2, synchronized on a start flag so the contention window overlaps.
    fn race(claim: impl Fn(usize) + Sync) {
        let start = AtomicBool::new(false);
        std::thread::scope(|s| {
            let handles: Vec<_> = [1usize, 2]
                .into_iter()
                .map(|peer| {
                    let start = &start;
                    let claim = &claim;
                    s.spawn(move || {
                        while !start.load(Ordering::Acquire) {
                            std::hint::spin_loop();
                        }
                        for _ in 0..CLAIMS {
                            claim(peer);
                        }
                    })
                })
                .collect();
            start.store(true, Ordering::Release);
            for h in handles {
                h.join().unwrap();
            }
        });
    }

    g.bench_function("mutex_hashmap_baseline", |b| {
        b.iter(|| {
            let seqs: Mutex<HashMap<usize, u32>> = Mutex::new(HashMap::new());
            race(|peer| {
                let mut map = seqs.lock().unwrap();
                let e = map.entry(peer).or_insert(0);
                *e = e.wrapping_add(1);
            });
        })
    });
    g.bench_function("per_connection_atomics", |b| {
        b.iter(|| {
            let conns = Connections::new(0, &[0, 1, 2]);
            race(|peer| {
                conns.get(peer).unwrap().next_send_seq();
            });
        })
    });
    g.finish();
}

criterion_group!(
    micro,
    bench_session_init,
    bench_message_throughput,
    bench_seq_contention
);
criterion_main!(micro);
