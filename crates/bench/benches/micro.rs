//! Micro-benchmarks of the library internals (wall time): these measure
//! the *simulator's* software cost — how fast the reproduction itself
//! runs — not the modeled network time.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use madeleine::{Config, Madeleine, Protocol, RecvMode, SendMode};
use madsim_net::{NetKind, WorldBuilder};

/// A whole two-node SISCI session bootstrap.
fn bench_session_init(c: &mut Criterion) {
    let mut g = c.benchmark_group("session");
    g.sample_size(20);
    g.bench_function("init_sisci_pair", |b| {
        b.iter(|| {
            let mut wb = WorldBuilder::new(2);
            wb.network("sci0", NetKind::Sci, &[0, 1]);
            let world = wb.build();
            let config = Config::one("ch", "sci0", Protocol::Sisci);
            world.run(|env| {
                let _mad = Madeleine::init(&env, &config);
            });
        })
    });
    g.finish();
}

/// Messages per wall-second through the full stack.
fn bench_message_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("throughput");
    g.sample_size(10);
    for (name, n) in [("small_64b", 64usize), ("bulk_64k", 65536)] {
        g.throughput(Throughput::Bytes(n as u64 * 100));
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut wb = WorldBuilder::new(2);
                wb.network("sci0", NetKind::Sci, &[0, 1]);
                let world = wb.build();
                let config = Config::one("ch", "sci0", Protocol::Sisci);
                world.run(|env| {
                    let mad = Madeleine::init(&env, &config);
                    let ch = mad.channel("ch");
                    let data = vec![3u8; n];
                    for _ in 0..100 {
                        if env.id() == 0 {
                            let mut m = ch.begin_packing(1);
                            m.pack(&data, SendMode::Cheaper, RecvMode::Cheaper);
                            m.end_packing();
                        } else {
                            let mut buf = vec![0u8; n];
                            let mut m = ch.begin_unpacking();
                            m.unpack(&mut buf, SendMode::Cheaper, RecvMode::Cheaper);
                            m.end_unpacking();
                        }
                    }
                });
            })
        });
    }
    g.finish();
}

criterion_group!(micro, bench_session_init, bench_message_throughput);
criterion_main!(micro);
