//! # mad-nexus — Nexus/Madeleine II (Rust reproduction of paper §5.3.2)
//!
//! Nexus (Foster, Kesselman, Tuecke) is the multithreaded communication
//! layer of Globus, built around **remote service requests** (RSR): a
//! message names a *handler* on the destination context; arrival dispatches
//! the handler with the message buffer. Nexus is designed for wide-area
//! interoperability and pays for it with heavy per-message machinery —
//! which is exactly why the paper ports it onto Madeleine II for the
//! cluster scale: "even with a rather heavy interface and without any
//! sophisticated optimization, our Nexus/Madeleine II implementation is
//! very effective on a high-performance network like SCI (with a minimal
//! latency below 25 µs)".
//!
//! This crate reproduces that port: an RSR layer whose transport is one
//! Madeleine message per request (envelope `receive_EXPRESS`, payload
//! `receive_CHEAPER`), with the marshaling/dispatch overhead of Nexus
//! charged explicitly. Running it over the TCP channel reproduces the
//! Fig. 7 baseline; over SISCI, the fast curve. As in the paper, Madeleine
//! is "currently seen as one protocol by Nexus": a Globus application
//! would keep plain TCP for wide-area links and this module for the
//! cluster fabric.

use bytes::Bytes;
use madeleine::{Channel, RecvMode, SendMode};
use madsim_net::time::{self, VDuration};
use madsim_net::NodeId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Sender-side Nexus software overhead per RSR (marshaling, startpoint
/// lookup, protocol module dispatch). Calibrated so the SISCI one-way
/// latency lands just under the paper's 25 µs.
pub const NEXUS_SEND_OVERHEAD_US: f64 = 7.5;
/// Receiver-side overhead (unmarshaling, handler-thread activation).
pub const NEXUS_DISPATCH_OVERHEAD_US: f64 = 8.5;

/// An incoming remote service request.
pub struct Rsr {
    /// Sending node.
    pub src: NodeId,
    /// Handler id the sender named.
    pub handler: u32,
    /// The request buffer.
    pub data: Bytes,
}

type Handler = Box<dyn Fn(&Nexus, Rsr) + Send + Sync>;

/// A Nexus context bound to one Madeleine channel.
pub struct Nexus {
    chan: Arc<Channel>,
    handlers: Mutex<HashMap<u32, Handler>>,
}

impl Nexus {
    /// Attach a context to a channel (every member does the same).
    pub fn new(chan: Arc<Channel>) -> Arc<Nexus> {
        Arc::new(Nexus {
            chan,
            handlers: Mutex::new(HashMap::new()),
        })
    }

    /// The node this context lives on.
    pub fn me(&self) -> NodeId {
        self.chan.me()
    }

    /// All context nodes (channel members).
    pub fn nodes(&self) -> &[NodeId] {
        self.chan.peers()
    }

    /// Register (or replace) the handler for `id`.
    pub fn register(&self, id: u32, handler: impl Fn(&Nexus, Rsr) + Send + Sync + 'static) {
        self.handlers.lock().insert(id, Box::new(handler));
    }

    /// Issue a remote service request: `handler` runs on `dst` with `data`.
    pub fn send_rsr(&self, dst: NodeId, handler: u32, data: &[u8]) {
        time::advance(VDuration::from_micros_f64(NEXUS_SEND_OVERHEAD_US));
        let mut env = [0u8; 8];
        env[0..4].copy_from_slice(&handler.to_le_bytes());
        env[4..8].copy_from_slice(&(data.len() as u32).to_le_bytes());
        let mut msg = self.chan.begin_packing(dst);
        msg.pack(&env, SendMode::Cheaper, RecvMode::Express);
        if !data.is_empty() {
            msg.pack(data, SendMode::Cheaper, RecvMode::Cheaper);
        }
        msg.end_packing();
    }

    /// Receive the next RSR without dispatching it.
    pub fn recv_rsr(&self) -> Rsr {
        let mut msg = self.chan.begin_unpacking();
        let src = msg.src();
        let mut env = [0u8; 8];
        msg.unpack_express(&mut env, SendMode::Cheaper);
        let handler = u32::from_le_bytes(env[0..4].try_into().expect("4 bytes"));
        let len = u32::from_le_bytes(env[4..8].try_into().expect("4 bytes")) as usize;
        let mut data = vec![0u8; len];
        if len > 0 {
            msg.unpack(&mut data, SendMode::Cheaper, RecvMode::Cheaper);
        }
        msg.end_unpacking();
        time::advance(VDuration::from_micros_f64(NEXUS_DISPATCH_OVERHEAD_US));
        Rsr {
            src,
            handler,
            data: Bytes::from(data),
        }
    }

    /// Receive one RSR and run its registered handler; returns the handler
    /// id that ran.
    ///
    /// # Panics
    /// Panics if the named handler was never registered.
    pub fn handle_one(self: &Arc<Self>) -> u32 {
        let rsr = self.recv_rsr();
        let id = rsr.handler;
        // Take the handler out for the call so handlers may re-register or
        // send RSRs without deadlocking on the table lock.
        let h = self
            .handlers
            .lock()
            .remove(&id)
            .unwrap_or_else(|| panic!("no handler registered for id {id}"));
        h(self, rsr);
        self.handlers.lock().entry(id).or_insert(h);
        id
    }

    /// Serve `n` requests.
    pub fn serve(self: &Arc<Self>, n: usize) {
        for _ in 0..n {
            self.handle_one();
        }
    }
}

/// Reserved handler id that shuts a [`Dispatcher`] down.
pub const H_DISPATCHER_STOP: u32 = u32::MAX;

/// A *startpoint* — Nexus's global-pointer abstraction: a remotely
/// invocable reference to one handler on one context. Startpoints are
/// cheap, cloneable, and can be shipped to third parties (here: by value).
#[derive(Clone)]
pub struct Startpoint {
    nexus: Arc<Nexus>,
    dst: NodeId,
    handler: u32,
}

impl Startpoint {
    /// The node this startpoint targets.
    pub fn node(&self) -> NodeId {
        self.dst
    }

    pub fn handler(&self) -> u32 {
        self.handler
    }

    /// Fire the remote service request.
    pub fn rsr(&self, data: &[u8]) {
        self.nexus.send_rsr(self.dst, self.handler, data);
    }
}

/// A background thread draining RSRs on a context — the multithreaded
/// dispatch Nexus integrates with its thread system (and the reason the
/// paper pairs Madeleine II with the Marcel library).
pub struct Dispatcher {
    handle: std::thread::JoinHandle<usize>,
}

impl Dispatcher {
    /// Block until the dispatcher has been stopped (by an RSR to
    /// [`H_DISPATCHER_STOP`]); returns the number of requests it served.
    pub fn join(self) -> usize {
        self.handle.join().expect("dispatcher panicked")
    }
}

impl Nexus {
    /// Build a startpoint to `handler` on `dst`.
    pub fn startpoint(self: &Arc<Self>, dst: NodeId, handler: u32) -> Startpoint {
        Startpoint {
            nexus: Arc::clone(self),
            dst,
            handler,
        }
    }

    /// Spawn a dispatcher thread (with its own virtual clock) serving this
    /// context until a [`H_DISPATCHER_STOP`] request arrives. At most one
    /// thread may drain a channel at a time: do not mix `handle_one` calls
    /// with a running dispatcher.
    pub fn spawn_dispatcher(self: &Arc<Self>, env: &madsim_net::world::NodeEnv) -> Dispatcher {
        let nx = Arc::clone(self);
        let handle = env.spawn_thread(move || {
            let mut served = 0usize;
            loop {
                let rsr = nx.recv_rsr();
                if rsr.handler == H_DISPATCHER_STOP {
                    return served;
                }
                let id = rsr.handler;
                let h = nx
                    .handlers
                    .lock()
                    .remove(&id)
                    .unwrap_or_else(|| panic!("no handler registered for id {id}"));
                h(&nx, rsr);
                nx.handlers.lock().entry(id).or_insert(h);
                served += 1;
            }
        });
        Dispatcher { handle }
    }

    /// Stop the dispatcher running on `dst`.
    pub fn stop_dispatcher_of(&self, dst: NodeId) {
        self.send_rsr(dst, H_DISPATCHER_STOP, &[]);
    }
}

/// Nexus-style typed buffer marshaling (`nexus_put_*` / `nexus_get_*`).
#[derive(Default)]
pub struct PutBuffer {
    bytes: Vec<u8>,
}

impl PutBuffer {
    pub fn new() -> Self {
        PutBuffer::default()
    }

    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn put_f64(&mut self, v: f64) -> &mut Self {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.put_u32(v.len() as u32);
        self.bytes.extend_from_slice(v);
        self
    }

    pub fn put_str(&mut self, v: &str) -> &mut Self {
        self.put_bytes(v.as_bytes())
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }
}

/// Reader for [`PutBuffer`]-marshaled data.
pub struct GetBuffer<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl<'a> GetBuffer<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        GetBuffer { bytes, off: 0 }
    }

    pub fn get_u32(&mut self) -> u32 {
        let v = u32::from_le_bytes(
            self.bytes[self.off..self.off + 4]
                .try_into()
                .expect("4 bytes"),
        );
        self.off += 4;
        v
    }

    pub fn get_f64(&mut self) -> f64 {
        let v = f64::from_le_bytes(
            self.bytes[self.off..self.off + 8]
                .try_into()
                .expect("8 bytes"),
        );
        self.off += 8;
        v
    }

    pub fn get_bytes(&mut self) -> &'a [u8] {
        let n = self.get_u32() as usize;
        let v = &self.bytes[self.off..self.off + n];
        self.off += n;
        v
    }

    pub fn get_str(&mut self) -> &'a str {
        std::str::from_utf8(self.get_bytes()).expect("utf8 string")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut b = PutBuffer::new();
        b.put_u32(7)
            .put_f64(2.5)
            .put_str("nexus")
            .put_bytes(&[1, 2, 3]);
        let mut g = GetBuffer::new(b.as_slice());
        assert_eq!(g.get_u32(), 7);
        assert_eq!(g.get_f64(), 2.5);
        assert_eq!(g.get_str(), "nexus");
        assert_eq!(g.get_bytes(), &[1, 2, 3]);
    }
}
