//! Nexus/Madeleine RSR integration tests (§5.3.2).

use mad_nexus::{GetBuffer, Nexus, PutBuffer};
use madeleine::{Config, Madeleine, Protocol};
use madsim_net::{NetKind, WorldBuilder};
use parking_lot::Mutex;
use std::sync::Arc;

fn nexus_world(protocol: Protocol) -> (madsim_net::World, Config) {
    let mut b = WorldBuilder::new(2);
    let (net, kind) = match protocol {
        Protocol::Tcp => ("eth0", NetKind::Ethernet),
        _ => ("sci0", NetKind::Sci),
    };
    b.network(net, kind, &[0, 1]);
    (b.build(), Config::one("nx", net, protocol))
}

#[test]
fn rsr_dispatches_registered_handler() {
    for protocol in [Protocol::Sisci, Protocol::Tcp] {
        let (world, config) = nexus_world(protocol);
        world.run(move |env| {
            let mad = Madeleine::init(&env, &config);
            let nx = Nexus::new(Arc::clone(mad.channel("nx")));
            if env.id() == 0 {
                nx.send_rsr(1, 42, b"do the thing");
            } else {
                let got: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
                let got2 = Arc::clone(&got);
                nx.register(42, move |_, rsr| {
                    got2.lock().extend_from_slice(&rsr.data);
                });
                let ran = nx.handle_one();
                assert_eq!(ran, 42);
                assert_eq!(&*got.lock(), b"do the thing");
            }
        });
    }
}

#[test]
fn handler_can_reply_with_rsr() {
    let (world, config) = nexus_world(Protocol::Sisci);
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let nx = Nexus::new(Arc::clone(mad.channel("nx")));
        const PING: u32 = 1;
        const PONG: u32 = 2;
        if env.id() == 0 {
            let done = Arc::new(Mutex::new(false));
            let d2 = Arc::clone(&done);
            nx.register(PONG, move |_, rsr| {
                assert_eq!(&rsr.data[..], b"pong");
                *d2.lock() = true;
            });
            nx.send_rsr(1, PING, b"ping");
            nx.handle_one();
            assert!(*done.lock());
        } else {
            nx.register(PING, |nx, rsr| {
                assert_eq!(&rsr.data[..], b"ping");
                nx.send_rsr(rsr.src, PONG, b"pong");
            });
            nx.handle_one();
        }
    });
}

#[test]
fn marshaled_rpc_with_dynamic_array() {
    // The paper's motivating RPC shape (§2.2): a header the runtime reads,
    // then an array whose size the receiver learns from the buffer.
    let (world, config) = nexus_world(Protocol::Sisci);
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let nx = Nexus::new(Arc::clone(mad.channel("nx")));
        if env.id() == 0 {
            let array: Vec<u8> = (0..10_000u32).map(|i| (i % 250) as u8).collect();
            let mut buf = PutBuffer::new();
            buf.put_str("vector_scale").put_f64(2.5).put_bytes(&array);
            nx.send_rsr(1, 7, buf.as_slice());
        } else {
            nx.register(7, |_, rsr| {
                let mut g = GetBuffer::new(&rsr.data);
                assert_eq!(g.get_str(), "vector_scale");
                assert_eq!(g.get_f64(), 2.5);
                let arr = g.get_bytes();
                assert_eq!(arr.len(), 10_000);
                assert_eq!(arr[9_999], (9_999u32 % 250) as u8);
            });
            nx.handle_one();
        }
    });
}

#[test]
fn nexus_over_sci_is_much_faster_than_over_tcp() {
    let lat = |protocol: Protocol| -> f64 {
        let (world, config) = nexus_world(protocol);
        let out = world.run(move |env| {
            let mad = Madeleine::init(&env, &config);
            let nx = Nexus::new(Arc::clone(mad.channel("nx")));
            if env.id() == 0 {
                nx.send_rsr(1, 1, &[0u8; 4]);
                0.0
            } else {
                nx.register(1, |_, _| {});
                nx.handle_one();
                madsim_net::time::now().as_micros_f64()
            }
        });
        out[1]
    };
    let sci = lat(Protocol::Sisci);
    let tcp = lat(Protocol::Tcp);
    // Fig. 7: Nexus/Mad/SISCI one-way latency below 25 us; TCP far behind.
    assert!(sci < 25.0, "Nexus/SISCI latency {sci:.1} us >= 25");
    assert!(
        sci > 10.0,
        "Nexus overhead should dominate raw Madeleine ({sci:.1})"
    );
    assert!(
        tcp > 100.0,
        "Nexus/TCP latency {tcp:.1} us suspiciously low"
    );
}

#[test]
fn serve_handles_a_burst() {
    let (world, config) = nexus_world(Protocol::Sisci);
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let nx = Nexus::new(Arc::clone(mad.channel("nx")));
        if env.id() == 0 {
            for i in 0..20u32 {
                nx.send_rsr(1, 3, &i.to_le_bytes());
            }
        } else {
            let count = Arc::new(Mutex::new(0u32));
            let c2 = Arc::clone(&count);
            nx.register(3, move |_, rsr| {
                let mut c = c2.lock();
                let i = u32::from_le_bytes(rsr.data[..4].try_into().unwrap());
                assert_eq!(i, *c, "in-order dispatch");
                *c += 1;
            });
            nx.serve(20);
            assert_eq!(*count.lock(), 20);
        }
    });
}

#[test]
#[should_panic(expected = "no handler registered")]
fn unregistered_handler_panics() {
    let (world, config) = nexus_world(Protocol::Sisci);
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let nx = Nexus::new(Arc::clone(mad.channel("nx")));
        if env.id() == 0 {
            nx.send_rsr(1, 99, b"?");
        } else {
            nx.handle_one();
        }
    });
}

#[test]
fn startpoints_are_shippable_references() {
    let (world, config) = nexus_world(Protocol::Sisci);
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let nx = Nexus::new(Arc::clone(mad.channel("nx")));
        if env.id() == 0 {
            let sp = nx.startpoint(1, 8);
            let sp2 = sp.clone();
            sp.rsr(b"one");
            sp2.rsr(b"two");
        } else {
            let seen = Arc::new(Mutex::new(Vec::new()));
            let s2 = Arc::clone(&seen);
            nx.register(8, move |_, rsr| s2.lock().push(rsr.data.to_vec()));
            nx.serve(2);
            assert_eq!(&*seen.lock(), &[b"one".to_vec(), b"two".to_vec()]);
        }
    });
}

#[test]
fn dispatcher_serves_in_background_until_stopped() {
    let (world, config) = nexus_world(Protocol::Sisci);
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let nx = Nexus::new(Arc::clone(mad.channel("nx")));
        if env.id() == 1 {
            let count = Arc::new(Mutex::new(0u32));
            let c2 = Arc::clone(&count);
            nx.register(4, move |_, _| *c2.lock() += 1);
            let dispatcher = nx.spawn_dispatcher(&env);
            env.barrier(); // announce: serving
            let served = dispatcher.join();
            assert_eq!(served, 7);
            assert_eq!(*count.lock(), 7);
        } else {
            env.barrier();
            let sp = nx.startpoint(1, 4);
            for _ in 0..7 {
                sp.rsr(b"work");
            }
            nx.stop_dispatcher_of(1);
        }
    });
}
