//! PM2 LRPC integration tests.

use bytes::Bytes;
use mad_pm2::Pm2;
use madeleine::{Config, Madeleine, Protocol};
use madsim_net::{NetKind, WorldBuilder};
use std::sync::Arc;

fn pm2_world(n: usize) -> (madsim_net::World, Config) {
    let mut b = WorldBuilder::new(n);
    b.network("sci0", NetKind::Sci, &(0..n).collect::<Vec<_>>());
    (b.build(), Config::one("pm2", "sci0", Protocol::Sisci))
}

#[test]
fn synchronous_rpc_returns_reply() {
    let (world, config) = pm2_world(2);
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let pm2 = Pm2::new(Arc::clone(mad.channel("pm2")));
        if env.id() == 0 {
            let reply = pm2.rpc(1, 1, b"21");
            assert_eq!(&reply[..], b"42");
        } else {
            pm2.register(1, |_, _, args| {
                let n: u32 = std::str::from_utf8(&args).unwrap().parse().unwrap();
                (n * 2).to_string().into_bytes()
            });
            pm2.serve(1);
        }
    });
}

#[test]
fn nested_rpc_does_not_deadlock() {
    // A calls B; B's service calls back into A; A (blocked on its reply)
    // serves B's nested request re-entrantly.
    let (world, config) = pm2_world(2);
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let pm2 = Pm2::new(Arc::clone(mad.channel("pm2")));
        const OUTER: u32 = 1;
        const CALLBACK: u32 = 2;
        if env.id() == 0 {
            pm2.register(CALLBACK, |_, _, args| {
                let mut v = args.to_vec();
                v.reverse();
                v
            });
            let reply = pm2.rpc(1, OUTER, b"abcdef");
            assert_eq!(&reply[..], b"fedcba!");
        } else {
            pm2.register(OUTER, |pm2, src, args| {
                // Nested call back to the original caller.
                let reversed = pm2.rpc(src, CALLBACK, &args);
                let mut out = reversed.to_vec();
                out.push(b'!');
                out
            });
            pm2.serve(1);
        }
    });
}

#[test]
fn three_node_chain_rpc() {
    // 0 -> 1 -> 2: node 1's service delegates to node 2.
    let (world, config) = pm2_world(3);
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let pm2 = Pm2::new(Arc::clone(mad.channel("pm2")));
        const FRONT: u32 = 1;
        const BACK: u32 = 2;
        match env.id() {
            0 => {
                let reply = pm2.rpc(1, FRONT, b"payload");
                assert_eq!(&reply[..], b"PAYLOAD");
            }
            1 => {
                pm2.register(FRONT, |pm2, _, args| pm2.rpc(2, BACK, &args).to_vec());
                pm2.serve(1);
            }
            _ => {
                pm2.register(BACK, |_, _, args| {
                    args.iter().map(|b| b.to_ascii_uppercase()).collect()
                });
                pm2.serve(1);
            }
        }
    });
}

#[test]
fn async_rpc_fire_and_forget() {
    let (world, config) = pm2_world(2);
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let pm2 = Pm2::new(Arc::clone(mad.channel("pm2")));
        if env.id() == 0 {
            for i in 0..10u32 {
                pm2.async_rpc(1, 7, &i.to_le_bytes());
            }
        } else {
            let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
            let s2 = Arc::clone(&seen);
            pm2.register(7, move |_, _, args| {
                s2.lock()
                    .push(u32::from_le_bytes(args[..4].try_into().unwrap()));
                Vec::new()
            });
            pm2.serve(10);
            assert_eq!(&*seen.lock(), &(0..10).collect::<Vec<u32>>());
        }
    });
}

#[test]
fn large_arguments_ride_the_bulk_path() {
    let (world, config) = pm2_world(2);
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let pm2 = Pm2::new(Arc::clone(mad.channel("pm2")));
        if env.id() == 0 {
            let args: Vec<u8> = (0..300_000).map(|i| (i % 251) as u8).collect();
            let reply = pm2.rpc(1, 3, &args);
            // Service returns a 16-byte digest.
            assert_eq!(reply.len(), 16);
        } else {
            pm2.register(3, |_, _, args: Bytes| {
                assert_eq!(args.len(), 300_000);
                let sum: u64 = args.iter().map(|&b| b as u64).sum();
                let mut d = [0u8; 16];
                d[..8].copy_from_slice(&sum.to_le_bytes());
                d.to_vec()
            });
            pm2.serve(1);
        }
    });
}

#[test]
fn concurrent_clients_one_server() {
    let (world, config) = pm2_world(4);
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let pm2 = Pm2::new(Arc::clone(mad.channel("pm2")));
        if env.id() == 0 {
            pm2.register(9, |_, src, args| {
                let mut v = args.to_vec();
                v.push(src as u8);
                v
            });
            pm2.serve(9); // 3 clients x 3 calls
        } else {
            for k in 0..3u8 {
                let reply = pm2.rpc(0, 9, &[k]);
                assert_eq!(&reply[..], &[k, env.id() as u8]);
            }
        }
    });
}

#[test]
#[should_panic(expected = "no service registered")]
fn unknown_service_panics() {
    let (world, config) = pm2_world(2);
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let pm2 = Pm2::new(Arc::clone(mad.channel("pm2")));
        if env.id() == 0 {
            pm2.async_rpc(1, 404, b"?");
        } else {
            pm2.serve(1);
        }
    });
}

#[test]
fn corrupt_envelope_is_a_recoverable_error() {
    use madeleine::error::MadError;
    use madeleine::{RecvMode, SendMode};
    let (world, config) = pm2_world(2);
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let chan = mad.channel("pm2");
        if env.id() == 0 {
            // Hand-craft an envelope with an unknown kind byte.
            let mut raw = [0u8; 20];
            raw[0] = 0x2A;
            let mut msg = chan.begin_packing(1);
            msg.pack(&raw, SendMode::Cheaper, RecvMode::Express);
            msg.end_packing();
        } else {
            let pm2 = Pm2::new(Arc::clone(chan));
            match pm2.try_pump_one() {
                Err(MadError::CorruptStream(what)) => {
                    assert!(what.contains("PM2 envelope kind 42"), "got {what:?}")
                }
                other => panic!("expected CorruptStream, got {other:?}"),
            }
        }
    });
}

/// PM2 across heterogeneous clusters through the gateway (the combination
/// the paper's intro promises: RPC runtimes over transparent multi-network
/// communication).
#[test]
fn lrpc_across_clusters() {
    use mad_gateway::{Gateway, VirtualChannel, VirtualChannelSpec};
    let mut b = WorldBuilder::new(3);
    b.network("sci0", NetKind::Sci, &[0, 1]);
    b.network("myr0", NetKind::Myrinet, &[1, 2]);
    let world = b.build();
    let config =
        Config::one("sci", "sci0", Protocol::Sisci).with_channel("myr", "myr0", Protocol::Bip);
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let spec = VirtualChannelSpec::new("vc", &["sci", "myr"], 8192);
        let gw = Gateway::spawn(&env, &mad, &config, &spec);
        let vc = VirtualChannel::open(&env, &mad, &config, &spec);
        if env.id() == 0 {
            let pm2 = Pm2::new(Arc::clone(vc.expect("endpoint").channel()));
            let reply = pm2.rpc(2, 5, &vec![3u8; 40_000]);
            assert_eq!(reply.len(), 8);
            assert_eq!(u64::from_le_bytes(reply[..8].try_into().unwrap()), 120_000);
        } else if env.id() == 2 {
            let pm2 = Pm2::new(Arc::clone(vc.expect("endpoint").channel()));
            pm2.register(5, |_, _, args| {
                let sum: u64 = args.iter().map(|&b| b as u64).sum();
                sum.to_le_bytes().to_vec()
            });
            pm2.serve(1);
        }
        env.barrier();
        if let Some(gw) = gw {
            gw.stop();
        }
    });
}

#[test]
fn replies_match_requests_not_arrival_order() {
    // Two outstanding RPCs from different "logical" call sites: replies
    // are matched by request id even when the second completes first on
    // the wire (the server replies in reverse).
    let (world, config) = pm2_world(2);
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let pm2 = Pm2::new(Arc::clone(mad.channel("pm2")));
        if env.id() == 0 {
            // A service that issues a nested call and returns both results.
            pm2.register(2, |_, _, args| args.to_vec());
            let r1 = pm2.rpc(1, 1, b"first");
            assert_eq!(&r1[..], b"FIRST");
        } else {
            pm2.register(1, |pm2, src, args| {
                // Nested call *back* to the requester before replying:
                // exercises reply parking while another reply is pending.
                let echoed = pm2.rpc(src, 2, &args);
                echoed.iter().map(|b| b.to_ascii_uppercase()).collect()
            });
            pm2.serve(1);
        }
    });
}

#[test]
fn pm2_overhead_is_charged() {
    let (world, config) = pm2_world(2);
    let times = world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let pm2 = Pm2::new(Arc::clone(mad.channel("pm2")));
        if env.id() == 0 {
            pm2.register(9, |_, _, _| Vec::new());
            let t0 = madsim_net::time::now();
            let _ = pm2.rpc(1, 1, &[0u8; 4]);
            madsim_net::time::now().saturating_since(t0).as_micros_f64()
        } else {
            pm2.register(1, |_, _, _| vec![1]);
            pm2.serve(1);
            0.0
        }
    });
    // Round trip over SISCI (~2 x 5 us) plus four PM2 call overheads
    // (~12 us): anywhere in 15–60 us is sane; below 10 means overheads
    // were dropped.
    assert!(
        (15.0..60.0).contains(&times[0]),
        "RPC round trip {:.1} us out of band",
        times[0]
    );
}
