//! # mad-pm2 — a PM2-style LRPC runtime over Madeleine II
//!
//! PM2 ("Parallel Multithreaded Machine", Namyst & Méhaut — the paper's
//! reference \[10\] and home project) is the RPC-based multithreaded
//! environment Madeleine was designed to serve: its *lightweight remote
//! procedure calls* are exactly the workload §1 and §2.2 motivate — a
//! header the runtime must examine immediately (which service? how large
//! are the arguments?) followed by dynamically-sized argument data that
//! should move with zero copies.
//!
//! This crate reproduces that layer: a service registry, synchronous
//! `rpc` (request + reply), fire-and-forget `async_rpc`, and **re-entrant
//! request pumping** — a node blocked waiting for its reply keeps serving
//! incoming requests, so nested RPC chains (A calls B, whose service calls
//! back into A) cannot deadlock, which is the LRPC scheduling property PM2
//! gets from its thread library.
//!
//! Wire format per message, packed through the ordinary Madeleine
//! machinery (`receive_EXPRESS` envelope + `receive_CHEAPER` payload):
//!
//! ```text
//! [ kind u8 | pad [u8;3] | service u32 | req_id u64 | len u32 ] [ payload ]
//! ```

//! On channels configured with wire-level batching
//! (`ChannelSpec::with_batching`) the PM2 envelope still travels
//! `(CHEAPER, EXPRESS)`: an EXPRESS append closes the coalescing frame,
//! so every call's envelope reaches the peer without waiting out a flush
//! deadline — request latency is unchanged, while small argument payloads
//! ride in the same frame as their envelope. [`Pm2::flush`] exposes the
//! channel-level flush for callers that also post raw CHEAPER traffic.

use bytes::Bytes;
use madeleine::error::{MadError, MadResult};
use madeleine::{Channel, RecvMode, SendMode};
use madsim_net::time::{self, VDuration};
use madsim_net::NodeId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-call software overhead of the PM2 layer (service lookup, request
/// bookkeeping, thread hand-off).
pub const PM2_CALL_OVERHEAD_US: f64 = 3.0;

const KIND_REQUEST: u8 = 1;
const KIND_REPLY: u8 = 2;
const ENVELOPE_LEN: usize = 20;

/// A service: takes the caller's node id and the argument bytes, returns
/// the reply bytes.
pub type Service = Box<dyn Fn(&Pm2, NodeId, Bytes) -> Vec<u8> + Send + Sync>;

/// A PM2 context on one node.
pub struct Pm2 {
    chan: Arc<Channel>,
    services: Mutex<HashMap<u32, Arc<Service>>>,
    next_req: AtomicU64,
    /// Replies that arrived while pumping for a different request.
    parked_replies: Mutex<HashMap<u64, Bytes>>,
}

impl Pm2 {
    /// Attach a PM2 context to a channel (all members do the same).
    pub fn new(chan: Arc<Channel>) -> Arc<Pm2> {
        Arc::new(Pm2 {
            chan,
            services: Mutex::new(HashMap::new()),
            next_req: AtomicU64::new(1),
            parked_replies: Mutex::new(HashMap::new()),
        })
    }

    pub fn me(&self) -> NodeId {
        self.chan.me()
    }

    /// Register (or replace) service `id`.
    pub fn register(
        &self,
        id: u32,
        service: impl Fn(&Pm2, NodeId, Bytes) -> Vec<u8> + Send + Sync + 'static,
    ) {
        self.services.lock().insert(id, Arc::new(Box::new(service)));
    }

    /// Synchronous remote procedure call: ship `args` to `service` on
    /// `dst`, pump incoming traffic (serving requests re-entrantly) until
    /// the reply lands, and return it.
    pub fn rpc(&self, dst: NodeId, service: u32, args: &[u8]) -> Bytes {
        time::advance(VDuration::from_micros_f64(PM2_CALL_OVERHEAD_US));
        let req_id = self.next_req.fetch_add(1, Ordering::Relaxed);
        self.emit(dst, KIND_REQUEST, service, req_id, args);
        loop {
            if let Some(reply) = self.parked_replies.lock().remove(&req_id) {
                return reply;
            }
            self.pump_one();
        }
    }

    /// Fire-and-forget invocation: the service runs on `dst`; its return
    /// value is discarded.
    pub fn async_rpc(&self, dst: NodeId, service: u32, args: &[u8]) {
        time::advance(VDuration::from_micros_f64(PM2_CALL_OVERHEAD_US));
        self.emit(dst, KIND_REQUEST | 0x80, service, 0, args);
    }

    /// Serve exactly `n` incoming requests (replies to our own outstanding
    /// calls do not count).
    pub fn serve(&self, n: usize) {
        let mut served = 0;
        while served < n {
            if self.pump_one() {
                served += 1;
            }
        }
    }

    /// Receive and process one message; `Ok(true)` if it was a request.
    ///
    /// An unknown envelope kind is reported as
    /// [`MadError::CorruptStream`] *after* the message has been fully
    /// drained from the channel, so a caller may log the incident and keep
    /// pumping instead of tearing the whole node down.
    pub fn try_pump_one(&self) -> MadResult<bool> {
        let mut msg = self.chan.begin_unpacking();
        let src = msg.src();
        let mut env = [0u8; ENVELOPE_LEN];
        msg.unpack_express(&mut env, SendMode::Cheaper);
        let kind = env[0];
        let service = u32::from_le_bytes(env[4..8].try_into().expect("4 bytes"));
        let req_id = u64::from_le_bytes(env[8..16].try_into().expect("8 bytes"));
        let len = u32::from_le_bytes(env[16..20].try_into().expect("4 bytes")) as usize;
        let mut payload = vec![0u8; len];
        if len > 0 {
            msg.unpack(&mut payload, SendMode::Cheaper, RecvMode::Cheaper);
        }
        msg.end_unpacking();
        time::advance(VDuration::from_micros_f64(PM2_CALL_OVERHEAD_US));
        let payload = Bytes::from(payload);

        match kind & 0x7F {
            KIND_REQUEST => {
                let fire_and_forget = kind & 0x80 != 0;
                let svc = self
                    .services
                    .lock()
                    .get(&service)
                    .cloned()
                    .unwrap_or_else(|| panic!("no service registered for id {service}"));
                let reply = svc(self, src, payload);
                if !fire_and_forget {
                    self.emit(src, KIND_REPLY, service, req_id, &reply);
                }
                Ok(true)
            }
            KIND_REPLY => {
                self.parked_replies.lock().insert(req_id, payload);
                Ok(false)
            }
            other => Err(MadError::corrupt(format!(
                "corrupt PM2 envelope kind {other} from node {src}"
            ))),
        }
    }

    /// [`try_pump_one`](Self::try_pump_one) for contexts that cannot
    /// recover.
    ///
    /// # Panics
    /// Panics on a corrupt envelope.
    fn pump_one(&self) -> bool {
        match self.try_pump_one() {
            Ok(was_request) => was_request,
            Err(e) => panic!("{e}"),
        }
    }

    /// Push any wire-level batch the underlying channel is still
    /// coalescing onto the fabric (see [`Channel::flush`]).
    ///
    /// PM2's own messages never need this — the EXPRESS envelope closes
    /// the batch frame at call time — but a runtime that mixes LRPC with
    /// raw batched CHEAPER traffic on the same channel can use it as a
    /// send-side barrier before blocking in [`serve`](Self::serve).
    pub fn flush(&self) -> MadResult<()> {
        self.chan.flush()
    }

    fn emit(&self, dst: NodeId, kind: u8, service: u32, req_id: u64, payload: &[u8]) {
        let mut env = [0u8; ENVELOPE_LEN];
        env[0] = kind;
        env[4..8].copy_from_slice(&service.to_le_bytes());
        env[8..16].copy_from_slice(&req_id.to_le_bytes());
        env[16..20].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        let mut msg = self.chan.begin_packing(dst);
        msg.pack(&env, SendMode::Cheaper, RecvMode::Express);
        if !payload.is_empty() {
            msg.pack(payload, SendMode::Cheaper, RecvMode::Cheaper);
        }
        msg.end_packing();
    }
}
