//! The self-described fragment format (paper §6.1) — re-exported.
//!
//! Within a homogeneous session Madeleine messages carry no description —
//! the receiver's unpack sequence supplies it. A gateway has none of that
//! knowledge, so every fragment that may cross one is prefixed by a small
//! header carrying what the gateway needs: where the fragment is going,
//! where it came from, and how long it is.
//!
//! The header's byte layout itself lives in [`madeleine::wire`] with every
//! other on-wire header of the library, versioned by the per-hop
//! [`WireVersion`]: the classic 16-byte fixed layout, or a 10-byte compact
//! layout on fault-free hops. Gateways are stateless and cannot predict
//! header fields the way channel receivers do, so the compact form shrinks
//! the fixed fields (u24 length, no magic word, no pad) instead of using
//! varints. The hop version is read off the hop channel
//! ([`madeleine::Channel::wire`]) by everyone on that hop — a pure,
//! symmetric function of shared configuration, so both ends of a hop always
//! agree without negotiation traffic.
//!
//! The header also carries the fragment's **byte offset within its block**.
//! On a reliable fabric the field is redundant (fragments arrive in order,
//! so the offset always equals the bytes already reassembled); under
//! failover it is what lets the receiver tell a restarted block (offset 0)
//! from the stale tail of an aborted attempt, and discard the latter
//! safely.

pub use madeleine::wire::{FragHeader, WireVersion, FRAG_HEADER_LEN, FRAG_HEADER_LEN_COMPACT};
