//! The self-described fragment format (paper §6.1).
//!
//! Within a homogeneous session Madeleine messages carry no description —
//! the receiver's unpack sequence supplies it. A gateway has none of that
//! knowledge, so every fragment that may cross one is prefixed by a small
//! header carrying what the gateway needs: where the fragment is going,
//! where it came from, and how long it is.
//!
//! The paper sends route-common information only in the first packet of a
//! message and per-buffer information with each buffer; we use one compact
//! uniform header per fragment instead (16 bytes against fragments of
//! 8–128 kB) — simpler, same asymptotics, and it keeps gateways fully
//! stateless.
//!
//! The header also carries the fragment's **byte offset within its block**.
//! On a reliable fabric the field is redundant (fragments arrive in order,
//! so the offset always equals the bytes already reassembled); under
//! failover it is what lets the receiver tell a restarted block (offset 0)
//! from the stale tail of an aborted attempt, and discard the latter
//! safely.

use madeleine::error::{MadError, MadResult};
use madsim_net::NodeId;

/// Fragment header length on the wire.
pub const FRAG_HEADER_LEN: usize = 16;

const FRAG_MAGIC: u16 = 0x4D47; // "MG"

/// Per-fragment self-description.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FragHeader {
    /// Originating end node.
    pub src: NodeId,
    /// Final destination end node.
    pub dst: NodeId,
    /// Payload bytes following this header.
    pub len: usize,
    /// Byte offset of this fragment within its block.
    pub offset: usize,
}

impl FragHeader {
    pub fn encode(&self) -> [u8; FRAG_HEADER_LEN] {
        let mut b = [0u8; FRAG_HEADER_LEN];
        b[0..2].copy_from_slice(&FRAG_MAGIC.to_le_bytes());
        b[2] = u8::try_from(self.src).expect("node ids < 256");
        b[3] = u8::try_from(self.dst).expect("node ids < 256");
        b[4..8].copy_from_slice(&(self.len as u32).to_le_bytes());
        b[8..12].copy_from_slice(&(self.offset as u32).to_le_bytes());
        b
    }

    /// Decode a fragment header, reporting a corrupt magic as
    /// [`MadError::CorruptStream`] — a gateway fed non-fragment traffic
    /// (e.g. a hop channel also used directly by the application).
    pub fn try_decode(b: &[u8; FRAG_HEADER_LEN]) -> MadResult<Self> {
        let magic = u16::from_le_bytes(b[0..2].try_into().expect("2 bytes"));
        if magic != FRAG_MAGIC {
            return Err(MadError::corrupt(format!(
                "corrupt fragment header (magic {magic:#06x}): hop channel \
                 carrying non-virtual-channel traffic?"
            )));
        }
        Ok(FragHeader {
            src: b[2] as NodeId,
            dst: b[3] as NodeId,
            len: u32::from_le_bytes(b[4..8].try_into().expect("4 bytes")) as usize,
            offset: u32::from_le_bytes(b[8..12].try_into().expect("4 bytes")) as usize,
        })
    }

    /// [`try_decode`](Self::try_decode) for contexts that cannot recover.
    ///
    /// # Panics
    /// Panics on a corrupt magic.
    pub fn decode(b: &[u8; FRAG_HEADER_LEN]) -> Self {
        match Self::try_decode(b) {
            Ok(h) => h,
            Err(e) => panic!("{e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = FragHeader {
            src: 3,
            dst: 9,
            len: 131072,
            offset: 8192,
        };
        assert_eq!(FragHeader::decode(&h.encode()), h);
    }

    #[test]
    fn bad_magic_is_a_corrupt_stream_error() {
        let b = [0u8; FRAG_HEADER_LEN];
        match FragHeader::try_decode(&b) {
            Err(MadError::CorruptStream(what)) => {
                assert!(what.contains("corrupt fragment header"), "got {what:?}")
            }
            other => panic!("expected CorruptStream, got {other:?}"),
        }
    }

    #[test]
    fn zero_length_fragment_roundtrip() {
        let h = FragHeader {
            src: 0,
            dst: 1,
            len: 0,
            offset: 0,
        };
        assert_eq!(FragHeader::decode(&h.encode()), h);
    }
}
