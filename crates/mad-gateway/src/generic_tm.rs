//! The Generic Transmission Module (paper §6.1).
//!
//! Raw forwarding between heterogeneous transmission modules is impossible
//! because each network's BMM groups buffers differently; re-grouping at
//! every gateway would be prohibitive. The paper's answer: route **all**
//! inter-cluster traffic through one *Generic TM*, used by both end nodes
//! as the interface between their BMMs and the real TMs, so data is handled
//! identically on both ends and gateways can forward fragments blindly.
//!
//! The Generic TM here is a [`TransmissionModule`] fed by the aggregating
//! BMM: each user block is fragmented — **zero-copy, by slicing** — into
//! MTU-bounded payloads, each prefixed by its self-description
//! ([`FragHeader`]) and pushed through the *real* TMs of the first hop
//! channel, selected by the hop PMM's own switch function. A fragment thus
//! rides BIP's rendezvous path or SISCI's dual-buffered PIO exactly as
//! native traffic would, and the receiving end reassembles fragments
//! directly into the user's destination blocks. Fragments never span
//! blocks, so no regrouping state exists anywhere and gateways stay
//! stateless. Madeleine II's portability is untouched: nothing here names
//! a protocol.

use crate::route::Route;
use crate::wire::{FragHeader, FRAG_HEADER_LEN};
use madeleine::bmm::{RecvBmm, SendBmm, SendPolicy};
use madeleine::config::HostModel;
use madeleine::flags::{RecvMode, SendMode};
use madeleine::pmm::Pmm;
use madeleine::pool::{BufPool, PooledBuf};
use madeleine::stats::Stats;
use madeleine::tm::{TmCaps, TmId, TransmissionModule};
use madsim_net::time;
use madsim_net::NodeId;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Send one logical buffer through a hop channel's real TMs, honouring the
/// hop's own TM selection and buffer policy.
pub(crate) fn hop_send(
    pmm: &Arc<dyn Pmm>,
    next: NodeId,
    data: &[u8],
    rmode: RecvMode,
    host: HostModel,
    stats: &Arc<Stats>,
) {
    let id = pmm.select(data.len(), SendMode::Cheaper, rmode);
    let mut bmm = SendBmm::new(pmm.policy(id), pmm.tm(id), next, host, Arc::clone(stats));
    bmm.pack(data, SendMode::Cheaper);
    bmm.flush();
}

/// Receive one logical buffer from a hop channel (mirror of [`hop_send`]).
pub(crate) fn hop_recv(
    pmm: &Arc<dyn Pmm>,
    from: NodeId,
    dst: &mut [u8],
    rmode: RecvMode,
    host: HostModel,
    stats: &Arc<Stats>,
) {
    let id = pmm.select(dst.len(), SendMode::Cheaper, rmode);
    let mut bmm = RecvBmm::new(pmm.policy(id), pmm.tm(id), from, host, Arc::clone(stats));
    bmm.unpack_express_now(dst);
}

/// Send a complete fragment (header + payload) down a hop.
pub(crate) fn send_fragment(
    pmm: &Arc<dyn Pmm>,
    next: NodeId,
    header: &FragHeader,
    payload: &[u8],
    host: HostModel,
    stats: &Arc<Stats>,
) {
    let hdr = header.encode();
    hop_send(pmm, next, &hdr, RecvMode::Express, host, stats);
    if !payload.is_empty() {
        hop_send(pmm, next, payload, RecvMode::Cheaper, host, stats);
    }
}

/// Receive the header of the next fragment from `from`.
pub(crate) fn recv_fragment_header(
    pmm: &Arc<dyn Pmm>,
    from: NodeId,
    host: HostModel,
    stats: &Arc<Stats>,
) -> FragHeader {
    let mut hdr = [0u8; FRAG_HEADER_LEN];
    hop_recv(pmm, from, &mut hdr, RecvMode::Express, host, stats);
    FragHeader::decode(&hdr)
}

/// The Generic TM of one end node on one virtual channel.
pub struct GenericTm {
    route: Arc<Route>,
    me: NodeId,
    mtu: usize,
    /// `hop_pmms[i]` is hop *i*'s protocol module, present for the hops
    /// this node belongs to.
    hop_pmms: Vec<Option<Arc<dyn Pmm>>>,
    host: HostModel,
    stats: Arc<Stats>,
    /// Staging memory for fragments that must be buffered (interleaved
    /// sources, look-ahead ingestion): recycled slabs, not fresh `Vec`s.
    pool: BufPool,
    /// Fragments already pulled off the wire, queued by originating node.
    pending: Mutex<HashMap<NodeId, VecDeque<PooledBuf>>>,
    /// Header of a fragment whose payload transfer was initiated early
    /// (`(neighbor, header)`): the protocol-level handshake has fired, the
    /// data is in flight while we do other work.
    prefetched: Mutex<Option<(NodeId, FragHeader)>>,
}

impl GenericTm {
    pub(crate) fn new(
        route: Arc<Route>,
        me: NodeId,
        mtu: usize,
        hop_pmms: Vec<Option<Arc<dyn Pmm>>>,
        host: HostModel,
        stats: Arc<Stats>,
    ) -> Self {
        let pool = BufPool::new(Arc::clone(&stats));
        GenericTm {
            route,
            me,
            mtu,
            hop_pmms,
            host,
            stats,
            pool,
            pending: Mutex::new(HashMap::new()),
            prefetched: Mutex::new(None),
        }
    }

    fn my_hop(&self) -> usize {
        let hops = self.route.hops_of(self.me);
        assert_eq!(
            hops.len(),
            1,
            "virtual-channel endpoints must not be gateways (node {})",
            self.me
        );
        hops[0]
    }

    fn hop_pmm(&self, hop: usize) -> &Arc<dyn Pmm> {
        self.hop_pmms[hop]
            .as_ref()
            .expect("node holds the channels of its own hops")
    }

    /// Pull the next fragment off the wire (blocking) and queue it; returns
    /// its originating node.
    fn ingest_one(&self) -> NodeId {
        let hop = self.my_hop();
        let pmm = self.hop_pmm(hop);
        let (neighbor, h) = match self.prefetched.lock().take() {
            Some(x) => x,
            None => {
                let neighbor = pmm.wait_incoming();
                let h = recv_fragment_header(pmm, neighbor, self.host, &self.stats);
                (neighbor, h)
            }
        };
        assert_eq!(
            h.dst, self.me,
            "end node {} received a fragment addressed to {} — broken route?",
            self.me, h.dst
        );
        let mut payload = self.pool.checkout(h.len);
        if h.len > 0 {
            hop_recv(
                pmm,
                neighbor,
                &mut payload.spare_mut()[..h.len],
                RecvMode::Cheaper,
                self.host,
                &self.stats,
            );
            payload.advance(h.len);
        }
        self.pending
            .lock()
            .entry(h.src)
            .or_default()
            .push_back(payload);
        // Look ahead: if another fragment is already announced, read its
        // header now and fire the payload TM's handshake so the transfer
        // (a background NIC operation) overlaps our caller's copy-out.
        self.try_prefetch_next();
        h.src
    }

    fn try_prefetch_next(&self) {
        let mut slot = self.prefetched.lock();
        if slot.is_some() {
            return;
        }
        let hop = self.my_hop();
        let pmm = self.hop_pmm(hop);
        if let Some(neighbor) = pmm.poll_incoming() {
            let h = recv_fragment_header(pmm, neighbor, self.host, &self.stats);
            if h.len > 0 {
                let id = pmm.select(h.len, SendMode::Cheaper, RecvMode::Cheaper);
                pmm.tm(id).prefetch(neighbor);
            }
            *slot = Some((neighbor, h));
        }
    }

    /// Some node with a queued or announced fragment, if any (never
    /// consumes wire data — peeks only the pending queue and the hop PMM).
    pub(crate) fn poll_announced(&self) -> Option<NodeId> {
        if let Some((&src, _)) = self.pending.lock().iter().find(|(_, q)| !q.is_empty()) {
            return Some(src);
        }
        if self.prefetched.lock().is_some() {
            return Some(self.ingest_one());
        }
        // Something is on the wire: we do not know the *final* source
        // until its header is read, so ingest it now (blocking is fine:
        // the fragment is already announced by the hop PMM).
        let hop = self.my_hop();
        if self.hop_pmm(hop).poll_incoming().is_some() {
            return Some(self.ingest_one());
        }
        None
    }
}

impl TransmissionModule for GenericTm {
    fn name(&self) -> &'static str {
        "generic"
    }

    fn caps(&self) -> TmCaps {
        TmCaps {
            static_buffers: false,
            buffer_cap: usize::MAX,
            gather: false,
        }
    }

    /// Fragment one block into MTU-bounded slices — no copy; the slices go
    /// straight to the hop TM.
    fn send_buffer(&self, dst: NodeId, data: &[u8]) {
        let (hop, next) = self.route.next_leg(self.me, dst);
        let pmm = self.hop_pmm(hop);
        for chunk in data.chunks(self.mtu.max(1)) {
            let header = FragHeader {
                src: self.me,
                dst,
                len: chunk.len(),
            };
            send_fragment(pmm, next, &header, chunk, self.host, &self.stats);
            if std::env::var("GW_DEBUG").is_ok() {
                eprintln!("origin frag {} sent at {:?}", chunk.len(), time::now());
            }
        }
    }

    fn send_buffer_group(&self, dst: NodeId, bufs: &[&[u8]]) {
        // Fragments never span blocks: each block fragments independently,
        // so the receiver can reassemble into its destination blocks with
        // no description beyond the per-fragment header.
        for b in bufs {
            if !b.is_empty() {
                self.send_buffer(dst, b);
            }
        }
    }

    fn send_gather(&self, dst: NodeId, bufs: &[&[u8]]) {
        // No native scatter/gather on a virtual channel: the aggregated
        // blocks fragment independently (still by slicing — copy-free),
        // and `caps().gather` stays false so the flush is not counted as
        // a hardware gather.
        self.send_buffer_group(dst, bufs);
    }

    /// Reassemble `dst` from its fragments, receiving payloads **directly
    /// into the destination** whenever the next wire fragment is ours.
    ///
    /// While the block is incomplete another fragment is *certain* to
    /// come, so the next header is read (and the payload TM's handshake
    /// fired — see [`TransmissionModule::prefetch`]) **before** the current
    /// payload's wait finishes consuming the clock: the next transfer
    /// overlaps this one, the paper's pipelining claim at the end nodes.
    fn receive_buffer(&self, src: NodeId, dst: &mut [u8]) {
        let hop = self.my_hop();
        let mut filled = 0;
        while filled < dst.len() {
            // Buffered fragment first (preserves per-source order).
            if let Some(b) = self
                .pending
                .lock()
                .get_mut(&src)
                .and_then(|q| q.pop_front())
            {
                assert!(
                    filled + b.len() <= dst.len(),
                    "fragment overruns receive block: asymmetric traffic?"
                );
                dst[filled..filled + b.len()].copy_from_slice(&b);
                time::advance(self.host.memcpy(b.len()));
                self.stats.record_copy(b.len());
                filled += b.len();
                continue;
            }
            // Pull the next fragment off the wire. Blocking is safe: this
            // block is incomplete, so a fragment for it must still arrive.
            let pmm = self.hop_pmm(hop);
            let (neighbor, h) = match self.prefetched.lock().take() {
                Some(x) => x,
                None => {
                    let neighbor = pmm.wait_incoming();
                    let h = recv_fragment_header(pmm, neighbor, self.host, &self.stats);
                    if h.len > 0 {
                        let id = pmm.select(h.len, SendMode::Cheaper, RecvMode::Cheaper);
                        pmm.tm(id).prefetch(neighbor);
                    }
                    (neighbor, h)
                }
            };
            assert_eq!(h.dst, self.me, "misrouted fragment");
            if h.src == src {
                assert!(
                    filled + h.len <= dst.len(),
                    "fragment overruns receive block: asymmetric traffic?"
                );
                if h.len > 0 {
                    hop_recv(
                        pmm,
                        neighbor,
                        &mut dst[filled..filled + h.len],
                        RecvMode::Cheaper,
                        self.host,
                        &self.stats,
                    );
                }
                filled += h.len;
            } else {
                // Interleaved flow from another source: buffer it.
                let mut payload = self.pool.checkout(h.len);
                if h.len > 0 {
                    hop_recv(
                        pmm,
                        neighbor,
                        &mut payload.spare_mut()[..h.len],
                        RecvMode::Cheaper,
                        self.host,
                        &self.stats,
                    );
                    payload.advance(h.len);
                }
                self.pending
                    .lock()
                    .entry(h.src)
                    .or_default()
                    .push_back(payload);
            }
        }
    }
}

/// The protocol module wrapping [`GenericTm`]: one TM, StaticCopy policy —
/// "all inter-cluster traffic is handled by a generic TM".
pub struct GenericPmm {
    tms: [Arc<dyn TransmissionModule>; 1],
    generic: Arc<GenericTm>,
}

impl GenericPmm {
    pub(crate) fn new(generic: Arc<GenericTm>) -> Self {
        GenericPmm {
            tms: [Arc::clone(&generic) as Arc<dyn TransmissionModule>],
            generic,
        }
    }
}

impl Pmm for GenericPmm {
    fn name(&self) -> &'static str {
        "generic"
    }

    fn tms(&self) -> &[Arc<dyn TransmissionModule>] {
        &self.tms
    }

    fn select(&self, _len: usize, _s: SendMode, _r: RecvMode) -> TmId {
        0
    }

    fn policy(&self, _id: TmId) -> SendPolicy {
        SendPolicy::Aggregate
    }

    fn wait_incoming(&self) -> NodeId {
        madeleine::polling::PollPolicy::default().wait(|| self.generic.poll_announced())
    }

    fn poll_incoming(&self) -> Option<NodeId> {
        self.generic.poll_announced()
    }
}
