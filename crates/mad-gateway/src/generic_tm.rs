//! The Generic Transmission Module (paper §6.1).
//!
//! Raw forwarding between heterogeneous transmission modules is impossible
//! because each network's BMM groups buffers differently; re-grouping at
//! every gateway would be prohibitive. The paper's answer: route **all**
//! inter-cluster traffic through one *Generic TM*, used by both end nodes
//! as the interface between their BMMs and the real TMs, so data is handled
//! identically on both ends and gateways can forward fragments blindly.
//!
//! The Generic TM here is a [`TransmissionModule`] fed by the aggregating
//! BMM: each user block is fragmented — **zero-copy, by slicing** — into
//! MTU-bounded payloads, each prefixed by its self-description
//! ([`FragHeader`]) and pushed through the *real* TMs of the first hop
//! channel, selected by the hop PMM's own switch function. A fragment thus
//! rides BIP's rendezvous path or SISCI's dual-buffered PIO exactly as
//! native traffic would, and the receiving end reassembles fragments
//! directly into the user's destination blocks. Fragments never span
//! blocks, so no regrouping state exists anywhere and gateways stay
//! stateless. Madeleine II's portability is untouched: nothing here names
//! a protocol.
//!
//! ### Failover
//!
//! A virtual channel may carry **alternate routes**
//! ([`crate::vchannel::VirtualChannelSpec::with_alternate`]). Sends use the
//! first live route that reaches the destination; when a hop send fails
//! (retransmission exhausted, peer dead), the route is marked down, the
//! whole block restarts from offset 0 on the next live route, and the
//! failover is counted and traced. Receivers accept a fragment only when
//! its header offset matches the bytes already reassembled — a stale tail
//! of an aborted attempt is drained and discarded, and an offset-0 fragment
//! on a partially filled block signals a restart (the partial progress is
//! discarded). With a single healthy route none of this machinery runs.

use crate::route::Route;
use crate::wire::{FragHeader, WireVersion, FRAG_HEADER_LEN};
use madeleine::bmm::{RecvBmm, SendBmm, SendPolicy};
use madeleine::config::HostModel;
use madeleine::error::{MadError, MadResult};
use madeleine::flags::{RecvMode, SendMode};
use madeleine::pmm::Pmm;
use madeleine::pool::{BufPool, PooledBuf};
use madeleine::stats::Stats;
use madeleine::tm::{TmCaps, TmId, TransmissionModule};
use madeleine::trace::{TraceEvent, Tracer};
use madsim_net::time;
use madsim_net::NodeId;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Send one logical buffer through a hop channel's real TMs, honouring the
/// hop's own TM selection and buffer policy.
pub(crate) fn hop_send(
    pmm: &Arc<dyn Pmm>,
    next: NodeId,
    data: &[u8],
    rmode: RecvMode,
    host: HostModel,
    stats: &Arc<Stats>,
) -> MadResult<()> {
    let id = pmm.select(data.len(), SendMode::Cheaper, rmode);
    let mut bmm = SendBmm::new(pmm.policy(id), pmm.tm(id), next, host, Arc::clone(stats));
    bmm.pack(data, SendMode::Cheaper)?;
    bmm.flush()
}

/// Receive one logical buffer from a hop channel (mirror of [`hop_send`]).
pub(crate) fn hop_recv(
    pmm: &Arc<dyn Pmm>,
    from: NodeId,
    dst: &mut [u8],
    rmode: RecvMode,
    host: HostModel,
    stats: &Arc<Stats>,
) -> MadResult<()> {
    let id = pmm.select(dst.len(), SendMode::Cheaper, rmode);
    let mut bmm = RecvBmm::new(pmm.policy(id), pmm.tm(id), from, host, Arc::clone(stats));
    bmm.unpack_express_now(dst)
}

/// Send a complete fragment (header + payload) down a hop, encoding the
/// header in the hop's negotiated wire version.
pub(crate) fn send_fragment(
    pmm: &Arc<dyn Pmm>,
    wire: WireVersion,
    next: NodeId,
    header: &FragHeader,
    payload: &[u8],
    host: HostModel,
    stats: &Arc<Stats>,
) -> MadResult<()> {
    let hdr = header.encode(wire);
    hop_send(pmm, next, &hdr, RecvMode::Express, host, stats)?;
    if !payload.is_empty() {
        hop_send(pmm, next, payload, RecvMode::Cheaper, host, stats)?;
    }
    Ok(())
}

/// Receive the header of the next fragment from `from`. The header length
/// is fixed per hop wire version, so the exact-length read stays symmetric
/// with the sender without any prediction.
pub(crate) fn recv_fragment_header(
    pmm: &Arc<dyn Pmm>,
    wire: WireVersion,
    from: NodeId,
    host: HostModel,
    stats: &Arc<Stats>,
) -> MadResult<FragHeader> {
    let mut hdr = [0u8; FRAG_HEADER_LEN];
    let n = FragHeader::wire_len(wire);
    hop_recv(pmm, from, &mut hdr[..n], RecvMode::Express, host, stats)?;
    FragHeader::try_decode(wire, &hdr[..n])
}

/// One route of a virtual channel, with its hop protocol modules and
/// health flag.
pub(crate) struct RouteState {
    route: Arc<Route>,
    /// `hop_pmms[i]` is hop *i*'s protocol module, present for the hops
    /// this node belongs to.
    hop_pmms: Vec<Option<Arc<dyn Pmm>>>,
    /// `hop_wires[i]` is hop *i*'s negotiated wire version (read off the
    /// hop channel — identical on every member of the hop), present for
    /// the hops this node belongs to.
    hop_wires: Vec<Option<WireVersion>>,
    /// Set once a send on this route fails; the route is never retried.
    down: AtomicBool,
    /// Header of a fragment whose payload transfer was initiated early
    /// (`(neighbor, header)`): the protocol-level handshake has fired, the
    /// data is in flight while we do other work.
    prefetched: Mutex<Option<(NodeId, FragHeader)>>,
}

impl RouteState {
    pub(crate) fn new(
        route: Arc<Route>,
        hop_pmms: Vec<Option<Arc<dyn Pmm>>>,
        hop_wires: Vec<Option<WireVersion>>,
    ) -> Self {
        RouteState {
            route,
            hop_pmms,
            hop_wires,
            down: AtomicBool::new(false),
            prefetched: Mutex::new(None),
        }
    }

    fn is_down(&self) -> bool {
        self.down.load(Ordering::Acquire)
    }

    fn mark_down(&self) {
        self.down.store(true, Ordering::Release);
    }

    /// Both endpoints are members of this route.
    fn reaches(&self, a: NodeId, b: NodeId) -> bool {
        !self.route.hops_of(a).is_empty() && !self.route.hops_of(b).is_empty()
    }

    /// This node's single hop on the route (endpoints only).
    fn my_hop(&self, me: NodeId) -> usize {
        let hops = self.route.hops_of(me);
        assert_eq!(
            hops.len(),
            1,
            "virtual-channel endpoints must not be gateways (node {me})"
        );
        hops[0]
    }

    fn hop_pmm(&self, hop: usize) -> &Arc<dyn Pmm> {
        self.hop_pmms[hop]
            .as_ref()
            .expect("node holds the channels of its own hops")
    }

    fn hop_wire(&self, hop: usize) -> WireVersion {
        self.hop_wires[hop].expect("node holds the channels of its own hops")
    }
}

/// A fragment pulled off the wire before its block was asked for.
struct Pending {
    offset: usize,
    payload: PooledBuf,
}

/// The Generic TM of one end node on one virtual channel.
pub struct GenericTm {
    /// Primary route first, then alternates, in declaration order.
    routes: Vec<RouteState>,
    me: NodeId,
    mtu: usize,
    host: HostModel,
    stats: Arc<Stats>,
    /// Shared with the virtual channel, so failover events land in the
    /// same stream as the channel's pack/unpack trace.
    tracer: Arc<Tracer>,
    /// Staging memory for fragments that must be buffered (interleaved
    /// sources, look-ahead ingestion): recycled slabs, not fresh `Vec`s.
    pool: BufPool,
    /// Fragments already pulled off the wire, queued by originating node.
    pending: Mutex<HashMap<NodeId, VecDeque<Pending>>>,
}

impl GenericTm {
    pub(crate) fn new(
        routes: Vec<RouteState>,
        me: NodeId,
        mtu: usize,
        host: HostModel,
        stats: Arc<Stats>,
        tracer: Arc<Tracer>,
    ) -> Self {
        assert!(!routes.is_empty(), "a virtual channel needs a route");
        let pool = BufPool::new(Arc::clone(&stats));
        GenericTm {
            routes,
            me,
            mtu,
            host,
            stats,
            tracer,
            pool,
            pending: Mutex::new(HashMap::new()),
        }
    }

    /// Routes this endpoint can currently receive on.
    fn live_recv_routes(&self) -> impl Iterator<Item = (usize, &RouteState)> {
        self.routes
            .iter()
            .enumerate()
            .filter(|(_, rs)| !rs.is_down() && !rs.route.hops_of(self.me).is_empty())
    }

    /// A receive-side route failed while ingesting: take it out of the
    /// poll set so the remaining routes keep the channel alive.
    fn recv_route_failed(&self, ri: usize) {
        self.routes[ri].mark_down();
        self.tracer.record(TraceEvent::RouteDown { route: ri });
    }

    /// Pull the next fragment off the wire (blocking) and queue it; returns
    /// its originating node, or `None` if the ingest failed and the route
    /// was dropped.
    fn ingest_one(&self, ri: usize) -> Option<NodeId> {
        match self.try_ingest_one(ri) {
            Ok(src) => Some(src),
            Err(_) => {
                self.recv_route_failed(ri);
                None
            }
        }
    }

    fn try_ingest_one(&self, ri: usize) -> MadResult<NodeId> {
        let rs = &self.routes[ri];
        let hop = rs.my_hop(self.me);
        let pmm = rs.hop_pmm(hop);
        let (neighbor, h) = match rs.prefetched.lock().take() {
            Some(x) => x,
            None => {
                let neighbor = pmm.wait_incoming();
                let h =
                    recv_fragment_header(pmm, rs.hop_wire(hop), neighbor, self.host, &self.stats)?;
                (neighbor, h)
            }
        };
        assert_eq!(
            h.dst, self.me,
            "end node {} received a fragment addressed to {} — broken route?",
            self.me, h.dst
        );
        let mut payload = self.pool.checkout(h.len);
        if h.len > 0 {
            hop_recv(
                pmm,
                neighbor,
                &mut payload.spare_mut()[..h.len],
                RecvMode::Cheaper,
                self.host,
                &self.stats,
            )?;
            payload.advance(h.len);
        }
        let frag = Pending {
            offset: h.offset,
            payload,
        };
        self.pending
            .lock()
            .entry(h.src)
            .or_default()
            .push_back(frag);
        // Look ahead: if another fragment is already announced, read its
        // header now and fire the payload TM's handshake so the transfer
        // (a background NIC operation) overlaps our caller's copy-out.
        self.try_prefetch_next(ri)?;
        Ok(h.src)
    }

    fn try_prefetch_next(&self, ri: usize) -> MadResult<()> {
        let rs = &self.routes[ri];
        let mut slot = rs.prefetched.lock();
        if slot.is_some() {
            return Ok(());
        }
        let hop = rs.my_hop(self.me);
        let pmm = rs.hop_pmm(hop);
        if let Some(neighbor) = pmm.poll_incoming() {
            let h = recv_fragment_header(pmm, rs.hop_wire(hop), neighbor, self.host, &self.stats)?;
            if h.len > 0 {
                let id = pmm.select(h.len, SendMode::Cheaper, RecvMode::Cheaper);
                pmm.tm(id).prefetch(neighbor);
            }
            *slot = Some((neighbor, h));
        }
        Ok(())
    }

    /// Some node with a queued or announced fragment, if any (never
    /// consumes wire data for already-queued fragments — peeks the pending
    /// queue first, then the live routes' hop PMMs).
    pub(crate) fn poll_announced(&self) -> Option<NodeId> {
        if let Some((&src, _)) = self.pending.lock().iter().find(|(_, q)| !q.is_empty()) {
            return Some(src);
        }
        let candidates: Vec<usize> = self.live_recv_routes().map(|(ri, _)| ri).collect();
        for ri in candidates {
            let rs = &self.routes[ri];
            if rs.prefetched.lock().is_some() {
                return self.ingest_one(ri);
            }
            // Something is on the wire: we do not know the *final* source
            // until its header is read, so ingest it now (blocking is fine:
            // the fragment is already announced by the hop PMM).
            let hop = rs.my_hop(self.me);
            if rs.hop_pmm(hop).poll_incoming().is_some() {
                return self.ingest_one(ri);
            }
        }
        None
    }

    /// Fragment one block and stream it down `rs`, tagging each fragment
    /// with its offset so the receiver can validate reassembly.
    fn send_block_on(&self, rs: &RouteState, dst: NodeId, data: &[u8]) -> MadResult<()> {
        let (hop, next) = rs.route.next_leg(self.me, dst);
        let pmm = rs.hop_pmm(hop);
        let mut offset = 0usize;
        for chunk in data.chunks(self.mtu.max(1)) {
            let header = FragHeader {
                src: self.me,
                dst,
                len: chunk.len(),
                offset,
            };
            send_fragment(
                pmm,
                rs.hop_wire(hop),
                next,
                &header,
                chunk,
                self.host,
                &self.stats,
            )?;
            offset += chunk.len();
            if std::env::var("GW_DEBUG").is_ok() {
                eprintln!("origin frag {} sent at {:?}", chunk.len(), time::now());
            }
        }
        Ok(())
    }

    /// Block until some live receive route announces a fragment; reads its
    /// header (and fires the payload prefetch). Errors drop the failing
    /// route; `ChannelDown` is returned once no live route remains.
    fn next_fragment(&self) -> MadResult<(usize, NodeId, FragHeader)> {
        loop {
            let candidates: Vec<usize> = self.live_recv_routes().map(|(ri, _)| ri).collect();
            if candidates.is_empty() {
                return Err(MadError::ChannelDown);
            }
            // Single healthy route: block in the hop PMM's own wait (the
            // zero-fault fast path, identical to a plain channel).
            let poll_only = candidates.len() > 1;
            for ri in candidates {
                let rs = &self.routes[ri];
                if let Some(x) = rs.prefetched.lock().take() {
                    return Ok((ri, x.0, x.1));
                }
                let hop = rs.my_hop(self.me);
                let pmm = rs.hop_pmm(hop);
                let neighbor = if poll_only {
                    match pmm.poll_incoming() {
                        Some(n) => n,
                        None => continue,
                    }
                } else {
                    pmm.wait_incoming()
                };
                match recv_fragment_header(pmm, rs.hop_wire(hop), neighbor, self.host, &self.stats)
                {
                    Ok(h) => {
                        if h.len > 0 {
                            let id = pmm.select(h.len, SendMode::Cheaper, RecvMode::Cheaper);
                            pmm.tm(id).prefetch(neighbor);
                        }
                        return Ok((ri, neighbor, h));
                    }
                    Err(MadError::CorruptStream(what)) => {
                        // The stream cannot be resynchronized: not a route
                        // fault but a wiring error — surface it.
                        return Err(MadError::CorruptStream(what));
                    }
                    Err(_) => self.recv_route_failed(ri),
                }
            }
            std::thread::sleep(Duration::from_micros(20));
        }
    }

    /// Count and trace a discarded fragment (or discarded partial
    /// reassembly) from `src`.
    fn discard(&self, src: NodeId) {
        self.stats.record_frag_discarded();
        self.tracer.record(TraceEvent::FragmentDiscarded { src });
    }

    /// Drain a fragment payload nobody wants into scratch memory.
    fn drain_payload(&self, ri: usize, neighbor: NodeId, len: usize) -> MadResult<()> {
        if len == 0 {
            return Ok(());
        }
        let rs = &self.routes[ri];
        let pmm = rs.hop_pmm(rs.my_hop(self.me));
        let mut scratch = self.pool.checkout(len);
        hop_recv(
            pmm,
            neighbor,
            &mut scratch.spare_mut()[..len],
            RecvMode::Cheaper,
            self.host,
            &self.stats,
        )
    }
}

impl TransmissionModule for GenericTm {
    fn name(&self) -> &'static str {
        "generic"
    }

    fn caps(&self) -> TmCaps {
        TmCaps {
            static_buffers: false,
            buffer_cap: usize::MAX,
            gather: false,
        }
    }

    /// Fragment one block into MTU-bounded slices — no copy; the slices go
    /// straight to the hop TM. On failure the route is marked down and the
    /// whole block restarts on the next live route.
    fn send_buffer(&self, dst: NodeId, data: &[u8]) -> MadResult<()> {
        let mut any_route = false;
        let mut failed_over = false;
        for (ri, rs) in self.routes.iter().enumerate() {
            if !rs.reaches(self.me, dst) {
                continue;
            }
            any_route = true;
            if rs.is_down() {
                continue;
            }
            if failed_over {
                self.stats.record_failover();
                self.tracer.record(TraceEvent::Failover { dst, route: ri });
            }
            match self.send_block_on(rs, dst, data) {
                Ok(()) => return Ok(()),
                Err(_) => {
                    rs.mark_down();
                    self.tracer.record(TraceEvent::RouteDown { route: ri });
                    failed_over = true;
                }
            }
        }
        Err(if any_route {
            MadError::ChannelDown
        } else {
            MadError::NoRoute
        })
    }

    fn send_buffer_group(&self, dst: NodeId, bufs: &[&[u8]]) -> MadResult<()> {
        // Fragments never span blocks: each block fragments independently,
        // so the receiver can reassemble into its destination blocks with
        // no description beyond the per-fragment header.
        for b in bufs {
            if !b.is_empty() {
                self.send_buffer(dst, b)?;
            }
        }
        Ok(())
    }

    fn send_gather(&self, dst: NodeId, bufs: &[&[u8]]) -> MadResult<()> {
        // No native scatter/gather on a virtual channel: the aggregated
        // blocks fragment independently (still by slicing — copy-free),
        // and `caps().gather` stays false so the flush is not counted as
        // a hardware gather.
        self.send_buffer_group(dst, bufs)
    }

    /// Reassemble `dst` from its fragments, receiving payloads **directly
    /// into the destination** whenever the next wire fragment is ours.
    ///
    /// While the block is incomplete another fragment is *certain* to
    /// come, so the next header is read (and the payload TM's handshake
    /// fired — see [`TransmissionModule::prefetch`]) **before** the current
    /// payload's wait finishes consuming the clock: the next transfer
    /// overlaps this one, the paper's pipelining claim at the end nodes.
    ///
    /// A fragment is accepted only if its offset equals the bytes already
    /// reassembled. Offset 0 against a partial block means the sender
    /// restarted it on another route: the partial progress is discarded.
    /// Anything else is a stale tail of an aborted attempt and is drained.
    fn receive_buffer(&self, src: NodeId, dst: &mut [u8]) -> MadResult<()> {
        let mut filled = 0;
        while filled < dst.len() {
            // Buffered fragment first (preserves per-source order).
            if let Some(p) = self
                .pending
                .lock()
                .get_mut(&src)
                .and_then(|q| q.pop_front())
            {
                if p.offset == 0 && filled > 0 {
                    // The sender restarted this block: drop our progress.
                    self.discard(src);
                    filled = 0;
                } else if p.offset != filled {
                    self.discard(src);
                    continue;
                }
                let b = p.payload;
                assert!(
                    filled + b.len() <= dst.len(),
                    "fragment overruns receive block: asymmetric traffic?"
                );
                dst[filled..filled + b.len()].copy_from_slice(&b);
                time::advance(self.host.memcpy(b.len()));
                self.stats.record_copy(b.len());
                filled += b.len();
                continue;
            }
            // Pull the next fragment off the wire. Blocking is safe: this
            // block is incomplete, so a fragment for it must still arrive.
            let (ri, neighbor, h) = self.next_fragment()?;
            assert_eq!(h.dst, self.me, "misrouted fragment");
            if h.src == src {
                if h.offset == 0 && filled > 0 {
                    self.discard(src);
                    filled = 0;
                } else if h.offset != filled {
                    self.discard(src);
                    self.drain_payload(ri, neighbor, h.len)?;
                    continue;
                }
                assert!(
                    filled + h.len <= dst.len(),
                    "fragment overruns receive block: asymmetric traffic?"
                );
                if h.len > 0 {
                    let rs = &self.routes[ri];
                    let pmm = rs.hop_pmm(rs.my_hop(self.me));
                    hop_recv(
                        pmm,
                        neighbor,
                        &mut dst[filled..filled + h.len],
                        RecvMode::Cheaper,
                        self.host,
                        &self.stats,
                    )?;
                }
                filled += h.len;
            } else {
                // Interleaved flow from another source: buffer it.
                let rs = &self.routes[ri];
                let pmm = rs.hop_pmm(rs.my_hop(self.me));
                let mut payload = self.pool.checkout(h.len);
                if h.len > 0 {
                    hop_recv(
                        pmm,
                        neighbor,
                        &mut payload.spare_mut()[..h.len],
                        RecvMode::Cheaper,
                        self.host,
                        &self.stats,
                    )?;
                    payload.advance(h.len);
                }
                let frag = Pending {
                    offset: h.offset,
                    payload,
                };
                self.pending
                    .lock()
                    .entry(h.src)
                    .or_default()
                    .push_back(frag);
            }
        }
        Ok(())
    }
}

/// The protocol module wrapping [`GenericTm`]: one TM, StaticCopy policy —
/// "all inter-cluster traffic is handled by a generic TM".
pub struct GenericPmm {
    tms: [Arc<dyn TransmissionModule>; 1],
    generic: Arc<GenericTm>,
}

impl GenericPmm {
    pub(crate) fn new(generic: Arc<GenericTm>) -> Self {
        GenericPmm {
            tms: [Arc::clone(&generic) as Arc<dyn TransmissionModule>],
            generic,
        }
    }
}

impl Pmm for GenericPmm {
    fn name(&self) -> &'static str {
        "generic"
    }

    fn tms(&self) -> &[Arc<dyn TransmissionModule>] {
        &self.tms
    }

    fn select(&self, _len: usize, _s: SendMode, _r: RecvMode) -> TmId {
        0
    }

    fn policy(&self, _id: TmId) -> SendPolicy {
        SendPolicy::Aggregate
    }

    fn wait_incoming(&self) -> NodeId {
        madeleine::polling::PollPolicy::default().wait(|| self.generic.poll_announced())
    }

    fn poll_incoming(&self) -> Option<NodeId> {
        self.generic.poll_announced()
    }
}
