//! The gateway packet-forwarding pipeline (paper §6.2.1, Fig. 9).
//!
//! A gateway node bridges two hop channels with **two threads and a
//! dual-buffering strategy**: while one fragment is being received from the
//! incoming network into one buffer, the previous fragment is sent from the
//! other buffer onto the outgoing network. With balanced per-packet times
//! the two overlap perfectly and the pipeline period is
//! `max(recv, send) + software overhead` — the paper measures that overhead
//! at roughly 50 µs per step.
//!
//! Copy avoidance follows §6.1 exactly:
//!
//! * outgoing protocol uses **static buffers** → obtain one from the
//!   outgoing TM and receive the fragment *directly into it* (saves the
//!   staging copy regardless of the incoming protocol);
//! * incoming protocol uses static buffers, outgoing is dynamic → forward
//!   straight **out of the arrival buffer**;
//! * both static → the one unavoidable copy;
//! * both dynamic → through a reusable staging buffer, no extra copies.

use crate::generic_tm::{hop_recv, hop_send, recv_fragment_header};
use crate::route::Route;
use crate::vchannel::{route_of_chain, VirtualChannelSpec};
use crate::wire::{FragHeader, WireVersion};
use madeleine::bmm::SendPolicy;
use madeleine::config::Config;
use madeleine::error::MadResult;
use madeleine::flags::{RecvMode, SendMode};
use madeleine::pmm::Pmm;
use madeleine::pool::{BufPool, PooledBuf};
use madeleine::stats::Stats;
use madeleine::tm::StaticBuf;
use madeleine::{CompletionQueue, Madeleine};
use madsim_net::time::{self, VDuration, VTime};
use madsim_net::world::NodeEnv;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Gateway software overhead charged on the receiving half of each step.
pub const GW_RECV_OVERHEAD_US: f64 = 15.0;
/// Gateway software overhead charged on the sending half of each step
/// (buffer exchange, demultiplexing, next-hop lookup).
pub const GW_SEND_OVERHEAD_US: f64 = 35.0;

/// Number of pipeline buffers (the paper's dual-buffering).
const PIPELINE_DEPTH: usize = 2;

/// Tunables of a node's forwarders — including the **bandwidth control**
/// mechanism the paper's conclusion calls for: "the sharing of the gateway
/// internal system bus bandwidth appears to be a central issue: some
/// sophisticated bandwidth control mechanism is needed to regulate the
/// incoming communication flow on gateways."
#[derive(Clone, Copy, Debug)]
pub struct GatewayConfig {
    /// Cap the inbound payload rate per direction (MiB/s). Pacing the
    /// receive side frees host-bus arbitration slots for the outgoing
    /// transfers — see the `ablations` bench for the measured effect.
    pub inbound_limit_mibps: Option<f64>,
    /// Pipeline buffers per direction (the paper's dual buffering = 2).
    pub depth: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            inbound_limit_mibps: None,
            depth: PIPELINE_DEPTH,
        }
    }
}

/// Virtual-time token bucket regulating the inbound flow of one pipeline
/// direction.
struct RateLimiter {
    bytes_per_us: f64,
    next_allowed: VTime,
}

impl RateLimiter {
    fn new(mibps: f64) -> Self {
        RateLimiter {
            bytes_per_us: mibps * 1.048576,
            next_allowed: VTime::ZERO,
        }
    }

    /// Block (in virtual time) until `len` more payload bytes may enter.
    fn admit(&mut self, len: usize) {
        let now = time::advance_to(self.next_allowed);
        self.next_allowed = now + VDuration::from_micros_f64(len as f64 / self.bytes_per_us);
    }
}

enum GwPayload {
    /// Pooled staging memory (dynamic→dynamic): with dual buffering the
    /// direction's pool converges on `depth` warm slabs that just cycle.
    Dyn(PooledBuf),
    /// A buffer obtained from the *outgoing* TM and filled directly.
    OutStatic(StaticBuf),
    /// The *incoming* protocol's arrival buffer, forwarded as-is.
    InStatic(StaticBuf),
}

struct Filled {
    hdr: FragHeader,
    payload: GwPayload,
    ready: VTime,
}

/// Handle over a node's running forwarders; dropping it leaves them
/// running, [`stop`](Gateway::stop) shuts them down once idle.
pub struct Gateway {
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    stats: Vec<(String, Arc<Stats>)>,
}

impl Gateway {
    /// Spawn the forwarding pipelines this node owes to `spec` (one
    /// two-thread pipeline per direction per adjacency it gateways, on the
    /// primary route **and on every alternate**), with the default
    /// configuration. Returns `None` on nodes gatewaying no route of the
    /// spec.
    pub fn spawn(
        env: &NodeEnv,
        mad: &Madeleine,
        config: &Config,
        spec: &VirtualChannelSpec,
    ) -> Option<Gateway> {
        Self::spawn_with(env, mad, config, spec, GatewayConfig::default())
    }

    /// [`spawn`](Self::spawn) with explicit forwarder tunables.
    pub fn spawn_with(
        env: &NodeEnv,
        mad: &Madeleine,
        config: &Config,
        spec: &VirtualChannelSpec,
        gwcfg: GatewayConfig,
    ) -> Option<Gateway> {
        let me = env.id();
        let stop = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();
        let mut stats_out = Vec::new();
        for chain in spec.chains() {
            let route = Arc::new(route_of_chain(env, config, chain));
            for i in route.gateway_positions(me) {
                // Two directions: left-to-right (hop i → hop i+1) and back.
                for (hop_in, hop_out) in [(i, i + 1), (i + 1, i)] {
                    let in_chan = mad.channel(&chain[hop_in]);
                    let out_chan = mad.channel(&chain[hop_out]);
                    let in_pmm = Arc::clone(in_chan.pmm());
                    let out_pmm = Arc::clone(out_chan.pmm());
                    // Fragment headers are re-encoded per hop: each side of
                    // the gateway speaks its own hop channel's negotiated
                    // wire version (they may differ across the bridge).
                    let in_wire = in_chan.wire();
                    let out_wire = out_chan.wire();
                    let stats = Stats::new();
                    stats_out.push((
                        format!("{}:{}->{}", spec.name, chain[hop_in], chain[hop_out]),
                        Arc::clone(&stats),
                    ));
                    threads.extend(spawn_direction(
                        env,
                        Arc::clone(&route),
                        me,
                        in_pmm,
                        out_pmm,
                        in_wire,
                        out_wire,
                        config,
                        gwcfg,
                        Arc::clone(&stats),
                        Arc::clone(&stop),
                    ));
                }
            }
        }
        if threads.is_empty() {
            return None;
        }
        Some(Gateway {
            stop,
            threads,
            stats: stats_out,
        })
    }

    /// Per-direction copy/traffic counters (label, stats).
    pub fn stats(&self) -> &[(String, Arc<Stats>)] {
        &self.stats
    }

    /// Ask the forwarders to stop once idle and join them.
    pub fn stop(self) {
        self.stop.store(true, Ordering::Release);
        for t in self.threads {
            let _ = t.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn spawn_direction(
    env: &NodeEnv,
    route: Arc<Route>,
    me: madsim_net::NodeId,
    in_pmm: Arc<dyn Pmm>,
    out_pmm: Arc<dyn Pmm>,
    in_wire: WireVersion,
    out_wire: WireVersion,
    config: &Config,
    gwcfg: GatewayConfig,
    stats: Arc<Stats>,
    stop: Arc<AtomicBool>,
) -> Vec<JoinHandle<()>> {
    let host = config.host.0;
    let depth = gwcfg.depth.max(1);
    // Finished fragments flow to the sending half through a completion
    // queue (the progress engine's terminal primitive); the dual-buffering
    // backpressure stays on the bounded `free` slot channel, so at most
    // `depth` fragments are ever in flight per direction.
    let filled = Arc::new(CompletionQueue::<Filled>::new());
    let (free_tx, free_rx) = crossbeam::channel::bounded::<VTime>(depth);
    for _ in 0..depth {
        free_tx.send(VTime::ZERO).expect("fresh channel");
    }

    // ---- receiving half ----
    let recv_handle = {
        let route = Arc::clone(&route);
        let in_pmm = Arc::clone(&in_pmm);
        let out_pmm = Arc::clone(&out_pmm);
        let stats = Arc::clone(&stats);
        let stop = Arc::clone(&stop);
        let filled = Arc::clone(&filled);
        let free_tx = free_tx.clone();
        let mut limiter = gwcfg.inbound_limit_mibps.map(RateLimiter::new);
        let pool = BufPool::new(Arc::clone(&stats));
        env.spawn_thread(move || {
            loop {
                let Some(neighbor) = in_pmm.poll_incoming() else {
                    if stop.load(Ordering::Acquire) {
                        // Closing the queue drains the sending half: it
                        // forwards what is already filled, then exits.
                        filled.close();
                        return;
                    }
                    std::thread::sleep(Duration::from_micros(20));
                    continue;
                };
                // Dual buffering: wait (in virtual time too) for a free slot.
                let Ok(slot_free_at) = free_rx.recv() else {
                    filled.close();
                    return;
                };
                time::advance_to(slot_free_at);

                let hdr = match recv_fragment_header(&in_pmm, in_wire, neighbor, host, &stats) {
                    Ok(h) => h,
                    Err(_) => {
                        // The incoming hop died mid-fragment: drop it and
                        // recycle the slot — the end nodes' failover makes
                        // the block whole again on another route.
                        stats.record_frag_discarded();
                        let _ = free_tx.send(time::now());
                        continue;
                    }
                };
                debug_assert_ne!(hdr.dst, me, "gateways are not endpoints");
                // Bandwidth control: admit the payload at the regulated
                // rate before pulling it across the bus.
                if let Some(l) = limiter.as_mut() {
                    l.admit(hdr.len);
                }
                let got = receive_payload(&in_pmm, &out_pmm, neighbor, &hdr, &pool, host, &stats);
                let payload = match got {
                    Ok(p) => p,
                    Err(_) => {
                        stats.record_frag_discarded();
                        let _ = free_tx.send(time::now());
                        continue;
                    }
                };
                time::advance(VDuration::from_micros_f64(GW_RECV_OVERHEAD_US));
                if std::env::var("GW_DEBUG").is_ok() {
                    eprintln!("gw-recv frag len {} done at {:?}", hdr.len, time::now());
                }
                if !filled.push(Filled {
                    hdr,
                    payload,
                    ready: time::now(),
                }) {
                    return;
                }
                let _ = route; // route is used by the sending half only
            }
        })
    };

    // ---- sending half ----
    let send_handle = {
        let stats = Arc::clone(&stats);
        env.spawn_thread(move || {
            while let Some(Filled {
                hdr,
                payload,
                ready,
            }) = filled.pop_wait()
            {
                time::advance_to(ready);
                let (_hop, next) = route.next_leg(me, hdr.dst);
                let forwarded: MadResult<()> = (|| {
                    hop_send(
                        &out_pmm,
                        next,
                        &hdr.encode(out_wire),
                        RecvMode::Express,
                        host,
                        &stats,
                    )?;
                    match payload {
                        GwPayload::Dyn(v) => {
                            if !v.is_empty() {
                                hop_send(&out_pmm, next, &v, RecvMode::Cheaper, host, &stats)?;
                            }
                        }
                        GwPayload::OutStatic(buf) => {
                            let id =
                                out_pmm.select(buf.len(), SendMode::Cheaper, RecvMode::Cheaper);
                            out_pmm.tm(id).send_static_buffer(next, buf)?;
                            stats.record_buffer_sent();
                        }
                        GwPayload::InStatic(buf) => {
                            hop_send(
                                &out_pmm,
                                next,
                                buf.filled(),
                                RecvMode::Cheaper,
                                host,
                                &stats,
                            )?;
                        }
                    }
                    Ok(())
                })();
                if forwarded.is_err() {
                    // The outgoing hop is dead. Drop the fragment — the
                    // end nodes' offset-checked reassembly discards the
                    // stale tail and restarts the block on another route.
                    stats.record_frag_discarded();
                }
                time::advance(VDuration::from_micros_f64(GW_SEND_OVERHEAD_US));
                if std::env::var("GW_DEBUG").is_ok() {
                    eprintln!("gw-send frag len {} done at {:?}", hdr.len, time::now());
                }
                if free_tx.send(time::now()).is_err() {
                    return;
                }
            }
        })
    };

    vec![recv_handle, send_handle]
}

/// Receive one fragment payload using the §6.1 copy-avoidance matrix.
fn receive_payload(
    in_pmm: &Arc<dyn Pmm>,
    out_pmm: &Arc<dyn Pmm>,
    neighbor: madsim_net::NodeId,
    hdr: &FragHeader,
    pool: &BufPool,
    host: madeleine::config::HostModel,
    stats: &Arc<Stats>,
) -> MadResult<GwPayload> {
    if hdr.len == 0 {
        return Ok(GwPayload::Dyn(pool.checkout(0)));
    }
    let out_id = out_pmm.select(hdr.len, SendMode::Cheaper, RecvMode::Cheaper);
    let out_tm = out_pmm.tm(out_id);
    let out_static = out_pmm.policy(out_id) == SendPolicy::StaticCopy;
    let in_id = in_pmm.select(hdr.len, SendMode::Cheaper, RecvMode::Cheaper);
    let in_tm = in_pmm.tm(in_id);
    let in_static = in_pmm.policy(in_id) == SendPolicy::StaticCopy;

    if out_static && hdr.len <= out_tm.caps().buffer_cap {
        // Receive straight into the outgoing protocol's buffer.
        let mut buf = out_tm.obtain_static_buffer();
        hop_recv(
            in_pmm,
            neighbor,
            &mut buf.spare_mut()[..hdr.len],
            RecvMode::Cheaper,
            host,
            stats,
        )?;
        buf.advance(hdr.len);
        Ok(GwPayload::OutStatic(buf))
    } else if in_static && hdr.len <= in_tm.caps().buffer_cap {
        // Forward the arrival buffer itself.
        let buf = in_tm.receive_static_buffer(neighbor)?;
        assert_eq!(
            buf.len(),
            hdr.len,
            "arrival buffer does not match the fragment header"
        );
        Ok(GwPayload::InStatic(buf))
    } else {
        let mut v = pool.checkout(hdr.len);
        hop_recv(
            in_pmm,
            neighbor,
            &mut v.spare_mut()[..hdr.len],
            RecvMode::Cheaper,
            host,
            stats,
        )?;
        v.advance(hdr.len);
        Ok(GwPayload::Dyn(v))
    }
}
