//! # mad-gateway — efficient inter-device data forwarding for Madeleine II
//!
//! Reproduction of paper §6: extending the natively multi-device Madeleine
//! II with a transparent forwarding facility so *clusters of clusters* with
//! heterogeneous networks (a Myrinet cluster bridged to an SCI cluster by a
//! dual-homed gateway node) are handled uniformly — the alternative the
//! paper proposes over gluing libraries together PACX-MPI-style.
//!
//! Pieces, mapped to the paper:
//!
//! * [`vchannel::VirtualChannel`] — "a virtual channel that includes a
//!   sequence of real channels": the only interface change; the full
//!   pack/unpack interface then works transparently across clusters;
//! * [`generic_tm::GenericTm`] — the Generic Transmission Module inserted
//!   *between* the buffer-management layer and the real TMs: fragments
//!   messages to the route MTU and makes them self-described
//!   ([`wire::FragHeader`]) so stateless gateways can forward them;
//! * [`gateway::Gateway`] — the two-thread, dual-buffered forwarding
//!   pipeline with the §6.1 copy-avoidance matrix (receive into the
//!   outgoing protocol's static buffers; forward straight out of arrival
//!   buffers; one copy only when *both* sides demand static buffers);
//! * [`route::Route`] — static linear-chain routing.

pub mod gateway;
pub mod generic_tm;
pub mod route;
pub mod vchannel;
pub mod wire;

pub use gateway::{Gateway, GatewayConfig, GW_RECV_OVERHEAD_US, GW_SEND_OVERHEAD_US};
pub use route::Route;
pub use vchannel::{VirtualChannel, VirtualChannelSpec, DEFAULT_MTU};
pub use wire::{FragHeader, FRAG_HEADER_LEN};
