//! Virtual channels (paper §6): the only interface change the extension
//! needs — "instead of a single channel using a given network protocol, one
//! has to specify a virtual channel that includes a sequence of real
//! channels."
//!
//! A spec may additionally carry **alternate routes**
//! ([`VirtualChannelSpec::with_alternate`]): independent chains of real
//! channels joining the same end nodes through different gateways. They
//! cost nothing while the primary route is healthy; when a send on the
//! primary fails (gateway crashed, link partitioned), the Generic TM
//! restarts the affected block on the first live alternate and the channel
//! keeps working.

use crate::generic_tm::{GenericPmm, GenericTm, RouteState};
use crate::route::Route;
use madeleine::channel::Channel;
use madeleine::config::Config;
use madeleine::pmm::Pmm;
use madeleine::stats::Stats;
use madeleine::trace::Tracer;
use madeleine::wire::{WireMode, WireVersion};
use madeleine::Madeleine;
use madsim_net::world::NodeEnv;
use std::sync::Arc;

/// Default fragment size. The paper fixes the route MTU at compile time
/// ("the network configuration is statically configured"); here it is a
/// per-virtual-channel constant chosen at creation.
pub const DEFAULT_MTU: usize = 8192;

/// Declaration of a virtual channel.
#[derive(Clone, Debug)]
pub struct VirtualChannelSpec {
    pub name: String,
    /// Names of the real channels forming the chain, in order. These
    /// channels become the virtual channel's transport and must not carry
    /// direct application traffic.
    pub hops: Vec<String>,
    /// Backup chains joining the same end nodes (possibly through
    /// different gateways), tried in order when the primary fails.
    pub alternates: Vec<Vec<String>>,
    /// Route-wide fragment size (the paper's common MTU, chosen so every
    /// hop can carry a fragment without further splitting).
    pub mtu: usize,
}

impl VirtualChannelSpec {
    pub fn new(name: &str, hops: &[&str], mtu: usize) -> Self {
        assert!(mtu > 0, "MTU must be positive");
        VirtualChannelSpec {
            name: name.to_string(),
            hops: hops.iter().map(|h| h.to_string()).collect(),
            alternates: Vec::new(),
            mtu,
        }
    }

    /// Add a backup chain of real channels. The alternate must join the
    /// same end nodes as the primary chain; its gateways may differ.
    pub fn with_alternate(mut self, hops: &[&str]) -> Self {
        self.alternates
            .push(hops.iter().map(|h| h.to_string()).collect());
        self
    }

    /// All chains of this spec: the primary first, then the alternates.
    pub(crate) fn chains(&self) -> impl Iterator<Item = &Vec<String>> {
        std::iter::once(&self.hops).chain(self.alternates.iter())
    }
}

/// Compute the route of one chain of real channels from the session
/// configuration and world topology (usable on any node, member or not).
pub(crate) fn route_of_chain(env: &NodeEnv, config: &Config, chain: &[String]) -> Route {
    let hops = chain
        .iter()
        .map(|hop_name| {
            let cs = config
                .channels
                .iter()
                .find(|c| &c.name == hop_name)
                .unwrap_or_else(|| {
                    panic!("virtual channel hop {hop_name:?} is not a configured channel")
                });
            env.members_of(&cs.network)
                .unwrap_or_else(|| panic!("unknown network {:?} for hop {hop_name:?}", cs.network))
        })
        .collect();
    Route::new(hops)
}

/// Compute the primary route of `spec` from the session configuration and
/// world topology (usable on any node, member or not).
pub fn route_of(env: &NodeEnv, config: &Config, spec: &VirtualChannelSpec) -> Route {
    route_of_chain(env, config, &spec.hops)
}

/// A fully-usable virtual channel on an end node. Dereferences to a plain
/// [`Channel`], so the entire Madeleine interface (pack/unpack, all mode
/// flags, express headers, ...) works unchanged across clusters — the
/// paper's transparency claim.
pub struct VirtualChannel {
    chan: Arc<Channel>,
    route: Arc<Route>,
}

impl VirtualChannel {
    /// Open the virtual channel on this node. Returns `None` on nodes that
    /// are not on any hop **and on gateway nodes**: a gateway only runs
    /// forwarders (see [`crate::gateway`]) and must never originate or
    /// consume messages of its own on the channel it forwards.
    pub fn open(
        env: &NodeEnv,
        mad: &Madeleine,
        config: &Config,
        spec: &VirtualChannelSpec,
    ) -> Option<VirtualChannel> {
        let route = Arc::new(route_of(env, config, spec));
        let me = env.id();
        if route.hops_of(me).is_empty() || !route.gateway_positions(me).is_empty() {
            return None;
        }
        let mut routes = Vec::new();
        for chain in spec.chains() {
            let r = if chain == &spec.hops {
                Arc::clone(&route)
            } else {
                Arc::new(route_of_chain(env, config, chain))
            };
            // Skip alternates where this end node is absent or a gateway:
            // it could neither originate nor consume on them.
            if r.hops_of(me).len() != 1 || !r.gateway_positions(me).is_empty() {
                continue;
            }
            let hop_pmms: Vec<Option<Arc<dyn Pmm>>> = chain
                .iter()
                .map(|h| mad.try_channel(h).map(|c| Arc::clone(c.pmm())))
                .collect();
            // Each hop's fragment headers use that hop channel's negotiated
            // wire version — a symmetric function of shared configuration,
            // so every member of the hop (including its gateway) agrees.
            let hop_wires: Vec<Option<WireVersion>> = chain
                .iter()
                .map(|h| mad.try_channel(h).map(|c| c.wire()))
                .collect();
            routes.push(RouteState::new(r, hop_pmms, hop_wires));
        }
        let stats = Stats::new();
        let host = config.host.0;
        let tracer = Arc::new(Tracer::new());
        let generic = Arc::new(GenericTm::new(
            routes,
            me,
            spec.mtu,
            host,
            Arc::clone(&stats),
            Arc::clone(&tracer),
        ));
        let pmm: Arc<dyn Pmm> = Arc::new(GenericPmm::new(generic));
        // The virtual channel's own message headers follow the same rule
        // as any channel: compact on a fault-free world, classic whenever
        // a fault plan is armed (a world-global fact, so both end nodes
        // agree without wire traffic).
        let wire_mode = if env.faults().is_some() {
            WireMode::Classic
        } else {
            WireMode::Auto
        };
        let chan = Channel::with_pmm_wired(
            spec.name.clone(),
            pmm,
            me,
            route.all_members(),
            host,
            stats,
            tracer,
            wire_mode,
        );
        Some(VirtualChannel { chan, route })
    }

    /// The underlying channel object (also available via `Deref`).
    pub fn channel(&self) -> &Arc<Channel> {
        &self.chan
    }

    /// The primary route (alternates are internal to the Generic TM).
    pub fn route(&self) -> &Arc<Route> {
        &self.route
    }
}

impl std::ops::Deref for VirtualChannel {
    type Target = Channel;

    fn deref(&self) -> &Channel {
        &self.chan
    }
}
