//! Route computation over a sequence of real channels.
//!
//! A virtual channel is "a sequence of real channels" (paper §6): a linear
//! chain of clusters where adjacent hops share exactly one node — the
//! gateway. Routing on a chain is trivial and static: an end node finds the
//! hop segment it shares with the destination or forwards toward it through
//! the adjacent gateway.

use madsim_net::NodeId;

/// The static topology of one virtual channel.
#[derive(Clone, Debug)]
pub struct Route {
    /// Member nodes of each hop channel, in chain order.
    hops: Vec<Vec<NodeId>>,
    /// `gateways[i]` joins `hops[i]` and `hops[i+1]`.
    gateways: Vec<NodeId>,
}

impl Route {
    /// Build the route from the member lists of the hop channels.
    ///
    /// # Panics
    /// Panics unless adjacent hops share **exactly one** node (the
    /// gateway), and non-adjacent hops share none.
    pub fn new(hops: Vec<Vec<NodeId>>) -> Self {
        assert!(!hops.is_empty(), "a virtual channel needs at least one hop");
        let mut gateways = Vec::new();
        for w in hops.windows(2) {
            let shared: Vec<NodeId> = w[0].iter().copied().filter(|n| w[1].contains(n)).collect();
            assert_eq!(
                shared.len(),
                1,
                "adjacent hops must share exactly one gateway node, found {shared:?}"
            );
            gateways.push(shared[0]);
        }
        for i in 0..hops.len() {
            for j in i + 2..hops.len() {
                for n in &hops[i] {
                    assert!(
                        !hops[j].contains(n),
                        "node {n} appears in non-adjacent hops {i} and {j}: \
                         the chain must be linear"
                    );
                }
            }
        }
        Route { hops, gateways }
    }

    pub fn n_hops(&self) -> usize {
        self.hops.len()
    }

    /// Members of hop `i`.
    pub fn hop_members(&self, i: usize) -> &[NodeId] {
        &self.hops[i]
    }

    /// The gateway joining hops `i` and `i+1`.
    pub fn gateway(&self, i: usize) -> NodeId {
        self.gateways[i]
    }

    /// Gateways adjacent to `node` as `(left_hop_index, node_is_gateway)`
    /// pairs: indices `i` such that `node` is the gateway between hops `i`
    /// and `i+1`.
    pub fn gateway_positions(&self, node: NodeId) -> Vec<usize> {
        (0..self.gateways.len())
            .filter(|&i| self.gateways[i] == node)
            .collect()
    }

    /// Every distinct member node.
    pub fn all_members(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.hops.iter().flatten().copied().collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Hop indices containing `node`.
    pub fn hops_of(&self, node: NodeId) -> Vec<usize> {
        (0..self.hops.len())
            .filter(|&i| self.hops[i].contains(&node))
            .collect()
    }

    /// From `me`, the `(hop_index, next_node)` of the first leg toward
    /// `dst`.
    ///
    /// # Panics
    /// Panics if `me` or `dst` is not on the route.
    pub fn next_leg(&self, me: NodeId, dst: NodeId) -> (usize, NodeId) {
        assert_ne!(me, dst, "routing to self");
        let my_hops = self.hops_of(me);
        assert!(!my_hops.is_empty(), "node {me} is not on this route");
        let dst_hops = self.hops_of(dst);
        assert!(!dst_hops.is_empty(), "node {dst} is not on this route");
        // Shared hop: direct.
        for &h in &my_hops {
            if dst_hops.contains(&h) {
                return (h, dst);
            }
        }
        // Otherwise move along the chain toward dst.
        let my_max = *my_hops.iter().max().expect("non-empty");
        let my_min = *my_hops.iter().min().expect("non-empty");
        let dst_min = *dst_hops.iter().min().expect("non-empty");
        if dst_min > my_max {
            // Rightwards: exit through the gateway at the right edge.
            (my_max, self.gateways[my_max])
        } else {
            debug_assert!(dst_min < my_min);
            // Leftwards.
            (my_min, self.gateways[my_min - 1])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cluster() -> Route {
        // SCI cluster {0,1,2}, gateway 2, Myrinet cluster {2,3,4}.
        Route::new(vec![vec![0, 1, 2], vec![2, 3, 4]])
    }

    #[test]
    fn gateway_is_detected() {
        let r = two_cluster();
        assert_eq!(r.gateway(0), 2);
        assert_eq!(r.gateway_positions(2), vec![0]);
        assert_eq!(r.gateway_positions(0), Vec::<usize>::new());
    }

    #[test]
    fn direct_route_within_hop() {
        let r = two_cluster();
        assert_eq!(r.next_leg(0, 1), (0, 1));
        assert_eq!(r.next_leg(3, 4), (1, 4));
    }

    #[test]
    fn cross_cluster_route_goes_through_gateway() {
        let r = two_cluster();
        assert_eq!(r.next_leg(0, 4), (0, 2));
        assert_eq!(r.next_leg(4, 1), (1, 2));
    }

    #[test]
    fn gateway_routes_onward() {
        let r = two_cluster();
        assert_eq!(r.next_leg(2, 0), (0, 0));
        assert_eq!(r.next_leg(2, 4), (1, 4));
    }

    #[test]
    fn three_hop_chain() {
        // {0,1} -[1]- {1,2} -[2]- {2,3}
        let r = Route::new(vec![vec![0, 1], vec![1, 2], vec![2, 3]]);
        assert_eq!(r.gateway(0), 1);
        assert_eq!(r.gateway(1), 2);
        assert_eq!(r.next_leg(0, 3), (0, 1));
        assert_eq!(r.next_leg(1, 3), (1, 2));
        assert_eq!(r.next_leg(2, 3), (2, 3));
        assert_eq!(r.next_leg(3, 0), (2, 2));
        assert_eq!(r.all_members(), vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "exactly one gateway")]
    fn disjoint_hops_rejected() {
        Route::new(vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    #[should_panic(expected = "exactly one gateway")]
    fn doubly_joined_hops_rejected() {
        Route::new(vec![vec![0, 1, 2], vec![1, 2, 3]]);
    }

    #[test]
    #[should_panic(expected = "linear")]
    fn cyclic_chain_rejected() {
        Route::new(vec![vec![0, 1], vec![1, 2], vec![2, 0]]);
    }
}
