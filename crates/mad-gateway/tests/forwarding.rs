//! End-to-end inter-cluster forwarding tests (paper §6.2 topology):
//! an SCI cluster and a Myrinet cluster bridged by a dual-homed gateway.

use mad_gateway::{Gateway, VirtualChannel, VirtualChannelSpec};
use madeleine::{Config, Madeleine, Protocol, RecvMode, SendMode};
use madsim_net::{NetKind, WorldBuilder};

fn patterned(n: usize, seed: u8) -> Vec<u8> {
    (0..n)
        .map(|i| (i as u8).wrapping_mul(29).wrapping_add(seed))
        .collect()
}

/// Nodes 0,1 on SCI; node 2 = gateway; nodes 3,4 on Myrinet.
fn two_cluster_world() -> (madsim_net::World, Config) {
    let mut b = WorldBuilder::new(5);
    b.network("sci0", NetKind::Sci, &[0, 1, 2]);
    b.network("myr0", NetKind::Myrinet, &[2, 3, 4]);
    let world = b.build();
    let config =
        Config::one("sci", "sci0", Protocol::Sisci).with_channel("myr", "myr0", Protocol::Bip);
    (world, config)
}

fn run_intercluster(msg_sizes: Vec<usize>, mtu: usize, from: usize, to: usize) {
    let (world, config) = two_cluster_world();
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let spec = VirtualChannelSpec::new("vc", &["sci", "myr"], mtu);
        let gw = Gateway::spawn(&env, &mad, &config, &spec);
        let vc = VirtualChannel::open(&env, &mad, &config, &spec);
        if env.id() == from {
            let vc = vc.expect("sender is an endpoint");
            for (k, &n) in msg_sizes.iter().enumerate() {
                let data = patterned(n, k as u8);
                let len = (n as u32).to_le_bytes();
                let mut msg = vc.begin_packing(to);
                msg.pack(&len, SendMode::Cheaper, RecvMode::Express);
                msg.pack(&data, SendMode::Cheaper, RecvMode::Cheaper);
                msg.end_packing();
            }
        } else if env.id() == to {
            let vc = vc.expect("receiver is an endpoint");
            for (k, &n) in msg_sizes.iter().enumerate() {
                let mut msg = vc.begin_unpacking();
                assert_eq!(msg.src(), from);
                let mut len = [0u8; 4];
                msg.unpack_express(&mut len, SendMode::Cheaper);
                assert_eq!(u32::from_le_bytes(len) as usize, n);
                let mut got = vec![0u8; n];
                msg.unpack(&mut got, SendMode::Cheaper, RecvMode::Cheaper);
                msg.end_unpacking();
                assert_eq!(got, patterned(n, k as u8), "message {k} size {n}");
            }
        }
        env.barrier();
        if let Some(gw) = gw {
            gw.stop();
        }
    });
}

#[test]
fn sci_to_myrinet_small_and_large() {
    run_intercluster(vec![1, 100, 8000, 40_000, 200_000], 8192, 0, 4);
}

#[test]
fn myrinet_to_sci_small_and_large() {
    run_intercluster(vec![5, 3000, 120_000], 8192, 4, 0);
}

#[test]
fn large_mtu_forwarding() {
    run_intercluster(vec![500_000], 65536, 1, 3);
}

#[test]
fn small_mtu_fragments_heavily() {
    run_intercluster(vec![20_000], 2048, 0, 3);
}

#[test]
fn intracluster_traffic_on_virtual_channel() {
    // Same-hop endpoints: no gateway traversal, still works uniformly.
    run_intercluster(vec![10, 9000], 8192, 0, 1);
}

#[test]
fn bidirectional_intercluster() {
    let (world, config) = two_cluster_world();
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let spec = VirtualChannelSpec::new("vc", &["sci", "myr"], 8192);
        let gw = Gateway::spawn(&env, &mad, &config, &spec);
        let vc = VirtualChannel::open(&env, &mad, &config, &spec);
        let payload = patterned(30_000, 9);
        if env.id() == 0 {
            let vc = vc.expect("endpoint");
            let mut msg = vc.begin_packing(4);
            msg.pack(&payload, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_packing();
            let mut back = vec![0u8; payload.len()];
            let mut msg = vc.begin_unpacking();
            msg.unpack(&mut back, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_unpacking();
            assert_eq!(back, payload);
        } else if env.id() == 4 {
            let vc = vc.expect("endpoint");
            let mut got = vec![0u8; payload.len()];
            let mut msg = vc.begin_unpacking();
            msg.unpack(&mut got, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_unpacking();
            let mut msg = vc.begin_packing(0);
            msg.pack(&got, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_packing();
        }
        env.barrier();
        if let Some(gw) = gw {
            gw.stop();
        }
    });
}

#[test]
fn two_senders_one_receiver_across_gateway() {
    let (world, config) = two_cluster_world();
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let spec = VirtualChannelSpec::new("vc", &["sci", "myr"], 8192);
        let gw = Gateway::spawn(&env, &mad, &config, &spec);
        let vc = VirtualChannel::open(&env, &mad, &config, &spec);
        match env.id() {
            0 | 1 => {
                let vc = vc.expect("endpoint");
                let data = patterned(12_000, env.id() as u8);
                let mut msg = vc.begin_packing(3);
                msg.pack(&data, SendMode::Cheaper, RecvMode::Cheaper);
                msg.end_packing();
            }
            3 => {
                let vc = vc.expect("endpoint");
                let mut seen = Vec::new();
                for _ in 0..2 {
                    let mut got = vec![0u8; 12_000];
                    let mut msg = vc.begin_unpacking();
                    let src = msg.src();
                    msg.unpack(&mut got, SendMode::Cheaper, RecvMode::Cheaper);
                    msg.end_unpacking();
                    assert_eq!(got, patterned(12_000, src as u8));
                    seen.push(src);
                }
                seen.sort_unstable();
                assert_eq!(seen, vec![0, 1]);
            }
            _ => {}
        }
        env.barrier();
        if let Some(gw) = gw {
            gw.stop();
        }
    });
}

/// Three-hop chain: SCI | Myrinet | Ethernet(TCP).
#[test]
fn three_hop_chain_forwards() {
    let mut b = WorldBuilder::new(6);
    b.network("sci0", NetKind::Sci, &[0, 1]);
    b.network("myr0", NetKind::Myrinet, &[1, 2, 3]);
    b.network("eth0", NetKind::Ethernet, &[3, 4, 5]);
    let world = b.build();
    let config = Config::one("sci", "sci0", Protocol::Sisci)
        .with_channel("myr", "myr0", Protocol::Bip)
        .with_channel("eth", "eth0", Protocol::Tcp);
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let spec = VirtualChannelSpec::new("vc", &["sci", "myr", "eth"], 4096);
        let gw = Gateway::spawn(&env, &mad, &config, &spec);
        let vc = VirtualChannel::open(&env, &mad, &config, &spec);
        let data = patterned(25_000, 3);
        if env.id() == 0 {
            let vc = vc.expect("endpoint");
            let mut msg = vc.begin_packing(5);
            msg.pack(&data, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_packing();
        } else if env.id() == 5 {
            let vc = vc.expect("endpoint");
            let mut got = vec![0u8; data.len()];
            let mut msg = vc.begin_unpacking();
            assert_eq!(msg.src(), 0);
            msg.unpack(&mut got, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_unpacking();
            assert_eq!(got, data);
        }
        env.barrier();
        if let Some(gw) = gw {
            gw.stop();
        }
    });
}

/// The §6.1 copy-avoidance matrix, measured with the gateway's own
/// counters. Per forwarded fragment the gateway performs:
///   dynamic→dynamic: 0 generic-layer copies;
///   dynamic→static:  0 (receive straight into the outgoing buffer);
///   static→dynamic:  0 (send straight from the arrival buffer);
///   static→static:   exactly 1 (unavoidable).
#[test]
fn gateway_copy_matrix() {
    // (in-protocol, in-net, out-protocol, out-net, expected copies/frag)
    let cases = [
        (
            Protocol::Sisci,
            NetKind::Sci,
            Protocol::Bip,
            NetKind::Myrinet,
            0u64,
        ),
        (
            Protocol::Sisci,
            NetKind::Sci,
            Protocol::Sbp,
            NetKind::Ethernet,
            0,
        ),
        (
            Protocol::Sbp,
            NetKind::Ethernet,
            Protocol::Sisci,
            NetKind::Sci,
            0,
        ),
        (
            Protocol::Sbp,
            NetKind::Ethernet,
            Protocol::Via,
            NetKind::ViaSan,
            1,
        ),
    ];
    for (pin, kin, pout, kout, want_copies) in cases {
        let mut b = WorldBuilder::new(3);
        b.network("in0", kin, &[0, 1]);
        b.network("out0", kout, &[1, 2]);
        let world = b.build();
        let config = Config::one("in", "in0", pin).with_channel("out", "out0", pout);
        // One fragment exactly: message payload == MTU, MTU within every
        // protocol's buffer cap (VIA's is 8 kB, minus room for the header
        // fragment riding separately).
        let mtu = 4096usize;
        let n_msgs = 4u64;
        world.run(move |env| {
            let mad = Madeleine::init(&env, &config);
            let spec = VirtualChannelSpec::new("vc", &["in", "out"], mtu);
            let gw = Gateway::spawn(&env, &mad, &config, &spec);
            let vc = VirtualChannel::open(&env, &mad, &config, &spec);
            if env.id() == 0 {
                let vc = vc.expect("endpoint");
                for k in 0..n_msgs {
                    let data = patterned(mtu, k as u8);
                    let mut msg = vc.begin_packing(2);
                    msg.pack(&data, SendMode::Cheaper, RecvMode::Cheaper);
                    msg.end_packing();
                }
            } else if env.id() == 2 {
                let vc = vc.expect("endpoint");
                for k in 0..n_msgs {
                    let mut got = vec![0u8; mtu];
                    let mut msg = vc.begin_unpacking();
                    msg.unpack(&mut got, SendMode::Cheaper, RecvMode::Cheaper);
                    msg.end_unpacking();
                    assert_eq!(got, patterned(mtu, k as u8));
                }
            }
            env.barrier();
            if let Some(gw) = gw {
                // Count only payload copies: subtract the per-fragment
                // header handling. Headers are 16-byte blocks; their copies
                // (if the hop protocols are static) are counted too, so
                // compare copied *payload bytes* instead of copy counts.
                let copied: u64 = gw.stats().iter().map(|(_, s)| s.copied_bytes()).sum();
                // Each message = 1 header fragment pair + payload of `mtu`
                // bytes (the MAD2 channel header adds 16 bytes in the first
                // fragment... payload fragments may thus be 2).
                let payload_copied = copied;
                let floor = want_copies * (mtu as u64) * n_msgs;
                let slack = 64 * 4 * n_msgs; // header bytes bookkeeping
                assert!(
                    payload_copied >= floor && payload_copied <= floor + slack,
                    "{pin:?}->{pout:?}: copied {payload_copied} bytes, \
                     expected about {floor} (+{slack} slack)"
                );
                gw.stop();
            }
        });
    }
}

/// GatewayConfig: deeper pipelines and inbound rate limits still forward
/// correctly, and the limiter really paces the flow (virtual completion
/// grows once the limit binds).
#[test]
fn gateway_config_variants_forward_correctly() {
    use mad_gateway::GatewayConfig;
    let run = |gwcfg: GatewayConfig| -> f64 {
        let (world, config) = two_cluster_world();
        let times = world.run(move |env| {
            let mad = Madeleine::init(&env, &config);
            let spec = VirtualChannelSpec::new("vc", &["sci", "myr"], 8192);
            let gw = Gateway::spawn_with(&env, &mad, &config, &spec, gwcfg);
            let vc = VirtualChannel::open(&env, &mad, &config, &spec);
            let mut out = 0.0;
            if env.id() == 0 {
                let vc = vc.expect("endpoint");
                let data = patterned(200_000, 3);
                let mut m = vc.begin_packing(4);
                m.pack(&data, SendMode::Cheaper, RecvMode::Cheaper);
                m.end_packing();
            } else if env.id() == 4 {
                let vc = vc.expect("endpoint");
                let mut buf = vec![0u8; 200_000];
                let mut m = vc.begin_unpacking();
                m.unpack(&mut buf, SendMode::Cheaper, RecvMode::Cheaper);
                m.end_unpacking();
                assert_eq!(buf, patterned(200_000, 3));
                out = madsim_net::time::now().as_micros_f64();
            }
            env.barrier();
            if let Some(gw) = gw {
                gw.stop();
            }
            out
        });
        times[4]
    };
    let base = run(GatewayConfig::default());
    let deep = run(GatewayConfig {
        inbound_limit_mibps: None,
        depth: 4,
    });
    let throttled = run(GatewayConfig {
        inbound_limit_mibps: Some(5.0),
        depth: 2,
    });
    // A 5 MiB/s admission limit must dominate: 200 kB needs about 38 ms
    // (the first fragment is admitted for free, so slightly less).
    assert!(
        throttled > 35_000.0,
        "rate limiter not binding: {throttled:.0} us"
    );
    assert!(throttled > base * 3.0);
    // Deeper pipelines must not break anything or slow the flow massively.
    assert!(
        deep < base * 1.5,
        "depth-4 regressed: {deep:.0} vs {base:.0}"
    );
}

#[test]
#[should_panic(expected = "is not a member")]
fn sending_to_off_route_node_panics() {
    let mut b = WorldBuilder::new(4);
    b.network("sci0", NetKind::Sci, &[0, 1]);
    b.network("myr0", NetKind::Myrinet, &[1, 2]);
    b.network("eth0", NetKind::Ethernet, &[0, 3]); // node 3 off the route
    let world = b.build();
    let config = Config::one("sci", "sci0", Protocol::Sisci)
        .with_channel("myr", "myr0", Protocol::Bip)
        .with_channel("eth", "eth0", Protocol::Tcp);
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let spec = VirtualChannelSpec::new("vc", &["sci", "myr"], 8192);
        let vc = VirtualChannel::open(&env, &mad, &config, &spec);
        if env.id() == 0 {
            let vc = vc.expect("endpoint");
            let mut m = vc.begin_packing(3); // 3 is not on the chain
            m.pack(b"lost", SendMode::Cheaper, RecvMode::Cheaper);
            m.end_packing();
        }
    });
}

#[test]
fn gateway_node_gets_no_endpoint_handle() {
    let (world, config) = two_cluster_world();
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let spec = VirtualChannelSpec::new("vc", &["sci", "myr"], 8192);
        let vc = VirtualChannel::open(&env, &mad, &config, &spec);
        if env.id() == 2 {
            // Node 2 is the gateway: it only runs forwarders, never
            // messages of its own.
            assert!(vc.is_none(), "gateways must not get endpoint handles");
        } else {
            assert!(vc.is_some());
        }
    });
}

/// Forwarding over a *multirail* leaf: the Myrinet cluster spans two rails
/// per node and its channel is declared `with_rails(2)`. The gateway
/// forwards hop traffic over the channel's rail-0 PMM (single-rail by
/// contract), so inter-cluster messages must arrive byte-identical and
/// unstriped; direct bulk traffic on the same channel afterwards must
/// stripe across both rails.
#[test]
fn forwarding_over_a_two_rail_leaf() {
    use madeleine::ChannelSpec;
    let mut b = WorldBuilder::new(5);
    b.network("sci0", NetKind::Sci, &[0, 1, 2]);
    b.network_with_rails("myr0", NetKind::Myrinet, &[2, 3, 4], 2);
    let world = b.build();
    let config = Config::one("sci", "sci0", Protocol::Sisci).with_channel_spec(
        ChannelSpec::new("myr", "myr0", Protocol::Bip)
            .with_rails(2)
            .with_striping(16 * 1024, 8 * 1024),
    );
    const LEN: usize = 150_000;
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let spec = VirtualChannelSpec::new("vc", &["sci", "myr"], 64 * 1024);
        let gw = Gateway::spawn(&env, &mad, &config, &spec);
        let vc = VirtualChannel::open(&env, &mad, &config, &spec);
        if env.id() == 0 {
            let vc = vc.expect("endpoint");
            let data = patterned(LEN, 11);
            let mut msg = vc.begin_packing(4);
            msg.pack(&data, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_packing();
        } else if env.id() == 4 {
            let vc = vc.expect("endpoint");
            let mut got = vec![0u8; LEN];
            let mut msg = vc.begin_unpacking();
            assert_eq!(msg.src(), 0);
            msg.unpack(&mut got, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_unpacking();
            assert_eq!(got, patterned(LEN, 11));
        }
        env.barrier();
        if let Some(gw) = gw {
            gw.stop();
        }
        env.barrier();
        // With the gateway quiesced, drive a bulk message straight over the
        // multirail "myr" channel: this one must stripe across both rails.
        // Only nodes 2..4 are members of that channel.
        if env.id() == 3 {
            let ch = mad.channel("myr");
            let data = patterned(LEN, 12);
            let mut msg = ch.begin_packing(4);
            msg.pack(&data, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_packing();
            assert!(
                ch.stats().stripes() >= 1,
                "bulk CHEAPER block never striped"
            );
            let (_, rail1_bytes) = ch.stats().rail_traffic(1);
            assert!(rail1_bytes > 0, "rail 1 carried no stripe traffic");
        } else if env.id() == 4 {
            let ch = mad.channel("myr");
            let mut got = vec![0u8; LEN];
            let mut msg = ch.begin_unpacking();
            assert_eq!(msg.src(), 3);
            msg.unpack(&mut got, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_unpacking();
            assert_eq!(got, patterned(LEN, 12));
        }
        env.barrier();
    });
}
