//! Point-to-point messaging: the `ch_mad` device (paper §5.3.1).
//!
//! Every MPI message becomes one Madeleine message: an 8-byte envelope
//! (tag + length) packed `(CHEAPER, EXPRESS)` — which coalesces with the
//! library's own header into the protocol's small-message path — followed
//! by the payload packed `(CHEAPER, CHEAPER)`, so the multi-protocol
//! transfer-method selection of Madeleine II applies to MPI traffic
//! unchanged: that is the whole point of the port.
//!
//! Tag matching is MPICH-style: messages that arrive while a non-matching
//! receive is outstanding are drained into an *unexpected queue* (one copy,
//! as in real MPICH) and matched later.

use crate::comm::Comm;
use bytes::Bytes;
use madeleine::{OpId, RecvMode, SendMode};
use madsim_net::time::{self, VDuration};
use parking_lot::Mutex;
use std::collections::VecDeque;

/// Wildcard receive selectors.
pub const ANY_SOURCE: Option<usize> = None;
pub const ANY_TAG: Option<i32> = None;

/// Per-message software overhead of the MPI layer (envelope handling,
/// request bookkeeping), calibrated so the MPICH/Madeleine latency sits a
/// few µs above raw Madeleine (Fig. 6).
const MPI_OVERHEAD_US: f64 = 1.6;

/// Completed-receive status.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Status {
    pub source: usize,
    pub tag: i32,
    pub len: usize,
}

struct Unexpected {
    ctx: u16,
    /// Originating *node* (rank depends on the receiving communicator).
    src_node: madsim_net::NodeId,
    tag: i32,
    data: Vec<u8>,
}

/// Point-to-point endpoint state of one communicator.
#[derive(Default)]
pub struct P2p {
    unexpected: Mutex<VecDeque<Unexpected>>,
}

impl P2p {
    pub fn new() -> Self {
        P2p::default()
    }

    /// Blocking standard-mode send.
    pub fn send(&self, comm: &Comm, dst_rank: usize, tag: i32, data: &[u8]) {
        time::advance(VDuration::from_micros_f64(MPI_OVERHEAD_US));
        let ch = comm.channel();
        let mut env = [0u8; 12];
        env[0..2].copy_from_slice(&comm.ctx().to_le_bytes());
        env[4..8].copy_from_slice(&tag.to_le_bytes());
        env[8..12].copy_from_slice(&(data.len() as u32).to_le_bytes());
        let mut msg = ch.begin_packing(comm.node_of(dst_rank));
        msg.pack(&env, SendMode::Cheaper, RecvMode::Express);
        if !data.is_empty() {
            msg.pack(data, SendMode::Cheaper, RecvMode::Cheaper);
        }
        msg.end_packing();
    }

    /// Post a standard-mode send as a **nonblocking op**: returns an op
    /// handle immediately, whatever the message size — the transfer
    /// (including BIP's long-message rendezvous) is driven by the
    /// channel's progress engine inside `test`/`wait`. The wire bytes are
    /// the same envelope + payload a blocking [`send`](Self::send) emits.
    pub(crate) fn post_send(&self, comm: &Comm, dst_rank: usize, tag: i32, data: &[u8]) -> OpId {
        time::advance(VDuration::from_micros_f64(MPI_OVERHEAD_US));
        let ch = comm.channel();
        let mut env = [0u8; 12];
        env[0..2].copy_from_slice(&comm.ctx().to_le_bytes());
        env[4..8].copy_from_slice(&tag.to_le_bytes());
        env[8..12].copy_from_slice(&(data.len() as u32).to_le_bytes());
        let mut blocks = vec![(
            Bytes::copy_from_slice(&env),
            SendMode::Cheaper,
            RecvMode::Express,
        )];
        if !data.is_empty() {
            blocks.push((
                Bytes::copy_from_slice(data),
                SendMode::Cheaper,
                RecvMode::Cheaper,
            ));
        }
        ch.post_message(comm.node_of(dst_rank), blocks)
    }

    /// Blocking receive with optional source/tag wildcards. Returns the
    /// matched status; the payload is written to `buf[..status.len]`.
    ///
    /// # Panics
    /// Panics if the matched message exceeds `buf` (MPI truncation error).
    pub fn recv(
        &self,
        comm: &Comm,
        src: Option<usize>,
        tag: Option<i32>,
        buf: &mut [u8],
    ) -> Status {
        time::advance(VDuration::from_micros_f64(MPI_OVERHEAD_US));
        // 1. Unexpected queue first (arrival order).
        if let Some(st) = self.take_unexpected(comm, src, tag, buf) {
            return st;
        }
        // 2. Drain the wire until a match shows up.
        loop {
            if let Some(st) = self.pump_one(comm, src, tag, buf) {
                return st;
            }
        }
    }

    /// Read exactly one message off the channel (blocking); if it matches
    /// the `(src, tag)` selectors it fills `buf` and returns its status,
    /// otherwise it lands in the unexpected queue and `None` is returned.
    fn pump_one(
        &self,
        comm: &Comm,
        src: Option<usize>,
        tag: Option<i32>,
        buf: &mut [u8],
    ) -> Option<Status> {
        let ch = comm.channel();
        let mut msg = ch.begin_unpacking();
        let src_node = msg.src();
        let mut env = [0u8; 12];
        msg.unpack_express(&mut env, SendMode::Cheaper);
        let mctx = u16::from_le_bytes(env[0..2].try_into().expect("2 bytes"));
        let mtag = i32::from_le_bytes(env[4..8].try_into().expect("4 bytes"));
        let len = u32::from_le_bytes(env[8..12].try_into().expect("4 bytes")) as usize;
        let matches = mctx == comm.ctx()
            && src.is_none_or(|s| s < comm.size() && comm.node_of(s) == src_node)
            && tag.is_none_or(|t| t == mtag);
        if matches {
            assert!(
                len <= buf.len(),
                "MPI truncation: message of {len} bytes into buffer of {}",
                buf.len()
            );
            if len > 0 {
                msg.unpack(&mut buf[..len], SendMode::Cheaper, RecvMode::Cheaper);
            }
            msg.end_unpacking();
            return Some(Status {
                source: comm.rank_of(src_node),
                tag: mtag,
                len,
            });
        }
        // Unexpected (wrong source, tag, or communicator context): buffer
        // it — the MPICH copy.
        let mut data = vec![0u8; len];
        if len > 0 {
            msg.unpack(&mut data, SendMode::Cheaper, RecvMode::Cheaper);
        }
        msg.end_unpacking();
        self.unexpected.lock().push_back(Unexpected {
            ctx: mctx,
            src_node,
            tag: mtag,
            data,
        });
        None
    }

    /// Nonblocking match attempt: the unexpected queue first, then any
    /// messages already announced on the wire. Returns `None` when a
    /// matching message has not arrived yet.
    pub(crate) fn try_match(
        &self,
        comm: &Comm,
        src: Option<usize>,
        tag: Option<i32>,
        buf: &mut [u8],
    ) -> Option<Status> {
        if let Some(st) = self.take_unexpected(comm, src, tag, buf) {
            return Some(st);
        }
        while comm.channel().pmm().poll_incoming().is_some() {
            if let Some(st) = self.pump_one(comm, src, tag, buf) {
                return Some(st);
            }
        }
        None
    }

    /// Block until some message is announced on the channel (without
    /// consuming it); used by `wait`/`waitall` between match attempts.
    pub(crate) fn block_for_traffic(&self, comm: &Comm) {
        let _ = comm.channel().pmm().wait_incoming();
    }

    /// Nonblocking probe: is a message matching `(src, tag)` available?
    /// Drains announced wire traffic into the unexpected queue to decide
    /// (as MPICH's progress engine does), but consumes no matching message.
    pub fn iprobe(&self, comm: &Comm, src: Option<usize>, tag: Option<i32>) -> Option<Status> {
        loop {
            {
                let q = self.unexpected.lock();
                if let Some(u) = q.iter().find(|u| {
                    u.ctx == comm.ctx()
                        && src.is_none_or(|s| s < comm.size() && comm.node_of(s) == u.src_node)
                        && tag.is_none_or(|t| t == u.tag)
                }) {
                    return Some(Status {
                        source: comm.rank_of(u.src_node),
                        tag: u.tag,
                        len: u.data.len(),
                    });
                }
            }
            comm.channel().pmm().poll_incoming()?;
            // Something is on the wire: classify it. `pump_one` with
            // never-matching selectors routes it to the unexpected queue.
            let mut sink = [0u8; 0];
            let consumed = self.pump_one(comm, Some(usize::MAX), None, &mut sink);
            debug_assert!(consumed.is_none(), "impossible selector matched");
        }
    }

    /// Blocking probe.
    pub fn probe(&self, comm: &Comm, src: Option<usize>, tag: Option<i32>) -> Status {
        loop {
            if let Some(st) = self.iprobe(comm, src, tag) {
                return st;
            }
            self.block_for_traffic(comm);
        }
    }

    fn take_unexpected(
        &self,
        comm: &Comm,
        src: Option<usize>,
        tag: Option<i32>,
        buf: &mut [u8],
    ) -> Option<Status> {
        let mut q = self.unexpected.lock();
        let pos = q.iter().position(|u| {
            u.ctx == comm.ctx()
                && src.is_none_or(|s| s < comm.size() && comm.node_of(s) == u.src_node)
                && tag.is_none_or(|t| t == u.tag)
        })?;
        let u = q.remove(pos).expect("position just found");
        assert!(
            u.data.len() <= buf.len(),
            "MPI truncation: message of {} bytes into buffer of {}",
            u.data.len(),
            buf.len()
        );
        buf[..u.data.len()].copy_from_slice(&u.data);
        Some(Status {
            source: comm.rank_of(u.src_node),
            tag: u.tag,
            len: u.data.len(),
        })
    }

    /// Combined send+receive, deadlock-free for pairwise exchanges even
    /// over rendezvous protocols (BIP's long path blocks the sender until
    /// the receiver posts): the lower rank sends first, the higher rank
    /// receives first.
    #[allow(clippy::too_many_arguments)]
    pub fn sendrecv(
        &self,
        comm: &Comm,
        dst_rank: usize,
        send_tag: i32,
        data: &[u8],
        src: Option<usize>,
        recv_tag: Option<i32>,
        buf: &mut [u8],
    ) -> Status {
        assert_ne!(dst_rank, comm.rank(), "sendrecv with self");
        if comm.rank() < dst_rank {
            self.send(comm, dst_rank, send_tag, data);
            self.recv(comm, src, recv_tag, buf)
        } else {
            let st = self.recv(comm, src, recv_tag, buf);
            self.send(comm, dst_rank, send_tag, data);
            st
        }
    }
}
