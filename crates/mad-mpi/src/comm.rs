//! Communicators: rank/size view over a Madeleine channel.

use madeleine::Channel;
use madsim_net::NodeId;
use std::sync::Arc;

/// An MPI-style communicator bound to one Madeleine channel (the `ch_mad`
/// device: every communicator operation becomes Madeleine messages).
pub struct Comm {
    chan: Arc<Channel>,
    /// Sorted member node ids; the index is the rank.
    members: Vec<NodeId>,
    rank: usize,
    /// Communicator context: messages match only within one context, so
    /// sub-communicators sharing the channel cannot intercept each other's
    /// traffic (MPI's context-id mechanism).
    ctx: u16,
}

impl Comm {
    /// Build the world communicator over `chan`. Collective by convention:
    /// all channel members construct it.
    pub fn world(chan: Arc<Channel>) -> Self {
        Self::from_members(chan, None)
    }

    /// Build a communicator over an explicit subset of the channel's
    /// members (e.g. the end nodes of a virtual channel, excluding the
    /// gateways, so MPI can span clusters of clusters). `None` means all
    /// channel members.
    ///
    /// # Panics
    /// Panics if this node is not in the member set.
    pub fn from_members(chan: Arc<Channel>, members: Option<&[NodeId]>) -> Self {
        Self::with_context(chan, members, 0)
    }

    /// [`from_members`](Self::from_members) under an explicit context id
    /// (used by [`crate::Mpi::split`]).
    pub fn with_context(chan: Arc<Channel>, members: Option<&[NodeId]>, ctx: u16) -> Self {
        let mut members = members
            .map(|m| m.to_vec())
            .unwrap_or_else(|| chan.peers().to_vec());
        members.sort_unstable();
        members.dedup();
        let rank = members
            .iter()
            .position(|&n| n == chan.me())
            .expect("this node is a communicator member");
        Comm {
            chan,
            members,
            rank,
            ctx,
        }
    }

    /// This communicator's context id.
    pub fn ctx(&self) -> u16 {
        self.ctx
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Node id of `rank`.
    pub fn node_of(&self, rank: usize) -> NodeId {
        self.members[rank]
    }

    /// Rank of node `id`.
    pub fn rank_of(&self, id: NodeId) -> usize {
        self.members
            .iter()
            .position(|&n| n == id)
            .unwrap_or_else(|| panic!("node {id} is not in this communicator"))
    }

    pub(crate) fn channel(&self) -> &Arc<Channel> {
        &self.chan
    }

    /// The channel this communicator runs over.
    pub fn channel_pub(&self) -> &Arc<Channel> {
        &self.chan
    }
}
