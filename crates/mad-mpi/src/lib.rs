//! # mad-mpi — MPICH/Madeleine II (Rust reproduction of paper §5.3.1)
//!
//! The paper integrates Madeleine II into MPICH as a new `ch_mad` ADI
//! device so MPI applications inherit the library's multi-protocol,
//! multi-adapter transfer selection. This crate reproduces that layering:
//! a compact MPI subset (communicators, tagged blocking point-to-point with
//! wildcards and an unexpected-message queue, and the usual collectives)
//! whose *entire* transport is Madeleine messages — one 8-byte envelope
//! packed `receive_EXPRESS` plus the payload packed `receive_CHEAPER`.
//!
//! ```no_run
//! use madeleine::{Config, Madeleine, Protocol};
//! use mad_mpi::Mpi;
//! use madsim_net::{NetKind, WorldBuilder};
//!
//! let mut b = WorldBuilder::new(4);
//! b.network("sci0", NetKind::Sci, &[0, 1, 2, 3]);
//! let world = b.build();
//! world.run(|env| {
//!     let mad = Madeleine::init(&env, &Config::one("mpi", "sci0", Protocol::Sisci));
//!     let mpi = Mpi::init(&mad, "mpi");
//!     if mpi.rank() == 0 {
//!         mpi.send(1, 42, b"hello");
//!     } else if mpi.rank() == 1 {
//!         let mut buf = [0u8; 5];
//!         let st = mpi.recv(Some(0), Some(42), &mut buf);
//!         assert_eq!(st.len, 5);
//!     }
//!     mpi.barrier();
//! });
//! ```
//!
//! [`baselines`] carries the analytic SCI-MPICH / ScaMPI models used as the
//! closed-source comparators of Fig. 6.

pub mod baselines;
pub mod collectives;
pub mod comm;
pub mod p2p;
pub mod request;

pub use collectives::{ReduceOp, Topology};
pub use comm::Comm;
pub use p2p::{Status, ANY_SOURCE, ANY_TAG};
pub use request::{waitall, Request};

use madeleine::Madeleine;
use std::sync::Arc;

/// An MPI world: communicator + point-to-point state over one channel.
/// Sub-communicators created with [`split`](Self::split) share the
/// channel-draining state (one progress engine per node per channel, as in
/// MPICH) but match messages only within their own context.
pub struct Mpi {
    comm: Comm,
    p2p: Arc<p2p::P2p>,
}

impl Mpi {
    /// Bring up MPI over the named Madeleine channel (collective across the
    /// channel's members).
    pub fn init(mad: &Madeleine, channel: &str) -> Arc<Mpi> {
        Arc::new(Mpi {
            comm: Comm::world(Arc::clone(mad.channel(channel))),
            p2p: Arc::new(p2p::P2p::new()),
        })
    }

    /// Bring up MPI over an arbitrary channel object and member subset —
    /// e.g. a `mad-gateway` virtual channel whose end nodes form the MPI
    /// world while its gateways only forward.
    pub fn init_over(
        chan: std::sync::Arc<madeleine::Channel>,
        members: Option<&[madsim_net::NodeId]>,
    ) -> Arc<Mpi> {
        Arc::new(Mpi {
            comm: Comm::from_members(chan, members),
            p2p: Arc::new(p2p::P2p::new()),
        })
    }

    /// Split this communicator by color (MPI_Comm_split with key = rank):
    /// collective over *this* communicator; every member receives the
    /// sub-communicator of its color. Context ids are derived
    /// deterministically: at most 15 distinct colors per split and a
    /// nesting depth of 4 splits.
    pub fn split(&self, color: u32) -> Arc<Mpi> {
        // Agree on everyone's color.
        let mine = color.to_le_bytes();
        let all = collectives::allgather(&self.comm, &self.p2p, &mine);
        let colors: Vec<u32> = all
            .iter()
            .map(|b| u32::from_le_bytes(b[..4].try_into().expect("4 bytes")))
            .collect();
        let mut distinct: Vec<u32> = colors.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(
            distinct.len() <= 15,
            "at most 15 distinct colors per split (got {})",
            distinct.len()
        );
        let parent_ctx = self.comm.ctx();
        assert!(
            parent_ctx < 0x1000,
            "communicator nesting too deep for the context-id scheme"
        );
        let idx = distinct
            .iter()
            .position(|&c| c == color)
            .expect("own color present") as u16;
        let ctx = (parent_ctx << 4) | (idx + 1);
        let members: Vec<madsim_net::NodeId> = colors
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == color)
            .map(|(r, _)| self.comm.node_of(r))
            .collect();
        Arc::new(Mpi {
            comm: Comm::with_context(Arc::clone(self.comm.channel_pub()), Some(&members), ctx),
            p2p: Arc::clone(&self.p2p),
        })
    }

    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    pub fn size(&self) -> usize {
        self.comm.size()
    }

    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    /// Blocking standard-mode send.
    pub fn send(&self, dst_rank: usize, tag: i32, data: &[u8]) {
        self.p2p.send(&self.comm, dst_rank, tag, data);
    }

    /// Blocking receive; `None` selectors are MPI wildcards.
    pub fn recv(&self, src: Option<usize>, tag: Option<i32>, buf: &mut [u8]) -> Status {
        self.p2p.recv(&self.comm, src, tag, buf)
    }

    /// Nonblocking receive: post now, complete via
    /// [`Request::test`]/[`Request::wait`] or [`Mpi::waitall`].
    pub fn irecv<'a>(
        &self,
        src: Option<usize>,
        tag: Option<i32>,
        buf: &'a mut [u8],
    ) -> Request<'a> {
        Request::recv(src, tag, buf)
    }

    /// Nonblocking send: posts the message to the channel's progress
    /// engine and returns immediately, whatever the size or protocol —
    /// including BIP's long-message rendezvous, which completes inside a
    /// later [`test`](Self::test)/[`wait`](Self::wait) tick while the
    /// transfer overlaps local compute (see [`request`] module docs).
    pub fn isend(&self, dst_rank: usize, tag: i32, data: &[u8]) -> Request<'static> {
        let op = self.p2p.post_send(&self.comm, dst_rank, tag, data);
        Request::send_op(op, dst_rank, tag, data.len())
    }

    /// Nonblocking progress on a request.
    pub fn test(&self, req: &mut Request<'_>) -> Option<Status> {
        req.test(&self.comm, &self.p2p)
    }

    /// Block until a request completes.
    pub fn wait(&self, req: Request<'_>) -> Status {
        req.wait(&self.comm, &self.p2p)
    }

    /// Block until every request completes; statuses in request order.
    pub fn waitall(&self, reqs: Vec<Request<'_>>) -> Vec<Status> {
        request::waitall(&self.comm, &self.p2p, reqs)
    }

    /// Deadlock-safe pairwise exchange.
    pub fn sendrecv(
        &self,
        dst_rank: usize,
        send_tag: i32,
        data: &[u8],
        src: Option<usize>,
        recv_tag: Option<i32>,
        buf: &mut [u8],
    ) -> Status {
        self.p2p
            .sendrecv(&self.comm, dst_rank, send_tag, data, src, recv_tag, buf)
    }

    /// Nonblocking probe for a matching message (MPI_Iprobe).
    pub fn iprobe(&self, src: Option<usize>, tag: Option<i32>) -> Option<Status> {
        self.p2p.iprobe(&self.comm, src, tag)
    }

    /// Blocking probe (MPI_Probe): learn a pending message's envelope —
    /// typically its length, to size the receive buffer — without
    /// receiving it.
    pub fn probe(&self, src: Option<usize>, tag: Option<i32>) -> Status {
        self.p2p.probe(&self.comm, src, tag)
    }

    pub fn barrier(&self) {
        collectives::barrier(&self.comm, &self.p2p);
    }

    pub fn bcast(&self, root: usize, buf: &mut [u8]) {
        collectives::bcast(&self.comm, &self.p2p, root, buf);
    }

    pub fn reduce(&self, root: usize, op: ReduceOp, data: &[f64]) -> Option<Vec<f64>> {
        collectives::reduce(&self.comm, &self.p2p, root, op, data)
    }

    pub fn allreduce(&self, op: ReduceOp, data: &[f64]) -> Vec<f64> {
        collectives::allreduce(&self.comm, &self.p2p, op, data)
    }

    pub fn gather(&self, root: usize, data: &[u8]) -> Option<Vec<Vec<u8>>> {
        collectives::gather(&self.comm, &self.p2p, root, data)
    }

    pub fn alltoall(&self, blocks: &[Vec<u8>]) -> Vec<Vec<u8>> {
        collectives::alltoall(&self.comm, &self.p2p, blocks)
    }

    pub fn scatter(&self, root: usize, blocks: Option<&[Vec<u8>]>) -> Vec<u8> {
        collectives::scatter(&self.comm, &self.p2p, root, blocks)
    }

    pub fn allgather(&self, data: &[u8]) -> Vec<Vec<u8>> {
        collectives::allgather(&self.comm, &self.p2p, data)
    }

    /// Inclusive prefix reduction.
    pub fn scan(&self, op: ReduceOp, data: &[f64]) -> Vec<f64> {
        collectives::scan(&self.comm, &self.p2p, op, data)
    }

    /// Topology-aware broadcast: leader tree across clusters (one gateway
    /// crossing per remote cluster), binomial tree inside each cluster,
    /// large payloads chunk-pipelined through the nonblocking engine.
    pub fn bcast_hier(&self, topo: &Topology, root: usize, buf: &mut [u8]) {
        collectives::bcast_hier(&self.comm, &self.p2p, topo, root, buf);
    }

    /// Topology-aware allreduce (see [`collectives::allreduce_hier`] for
    /// the exactness conditions under which it is bit-identical to the
    /// flat algorithm).
    pub fn allreduce_hier(&self, topo: &Topology, op: ReduceOp, data: &[f64]) -> Vec<f64> {
        collectives::allreduce_hier(&self.comm, &self.p2p, topo, op, data)
    }

    /// Topology-aware gather: cluster-local gathers, then one message per
    /// remote cluster to `root`.
    pub fn gather_hier(&self, topo: &Topology, root: usize, data: &[u8]) -> Option<Vec<Vec<u8>>> {
        collectives::gather_hier(&self.comm, &self.p2p, topo, root, data)
    }
}
