//! Analytic performance models of the closed comparator MPIs of Fig. 6.
//!
//! The paper compares MPICH/Madeleine II against two MPI implementations we
//! cannot build: **SCI-MPICH** (Worringen & Bemmerl, RWTH Aachen) and the
//! commercial **ScaMPI** (Scali). Both are represented here as calibrated
//! one-way-time models with the characteristics the paper reports:
//!
//! * both beat MPICH/Madeleine II on small-message latency ("latency does
//!   not compare favorably to direct implementations of MPI over SCI");
//! * both fall behind above 32 kB ("our chmad module provides the best
//!   results for messages of 32 kB and above"), because their large-message
//!   paths copy through intermediate buffers while `ch_mad` inherits
//!   Madeleine's dual-buffered zero-copy pipeline.
//!
//! See `DESIGN.md` §2 for the substitution rationale.

use madsim_net::perf::PerfCurve;

/// SCI-MPICH: very fast short-message path (direct segment write, ~5.5 µs),
/// eager protocol to 16 kB, then a rendezvous with intermediate copies that
/// caps large-message bandwidth near 47 MiB/s.
pub fn sci_mpich_curve() -> PerfCurve {
    PerfCurve::from_anchors(&[
        (4, 5.5),
        (256, 9.0),
        (1024, 17.0),
        (8192, 120.0),
        (16384, 225.0),
        // rendezvous + copy regime
        (32768, 660.0),
        (131072, 2640.0),
        (1 << 20, 21100.0),
    ])
}

/// ScaMPI: ~7 µs latency, smooth curve, asymptote near 64 MiB/s.
pub fn scampi_curve() -> PerfCurve {
    PerfCurve::from_anchors(&[
        (4, 7.0),
        (256, 11.0),
        (1024, 22.0),
        (8192, 130.0),
        (16384, 248.0),
        (32768, 477.0),
        (131072, 1940.0),
        (1 << 20, 15600.0),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baselines_have_low_latency() {
        assert!(sci_mpich_curve().time_for(4).as_micros_f64() < 6.0);
        assert!(scampi_curve().time_for(4).as_micros_f64() < 7.5);
    }

    #[test]
    fn baselines_cap_below_madeleine_for_large() {
        // Madeleine/SISCI delivers ~80 MiB/s at 1 MiB; the models must sit
        // clearly below so the Fig. 6 crossover at 32 kB reproduces.
        assert!(sci_mpich_curve().bandwidth_at(1 << 20) < 55.0);
        assert!(scampi_curve().bandwidth_at(1 << 20) < 70.0);
    }

    #[test]
    fn scampi_beats_sci_mpich_for_bulk() {
        assert!(scampi_curve().bandwidth_at(1 << 20) > sci_mpich_curve().bandwidth_at(1 << 20));
    }
}
