//! Nonblocking point-to-point: requests, test, wait.
//!
//! Receives are genuinely nonblocking: `irecv` posts a request that is
//! matched lazily — `test` makes progress by draining arrived messages
//! into the match (or the unexpected queue) without blocking; `wait`
//! blocks until matched.
//!
//! Sends complete locally on every Madeleine protocol except BIP's
//! long-message path, whose rendezvous blocks until the matching receive
//! posts — so over BIP, `isend` of ≥ 1 kB has `MPI_Ssend`-like timing (the
//! transfer happens inside the call). This mirrors the synchronous-send
//! behaviour real MPICH exhibits over rendezvous-only devices with no
//! asynchronous progress engine.

use crate::comm::Comm;
use crate::p2p::{P2p, Status};

/// A pending nonblocking operation.
pub struct Request<'a> {
    kind: Kind<'a>,
}

enum Kind<'a> {
    Recv {
        src: Option<usize>,
        tag: Option<i32>,
        buf: &'a mut [u8],
        done: Option<Status>,
    },
    /// Sends complete at creation (see module docs); the request is a
    /// completed placeholder carrying the send's status.
    SendDone(Status),
}

impl<'a> Request<'a> {
    pub(crate) fn recv(src: Option<usize>, tag: Option<i32>, buf: &'a mut [u8]) -> Self {
        Request {
            kind: Kind::Recv {
                src,
                tag,
                buf,
                done: None,
            },
        }
    }

    pub(crate) fn send_done(dst: usize, tag: i32, len: usize) -> Self {
        Request {
            kind: Kind::SendDone(Status {
                source: dst,
                tag,
                len,
            }),
        }
    }

    /// Completed status, if the request already finished.
    pub fn status(&self) -> Option<Status> {
        match &self.kind {
            Kind::Recv { done, .. } => *done,
            Kind::SendDone(st) => Some(*st),
        }
    }

    /// Nonblocking progress: attempt to complete this request. Arrived
    /// messages that do not match are drained into the unexpected queue.
    pub fn test(&mut self, comm: &Comm, p2p: &P2p) -> Option<Status> {
        match &mut self.kind {
            Kind::SendDone(st) => Some(*st),
            Kind::Recv {
                src,
                tag,
                buf,
                done,
            } => {
                if done.is_some() {
                    return *done;
                }
                let st = p2p.try_match(comm, *src, *tag, buf);
                *done = st;
                st
            }
        }
    }

    /// Block until complete.
    pub fn wait(mut self, comm: &Comm, p2p: &P2p) -> Status {
        loop {
            if let Some(st) = self.test(comm, p2p) {
                return st;
            }
            // Block until *something* arrives on the channel, then retry
            // the match (the arrival may be for another request and only
            // feed the unexpected queue).
            p2p.block_for_traffic(comm);
        }
    }
}

/// Wait for every request; statuses in request order.
pub fn waitall<'a>(comm: &Comm, p2p: &P2p, reqs: Vec<Request<'a>>) -> Vec<Status> {
    let mut reqs: Vec<Option<Request<'a>>> = reqs.into_iter().map(Some).collect();
    let mut out: Vec<Option<Status>> = vec![None; reqs.len()];
    loop {
        let mut pending = false;
        for (slot, st) in reqs.iter_mut().zip(out.iter_mut()) {
            if st.is_some() {
                continue;
            }
            let req = slot.as_mut().expect("unfinished requests are present");
            if let Some(s) = req.test(comm, p2p) {
                *st = Some(s);
                *slot = None;
            } else {
                pending = true;
            }
        }
        if !pending {
            return out.into_iter().map(|s| s.expect("all complete")).collect();
        }
        p2p.block_for_traffic(comm);
    }
}
