//! Nonblocking point-to-point: requests, test, wait.
//!
//! Both directions are genuinely nonblocking:
//!
//! * `irecv` posts a request that is matched lazily — `test` makes
//!   progress by draining arrived messages into the match (or the
//!   unexpected queue) without blocking; `wait` blocks until matched.
//! * `isend` posts the whole message to the channel's **progress engine**
//!   ([`madeleine::progress`]) and returns an op handle immediately,
//!   whatever the size and protocol. Frames that need a peer event —
//!   BIP's flow-control credits and its long-message rendezvous — park as
//!   op states (`CreditWait`, `RendezvousWait`) and ship when the event
//!   arrives during a later `test`/`wait`/`waitall` tick. When the CTS
//!   arrives, the transfer is anchored at the *posting* instant in
//!   virtual time: the simulated NIC moved the bytes while the host
//!   computed, which is precisely the compute/communication overlap a
//!   real asynchronous progress engine buys.
//!
//! Historical note: this layer once completed every send inside `isend`
//! itself, so over BIP an `isend` of ≥ 1 kB had `MPI_Ssend`-like timing —
//! the rendezvous blocked until the matching receive posted, like real
//! MPICH over a rendezvous-only device with no progress engine. The op
//! table removed that wart; the blocking [`crate::Mpi::send`] still has
//! rendezvous timing, as it should.
//!
//! `wait`/`waitall` drive the engine through the channel's
//! [`PollPolicy`](madeleine::PollPolicy): a spin policy polls for free, an
//! interrupt/adaptive policy that had to park charges its wakeup latency
//! to this rank's virtual clock (via
//! [`take_pending_wakeup_charge`](madeleine::polling::take_pending_wakeup_charge))
//! — previously these waits busy-spun without ever advancing virtual
//! time, making interrupt-mode timings indistinguishable from spinning.

use crate::comm::Comm;
use crate::p2p::{P2p, Status};
use madeleine::polling::take_pending_wakeup_charge;
use madeleine::OpId;
use madsim_net::time;

/// A pending nonblocking operation.
pub struct Request<'a> {
    kind: Kind<'a>,
}

enum Kind<'a> {
    Recv {
        src: Option<usize>,
        tag: Option<i32>,
        buf: &'a mut [u8],
        done: Option<Status>,
    },
    /// A posted send, owned by the channel's progress engine until the op
    /// retires.
    Send {
        op: OpId,
        dst: usize,
        tag: i32,
        len: usize,
        done: Option<Status>,
    },
}

impl<'a> Request<'a> {
    pub(crate) fn recv(src: Option<usize>, tag: Option<i32>, buf: &'a mut [u8]) -> Self {
        Request {
            kind: Kind::Recv {
                src,
                tag,
                buf,
                done: None,
            },
        }
    }

    pub(crate) fn send_op(op: OpId, dst: usize, tag: i32, len: usize) -> Self {
        Request {
            kind: Kind::Send {
                op,
                dst,
                tag,
                len,
                done: None,
            },
        }
    }

    /// Completed status, if the request already finished.
    pub fn status(&self) -> Option<Status> {
        match &self.kind {
            Kind::Recv { done, .. } | Kind::Send { done, .. } => *done,
        }
    }

    /// Nonblocking progress: attempt to complete this request. A receive
    /// drains arrived messages into the match (or the unexpected queue); a
    /// send ticks the channel's progress engine and consumes the op's
    /// result if it retired.
    ///
    /// # Panics
    /// Panics if a posted send fails terminally (dead peer, channel down)
    /// — the same contract as the blocking send path.
    pub fn test(&mut self, comm: &Comm, p2p: &P2p) -> Option<Status> {
        match &mut self.kind {
            Kind::Send {
                op,
                dst,
                tag,
                len,
                done,
            } => {
                if done.is_some() {
                    return *done;
                }
                match comm.channel().test_op(*op)? {
                    Ok(_) => {
                        let st = Status {
                            source: *dst,
                            tag: *tag,
                            len: *len,
                        };
                        *done = Some(st);
                        Some(st)
                    }
                    Err(e) => panic!("isend to rank {dst} failed: {e}"),
                }
            }
            Kind::Recv {
                src,
                tag,
                buf,
                done,
            } => {
                if done.is_some() {
                    return *done;
                }
                let st = p2p.try_match(comm, *src, *tag, buf);
                *done = st;
                st
            }
        }
    }

    /// Block until complete, driving the channel's progress engine under
    /// its poll policy (see module docs for the wakeup-charge accounting).
    pub fn wait(mut self, comm: &Comm, p2p: &P2p) -> Status {
        let policy = comm.channel().poll_policy();
        let st = policy.drive(|| self.test(comm, p2p));
        // If the policy parked, the wakeup latency counts from the
        // arrival/completion `test` just synchronized with.
        time::advance(take_pending_wakeup_charge());
        st
    }
}

/// Wait for every request; statuses in request order.
pub fn waitall<'a>(comm: &Comm, p2p: &P2p, reqs: Vec<Request<'a>>) -> Vec<Status> {
    let mut reqs: Vec<Option<Request<'a>>> = reqs.into_iter().map(Some).collect();
    let mut out: Vec<Option<Status>> = vec![None; reqs.len()];
    let policy = comm.channel().poll_policy();
    policy.drive(|| {
        let mut pending = false;
        for (slot, st) in reqs.iter_mut().zip(out.iter_mut()) {
            if st.is_some() {
                continue;
            }
            let req = slot.as_mut().expect("unfinished requests are present");
            if let Some(s) = req.test(comm, p2p) {
                *st = Some(s);
                *slot = None;
            } else {
                pending = true;
            }
        }
        (!pending).then_some(())
    });
    time::advance(take_pending_wakeup_charge());
    out.into_iter().map(|s| s.expect("all complete")).collect()
}
