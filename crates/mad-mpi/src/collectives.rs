//! Collective operations over the `ch_mad` device.
//!
//! Simple linear/binomial algorithms — enough to exercise the device with
//! realistic MPI workloads (the paper's port exposes the full MPICH
//! collective stack, which layers on the same point-to-point device).
//!
//! The `*_hier` variants are **topology-aware** (paper §6: clusters of
//! clusters joined by gateways). Given a [`Topology`] mapping ranks to
//! clusters, they run a two-level schedule: one binomial tree over the
//! per-cluster *leaders* — so the payload crosses a gateway exactly once
//! per remote cluster — and one binomial tree inside each cluster, which
//! never leaves the leaf network. The flat algorithms route every tree
//! edge independently, so on a two-cluster world roughly half the edges
//! of `bcast` re-cross the gateway; the hierarchical schedule pays the
//! slow inter-cluster hop `clusters - 1` times instead. Large payloads
//! are cut into chunks and pipelined through the nonblocking engine
//! ([`crate::request`]), so a tree node forwards chunk *k* while chunk
//! *k+1* is still in flight from its parent — and each in-flight chunk is
//! itself striped across the channel's rails by the Madeleine layer.

use crate::comm::Comm;
use crate::p2p::P2p;
use crate::request::{waitall, Request};

/// Internal tag space (user tags must be non-negative, like in MPI).
const TAG_BARRIER: i32 = -1;
const TAG_BCAST: i32 = -2;
const TAG_REDUCE: i32 = -3;
const TAG_GATHER: i32 = -4;
const TAG_ALLTOALL: i32 = -5;
const TAG_SCATTER: i32 = -6;
const TAG_ALLGATHER: i32 = -7;
const TAG_SCAN: i32 = -8;
const TAG_HBCAST: i32 = -9;
const TAG_HREDUCE: i32 = -10;
const TAG_HGATHER: i32 = -11;
/// Inter-cluster (leader-to-leader) stage of every hierarchical collective.
const TAG_HLEADER: i32 = -12;

/// Payloads at or above this size are pipelined in chunks through the
/// nonblocking engine instead of moving as one message per tree edge.
const PIPELINE_THRESHOLD: usize = 64 << 10;
/// Chunk size of the pipeline (two chunks in flight already overlap the
/// store-and-forward latency of a tree level).
const PIPELINE_CHUNK: usize = 32 << 10;

/// Reduction operators over `f64`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Max,
    Min,
}

impl ReduceOp {
    pub(crate) fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }
}

/// Block until every rank has entered (linear fan-in to rank 0, fan-out).
pub fn barrier(comm: &Comm, p2p: &P2p) {
    let mut token = [0u8; 1];
    if comm.rank() == 0 {
        for r in 1..comm.size() {
            p2p.recv(comm, Some(r), Some(TAG_BARRIER), &mut token);
        }
        for r in 1..comm.size() {
            p2p.send(comm, r, TAG_BARRIER, &token);
        }
    } else {
        p2p.send(comm, 0, TAG_BARRIER, &token);
        p2p.recv(comm, Some(0), Some(TAG_BARRIER), &mut token);
    }
}

/// Broadcast `buf` from `root` to every rank (MPICH's binomial tree).
pub fn bcast(comm: &Comm, p2p: &P2p, root: usize, buf: &mut [u8]) {
    let size = comm.size();
    let me = (comm.rank() + size - root) % size; // virtual rank, root = 0
                                                 // Receive from the parent (the virtual rank with my lowest set bit
                                                 // cleared); the root falls through with mask = 2^ceil(log2 size).
    let mut mask = 1usize;
    while mask < size {
        if me & mask != 0 {
            let parent = (me ^ mask) + root;
            p2p.recv(comm, Some(parent % size), Some(TAG_BCAST), buf);
            break;
        }
        mask <<= 1;
    }
    // Forward to children: every bit position below where we received.
    mask >>= 1;
    while mask > 0 {
        let child = me | mask;
        if child != me && child < size {
            p2p.send(comm, (child + root) % size, TAG_BCAST, buf);
        }
        mask >>= 1;
    }
}

/// Element-wise reduction of `data` to `root`; returns the result there.
pub fn reduce(comm: &Comm, p2p: &P2p, root: usize, op: ReduceOp, data: &[f64]) -> Option<Vec<f64>> {
    let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
    if comm.rank() == root {
        let mut acc = data.to_vec();
        let mut buf = vec![0u8; bytes.len()];
        for r in 0..comm.size() {
            if r == root {
                continue;
            }
            p2p.recv(comm, Some(r), Some(TAG_REDUCE), &mut buf);
            for (i, chunk) in buf.chunks_exact(8).enumerate() {
                let v = f64::from_le_bytes(chunk.try_into().expect("8 bytes"));
                acc[i] = op.apply(acc[i], v);
            }
        }
        Some(acc)
    } else {
        p2p.send(comm, root, TAG_REDUCE, &bytes);
        None
    }
}

/// Reduction whose result lands on every rank.
pub fn allreduce(comm: &Comm, p2p: &P2p, op: ReduceOp, data: &[f64]) -> Vec<f64> {
    let reduced = reduce(comm, p2p, 0, op, data);
    let mut bytes = match reduced {
        Some(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect::<Vec<u8>>(),
        None => vec![0u8; data.len() * 8],
    };
    bcast(comm, p2p, 0, &mut bytes);
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect()
}

/// Gather every rank's block at `root` (rank order).
pub fn gather(comm: &Comm, p2p: &P2p, root: usize, data: &[u8]) -> Option<Vec<Vec<u8>>> {
    if comm.rank() == root {
        let mut out = vec![Vec::new(); comm.size()];
        out[root] = data.to_vec();
        for (r, slot) in out.iter_mut().enumerate() {
            if r == root {
                continue;
            }
            let mut buf = vec![0u8; 1 << 22];
            let st = p2p.recv(comm, Some(r), Some(TAG_GATHER), &mut buf);
            buf.truncate(st.len);
            *slot = buf;
        }
        Some(out)
    } else {
        p2p.send(comm, root, TAG_GATHER, data);
        None
    }
}

/// Personalized all-to-all exchange: `blocks[r]` goes to rank `r`; returns
/// the blocks received, indexed by source rank.
pub fn alltoall(comm: &Comm, p2p: &P2p, blocks: &[Vec<u8>]) -> Vec<Vec<u8>> {
    assert_eq!(blocks.len(), comm.size(), "one block per rank");
    let me = comm.rank();
    let size = comm.size();
    let mut out = vec![Vec::new(); size];
    out[me] = blocks[me].clone();
    // Pairwise exchange schedule (XOR pairing rounds for power-of-two
    // sizes; rank-ordered exchange otherwise).
    for round in 1..size.next_power_of_two() {
        let peer = me ^ round;
        if peer >= size {
            continue;
        }
        let mut buf = vec![0u8; 1 << 22];
        let st = p2p.sendrecv(
            comm,
            peer,
            TAG_ALLTOALL,
            &blocks[peer],
            Some(peer),
            Some(TAG_ALLTOALL),
            &mut buf,
        );
        buf.truncate(st.len);
        out[peer] = buf;
    }
    out
}

/// Scatter `blocks[r]` (present at `root`) to every rank `r`; returns this
/// rank's block.
pub fn scatter(comm: &Comm, p2p: &P2p, root: usize, blocks: Option<&[Vec<u8>]>) -> Vec<u8> {
    if comm.rank() == root {
        let blocks = blocks.expect("root provides the blocks");
        assert_eq!(blocks.len(), comm.size(), "one block per rank");
        for (r, b) in blocks.iter().enumerate() {
            if r != root {
                p2p.send(comm, r, TAG_SCATTER, b);
            }
        }
        blocks[root].clone()
    } else {
        let mut buf = vec![0u8; 1 << 22];
        let st = p2p.recv(comm, Some(root), Some(TAG_SCATTER), &mut buf);
        buf.truncate(st.len);
        buf
    }
}

/// Every rank contributes a block; every rank receives all blocks, indexed
/// by source rank (ring algorithm).
pub fn allgather(comm: &Comm, p2p: &P2p, data: &[u8]) -> Vec<Vec<u8>> {
    let size = comm.size();
    let me = comm.rank();
    let mut out = vec![Vec::new(); size];
    out[me] = data.to_vec();
    if size == 1 {
        return out;
    }
    let right = (me + 1) % size;
    let left = (me + size - 1) % size;
    // Ring: in step s, pass along the block originally from (me - s).
    for s in 0..size - 1 {
        let send_idx = (me + size - s) % size;
        let recv_idx = (me + size - s - 1) % size;
        let mut buf = vec![0u8; 1 << 22];
        let st = p2p.sendrecv(
            comm,
            right,
            TAG_ALLGATHER,
            &out[send_idx],
            Some(left),
            Some(TAG_ALLGATHER),
            &mut buf,
        );
        buf.truncate(st.len);
        out[recv_idx] = buf;
    }
    out
}

/// Rank-to-cluster map driving the topology-aware collectives.
///
/// Rank `r` lives in cluster `cluster_of[r]`. Cluster ids must be dense
/// (every id in `0..clusters()` has at least one member). The map is a
/// piece of shared configuration: every rank constructs the same
/// `Topology`, so leader election and tree shapes agree without any wire
/// traffic — the same symmetric-function discipline the Madeleine layer
/// uses for transfer-method selection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topology {
    cluster_of: Vec<usize>,
}

impl Topology {
    /// Build from an explicit rank → cluster map.
    ///
    /// # Panics
    /// Panics if the map is empty or a cluster id in `0..max` is unused.
    pub fn new(cluster_of: Vec<usize>) -> Topology {
        assert!(
            !cluster_of.is_empty(),
            "topology must cover at least one rank"
        );
        let clusters = cluster_of.iter().max().expect("non-empty") + 1;
        for c in 0..clusters {
            assert!(
                cluster_of.contains(&c),
                "cluster {c} has no members (ids must be dense)"
            );
        }
        Topology { cluster_of }
    }

    /// Single-cluster topology: the hierarchical collectives degenerate to
    /// their flat binomial forms.
    pub fn flat(size: usize) -> Topology {
        Topology::new(vec![0; size])
    }

    /// Two clusters split at `boundary`: ranks `0..boundary` form cluster
    /// 0, ranks `boundary..size` cluster 1 — the canonical bridged world.
    pub fn split_at(size: usize, boundary: usize) -> Topology {
        assert!(
            boundary > 0 && boundary < size,
            "both clusters need members"
        );
        Topology::new((0..size).map(|r| usize::from(r >= boundary)).collect())
    }

    /// Number of clusters.
    pub fn clusters(&self) -> usize {
        self.cluster_of.iter().max().expect("non-empty") + 1
    }

    /// Number of ranks covered by the map.
    pub fn size(&self) -> usize {
        self.cluster_of.len()
    }

    /// Cluster of `rank`.
    pub fn cluster(&self, rank: usize) -> usize {
        self.cluster_of[rank]
    }

    /// Ranks of `cluster`, ascending.
    pub fn members_of(&self, cluster: usize) -> Vec<usize> {
        (0..self.size())
            .filter(|&r| self.cluster_of[r] == cluster)
            .collect()
    }

    /// One leader per cluster, indexed by cluster id: `root` in its own
    /// cluster (so the root never relays through another rank), the
    /// lowest rank elsewhere.
    fn leaders(&self, root: usize) -> Vec<usize> {
        (0..self.clusters())
            .map(|c| {
                if c == self.cluster(root) {
                    root
                } else {
                    *self.members_of(c).first().expect("dense cluster ids")
                }
            })
            .collect()
    }

    fn check(&self, comm_size: usize) {
        assert_eq!(
            self.size(),
            comm_size,
            "topology covers {} ranks but the communicator has {comm_size}",
            self.size()
        );
    }
}

/// Chunk spans of a payload: one span below the pipelining threshold,
/// fixed-size chunks above it.
fn chunk_spans(len: usize) -> Vec<(usize, usize)> {
    if len < PIPELINE_THRESHOLD {
        return vec![(0, len)];
    }
    (0..len)
        .step_by(PIPELINE_CHUNK)
        .map(|off| (off, PIPELINE_CHUNK.min(len - off)))
        .collect()
}

/// Binomial-tree plan for virtual rank `vme` of `n`: the virtual parent
/// (none at the root) and virtual children, in send order.
fn tree_plan(n: usize, vme: usize) -> (Option<usize>, Vec<usize>) {
    let mut mask = 1usize;
    let mut parent = None;
    while mask < n {
        if vme & mask != 0 {
            parent = Some(vme ^ mask);
            break;
        }
        mask <<= 1;
    }
    let mut children = Vec::new();
    let mut m = mask >> 1;
    while m > 0 {
        let child = vme | m;
        if child != vme && child < n {
            children.push(child);
        }
        m >>= 1;
    }
    (parent, children)
}

/// Pipelined binomial bcast over the ranks of `ranks` (no-op for ranks
/// outside the slice), rooted at position `root_pos`. Each chunk is
/// forwarded to the children as soon as it lands, through the nonblocking
/// engine, so chunks stream down the tree instead of store-and-forwarding
/// whole payloads level by level.
fn tree_bcast(comm: &Comm, p2p: &P2p, ranks: &[usize], root_pos: usize, tag: i32, buf: &mut [u8]) {
    let n = ranks.len();
    if n <= 1 {
        return;
    }
    let Some(me_pos) = ranks.iter().position(|&r| r == comm.rank()) else {
        return;
    };
    let vme = (me_pos + n - root_pos) % n;
    let (vparent, vchildren) = tree_plan(n, vme);
    let to_rank = |v: usize| ranks[(v + root_pos) % n];
    let spans = chunk_spans(buf.len());
    let mut reqs: Vec<Request<'_>> = Vec::new();
    for &(off, len) in &spans {
        if let Some(p) = vparent {
            p2p.recv(comm, Some(to_rank(p)), Some(tag), &mut buf[off..off + len]);
        }
        for &c in &vchildren {
            let dst = to_rank(c);
            let op = p2p.post_send(comm, dst, tag, &buf[off..off + len]);
            reqs.push(Request::send_op(op, dst, tag, len));
        }
    }
    waitall(comm, p2p, reqs);
}

/// Binomial fan-in reduction over the ranks of `ranks`, rooted at position
/// `root_pos`; returns the reduced vector at the root, `None` elsewhere
/// (and on ranks outside the slice).
fn tree_reduce(
    comm: &Comm,
    p2p: &P2p,
    ranks: &[usize],
    root_pos: usize,
    tag: i32,
    op: ReduceOp,
    data: &[f64],
) -> Option<Vec<f64>> {
    let n = ranks.len();
    let me_pos = ranks.iter().position(|&r| r == comm.rank())?;
    let vme = (me_pos + n - root_pos) % n;
    let to_rank = |v: usize| ranks[(v + root_pos) % n];
    let mut acc = data.to_vec();
    let mut buf = vec![0u8; data.len() * 8];
    let mut mask = 1usize;
    while mask < n {
        if vme & mask != 0 {
            let bytes: Vec<u8> = acc.iter().flat_map(|v| v.to_le_bytes()).collect();
            p2p.send(comm, to_rank(vme ^ mask), tag, &bytes);
            return None;
        }
        let child = vme | mask;
        if child < n {
            p2p.recv(comm, Some(to_rank(child)), Some(tag), &mut buf);
            for (i, chunk) in buf.chunks_exact(8).enumerate() {
                let v = f64::from_le_bytes(chunk.try_into().expect("8 bytes"));
                acc[i] = op.apply(acc[i], v);
            }
        }
        mask <<= 1;
    }
    Some(acc)
}

/// Topology-aware broadcast: one binomial tree over the cluster leaders
/// (each edge crosses a gateway exactly once), then a binomial tree inside
/// each cluster that never leaves the leaf network.
pub fn bcast_hier(comm: &Comm, p2p: &P2p, topo: &Topology, root: usize, buf: &mut [u8]) {
    topo.check(comm.size());
    let me = comm.rank();
    let leaders = topo.leaders(root);
    let root_pos = topo.cluster(root);
    tree_bcast(comm, p2p, &leaders, root_pos, TAG_HLEADER, buf);
    let members = topo.members_of(topo.cluster(me));
    let leader = leaders[topo.cluster(me)];
    let leader_pos = members
        .iter()
        .position(|&r| r == leader)
        .expect("leader is a cluster member");
    tree_bcast(comm, p2p, &members, leader_pos, TAG_HBCAST, buf);
}

/// Topology-aware allreduce: binomial fan-in to each cluster leader, an
/// allreduce over the leader set (one gateway crossing per edge), then a
/// binomial bcast back down inside each cluster. Exact (bit-identical to
/// the flat algorithm) whenever the operator is order-insensitive on the
/// inputs — Max/Min always, Sum when the values and partial sums are
/// exactly representable (e.g. integer-valued `f64` below 2^53).
pub fn allreduce_hier(
    comm: &Comm,
    p2p: &P2p,
    topo: &Topology,
    op: ReduceOp,
    data: &[f64],
) -> Vec<f64> {
    topo.check(comm.size());
    let me = comm.rank();
    let leaders = topo.leaders(0);
    let my_cluster = topo.cluster(me);
    let members = topo.members_of(my_cluster);
    let leader = leaders[my_cluster];
    let leader_pos = members
        .iter()
        .position(|&r| r == leader)
        .expect("leader is a cluster member");
    let reduced = tree_reduce(comm, p2p, &members, leader_pos, TAG_HREDUCE, op, data);
    let mut bytes = match reduced {
        Some(acc) => {
            // This rank is its cluster's leader: allreduce over the leader
            // set (fan-in to the root cluster's leader, bcast back out).
            let inter = tree_reduce(comm, p2p, &leaders, 0, TAG_HLEADER, op, &acc);
            let mut b = match inter {
                Some(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect::<Vec<u8>>(),
                None => vec![0u8; data.len() * 8],
            };
            tree_bcast(comm, p2p, &leaders, 0, TAG_HLEADER, &mut b);
            b
        }
        None => vec![0u8; data.len() * 8],
    };
    tree_bcast(comm, p2p, &members, leader_pos, TAG_HBCAST, &mut bytes);
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect()
}

/// Topology-aware gather: every cluster gathers at its leader, then each
/// remote leader ships its cluster's blocks to `root` as **one** message —
/// one gateway crossing per remote cluster, versus one per remote rank in
/// the flat algorithm. Blocks are length-prefixed inside the leader
/// message so ragged contributions survive the concatenation.
pub fn gather_hier(
    comm: &Comm,
    p2p: &P2p,
    topo: &Topology,
    root: usize,
    data: &[u8],
) -> Option<Vec<Vec<u8>>> {
    topo.check(comm.size());
    let me = comm.rank();
    let leaders = topo.leaders(root);
    let my_cluster = topo.cluster(me);
    let members = topo.members_of(my_cluster);
    let leader = leaders[my_cluster];
    if me != leader {
        p2p.send(comm, leader, TAG_HGATHER, data);
        return None;
    }
    // Leader: collect the cluster's blocks in member order.
    let mut blocks: Vec<Vec<u8>> = Vec::with_capacity(members.len());
    for &r in &members {
        if r == me {
            blocks.push(data.to_vec());
        } else {
            let mut buf = vec![0u8; 1 << 22];
            let st = p2p.recv(comm, Some(r), Some(TAG_HGATHER), &mut buf);
            buf.truncate(st.len);
            blocks.push(buf);
        }
    }
    if me != root {
        let mut packed = Vec::new();
        for b in &blocks {
            packed.extend_from_slice(&(b.len() as u32).to_le_bytes());
            packed.extend_from_slice(b);
        }
        p2p.send(comm, root, TAG_HLEADER, &packed);
        return None;
    }
    // Root: place the local cluster, then unpack one message per remote
    // leader into its cluster's rank slots.
    let mut out = vec![Vec::new(); comm.size()];
    for (b, &r) in blocks.into_iter().zip(&members) {
        out[r] = b;
    }
    for (c, &l) in leaders.iter().enumerate() {
        if c == my_cluster {
            continue;
        }
        let mut buf = vec![0u8; 1 << 22];
        let st = p2p.recv(comm, Some(l), Some(TAG_HLEADER), &mut buf);
        buf.truncate(st.len);
        let mut at = 0usize;
        for &r in &topo.members_of(c) {
            let len = u32::from_le_bytes(buf[at..at + 4].try_into().expect("4 bytes")) as usize;
            at += 4;
            out[r] = buf[at..at + len].to_vec();
            at += len;
        }
        assert_eq!(at, st.len, "leader message fully consumed");
    }
    Some(out)
}

/// Inclusive prefix reduction: rank r receives op(data_0, ..., data_r),
/// element-wise (linear chain).
pub fn scan(comm: &Comm, p2p: &P2p, op: ReduceOp, data: &[f64]) -> Vec<f64> {
    let me = comm.rank();
    let mut acc = data.to_vec();
    if me > 0 {
        let mut buf = vec![0u8; data.len() * 8];
        p2p.recv(comm, Some(me - 1), Some(TAG_SCAN), &mut buf);
        for (i, chunk) in buf.chunks_exact(8).enumerate() {
            let v = f64::from_le_bytes(chunk.try_into().expect("8 bytes"));
            acc[i] = op.apply(v, acc[i]);
        }
    }
    if me + 1 < comm.size() {
        let bytes: Vec<u8> = acc.iter().flat_map(|v| v.to_le_bytes()).collect();
        p2p.send(comm, me + 1, TAG_SCAN, &bytes);
    }
    acc
}
