//! Collective operations over the `ch_mad` device.
//!
//! Simple linear/binomial algorithms — enough to exercise the device with
//! realistic MPI workloads (the paper's port exposes the full MPICH
//! collective stack, which layers on the same point-to-point device).

use crate::comm::Comm;
use crate::p2p::P2p;

/// Internal tag space (user tags must be non-negative, like in MPI).
const TAG_BARRIER: i32 = -1;
const TAG_BCAST: i32 = -2;
const TAG_REDUCE: i32 = -3;
const TAG_GATHER: i32 = -4;
const TAG_ALLTOALL: i32 = -5;
const TAG_SCATTER: i32 = -6;
const TAG_ALLGATHER: i32 = -7;
const TAG_SCAN: i32 = -8;

/// Reduction operators over `f64`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Max,
    Min,
}

impl ReduceOp {
    pub(crate) fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }
}

/// Block until every rank has entered (linear fan-in to rank 0, fan-out).
pub fn barrier(comm: &Comm, p2p: &P2p) {
    let mut token = [0u8; 1];
    if comm.rank() == 0 {
        for r in 1..comm.size() {
            p2p.recv(comm, Some(r), Some(TAG_BARRIER), &mut token);
        }
        for r in 1..comm.size() {
            p2p.send(comm, r, TAG_BARRIER, &token);
        }
    } else {
        p2p.send(comm, 0, TAG_BARRIER, &token);
        p2p.recv(comm, Some(0), Some(TAG_BARRIER), &mut token);
    }
}

/// Broadcast `buf` from `root` to every rank (MPICH's binomial tree).
pub fn bcast(comm: &Comm, p2p: &P2p, root: usize, buf: &mut [u8]) {
    let size = comm.size();
    let me = (comm.rank() + size - root) % size; // virtual rank, root = 0
                                                 // Receive from the parent (the virtual rank with my lowest set bit
                                                 // cleared); the root falls through with mask = 2^ceil(log2 size).
    let mut mask = 1usize;
    while mask < size {
        if me & mask != 0 {
            let parent = (me ^ mask) + root;
            p2p.recv(comm, Some(parent % size), Some(TAG_BCAST), buf);
            break;
        }
        mask <<= 1;
    }
    // Forward to children: every bit position below where we received.
    mask >>= 1;
    while mask > 0 {
        let child = me | mask;
        if child != me && child < size {
            p2p.send(comm, (child + root) % size, TAG_BCAST, buf);
        }
        mask >>= 1;
    }
}

/// Element-wise reduction of `data` to `root`; returns the result there.
pub fn reduce(comm: &Comm, p2p: &P2p, root: usize, op: ReduceOp, data: &[f64]) -> Option<Vec<f64>> {
    let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
    if comm.rank() == root {
        let mut acc = data.to_vec();
        let mut buf = vec![0u8; bytes.len()];
        for r in 0..comm.size() {
            if r == root {
                continue;
            }
            p2p.recv(comm, Some(r), Some(TAG_REDUCE), &mut buf);
            for (i, chunk) in buf.chunks_exact(8).enumerate() {
                let v = f64::from_le_bytes(chunk.try_into().expect("8 bytes"));
                acc[i] = op.apply(acc[i], v);
            }
        }
        Some(acc)
    } else {
        p2p.send(comm, root, TAG_REDUCE, &bytes);
        None
    }
}

/// Reduction whose result lands on every rank.
pub fn allreduce(comm: &Comm, p2p: &P2p, op: ReduceOp, data: &[f64]) -> Vec<f64> {
    let reduced = reduce(comm, p2p, 0, op, data);
    let mut bytes = match reduced {
        Some(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect::<Vec<u8>>(),
        None => vec![0u8; data.len() * 8],
    };
    bcast(comm, p2p, 0, &mut bytes);
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect()
}

/// Gather every rank's block at `root` (rank order).
pub fn gather(comm: &Comm, p2p: &P2p, root: usize, data: &[u8]) -> Option<Vec<Vec<u8>>> {
    if comm.rank() == root {
        let mut out = vec![Vec::new(); comm.size()];
        out[root] = data.to_vec();
        for (r, slot) in out.iter_mut().enumerate() {
            if r == root {
                continue;
            }
            let mut buf = vec![0u8; 1 << 22];
            let st = p2p.recv(comm, Some(r), Some(TAG_GATHER), &mut buf);
            buf.truncate(st.len);
            *slot = buf;
        }
        Some(out)
    } else {
        p2p.send(comm, root, TAG_GATHER, data);
        None
    }
}

/// Personalized all-to-all exchange: `blocks[r]` goes to rank `r`; returns
/// the blocks received, indexed by source rank.
pub fn alltoall(comm: &Comm, p2p: &P2p, blocks: &[Vec<u8>]) -> Vec<Vec<u8>> {
    assert_eq!(blocks.len(), comm.size(), "one block per rank");
    let me = comm.rank();
    let size = comm.size();
    let mut out = vec![Vec::new(); size];
    out[me] = blocks[me].clone();
    // Pairwise exchange schedule (XOR pairing rounds for power-of-two
    // sizes; rank-ordered exchange otherwise).
    for round in 1..size.next_power_of_two() {
        let peer = me ^ round;
        if peer >= size {
            continue;
        }
        let mut buf = vec![0u8; 1 << 22];
        let st = p2p.sendrecv(
            comm,
            peer,
            TAG_ALLTOALL,
            &blocks[peer],
            Some(peer),
            Some(TAG_ALLTOALL),
            &mut buf,
        );
        buf.truncate(st.len);
        out[peer] = buf;
    }
    out
}

/// Scatter `blocks[r]` (present at `root`) to every rank `r`; returns this
/// rank's block.
pub fn scatter(comm: &Comm, p2p: &P2p, root: usize, blocks: Option<&[Vec<u8>]>) -> Vec<u8> {
    if comm.rank() == root {
        let blocks = blocks.expect("root provides the blocks");
        assert_eq!(blocks.len(), comm.size(), "one block per rank");
        for (r, b) in blocks.iter().enumerate() {
            if r != root {
                p2p.send(comm, r, TAG_SCATTER, b);
            }
        }
        blocks[root].clone()
    } else {
        let mut buf = vec![0u8; 1 << 22];
        let st = p2p.recv(comm, Some(root), Some(TAG_SCATTER), &mut buf);
        buf.truncate(st.len);
        buf
    }
}

/// Every rank contributes a block; every rank receives all blocks, indexed
/// by source rank (ring algorithm).
pub fn allgather(comm: &Comm, p2p: &P2p, data: &[u8]) -> Vec<Vec<u8>> {
    let size = comm.size();
    let me = comm.rank();
    let mut out = vec![Vec::new(); size];
    out[me] = data.to_vec();
    if size == 1 {
        return out;
    }
    let right = (me + 1) % size;
    let left = (me + size - 1) % size;
    // Ring: in step s, pass along the block originally from (me - s).
    for s in 0..size - 1 {
        let send_idx = (me + size - s) % size;
        let recv_idx = (me + size - s - 1) % size;
        let mut buf = vec![0u8; 1 << 22];
        let st = p2p.sendrecv(
            comm,
            right,
            TAG_ALLGATHER,
            &out[send_idx],
            Some(left),
            Some(TAG_ALLGATHER),
            &mut buf,
        );
        buf.truncate(st.len);
        out[recv_idx] = buf;
    }
    out
}

/// Inclusive prefix reduction: rank r receives op(data_0, ..., data_r),
/// element-wise (linear chain).
pub fn scan(comm: &Comm, p2p: &P2p, op: ReduceOp, data: &[f64]) -> Vec<f64> {
    let me = comm.rank();
    let mut acc = data.to_vec();
    if me > 0 {
        let mut buf = vec![0u8; data.len() * 8];
        p2p.recv(comm, Some(me - 1), Some(TAG_SCAN), &mut buf);
        for (i, chunk) in buf.chunks_exact(8).enumerate() {
            let v = f64::from_le_bytes(chunk.try_into().expect("8 bytes"));
            acc[i] = op.apply(v, acc[i]);
        }
    }
    if me + 1 < comm.size() {
        let bytes: Vec<u8> = acc.iter().flat_map(|v| v.to_le_bytes()).collect();
        p2p.send(comm, me + 1, TAG_SCAN, &bytes);
    }
    acc
}
