//! MPI-over-Madeleine integration tests (the `ch_mad` device, §5.3.1).

use mad_mpi::{Mpi, ReduceOp};
use madeleine::{Config, Madeleine, Protocol};
use madsim_net::{NetKind, WorldBuilder};
use std::sync::Arc;

fn mpi_world(n: usize, protocol: Protocol) -> (madsim_net::World, Config) {
    let mut b = WorldBuilder::new(n);
    let (net, kind) = match protocol {
        Protocol::Tcp | Protocol::Sbp => ("eth0", NetKind::Ethernet),
        Protocol::Bip => ("myr0", NetKind::Myrinet),
        Protocol::Sisci => ("sci0", NetKind::Sci),
        Protocol::Via => ("san0", NetKind::ViaSan),
    };
    b.network(net, kind, &(0..n).collect::<Vec<_>>());
    (b.build(), Config::one("mpi", net, protocol))
}

fn with_mpi(n: usize, protocol: Protocol, f: impl Fn(Arc<Mpi>) + Send + Sync) {
    let (world, config) = mpi_world(n, protocol);
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let mpi = Mpi::init(&mad, "mpi");
        f(mpi);
    });
}

#[test]
fn ranks_are_consistent() {
    with_mpi(4, Protocol::Sisci, |mpi| {
        assert_eq!(mpi.size(), 4);
        assert!(mpi.rank() < 4);
    });
}

#[test]
fn tagged_send_recv() {
    with_mpi(2, Protocol::Sisci, |mpi| {
        if mpi.rank() == 0 {
            mpi.send(1, 7, b"payload-seven");
            mpi.send(1, 9, b"payload-nine");
        } else {
            // Receive out of order: tag 9 first forces the unexpected
            // queue to hold tag 7.
            let mut buf = [0u8; 64];
            let st = mpi.recv(Some(0), Some(9), &mut buf);
            assert_eq!(&buf[..st.len], b"payload-nine");
            let st = mpi.recv(Some(0), Some(7), &mut buf);
            assert_eq!(&buf[..st.len], b"payload-seven");
        }
    });
}

#[test]
fn any_source_any_tag() {
    with_mpi(3, Protocol::Bip, |mpi| {
        if mpi.rank() != 2 {
            let data = vec![mpi.rank() as u8; 100];
            mpi.send(2, mpi.rank() as i32, &data);
        } else {
            let mut seen = Vec::new();
            for _ in 0..2 {
                let mut buf = [0u8; 100];
                let st = mpi.recv(None, None, &mut buf);
                assert_eq!(st.tag as usize, st.source);
                assert!(buf[..st.len].iter().all(|&b| b == st.source as u8));
                seen.push(st.source);
            }
            seen.sort_unstable();
            assert_eq!(seen, vec![0, 1]);
        }
    });
}

#[test]
fn large_messages_use_bulk_path() {
    with_mpi(2, Protocol::Sisci, |mpi| {
        let data: Vec<u8> = (0..200_000).map(|i| (i % 251) as u8).collect();
        if mpi.rank() == 0 {
            mpi.send(1, 1, &data);
        } else {
            let mut buf = vec![0u8; data.len()];
            let st = mpi.recv(Some(0), Some(1), &mut buf);
            assert_eq!(st.len, data.len());
            assert_eq!(buf, data);
        }
    });
}

#[test]
fn sendrecv_ring_exchange() {
    for protocol in [Protocol::Sisci, Protocol::Bip] {
        with_mpi(4, protocol, |mpi| {
            let right = (mpi.rank() + 1) % mpi.size();
            let left = (mpi.rank() + mpi.size() - 1) % mpi.size();
            // Ring shift: everyone passes 4000 bytes to the right. Split
            // into two phases to stay deadlock-free over rendezvous
            // protocols (classic even/odd ordering).
            let data = vec![mpi.rank() as u8; 4000];
            let mut buf = vec![0u8; 4000];
            if mpi.rank() % 2 == 0 {
                mpi.send(right, 5, &data);
                mpi.recv(Some(left), Some(5), &mut buf);
            } else {
                mpi.recv(Some(left), Some(5), &mut buf);
                mpi.send(right, 5, &data);
            }
            assert!(buf.iter().all(|&b| b == left as u8));
        });
    }
}

#[test]
fn barrier_synchronizes() {
    with_mpi(5, Protocol::Sisci, |mpi| {
        for _ in 0..3 {
            mpi.barrier();
        }
    });
}

#[test]
fn bcast_from_every_root() {
    with_mpi(5, Protocol::Sisci, |mpi| {
        for root in 0..5 {
            let mut buf = if mpi.rank() == root {
                vec![root as u8 ^ 0x5A; 3000]
            } else {
                vec![0u8; 3000]
            };
            mpi.bcast(root, &mut buf);
            assert!(buf.iter().all(|&b| b == root as u8 ^ 0x5A), "root {root}");
        }
    });
}

#[test]
fn reduce_and_allreduce() {
    with_mpi(4, Protocol::Bip, |mpi| {
        let data = vec![mpi.rank() as f64 + 1.0; 16];
        let sum = mpi.reduce(0, ReduceOp::Sum, &data);
        if mpi.rank() == 0 {
            let sum = sum.expect("root gets the result");
            assert!(sum.iter().all(|&v| (v - 10.0).abs() < 1e-12)); // 1+2+3+4
        } else {
            assert!(sum.is_none());
        }
        let mx = mpi.allreduce(ReduceOp::Max, &data);
        assert!(mx.iter().all(|&v| (v - 4.0).abs() < 1e-12));
        let mn = mpi.allreduce(ReduceOp::Min, &data);
        assert!(mn.iter().all(|&v| (v - 1.0).abs() < 1e-12));
    });
}

#[test]
fn gather_collects_in_rank_order() {
    with_mpi(4, Protocol::Sisci, |mpi| {
        let data = vec![mpi.rank() as u8; 10 + mpi.rank() * 100];
        let out = mpi.gather(2, &data);
        if mpi.rank() == 2 {
            let out = out.expect("root");
            for (r, block) in out.iter().enumerate() {
                assert_eq!(block.len(), 10 + r * 100);
                assert!(block.iter().all(|&b| b == r as u8));
            }
        }
    });
}

#[test]
fn alltoall_exchanges_blocks() {
    with_mpi(4, Protocol::Sisci, |mpi| {
        let blocks: Vec<Vec<u8>> = (0..4)
            .map(|r| vec![(mpi.rank() * 16 + r) as u8; 500])
            .collect();
        let out = mpi.alltoall(&blocks);
        for (src, block) in out.iter().enumerate() {
            assert_eq!(block.len(), 500);
            assert!(block.iter().all(|&b| b == (src * 16 + mpi.rank()) as u8));
        }
    });
}

#[test]
fn mpi_works_over_every_protocol() {
    for protocol in [
        Protocol::Sisci,
        Protocol::Bip,
        Protocol::Tcp,
        Protocol::Via,
        Protocol::Sbp,
    ] {
        with_mpi(2, protocol, |mpi| {
            if mpi.rank() == 0 {
                mpi.send(1, 3, &vec![9u8; 6000]);
            } else {
                let mut buf = vec![0u8; 6000];
                mpi.recv(Some(0), Some(3), &mut buf);
                assert!(buf.iter().all(|&b| b == 9));
            }
        });
    }
}

#[test]
fn irecv_completes_after_send() {
    with_mpi(2, Protocol::Sisci, |mpi| {
        if mpi.rank() == 0 {
            mpi.send(1, 5, b"async-payload");
        } else {
            let mut buf = [0u8; 32];
            let req = mpi.irecv(Some(0), Some(5), &mut buf);
            let st = mpi.wait(req);
            assert_eq!(st.len, 13);
            assert_eq!(&buf[..13], b"async-payload");
        }
    });
}

#[test]
fn test_polls_without_blocking() {
    with_mpi(2, Protocol::Sisci, |mpi| {
        if mpi.rank() == 0 {
            // Give the receiver time to observe the not-ready state.
            std::thread::sleep(std::time::Duration::from_millis(30));
            mpi.send(1, 6, b"late");
        } else {
            let mut buf = [0u8; 8];
            let mut req = mpi.irecv(Some(0), Some(6), &mut buf);
            // Immediately after posting, nothing has arrived.
            assert!(mpi.test(&mut req).is_none());
            let st = mpi.wait(req);
            assert_eq!(st.len, 4);
        }
    });
}

#[test]
fn waitall_completes_out_of_order_arrivals() {
    with_mpi(3, Protocol::Sisci, |mpi| match mpi.rank() {
        0 => {
            std::thread::sleep(std::time::Duration::from_millis(10));
            mpi.send(2, 10, &vec![1u8; 2000]);
        }
        1 => {
            mpi.send(2, 11, &vec![2u8; 3000]);
        }
        _ => {
            let mut a = vec![0u8; 2000];
            let mut b = vec![0u8; 3000];
            let ra = mpi.irecv(Some(0), Some(10), &mut a);
            let rb = mpi.irecv(Some(1), Some(11), &mut b);
            let sts = mpi.waitall(vec![ra, rb]);
            assert_eq!(sts[0].len, 2000);
            assert_eq!(sts[1].len, 3000);
            assert!(a.iter().all(|&x| x == 1));
            assert!(b.iter().all(|&x| x == 2));
        }
    });
}

#[test]
fn isend_requests_complete() {
    with_mpi(2, Protocol::Sisci, |mpi| {
        if mpi.rank() == 0 {
            let data = vec![7u8; 512];
            let r1 = mpi.isend(1, 1, &data);
            let r2 = mpi.isend(1, 2, &data);
            let sts = mpi.waitall(vec![r1, r2]);
            assert_eq!(sts.len(), 2);
        } else {
            let mut buf = vec![0u8; 512];
            mpi.recv(Some(0), Some(1), &mut buf);
            mpi.recv(Some(0), Some(2), &mut buf);
        }
    });
}

#[test]
fn scatter_distributes_blocks() {
    with_mpi(4, Protocol::Sisci, |mpi| {
        let blocks: Option<Vec<Vec<u8>>> =
            (mpi.rank() == 1).then(|| (0..4).map(|r| vec![r as u8; 100 + r * 10]).collect());
        let mine = mpi.scatter(1, blocks.as_deref());
        assert_eq!(mine.len(), 100 + mpi.rank() * 10);
        assert!(mine.iter().all(|&b| b == mpi.rank() as u8));
    });
}

#[test]
fn allgather_ring_collects_everything() {
    with_mpi(5, Protocol::Bip, |mpi| {
        let data = vec![mpi.rank() as u8; 64 * (mpi.rank() + 1)];
        let out = mpi.allgather(&data);
        for (r, block) in out.iter().enumerate() {
            assert_eq!(block.len(), 64 * (r + 1), "rank {r} block length");
            assert!(block.iter().all(|&b| b == r as u8));
        }
    });
}

#[test]
fn scan_computes_prefix_sums() {
    with_mpi(4, Protocol::Sisci, |mpi| {
        let data = vec![(mpi.rank() + 1) as f64; 8];
        let pfx = mpi.scan(ReduceOp::Sum, &data);
        let expect: f64 = (1..=mpi.rank() + 1).map(|x| x as f64).sum();
        assert!(pfx.iter().all(|&v| (v - expect).abs() < 1e-12));
    });
}

#[test]
fn probe_reports_length_before_receive() {
    with_mpi(2, Protocol::Sisci, |mpi| {
        if mpi.rank() == 0 {
            mpi.send(1, 3, &vec![5u8; 12_345]);
        } else {
            // MPI_Probe then allocate exactly.
            let st = mpi.probe(Some(0), Some(3));
            assert_eq!(st.len, 12_345);
            let mut buf = vec![0u8; st.len];
            let st2 = mpi.recv(Some(st.source), Some(st.tag), &mut buf);
            assert_eq!(st2.len, 12_345);
            assert!(buf.iter().all(|&b| b == 5));
        }
    });
}

#[test]
fn iprobe_is_nonblocking() {
    with_mpi(2, Protocol::Sisci, |mpi| {
        if mpi.rank() == 0 {
            std::thread::sleep(std::time::Duration::from_millis(25));
            mpi.send(1, 4, b"now");
        } else {
            assert!(mpi.iprobe(Some(0), Some(4)).is_none());
            let st = mpi.probe(Some(0), Some(4));
            assert_eq!(st.len, 3);
            // Probing again still sees it (probe does not consume).
            assert!(mpi.iprobe(Some(0), Some(4)).is_some());
            let mut buf = [0u8; 3];
            mpi.recv(Some(0), Some(4), &mut buf);
            assert!(mpi.iprobe(Some(0), Some(4)).is_none());
        }
    });
}

#[test]
fn comm_split_creates_isolated_subgroups() {
    with_mpi(6, Protocol::Sisci, |mpi| {
        // Evens and odds.
        let sub = mpi.split((mpi.rank() % 2) as u32);
        assert_eq!(sub.size(), 3);
        assert_eq!(sub.rank(), mpi.rank() / 2);
        // Collectives run independently within each subgroup.
        let sum = sub.allreduce(ReduceOp::Sum, &[mpi.rank() as f64]);
        let expect: f64 = if mpi.rank() % 2 == 0 {
            0.0 + 2.0 + 4.0
        } else {
            1.0 + 3.0 + 5.0
        };
        assert!((sum[0] - expect).abs() < 1e-12);
        // Point-to-point within the subgroup.
        if sub.rank() == 0 {
            sub.send(1, 9, b"subgroup");
        } else if sub.rank() == 1 {
            let mut buf = [0u8; 8];
            let st = sub.recv(Some(0), Some(9), &mut buf);
            assert_eq!(st.len, 8);
        }
        mpi.barrier();
    });
}

#[test]
fn contexts_prevent_cross_communicator_matching() {
    with_mpi(2, Protocol::Sisci, |mpi| {
        // Everyone in one color: sub spans both ranks with a new context.
        let sub = mpi.split(0);
        if mpi.rank() == 0 {
            // Same (dst, tag) on both communicators; different contexts.
            sub.send(1, 5, b"sub");
            mpi.send(1, 5, b"parent");
        } else {
            // Receive on the parent FIRST: must get the parent's message
            // even though the sub-communicator's arrived earlier.
            let mut buf = [0u8; 6];
            let st = mpi.recv(Some(0), Some(5), &mut buf);
            assert_eq!(&buf[..st.len], b"parent");
            let st = sub.recv(Some(0), Some(5), &mut buf);
            assert_eq!(&buf[..st.len], b"sub");
        }
    });
}

#[test]
fn nested_splits_work() {
    with_mpi(4, Protocol::Bip, |mpi| {
        let half = mpi.split((mpi.rank() / 2) as u32); // {0,1} and {2,3}
        assert_eq!(half.size(), 2);
        let solo = half.split(half.rank() as u32); // singletons
        assert_eq!(solo.size(), 1);
        assert_eq!(solo.rank(), 0);
        // Pairwise exchange within each half still works.
        let peer = 1 - half.rank();
        let mut buf = [0u8; 4];
        half.sendrecv(
            peer,
            1,
            &(mpi.rank() as u32).to_le_bytes(),
            Some(peer),
            Some(1),
            &mut buf,
        );
        let got = u32::from_le_bytes(buf) as usize;
        assert_eq!(got / 2, mpi.rank() / 2, "peer is in my half");
        assert_ne!(got, mpi.rank());
        mpi.barrier();
    });
}
