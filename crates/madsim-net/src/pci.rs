//! The host I/O bus contention model.
//!
//! The paper's gateway experiments (§6.2) are dominated by the behaviour of
//! the single 33 MHz / 32-bit PCI bus every NIC shares:
//!
//! * forwarding moves every byte across the bus **twice** (NIC→host, then
//!   host→NIC), so overlapping transfers are **time-multiplexed**: the bus
//!   serves one transaction stream at a time. The Fig. 10 asymptote is
//!   within 1% of plain serialization of the two crossings
//!   (1528 µs of SCI-in plus 991 µs of Myrinet-out per 128 kB packet
//!   ≈ the measured 2525 µs period at 49.5 MB/s);
//! * *DMA priority*: PCI bus-master DMA transactions (the Myrinet LANai
//!   pulling a frame into host memory) win arbitration over programmed-I/O
//!   transactions (the host CPU pushing words into the SCI segment), so a
//!   **contended PIO transfer pays an inflation factor** on top of the
//!   serialization — the paper's §6.2.3 "slowed down by a factor of two"
//!   while the DMA is active, ≈ ×1.6 averaged over a whole packet, which
//!   reproduces Fig. 11's 29–36.5 MB/s band.
//!
//! The bus is a FIFO reservation timeline: a transfer asked to start at
//! `t` begins at `max(t, bus_free)` and occupies the bus for its duration
//! (inflated for PIO if the bus was busy when it asked). An idle bus adds
//! nothing, so the single-network figures (4, 5) are unaffected.

use crate::resource::ResourceTimeline;
use crate::time::{VDuration, VTime};
use parking_lot::Mutex;
use std::sync::Arc;

/// How a transfer crosses the bus.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BusKind {
    /// Programmed I/O: the host CPU issues the bus transactions (SCI writes).
    Pio,
    /// Bus-master DMA: the NIC issues the transactions (Myrinet, SCI DMA mode).
    Dma,
}

/// Direction of a transfer relative to host memory. (Kept for diagnostics
/// and future refinement; the serialization model treats both directions
/// identically, as a single shared bus does.)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BusDir {
    /// NIC → host memory (a receive).
    Inbound,
    /// Host memory → NIC (a send).
    Outbound,
}

/// Calibration constants for the bus contention model.
#[derive(Clone, Copy, Debug)]
pub struct PciConfig {
    /// Duration multiplier for a PIO transfer that found the bus busy
    /// (bus-master DMA wins PCI arbitration; the CPU's programmed stores
    /// retry and stall). Calibrated from Fig. 11 (≈1.6).
    pub pio_contended_inflation: f64,
}

impl Default for PciConfig {
    fn default() -> Self {
        PciConfig {
            pio_contended_inflation: 1.6,
        }
    }
}

/// A shared host bus. One per simulated node.
#[derive(Clone)]
pub struct PciBus {
    cfg: PciConfig,
    timeline: ResourceTimeline,
    /// Latest instant up to which some NIC's bus-master DMA engine is known
    /// to be issuing transactions (the *wire* window of an in-flight
    /// message, not just its compressed bus occupancy): PIO starting inside
    /// it loses arbitration continuously.
    dma_active_until: Arc<Mutex<VTime>>,
}

impl PciBus {
    pub fn new(cfg: PciConfig) -> Self {
        PciBus {
            cfg,
            timeline: ResourceTimeline::new("pci"),
            dma_active_until: Arc::new(Mutex::new(VTime::ZERO)),
        }
    }

    /// Record that a bus-master DMA engine is active until `until`.
    pub fn note_dma_window(&self, until: VTime) {
        let mut cur = self.dma_active_until.lock();
        *cur = cur.max(until);
    }

    pub fn config(&self) -> PciConfig {
        self.cfg
    }

    /// Run a transfer of uncontended bus occupancy `base` starting no
    /// earlier than `start`; returns its end time.
    pub fn transfer(&self, kind: BusKind, _dir: BusDir, start: VTime, base: VDuration) -> VTime {
        if base == VDuration::ZERO {
            return start;
        }
        // PIO loses arbitration while a DMA engine is active or the bus is
        // already queued; DMA pays only the serialization.
        let contended = self.timeline.next_free() > start || *self.dma_active_until.lock() > start;
        let dur = if contended && kind == BusKind::Pio {
            base.scale(self.cfg.pio_contended_inflation)
        } else {
            base
        };
        if std::env::var("PCI_DEBUG").is_ok() && base.as_nanos() > 50_000 {
            eprintln!(
                "pci {kind:?} start {start:?} base {base:?} contended {contended} nf {:?} dma {:?}",
                self.timeline.next_free(),
                *self.dma_active_until.lock()
            );
        }
        self.timeline.reserve(start, dur).end
    }

    /// Earliest instant the bus is free (diagnostics).
    pub fn next_free(&self) -> VTime {
        self.timeline.next_free()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> VDuration {
        VDuration::from_micros(n)
    }

    fn at(n: u64) -> VTime {
        VTime::from_nanos(n * 1_000)
    }

    fn bus(infl: f64) -> PciBus {
        PciBus::new(PciConfig {
            pio_contended_inflation: infl,
        })
    }

    #[test]
    fn uncontended_transfer_is_unstretched() {
        let b = bus(2.0);
        let end = b.transfer(BusKind::Pio, BusDir::Outbound, at(10), us(100));
        assert_eq!(end, at(110));
    }

    #[test]
    fn overlapping_transfers_serialize() {
        let b = bus(1.0);
        let e1 = b.transfer(BusKind::Dma, BusDir::Inbound, at(0), us(100));
        assert_eq!(e1, at(100));
        // Asked at t=30 while the bus is busy until 100: time-division ⇒
        // the second transfer completes at 100 + 50.
        let e2 = b.transfer(BusKind::Dma, BusDir::Outbound, at(30), us(50));
        assert_eq!(e2, at(150));
    }

    #[test]
    fn disjoint_transfers_do_not_interact() {
        let b = bus(2.0);
        b.transfer(BusKind::Dma, BusDir::Inbound, at(0), us(100));
        let e = b.transfer(BusKind::Pio, BusDir::Outbound, at(500), us(100));
        assert_eq!(e, at(600));
    }

    #[test]
    fn contended_pio_pays_inflation() {
        let b = bus(1.5);
        b.transfer(BusKind::Dma, BusDir::Inbound, at(0), us(100));
        // PIO asked at 40: queued until 100, duration 100 * 1.5.
        let e = b.transfer(BusKind::Pio, BusDir::Outbound, at(40), us(100));
        assert_eq!(e, at(250));
    }

    #[test]
    fn contended_dma_pays_no_inflation() {
        let b = bus(3.0);
        b.transfer(BusKind::Pio, BusDir::Outbound, at(0), us(100));
        let e = b.transfer(BusKind::Dma, BusDir::Inbound, at(40), us(100));
        assert_eq!(e, at(200));
    }

    #[test]
    fn back_to_back_same_stream_is_not_contended() {
        // A sender whose clock advances past each crossing never queues
        // against itself, so per-chunk PIO streams see no inflation.
        let b = bus(2.0);
        let e1 = b.transfer(BusKind::Pio, BusDir::Outbound, at(0), us(100));
        let e2 = b.transfer(BusKind::Pio, BusDir::Outbound, e1, us(100));
        assert_eq!(e2, at(200));
    }

    #[test]
    fn pio_inside_dma_window_pays_inflation_even_on_idle_bus() {
        let b = bus(2.0);
        b.note_dma_window(at(1_000));
        // Bus idle, but a DMA engine is active: PIO still pays.
        let e = b.transfer(BusKind::Pio, BusDir::Outbound, at(100), us(100));
        assert_eq!(e, at(300));
        // After the window, PIO is back to full speed.
        let e2 = b.transfer(BusKind::Pio, BusDir::Outbound, at(2_000), us(100));
        assert_eq!(e2, at(2_100));
    }

    #[test]
    fn zero_duration_transfer_returns_start() {
        let b = bus(2.0);
        let end = b.transfer(BusKind::Pio, BusDir::Outbound, at(5), VDuration::ZERO);
        assert_eq!(end, at(5));
        // And does not reserve anything.
        assert_eq!(b.next_free(), VTime::ZERO);
    }

    #[test]
    fn serialization_matches_fig10_arithmetic() {
        // Per 128 kB forwarded packet: 1528 us of inbound + 991 us of
        // outbound crossings serialize to 2519 us — the paper's measured
        // 49.5 MB/s period is 2525 us.
        let b = bus(1.6);
        let e1 = b.transfer(BusKind::Dma, BusDir::Inbound, at(0), us(1528));
        let e2 = b.transfer(BusKind::Dma, BusDir::Outbound, at(100), us(991));
        assert_eq!(e1, at(1528));
        assert_eq!(e2, at(2519));
    }
}
