//! VIA (Virtual Interface Architecture) — simulated.
//!
//! VIA (Dunning et al., IEEE Micro 1998) is the other "non message-passing"
//! interface the paper calls out: communication happens through per-
//! connection *Virtual Interfaces* with descriptor queues. Its defining
//! constraint for a library like Madeleine II is that **receive descriptors
//! must be posted before the matching send arrives** — a late post means the
//! NIC has nowhere to put the data and the packet is dropped (reliability
//! level permitting). The simulation enforces this as a panic so that the
//! Madeleine VIA transmission module must get its preposting right.

use crate::fault::LinkError;
use crate::frame::{Frame, NodeId};
use crate::pci::BusKind;
use crate::stacks::{charge_dest_bus, charge_send_bus};
use crate::time::{self, VDuration};
use crate::world::{Adapter, NetKind};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicIsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

const KIND_VIA: u16 = 20;

/// Calibrated timing constants for the VIA stack.
#[derive(Clone, Copy, Debug)]
pub struct ViaTiming {
    /// One-way latency floor (doorbell, NIC scheduling, wire).
    pub lat_us: f64,
    /// Per-byte cost (≈90 MiB/s SAN).
    pub per_byte_us: f64,
    /// Host cost of posting a descriptor.
    pub post_us: f64,
    /// Per-byte host-bus occupancy (NIC bus-master DMA).
    pub bus_per_byte_us: f64,
}

impl Default for ViaTiming {
    fn default() -> Self {
        ViaTiming {
            lat_us: crate::stacks::VIA_FRAME_COST.lat_us,
            per_byte_us: 0.0106,
            post_us: crate::stacks::VIA_FRAME_COST.host_us,
            bus_per_byte_us: 0.0106,
        }
    }
}

/// Descriptor-count registry shared by both ends of each VI, so the sender
/// can observe the receiver's posted descriptors (in hardware this is the
/// flow-control state the NICs negotiate).
type ViKey = (u64, NodeId, NodeId, u64);

fn descriptors() -> &'static Mutex<HashMap<ViKey, Arc<AtomicIsize>>> {
    static REG: OnceLock<Mutex<HashMap<ViKey, Arc<AtomicIsize>>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(HashMap::new()))
}

fn descriptor_cell(uid: u64, owner: NodeId, peer: NodeId, tag: u64) -> Arc<AtomicIsize> {
    let mut map = descriptors().lock();
    Arc::clone(
        map.entry((uid, owner, peer, tag))
            .or_insert_with(|| Arc::new(AtomicIsize::new(0))),
    )
}

/// A node's handle on the VIA provider of a SAN adapter.
#[derive(Clone)]
pub struct Via {
    adapter: Adapter,
    timing: ViaTiming,
}

impl Via {
    /// # Panics
    /// Panics if the adapter is not on a VIA-capable SAN fabric.
    pub fn new(adapter: &Adapter) -> Self {
        Self::with_timing(adapter, ViaTiming::default())
    }

    pub fn with_timing(adapter: &Adapter, timing: ViaTiming) -> Self {
        assert_eq!(
            adapter.kind(),
            NetKind::ViaSan,
            "VIA requires a SAN fabric, got {:?}",
            adapter.kind()
        );
        Via {
            adapter: adapter.clone(),
            timing,
        }
    }

    pub fn node(&self) -> NodeId {
        self.adapter.node()
    }

    /// Open a Virtual Interface to `peer`, demultiplexed by `tag`.
    pub fn open_vi(&self, peer: NodeId, tag: u64) -> Vi {
        assert!(
            self.adapter.peers().contains(&peer),
            "node {peer} is not on SAN {:?}",
            self.adapter.name()
        );
        let me = self.node();
        Vi {
            adapter: self.adapter.clone(),
            timing: self.timing,
            peer,
            tag,
            // Our posted receive descriptors (owned by this end).
            my_descs: descriptor_cell(self.adapter.uid(), me, peer, tag),
            // The peer's posted receive descriptors (observed when sending).
            peer_descs: descriptor_cell(self.adapter.uid(), peer, me, tag),
            posted_caps: VecDeque::new(),
        }
    }
}

/// One end of a Virtual Interface.
pub struct Vi {
    adapter: Adapter,
    timing: ViaTiming,
    peer: NodeId,
    tag: u64,
    my_descs: Arc<AtomicIsize>,
    peer_descs: Arc<AtomicIsize>,
    /// Capacities of our posted receive descriptors, FIFO.
    posted_caps: VecDeque<usize>,
}

impl Vi {
    pub fn peer(&self) -> NodeId {
        self.peer
    }

    /// Post a receive descriptor able to hold `capacity` bytes.
    pub fn post_recv(&mut self, capacity: usize) {
        self.my_descs.fetch_add(1, Ordering::AcqRel);
        self.posted_caps.push_back(capacity);
        time::advance(VDuration::from_micros_f64(self.timing.post_us));
    }

    /// Send `data`; consumes one of the peer's preposted descriptors.
    ///
    /// # Panics
    /// Panics if the peer has no receive descriptor posted — real VIA would
    /// drop the packet here.
    pub fn send(&self, data: &[u8]) {
        let prev = self.peer_descs.fetch_sub(1, Ordering::AcqRel);
        assert!(
            prev > 0,
            "VIA send with no preposted receive descriptor on node {} (tag {}): \
             the packet would be dropped",
            self.peer,
            self.tag
        );
        let t = &self.timing;
        let oneway = VDuration::from_micros_f64(t.lat_us + data.len() as f64 * t.per_byte_us);
        let bus_occ = VDuration::from_micros_f64(data.len() as f64 * t.bus_per_byte_us);
        let arrival = charge_send_bus(&self.adapter, BusKind::Dma, oneway, bus_occ);
        let arrival = charge_dest_bus(&self.adapter, self.peer, BusKind::Dma, arrival, bus_occ);
        self.adapter.send_raw(
            self.peer,
            Frame {
                src: self.adapter.node(),
                kind: KIND_VIA,
                tag: self.tag,
                arrival,
                payload: Bytes::copy_from_slice(data),
            },
        );
        time::advance(VDuration::from_micros_f64(t.post_us));
    }

    /// Non-blocking receive: completes the oldest posted receive if a
    /// message has already arrived.
    pub fn try_recv(&mut self) -> Option<Bytes> {
        let tag = self.tag;
        let f = self
            .adapter
            .inbox()
            .try_recv_from(self.peer, KIND_VIA, |f| f.tag == tag)?;
        let cap = self
            .posted_caps
            .pop_front()
            .expect("VIA message arrived with no posted descriptor");
        assert!(
            f.payload.len() <= cap,
            "VIA message of {} bytes exceeds descriptor capacity {cap}",
            f.payload.len()
        );
        time::advance_to(f.arrival);
        Some(f.payload)
    }

    /// Non-blocking peek: is a message pending on this VI?
    pub fn has_pending(&self) -> bool {
        let tag = self.tag;
        self.adapter
            .inbox()
            .has_from(self.peer, KIND_VIA, |f| f.tag == tag)
    }

    /// Wait for the completion of the oldest posted receive; returns the
    /// received data.
    ///
    /// # Panics
    /// Panics if no receive was posted, or if the incoming message exceeds
    /// the descriptor's capacity.
    pub fn recv(&mut self) -> Bytes {
        let cap = self
            .posted_caps
            .pop_front()
            .expect("VIA recv with no posted descriptor on this end");
        let tag = self.tag;
        let f = self
            .adapter
            .inbox()
            .recv_from(self.peer, KIND_VIA, |f| f.tag == tag);
        assert!(
            f.payload.len() <= cap,
            "VIA message of {} bytes exceeds descriptor capacity {cap}",
            f.payload.len()
        );
        time::advance_to(f.arrival);
        f.payload
    }

    /// Whether the underlying adapter has a fault plan armed (callers use
    /// this to decide between blocking and bounded waits).
    pub fn faulty(&self) -> bool {
        self.adapter.faulty()
    }

    /// [`recv`](Self::recv) with a *real-time* deadline. On expiry the
    /// posted descriptor stays posted; `Err(PeerDead)` reports a crashed
    /// or partitioned peer, `Err(Timeout)` one that is merely silent.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<Bytes, LinkError> {
        let me = self.adapter.node();
        if let Some(faults) = self.adapter.faults() {
            if !faults.reachable(me, self.peer) {
                return Err(LinkError::PeerDead);
            }
        }
        let tag = self.tag;
        let f =
            self.adapter
                .inbox()
                .recv_from_timeout(self.peer, KIND_VIA, |f| f.tag == tag, timeout);
        let Some(f) = f else {
            let dead = self
                .adapter
                .faults()
                .is_some_and(|fa| !fa.reachable(me, self.peer));
            return Err(if dead {
                LinkError::PeerDead
            } else {
                LinkError::Timeout
            });
        };
        let cap = self
            .posted_caps
            .pop_front()
            .expect("VIA recv with no posted descriptor on this end");
        assert!(
            f.payload.len() <= cap,
            "VIA message of {} bytes exceeds descriptor capacity {cap}",
            f.payload.len()
        );
        time::advance_to(f.arrival);
        Ok(f.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldBuilder;

    fn san_pair() -> (crate::world::World, crate::world::NetworkId) {
        let mut b = WorldBuilder::new(2);
        let net = b.network("san0", NetKind::ViaSan, &[0, 1]);
        (b.build(), net)
    }

    #[test]
    fn preposted_send_recv_roundtrip() {
        let (w, net) = san_pair();
        let out = w.run(|env| {
            let via = Via::new(env.adapter_on(net).unwrap());
            if env.id() == 1 {
                let mut vi = via.open_vi(0, 3);
                vi.post_recv(64);
                env.barrier();
                vi.recv().to_vec()
            } else {
                let vi = {
                    let mut vi = via.open_vi(1, 3);
                    vi.post_recv(64); // unused, symmetry
                    vi
                };
                env.barrier();
                vi.send(b"via-data");
                Vec::new()
            }
        });
        assert_eq!(out[1], b"via-data");
    }

    #[test]
    #[should_panic(expected = "no preposted receive descriptor")]
    fn send_without_prepost_panics() {
        let (w, net) = san_pair();
        w.run(|env| {
            let via = Via::new(env.adapter_on(net).unwrap());
            if env.id() == 0 {
                let vi = via.open_vi(1, 4);
                vi.send(b"drop me");
            }
        });
    }

    #[test]
    #[should_panic(expected = "exceeds descriptor capacity")]
    fn oversized_message_panics() {
        let (w, net) = san_pair();
        w.run(|env| {
            let via = Via::new(env.adapter_on(net).unwrap());
            if env.id() == 1 {
                let mut vi = via.open_vi(0, 5);
                vi.post_recv(4);
                env.barrier();
                let _ = vi.recv();
            } else {
                let mut vi = via.open_vi(1, 5);
                vi.post_recv(4);
                env.barrier();
                vi.send(b"way too large");
            }
        });
    }

    #[test]
    fn latency_matches_model() {
        let (w, net) = san_pair();
        let times = w.run(|env| {
            let via = Via::new(env.adapter_on(net).unwrap());
            if env.id() == 1 {
                let mut vi = via.open_vi(0, 6);
                vi.post_recv(16);
                env.barrier();
                vi.recv();
                time::now().as_micros_f64()
            } else {
                let vi = via.open_vi(1, 6);
                env.barrier();
                vi.send(&[0u8; 4]);
                0.0
            }
        });
        let t = ViaTiming::default();
        // Receiver clock advances *to* the arrival instant (sender started
        // at virtual 0), which dominates the 0.8 µs descriptor post.
        let expected = t.lat_us + 4.0 * t.per_byte_us;
        assert!(
            (times[1] - expected).abs() < 0.1,
            "got {} expected {}",
            times[1],
            expected
        );
    }
}
