//! SBP (Static Buffer Protocol, Russell & Hatcher) — simulated.
//!
//! SBP is the paper's §6 example of an interface that **requires data to
//! live in protocol-provided static buffers on both ends**: senders must
//! first obtain a kernel buffer, fill it, and hand it back to the protocol;
//! receivers get their data in a kernel buffer they must release. This is
//! the worst case for the gateway's zero-copy analysis ("one extra copy
//! cannot be avoided when *both* networks require static buffers") and is
//! exactly what Madeleine II's `obtain_static_buffer`/`release_static_buffer`
//! TM interface (Table 2) exists to accommodate.

use crate::fault::{
    LinkError, ARQ_MAX_RETRIES, ARQ_RECV_TIMEOUT_MS, ARQ_RTO_REAL_BASE_MS, ARQ_RTO_REAL_MAX_MS,
    ARQ_RTO_VIRT_BASE_US, ARQ_RTO_VIRT_MAX_US,
};
use crate::frame::{Frame, NodeId};
use crate::pci::BusKind;
use crate::stacks::{charge_dest_bus, charge_send_bus};
use crate::time::{self, VDuration, VTime};
use crate::world::{Adapter, NetKind};
use bytes::Bytes;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

const KIND_SBP: u16 = 30;
/// Ack frames of the fault-armed ARQ (payload: 4-byte LE sequence number).
const KIND_SBP_ACK: u16 = 31;

/// Size of every SBP static buffer.
pub const SBP_BUFFER_SIZE: usize = 32 * 1024;
/// Buffers per node-side pool.
pub const SBP_POOL_SIZE: usize = 16;

/// Calibrated timing constants for the SBP stack.
#[derive(Clone, Copy, Debug)]
pub struct SbpTiming {
    /// One-way latency floor (kernel mediation).
    pub lat_us: f64,
    /// Per-byte cost (≈38 MiB/s).
    pub per_byte_us: f64,
    /// Cost of obtaining/releasing a kernel buffer.
    pub pool_op_us: f64,
    /// Per-byte host-bus occupancy.
    pub bus_per_byte_us: f64,
}

impl Default for SbpTiming {
    fn default() -> Self {
        SbpTiming {
            lat_us: crate::stacks::SBP_FRAME_COST.lat_us,
            per_byte_us: 0.025,
            pool_op_us: crate::stacks::SBP_FRAME_COST.host_us,
            bus_per_byte_us: 0.0076,
        }
    }
}

struct Pool {
    available: Mutex<usize>,
    cond: Condvar,
}

impl Pool {
    fn new(n: usize) -> Arc<Self> {
        Arc::new(Pool {
            available: Mutex::new(n),
            cond: Condvar::new(),
        })
    }

    fn take(&self) {
        let mut n = self.available.lock();
        while *n == 0 {
            self.cond.wait(&mut n);
        }
        *n -= 1;
    }

    fn put(&self) {
        let mut n = self.available.lock();
        *n += 1;
        self.cond.notify_one();
    }

    fn available(&self) -> usize {
        *self.available.lock()
    }
}

/// Sequence number of an ack frame, if it is well-formed.
fn sbp_ack_seq(f: &Frame) -> Option<u32> {
    (f.payload.len() == 4)
        .then(|| u32::from_le_bytes([f.payload[0], f.payload[1], f.payload[2], f.payload[3]]))
}

/// Sequence state for the fault-armed ARQ, one counter per `(peer, tag)`
/// direction. Shared by all clones of an [`Sbp`] handle so the driver's
/// send and poll sides agree on sequence numbers.
#[derive(Default)]
struct ArqState {
    tx: Mutex<HashMap<(NodeId, u64), u32>>,
    rx: Mutex<HashMap<(NodeId, u64), u32>>,
}

/// A node's handle on the SBP interface of an Ethernet adapter.
#[derive(Clone)]
pub struct Sbp {
    adapter: Adapter,
    timing: SbpTiming,
    tx_pool: Arc<Pool>,
    rx_pool: Arc<Pool>,
    arq: Arc<ArqState>,
}

impl Sbp {
    /// # Panics
    /// Panics if the adapter is not on an Ethernet fabric (SBP is a kernel
    /// protocol for commodity NICs).
    pub fn new(adapter: &Adapter) -> Self {
        Self::with_timing(adapter, SbpTiming::default())
    }

    pub fn with_timing(adapter: &Adapter, timing: SbpTiming) -> Self {
        assert_eq!(
            adapter.kind(),
            NetKind::Ethernet,
            "SBP requires an Ethernet fabric, got {:?}",
            adapter.kind()
        );
        Sbp {
            adapter: adapter.clone(),
            timing,
            tx_pool: Pool::new(SBP_POOL_SIZE),
            rx_pool: Pool::new(SBP_POOL_SIZE),
            arq: Arc::new(ArqState::default()),
        }
    }

    pub fn node(&self) -> NodeId {
        self.adapter.node()
    }

    /// Transmit buffers currently available (diagnostics / tests).
    pub fn tx_available(&self) -> usize {
        self.tx_pool.available()
    }

    pub fn rx_available(&self) -> usize {
        self.rx_pool.available()
    }

    /// Obtain an empty transmit buffer, blocking until one is free.
    pub fn obtain_tx(&self) -> SbpTxBuffer {
        self.reserve_tx_slot();
        self.obtain_tx_reserved()
    }

    /// Reserve one transmit-pool slot without materializing the buffer
    /// (the reservation is consumed by [`Self::obtain_tx_reserved`] or returned
    /// by [`Self::unreserve_tx_slot`]). Lets callers that stage data elsewhere
    /// still respect the kernel pool bound.
    pub fn reserve_tx_slot(&self) {
        self.tx_pool.take();
        time::advance(VDuration::from_micros_f64(self.timing.pool_op_us));
    }

    /// Return a reservation taken with [`Self::reserve_tx_slot`].
    pub fn unreserve_tx_slot(&self) {
        self.tx_pool.put();
    }

    /// Materialize the buffer for a slot already reserved with
    /// [`Self::reserve_tx_slot`].
    pub fn obtain_tx_reserved(&self) -> SbpTxBuffer {
        SbpTxBuffer {
            data: vec![0u8; SBP_BUFFER_SIZE],
            len: 0,
            pool: Arc::clone(&self.tx_pool),
        }
    }

    /// Send a filled transmit buffer to `dst` under `tag`; the buffer
    /// returns to the pool once the NIC has drained it.
    ///
    /// # Panics
    /// Panics if the fault-armed link dies (use [`try_send`](Self::try_send)
    /// to handle that).
    pub fn send(&self, dst: NodeId, tag: u64, buf: SbpTxBuffer) {
        if let Err(e) = self.try_send(dst, tag, buf) {
            panic!("SBP send to node {dst} failed: {e}");
        }
    }

    /// Fallible [`send`](Self::send). On a fault-free world this is the
    /// original one-frame fast path and always returns `Ok(0)`; on a
    /// fault-armed world the message carries a sequence prefix and is
    /// retransmitted until acked. Returns the retransmission count.
    pub fn try_send(&self, dst: NodeId, tag: u64, buf: SbpTxBuffer) -> Result<u64, LinkError> {
        if !self.adapter.faulty() {
            self.send_fast(dst, tag, &buf);
            return Ok(0);
        }
        let faults = self
            .adapter
            .faults()
            .cloned()
            .expect("reliable path requires a fault plan");
        let me = self.node();
        let seq = {
            let mut tx = self.arq.tx.lock();
            let e = tx.entry((dst, tag)).or_insert(0);
            let s = *e;
            *e = e.wrapping_add(1);
            s
        };
        let mut wire = Vec::with_capacity(4 + buf.len);
        wire.extend_from_slice(&seq.to_le_bytes());
        wire.extend_from_slice(&buf.data[..buf.len]);
        let wire = Bytes::from(wire);
        let t = self.timing;
        let mut retransmits = 0u64;
        let mut rto_real = Duration::from_millis(ARQ_RTO_REAL_BASE_MS);
        let mut rto_virt_us = ARQ_RTO_VIRT_BASE_US;
        loop {
            if !faults.reachable(me, dst) {
                return Err(LinkError::PeerDead);
            }
            let oneway = VDuration::from_micros_f64(t.lat_us + wire.len() as f64 * t.per_byte_us);
            let bus_occ = VDuration::from_micros_f64(wire.len() as f64 * t.bus_per_byte_us);
            let arrival = charge_send_bus(&self.adapter, BusKind::Dma, oneway, bus_occ);
            let arrival = charge_dest_bus(&self.adapter, dst, BusKind::Dma, arrival, bus_occ);
            self.adapter.send_raw(
                dst,
                Frame {
                    src: me,
                    kind: KIND_SBP,
                    tag,
                    arrival,
                    payload: wire.clone(),
                },
            );
            let deadline = Instant::now() + rto_real;
            let acked = loop {
                let now = Instant::now();
                if now >= deadline {
                    break None;
                }
                let f = self.adapter.inbox().recv_from_timeout(
                    dst,
                    KIND_SBP_ACK,
                    |f| f.tag == tag && sbp_ack_seq(f).is_some_and(|s| s <= seq),
                    deadline - now,
                );
                match f {
                    Some(f) if sbp_ack_seq(&f) == Some(seq) => break Some(f),
                    Some(_) => continue,
                    None => break None,
                }
            };
            match acked {
                Some(f) => {
                    time::advance_to(f.arrival);
                    time::advance(VDuration::from_micros_f64(t.pool_op_us));
                    return Ok(retransmits);
                }
                None => {
                    retransmits += 1;
                    if retransmits > u64::from(ARQ_MAX_RETRIES) {
                        return Err(LinkError::Timeout);
                    }
                    time::advance(VDuration::from_micros_f64(rto_virt_us));
                    rto_virt_us = (rto_virt_us * 2.0).min(ARQ_RTO_VIRT_MAX_US);
                    rto_real = (rto_real * 2).min(Duration::from_millis(ARQ_RTO_REAL_MAX_MS));
                }
            }
        }
        // `buf` drops here and its pool slot frees.
    }

    /// The original unconditional send path (no sequence prefix, no acks).
    fn send_fast(&self, dst: NodeId, tag: u64, buf: &SbpTxBuffer) {
        let t = &self.timing;
        let len = buf.len;
        let oneway = VDuration::from_micros_f64(t.lat_us + len as f64 * t.per_byte_us);
        let bus_occ = VDuration::from_micros_f64(len as f64 * t.bus_per_byte_us);
        let arrival = charge_send_bus(&self.adapter, BusKind::Dma, oneway, bus_occ);
        let arrival = charge_dest_bus(&self.adapter, dst, BusKind::Dma, arrival, bus_occ);
        let payload = Bytes::copy_from_slice(&buf.data[..len]);
        self.adapter.send_raw(
            dst,
            Frame {
                src: self.node(),
                kind: KIND_SBP,
                tag,
                arrival,
                payload,
            },
        );
        time::advance(VDuration::from_micros_f64(t.pool_op_us));
    }

    /// Receive the next message under `tag` from `src`, releasing the
    /// kernel buffer after handing its bytes out (a convenience for callers
    /// that copy out immediately, as Madeleine's StaticCopy policy does).
    ///
    /// # Panics
    /// Panics if the fault-armed link dies.
    pub fn recv_from(&self, src: NodeId, tag: u64) -> Bytes {
        match self.try_recv_from(src, tag) {
            Ok(b) => b,
            Err(e) => panic!("SBP receive from node {src} failed: {e}"),
        }
    }

    /// Fallible [`recv_from`](Self::recv_from). On a fault-armed world the
    /// sequence prefix is checked: in-order messages are acked and handed
    /// out, duplicates are re-acked and discarded.
    pub fn try_recv_from(&self, src: NodeId, tag: u64) -> Result<Bytes, LinkError> {
        if !self.adapter.faulty() {
            self.rx_pool.take();
            let f = self
                .adapter
                .inbox()
                .recv_from(src, KIND_SBP, |f| f.tag == tag);
            let t = &self.timing;
            time::advance_to(f.arrival);
            time::advance(VDuration::from_micros_f64(t.pool_op_us));
            self.rx_pool.put();
            return Ok(f.payload);
        }
        let faults = self
            .adapter
            .faults()
            .cloned()
            .expect("reliable path requires a fault plan");
        let me = self.node();
        let deadline = Instant::now() + Duration::from_millis(ARQ_RECV_TIMEOUT_MS);
        loop {
            let pending = self
                .adapter
                .inbox()
                .try_recv_from(src, KIND_SBP, |f| f.tag == tag);
            let f = match pending {
                Some(f) => f,
                None => {
                    if !faults.reachable(me, src) {
                        return Err(LinkError::PeerDead);
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(LinkError::Timeout);
                    }
                    let slice = (deadline - now).min(Duration::from_millis(100));
                    match self.adapter.inbox().recv_from_timeout(
                        src,
                        KIND_SBP,
                        |f| f.tag == tag,
                        slice,
                    ) {
                        Some(f) => f,
                        None => continue,
                    }
                }
            };
            if f.payload.len() < 4 {
                continue;
            }
            let seq = u32::from_le_bytes([f.payload[0], f.payload[1], f.payload[2], f.payload[3]]);
            let expected = {
                let rx = self.arq.rx.lock();
                rx.get(&(src, tag)).copied().unwrap_or(0)
            };
            if seq == expected {
                self.arq
                    .rx
                    .lock()
                    .insert((src, tag), expected.wrapping_add(1));
                self.send_ack(src, tag, seq, f.arrival);
                self.rx_pool.take();
                let t = &self.timing;
                time::advance_to(f.arrival);
                time::advance(VDuration::from_micros_f64(t.pool_op_us));
                self.rx_pool.put();
                return Ok(f.payload.slice(4..));
            }
            if seq < expected {
                // Duplicate of a delivered message: re-ack and discard.
                self.send_ack(src, tag, seq, f.arrival);
            }
        }
    }

    /// Ack `seq` back to `dst`. Acks ride the loss-exempt control path
    /// ([`Adapter::send_raw_control`]) so an exchange's final ack cannot
    /// vanish after the receiver has gone quiet; they carry no bus charge
    /// — 4-byte control frames.
    fn send_ack(&self, dst: NodeId, tag: u64, seq: u32, data_arrival: VTime) {
        let arrival =
            time::now().max(data_arrival) + VDuration::from_micros_f64(self.timing.lat_us);
        self.adapter.send_raw_control(
            dst,
            Frame {
                src: self.node(),
                kind: KIND_SBP_ACK,
                tag,
                arrival,
                payload: Bytes::copy_from_slice(&seq.to_le_bytes()),
            },
        );
    }

    /// Block until some node has a pending SBP message under `tag`; return
    /// its id without consuming anything.
    pub fn wait_pending_src(&self, tag: u64) -> NodeId {
        self.adapter.inbox().wait_src_of(KIND_SBP, tag)
    }

    /// Non-blocking variant of [`wait_pending_src`](Self::wait_pending_src).
    pub fn peek_pending_src(&self, tag: u64) -> Option<NodeId> {
        self.adapter.inbox().poll_src_of(KIND_SBP, tag)
    }

    /// Receive the next message under `tag` into a kernel receive buffer.
    /// The caller must copy the data out and drop the buffer to release it.
    pub fn recv(&self, tag: u64) -> SbpRxBuffer {
        self.rx_pool.take();
        let f = self
            .adapter
            .inbox()
            .recv_match(|f| f.kind == KIND_SBP && f.tag == tag);
        time::advance_to(f.arrival);
        SbpRxBuffer {
            src: f.src,
            data: f.payload,
            pool: Arc::clone(&self.rx_pool),
        }
    }
}

/// A kernel transmit buffer obtained from the SBP pool.
pub struct SbpTxBuffer {
    data: Vec<u8>,
    len: usize,
    pool: Arc<Pool>,
}

impl SbpTxBuffer {
    pub const CAPACITY: usize = SBP_BUFFER_SIZE;

    /// Fill the buffer from `src` (replaces previous contents).
    ///
    /// # Panics
    /// Panics if `src` exceeds the buffer capacity.
    pub fn fill(&mut self, src: &[u8]) {
        assert!(
            src.len() <= SBP_BUFFER_SIZE,
            "SBP buffer overflow: {} > {SBP_BUFFER_SIZE}",
            src.len()
        );
        self.data[..src.len()].copy_from_slice(src);
        self.len = src.len();
    }

    /// Writable view for in-place fills (zero-copy receive-into-tx-buffer on
    /// gateways). Call [`set_len`](Self::set_len) after writing.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.data
    }

    pub fn set_len(&mut self, len: usize) {
        assert!(len <= SBP_BUFFER_SIZE);
        self.len = len;
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for SbpTxBuffer {
    fn drop(&mut self) {
        self.pool.put();
    }
}

/// A kernel receive buffer holding an arrived message.
pub struct SbpRxBuffer {
    src: NodeId,
    data: Bytes,
    pool: Arc<Pool>,
}

impl SbpRxBuffer {
    pub fn src(&self) -> NodeId {
        self.src
    }

    pub fn data(&self) -> &[u8] {
        &self.data
    }
}

impl Drop for SbpRxBuffer {
    fn drop(&mut self) {
        self.pool.put();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldBuilder;

    fn eth_pair() -> (crate::world::World, crate::world::NetworkId) {
        let mut b = WorldBuilder::new(2);
        let net = b.network("eth0", NetKind::Ethernet, &[0, 1]);
        (b.build(), net)
    }

    #[test]
    fn static_buffer_roundtrip() {
        let (w, net) = eth_pair();
        let out = w.run(|env| {
            let sbp = Sbp::new(env.adapter_on(net).unwrap());
            if env.id() == 0 {
                let mut buf = sbp.obtain_tx();
                buf.fill(b"static!");
                sbp.send(1, 1, buf);
                Vec::new()
            } else {
                let rx = sbp.recv(1);
                assert_eq!(rx.src(), 0);
                rx.data().to_vec()
            }
        });
        assert_eq!(out[1], b"static!");
    }

    #[test]
    fn tx_pool_slot_returns_after_send() {
        let (w, net) = eth_pair();
        w.run(|env| {
            let sbp = Sbp::new(env.adapter_on(net).unwrap());
            if env.id() == 0 {
                assert_eq!(sbp.tx_available(), SBP_POOL_SIZE);
                let buf = sbp.obtain_tx();
                assert_eq!(sbp.tx_available(), SBP_POOL_SIZE - 1);
                sbp.send(1, 1, buf);
                assert_eq!(sbp.tx_available(), SBP_POOL_SIZE);
            } else {
                let _ = sbp.recv(1);
            }
        });
    }

    #[test]
    fn rx_pool_slot_returns_on_drop() {
        let (w, net) = eth_pair();
        w.run(|env| {
            let sbp = Sbp::new(env.adapter_on(net).unwrap());
            if env.id() == 0 {
                let mut buf = sbp.obtain_tx();
                buf.fill(b"x");
                sbp.send(1, 1, buf);
            } else {
                {
                    let rx = sbp.recv(1);
                    assert_eq!(sbp.rx_available(), SBP_POOL_SIZE - 1);
                    drop(rx);
                }
                assert_eq!(sbp.rx_available(), SBP_POOL_SIZE);
            }
        });
    }

    #[test]
    fn lossy_send_still_delivers_in_order() {
        use crate::fault::FaultPlan;
        let mut b = WorldBuilder::new(2).fault_plan(FaultPlan::new(11).drop_rate(0.05));
        let net = b.network("eth0", NetKind::Ethernet, &[0, 1]);
        let w = b.build();
        let out = w.run(|env| {
            let sbp = Sbp::new(env.adapter_on(net).unwrap());
            if env.id() == 0 {
                for i in 0..20u8 {
                    let mut buf = sbp.obtain_tx();
                    buf.fill(&[i; 100]);
                    sbp.try_send(1, 5, buf).unwrap();
                }
                Vec::new()
            } else {
                let mut got = Vec::new();
                for _ in 0..20 {
                    let msg = sbp.try_recv_from(0, 5).unwrap();
                    assert_eq!(msg.len(), 100);
                    got.push(msg[0]);
                }
                got
            }
        });
        assert_eq!(out[1], (0..20u8).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "SBP buffer overflow")]
    fn oversized_fill_panics() {
        let (w, net) = eth_pair();
        w.run(|env| {
            if env.id() == 0 {
                let sbp = Sbp::new(env.adapter_on(net).unwrap());
                let mut buf = sbp.obtain_tx();
                buf.fill(&vec![0u8; SBP_BUFFER_SIZE + 1]);
            }
        });
    }

    #[test]
    fn in_place_fill_via_mut_slice() {
        let (w, net) = eth_pair();
        let out = w.run(|env| {
            let sbp = Sbp::new(env.adapter_on(net).unwrap());
            if env.id() == 0 {
                let mut buf = sbp.obtain_tx();
                buf.as_mut_slice()[..4].copy_from_slice(b"abcd");
                buf.set_len(4);
                sbp.send(1, 2, buf);
                Vec::new()
            } else {
                sbp.recv(2).data().to_vec()
            }
        });
        assert_eq!(out[1], b"abcd");
    }
}
