//! SISCI over Dolphin SCI — simulated.
//!
//! SISCI's programming model is shared-memory-like, not message-passing
//! (which is precisely why the first Madeleine's message-oriented internals
//! fit it poorly, motivating Madeleine II):
//!
//! * a node **creates** memory *segments* that remote nodes **connect** to
//!   and map into their address space;
//! * a sender moves data with **PIO**: the CPU writes through the mapped
//!   window, word by word, and the SCI NIC forwards the stream — the
//!   sending CPU is busy for the whole transfer and the transactions cross
//!   the sender's PCI bus as *programmed I/O* (this is what loses against
//!   DMA arbitration in the paper's §6.2.3);
//! * on the receiving node the incoming stream is written to host memory by
//!   the SCI NIC as a *bus-master*, i.e. DMA-class PCI transactions;
//! * synchronization is by writing and polling **flag words** inside the
//!   segment;
//! * D310 NICs also have a **DMA engine** — measured by the authors at a
//!   disappointing ≤35 MB/s, which is why Madeleine II ships the DMA TM
//!   disabled.
//!
//! Segments really exist (a shared byte buffer); flag waits are condvar
//! waits carrying the virtual arrival time of the write that satisfied them,
//! so receivers synchronize both real and virtual time without spinning.

use crate::frame::NodeId;
use crate::pci::{BusDir, BusKind, PciBus};
use crate::time::{self, VDuration, VTime};
use crate::world::{Adapter, NetKind};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Calibrated timing constants for the SISCI stack (µs / µs-per-byte).
#[derive(Clone, Copy, Debug)]
pub struct SisciTiming {
    /// Fixed cost of issuing a PIO write (store buffer flush, window setup).
    pub pio_setup_us: f64,
    /// Per-byte cost of streaming PIO writes (~82 MiB/s calibrated).
    pub pio_per_byte_us: f64,
    /// Cost of a 4-byte flag write.
    pub flag_write_us: f64,
    /// SCI wire + switch latency after the last byte leaves the sender.
    pub wire_lat_us: f64,
    /// Fixed cost of a local copy out of a segment.
    pub copy_setup_us: f64,
    /// Per-byte cost of copying between a segment and user memory.
    pub copy_per_byte_us: f64,
    /// Per-byte sender-bus occupancy of PIO (the CPU drives the bus the
    /// whole time, so this equals the PIO per-byte cost).
    pub pio_bus_per_byte_us: f64,
    /// DMA engine: fixed start cost.
    pub dma_setup_us: f64,
    /// DMA engine: per-byte cost (≈35 MB/s on D310 hardware).
    pub dma_per_byte_us: f64,
}

impl Default for SisciTiming {
    fn default() -> Self {
        SisciTiming {
            pio_setup_us: 1.0,
            pio_per_byte_us: 0.0116,
            flag_write_us: 0.5,
            wire_lat_us: 0.6,
            copy_setup_us: 0.1,
            copy_per_byte_us: 0.0042,
            pio_bus_per_byte_us: 0.0116,
            dma_setup_us: 20.0,
            dma_per_byte_us: 0.026,
        }
    }
}

type SegKey = (u64, NodeId, u32);

struct SegInner {
    mem: Mutex<Vec<u8>>,
    /// Flag offset → (value → virtual arrival of the write that set it).
    flags: Mutex<HashMap<usize, BTreeMap<u32, VTime>>>,
    cond: Condvar,
    owner_bus: PciBus,
    size: usize,
}

struct Registry {
    map: Mutex<HashMap<SegKey, Arc<SegInner>>>,
    cond: Condvar,
}

fn registry() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(|| Registry {
        map: Mutex::new(HashMap::new()),
        cond: Condvar::new(),
    })
}

/// A node's handle on the SISCI interface of an SCI adapter.
#[derive(Clone)]
pub struct Sisci {
    adapter: Adapter,
    timing: SisciTiming,
}

impl Sisci {
    /// Open SISCI on an SCI adapter.
    ///
    /// # Panics
    /// Panics if the adapter is not on an SCI fabric.
    pub fn new(adapter: &Adapter) -> Self {
        Self::with_timing(adapter, SisciTiming::default())
    }

    pub fn with_timing(adapter: &Adapter, timing: SisciTiming) -> Self {
        assert_eq!(
            adapter.kind(),
            NetKind::Sci,
            "SISCI requires an SCI fabric, got {:?}",
            adapter.kind()
        );
        Sisci {
            adapter: adapter.clone(),
            timing,
        }
    }

    pub fn node(&self) -> NodeId {
        self.adapter.node()
    }

    pub fn timing(&self) -> SisciTiming {
        self.timing
    }

    /// Create (and export) a local segment of `size` bytes.
    ///
    /// # Panics
    /// Panics if a segment with the same id already exists on this node.
    pub fn create_segment(&self, seg_id: u32, size: usize) -> LocalSegment {
        let key: SegKey = (self.adapter.uid(), self.node(), seg_id);
        let inner = Arc::new(SegInner {
            mem: Mutex::new(vec![0u8; size]),
            flags: Mutex::new(HashMap::new()),
            cond: Condvar::new(),
            owner_bus: self.adapter.pci().clone(),
            size,
        });
        let reg = registry();
        let mut map = reg.map.lock();
        assert!(
            !map.contains_key(&key),
            "segment {seg_id} already exists on node {}",
            self.node()
        );
        map.insert(key, Arc::clone(&inner));
        reg.cond.notify_all();
        LocalSegment {
            key,
            inner,
            timing: self.timing,
        }
    }

    /// Connect to a remote node's exported segment, blocking (in real time)
    /// until the owner has created it — mirroring SISCI's connect-retry
    /// loop during session establishment.
    pub fn connect(&self, owner: NodeId, seg_id: u32) -> RemoteSegment {
        assert!(
            self.adapter.peers().contains(&owner),
            "node {owner} is not on SCI network {:?}",
            self.adapter.name()
        );
        let key: SegKey = (self.adapter.uid(), owner, seg_id);
        let reg = registry();
        let mut map = reg.map.lock();
        let inner = loop {
            if let Some(inner) = map.get(&key) {
                break Arc::clone(inner);
            }
            reg.cond.wait(&mut map);
        };
        RemoteSegment {
            inner,
            timing: self.timing,
            sender_bus: self.adapter.pci().clone(),
        }
    }
}

/// A segment this node exported; remote nodes PIO/DMA into it.
pub struct LocalSegment {
    key: SegKey,
    inner: Arc<SegInner>,
    timing: SisciTiming,
}

impl LocalSegment {
    pub fn size(&self) -> usize {
        self.inner.size
    }

    /// Copy `buf.len()` bytes out of the segment into user memory, charging
    /// the host-memcpy cost.
    pub fn read(&self, off: usize, buf: &mut [u8]) {
        let mem = self.inner.mem.lock();
        buf.copy_from_slice(&mem[off..off + buf.len()]);
        drop(mem);
        let t = &self.timing;
        time::advance(VDuration::from_micros_f64(
            t.copy_setup_us + buf.len() as f64 * t.copy_per_byte_us,
        ));
    }

    /// Read a little-endian u32 (e.g. a length header) without the bulk
    /// memcpy charge — a single load.
    pub fn read_u32(&self, off: usize) -> u32 {
        let mem = self.inner.mem.lock();
        u32::from_le_bytes(mem[off..off + 4].try_into().expect("4 bytes"))
    }

    /// Block until the flag word at `off` has been written with a value
    /// `>= val`; advances the local clock to the write's arrival and returns
    /// that instant.
    pub fn wait_flag_ge(&self, off: usize, val: u32) -> VTime {
        let mut flags = self.inner.flags.lock();
        loop {
            if let Some(m) = flags.get_mut(&off) {
                if let Some((&_v, &arr)) = m.range(val..).next() {
                    // Prune history below the satisfied value: flags are
                    // monotone counters in every protocol built on top.
                    let keep = m.split_off(&val);
                    *m = keep;
                    drop(flags);
                    time::advance_to(arr);
                    return arr;
                }
            }
            self.inner.cond.wait(&mut flags);
        }
    }

    /// Like [`wait_flag_ge`](Self::wait_flag_ge), but also returns the
    /// value of the satisfying write — the **earliest** write with value
    /// `>= val`, so the caller never observes data whose publishing write
    /// it has not paid the arrival time for.
    pub fn wait_flag_ge_val(&self, off: usize, val: u32) -> (u32, VTime) {
        let mut flags = self.inner.flags.lock();
        loop {
            if let Some(m) = flags.get_mut(&off) {
                if let Some((&v, &arr)) = m.range(val..).next() {
                    let keep = m.split_off(&val);
                    *m = keep;
                    drop(flags);
                    time::advance_to(arr);
                    return (v, arr);
                }
            }
            self.inner.cond.wait(&mut flags);
        }
    }

    /// [`wait_flag_ge_val`](Self::wait_flag_ge_val) with a *real-time*
    /// deadline: `None` if no satisfying write arrived within `timeout`.
    /// Fault-aware protocols use this to turn a vanished peer (crashed or
    /// partitioned mid-transfer) into a detectable channel-down condition
    /// instead of a hang.
    pub fn wait_flag_ge_val_timeout(
        &self,
        off: usize,
        val: u32,
        timeout: Duration,
    ) -> Option<(u32, VTime)> {
        let deadline = Instant::now() + timeout;
        let mut flags = self.inner.flags.lock();
        loop {
            if let Some(m) = flags.get_mut(&off) {
                if let Some((&v, &arr)) = m.range(val..).next() {
                    let keep = m.split_off(&val);
                    *m = keep;
                    drop(flags);
                    time::advance_to(arr);
                    return Some((v, arr));
                }
            }
            if self.inner.cond.wait_until(&mut flags, deadline).timed_out() {
                // Final re-check under the lock before giving up.
                let m = flags.get_mut(&off)?;
                let (&v, &arr) = m.range(val..).next()?;
                let keep = m.split_off(&val);
                *m = keep;
                drop(flags);
                time::advance_to(arr);
                return Some((v, arr));
            }
        }
    }

    /// Pure probe: is the flag at `off` already `>= val`? Consumes nothing
    /// and does not advance the clock (used by incoming-message polling).
    pub fn probe_flag_ge(&self, off: usize, val: u32) -> bool {
        let flags = self.inner.flags.lock();
        flags
            .get(&off)
            .is_some_and(|m| m.range(val..).next().is_some())
    }

    /// Non-blocking flag poll; advances the clock and consumes history on
    /// success exactly like [`wait_flag_ge`](Self::wait_flag_ge).
    pub fn try_flag_ge(&self, off: usize, val: u32) -> Option<VTime> {
        let mut flags = self.inner.flags.lock();
        let m = flags.get_mut(&off)?;
        let (&_v, &arr) = m.range(val..).next()?;
        let keep = m.split_off(&val);
        *m = keep;
        drop(flags);
        time::advance_to(arr);
        Some(arr)
    }
}

impl Drop for LocalSegment {
    fn drop(&mut self) {
        registry().map.lock().remove(&self.key);
    }
}

/// A mapped window onto a remote node's segment.
pub struct RemoteSegment {
    inner: Arc<SegInner>,
    timing: SisciTiming,
    sender_bus: PciBus,
}

impl RemoteSegment {
    pub fn size(&self) -> usize {
        self.inner.size
    }

    /// Stream `data` into the remote segment with PIO. The calling CPU is
    /// busy for the whole transfer (clock advances to the end of the bus
    /// crossing). Returns the virtual instant the data is visible in remote
    /// host memory (including receiver-bus contention).
    pub fn write(&self, off: usize, data: &[u8]) -> VTime {
        assert!(
            off + data.len() <= self.inner.size,
            "write of {} bytes at {off} overruns segment of {}",
            data.len(),
            off,
        );
        {
            let mut mem = self.inner.mem.lock();
            mem[off..off + data.len()].copy_from_slice(data);
        }
        let t = &self.timing;
        let t0 = time::now();
        let cpu =
            VDuration::from_micros_f64(t.pio_setup_us + data.len() as f64 * t.pio_per_byte_us);
        let bus_occ = VDuration::from_micros_f64(data.len() as f64 * t.pio_bus_per_byte_us);
        // Sender bus: PIO outbound; the CPU is stalled for the stretched
        // duration under contention.
        let send_end = self
            .sender_bus
            .transfer(BusKind::Pio, BusDir::Outbound, t0, bus_occ);
        let cpu_end = (t0 + cpu).max(send_end);
        time::advance_to(cpu_end);
        // Receiver bus: the SCI NIC master-writes into host memory.
        let nominal_arrival = cpu_end + VDuration::from_micros_f64(t.wire_lat_us);
        let in_occ = VDuration::from_micros_f64(data.len() as f64 * t.pio_bus_per_byte_us);
        let busy_start = nominal_arrival.saturating_sub(in_occ);
        let in_end =
            self.inner
                .owner_bus
                .transfer(BusKind::Dma, BusDir::Inbound, busy_start, in_occ);
        in_end.max(nominal_arrival)
    }

    /// Write a 4-byte flag word, visible to the remote no earlier than
    /// `not_before` (pass the return of the preceding data [`write`] to
    /// preserve causality). Wakes remote waiters.
    pub fn write_flag(&self, off: usize, val: u32, not_before: VTime) -> VTime {
        let t = &self.timing;
        let cpu_end = time::advance(VDuration::from_micros_f64(t.flag_write_us));
        let arrival = (cpu_end + VDuration::from_micros_f64(t.wire_lat_us)).max(not_before);
        {
            let mut mem = self.inner.mem.lock();
            if off + 4 <= mem.len() {
                mem[off..off + 4].copy_from_slice(&val.to_le_bytes());
            }
        }
        let mut flags = self.inner.flags.lock();
        flags.entry(off).or_default().insert(val, arrival);
        self.inner.cond.notify_all();
        arrival
    }

    /// Transfer `data` with the NIC's DMA engine. The CPU pays only the
    /// setup cost; the call returns the completion instant (callers model
    /// SISCI's `SCIWaitForDMAQueue` by `advance_to`-ing it).
    pub fn dma_write(&self, off: usize, data: &[u8]) -> VTime {
        assert!(
            off + data.len() <= self.inner.size,
            "DMA write of {} bytes at {off} overruns segment",
            data.len(),
        );
        {
            let mut mem = self.inner.mem.lock();
            mem[off..off + data.len()].copy_from_slice(data);
        }
        let t = &self.timing;
        let t0 = time::advance(VDuration::from_micros_f64(t.dma_setup_us));
        let dur = VDuration::from_micros_f64(data.len() as f64 * t.dma_per_byte_us);
        // The engine's transactions cross the sender bus as DMA.
        let occ = dur;
        let send_end = self
            .sender_bus
            .transfer(BusKind::Dma, BusDir::Outbound, t0, occ);
        let nominal_arrival = send_end.max(t0 + dur) + VDuration::from_micros_f64(t.wire_lat_us);
        let busy_start = nominal_arrival.saturating_sub(occ);
        let in_end = self
            .inner
            .owner_bus
            .transfer(BusKind::Dma, BusDir::Inbound, busy_start, occ);
        in_end.max(nominal_arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldBuilder;

    fn sci_pair() -> (crate::world::World, crate::world::NetworkId) {
        let mut b = WorldBuilder::new(2);
        let net = b.network("sci0", NetKind::Sci, &[0, 1]);
        (b.build(), net)
    }

    #[test]
    fn pio_write_then_flag_roundtrip() {
        let (w, net) = sci_pair();
        let out = w.run(|env| {
            let sisci = Sisci::new(env.adapter_on(net).unwrap());
            if env.id() == 1 {
                let seg = sisci.create_segment(1, 4096);
                seg.wait_flag_ge(4092, 1);
                let mut buf = vec![0u8; 5];
                seg.read(8, &mut buf);
                buf
            } else {
                let seg = sisci.connect(1, 1);
                let vis = seg.write(8, b"hello");
                seg.write_flag(4092, 1, vis);
                Vec::new()
            }
        });
        assert_eq!(out[1], b"hello");
    }

    #[test]
    fn receiver_clock_advances_to_write_arrival() {
        let (w, net) = sci_pair();
        let times = w.run(|env| {
            let sisci = Sisci::new(env.adapter_on(net).unwrap());
            if env.id() == 1 {
                let seg = sisci.create_segment(1, 4096);
                let arr = seg.wait_flag_ge(0, 1);
                assert_eq!(time::now(), arr);
                arr.as_micros_f64()
            } else {
                let seg = sisci.connect(1, 1);
                let vis = seg.write(64, &[7u8; 1000]);
                seg.write_flag(0, 1, vis).as_micros_f64()
            }
        });
        // Times must agree on both sides and include PIO + wire costs.
        assert!((times[0] - times[1]).abs() < 1e-9);
        // Sequential on the sender CPU: data PIO, then flag write, then the
        // flag's wire hop (the data's own wire hop overlaps the flag write).
        let t = SisciTiming::default();
        let expected =
            t.pio_setup_us + 1000.0 * t.pio_per_byte_us + t.flag_write_us + t.wire_lat_us;
        assert!(
            (times[1] - expected).abs() < 0.01,
            "got {} expected {}",
            times[1],
            expected
        );
    }

    #[test]
    fn flag_history_supports_monotone_counters() {
        let (w, net) = sci_pair();
        w.run(|env| {
            let sisci = Sisci::new(env.adapter_on(net).unwrap());
            if env.id() == 1 {
                let seg = sisci.create_segment(9, 64);
                for i in 1..=5u32 {
                    seg.wait_flag_ge(0, i);
                }
            } else {
                let seg = sisci.connect(1, 9);
                for i in 1..=5u32 {
                    let vis = seg.write(4, &i.to_le_bytes());
                    seg.write_flag(0, i, vis);
                }
            }
        });
    }

    #[test]
    fn try_flag_is_nonblocking() {
        let (w, net) = sci_pair();
        w.run(|env| {
            let sisci = Sisci::new(env.adapter_on(net).unwrap());
            if env.id() == 1 {
                let seg = sisci.create_segment(2, 64);
                assert!(seg.try_flag_ge(0, 1).is_none());
                env.barrier();
                // After the writer passed the barrier the flag is set
                // (frame delivery is synchronous in real time).
                assert!(seg.try_flag_ge(0, 1).is_some());
            } else {
                let seg = sisci.connect(1, 2);
                let vis = seg.write(4, b"data");
                seg.write_flag(0, 1, vis);
                env.barrier();
            }
        });
    }

    #[test]
    fn dma_write_is_slower_than_pio_for_bulk() {
        let (w, net) = sci_pair();
        let times = w.run(|env| {
            let sisci = Sisci::new(env.adapter_on(net).unwrap());
            if env.id() == 1 {
                let _seg = sisci.create_segment(3, 1 << 17);
                env.barrier();
                env.barrier();
                (0.0, 0.0)
            } else {
                env.barrier();
                let seg = sisci.connect(1, 3);
                let data = vec![0u8; 65536];
                let t0 = time::now();
                let pio_done = seg.write(0, &data);
                let pio = pio_done.saturating_since(t0).as_micros_f64();
                let t1 = time::now();
                let dma_done = seg.dma_write(0, &data);
                let dma = dma_done.saturating_since(t1).as_micros_f64();
                env.barrier();
                (pio, dma)
            }
        });
        let (pio, dma) = times[0];
        assert!(
            dma > pio * 2.0,
            "D310 DMA should be much slower than PIO for 64 kB: pio={pio} dma={dma}"
        );
    }

    #[test]
    #[should_panic(expected = "overruns segment")]
    fn write_overrun_panics() {
        let (w, net) = sci_pair();
        w.run(|env| {
            let sisci = Sisci::new(env.adapter_on(net).unwrap());
            if env.id() == 1 {
                let _seg = sisci.create_segment(4, 16);
                env.barrier();
            } else {
                let seg = sisci.connect(1, 4);
                env.barrier();
                seg.write(8, &[0u8; 16]);
            }
        });
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_segment_id_panics() {
        let (w, net) = sci_pair();
        w.run(|env| {
            let sisci = Sisci::new(env.adapter_on(net).unwrap());
            if env.id() == 0 {
                let _a = sisci.create_segment(5, 16);
                let _b = sisci.create_segment(5, 16);
            }
        });
    }

    #[test]
    fn segment_unregisters_on_drop() {
        let (w, net) = sci_pair();
        w.run(|env| {
            let sisci = Sisci::new(env.adapter_on(net).unwrap());
            if env.id() == 0 {
                {
                    let _a = sisci.create_segment(6, 16);
                }
                // Dropped: the id is free again.
                let _b = sisci.create_segment(6, 16);
            }
        });
    }
}
