//! BIP (Basic Interface for Parallelism) over Myrinet — simulated.
//!
//! BIP (Prylli & Tourancheau) exposes the Myrinet LANai in user space with
//! two distinct sub-interfaces (paper §5.2.2):
//!
//! * **short messages** (< 1 kB): stored on the receiving side in a small
//!   ring of **preallocated buffers**, no receiver participation needed —
//!   but nothing in BIP prevents overrun, so *the caller* must flow-control
//!   (Madeleine II's short-message TM layers a credit scheme on top). The
//!   simulation enforces the contract: overrunning the ring panics.
//! * **long messages**: delivered directly to their final location with no
//!   intermediate copy, which requires a strict **rendezvous** — the sender
//!   blocks until the receiver has posted the receive and acknowledged
//!   readiness.
//!
//! Calibration (see `DESIGN.md` §4): raw BIP min latency 5 µs and ~126 MB/s
//! asymptotic bandwidth; the long-message path carries a large constant
//! (rendezvous + pinning) making the 8 kB point land near the paper's §6.2
//! measurements once Madeleine's overhead is added on top.

use crate::fault::LinkError;
use crate::frame::{Frame, NodeId};
use crate::pci::BusKind;
use crate::stacks::{charge_dest_bus, charge_send_bus, charge_send_bus_at};
use crate::time::{self, VDuration, VTime};
use crate::world::{Adapter, NetKind};
use bytes::Bytes;
use std::time::Duration;

/// Largest message accepted by the short path (exclusive bound is 1 kB in
/// the paper; we accept exactly up to 1024 bytes).
pub const BIP_SHORT_MAX: usize = 1024;

/// Number of preallocated short-message buffers per (source, tag) pair on
/// the receiving side. Sending more than this many un-received short
/// messages is a protocol violation.
pub const BIP_SHORT_RING: usize = 8;

const KIND_SHORT: u16 = 1;
const KIND_CTS: u16 = 2;
const KIND_LONG: u16 = 3;

/// Calibrated timing constants for the BIP stack (all µs / µs-per-byte).
#[derive(Clone, Copy, Debug)]
pub struct BipTiming {
    /// One-way latency floor of a short message.
    pub short_lat_us: f64,
    /// Per-byte cost of a short message.
    pub short_per_byte_us: f64,
    /// One-way latency of a control frame (CTS).
    pub ctrl_lat_us: f64,
    /// Constant cost of a long-message transfer once rendezvous completed
    /// (pinning, DMA setup, LANai program turnaround).
    pub long_lat_us: f64,
    /// Per-byte cost of a long-message transfer.
    pub long_per_byte_us: f64,
    /// Host CPU time consumed by posting a send (returns before the wire
    /// time elapses — the LANai DMAs autonomously).
    pub host_post_us: f64,
    /// Per-byte host-bus occupancy (the LANai's bus-master DMA burst rate).
    pub bus_per_byte_us: f64,
}

impl Default for BipTiming {
    fn default() -> Self {
        // Anchors: raw short latency 5 µs; long path ~126 MB/s asymptote
        // with a ~95 µs rendezvous constant, placing 8 kB at ≈160 µs raw
        // (≈47 MiB/s once Madeleine's overhead is added, §6.2.2).
        BipTiming {
            short_lat_us: 4.8,
            short_per_byte_us: 0.009,
            ctrl_lat_us: 4.8,
            long_lat_us: 90.0,
            long_per_byte_us: 0.00756,
            host_post_us: 1.0,
            bus_per_byte_us: 0.00756,
        }
    }
}

/// A node's handle on the BIP interface of a Myrinet adapter.
#[derive(Clone)]
pub struct Bip {
    adapter: Adapter,
    timing: BipTiming,
}

impl Bip {
    /// Open BIP on a Myrinet adapter.
    ///
    /// # Panics
    /// Panics if the adapter is not on a Myrinet fabric.
    pub fn new(adapter: &Adapter) -> Self {
        Self::with_timing(adapter, BipTiming::default())
    }

    pub fn with_timing(adapter: &Adapter, timing: BipTiming) -> Self {
        assert_eq!(
            adapter.kind(),
            NetKind::Myrinet,
            "BIP requires a Myrinet fabric, got {:?}",
            adapter.kind()
        );
        Bip {
            adapter: adapter.clone(),
            timing,
        }
    }

    pub fn node(&self) -> NodeId {
        self.adapter.node()
    }

    pub fn timing(&self) -> BipTiming {
        self.timing
    }

    /// The adapter this BIP instance drives.
    pub fn adapter(&self) -> &Adapter {
        &self.adapter
    }

    /// Non-blocking receive of a short message with `tag` from `src`.
    pub fn try_recv_short_from(&self, src: NodeId, tag: u64) -> Option<Bytes> {
        let f = self
            .adapter
            .inbox()
            .try_recv_from(src, KIND_SHORT, |f| f.tag == tag)?;
        Some(self.finish_short(f).1)
    }

    /// Non-blocking peek at the source of the oldest pending short message
    /// with `tag`, without consuming it.
    pub fn peek_short_src(&self, tag: u64) -> Option<NodeId> {
        self.adapter.inbox().poll_src_of(KIND_SHORT, tag)
    }

    /// Blocking variant of [`peek_short_src`](Self::peek_short_src).
    pub fn wait_short_src(&self, tag: u64) -> NodeId {
        self.adapter.inbox().wait_src_of(KIND_SHORT, tag)
    }

    /// Send a short message (≤ [`BIP_SHORT_MAX`] bytes). Returns as soon as
    /// the host has posted the frame; delivery is asynchronous.
    ///
    /// # Panics
    /// Panics if `data` exceeds the short limit, or if the receiver's
    /// preallocated ring for `(self, tag)` is already full — the caller was
    /// required to flow-control (paper §5.2.2).
    pub fn send_short(&self, dst: NodeId, tag: u64, data: &[u8]) {
        assert!(
            data.len() <= BIP_SHORT_MAX,
            "BIP short message of {} bytes exceeds {} byte limit",
            data.len(),
            BIP_SHORT_MAX
        );
        let me = self.node();
        // Simulation-level enforcement of the preallocated-ring contract.
        // (In the real system this would corrupt or drop messages.)
        let queued = count_queued_shorts(&self.adapter, dst, me, tag);
        assert!(
            queued < BIP_SHORT_RING,
            "BIP short-message ring overflow: {queued} messages already queued \
             from node {me} tag {tag} — missing credit-based flow control?"
        );

        let t = &self.timing;
        let oneway =
            VDuration::from_micros_f64(t.short_lat_us + data.len() as f64 * t.short_per_byte_us);
        let bus_occ = VDuration::from_micros_f64(data.len() as f64 * t.bus_per_byte_us);
        let arrival = charge_send_bus(&self.adapter, BusKind::Dma, oneway, bus_occ);
        let arrival = charge_dest_bus(&self.adapter, dst, BusKind::Dma, arrival, bus_occ);
        self.adapter.send_raw(
            dst,
            Frame {
                src: me,
                kind: KIND_SHORT,
                tag,
                arrival,
                payload: Bytes::copy_from_slice(data),
            },
        );
        time::advance(VDuration::from_micros_f64(t.host_post_us));
    }

    /// Block until a short message with `tag` arrives from any source.
    /// Returns the source node and the BIP-internal buffer holding the data
    /// (the caller copies out, as with real BIP receive buffers).
    pub fn recv_short(&self, tag: u64) -> (NodeId, Bytes) {
        let f = self
            .adapter
            .inbox()
            .recv_match(|f| f.kind == KIND_SHORT && f.tag == tag);
        self.finish_short(f)
    }

    /// Like [`recv_short`](Self::recv_short) but from a specific source.
    pub fn recv_short_from(&self, src: NodeId, tag: u64) -> Bytes {
        let f = self
            .adapter
            .inbox()
            .recv_from(src, KIND_SHORT, |f| f.tag == tag);
        self.finish_short(f).1
    }

    /// [`recv_short_from`](Self::recv_short_from) with a *real-time*
    /// deadline: `None` if nothing arrived within `timeout`. Fault-aware
    /// callers use this to detect a dead credit source instead of hanging.
    pub fn recv_short_from_timeout(
        &self,
        src: NodeId,
        tag: u64,
        timeout: Duration,
    ) -> Option<Bytes> {
        let f =
            self.adapter
                .inbox()
                .recv_from_timeout(src, KIND_SHORT, |f| f.tag == tag, timeout)?;
        Some(self.finish_short(f).1)
    }

    /// Non-blocking probe for a pending short message with `tag`.
    pub fn probe_short(&self, tag: u64) -> bool {
        count_queued_shorts_any_src(&self.adapter, self.node(), tag) > 0
    }

    fn finish_short(&self, f: Frame) -> (NodeId, Bytes) {
        // The inbound bus crossing was charged by the sender (see
        // `charge_dest_bus`); the arrival stamp is already effective.
        time::advance_to(f.arrival);
        (f.src, f.payload)
    }

    /// Send a long message. Blocks (in virtual and real time) until the
    /// receiver has posted the matching [`recv_long`](Self::recv_long) —
    /// the rendezvous the paper describes — and then until the LANai has
    /// drained the message from host memory (`bip_send` is synchronous for
    /// long messages: the user buffer is reusable on return, so the call
    /// cannot complete before the NIC has read it all).
    pub fn send_long(&self, dst: NodeId, tag: u64, data: Bytes) {
        // Wait for the receiver's clear-to-send.
        let cts = self
            .adapter
            .inbox()
            .recv_from(dst, KIND_CTS, |f| f.tag == tag);
        self.send_long_after_cts(dst, tag, data, cts.arrival);
    }

    /// Fallible [`send_long`](Self::send_long): waits at most `timeout`
    /// (real time) for the receiver's clear-to-send. `Err(Timeout)` means
    /// the peer never posted its receive; `Err(PeerDead)` that it crashed
    /// or is partitioned away. BIP has no retransmission — a rendezvous
    /// that cannot complete marks the channel down at the layer above.
    pub fn try_send_long(
        &self,
        dst: NodeId,
        tag: u64,
        data: Bytes,
        timeout: Duration,
    ) -> Result<(), LinkError> {
        if !self.adapter.reachable_to(dst) {
            return Err(LinkError::PeerDead);
        }
        let cts = self
            .adapter
            .inbox()
            .recv_from_timeout(dst, KIND_CTS, |f| f.tag == tag, timeout);
        match cts {
            Some(cts) => {
                self.send_long_after_cts(dst, tag, data, cts.arrival);
                Ok(())
            }
            None => {
                if !self.adapter.reachable_to(dst) {
                    Err(LinkError::PeerDead)
                } else {
                    Err(LinkError::Timeout)
                }
            }
        }
    }

    /// Second half of a long send, once the CTS for it has been received.
    fn send_long_after_cts(&self, dst: NodeId, tag: u64, data: Bytes, cts_arrival: VTime) {
        let t = self.timing;
        time::advance_to(cts_arrival);
        let local_done = self.send_long_from(dst, tag, data, time::now());
        time::advance_to(local_done);
        time::advance(VDuration::from_micros_f64(t.host_post_us));
    }

    /// Non-blocking check for a pending clear-to-send from `dst` for `tag`;
    /// consumes it and returns its arrival instant. The caller owns the
    /// other half of the rendezvous: having taken the CTS it **must**
    /// follow up with [`send_long_from`](Self::send_long_from).
    pub fn try_take_cts(&self, dst: NodeId, tag: u64) -> Option<VTime> {
        self.adapter
            .inbox()
            .try_recv_from(dst, KIND_CTS, |f| f.tag == tag)
            .map(|f| f.arrival)
    }

    /// Issue a long transfer whose rendezvous already completed, anchored
    /// at the explicit instant `start` (at or after the CTS arrival) rather
    /// than at the caller's clock — the LANai DMAs autonomously, so a
    /// progress engine that notices a CTS late still gets a transfer that
    /// began when the NIC saw it. Does **not** advance the caller's clock;
    /// returns the local-completion instant (user buffer drained; add the
    /// host-post cost for the CPU-side completion).
    pub fn send_long_from(&self, dst: NodeId, tag: u64, data: Bytes, start: VTime) -> VTime {
        let t = self.timing;
        let me = self.node();
        let oneway =
            VDuration::from_micros_f64(t.long_lat_us + data.len() as f64 * t.long_per_byte_us);
        let bus_occ = VDuration::from_micros_f64(data.len() as f64 * t.bus_per_byte_us);
        let arrival = charge_send_bus_at(&self.adapter, BusKind::Dma, start, oneway, bus_occ);
        let arrival = charge_dest_bus(&self.adapter, dst, BusKind::Dma, arrival, bus_occ);
        self.adapter.send_raw(
            dst,
            Frame {
                src: me,
                kind: KIND_LONG,
                tag,
                arrival,
                payload: data,
            },
        );
        // Local completion: the wire hop is the only part that overlaps
        // with the caller.
        arrival.saturating_sub(VDuration::from_micros_f64(t.short_lat_us))
    }

    /// Post a receive for a long message from `src` and block until it has
    /// been delivered **directly into `buf`** (no intermediate copy — real
    /// BIP DMAs to the final location). Returns the message length.
    ///
    /// # Panics
    /// Panics if the incoming message is larger than `buf`.
    pub fn recv_long(&self, src: NodeId, tag: u64, buf: &mut [u8]) -> usize {
        self.post_cts(src, tag);
        self.recv_long_posted(src, tag, buf)
    }

    /// First half of the rendezvous: tell `src` we are ready. Posting early
    /// lets the sender's transfer (a background NIC DMA) overlap whatever
    /// the receiving CPU does next.
    pub fn post_cts(&self, src: NodeId, tag: u64) {
        let t = self.timing;
        let me = self.node();
        let cts_arrival = time::now() + VDuration::from_micros_f64(t.ctrl_lat_us);
        self.adapter
            .send_raw(src, Frame::control(me, KIND_CTS, tag, cts_arrival));
    }

    /// Second half of the rendezvous: wait for the message matching an
    /// earlier [`post_cts`](Self::post_cts).
    pub fn recv_long_posted(&self, src: NodeId, tag: u64, buf: &mut [u8]) -> usize {
        let t = self.timing;
        let f = self
            .adapter
            .inbox()
            .recv_from(src, KIND_LONG, |f| f.tag == tag);
        assert!(
            f.payload.len() <= buf.len(),
            "BIP long message of {} bytes does not fit posted buffer of {}",
            f.payload.len(),
            buf.len()
        );
        let _ = t;
        buf[..f.payload.len()].copy_from_slice(&f.payload);
        time::advance_to(f.arrival);
        f.payload.len()
    }

    /// [`recv_long_posted`](Self::recv_long_posted) with a *real-time*
    /// deadline, distinguishing a crashed/partitioned sender from one that
    /// is merely slow.
    pub fn recv_long_posted_timeout(
        &self,
        src: NodeId,
        tag: u64,
        buf: &mut [u8],
        timeout: Duration,
    ) -> Result<usize, LinkError> {
        let f = self
            .adapter
            .inbox()
            .recv_from_timeout(src, KIND_LONG, |f| f.tag == tag, timeout);
        let Some(f) = f else {
            if !self.adapter.reachable_to(src) {
                return Err(LinkError::PeerDead);
            }
            return Err(LinkError::Timeout);
        };
        assert!(
            f.payload.len() <= buf.len(),
            "BIP long message of {} bytes does not fit posted buffer of {}",
            f.payload.len(),
            buf.len()
        );
        buf[..f.payload.len()].copy_from_slice(&f.payload);
        time::advance_to(f.arrival);
        Ok(f.payload.len())
    }

    /// Uncontended one-way time of a long message of `len` bytes, counted
    /// from the instant both sides are ready (includes the rendezvous).
    pub fn long_oneway(&self, len: usize) -> VDuration {
        let t = self.timing;
        VDuration::from_micros_f64(t.ctrl_lat_us + t.long_lat_us + len as f64 * t.long_per_byte_us)
    }

    /// Uncontended one-way time of a short message of `len` bytes.
    pub fn short_oneway(&self, len: usize) -> VDuration {
        let t = self.timing;
        VDuration::from_micros_f64(t.short_lat_us + len as f64 * t.short_per_byte_us)
    }
}

fn count_queued_shorts(adapter: &Adapter, dst: NodeId, src: NodeId, tag: u64) -> usize {
    // Inspect the destination mailbox; simulation-only introspection used to
    // enforce the preallocated-ring contract.
    adapter_inbox_of(adapter, dst)
        .count_match(|f| f.kind == KIND_SHORT && f.src == src && f.tag == tag)
}

fn count_queued_shorts_any_src(adapter: &Adapter, dst: NodeId, tag: u64) -> usize {
    adapter_inbox_of(adapter, dst).count_match(|f| f.kind == KIND_SHORT && f.tag == tag)
}

fn adapter_inbox_of(adapter: &Adapter, node: NodeId) -> crate::mailbox::Mailbox<Frame> {
    adapter.inbox_of(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{NetKind, WorldBuilder};

    fn myrinet_pair() -> (crate::world::World, crate::world::NetworkId) {
        let mut b = WorldBuilder::new(2);
        let net = b.network("myr0", NetKind::Myrinet, &[0, 1]);
        (b.build(), net)
    }

    #[test]
    fn short_message_roundtrip() {
        let (w, net) = myrinet_pair();
        let out = w.run(|env| {
            let bip = Bip::new(env.adapter_on(net).unwrap());
            if env.id() == 0 {
                bip.send_short(1, 7, b"abc");
                Vec::new()
            } else {
                let (src, data) = bip.recv_short(7);
                assert_eq!(src, 0);
                data.to_vec()
            }
        });
        assert_eq!(out[1], b"abc");
    }

    #[test]
    fn short_message_latency_floor() {
        let (w, net) = myrinet_pair();
        let times = w.run(|env| {
            let bip = Bip::new(env.adapter_on(net).unwrap());
            if env.id() == 0 {
                bip.send_short(1, 1, &[0u8; 4]);
                0.0
            } else {
                bip.recv_short(1);
                time::now().as_micros_f64()
            }
        });
        // 4.8 us latency + 4 * 0.009 us
        assert!((times[1] - 4.836).abs() < 0.01, "got {}", times[1]);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn short_message_size_limit() {
        let (w, net) = myrinet_pair();
        w.run(|env| {
            let bip = Bip::new(env.adapter_on(net).unwrap());
            if env.id() == 0 {
                bip.send_short(1, 1, &[0u8; BIP_SHORT_MAX + 1]);
            }
        });
    }

    #[test]
    #[should_panic(expected = "ring overflow")]
    fn short_ring_overflow_is_detected() {
        let (w, net) = myrinet_pair();
        w.run(|env| {
            let bip = Bip::new(env.adapter_on(net).unwrap());
            if env.id() == 0 {
                for _ in 0..=BIP_SHORT_RING {
                    bip.send_short(1, 1, b"x");
                }
            }
        });
    }

    #[test]
    fn long_message_rendezvous_roundtrip() {
        let (w, net) = myrinet_pair();
        let data: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        let expect = data.clone();
        let out = w.run(move |env| {
            let bip = Bip::new(env.adapter_on(net).unwrap());
            if env.id() == 0 {
                bip.send_long(1, 9, Bytes::from(data.clone()));
                Vec::new()
            } else {
                let mut buf = vec![0u8; 32_000];
                let n = bip.recv_long(0, 9, &mut buf);
                buf.truncate(n);
                buf
            }
        });
        assert_eq!(out[1], expect);
    }

    #[test]
    fn long_message_time_matches_curve() {
        let (w, net) = myrinet_pair();
        let len = 65536usize;
        let times = w.run(move |env| {
            let bip = Bip::new(env.adapter_on(net).unwrap());
            if env.id() == 0 {
                bip.send_long(1, 2, Bytes::from(vec![0u8; len]));
                0.0
            } else {
                let mut buf = vec![0u8; len];
                bip.recv_long(0, 2, &mut buf);
                time::now().as_micros_f64()
            }
        });
        let t = BipTiming::default();
        let expected = t.ctrl_lat_us + t.long_lat_us + len as f64 * t.long_per_byte_us;
        assert!(
            (times[1] - expected).abs() < 1.0,
            "got {} expected {}",
            times[1],
            expected
        );
    }

    #[test]
    fn shorts_from_two_sources_demultiplex() {
        let mut b = WorldBuilder::new(3);
        let net = b.network("myr0", NetKind::Myrinet, &[0, 1, 2]);
        let w = b.build();
        let out = w.run(|env| {
            let bip = Bip::new(env.adapter_on(net).unwrap());
            match env.id() {
                0 => {
                    bip.send_short(2, 5, b"from0");
                    Vec::new()
                }
                1 => {
                    bip.send_short(2, 5, b"from1");
                    Vec::new()
                }
                _ => {
                    let a = bip.recv_short_from(0, 5);
                    let b2 = bip.recv_short_from(1, 5);
                    vec![a.to_vec(), b2.to_vec()]
                }
            }
        });
        assert_eq!(out[2], vec![b"from0".to_vec(), b"from1".to_vec()]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn long_into_small_buffer_panics() {
        let (w, net) = myrinet_pair();
        w.run(|env| {
            let bip = Bip::new(env.adapter_on(net).unwrap());
            if env.id() == 0 {
                bip.send_long(1, 3, Bytes::from(vec![0u8; 4096]));
            } else {
                let mut buf = vec![0u8; 16];
                bip.recv_long(0, 3, &mut buf);
            }
        });
    }

    #[test]
    #[should_panic(expected = "requires a Myrinet fabric")]
    fn rejects_wrong_fabric() {
        let mut b = WorldBuilder::new(2);
        let net = b.network("eth0", NetKind::Ethernet, &[0, 1]);
        let w = b.build();
        w.run(|env| {
            let _ = Bip::new(env.adapter_on(net).unwrap());
        });
    }
}
