//! Simulated vendor protocol stacks.
//!
//! Each submodule reproduces the programming model and performance envelope
//! of one of the system-software layers Madeleine II drives:
//!
//! | stack | paper counterpart | defining behaviours |
//! |---|---|---|
//! | [`bip`] | BIP over Myrinet | short (<1 kB) messages into bounded preallocated receive buffers (flow control is the *caller's* job); long messages via receiver-acknowledged rendezvous, delivered in place |
//! | [`sisci`] | Dolphin SISCI over SCI | remote-mapped memory segments written by CPU PIO; polling flags; an optional DMA engine (slow on D310 hardware) |
//! | [`tcp`] | TCP over Fast Ethernet | reliable byte streams, high latency, ~11 MiB/s |
//! | [`via`] | VIA on a SAN | descriptor-queue send/recv, receives **must** be preposted, completions polled |
//! | [`sbp`] | SBP (Russell & Hatcher) | all data must live in kernel-provided *static buffers* on both sides |
//!
//! Timing discipline shared by all stacks: every operation has a calibrated
//! *uncontended* cost; the portion that crosses the host PCI bus is pushed
//! through the node's [`crate::pci::PciBus`] model where concurrent transfers stretch it
//! (full-duplex conflicts, DMA-over-PIO priority). With an idle bus the
//! end-to-end time equals the calibrated curve exactly, so the single-network
//! figures (Fig. 4, 5) are anchored while the gateway figures (Fig. 10, 11)
//! emerge from contention.

pub mod bip;
pub mod sbp;
pub mod sisci;
pub mod tcp;
pub mod via;

/// Fixed per-frame cost of one wire frame on a stack, independent of its
/// payload length: the one-way latency floor plus the sender's host time
/// (syscall, descriptor post, or kernel-buffer round). This is the cost a
/// batching layer saves each time it coalesces two packets into one frame,
/// so the calibrated `Default` timings of each stack and any "frames saved"
/// accounting in the benches must agree on it — hence one table here.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FrameCost {
    /// One-way latency floor of one frame, µs.
    pub lat_us: f64,
    /// Sender host time per frame (send call / descriptor post), µs.
    pub host_us: f64,
}

impl FrameCost {
    /// Total fixed cost one coalesced frame saves, µs.
    pub fn per_frame_us(&self) -> f64 {
        self.lat_us + self.host_us
    }
}

/// Fixed frame cost of the TCP/Fast-Ethernet stack (kernel traversal +
/// `send` syscall).
pub const TCP_FRAME_COST: FrameCost = FrameCost {
    lat_us: 60.0,
    host_us: 4.0,
};

/// Fixed frame cost of the VIA/SAN stack (doorbell + descriptor post).
pub const VIA_FRAME_COST: FrameCost = FrameCost {
    lat_us: 8.0,
    host_us: 0.8,
};

/// Fixed frame cost of the SBP stack (kernel mediation + pool operation).
pub const SBP_FRAME_COST: FrameCost = FrameCost {
    lat_us: 15.0,
    host_us: 2.0,
};

use crate::pci::{BusDir, BusKind};
use crate::time::{self, VDuration, VTime};
use crate::world::Adapter;

/// Charge the sender-side host-bus crossing of a transfer beginning now.
///
/// `oneway` is the uncontended end-to-end time, `bus_occ` the slice of it
/// that occupies the sender's bus. Returns the frame's arrival instant at
/// the far NIC: `now + oneway`, delayed by however much contention
/// stretched the bus crossing.
pub(crate) fn charge_send_bus(
    adapter: &Adapter,
    kind: BusKind,
    oneway: VDuration,
    bus_occ: VDuration,
) -> VTime {
    charge_send_bus_at(adapter, kind, time::now(), oneway, bus_occ)
}

/// [`charge_send_bus`] with an explicit start instant `t0` instead of the
/// caller's clock. A transfer whose trigger (a rendezvous CTS) arrived
/// while the host was busy computing starts at the trigger's arrival, not
/// at whenever the host got around to noticing it — this is what lets a
/// progress engine anchor overlapped transfers retroactively.
pub(crate) fn charge_send_bus_at(
    adapter: &Adapter,
    kind: BusKind,
    t0: VTime,
    oneway: VDuration,
    bus_occ: VDuration,
) -> VTime {
    debug_assert!(bus_occ <= oneway, "bus occupancy exceeds one-way time");
    if kind == BusKind::Dma {
        // The NIC's engine issues transactions across the whole local part
        // of the transfer, not one compressed burst.
        adapter.pci().note_dma_window(t0 + bus_occ);
    }
    let bus_end = adapter.pci().transfer(kind, BusDir::Outbound, t0, bus_occ);
    let stretch = bus_end.saturating_since(t0 + bus_occ);
    t0 + oneway + stretch
}

/// Charge the receiver-side host-bus crossing of an arriving transfer,
/// **from the sender's context** (the sender computes the full effective
/// arrival; registering the inbound interval early keeps it visible to
/// transfers the receiving node issues afterwards — essential for the
/// gateway contention effects of paper §6.2).
///
/// The inbound bus occupancy physically happens during the tail of the
/// transfer, so it is modelled as the window `[arrival - bus_occ, arrival]`;
/// contention can push completion past `arrival`. Returns the instant the
/// data is actually in the destination's host memory.
pub(crate) fn charge_dest_bus(
    adapter: &Adapter,
    dst: crate::frame::NodeId,
    kind: BusKind,
    arrival: VTime,
    bus_occ: VDuration,
) -> VTime {
    if kind == BusKind::Dma {
        // The receiving NIC's engine drains the wire for the whole flight;
        // in a streaming workload the next message follows back-to-back,
        // so the engine stays armed for about one more occupancy span
        // (registered here, ahead of time, so locally-issued PIO on the
        // destination reliably observes it).
        adapter
            .pci_of(dst)
            .note_dma_window(arrival + bus_occ + bus_occ);
    }
    let busy_start = arrival.saturating_sub(bus_occ);
    let end = adapter
        .pci_of(dst)
        .transfer(kind, BusDir::Inbound, busy_start, bus_occ);
    end.max(arrival)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::ClockHandle;
    use crate::world::{NetKind, WorldBuilder};

    fn us(n: u64) -> VDuration {
        VDuration::from_micros(n)
    }

    #[test]
    fn uncontended_send_arrives_after_oneway() {
        let mut b = WorldBuilder::new(2);
        let net = b.network("sci0", NetKind::Sci, &[0, 1]);
        let w = b.build();
        let arrivals = w.run(|env| {
            if env.id() != 0 {
                return 0;
            }
            let a = env.adapter_on(net).unwrap();
            crate::time::advance(us(10));
            let arrival = charge_send_bus(a, BusKind::Pio, us(100), us(80));
            arrival.as_nanos()
        });
        assert_eq!(arrivals[0], 110_000);
    }

    #[test]
    fn uncontended_recv_completes_at_arrival() {
        let mut b = WorldBuilder::new(2);
        let net = b.network("sci0", NetKind::Sci, &[0, 1]);
        let w = b.build();
        let done = w.run(|env| {
            if env.id() != 0 {
                return 500_000;
            }
            let a = env.adapter_on(net).unwrap();
            charge_dest_bus(a, 1, BusKind::Dma, VTime::from_nanos(500_000), us(100)).as_nanos()
        });
        assert_eq!(done[0], 500_000);
    }

    #[test]
    fn contended_send_is_delayed() {
        let mut b = WorldBuilder::new(2);
        let net = b.network("sci0", NetKind::Sci, &[0, 1]);
        let b = b.pci_config(crate::pci::PciConfig {
            pio_contended_inflation: 1.5,
        });
        let w = b.build();
        let arrivals = w.run(|env| {
            if env.id() != 0 {
                return 0;
            }
            let a = env.adapter_on(net).unwrap();
            // An inbound DMA occupies the bus for [0, 1000us); a PIO send
            // asked at 0 queues behind it and pays the 1.5x inflation.
            a.pci()
                .transfer(BusKind::Dma, BusDir::Inbound, VTime::ZERO, us(1000));
            let arrival = charge_send_bus(a, BusKind::Pio, us(100), us(84));
            // bus end = 1000 + 84*1.5 = 1126; stretch = 1126 - 84 = 1042;
            // arrival = 100 + 1042 = 1142us.
            arrival.as_nanos()
        });
        assert_eq!(arrivals[0], 1_142_000);
        let _ = ClockHandle::new();
    }
}
