//! TCP over Fast Ethernet — simulated.
//!
//! The commodity fallback network: reliable, ordered byte streams with
//! 2000-era Fast-Ethernet performance (~60 µs one-way latency through the
//! kernel stack, ~11 MiB/s). Madeleine II uses it both as a first-class
//! protocol (the Nexus/Madeleine-TCP configuration of Fig. 7) and as the
//! control/acknowledgment network of the gateway experiments (§6.2).

use crate::frame::{Frame, NodeId};
use crate::pci::BusKind;
use crate::stacks::{charge_dest_bus, charge_send_bus};
use crate::time::{self, VDuration, VTime};
use crate::world::{Adapter, NetKind};
use bytes::Bytes;
use std::collections::VecDeque;

const KIND_TCP: u16 = 10;

/// Calibrated timing constants for the TCP stack.
#[derive(Clone, Copy, Debug)]
pub struct TcpTiming {
    /// One-way latency floor (kernel traversal, interrupt, Fast Ethernet).
    pub lat_us: f64,
    /// Per-byte cost (≈11.2 MiB/s on 100 Mbit/s Ethernet).
    pub per_byte_us: f64,
    /// Sender host time per send call (syscall + copy into socket buffer).
    pub host_send_us: f64,
    /// Per-byte host-bus occupancy of the NIC's DMA.
    pub bus_per_byte_us: f64,
}

impl Default for TcpTiming {
    fn default() -> Self {
        TcpTiming {
            lat_us: 60.0,
            per_byte_us: 0.0851,
            host_send_us: 4.0,
            bus_per_byte_us: 0.0076,
        }
    }
}

/// A node's TCP endpoint on an Ethernet adapter.
#[derive(Clone)]
pub struct TcpStack {
    adapter: Adapter,
    timing: TcpTiming,
}

impl TcpStack {
    /// # Panics
    /// Panics if the adapter is not on an Ethernet fabric.
    pub fn new(adapter: &Adapter) -> Self {
        Self::with_timing(adapter, TcpTiming::default())
    }

    pub fn with_timing(adapter: &Adapter, timing: TcpTiming) -> Self {
        assert_eq!(
            adapter.kind(),
            NetKind::Ethernet,
            "TCP stack requires an Ethernet fabric, got {:?}",
            adapter.kind()
        );
        TcpStack {
            adapter: adapter.clone(),
            timing,
        }
    }

    pub fn node(&self) -> NodeId {
        self.adapter.node()
    }

    /// Block until some peer has unconsumed stream data on `port`; return
    /// the oldest such peer without consuming anything.
    pub fn wait_pending_src(&self, port: u32) -> NodeId {
        self.adapter
            .inbox()
            .peek_wait_map(|f| f.kind == KIND_TCP && f.tag == port as u64, |f| f.src)
    }

    /// Non-blocking variant of [`wait_pending_src`](Self::wait_pending_src).
    pub fn peek_pending_src(&self, port: u32) -> Option<NodeId> {
        self.adapter
            .inbox()
            .try_peek_map(|f| f.kind == KIND_TCP && f.tag == port as u64, |f| f.src)
    }

    /// Establish (both sides call this) a full-duplex connection to `peer`
    /// distinguished by `port`. Setup cost is charged once per side.
    pub fn connect(&self, peer: NodeId, port: u32) -> TcpConn {
        assert!(
            self.adapter.peers().contains(&peer),
            "node {peer} is not on Ethernet network {:?}",
            self.adapter.name()
        );
        // One RTT of handshake, amortized as one latency each side.
        time::advance(VDuration::from_micros_f64(self.timing.lat_us));
        TcpConn {
            adapter: self.adapter.clone(),
            timing: self.timing,
            peer,
            port,
            rx: VecDeque::new(),
        }
    }
}

/// One endpoint of an established TCP connection.
pub struct TcpConn {
    adapter: Adapter,
    timing: TcpTiming,
    peer: NodeId,
    port: u32,
    /// Reassembly queue: in-order received chunks not yet consumed.
    rx: VecDeque<(Bytes, VTime)>,
}

impl TcpConn {
    pub fn peer(&self) -> NodeId {
        self.peer
    }

    /// Send `data` down the stream. Returns once the socket buffer copy is
    /// done (the kernel drains asynchronously).
    pub fn send(&mut self, data: &[u8]) {
        let t = &self.timing;
        let oneway = VDuration::from_micros_f64(t.lat_us + data.len() as f64 * t.per_byte_us);
        let bus_occ = VDuration::from_micros_f64(data.len() as f64 * t.bus_per_byte_us);
        let arrival = charge_send_bus(&self.adapter, BusKind::Dma, oneway, bus_occ);
        let arrival = charge_dest_bus(&self.adapter, self.peer, BusKind::Dma, arrival, bus_occ);
        self.adapter.send_raw(
            self.peer,
            Frame {
                src: self.adapter.node(),
                kind: KIND_TCP,
                tag: self.port as u64,
                arrival,
                payload: Bytes::copy_from_slice(data),
            },
        );
        time::advance(VDuration::from_micros_f64(t.host_send_us));
    }

    /// Gathering send (`writev`): the chunks leave as one wire unit costing
    /// a single latency, with no intermediate concatenation copy.
    pub fn send_vectored(&mut self, bufs: &[&[u8]]) {
        let total: usize = bufs.iter().map(|b| b.len()).sum();
        let t = &self.timing;
        let oneway = VDuration::from_micros_f64(t.lat_us + total as f64 * t.per_byte_us);
        let bus_occ = VDuration::from_micros_f64(total as f64 * t.bus_per_byte_us);
        let arrival = charge_send_bus(&self.adapter, BusKind::Dma, oneway, bus_occ);
        let arrival = charge_dest_bus(&self.adapter, self.peer, BusKind::Dma, arrival, bus_occ);
        let mut payload = Vec::with_capacity(total);
        for b in bufs {
            payload.extend_from_slice(b);
        }
        self.adapter.send_raw(
            self.peer,
            Frame {
                src: self.adapter.node(),
                kind: KIND_TCP,
                tag: self.port as u64,
                arrival,
                payload: Bytes::from(payload),
            },
        );
        time::advance(VDuration::from_micros_f64(t.host_send_us));
    }

    /// Receive exactly `buf.len()` bytes (blocking). Stream semantics: the
    /// chunking of sends is invisible.
    pub fn recv_exact(&mut self, buf: &mut [u8]) {
        let mut filled = 0;
        let mut latest = VTime::ZERO;
        while filled < buf.len() {
            if self.rx.is_empty() {
                let f = self.adapter.inbox().recv_match(|f| {
                    f.kind == KIND_TCP && f.src == self.peer && f.tag == self.port as u64
                });
                self.rx.push_back((f.payload, f.arrival));
            }
            let (chunk, arr) = self.rx.front_mut().expect("just filled");
            let take = (buf.len() - filled).min(chunk.len());
            buf[filled..filled + take].copy_from_slice(&chunk[..take]);
            latest = latest.max(*arr);
            filled += take;
            if take == chunk.len() {
                self.rx.pop_front();
            } else {
                let rest = chunk.slice(take..);
                self.rx.front_mut().expect("non-empty").0 = rest;
            }
        }
        time::advance_to(latest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldBuilder;

    fn eth_pair() -> (crate::world::World, crate::world::NetworkId) {
        let mut b = WorldBuilder::new(2);
        let net = b.network("eth0", NetKind::Ethernet, &[0, 1]);
        (b.build(), net)
    }

    #[test]
    fn stream_roundtrip() {
        let (w, net) = eth_pair();
        let out = w.run(|env| {
            let tcp = TcpStack::new(env.adapter_on(net).unwrap());
            if env.id() == 0 {
                let mut c = tcp.connect(1, 5000);
                c.send(b"hello ");
                c.send(b"world");
                Vec::new()
            } else {
                let mut c = tcp.connect(0, 5000);
                let mut buf = vec![0u8; 11];
                c.recv_exact(&mut buf);
                buf
            }
        });
        assert_eq!(out[1], b"hello world");
    }

    #[test]
    fn recv_smaller_than_send_chunks() {
        let (w, net) = eth_pair();
        let out = w.run(|env| {
            let tcp = TcpStack::new(env.adapter_on(net).unwrap());
            if env.id() == 0 {
                let mut c = tcp.connect(1, 1);
                c.send(b"abcdef");
                Vec::new()
            } else {
                let mut c = tcp.connect(0, 1);
                let mut a = [0u8; 2];
                let mut b2 = [0u8; 4];
                c.recv_exact(&mut a);
                c.recv_exact(&mut b2);
                let mut v = a.to_vec();
                v.extend_from_slice(&b2);
                v
            }
        });
        assert_eq!(out[1], b"abcdef");
    }

    #[test]
    fn latency_floor_matches_model() {
        let (w, net) = eth_pair();
        let times = w.run(|env| {
            let tcp = TcpStack::new(env.adapter_on(net).unwrap());
            if env.id() == 0 {
                let mut c = tcp.connect(1, 1);
                c.send(&[0u8; 4]);
                0.0
            } else {
                let mut c = tcp.connect(0, 1);
                let mut buf = [0u8; 4];
                c.recv_exact(&mut buf);
                time::now().as_micros_f64()
            }
        });
        let t = TcpTiming::default();
        // connect (one lat) + one-way message time
        let expected = t.lat_us + t.lat_us + 4.0 * t.per_byte_us;
        assert!(
            (times[1] - expected).abs() < 0.5,
            "got {} expected {}",
            times[1],
            expected
        );
    }

    #[test]
    fn ports_demultiplex_connections() {
        let (w, net) = eth_pair();
        let out = w.run(|env| {
            let tcp = TcpStack::new(env.adapter_on(net).unwrap());
            if env.id() == 0 {
                let mut a = tcp.connect(1, 1);
                let mut b2 = tcp.connect(1, 2);
                b2.send(b"on-two");
                a.send(b"on-one");
                Vec::new()
            } else {
                let mut a = tcp.connect(0, 1);
                let mut b2 = tcp.connect(0, 2);
                let mut buf1 = vec![0u8; 6];
                a.recv_exact(&mut buf1);
                let mut buf2 = vec![0u8; 6];
                b2.recv_exact(&mut buf2);
                vec![buf1, buf2]
            }
        });
        assert_eq!(out[1][0], b"on-one");
        assert_eq!(out[1][1], b"on-two");
    }

    #[test]
    fn fast_ethernet_is_slow() {
        let (w, net) = eth_pair();
        let times = w.run(|env| {
            let tcp = TcpStack::new(env.adapter_on(net).unwrap());
            if env.id() == 0 {
                let mut c = tcp.connect(1, 1);
                c.send(&vec![0u8; 1 << 20]);
                0.0
            } else {
                let mut c = tcp.connect(0, 1);
                let mut buf = vec![0u8; 1 << 20];
                c.recv_exact(&mut buf);
                time::now().as_micros_f64()
            }
        });
        let bw = crate::perf::mibps(1 << 20, VDuration::from_micros_f64(times[1]));
        assert!(bw > 10.0 && bw < 12.5, "Fast Ethernet bandwidth {bw} MiB/s");
    }
}
