//! TCP over Fast Ethernet — simulated.
//!
//! The commodity fallback network: reliable, ordered byte streams with
//! 2000-era Fast-Ethernet performance (~60 µs one-way latency through the
//! kernel stack, ~11 MiB/s). Madeleine II uses it both as a first-class
//! protocol (the Nexus/Madeleine-TCP configuration of Fig. 7) and as the
//! control/acknowledgment network of the gateway experiments (§6.2).
//!
//! When the world carries a [`FaultPlan`](crate::fault::FaultPlan), the
//! stream runs a stop-and-wait ARQ: data frames carry a 4-byte sequence
//! prefix, receivers ack every in-order segment and re-ack duplicates, and
//! senders retransmit on timeout with exponential backoff (charging the
//! modeled RTO to the virtual clock, so goodput degrades with loss rate).
//! Without a plan the original unconditional fast path runs — no sequence
//! numbers, no acks, zero overhead.

use crate::fault::{
    LinkError, ARQ_MAX_RETRIES, ARQ_RECV_TIMEOUT_MS, ARQ_RTO_REAL_BASE_MS, ARQ_RTO_REAL_MAX_MS,
    ARQ_RTO_VIRT_BASE_US, ARQ_RTO_VIRT_MAX_US,
};
use crate::frame::{Frame, NodeId};
use crate::pci::BusKind;
use crate::stacks::{charge_dest_bus, charge_send_bus};
use crate::time::{self, VDuration, VTime};
use crate::world::{Adapter, NetKind};
use bytes::Bytes;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

const KIND_TCP: u16 = 10;
/// Ack frames of the fault-armed ARQ (payload: 4-byte LE sequence number).
const KIND_TCP_ACK: u16 = 11;
/// Segment size of the fault-armed path: a lost frame costs one segment's
/// retransmission, not the whole send.
const ARQ_SEGMENT: usize = 64 * 1024;

/// Calibrated timing constants for the TCP stack.
#[derive(Clone, Copy, Debug)]
pub struct TcpTiming {
    /// One-way latency floor (kernel traversal, interrupt, Fast Ethernet).
    pub lat_us: f64,
    /// Per-byte cost (≈11.2 MiB/s on 100 Mbit/s Ethernet).
    pub per_byte_us: f64,
    /// Sender host time per send call (syscall + copy into socket buffer).
    pub host_send_us: f64,
    /// Per-byte host-bus occupancy of the NIC's DMA.
    pub bus_per_byte_us: f64,
}

impl Default for TcpTiming {
    fn default() -> Self {
        TcpTiming {
            lat_us: crate::stacks::TCP_FRAME_COST.lat_us,
            per_byte_us: 0.0851,
            host_send_us: crate::stacks::TCP_FRAME_COST.host_us,
            bus_per_byte_us: 0.0076,
        }
    }
}

/// A node's TCP endpoint on an Ethernet adapter.
#[derive(Clone)]
pub struct TcpStack {
    adapter: Adapter,
    timing: TcpTiming,
}

impl TcpStack {
    /// # Panics
    /// Panics if the adapter is not on an Ethernet fabric.
    pub fn new(adapter: &Adapter) -> Self {
        Self::with_timing(adapter, TcpTiming::default())
    }

    pub fn with_timing(adapter: &Adapter, timing: TcpTiming) -> Self {
        assert_eq!(
            adapter.kind(),
            NetKind::Ethernet,
            "TCP stack requires an Ethernet fabric, got {:?}",
            adapter.kind()
        );
        TcpStack {
            adapter: adapter.clone(),
            timing,
        }
    }

    pub fn node(&self) -> NodeId {
        self.adapter.node()
    }

    /// Block until some peer has unconsumed stream data on `port`; return
    /// the oldest such peer without consuming anything.
    pub fn wait_pending_src(&self, port: u32) -> NodeId {
        self.adapter.inbox().wait_src_of(KIND_TCP, port as u64)
    }

    /// Non-blocking variant of [`wait_pending_src`](Self::wait_pending_src).
    pub fn peek_pending_src(&self, port: u32) -> Option<NodeId> {
        self.adapter.inbox().poll_src_of(KIND_TCP, port as u64)
    }

    /// Establish (both sides call this) a full-duplex connection to `peer`
    /// distinguished by `port`. Setup cost is charged once per side.
    pub fn connect(&self, peer: NodeId, port: u32) -> TcpConn {
        assert!(
            self.adapter.peers().contains(&peer),
            "node {peer} is not on Ethernet network {:?}",
            self.adapter.name()
        );
        // One RTT of handshake, amortized as one latency each side.
        time::advance(VDuration::from_micros_f64(self.timing.lat_us));
        TcpConn {
            adapter: self.adapter.clone(),
            timing: self.timing,
            peer,
            port,
            rx: VecDeque::new(),
            tx_seq: 0,
            rx_seq: 0,
        }
    }
}

/// One endpoint of an established TCP connection.
pub struct TcpConn {
    adapter: Adapter,
    timing: TcpTiming,
    peer: NodeId,
    port: u32,
    /// Reassembly queue: in-order received chunks not yet consumed.
    rx: VecDeque<(Bytes, VTime)>,
    /// Next sequence number to send (fault-armed ARQ only).
    tx_seq: u32,
    /// Next sequence number expected (fault-armed ARQ only).
    rx_seq: u32,
}

/// Sequence number of an ack frame, if it is well-formed.
fn ack_seq(f: &Frame) -> Option<u32> {
    (f.payload.len() == 4)
        .then(|| u32::from_le_bytes([f.payload[0], f.payload[1], f.payload[2], f.payload[3]]))
}

impl TcpConn {
    pub fn peer(&self) -> NodeId {
        self.peer
    }

    /// Send `data` down the stream. Returns once the socket buffer copy is
    /// done (the kernel drains asynchronously).
    ///
    /// # Panics
    /// Panics if the fault-armed link dies (use [`try_send`](Self::try_send)
    /// to handle that).
    pub fn send(&mut self, data: &[u8]) {
        if let Err(e) = self.try_send(data) {
            panic!("TCP send to node {} failed: {e}", self.peer);
        }
    }

    /// Gathering send (`writev`): the chunks leave as one wire unit costing
    /// a single latency, with no intermediate concatenation copy.
    ///
    /// # Panics
    /// Panics if the fault-armed link dies.
    pub fn send_vectored(&mut self, bufs: &[&[u8]]) {
        if let Err(e) = self.try_send_vectored(bufs) {
            panic!("TCP send to node {} failed: {e}", self.peer);
        }
    }

    /// Receive exactly `buf.len()` bytes (blocking). Stream semantics: the
    /// chunking of sends is invisible.
    ///
    /// # Panics
    /// Panics if the fault-armed link dies.
    pub fn recv_exact(&mut self, buf: &mut [u8]) {
        if let Err(e) = self.try_recv_exact(buf) {
            panic!("TCP receive from node {} failed: {e}", self.peer);
        }
    }

    /// Fallible [`send`](Self::send). On a fault-free world this is the
    /// original single-frame fast path and always returns `Ok(0)`; on a
    /// fault-armed world the stream is segmented and each segment runs
    /// stop-and-wait with retransmission. Returns the number of
    /// retransmissions performed.
    pub fn try_send(&mut self, data: &[u8]) -> Result<u64, LinkError> {
        if !self.adapter.faulty() {
            self.send_fast(data);
            return Ok(0);
        }
        let mut retransmits = 0;
        if data.is_empty() {
            return self.send_segment_reliable(data);
        }
        for chunk in data.chunks(ARQ_SEGMENT) {
            retransmits += self.send_segment_reliable(chunk)?;
        }
        Ok(retransmits)
    }

    /// Fallible [`send_vectored`](Self::send_vectored). Returns the number
    /// of retransmissions performed (always 0 on a fault-free world).
    pub fn try_send_vectored(&mut self, bufs: &[&[u8]]) -> Result<u64, LinkError> {
        if !self.adapter.faulty() {
            self.send_vectored_fast(bufs);
            return Ok(0);
        }
        // The reliable path needs contiguous segments anyway; concatenate
        // once and reuse the segmented sender.
        let total: usize = bufs.iter().map(|b| b.len()).sum();
        let mut all = Vec::with_capacity(total);
        for b in bufs {
            all.extend_from_slice(b);
        }
        self.try_send(&all)
    }

    /// Fallible [`recv_exact`](Self::recv_exact): `Err` if the fault-armed
    /// peer became unreachable or stopped retransmitting.
    pub fn try_recv_exact(&mut self, buf: &mut [u8]) -> Result<(), LinkError> {
        let reliable = self.adapter.faulty();
        let mut filled = 0;
        let mut latest = VTime::ZERO;
        while filled < buf.len() {
            if self.rx.is_empty() {
                if reliable {
                    self.recv_segment_reliable()?;
                } else {
                    let (peer, port) = (self.peer, self.port as u64);
                    let f = self
                        .adapter
                        .inbox()
                        .recv_from(peer, KIND_TCP, |f| f.tag == port);
                    self.rx.push_back((f.payload, f.arrival));
                }
            }
            let (chunk, arr) = self.rx.front_mut().expect("just filled");
            let take = (buf.len() - filled).min(chunk.len());
            buf[filled..filled + take].copy_from_slice(&chunk[..take]);
            latest = latest.max(*arr);
            filled += take;
            if take == chunk.len() {
                self.rx.pop_front();
            } else {
                let rest = chunk.slice(take..);
                self.rx.front_mut().expect("non-empty").0 = rest;
            }
        }
        time::advance_to(latest);
        Ok(())
    }

    /// The original unconditional send path (no sequence numbers, no acks).
    fn send_fast(&mut self, data: &[u8]) {
        let t = &self.timing;
        let oneway = VDuration::from_micros_f64(t.lat_us + data.len() as f64 * t.per_byte_us);
        let bus_occ = VDuration::from_micros_f64(data.len() as f64 * t.bus_per_byte_us);
        let arrival = charge_send_bus(&self.adapter, BusKind::Dma, oneway, bus_occ);
        let arrival = charge_dest_bus(&self.adapter, self.peer, BusKind::Dma, arrival, bus_occ);
        self.adapter.send_raw(
            self.peer,
            Frame {
                src: self.adapter.node(),
                kind: KIND_TCP,
                tag: self.port as u64,
                arrival,
                payload: Bytes::copy_from_slice(data),
            },
        );
        time::advance(VDuration::from_micros_f64(t.host_send_us));
    }

    /// The original unconditional vectored send path.
    fn send_vectored_fast(&mut self, bufs: &[&[u8]]) {
        let total: usize = bufs.iter().map(|b| b.len()).sum();
        let t = &self.timing;
        let oneway = VDuration::from_micros_f64(t.lat_us + total as f64 * t.per_byte_us);
        let bus_occ = VDuration::from_micros_f64(total as f64 * t.bus_per_byte_us);
        let arrival = charge_send_bus(&self.adapter, BusKind::Dma, oneway, bus_occ);
        let arrival = charge_dest_bus(&self.adapter, self.peer, BusKind::Dma, arrival, bus_occ);
        let mut payload = Vec::with_capacity(total);
        for b in bufs {
            payload.extend_from_slice(b);
        }
        self.adapter.send_raw(
            self.peer,
            Frame {
                src: self.adapter.node(),
                kind: KIND_TCP,
                tag: self.port as u64,
                arrival,
                payload: Bytes::from(payload),
            },
        );
        time::advance(VDuration::from_micros_f64(t.host_send_us));
    }

    /// Stop-and-wait transmission of one segment: send (charging the bus
    /// model per attempt), await the matching ack with a real-time RTO,
    /// retransmit on timeout with exponential backoff. Each retransmission
    /// also charges the *modeled* RTO to the virtual clock.
    fn send_segment_reliable(&mut self, data: &[u8]) -> Result<u64, LinkError> {
        let faults = self
            .adapter
            .faults()
            .cloned()
            .expect("reliable path requires a fault plan");
        let me = self.adapter.node();
        let (peer, port) = (self.peer, self.port as u64);
        let seq = self.tx_seq;
        self.tx_seq = self.tx_seq.wrapping_add(1);
        let mut wire = Vec::with_capacity(4 + data.len());
        wire.extend_from_slice(&seq.to_le_bytes());
        wire.extend_from_slice(data);
        let wire = Bytes::from(wire);
        let t = self.timing;
        let mut retransmits = 0u64;
        let mut rto_real = Duration::from_millis(ARQ_RTO_REAL_BASE_MS);
        let mut rto_virt_us = ARQ_RTO_VIRT_BASE_US;
        loop {
            if !faults.reachable(me, peer) {
                return Err(LinkError::PeerDead);
            }
            let oneway = VDuration::from_micros_f64(t.lat_us + wire.len() as f64 * t.per_byte_us);
            let bus_occ = VDuration::from_micros_f64(wire.len() as f64 * t.bus_per_byte_us);
            let arrival = charge_send_bus(&self.adapter, BusKind::Dma, oneway, bus_occ);
            let arrival = charge_dest_bus(&self.adapter, peer, BusKind::Dma, arrival, bus_occ);
            self.adapter.send_raw(
                peer,
                Frame {
                    src: me,
                    kind: KIND_TCP,
                    tag: port,
                    arrival,
                    payload: wire.clone(),
                },
            );
            time::advance(VDuration::from_micros_f64(t.host_send_us));
            // Drain acks until ours arrives or the RTO expires. Stale
            // duplicate acks (seq < ours) are consumed and ignored.
            let deadline = Instant::now() + rto_real;
            let acked = loop {
                let now = Instant::now();
                if now >= deadline {
                    break None;
                }
                let f = self.adapter.inbox().recv_from_timeout(
                    peer,
                    KIND_TCP_ACK,
                    |f| f.tag == port && ack_seq(f).is_some_and(|s| s <= seq),
                    deadline - now,
                );
                match f {
                    Some(f) if ack_seq(&f) == Some(seq) => break Some(f),
                    Some(_) => continue,
                    None => break None,
                }
            };
            match acked {
                Some(f) => {
                    time::advance_to(f.arrival);
                    return Ok(retransmits);
                }
                None => {
                    retransmits += 1;
                    if retransmits > u64::from(ARQ_MAX_RETRIES) {
                        return Err(LinkError::Timeout);
                    }
                    time::advance(VDuration::from_micros_f64(rto_virt_us));
                    rto_virt_us = (rto_virt_us * 2.0).min(ARQ_RTO_VIRT_MAX_US);
                    rto_real = (rto_real * 2).min(Duration::from_millis(ARQ_RTO_REAL_MAX_MS));
                }
            }
        }
    }

    /// Pull the next in-order segment off the wire into the reassembly
    /// queue, acking it; duplicates of already-delivered segments are
    /// re-acked (their ack may have been lost) and discarded.
    fn recv_segment_reliable(&mut self) -> Result<(), LinkError> {
        let faults = self
            .adapter
            .faults()
            .cloned()
            .expect("reliable path requires a fault plan");
        let me = self.adapter.node();
        let (peer, port) = (self.peer, self.port as u64);
        let deadline = Instant::now() + Duration::from_millis(ARQ_RECV_TIMEOUT_MS);
        loop {
            let pending = self
                .adapter
                .inbox()
                .try_recv_from(peer, KIND_TCP, |f| f.tag == port);
            let f = match pending {
                Some(f) => f,
                None => {
                    if !faults.reachable(me, peer) {
                        return Err(LinkError::PeerDead);
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(LinkError::Timeout);
                    }
                    // Wait in short slices so a peer crash mid-wait is
                    // noticed promptly.
                    let slice = (deadline - now).min(Duration::from_millis(100));
                    match self.adapter.inbox().recv_from_timeout(
                        peer,
                        KIND_TCP,
                        |f| f.tag == port,
                        slice,
                    ) {
                        Some(f) => f,
                        None => continue,
                    }
                }
            };
            if f.payload.len() < 4 {
                continue;
            }
            let seq = u32::from_le_bytes([f.payload[0], f.payload[1], f.payload[2], f.payload[3]]);
            if seq == self.rx_seq {
                self.rx_seq = self.rx_seq.wrapping_add(1);
                self.send_ack(seq, f.arrival);
                self.rx.push_back((f.payload.slice(4..), f.arrival));
                return Ok(());
            }
            if seq < self.rx_seq {
                // Duplicate of a delivered segment: the original ack was
                // lost or the frame was duplicated in flight. Re-ack.
                self.send_ack(seq, f.arrival);
            }
            // seq > rx_seq cannot happen under stop-and-wait; drop it.
        }
    }

    /// Ack `seq` back to the peer. Acks ride the loss-exempt control path
    /// ([`Adapter::send_raw_control`]): data-frame loss alone drives the
    /// retransmission machinery, and the final ack of an exchange cannot
    /// vanish after the receiver has gone quiet. They carry no bus charge
    /// — 4-byte control frames.
    fn send_ack(&self, seq: u32, data_arrival: VTime) {
        let arrival =
            time::now().max(data_arrival) + VDuration::from_micros_f64(self.timing.lat_us);
        self.adapter.send_raw_control(
            self.peer,
            Frame {
                src: self.adapter.node(),
                kind: KIND_TCP_ACK,
                tag: self.port as u64,
                arrival,
                payload: Bytes::copy_from_slice(&seq.to_le_bytes()),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldBuilder;

    fn eth_pair() -> (crate::world::World, crate::world::NetworkId) {
        let mut b = WorldBuilder::new(2);
        let net = b.network("eth0", NetKind::Ethernet, &[0, 1]);
        (b.build(), net)
    }

    #[test]
    fn stream_roundtrip() {
        let (w, net) = eth_pair();
        let out = w.run(|env| {
            let tcp = TcpStack::new(env.adapter_on(net).unwrap());
            if env.id() == 0 {
                let mut c = tcp.connect(1, 5000);
                c.send(b"hello ");
                c.send(b"world");
                Vec::new()
            } else {
                let mut c = tcp.connect(0, 5000);
                let mut buf = vec![0u8; 11];
                c.recv_exact(&mut buf);
                buf
            }
        });
        assert_eq!(out[1], b"hello world");
    }

    #[test]
    fn recv_smaller_than_send_chunks() {
        let (w, net) = eth_pair();
        let out = w.run(|env| {
            let tcp = TcpStack::new(env.adapter_on(net).unwrap());
            if env.id() == 0 {
                let mut c = tcp.connect(1, 1);
                c.send(b"abcdef");
                Vec::new()
            } else {
                let mut c = tcp.connect(0, 1);
                let mut a = [0u8; 2];
                let mut b2 = [0u8; 4];
                c.recv_exact(&mut a);
                c.recv_exact(&mut b2);
                let mut v = a.to_vec();
                v.extend_from_slice(&b2);
                v
            }
        });
        assert_eq!(out[1], b"abcdef");
    }

    #[test]
    fn latency_floor_matches_model() {
        let (w, net) = eth_pair();
        let times = w.run(|env| {
            let tcp = TcpStack::new(env.adapter_on(net).unwrap());
            if env.id() == 0 {
                let mut c = tcp.connect(1, 1);
                c.send(&[0u8; 4]);
                0.0
            } else {
                let mut c = tcp.connect(0, 1);
                let mut buf = [0u8; 4];
                c.recv_exact(&mut buf);
                time::now().as_micros_f64()
            }
        });
        let t = TcpTiming::default();
        // connect (one lat) + one-way message time
        let expected = t.lat_us + t.lat_us + 4.0 * t.per_byte_us;
        assert!(
            (times[1] - expected).abs() < 0.5,
            "got {} expected {}",
            times[1],
            expected
        );
    }

    #[test]
    fn ports_demultiplex_connections() {
        let (w, net) = eth_pair();
        let out = w.run(|env| {
            let tcp = TcpStack::new(env.adapter_on(net).unwrap());
            if env.id() == 0 {
                let mut a = tcp.connect(1, 1);
                let mut b2 = tcp.connect(1, 2);
                b2.send(b"on-two");
                a.send(b"on-one");
                Vec::new()
            } else {
                let mut a = tcp.connect(0, 1);
                let mut b2 = tcp.connect(0, 2);
                let mut buf1 = vec![0u8; 6];
                a.recv_exact(&mut buf1);
                let mut buf2 = vec![0u8; 6];
                b2.recv_exact(&mut buf2);
                vec![buf1, buf2]
            }
        });
        assert_eq!(out[1][0], b"on-one");
        assert_eq!(out[1][1], b"on-two");
    }

    #[test]
    fn lossy_stream_still_delivers() {
        use crate::fault::FaultPlan;
        let mut b = WorldBuilder::new(2).fault_plan(FaultPlan::new(7).drop_rate(0.05));
        let net = b.network("eth0", NetKind::Ethernet, &[0, 1]);
        let w = b.build();
        let out = w.run(|env| {
            let tcp = TcpStack::new(env.adapter_on(net).unwrap());
            if env.id() == 0 {
                let mut c = tcp.connect(1, 9);
                let data: Vec<u8> = (0..200_000).map(|i| (i % 251) as u8).collect();
                c.try_send(&data).unwrap();
                Vec::new()
            } else {
                let mut c = tcp.connect(0, 9);
                let mut buf = vec![0u8; 200_000];
                c.try_recv_exact(&mut buf).unwrap();
                buf
            }
        });
        assert!(out[1]
            .iter()
            .enumerate()
            .all(|(i, &x)| x == (i % 251) as u8));
    }

    #[test]
    fn send_to_crashed_peer_fails_fast() {
        use crate::fault::FaultPlan;
        let mut b = WorldBuilder::new(2).fault_plan(FaultPlan::new(1).crash(1));
        let net = b.network("eth0", NetKind::Ethernet, &[0, 1]);
        let w = b.build();
        w.run(|env| {
            if env.id() == 0 {
                let tcp = TcpStack::new(env.adapter_on(net).unwrap());
                let mut c = tcp.connect(1, 9);
                assert_eq!(c.try_send(b"x"), Err(LinkError::PeerDead));
            }
        });
    }

    #[test]
    fn fast_ethernet_is_slow() {
        let (w, net) = eth_pair();
        let times = w.run(|env| {
            let tcp = TcpStack::new(env.adapter_on(net).unwrap());
            if env.id() == 0 {
                let mut c = tcp.connect(1, 1);
                c.send(&vec![0u8; 1 << 20]);
                0.0
            } else {
                let mut c = tcp.connect(0, 1);
                let mut buf = vec![0u8; 1 << 20];
                c.recv_exact(&mut buf);
                time::now().as_micros_f64()
            }
        });
        let bw = crate::perf::mibps(1 << 20, VDuration::from_micros_f64(times[1]));
        assert!(bw > 10.0 && bw < 12.5, "Fast Ethernet bandwidth {bw} MiB/s");
    }
}
