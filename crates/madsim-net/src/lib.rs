//! # madsim-net — a simulated cluster fabric for the Madeleine II reproduction
//!
//! The Madeleine II paper (CLUSTER 2000) evaluates its communication library
//! on hardware that no longer exists: Myrinet LANai-4 NICs driven by BIP,
//! Dolphin SCI D310 NICs driven by SISCI, VIA SANs, all plugged into
//! 33 MHz / 32-bit PCI buses of dual Pentium II nodes. This crate is the
//! substitute substrate: a cluster **simulator** that
//!
//! * really moves bytes between real OS threads (one thread per node), so
//!   everything built on top is testable end-to-end, and
//! * models **performance in virtual time**, with per-protocol cost curves
//!   calibrated from the numbers the paper itself reports, plus an explicit
//!   host-PCI-bus contention model (full-duplex conflicts, DMA-beats-PIO
//!   arbitration) that reproduces the paper's gateway anomalies (§6.2).
//!
//! The crate provides:
//!
//! * [`time`] — virtual clocks (one per simulated thread) and durations;
//! * [`resource`] — FIFO reservation timelines for serially-reusable devices;
//! * [`pci`] — the host bus contention model;
//! * [`perf`] — calibrated piecewise-linear performance curves;
//! * [`world`] — topology: nodes, networks, adapters, node threads;
//! * [`mailbox`] — the blocking predicate-receive transport primitive;
//! * [`stacks`] — the five vendor protocol stacks Madeleine II drives:
//!   [`stacks::bip`] (Myrinet), [`stacks::sisci`] (SCI), [`stacks::tcp`]
//!   (Fast Ethernet), [`stacks::via`] (VIA SAN), [`stacks::sbp`]
//!   (static-buffer kernel protocol).
//!
//! Everything above this crate (the Madeleine II library itself, its MPI and
//! Nexus ports, the inter-cluster gateway) treats these stacks exactly like
//! the vendor libraries the original system drove.

pub mod fault;
pub mod frame;
pub mod mailbox;
pub mod pci;
pub mod perf;
pub mod resource;
pub mod stacks;
pub mod time;
pub mod world;

pub use fault::{FaultEvent, FaultPlan, FaultRecord, FaultState, LinkError};
pub use frame::{Frame, NodeId};
pub use mailbox::{Mailbox, Shardable};
pub use pci::{BusDir, BusKind, PciBus, PciConfig};
pub use perf::PerfCurve;
pub use time::{VDuration, VTime};
pub use world::{Adapter, NetKind, NetworkId, NodeEnv, World, WorldBuilder};
