//! Deterministic, seeded fault injection for the simulated fabric.
//!
//! The paper's interconnects (BIP over Myrinet, SISCI over SCI) guarantee
//! delivery, so the base fabric never loses a frame. Production-scale
//! deployments cannot assume that, and the robustness layer built on top
//! (retransmit, credit timeouts, virtual-channel failover) needs a way to
//! *provoke* failures reproducibly. A [`FaultPlan`] attached to a
//! [`WorldBuilder`](crate::world::WorldBuilder) does exactly that: every
//! frame crossing an adapter rolls against seeded, counter-indexed hashes,
//! so the n-th frame from `src` to `dst` on a given network suffers the
//! same fate in every run with the same seed — independent of thread
//! interleaving.
//!
//! ARQ acknowledgment frames are judged through a loss-exempt variant
//! (duplication, jitter, stalls, crashes and partitions still apply): the
//! control channel is modeled reliable so that a stop-and-wait exchange
//! always terminates — see
//! [`Adapter::send_raw_control`](crate::world::Adapter::send_raw_control).
//!
//! Decisions are keyed on `(seed, network index, src, dst, frame counter)`
//! through a splitmix64-style mixer. The network *index* (declaration
//! order, [`NetworkId`](crate::world::NetworkId)) is used rather than the
//! process-unique network uid precisely so two identically-built worlds in
//! one process draw identical fault schedules.
//!
//! Multirail networks (several adapters per node on one network, see
//! [`WorldBuilder::network_with_rails`](crate::world::WorldBuilder::network_with_rails))
//! fold the rail index into the network key: rail `r` of network `n` is
//! keyed as `n | r << 16` ([`rail_key`]), so rail 0 of a single-rail
//! network draws exactly the schedule it always did, and each extra rail
//! is an independent fault domain — a partition can sever *one* rail of a
//! pair while the others keep carrying traffic
//! ([`FaultPlan::partition_rail_after`]).

use crate::frame::NodeId;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Error surfaced by fault-aware stack operations ("link level" — below
/// the Madeleine error taxonomy, which wraps these).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkError {
    /// Retries exhausted without an acknowledgment.
    Timeout,
    /// The destination is crashed or partitioned from us — fail fast
    /// instead of burning the full retry schedule.
    PeerDead,
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::Timeout => write!(f, "link timeout: retries exhausted"),
            LinkError::PeerDead => write!(f, "peer crashed or partitioned"),
        }
    }
}

impl std::error::Error for LinkError {}

/// Shared ARQ tuning for the fault-armed stacks (TCP, SBP). Real-time
/// values bound how long a test blocks on a genuinely lost frame; the
/// virtual values are the *modeled* retransmission timeout charged to the
/// virtual clock, which is what the goodput-vs-loss curves measure.
pub const ARQ_MAX_RETRIES: u32 = 10;
/// Base real-time RTO; doubles per retry up to [`ARQ_RTO_REAL_MAX_MS`].
pub const ARQ_RTO_REAL_BASE_MS: u64 = 50;
pub const ARQ_RTO_REAL_MAX_MS: u64 = 800;
/// Base virtual-time RTO charged per retransmission; doubles per retry up
/// to [`ARQ_RTO_VIRT_MAX_US`] (exponential backoff).
pub const ARQ_RTO_VIRT_BASE_US: f64 = 500.0;
pub const ARQ_RTO_VIRT_MAX_US: f64 = 8_000.0;
/// Real-time bound on a reliable receive (covers a peer's full retry
/// schedule with margin).
pub const ARQ_RECV_TIMEOUT_MS: u64 = 20_000;

/// Fault-domain key of rail `rail` on network `net` (declaration index).
/// Rail 0 keys to the bare network index, so single-rail worlds draw
/// byte-identical fault schedules with or without this encoding.
pub fn rail_key(net: usize, rail: usize) -> usize {
    net | (rail << 16)
}

/// A partition of one rail of one (src, dst) pair, armed after a frame
/// count: the deterministic way to kill a rail *mid-message*.
#[derive(Clone, Copy, Debug)]
struct RailPartition {
    net: usize,
    rail: usize,
    a: NodeId,
    b: NodeId,
    /// The cut activates per direction once that direction has carried
    /// this many frames on the rail (0 = severed from the start).
    after: u64,
}

/// What the fault layer did to one frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultEvent {
    /// Frame silently discarded.
    Dropped,
    /// Frame delivered twice.
    Duplicated,
    /// Frame delivered with extra arrival jitter (nanoseconds).
    Delayed(u64),
    /// Sender-side stall charged before delivery (nanoseconds).
    Stalled(u64),
    /// Frame discarded because the (src, dst) pair is partitioned.
    Partitioned,
    /// Frame discarded because src or dst is crashed.
    Crashed,
}

/// One fault decision, in the deterministic log.
///
/// Sorting by `(net, src, dst, index)` yields a schedule-independent order:
/// two runs with the same seed produce byte-identical sorted logs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultRecord {
    /// Network declaration index ([`NetworkId.0`](crate::world::NetworkId)).
    pub net: usize,
    pub src: NodeId,
    pub dst: NodeId,
    /// Zero-based counter of frames sent from `src` to `dst` on `net`.
    pub index: u64,
    pub event: FaultEvent,
}

/// Declarative fault schedule, attached at world-build time.
///
/// All rates are probabilities in `[0, 1]` evaluated per frame with the
/// seeded hash; `jitter_us` is the *maximum* extra delay (the actual delay
/// is hash-uniform in `[0, jitter_us]`).
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    drop_rate: f64,
    duplicate_rate: f64,
    jitter_us: f64,
    /// Fixed extra sender-side delay per frame for stalled nodes, in µs.
    stalls: Vec<(NodeId, f64)>,
    /// Unordered pairs that cannot exchange frames.
    partitions: Vec<(NodeId, NodeId)>,
    /// Per-rail, counter-armed partitions (multirail failover testing).
    rail_partitions: Vec<RailPartition>,
    /// Nodes dead from the start.
    crashed: Vec<NodeId>,
}

impl FaultPlan {
    /// A plan that injects nothing but arms the recovery machinery
    /// (timeouts, acks). Useful to test timeout paths without losses.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Default::default()
        }
    }

    /// Drop each frame with probability `rate`.
    pub fn drop_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "drop rate out of [0,1]");
        self.drop_rate = rate;
        self
    }

    /// Deliver each (non-dropped) frame twice with probability `rate`.
    pub fn duplicate_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "duplicate rate out of [0,1]");
        self.duplicate_rate = rate;
        self
    }

    /// Add hash-uniform extra arrival delay in `[0, max_us]` to every frame.
    pub fn jitter_us(mut self, max_us: f64) -> Self {
        assert!(max_us >= 0.0, "negative jitter");
        self.jitter_us = max_us;
        self
    }

    /// Charge `extra_us` of sender-side delay on every frame `node` sends
    /// (a wheezing adapter, not a dead one).
    pub fn stall(mut self, node: NodeId, extra_us: f64) -> Self {
        assert!(extra_us >= 0.0, "negative stall");
        self.stalls.push((node, extra_us));
        self
    }

    /// Sever the (bidirectional) link between `a` and `b` on every network.
    pub fn partition(mut self, a: NodeId, b: NodeId) -> Self {
        self.partitions.push((a, b));
        self
    }

    /// Sever rail `rail` of network `net` (declaration index) between `a`
    /// and `b` once either direction has carried `after` frames on that
    /// rail: the `after`-th frame (0-based) and all later ones are
    /// discarded, per direction against that direction's own deterministic
    /// frame counter. `after = 0` severs the rail from the start. Other
    /// rails of the same network are untouched, which is what the
    /// multirail failover tests use to kill one rail mid-message.
    pub fn partition_rail_after(
        mut self,
        net: usize,
        rail: usize,
        a: NodeId,
        b: NodeId,
        after: u64,
    ) -> Self {
        self.rail_partitions.push(RailPartition {
            net,
            rail,
            a,
            b,
            after,
        });
        self
    }

    /// Mark `node` crashed from the start: every frame to or from it is
    /// discarded. Nodes can also be crashed mid-run via
    /// [`FaultState::crash`].
    pub fn crash(mut self, node: NodeId) -> Self {
        self.crashed.push(node);
        self
    }

    pub(crate) fn build(&self) -> Arc<FaultState> {
        Arc::new(FaultState {
            plan: self.clone(),
            counters: Mutex::new(HashMap::new()),
            log: Mutex::new(Vec::new()),
            crashed: Mutex::new(self.crashed.iter().copied().collect()),
            drops: AtomicU64::new(0),
            duplicates: AtomicU64::new(0),
            delays: AtomicU64::new(0),
        })
    }
}

/// Runtime state of a world's fault layer: deterministic decision engine,
/// dynamic crash set, and the fault log.
pub struct FaultState {
    plan: FaultPlan,
    /// Frames sent so far per (net index, src, dst) — the deterministic
    /// decision index.
    counters: Mutex<HashMap<(usize, NodeId, NodeId), u64>>,
    log: Mutex<Vec<FaultRecord>>,
    crashed: Mutex<HashSet<NodeId>>,
    drops: AtomicU64,
    duplicates: AtomicU64,
    delays: AtomicU64,
}

/// The verdict for one frame, computed before delivery.
pub(crate) struct FaultVerdict {
    /// Deliver the frame at all?
    pub deliver: bool,
    /// Deliver a second copy too?
    pub duplicate: bool,
    /// Extra arrival delay, nanoseconds.
    pub delay_ns: u64,
    /// Sender-side stall to charge, nanoseconds.
    pub stall_ns: u64,
}

impl FaultState {
    /// Crash `node` now: all subsequent frames to or from it vanish.
    pub fn crash(&self, node: NodeId) {
        self.crashed.lock().insert(node);
    }

    /// Is `node` currently crashed?
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed.lock().contains(&node)
    }

    /// Is the (src, dst) pair partitioned (either direction)?
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.plan
            .partitions
            .iter()
            .any(|&(x, y)| (x == a && y == b) || (x == b && y == a))
    }

    /// Fast reachability check for fail-fast paths: `false` when `dst` (or
    /// `src`) is crashed or the pair is partitioned.
    pub fn reachable(&self, src: NodeId, dst: NodeId) -> bool {
        !self.is_crashed(src) && !self.is_crashed(dst) && !self.is_partitioned(src, dst)
    }

    /// [`reachable`](Self::reachable) refined to one rail of one network:
    /// additionally `false` once a [`partition_rail_after`]
    /// (FaultPlan::partition_rail_after) cut on that rail has activated in
    /// the `src → dst` direction (its frame counter reached the threshold).
    pub fn reachable_on(&self, net: usize, rail: usize, src: NodeId, dst: NodeId) -> bool {
        if !self.reachable(src, dst) {
            return false;
        }
        let key = rail_key(net, rail);
        let sent = self
            .counters
            .lock()
            .get(&(key, src, dst))
            .copied()
            .unwrap_or(0);
        !self.plan.rail_partitions.iter().any(|p| {
            rail_key(p.net, p.rail) == key
                && ((p.a == src && p.b == dst) || (p.a == dst && p.b == src))
                && sent >= p.after
        })
    }

    /// Total frames dropped (loss + partition + crash).
    pub fn drops(&self) -> u64 {
        self.drops.load(Ordering::Relaxed)
    }

    pub fn duplicates(&self) -> u64 {
        self.duplicates.load(Ordering::Relaxed)
    }

    pub fn delays(&self) -> u64 {
        self.delays.load(Ordering::Relaxed)
    }

    /// The fault log, sorted by `(net, src, dst, index)` so it is identical
    /// across runs with the same seed regardless of thread interleaving.
    pub fn log(&self) -> Vec<FaultRecord> {
        let mut v = self.log.lock().clone();
        v.sort_unstable();
        v
    }

    fn record(&self, net: usize, src: NodeId, dst: NodeId, index: u64, event: FaultEvent) {
        self.log.lock().push(FaultRecord {
            net,
            src,
            dst,
            index,
            event,
        });
    }

    /// Decide the fate of the `index`-th frame from `src` to `dst` on
    /// network `net`. Called by [`Adapter::send_raw`](crate::world::Adapter)
    /// — one call per frame, which also advances the counter.
    pub(crate) fn judge(&self, net: usize, src: NodeId, dst: NodeId) -> FaultVerdict {
        self.decide(net, src, dst, false)
    }

    /// [`judge`](Self::judge) for acknowledgment/control frames: exempt
    /// from the seeded loss roll — crashes, partitions, stalls,
    /// duplication and jitter still apply. Stop-and-wait acks are modeled
    /// loss-free so an exchange's *final* ack cannot vanish and wedge the
    /// sender against a receiver that has already gone quiet; data-frame
    /// loss alone drives the retransmission machinery. See
    /// [`Adapter::send_raw_control`](crate::world::Adapter::send_raw_control).
    pub(crate) fn judge_control(&self, net: usize, src: NodeId, dst: NodeId) -> FaultVerdict {
        self.decide(net, src, dst, true)
    }

    fn decide(&self, net: usize, src: NodeId, dst: NodeId, lossless: bool) -> FaultVerdict {
        let index = {
            let mut c = self.counters.lock();
            let e = c.entry((net, src, dst)).or_insert(0);
            let i = *e;
            *e += 1;
            i
        };
        let mut v = FaultVerdict {
            deliver: true,
            duplicate: false,
            delay_ns: 0,
            stall_ns: 0,
        };
        if let Some(&(_, us)) = self.plan.stalls.iter().find(|&&(n, _)| n == src) {
            v.stall_ns = (us * 1_000.0) as u64;
            self.record(net, src, dst, index, FaultEvent::Stalled(v.stall_ns));
        }
        if self.is_crashed(src) || self.is_crashed(dst) {
            self.drops.fetch_add(1, Ordering::Relaxed);
            self.record(net, src, dst, index, FaultEvent::Crashed);
            v.deliver = false;
            return v;
        }
        if self.is_partitioned(src, dst) {
            self.drops.fetch_add(1, Ordering::Relaxed);
            self.record(net, src, dst, index, FaultEvent::Partitioned);
            v.deliver = false;
            return v;
        }
        // Rail-scoped cuts: `net` is the rail-extended key here, and the
        // comparison against this direction's own frame index keeps the
        // activation point deterministic under any thread interleaving.
        if self.plan.rail_partitions.iter().any(|p| {
            rail_key(p.net, p.rail) == net
                && ((p.a == src && p.b == dst) || (p.a == dst && p.b == src))
                && index >= p.after
        }) {
            self.drops.fetch_add(1, Ordering::Relaxed);
            self.record(net, src, dst, index, FaultEvent::Partitioned);
            v.deliver = false;
            return v;
        }
        if !lossless
            && self.plan.drop_rate > 0.0
            && self.roll(net, src, dst, index, 1) < self.plan.drop_rate
        {
            self.drops.fetch_add(1, Ordering::Relaxed);
            self.record(net, src, dst, index, FaultEvent::Dropped);
            v.deliver = false;
            return v;
        }
        if self.plan.duplicate_rate > 0.0
            && self.roll(net, src, dst, index, 2) < self.plan.duplicate_rate
        {
            self.duplicates.fetch_add(1, Ordering::Relaxed);
            self.record(net, src, dst, index, FaultEvent::Duplicated);
            v.duplicate = true;
        }
        if self.plan.jitter_us > 0.0 {
            let frac = self.roll(net, src, dst, index, 3);
            v.delay_ns = (frac * self.plan.jitter_us * 1_000.0) as u64;
            self.delays.fetch_add(1, Ordering::Relaxed);
            self.record(net, src, dst, index, FaultEvent::Delayed(v.delay_ns));
        }
        v
    }

    /// Deterministic uniform draw in `[0, 1)` for one (frame, purpose) pair.
    fn roll(&self, net: usize, src: NodeId, dst: NodeId, index: u64, purpose: u64) -> f64 {
        let mut x = self.plan.seed;
        for k in [net as u64, src as u64, dst as u64, index, purpose] {
            x = splitmix64(x ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        // 53 high bits -> uniform f64 in [0, 1).
        (x >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_verdicts() {
        let a = FaultPlan::new(7).drop_rate(0.3).duplicate_rate(0.1).build();
        let b = FaultPlan::new(7).drop_rate(0.3).duplicate_rate(0.1).build();
        for i in 0..200 {
            let va = a.judge(0, 0, 1);
            let vb = b.judge(0, 0, 1);
            assert_eq!(va.deliver, vb.deliver, "frame {i}");
            assert_eq!(va.duplicate, vb.duplicate, "frame {i}");
        }
        assert_eq!(a.log(), b.log());
        assert!(a.drops() > 0, "0.3 drop rate over 200 frames hit nothing");
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(1).drop_rate(0.5).build();
        let b = FaultPlan::new(2).drop_rate(0.5).build();
        let da: Vec<bool> = (0..64).map(|_| a.judge(0, 0, 1).deliver).collect();
        let db: Vec<bool> = (0..64).map(|_| b.judge(0, 0, 1).deliver).collect();
        assert_ne!(da, db);
    }

    #[test]
    fn crash_and_partition_block_frames() {
        let st = FaultPlan::new(0).partition(0, 1).build();
        assert!(!st.judge(0, 0, 1).deliver);
        assert!(!st.judge(0, 1, 0).deliver);
        assert!(st.judge(0, 0, 2).deliver);
        st.crash(2);
        assert!(!st.judge(0, 0, 2).deliver);
        assert!(!st.reachable(0, 2));
        assert!(st.is_crashed(2));
    }

    #[test]
    fn zero_rate_plan_injects_nothing() {
        let st = FaultPlan::new(42).build();
        for _ in 0..100 {
            let v = st.judge(0, 0, 1);
            assert!(v.deliver && !v.duplicate && v.delay_ns == 0 && v.stall_ns == 0);
        }
        assert!(st.log().is_empty());
        assert_eq!(st.drops() + st.duplicates() + st.delays(), 0);
    }

    #[test]
    fn control_frames_are_never_dropped() {
        let st = FaultPlan::new(3).drop_rate(1.0).build();
        for _ in 0..50 {
            assert!(st.judge_control(0, 0, 1).deliver);
        }
        assert!(!st.judge(0, 0, 1).deliver, "data frames still roll");
        st.crash(1);
        assert!(!st.judge_control(0, 0, 1).deliver, "crash still discards");
    }

    #[test]
    fn rail_partition_cuts_one_rail_after_threshold() {
        let st = FaultPlan::new(0)
            .partition_rail_after(0, 1, 0, 1, 2)
            .build();
        let k1 = rail_key(0, 1);
        // Rail 0 (bare net key) is untouched.
        for _ in 0..8 {
            assert!(st.judge(0, 0, 1).deliver);
        }
        // Rail 1 carries its first two frames, then the cut activates.
        assert!(st.reachable_on(0, 1, 0, 1), "cut not active before frames");
        assert!(st.judge(k1, 0, 1).deliver);
        assert!(st.judge(k1, 0, 1).deliver);
        assert!(!st.judge(k1, 0, 1).deliver, "frame index 2 is cut");
        assert!(!st.reachable_on(0, 1, 0, 1));
        assert!(st.reachable_on(0, 0, 0, 1), "rail 0 still reachable");
        // The reverse direction cuts against its own counter.
        assert!(st.judge(k1, 1, 0).deliver);
        assert!(st.judge(k1, 1, 0).deliver);
        assert!(!st.judge(k1, 1, 0).deliver);
        // Other pairs on the same rail are untouched.
        assert!(st.judge(k1, 0, 2).deliver);
        // Control frames obey the cut too (it is a partition, not loss).
        assert!(!st.judge_control(k1, 0, 1).deliver);
    }

    #[test]
    fn rail_partition_after_zero_severs_from_start() {
        let st = FaultPlan::new(0)
            .partition_rail_after(2, 3, 4, 5, 0)
            .build();
        let k = rail_key(2, 3);
        assert!(!st.reachable_on(2, 3, 4, 5));
        assert!(!st.judge(k, 4, 5).deliver);
        assert!(!st.judge(k, 5, 4).deliver);
        assert!(st.reachable_on(2, 0, 4, 5));
    }

    #[test]
    fn stall_charges_sender() {
        let st = FaultPlan::new(0).stall(3, 25.0).build();
        let v = st.judge(0, 3, 1);
        assert!(v.deliver);
        assert_eq!(v.stall_ns, 25_000);
        assert_eq!(st.judge(0, 1, 3).stall_ns, 0);
    }
}
