//! Serially-reusable virtual resources.
//!
//! A [`ResourceTimeline`] models a resource that can serve one transfer at a
//! time (a NIC engine, a link direction, a DMA engine): requests are granted
//! non-overlapping reservations, so a request arriving while the resource is
//! busy is queued in virtual time even if the requesting threads race in real
//! time.
//!
//! Reservations are placed in the *earliest free gap* at or after the asked
//! instant, not appended behind a watermark. This makes the virtual outcome
//! independent of the real-time order in which racing threads book: two rail
//! threads with independent virtual clocks get the same bus placement no
//! matter which one's `reserve` call wins the lock, because a later call
//! asking for an earlier virtual instant backfills the gap the earlier call
//! left open.

use crate::time::{VDuration, VTime};
use parking_lot::Mutex;
use std::sync::Arc;

/// A granted reservation on a [`ResourceTimeline`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Reservation {
    /// When the resource actually started serving the request (>= asked start).
    pub start: VTime,
    /// When the resource finishes serving the request.
    pub end: VTime,
}

impl Reservation {
    /// Queueing delay suffered by the request.
    pub fn wait(&self, asked: VTime) -> VDuration {
        self.start.saturating_since(asked)
    }
}

/// A single-server resource in virtual time.
///
/// Thread-safe: a mutex-protected set of sorted, disjoint busy spans.
/// Adjacent spans are coalesced, so a sequential caller streaming
/// back-to-back transfers keeps the set at one entry.
#[derive(Clone)]
pub struct ResourceTimeline {
    inner: Arc<Mutex<Vec<(VTime, VTime)>>>,
    name: &'static str,
}

impl ResourceTimeline {
    pub fn new(name: &'static str) -> Self {
        ResourceTimeline {
            inner: Arc::new(Mutex::new(Vec::new())),
            name,
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Reserve the resource for `dur`, no earlier than `start`.
    ///
    /// The reservation is placed in the earliest gap at or after `start`
    /// wide enough to hold `dur`; if every gap is too narrow it queues
    /// after the last existing reservation. Placement depends only on the
    /// virtual arguments, never on the real-time order of racing callers.
    pub fn reserve(&self, start: VTime, dur: VDuration) -> Reservation {
        let mut spans = self.inner.lock();
        if dur == VDuration::ZERO {
            let tail = spans.last().map_or(VTime::ZERO, |&(_, end)| end);
            let at = start.max(tail);
            return Reservation { start: at, end: at };
        }
        // Walk the sorted spans pushing the candidate start past every busy
        // span that blocks it; stop at the first gap that fits.
        let mut actual = start;
        let mut idx = spans.len();
        for (i, &(busy_start, busy_end)) in spans.iter().enumerate() {
            if busy_end <= actual {
                continue;
            }
            if busy_start >= actual + dur {
                idx = i;
                break;
            }
            actual = busy_end;
        }
        let end = actual + dur;
        spans.insert(idx, (actual, end));
        // Coalesce with touching neighbours to keep the set small.
        if idx + 1 < spans.len() && spans[idx].1 == spans[idx + 1].0 {
            spans[idx].1 = spans[idx + 1].1;
            spans.remove(idx + 1);
        }
        if idx > 0 && spans[idx - 1].1 == spans[idx].0 {
            spans[idx - 1].1 = spans[idx].1;
            spans.remove(idx);
        }
        Reservation { start: actual, end }
    }

    /// The instant the last booked reservation ends (the busy watermark).
    ///
    /// A new reservation may still start *earlier* than this by backfilling
    /// a gap; callers use it as a "was the resource contended at `t`"
    /// signal, not as a placement guarantee.
    pub fn next_free(&self) -> VTime {
        self.inner
            .lock()
            .last()
            .map_or(VTime::ZERO, |&(_, end)| end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> VDuration {
        VDuration::from_micros(n)
    }

    fn at(n: u64) -> VTime {
        VTime::from_nanos(n * 1_000)
    }

    #[test]
    fn back_to_back_reservations_queue() {
        let r = ResourceTimeline::new("nic");
        let a = r.reserve(at(0), us(10));
        assert_eq!(a.start, at(0));
        assert_eq!(a.end, at(10));
        // Asked at t=5 while busy until t=10: starts at 10.
        let b = r.reserve(at(5), us(10));
        assert_eq!(b.start, at(10));
        assert_eq!(b.end, at(20));
        assert_eq!(b.wait(at(5)), us(5));
    }

    #[test]
    fn idle_resource_starts_at_asked_time() {
        let r = ResourceTimeline::new("nic");
        let a = r.reserve(at(100), us(1));
        assert_eq!(a.start, at(100));
        assert_eq!(a.wait(at(100)), VDuration::ZERO);
        // A later request after the resource went idle again is not delayed.
        let b = r.reserve(at(500), us(1));
        assert_eq!(b.start, at(500));
    }

    #[test]
    fn next_free_tracks_reservations() {
        let r = ResourceTimeline::new("bus");
        assert_eq!(r.next_free(), VTime::ZERO);
        r.reserve(at(3), us(4));
        assert_eq!(r.next_free(), at(7));
    }

    #[test]
    fn late_booking_backfills_earlier_gap() {
        let r = ResourceTimeline::new("bus");
        // Book [0, 100] and [400, 500], leaving a [100, 400] gap.
        r.reserve(at(0), us(100));
        r.reserve(at(400), us(100));
        // A request asked at t=50 but *booked after* the t=400 one must
        // land in the gap, not queue behind the watermark — virtual
        // placement is independent of real-time booking order.
        let b = r.reserve(at(50), us(100));
        assert_eq!(b.start, at(100));
        assert_eq!(b.end, at(200));
        assert_eq!(r.next_free(), at(500));
        // A request too wide for any remaining gap queues at the tail.
        let c = r.reserve(at(0), us(250));
        assert_eq!(c.start, at(500));
        assert_eq!(c.end, at(750));
    }

    #[test]
    fn booking_order_does_not_change_placement() {
        // The same three requests in two different real-time orders must
        // produce the same set of busy spans.
        let place = |order: &[(u64, u64)]| {
            let r = ResourceTimeline::new("bus");
            let mut spans: Vec<(VTime, VTime)> = order
                .iter()
                .map(|&(t, d)| {
                    let res = r.reserve(at(t), us(d));
                    (res.start, res.end)
                })
                .collect();
            spans.sort();
            spans
        };
        let a = place(&[(0, 100), (10, 50), (300, 100)]);
        let b = place(&[(300, 100), (0, 100), (10, 50)]);
        assert_eq!(a, b);
    }

    #[test]
    fn concurrent_reservations_never_overlap() {
        let r = ResourceTimeline::new("nic");
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = r.clone();
            handles.push(std::thread::spawn(move || {
                let mut spans = Vec::new();
                for _ in 0..100 {
                    spans.push(r.reserve(VTime::ZERO, us(1)));
                }
                spans
            }));
        }
        let mut all: Vec<Reservation> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_by_key(|s| s.start);
        for w in all.windows(2) {
            assert!(w[0].end <= w[1].start, "overlapping reservations");
        }
        assert_eq!(all.len(), 800);
        assert_eq!(all.last().unwrap().end, at(800));
    }
}
