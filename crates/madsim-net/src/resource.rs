//! Serially-reusable virtual resources.
//!
//! A [`ResourceTimeline`] models a resource that can serve one transfer at a
//! time (a NIC engine, a link direction, a DMA engine): requests are granted
//! back-to-back reservations, so a request arriving while the resource is
//! busy is queued in virtual time even if the requesting threads race in real
//! time.

use crate::time::{VDuration, VTime};
use parking_lot::Mutex;
use std::sync::Arc;

/// A granted reservation on a [`ResourceTimeline`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Reservation {
    /// When the resource actually started serving the request (>= asked start).
    pub start: VTime,
    /// When the resource finishes serving the request.
    pub end: VTime,
}

impl Reservation {
    /// Queueing delay suffered by the request.
    pub fn wait(&self, asked: VTime) -> VDuration {
        self.start.saturating_since(asked)
    }
}

/// A single-server FIFO resource in virtual time.
///
/// Thread-safe and cheap: one mutex-protected `next_free` instant.
#[derive(Clone)]
pub struct ResourceTimeline {
    inner: Arc<Mutex<VTime>>,
    name: &'static str,
}

impl ResourceTimeline {
    pub fn new(name: &'static str) -> Self {
        ResourceTimeline {
            inner: Arc::new(Mutex::new(VTime::ZERO)),
            name,
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Reserve the resource for `dur`, no earlier than `start`.
    ///
    /// The reservation begins at `max(start, next_free)` and the resource is
    /// marked busy until `start + dur`.
    pub fn reserve(&self, start: VTime, dur: VDuration) -> Reservation {
        let mut next_free = self.inner.lock();
        let actual = start.max(*next_free);
        let end = actual + dur;
        *next_free = end;
        Reservation { start: actual, end }
    }

    /// The earliest instant a new reservation could start.
    pub fn next_free(&self) -> VTime {
        *self.inner.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> VDuration {
        VDuration::from_micros(n)
    }

    fn at(n: u64) -> VTime {
        VTime::from_nanos(n * 1_000)
    }

    #[test]
    fn back_to_back_reservations_queue() {
        let r = ResourceTimeline::new("nic");
        let a = r.reserve(at(0), us(10));
        assert_eq!(a.start, at(0));
        assert_eq!(a.end, at(10));
        // Asked at t=5 while busy until t=10: starts at 10.
        let b = r.reserve(at(5), us(10));
        assert_eq!(b.start, at(10));
        assert_eq!(b.end, at(20));
        assert_eq!(b.wait(at(5)), us(5));
    }

    #[test]
    fn idle_resource_starts_at_asked_time() {
        let r = ResourceTimeline::new("nic");
        let a = r.reserve(at(100), us(1));
        assert_eq!(a.start, at(100));
        assert_eq!(a.wait(at(100)), VDuration::ZERO);
        // A later request after the resource went idle again is not delayed.
        let b = r.reserve(at(500), us(1));
        assert_eq!(b.start, at(500));
    }

    #[test]
    fn next_free_tracks_reservations() {
        let r = ResourceTimeline::new("bus");
        assert_eq!(r.next_free(), VTime::ZERO);
        r.reserve(at(3), us(4));
        assert_eq!(r.next_free(), at(7));
    }

    #[test]
    fn concurrent_reservations_never_overlap() {
        let r = ResourceTimeline::new("nic");
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = r.clone();
            handles.push(std::thread::spawn(move || {
                let mut spans = Vec::new();
                for _ in 0..100 {
                    spans.push(r.reserve(VTime::ZERO, us(1)));
                }
                spans
            }));
        }
        let mut all: Vec<Reservation> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_by_key(|s| s.start);
        for w in all.windows(2) {
            assert!(w[0].end <= w[1].start, "overlapping reservations");
        }
        assert_eq!(all.len(), 800);
        assert_eq!(all.last().unwrap().end, at(800));
    }
}
